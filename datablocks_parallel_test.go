package datablocks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datablocks/internal/exec"
)

// TestWithParallelismDefault: a table-level WithParallelism default kicks
// in when QueryOptions leave Parallelism unset, and parallel scans return
// the same rows as serial ones.
func TestWithParallelismDefault(t *testing.T) {
	db := Open(WithParallelism(0)) // DB-wide default: all cores
	defer db.Close()
	tbl, err := db.CreateTable("orders",
		[]Column{
			{Name: "id", Kind: Int64},
			{Name: "amount", Kind: Float64},
		},
		WithPrimaryKey("id"), WithChunkRows(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if _, err = tbl.Insert(Row{Int(int64(i)), Float(float64(i % 997))}); err != nil {
			t.Fatal(err)
		}
	}
	if err = tbl.Freeze(); err != nil {
		t.Fatal(err)
	}
	preds := []Pred{{Col: "amount", Op: Lt, Lo: Float(500)}}
	par, err := tbl.Scan([]string{"id", "amount"}, preds, QueryOptions{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := tbl.Scan([]string{"id", "amount"}, preds, QueryOptions{Mode: ModeVectorizedSARG, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if par.NumRows() == 0 || par.NumRows() != serial.NumRows() {
		t.Fatalf("parallel rows = %d, serial = %d", par.NumRows(), serial.NumRows())
	}
	// Table.Query applies the same default to arbitrary plans.
	plan, err := tbl.ScanPlan([]string{"id"}, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Query(plan, QueryOptions{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != serial.NumRows() {
		t.Fatalf("Table.Query rows = %d, want %d", res.NumRows(), serial.NumRows())
	}
}

// TestParallelBatchQueryUnderWrites is the batch-pipeline stress: parallel
// batch-mode aggregation queries run concurrently with OLTP writers
// (inserts, updates, deletes) and the background freezer. Run under -race
// via `make stress`. Every query must see a consistent snapshot: the id sum
// it returns has to equal the sum implied by its own row count, because
// writers only ever hold the invariant id == amount.
func TestParallelBatchQueryUnderWrites(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl, err := db.CreateTable("events",
		[]Column{
			{Name: "id", Kind: Int64},
			{Name: "amount", Kind: Int64},
			{Name: "tag", Kind: String},
		},
		WithPrimaryKey("id"), WithChunkRows(1<<10), WithAutoFreeze(1), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	const seed = 8192
	tags := []string{"a", "b", "c"}
	for i := 0; i < seed; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Int(int64(i)), Str(tags[i%3])}); err != nil {
			t.Fatal(err)
		}
	}
	var (
		stop    atomic.Bool
		nextID  atomic.Int64
		wg      sync.WaitGroup
		queryOK atomic.Int64
	)
	nextID.Store(seed)
	writer := func(worker int) {
		defer wg.Done()
		for !stop.Load() {
			id := nextID.Add(1)
			if _, err := tbl.Insert(Row{Int(id), Int(id), Str(tags[id%3])}); err != nil {
				t.Error(err)
				return
			}
			// Rewrite and delete older rows to exercise versioned reads
			// under the scan snapshots.
			victim := id - seed/2
			if victim > 0 && victim%7 == int64(worker) {
				_ = tbl.Update(victim, Row{Int(victim), Int(victim), Str("upd")})
			}
			if victim > 0 && victim%13 == int64(worker) {
				tbl.Delete(victim)
			}
		}
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go writer(w)
	}
	reader := func() {
		defer wg.Done()
		plan, err := tbl.ScanPlan([]string{"id", "amount", "tag"}, nil, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for !stop.Load() {
			agg := &exec.AggNode{
				Child: plan,
				Aggs: []exec.AggSpec{
					{Func: exec.AggCount},
					{Func: exec.AggSum, Arg: Col(0)},
					{Func: exec.AggSum, Arg: Col(1)},
				},
			}
			res, err := tbl.Query(agg, QueryOptions{Mode: ModeVectorizedSARG})
			if err != nil {
				t.Error(err)
				return
			}
			if res.NumRows() != 1 {
				t.Errorf("agg rows = %d", res.NumRows())
				return
			}
			// id == amount on every live row, so the two sums must match
			// within one snapshot — a torn scan would break this.
			if res.Cols[1].Floats[0] != res.Cols[2].Floats[0] {
				t.Errorf("torn snapshot: sum(id)=%v sum(amount)=%v",
					res.Cols[1].Floats[0], res.Cols[2].Floats[0])
				return
			}
			queryOK.Add(1)
		}
	}
	wg.Add(2)
	go reader()
	go reader()
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if queryOK.Load() == 0 {
		t.Fatal("no queries completed")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
