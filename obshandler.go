package datablocks

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"datablocks/internal/obs"
)

// ObsHandler returns an http.Handler exporting the database's telemetry,
// stdlib only:
//
//	/metrics — Prometheus text format 0.0.4, one sample family per
//	           metric, per-table "table" labels
//	/vars    — the full Metrics snapshot as JSON (expvar-style)
//
// Mount it wherever the application serves HTTP:
//
//	http.Handle("/debug/db/", http.StripPrefix("/debug/db", db.ObsHandler()))
func (db *DB) ObsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, db.promSamples())
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]Metrics{"datablocks": db.Metrics()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "datablocks telemetry\n\n/metrics  Prometheus text format\n/vars     JSON snapshot\n")
	})
	return mux
}

// expvarPublished guards against double expvar registration, which panics:
// the global expvar registry has no Unpublish, so a name is claimed for the
// life of the process.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar registers the database's Metrics snapshot as a lazily
// evaluated expvar under name (conventionally "datablocks"), making it
// visible on the standard /debug/vars page. It reports false — without
// registering — when the name is already taken, so two databases cannot
// collide (publish each under a distinct name).
func (db *DB) PublishExpvar(name string) bool {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] || expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return db.Metrics() }))
	expvarPublished[name] = true
	return true
}

// promSamples flattens the Metrics snapshot into Prometheus samples.
func (db *DB) promSamples() []obs.Sample {
	m := db.Metrics()
	names := make([]string, 0, len(m.Tables))
	for n := range m.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []obs.Sample
	for _, name := range names {
		tm := m.Tables[name]
		tbl := obs.Label{K: "table", V: name}
		g := func(metric, help string, v int64, labels ...obs.Label) {
			out = append(out, obs.GaugeSample(metric, help, v, append(labels, tbl)...))
		}
		c := func(metric, help string, v uint64, labels ...obs.Label) {
			out = append(out, obs.CounterSample(metric, help, v, append(labels, tbl)...))
		}

		g("datablocks_rows", "Live rows in the table.", int64(tm.Rows))
		g("datablocks_deleted_rows", "Rows carrying a delete flag.", int64(tm.Mem.DeletedRows))
		g("datablocks_mem_bytes", "In-RAM footprint by region.", int64(tm.Mem.HotBytes), obs.Label{K: "region", V: "hot"})
		g("datablocks_mem_bytes", "In-RAM footprint by region.", int64(tm.Mem.FrozenBytes), obs.Label{K: "region", V: "frozen"})
		g("datablocks_chunks", "Chunks by state.", int64(tm.Mem.HotChunks), obs.Label{K: "state", V: "hot"})
		g("datablocks_chunks", "Chunks by state.", int64(tm.Mem.FrozenChunks), obs.Label{K: "state", V: "frozen"})
		g("datablocks_chunks", "Chunks by state.", int64(tm.Mem.EvictedChunks), obs.Label{K: "state", V: "evicted"})

		c("datablocks_cold_evictions_total", "Frozen blocks evicted to the store.", uint64(tm.Cold.Evictions))
		c("datablocks_cold_reloads_total", "Evicted blocks reloaded into RAM.", uint64(tm.Cold.Reloads))
		c("datablocks_cold_collapses_total", "Reloads collapsed into a concurrent pinner's disk read.", uint64(tm.Cold.Collapses))
		g("datablocks_cold_resident_bytes", "Compressed frozen bytes resident in RAM.", int64(tm.Cold.ResidentBytes))
		g("datablocks_cold_budget_bytes", "Configured residency ceiling (0 = unbounded).", int64(tm.Cold.BudgetBytes))
		g("datablocks_cold_disk_bytes", "On-disk footprint of the block store.", int64(tm.Cold.DiskBytes))

		c("datablocks_freezes_total", "Completed block compressions.", uint64(tm.Freeze.Freezes))
		c("datablocks_freezes_sorted_total", "Freezes that ran the stop-the-world sorted path.", uint64(tm.Freeze.SortedFreezes))
		c("datablocks_freeze_bytes_total", "Freeze traffic by direction.", uint64(tm.Freeze.BytesIn), obs.Label{K: "dir", V: "in"})
		c("datablocks_freeze_bytes_total", "Freeze traffic by direction.", uint64(tm.Freeze.BytesOut), obs.Label{K: "dir", V: "out"})
		for _, s := range tm.Freeze.Schemes {
			sl := obs.Label{K: "scheme", V: s.Scheme}
			c("datablocks_freeze_scheme_attrs_total", "Attribute vectors frozen per compression scheme.", s.Attrs, sl)
			c("datablocks_freeze_scheme_bytes_total", "Per-scheme freeze traffic.", s.BytesIn, sl, obs.Label{K: "dir", V: "in"})
			c("datablocks_freeze_scheme_bytes_total", "Per-scheme freeze traffic.", s.BytesOut, sl, obs.Label{K: "dir", V: "out"})
		}
		out = obs.AppendHistogram(out, "datablocks_freeze_duration_ns",
			"Individual freeze latencies in nanoseconds.", tm.Freeze.Durations, tbl)

		g("datablocks_write_epoch", "Current MVCC write epoch.", int64(tm.Epoch.WriteEpoch))
		g("datablocks_retired_rows", "Retired version rows awaiting sorted-freeze GC.", int64(tm.Epoch.RetiredRows))
		g("datablocks_pending_rows", "Update versions inserted but not yet committed.", int64(tm.Epoch.PendingRows))
		g("datablocks_index_keys", "Keys resident in the primary-key index.", int64(tm.IndexKeys))
		c("datablocks_index_publishes_total", "Version-record installations in the primary-key index.", uint64(tm.IndexPublishes))

		c("datablocks_store_io_total", "Block store operations.", uint64(tm.Store.Puts), obs.Label{K: "op", V: "put"})
		c("datablocks_store_io_total", "Block store operations.", uint64(tm.Store.Loads), obs.Label{K: "op", V: "load"})
		c("datablocks_store_io_total", "Block store operations.", uint64(tm.Store.Removes), obs.Label{K: "op", V: "remove"})
		c("datablocks_store_load_errors_total", "Failed block loads.", uint64(tm.Store.LoadErrors))
		c("datablocks_store_bytes_total", "Block store traffic by direction.", uint64(tm.Store.BytesWritten), obs.Label{K: "dir", V: "written"})
		c("datablocks_store_bytes_total", "Block store traffic by direction.", uint64(tm.Store.BytesRead), obs.Label{K: "dir", V: "read"})

		g("datablocks_write_stripes", "Write stripes sharding the table's write path.", int64(tm.Wal.Stripes))
		c("datablocks_wal_records_total", "Records appended to the stripe write-ahead logs.", tm.Wal.Records)
		c("datablocks_wal_batches_total", "Group-commit flushes (one append + one fsync each).", tm.Wal.Batches)
		c("datablocks_wal_bytes_total", "Bytes appended to the stripe logs, framing included.", tm.Wal.Bytes)
		c("datablocks_wal_replayed_total", "Records recovery re-applied at open.", tm.Wal.Replayed)
		c("datablocks_wal_replay_skipped_total", "Records recovery found already durable.", tm.Wal.ReplaySkipped)
		c("datablocks_wal_torn_tails_total", "Recovery scans that truncated a torn log suffix.", tm.Wal.TornTails)

		c("datablocks_ops_total", "Table API calls by operation.", uint64(tm.Ops.Inserts), obs.Label{K: "op", V: "insert"})
		c("datablocks_ops_total", "Table API calls by operation.", uint64(tm.Ops.Updates), obs.Label{K: "op", V: "update"})
		c("datablocks_ops_total", "Table API calls by operation.", uint64(tm.Ops.Deletes), obs.Label{K: "op", V: "delete"})
		c("datablocks_ops_total", "Table API calls by operation.", uint64(tm.Ops.Lookups), obs.Label{K: "op", V: "lookup"})
		c("datablocks_ops_total", "Table API calls by operation.", uint64(tm.Ops.Scans), obs.Label{K: "op", V: "scan"})
		c("datablocks_ops_total", "Table API calls by operation.", uint64(tm.Ops.Queries), obs.Label{K: "op", V: "query"})
		c("datablocks_lookup_misses_total", "Point lookups that resolved no visible row.", uint64(tm.Ops.LookupMisses))
		c("datablocks_rows_written_total", "Rows appended by inserts, updates and bulk loads.", uint64(tm.Ops.RowsWritten))
		c("datablocks_rows_read_total", "Rows returned by lookups, scans and queries.", uint64(tm.Ops.RowsRead))
	}
	return out
}
