package datablocks

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"datablocks/internal/exec"
)

// allModes are the Table 2 scan configurations every profile invariant
// must hold under.
var allModes = []ScanMode{ModeJIT, ModeVectorized, ModeVectorizedSARG, ModeVectorizedSARGPSMA}

// profiledOrders builds a table with frozen blocks, a hot tail and a few
// deleted rows — every chunk flavor a profiled scan can meet.
func profiledOrders(t *testing.T, opts ...TableOption) (*DB, *Table) {
	t.Helper()
	db, tbl := ordersTable(t, append([]TableOption{WithChunkRows(256)}, opts...)...)
	for i := 0; i < 1000; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Float(float64(i % 100)), Str("s")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		tbl.Delete(int64(i * 7))
	}
	if err := tbl.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// checkProfile asserts the structural invariants every QueryProfile must
// satisfy: chunk accounting is exact, row counts conserve along the
// operator chain, and the final operator's output is the result.
func checkProfile(t *testing.T, p *QueryProfile, resultRows int) {
	t.Helper()
	if p == nil {
		t.Fatal("Profile requested but Result.Profile is nil")
	}
	s := &p.Scan
	if s.HotChunks+s.FrozenChunks+s.SkippedChunks != s.TotalChunks {
		t.Fatalf("chunk accounting: hot %d + frozen %d + skipped %d != total %d",
			s.HotChunks, s.FrozenChunks, s.SkippedChunks, s.TotalChunks)
	}
	if len(p.Operators) == 0 {
		t.Fatal("no operators in profile")
	}
	for i := 1; i < len(p.Operators); i++ {
		if p.Operators[i].RowsIn != p.Operators[i-1].RowsOut {
			t.Fatalf("operator %d (%s): rowsIn %d != upstream rowsOut %d",
				i, p.Operators[i].Name, p.Operators[i].RowsIn, p.Operators[i-1].RowsOut)
		}
	}
	last := p.Operators[len(p.Operators)-1]
	if last.RowsOut != uint64(resultRows) {
		t.Fatalf("final operator %s rowsOut %d != result rows %d", last.Name, last.RowsOut, resultRows)
	}
	if p.Operators[0].RowsOut > s.RowsMatched {
		t.Fatalf("scan rowsOut %d exceeds rows matched %d", p.Operators[0].RowsOut, s.RowsMatched)
	}
	var morsels uint64
	for _, w := range p.Workers {
		morsels += w.Morsels
	}
	if morsels != s.HotChunks+s.FrozenChunks+s.SkippedChunks {
		t.Fatalf("worker morsels %d != chunks visited %d", morsels, s.TotalChunks)
	}
	if p.String() == "" {
		t.Fatal("empty profile rendering")
	}
}

func TestQueryProfileInvariants(t *testing.T) {
	_, tbl := profiledOrders(t)
	for _, mode := range allModes {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/par%d", mode, par), func(t *testing.T) {
				res, err := tbl.Scan([]string{"id", "amount"},
					[]Pred{{Col: "id", Op: Ge, Lo: Int(600)}},
					QueryOptions{Mode: mode, Parallelism: par, Profile: true})
				if err != nil {
					t.Fatal(err)
				}
				p := res.Profile
				checkProfile(t, p, res.NumRows())
				if len(p.Workers) < 1 || (par == 1 && len(p.Workers) != 1) {
					t.Fatalf("worker count %d for parallelism %d", len(p.Workers), par)
				}
				// ids are chunk-clustered, so the SARG-pushdown modes must
				// rule whole frozen blocks out through the SMA.
				if mode == ModeVectorizedSARG || mode == ModeVectorizedSARGPSMA {
					if p.Scan.SkippedChunks == 0 {
						t.Fatal("SARG mode skipped no chunks on clustered ids")
					}
					// No residual filter: everything the scan matched flowed out.
					if p.Operators[0].RowsOut != p.Scan.RowsMatched {
						t.Fatalf("scan rowsOut %d != matched %d without residual",
							p.Operators[0].RowsOut, p.Scan.RowsMatched)
					}
				}
				if mode != ModeJIT && p.Scan.Vectors == 0 {
					t.Fatal("vectorized mode recorded no vectors")
				}
			})
		}
	}
}

func TestQueryProfileAggregate(t *testing.T) {
	_, tbl := profiledOrders(t)
	scan, err := tbl.ScanPlan([]string{"amount", "id"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := &exec.AggNode{
		Child:   scan,
		GroupBy: []int{0},
		Aggs:    []exec.AggSpec{{Func: exec.AggCount}, {Func: exec.AggSum, Arg: Col(1)}},
	}
	for _, par := range []int{1, 4} {
		res, err := tbl.Query(plan, QueryOptions{Mode: ModeVectorizedSARGPSMA, Parallelism: par, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		p := res.Profile
		if p == nil {
			t.Fatal("no profile")
		}
		sink := p.Operators[len(p.Operators)-1]
		if sink.Name != "aggregate" || !sink.GroupingDetail {
			t.Fatalf("sink = %+v, want aggregate with grouping detail", sink)
		}
		if sink.Groups != uint64(res.NumRows()) {
			t.Fatalf("groups %d != result rows %d", sink.Groups, res.NumRows())
		}
		checkProfile(t, p, res.NumRows())
	}
}

func TestQueryProfileFallbackAndOrderBy(t *testing.T) {
	_, tbl := profiledOrders(t)
	res, err := tbl.Scan([]string{"id"}, []Pred{{Col: "id", Op: Lt, Lo: Int(50)}},
		QueryOptions{Mode: ModeVectorizedSARG, TupleAtATime: true, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.BatchPath {
		t.Fatal("TupleAtATime ran the batch path")
	}
	if res.Profile.Fallback == "" {
		t.Fatal("tuple fallback left no reason")
	}

	scan, err := tbl.ScanPlan([]string{"id"}, []Pred{{Col: "id", Op: Lt, Lo: Int(50)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ob := &exec.OrderByNode{Child: scan, Keys: []exec.OrderKey{{Col: 0, Desc: true}}, Limit: 10}
	res, err = tbl.Query(ob, QueryOptions{Mode: ModeVectorizedSARG, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	last := p.Operators[len(p.Operators)-1]
	if last.Name != "order-by" {
		t.Fatalf("last operator %q, want order-by", last.Name)
	}
	if last.RowsOut != uint64(res.NumRows()) || res.NumRows() != 10 {
		t.Fatalf("order-by rowsOut %d, result %d, want 10", last.RowsOut, res.NumRows())
	}
	if last.RowsIn <= last.RowsOut {
		t.Fatalf("limit did not truncate: in %d out %d", last.RowsIn, last.RowsOut)
	}
}

func TestQueryProfileReloads(t *testing.T) {
	_, tbl := profiledOrders(t, WithBlockStore(t.TempDir()), WithMemoryBudget(1))
	if _, err := tbl.Relation().EvictUnderBudget(); err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Scan([]string{"id", "amount"}, nil,
		QueryOptions{Mode: ModeVectorizedSARGPSMA, Parallelism: 4, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	checkProfile(t, p, res.NumRows())
	if p.Scan.Reloads == 0 {
		t.Fatal("scan over evicted blocks recorded no reloads")
	}
	if p.Scan.PinWait == 0 {
		t.Fatal("reloading scan recorded no pin wait")
	}
	if m := tbl.Metrics(); m.Cold.Reloads < int64(p.Scan.Reloads) {
		t.Fatalf("table reloads %d < profile reloads %d", m.Cold.Reloads, p.Scan.Reloads)
	}
}

func TestObsHandlerEndpoints(t *testing.T) {
	db, tbl := profiledOrders(t)
	if _, err := tbl.Scan([]string{"id"}, nil, QueryOptions{Mode: ModeVectorizedSARG}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.ObsHandler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`datablocks_rows{table="orders"}`,
		`datablocks_freezes_total{table="orders"}`,
		`datablocks_ops_total{op="insert",table="orders"} 1000`,
		"# TYPE datablocks_freeze_duration_ns histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	var vars map[string]Metrics
	if err := json.Unmarshal([]byte(get("/vars")), &vars); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if vars["datablocks"].Tables["orders"].Ops.Inserts != 1000 {
		t.Fatalf("/vars inserts = %d, want 1000", vars["datablocks"].Tables["orders"].Ops.Inserts)
	}
}

// TestMetricsRace hammers Metrics()/promSamples from multiple goroutines
// while writers, readers and the freezer mutate the table — the snapshot
// must be race-clean (run under -race in CI).
func TestMetricsRace(t *testing.T) {
	db, tbl := ordersTable(t, WithChunkRows(128))
	if _, err := tbl.Insert(Row{Int(1), Float(1), Str("seed")}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := int64(1_000_000 + i)
			if _, err := tbl.Insert(Row{Int(id), Float(1), Str("w")}); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				_ = tbl.Update(id, Row{Int(id), Float(2), Str("u")})
			}
			if i%5 == 0 {
				tbl.Delete(id)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := tbl.Freeze(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tbl.Lookup(int64(1_000_000 + i))
			if _, err := tbl.Scan([]string{"id"}, nil, QueryOptions{Mode: ModeVectorizedSARG, Profile: true}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		m := db.Metrics()
		if m.Tables["orders"].Ops.Inserts == 0 {
			t.Error("metrics snapshot missed the seeded insert")
			break
		}
		_ = db.promSamples()
	}
	close(stop)
	wg.Wait()
}
