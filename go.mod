module datablocks

go 1.22
