// Package index provides the traditional global index structure the paper
// contrasts with SMA/PSMA-narrowed scans in Table 3: a unique hash index
// from an integer primary key to a stable tuple identifier.
//
// Entries are small version records — the current tuple identifier, the
// previous one, and the write epoch at which the current version was
// committed — repointed atomically under the index lock. Together with
// the storage layer's epoch-aware point reads this closes the
// update/lookup read anomaly: a reader that resolves a key mid-update
// falls back from the current (not-yet-born) version to the previous one,
// so a key that exists at all times never transiently misses.
//
// The index is maintained across inserts, deletes and (unsorted) freezes;
// Table 3's "no index" configurations simply bypass it and fall back to
// scans.
package index

import (
	"fmt"
	"sync"

	"datablocks/internal/obs"
	"datablocks/internal/simd"
	"datablocks/internal/storage"
)

// Record is one version record of the index: the tuple identifier the key
// currently resolves to, the identifier of the immediately preceding
// version (valid while HasPrev), and the write epoch at which Cur was
// committed. Epoch is zero for plain inserts and for a published-but-not-
// yet-committed update (visibility is always decided by the storage
// layer's stamps; the record epoch is diagnostic).
type Record struct {
	Cur     storage.TupleID
	Prev    storage.TupleID
	HasPrev bool
	Epoch   uint64
}

// numShards partitions the key space so writers hashed to different
// stripes of the table do not re-serialize on one index lock. A power of
// two; 64 comfortably exceeds any plausible writer count.
const numShards = 64

// shard is one lock-striped partition of the index.
type shard struct {
	mu sync.RWMutex
	m  map[int64]Record
}

// Hash is a unique index over an int64 key column. It is internally
// lock-striped: operations on keys in different shards proceed
// concurrently, while each individual key's version-record protocol keeps
// its usual serialization on the shard lock.
type Hash struct {
	shards [numShards]shard
	// publishes counts version-record installations (Insert, Publish,
	// Repoint, Rebuild entries) — the index side of the engine's
	// epoch/index telemetry.
	publishes obs.Counter
}

// Publishes returns the cumulative count of version-record
// installations.
func (h *Hash) Publishes() uint64 { return h.publishes.Load() }

// NewHash creates an empty index, pre-sized for capacity entries.
func NewHash(capacity int) *Hash {
	h := &Hash{}
	per := capacity / numShards
	for i := range h.shards {
		h.shards[i].m = make(map[int64]Record, per)
	}
	return h
}

// shardFor routes a key to its lock stripe. The splitmix finalizer keeps
// sequential keys from piling into one shard.
func (h *Hash) shardFor(key int64) *shard {
	return &h.shards[simd.Mix64(uint64(key))&(numShards-1)]
}

// Insert adds a key; duplicate keys are rejected (primary-key semantics).
func (h *Hash) Insert(key int64, tid storage.TupleID) error {
	s := h.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; dup {
		return fmt.Errorf("index: duplicate key %d", key)
	}
	s.m[key] = Record{Cur: tid}
	h.publishes.Inc()
	return nil
}

// Publish atomically repoints a key at the new (still pending) version of
// its tuple, retaining the old version for readers whose epoch predates
// the commit. Step two of the update protocol: the caller has inserted
// the pending row and commits it in storage *after* the publish, so a
// reader always finds a visible version through either Cur or Prev.
//
// Publishing a key that is not in the index records no previous version:
// fabricating one from the zero Record would let a Lookup fall back to
// TupleID{0,0} and materialize an unrelated row.
func (h *Hash) Publish(key int64, tid storage.TupleID) {
	s := h.shardFor(key)
	s.mu.Lock()
	old, ok := s.m[key]
	s.m[key] = Record{Cur: tid, Prev: old.Cur, HasPrev: ok}
	h.publishes.Inc()
	s.mu.Unlock()
}

// Seal stamps the record with the write epoch at which its current
// version committed (step four, after storage.CommitUpdate).
func (h *Hash) Seal(key int64, epoch uint64) {
	s := h.shardFor(key)
	s.mu.Lock()
	if rec, ok := s.m[key]; ok {
		rec.Epoch = epoch
		s.m[key] = rec
	}
	s.mu.Unlock()
}

// Repoint replaces a key's record with a fresh current version and no
// history, for callers that rewrote the tuple with the storage layer's
// atomic delete+insert (storage.Relation.Update). It is only safe when
// no reader resolves the key concurrently with the update: Update
// retires the old version *before* Repoint installs the new identifier,
// so a concurrent reader could resolve the stale identifier to a retired
// row and transiently miss — exactly the anomaly the
// Publish/CommitUpdate/Seal protocol exists to prevent. Use it for
// single-threaded maintenance and benchmarks only.
func (h *Hash) Repoint(key int64, tid storage.TupleID) {
	s := h.shardFor(key)
	s.mu.Lock()
	s.m[key] = Record{Cur: tid}
	h.publishes.Inc()
	s.mu.Unlock()
}

// Unpublish reverts a Publish whose commit never happened: the previous
// version becomes current again, or — when the publish created the
// record (no previous version) — the record is removed entirely, so the
// aborted pending identifier cannot linger as a permanently invisible
// current version. Defensive abort path.
func (h *Hash) Unpublish(key int64) {
	s := h.shardFor(key)
	s.mu.Lock()
	if rec, ok := s.m[key]; ok {
		if rec.HasPrev {
			s.m[key] = Record{Cur: rec.Prev}
		} else {
			delete(s.m, key)
		}
	}
	s.mu.Unlock()
}

// Delete removes a key, reporting whether it existed.
func (h *Hash) Delete(key int64) bool {
	s := h.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	return true
}

// Lookup resolves a key to its current tuple identifier. Callers that
// need anomaly-free reads under concurrent updates use LookupRecord and
// fall back to the previous version by epoch.
func (h *Hash) Lookup(key int64) (storage.TupleID, bool) {
	s := h.shardFor(key)
	s.mu.RLock()
	rec, ok := s.m[key]
	s.mu.RUnlock()
	return rec.Cur, ok
}

// LookupRecord resolves a key to its full version record.
func (h *Hash) LookupRecord(key int64) (Record, bool) {
	s := h.shardFor(key)
	s.mu.RLock()
	rec, ok := s.m[key]
	s.mu.RUnlock()
	return rec, ok
}

// Len returns the number of indexed keys. The count is a sum over shard
// snapshots, exact whenever no insert or delete runs concurrently.
func (h *Hash) Len() int {
	n := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Rebuild repopulates the index by scanning the key column of a relation.
// Required after a sorted freeze, which reassigns tuple identifiers (and
// drops version history: rebuilt records have no previous version), and
// the bulk path recovery uses to reconstruct the index at reopen: chunks
// restored from a durable manifest stream their keys one block at a time
// through the pin/reload machinery, so the whole frozen set never has to
// be resident at once.
// Rebuild runs stop-the-world with respect to the index: callers already
// exclude writers (sorted freeze, recovery), so shard locks are taken
// per-entry rather than held across the scan.
func (h *Hash) Rebuild(r *storage.Relation, keyCol int) error {
	per := r.NumRows() / numShards
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		s.m = make(map[int64]Record, per)
		s.mu.Unlock()
	}
	views := r.Snapshot()
	var scratch []int64 // per-chunk bulk decode buffer, reused across chunks
	for ci := range views {
		c := &views[ci]
		// Pin the view's block in RAM (reloading it from the block store
		// when the chunk is evicted) for this chunk's key sweep only —
		// holding all pins to the end would force the whole frozen set
		// resident at once, defeating the memory budget.
		if err := c.Acquire(); err != nil {
			return err
		}
		frozen := c.IsFrozen()
		var keys []int64
		if frozen {
			// Decode the key column once per block instead of one point
			// access per row: the bulk rebuild path at recovery time.
			scratch = c.Block().AppendInts(keyCol, scratch[:0])
			keys = scratch
		} else {
			// Hot columns are already flat; read them in place (never via
			// the scratch buffer, which would alias live column storage).
			keys = c.Hot().Ints(keyCol)
		}
		for row := 0; row < c.Rows(); row++ {
			if c.IsDeleted(row) {
				continue
			}
			if frozen {
				if c.Block().IsNull(keyCol, row) {
					continue
				}
			} else if c.Hot().IsNull(keyCol, row) {
				continue
			}
			key := keys[row]
			s := h.shardFor(key)
			s.mu.Lock()
			if _, dup := s.m[key]; dup {
				s.mu.Unlock()
				c.Release()
				return fmt.Errorf("index: duplicate key %d during rebuild", key)
			}
			s.m[key] = Record{Cur: storage.TupleID{Chunk: uint32(ci), Row: uint32(row)}}
			s.mu.Unlock()
			h.publishes.Inc()
		}
		c.Release()
	}
	return nil
}
