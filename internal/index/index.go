// Package index provides the traditional global index structure the paper
// contrasts with SMA/PSMA-narrowed scans in Table 3: a unique hash index
// from an integer primary key to a stable tuple identifier.
//
// The index is maintained across inserts, deletes and (unsorted) freezes;
// Table 3's "no index" configurations simply bypass it and fall back to
// scans.
package index

import (
	"fmt"
	"sync"

	"datablocks/internal/storage"
)

// Hash is a unique index over an int64 key column.
type Hash struct {
	mu sync.RWMutex
	m  map[int64]storage.TupleID
}

// NewHash creates an empty index, pre-sized for capacity entries.
func NewHash(capacity int) *Hash {
	return &Hash{m: make(map[int64]storage.TupleID, capacity)}
}

// Insert adds a key; duplicate keys are rejected (primary-key semantics).
func (h *Hash) Insert(key int64, tid storage.TupleID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.m[key]; dup {
		return fmt.Errorf("index: duplicate key %d", key)
	}
	h.m[key] = tid
	return nil
}

// Update repoints an existing key at a new tuple (after update =
// delete+insert moved it to the hot region).
func (h *Hash) Update(key int64, tid storage.TupleID) {
	h.mu.Lock()
	h.m[key] = tid
	h.mu.Unlock()
}

// Delete removes a key, reporting whether it existed.
func (h *Hash) Delete(key int64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.m[key]; !ok {
		return false
	}
	delete(h.m, key)
	return true
}

// Lookup resolves a key to its tuple identifier.
func (h *Hash) Lookup(key int64) (storage.TupleID, bool) {
	h.mu.RLock()
	tid, ok := h.m[key]
	h.mu.RUnlock()
	return tid, ok
}

// Len returns the number of indexed keys.
func (h *Hash) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m)
}

// Rebuild repopulates the index by scanning the key column of a relation.
// Required after a sorted freeze, which reassigns tuple identifiers.
func (h *Hash) Rebuild(r *storage.Relation, keyCol int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.m = make(map[int64]storage.TupleID, r.NumRows())
	views := r.Snapshot()
	for ci := range views {
		c := &views[ci]
		for row := 0; row < c.Rows(); row++ {
			if c.IsDeleted(row) {
				continue
			}
			var key int64
			if c.IsFrozen() {
				if c.Block().IsNull(keyCol, row) {
					continue
				}
				key = c.Block().Int(keyCol, row)
			} else {
				if c.Hot().IsNull(keyCol, row) {
					continue
				}
				key = c.Hot().Ints(keyCol)[row]
			}
			if _, dup := h.m[key]; dup {
				return fmt.Errorf("index: duplicate key %d during rebuild", key)
			}
			h.m[key] = storage.TupleID{Chunk: uint32(ci), Row: uint32(row)}
		}
	}
	return nil
}
