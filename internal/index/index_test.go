package index

import (
	"testing"

	"datablocks/internal/core"
	"datablocks/internal/storage"
	"datablocks/internal/types"
)

func keyedRelation(t *testing.T, n, chunkCap int) (*storage.Relation, *Hash) {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "k", Kind: types.Int64},
		types.Column{Name: "v", Kind: types.Int64},
	)
	r := storage.NewRelation(schema, chunkCap)
	h := NewHash(n)
	for i := 0; i < n; i++ {
		tid, err := r.Insert(types.Row{types.IntValue(int64(i)), types.IntValue(int64(i * 10))})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Insert(int64(i), tid); err != nil {
			t.Fatal(err)
		}
	}
	return r, h
}

func TestLookupAcrossFreeze(t *testing.T) {
	r, h := keyedRelation(t, 300, 100)
	if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, true); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 300; k++ {
		tid, ok := h.Lookup(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		v, ok := r.GetCol(tid, 1)
		if !ok || v.Int() != k*10 {
			t.Fatalf("key %d resolves to wrong tuple", k)
		}
	}
}

func TestDuplicateRejected(t *testing.T) {
	_, h := keyedRelation(t, 5, 0)
	if err := h.Insert(3, storage.TupleID{}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	r, h := keyedRelation(t, 10, 0)
	if !h.Delete(4) {
		t.Fatal("delete failed")
	}
	if h.Delete(4) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := h.Lookup(4); ok {
		t.Fatal("deleted key found")
	}
	// Simulate update = atomic delete + insert + index repoint.
	tid, _ := h.Lookup(7)
	newTid, err := r.Update(tid, types.Row{types.IntValue(7), types.IntValue(777)})
	if err != nil {
		t.Fatal(err)
	}
	h.Repoint(7, newTid)
	got, _ := h.Lookup(7)
	v, ok := r.GetCol(got, 1)
	if !ok || v.Int() != 777 {
		t.Fatal("index points at stale version")
	}
}

// TestVersionRecordProtocol walks the three-step update protocol at the
// index+storage level and checks that every intermediate state resolves a
// visible version of the key through the record's Cur or Prev.
func TestVersionRecordProtocol(t *testing.T) {
	r, h := keyedRelation(t, 3, 0)

	resolve := func(epoch uint64) (types.Row, bool) {
		rec, ok := h.LookupRecord(1)
		if !ok {
			return nil, false
		}
		if row, vis := r.GetAt(rec.Cur, epoch); vis == storage.Visible {
			return row, true
		}
		if rec.HasPrev {
			if row, vis := r.GetAt(rec.Prev, epoch); vis == storage.Visible {
				return row, true
			}
		}
		return nil, false
	}

	e0 := r.ReadEpoch()
	// Step 1: pending insert — invisible, old version still resolves.
	newTid, err := r.InsertPending(types.Row{types.IntValue(1), types.IntValue(11)})
	if err != nil {
		t.Fatal(err)
	}
	if row, ok := resolve(r.ReadEpoch()); !ok || row[1].Int() != 10 {
		t.Fatalf("pre-publish resolve: %v %v", row, ok)
	}
	// Step 2: publish — Cur is pending, readers fall back to Prev.
	h.Publish(1, newTid)
	if row, ok := resolve(r.ReadEpoch()); !ok || row[1].Int() != 10 {
		t.Fatalf("post-publish resolve: %v %v", row, ok)
	}
	// Step 3: commit — the epoch decides which version a reader sees.
	oldRec, _ := h.LookupRecord(1)
	epoch, ok := r.CommitUpdate(oldRec.Prev, newTid)
	if !ok {
		t.Fatal("commit failed")
	}
	h.Seal(1, epoch)
	if row, ok := resolve(e0); !ok || row[1].Int() != 10 {
		t.Fatalf("old-epoch resolve after commit: %v %v", row, ok)
	}
	if row, ok := resolve(r.ReadEpoch()); !ok || row[1].Int() != 11 {
		t.Fatalf("new-epoch resolve after commit: %v %v", row, ok)
	}
	rec, _ := h.LookupRecord(1)
	if rec.Epoch != epoch || !rec.HasPrev {
		t.Fatalf("sealed record = %+v, want epoch %d with prev", rec, epoch)
	}
}

// TestPublishAbsentKeyNoFabricatedPrev: publishing a key that is not in
// the index must not invent a previous version out of the zero Record —
// a reader falling back to Prev would materialize the unrelated live row
// at TupleID{0,0}.
func TestPublishAbsentKeyNoFabricatedPrev(t *testing.T) {
	r, h := keyedRelation(t, 3, 0)
	tid, err := r.InsertPending(types.Row{types.IntValue(99), types.IntValue(990)})
	if err != nil {
		t.Fatal(err)
	}
	h.Publish(99, tid)
	rec, ok := h.LookupRecord(99)
	if !ok {
		t.Fatal("published key missing")
	}
	if rec.HasPrev {
		t.Fatalf("publish of absent key fabricated previous version %v", rec.Prev)
	}
	if rec.Cur != tid {
		t.Fatalf("Cur = %v, want %v", rec.Cur, tid)
	}
	// Aborting the publish must remove the record it created — otherwise
	// the aborted pending tid lingers as a permanently invisible current
	// version and blocks the key forever.
	r.AbortPending(tid)
	h.Unpublish(99)
	if _, ok := h.LookupRecord(99); ok {
		t.Fatal("unpublish left a dangling record for the created key")
	}
	liveTid, err := r.Insert(types.Row{types.IntValue(99), types.IntValue(991)})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(99, liveTid); err != nil {
		t.Fatalf("key blocked after aborted publish: %v", err)
	}
}

func TestRebuildAfterSortedFreeze(t *testing.T) {
	r, h := keyedRelation(t, 200, 100)
	// Sorted freeze reorders tuples; index must be rebuilt.
	if err := r.FreezeChunk(0, core.FreezeOptions{SortBy: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Rebuild(r, 0); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 200 {
		t.Fatalf("Len = %d", h.Len())
	}
	for k := int64(0); k < 200; k++ {
		tid, ok := h.Lookup(k)
		if !ok {
			t.Fatalf("key %d missing after rebuild", k)
		}
		v, ok := r.GetCol(tid, 1)
		if !ok || v.Int() != k*10 {
			t.Fatalf("key %d wrong after rebuild", k)
		}
	}
}
