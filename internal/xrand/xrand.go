// Package xrand provides a small, fast, deterministic PRNG (splitmix64)
// shared by the workload generators, so every experiment is reproducible
// bit-for-bit from its seed.
package xrand

// Rand is a splitmix64 generator. The zero value is a valid generator
// seeded with 0.
type Rand struct{ state uint64 }

// New returns a generator with the given seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Range returns a pseudo-random int64 in [lo, hi] inclusive.
func (r *Rand) Range(lo, hi int64) int64 { return lo + r.Int63n(hi-lo+1) }

// Float64 returns a pseudo-random float in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Pick returns a pseudo-random element of choices.
func (r *Rand) Pick(choices []string) string { return choices[r.Intn(len(choices))] }

// Shuffle permutes idx in place (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
