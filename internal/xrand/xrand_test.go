package xrand

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRanges(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(-5, 5); v < -5 || v > 5 {
			t.Fatalf("Range out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRangeCoversBounds(t *testing.T) {
	r := New(9)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.Range(1, 3)] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("Range(1,3) did not cover all values: %v", seen)
	}
}

func TestPickAndShuffle(t *testing.T) {
	r := New(11)
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[r.Pick(choices)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick missed values: %v", seen)
	}
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), vals...)
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 28 {
		t.Fatal("shuffle lost elements")
	}
	_ = orig
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}
