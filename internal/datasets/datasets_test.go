package datasets

import (
	"testing"

	"datablocks/internal/core"
	"datablocks/internal/exec"
	"datablocks/internal/types"
)

func TestCastInfoShape(t *testing.T) {
	rel, err := CastInfo(20000, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 20000 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	// NULL-heavy columns must actually contain NULLs.
	nullCount := 0
	for _, ch := range rel.Chunks() {
		if nulls := ch.Hot().Nulls(4); nulls != nil {
			for _, b := range nulls {
				if b {
					nullCount++
				}
			}
		}
	}
	if nullCount < 10000 {
		t.Fatalf("note nulls = %d, want most rows", nullCount)
	}
	// The relation compresses well (sparse domains, heavy NULLs).
	if err := rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
}

func TestFlightsOrderedAndQueried(t *testing.T) {
	rel, err := Flights(60000, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	// Natural date order.
	yearCol := rel.Schema().MustColumn("year")
	dateCol := rel.Schema().MustColumn("flightdate")
	prev := int64(-1 << 62)
	for _, ch := range rel.Chunks() {
		for row := 0; row < ch.Rows(); row++ {
			d := ch.Hot().Ints(dateCol)[row]
			if d < prev {
				t.Fatal("flights not ordered by date")
			}
			prev = d
		}
	}
	if err := rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	// SMA skipping: most blocks fall outside 1998-2008.
	skipped := 0
	for _, ch := range rel.Chunks() {
		sc, err := core.NewScanner(ch.Block(), core.ScanSpec{
			Preds: []core.Predicate{
				{Col: yearCol, Op: types.Between, Lo: types.IntValue(1998), Hi: types.IntValue(2008)},
				{Col: rel.Schema().MustColumn("dest"), Op: types.Eq, Lo: types.StringValue("SFO")},
			},
			UsePSMA: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sc.SkippedBySMA() {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no blocks skipped despite natural date order")
	}
	// The Appendix D query runs in all modes with identical shape.
	var refRows int
	for _, mode := range []exec.ScanMode{exec.ModeJIT, exec.ModeVectorized, exec.ModeVectorizedSARG, exec.ModeVectorizedSARGPSMA} {
		res, err := exec.Run(FlightsQuery(rel), exec.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() == 0 {
			t.Fatalf("mode %v: empty result", mode)
		}
		if refRows == 0 {
			refRows = res.NumRows()
		} else if res.NumRows() != refRows {
			t.Fatalf("mode %v: %d carriers, want %d", mode, res.NumRows(), refRows)
		}
		// Delays sorted descending.
		for i := 1; i < res.NumRows(); i++ {
			if res.Cols[1].Floats[i] > res.Cols[1].Floats[i-1] {
				t.Fatal("not sorted by avg delay desc")
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Flights(5000, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Flights(5000, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := exec.Run(FlightsQuery(a), exec.Options{Mode: exec.ModeVectorizedSARG})
	rb, _ := exec.Run(FlightsQuery(b), exec.Options{Mode: exec.ModeVectorizedSARG})
	if ra.String() != rb.String() {
		t.Fatal("non-deterministic generation")
	}
}
