// Package datasets generates synthetic stand-ins for the two real data
// sets of the evaluation (§5.1): the IMDB cast_info relation and the US
// flight arrival/departure details of 1987–2008.
//
// We do not have the proprietary dumps; the generators reproduce the
// properties the experiments depend on — cast_info: monotone surrogate
// keys, wide skewed foreign keys, heavily NULL columns and a low-entropy
// note dictionary; flights: natural ordering by date (which makes SMAs
// effective, Appendix D), small carrier/airport domains and skewed delay
// distributions. Table 1 and Figure 10 depend only on such value
// distributions.
package datasets

import (
	"fmt"
	"time"

	"datablocks/internal/core"
	"datablocks/internal/exec"
	"datablocks/internal/storage"
	"datablocks/internal/types"
	"datablocks/internal/xrand"
)

func icol(name string) types.Column { return types.Column{Name: name, Kind: types.Int64} }
func ncol(name string) types.Column {
	return types.Column{Name: name, Kind: types.Int64, Nullable: true}
}
func scol(name string) types.Column { return types.Column{Name: name, Kind: types.String} }
func nscol(name string) types.Column {
	return types.Column{Name: name, Kind: types.String, Nullable: true}
}

var castNotes = []string{
	"(uncredited)", "(voice)", "(archive footage)", "(as himself)",
	"(credit only)", "(scenes deleted)", "(singing voice)", "(narrator)",
}

// CastInfo generates n rows of the IMDB cast_info shape:
// (id, person_id, movie_id, person_role_id?, note?, nr_order?, role_id).
func CastInfo(n, chunkRows int) (*storage.Relation, error) {
	rel := storage.NewRelation(types.NewSchema(
		icol("id"), icol("person_id"), icol("movie_id"), ncol("person_role_id"),
		nscol("note"), ncol("nr_order"), icol("role_id"),
	), chunkRows)
	r := xrand.New(0x1DB)
	cols := []core.ColumnData{
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Int64, Ints: make([]int64, n), Nulls: make([]bool, n)},
		{Kind: types.String, Strs: make([]string, n), Nulls: make([]bool, n)},
		{Kind: types.Int64, Ints: make([]int64, n), Nulls: make([]bool, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
	}
	numPersons := n/4 + 1
	numMovies := n/12 + 1
	for i := 0; i < n; i++ {
		cols[0].Ints[i] = int64(i + 1)
		// Skew: a minority of prolific actors appears in most rows.
		if r.Intn(100) < 70 {
			cols[1].Ints[i] = r.Range(1, int64(numPersons/20+1))
		} else {
			cols[1].Ints[i] = r.Range(1, int64(numPersons))
		}
		cols[2].Ints[i] = r.Range(1, int64(numMovies))
		if r.Intn(100) < 55 { // person_role_id mostly NULL
			cols[3].Nulls[i] = true
		} else {
			cols[3].Ints[i] = r.Range(1, int64(numPersons/2+1))
		}
		if r.Intn(100) < 70 { // note mostly NULL
			cols[4].Nulls[i] = true
		} else {
			cols[4].Strs[i] = castNotes[r.Intn(len(castNotes))]
		}
		if r.Intn(100) < 60 {
			cols[5].Nulls[i] = true
		} else {
			cols[5].Ints[i] = r.Range(1, 60)
		}
		cols[6].Ints[i] = r.Range(1, 11)
	}
	if err := rel.BulkAppend(cols, n); err != nil {
		return nil, err
	}
	return rel, nil
}

var carriers = []string{"AA", "AS", "B6", "CO", "DL", "EV", "F9", "FL", "HA", "MQ", "NW", "OO", "UA", "US", "WN", "XE", "YV", "9E", "OH", "TZ"}

var airports = func() []string {
	base := []string{"ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO", "EWR", "CLT", "PHX", "IAH", "MIA", "BOS", "MSP", "FLL", "DTW", "PHL", "LGA", "BWI", "SLC", "SAN", "IAD", "DCA", "MDW", "TPA", "PDX", "HNL"}
	for i := 0; len(base) < 300; i++ {
		base = append(base, fmt.Sprintf("X%02d", i))
	}
	return base
}()

// FlightsSchema returns the flights schema, shared with loaders.
func FlightsSchema() *types.Schema {
	return types.NewSchema(
		icol("year"), icol("month"), icol("dayofmonth"), icol("dayofweek"),
		icol("flightdate"), scol("uniquecarrier"), icol("flightnum"),
		scol("origin"), scol("dest"), ncol("depdelay"), ncol("arrdelay"),
		icol("distance"),
	)
}

// Flights generates n rows of US flight details, ordered by date from
// October 1987 through April 2008 — the natural ordering the SMAs exploit
// in the Appendix D query.
func Flights(n, chunkRows int) (*storage.Relation, error) {
	rel := storage.NewRelation(FlightsSchema(), chunkRows)
	r := xrand.New(0xF17)
	cols := []core.ColumnData{
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.String, Strs: make([]string, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.String, Strs: make([]string, n)},
		{Kind: types.String, Strs: make([]string, n)},
		{Kind: types.Int64, Ints: make([]int64, n), Nulls: make([]bool, n)},
		{Kind: types.Int64, Ints: make([]int64, n), Nulls: make([]bool, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
	}
	first := types.DateToDays(1987, time.October, 1)
	last := types.DateToDays(2008, time.April, 30)
	span := last - first + 1
	for i := 0; i < n; i++ {
		// Monotone dates: row i lands on day i*span/n.
		day := first + int64(i)*span/int64(n)
		y, m, d := types.DaysToDate(day)
		cols[0].Ints[i] = int64(y)
		cols[1].Ints[i] = int64(m)
		cols[2].Ints[i] = int64(d)
		cols[3].Ints[i] = day%7 + 1
		cols[4].Ints[i] = day
		cols[5].Strs[i] = carriers[r.Intn(len(carriers))]
		cols[6].Ints[i] = r.Range(1, 7000)
		cols[7].Strs[i] = airports[r.Intn(len(airports))]
		// Hub skew: big airports receive a large share of flights.
		if r.Intn(100) < 60 {
			cols[8].Strs[i] = airports[r.Intn(30)]
		} else {
			cols[8].Strs[i] = airports[r.Intn(len(airports))]
		}
		if r.Intn(100) < 2 { // cancelled / missing delays
			cols[9].Nulls[i] = true
			cols[10].Nulls[i] = true
		} else {
			dep := r.Range(-10, 60) - 10
			cols[9].Ints[i] = dep
			cols[10].Ints[i] = dep + r.Range(-15, 30)
		}
		cols[11].Ints[i] = r.Range(60, 2700)
	}
	if err := rel.BulkAppend(cols, n); err != nil {
		return nil, err
	}
	return rel, nil
}

// FlightsQuery builds the Appendix D plan: carriers and their average
// arrival delay into SFO for 1998–2008, descending by delay. The year
// restriction skips most blocks via SMAs (natural date order); the dest
// restriction narrows the remainder via PSMAs.
func FlightsQuery(rel *storage.Relation) exec.Node {
	s := rel.Schema()
	return &exec.OrderByNode{
		Child: &exec.AggNode{
			Child: &exec.ScanNode{
				Rel:  rel,
				Cols: []int{s.MustColumn("year"), s.MustColumn("uniquecarrier"), s.MustColumn("dest"), s.MustColumn("arrdelay")},
				Preds: []core.Predicate{
					{Col: s.MustColumn("year"), Op: types.Between, Lo: types.IntValue(1998), Hi: types.IntValue(2008)},
					{Col: s.MustColumn("dest"), Op: types.Eq, Lo: types.StringValue("SFO")},
				},
			},
			GroupBy: []int{1},
			Aggs:    []exec.AggSpec{{Func: exec.AggAvg, Arg: exec.Col(3)}},
		},
		Keys: []exec.OrderKey{{Col: 1, Desc: true}},
	}
}
