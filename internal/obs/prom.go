package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Sample is one exported metric value. Families sharing a Name are
// grouped under one HELP/TYPE header by WritePrometheus.
type Sample struct {
	Name   string
	Help   string
	Type   string // "counter" | "gauge"
	Labels []Label
	Value  float64
}

// Label is one name/value pair attached to a sample.
type Label struct{ K, V string }

// CounterSample builds a counter sample.
func CounterSample(name, help string, v uint64, labels ...Label) Sample {
	return Sample{Name: name, Help: help, Type: "counter", Labels: labels, Value: float64(v)}
}

// GaugeSample builds a gauge sample.
func GaugeSample(name, help string, v int64, labels ...Label) Sample {
	return Sample{Name: name, Help: help, Type: "gauge", Labels: labels, Value: float64(v)}
}

// AppendHistogram expands a histogram snapshot into the Prometheus
// histogram convention: cumulative <name>_bucket samples with an `le`
// label, plus <name>_sum and <name>_count.
func AppendHistogram(dst []Sample, name, help string, s HistSnapshot, labels ...Label) []Sample {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmt.Sprintf("%d", s.Bounds[i])
		}
		bl := make([]Label, 0, len(labels)+1)
		bl = append(bl, labels...)
		bl = append(bl, Label{"le", le})
		dst = append(dst, Sample{Name: name + "_bucket", Help: help, Type: "histogram", Labels: bl, Value: float64(cum)})
	}
	dst = append(dst,
		Sample{Name: name + "_sum", Help: help, Type: "histogram", Labels: labels, Value: float64(s.Sum)},
		Sample{Name: name + "_count", Help: help, Type: "histogram", Labels: labels, Value: float64(cum)})
	return dst
}

// WritePrometheus renders samples in the Prometheus text exposition
// format (version 0.0.4), grouping samples of the same family under one
// # HELP / # TYPE header. Stdlib only: the output is plain text.
func WritePrometheus(w io.Writer, samples []Sample) error {
	// Stable output: sort by family, then label set. Families keep their
	// first sample's help/type.
	sort.SliceStable(samples, func(i, j int) bool {
		if fi, fj := family(samples[i].Name), family(samples[j].Name); fi != fj {
			return fi < fj
		}
		return samples[i].Name < samples[j].Name
	})
	lastFamily := ""
	for i := range samples {
		s := &samples[i]
		if f := family(s.Name); f != lastFamily {
			lastFamily = f
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f, s.Help); err != nil {
					return err
				}
			}
			typ := s.Type
			if typ == "" {
				typ = "untyped"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, renderLabels(s.Labels), renderValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// family strips the histogram sample suffixes so _bucket/_sum/_count
// share one header.
func family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func renderValue(v float64) string {
	// Counters and gauges here are integral; keep them readable.
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
