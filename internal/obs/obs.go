// Package obs is the engine's allocation-free telemetry core.
//
// Two families of primitives, matching the engine's two execution
// regimes:
//
//   - Shared instruments — Counter, Gauge, Histogram — are single cache
//     lines of atomics, safe for any number of concurrent writers and
//     readable at any time without locks. They live for the lifetime of
//     a table or store and back DB.Metrics().
//
//   - Shard instruments — ShardCounter, ShardHistogram — are plain
//     (non-atomic) cells owned by exactly one worker. They are the only
//     metrics API allowed inside //dbvet:hotpath functions (enforced by
//     the hotpath analyzer): an increment is a single add with no
//     contended cache line, no interface, and no allocation, so the
//     hotpathperf gate stays clean. Workers flush their shards into the
//     shared instruments at batch/morsel boundaries — in this engine,
//     the same place per-worker aggregator and result states are merged
//     after wg.Wait().
//
// Nothing here allocates after construction; observing and flushing are
// allocation-free by design.
package obs

import "sync/atomic"

// Counter is a monotonically increasing shared counter. Safe for
// concurrent use; every Add is a contended atomic, so hot kernels must
// use a per-worker ShardCounter and flush at the batch boundary instead.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a shared instantaneous value (may go up and down).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// ShardCounter is the hot-path fast path: a plain uint64 owned by one
// worker. Incrementing is a single add — no atomics, no allocation —
// which is why it is the one metrics API the dbvet hotpath analyzer
// admits inside //dbvet:hotpath functions. Flush into the shared
// Counter when the worker reaches a merge boundary.
type ShardCounter uint64

// Inc adds one.
func (c *ShardCounter) Inc() { *c++ }

// Add adds n.
func (c *ShardCounter) Add(n uint64) { *c += ShardCounter(n) }

// Value returns the shard's current value.
func (c ShardCounter) Value() uint64 { return uint64(c) }

// FlushTo adds the shard's value into dst and zeroes the shard.
func (c *ShardCounter) FlushTo(dst *Counter) {
	if *c != 0 {
		dst.Add(uint64(*c))
		*c = 0
	}
}

// Histogram is a shared fixed-bucket histogram: len(bounds)+1 cells,
// cell i counting observations v <= bounds[i], the last cell counting
// the rest (+Inf). Bounds are set at construction and never change, so
// Observe is bounded work with no allocation.
type Histogram struct {
	bounds []uint64
	cells  []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, cells: make([]atomic.Uint64, len(b)+1)}
}

// ExpBounds returns n bounds start, start*factor, start*factor², … —
// the usual log-scale layout for latencies and sizes.
func ExpBounds(start, factor uint64, n int) []uint64 {
	if start == 0 || factor < 2 || n <= 0 {
		panic("obs: ExpBounds needs start>0, factor>=2, n>0")
	}
	out := make([]uint64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

func bucketOf(bounds []uint64, v uint64) int {
	// Bounds counts are small (tens); linear probe beats binary search
	// on branch prediction and stays trivially allocation-free.
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// Observe records one value. Contended-atomic; hot kernels use a
// ShardHistogram and flush at the batch boundary.
func (h *Histogram) Observe(v uint64) {
	h.cells[bucketOf(h.bounds, v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []uint64 // upper bounds; the final bucket is +Inf
	Counts []uint64 // len(Bounds)+1 cells
	Count  uint64
	Sum    uint64
}

// Snapshot copies the histogram's cells. Each cell is read atomically;
// the set of cells is not a single linearization point, which is fine
// for monitoring (cumulative counts only ever grow).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.cells)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.cells {
		s.Counts[i] = h.cells[i].Load()
	}
	return s
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of
// the observed distribution: the smallest bucket bound whose cumulative
// count covers q. Returns 0 on an empty histogram; observations in the
// +Inf bucket report the last finite bound.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ShardHistogram is the worker-owned twin of Histogram: plain cells, no
// atomics. Safe inside //dbvet:hotpath functions; flush into the shared
// histogram at the merge boundary.
type ShardHistogram struct {
	bounds []uint64
	cells  []uint64
	count  uint64
	sum    uint64
}

// NewShardHistogram builds a shard over the same bounds as the shared
// histogram it will flush into (pass h.Bounds()).
func NewShardHistogram(bounds []uint64) *ShardHistogram {
	return &ShardHistogram{bounds: bounds, cells: make([]uint64, len(bounds)+1)}
}

// Bounds returns the shared histogram's bucket bounds, for building a
// matching shard.
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// Observe records one value into the shard. Plain adds only.
func (s *ShardHistogram) Observe(v uint64) {
	s.cells[bucketOf(s.bounds, v)]++
	s.count++
	s.sum += v
}

// Count returns the number of shard observations since the last flush.
func (s *ShardHistogram) Count() uint64 { return s.count }

// FlushTo adds the shard's cells into dst and zeroes the shard. The
// shard must have been built over dst's bounds.
func (s *ShardHistogram) FlushTo(dst *Histogram) {
	if s.count == 0 {
		return
	}
	if len(s.cells) != len(dst.cells) {
		panic("obs: shard/histogram bucket mismatch")
	}
	for i, c := range s.cells {
		if c != 0 {
			dst.cells[i].Add(c)
			s.cells[i] = 0
		}
	}
	dst.count.Add(s.count)
	dst.sum.Add(s.sum)
	s.count, s.sum = 0, 0
}
