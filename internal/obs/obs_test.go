package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestShardCounterFlush(t *testing.T) {
	var shared Counter
	var s ShardCounter
	s.Inc()
	s.Add(9)
	if s.Value() != 10 {
		t.Fatalf("shard = %d, want 10", s.Value())
	}
	s.FlushTo(&shared)
	if s.Value() != 0 {
		t.Fatalf("shard not zeroed after flush: %d", s.Value())
	}
	if shared.Load() != 10 {
		t.Fatalf("shared = %d, want 10", shared.Load())
	}
	// Flushing an empty shard is a no-op.
	s.FlushTo(&shared)
	if shared.Load() != 10 {
		t.Fatalf("empty flush changed shared: %d", shared.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []uint64{0, 10, 11, 100, 500, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // <=10, <=100, <=1000, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for v := uint64(1); v <= 8; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %d, want 4", q)
	}
	if q := s.Quantile(1.0); q != 8 {
		t.Fatalf("p100 = %d, want 8", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

// TestHistogramMergeProperty is the merge property test: observing a
// random value stream through per-worker shards and flushing them into
// a shared histogram yields cell-for-cell the same state as observing
// the whole stream directly — for any shard count and interleaving.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nb := 1 + rng.Intn(8)
		bounds := make([]uint64, nb)
		v := uint64(1 + rng.Intn(5))
		for i := range bounds {
			bounds[i] = v
			v += uint64(1 + rng.Intn(100))
		}
		direct := NewHistogram(bounds...)
		sharded := NewHistogram(bounds...)
		workers := 1 + rng.Intn(6)
		shards := make([]*ShardHistogram, workers)
		for i := range shards {
			shards[i] = NewShardHistogram(sharded.Bounds())
		}
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			val := uint64(rng.Intn(1 << uint(rng.Intn(20))))
			direct.Observe(val)
			shards[rng.Intn(workers)].Observe(val)
			// Random mid-stream flushes must not change the result.
			if rng.Intn(64) == 0 {
				shards[rng.Intn(workers)].FlushTo(sharded)
			}
		}
		for _, s := range shards {
			s.FlushTo(sharded)
		}
		ds, ss := direct.Snapshot(), sharded.Snapshot()
		if ds.Count != ss.Count || ds.Sum != ss.Sum {
			t.Fatalf("trial %d: count/sum diverge: direct (%d,%d) sharded (%d,%d)",
				trial, ds.Count, ds.Sum, ss.Count, ss.Sum)
		}
		for i := range ds.Counts {
			if ds.Counts[i] != ss.Counts[i] {
				t.Fatalf("trial %d: bucket %d diverges: %v vs %v", trial, i, ds.Counts, ss.Counts)
			}
		}
	}
}

func TestConcurrentCounters(t *testing.T) {
	var shared Counter
	h := NewHistogram(ExpBounds(1, 2, 10)...)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var shard ShardCounter
			sh := NewShardHistogram(h.Bounds())
			for i := 0; i < 1000; i++ {
				shard.Inc()
				sh.Observe(uint64(rng.Intn(2000)))
			}
			shard.FlushTo(&shared)
			sh.FlushTo(h)
		}(int64(w))
	}
	wg.Wait()
	if shared.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", shared.Load())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", s.Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	samples := []Sample{
		CounterSample("db_rows_read_total", "Rows read.", 10, Label{"table", "t"}),
		GaugeSample("db_resident_bytes", "Resident bytes.", 123),
	}
	h := NewHistogram(5, 50)
	h.Observe(3)
	h.Observe(300)
	samples = AppendHistogram(samples, "db_freeze_ns", "Freeze latency.", h.Snapshot())
	var b strings.Builder
	if err := WritePrometheus(&b, samples); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE db_rows_read_total counter",
		`db_rows_read_total{table="t"} 10`,
		"# TYPE db_resident_bytes gauge",
		"db_resident_bytes 123",
		"# TYPE db_freeze_ns histogram",
		`db_freeze_ns_bucket{le="5"} 1`,
		`db_freeze_ns_bucket{le="+Inf"} 2`,
		"db_freeze_ns_count 2",
		"db_freeze_ns_sum 303",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
