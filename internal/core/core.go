// Package core implements the Data Block (§3): an immutable, self-contained
// container holding up to 2^16 tuples of a relation chunk in compressed
// columnar (PAX) form, together with per-attribute SMAs (min/max) and
// Positional SMAs.
//
// A frozen block supports three operations, mirroring §3.4:
//
//   - Scan: SARGable predicates are translated into the compressed code
//     domain (skipping the block entirely when the SMA rules it out),
//     narrowed by the PSMA, evaluated with the simd kernels to produce a
//     match-position vector, and the matches are unpacked vector-at-a-time.
//   - Point access: any attribute of any row decompresses in O(1) thanks to
//     byte-aligned codes — the property that distinguishes Data Blocks from
//     bit-packed formats (§5.4).
//   - Serialization: the block flattens into a single pointer-free byte
//     buffer (Figure 3), suitable for eviction to secondary storage.
package core

import (
	"errors"
	"fmt"
	"sort"

	"datablocks/internal/compress"
	"datablocks/internal/psma"
	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// MaxRows is the maximum tuple count per Data Block (§3.1: typically up to
// 2^16 records).
const MaxRows = 1 << 16

// Attr is one compressed attribute of a block. Exactly one of Ints, Floats,
// Strs is set, according to Kind.
type Attr struct {
	Kind      types.Kind
	Ints      *compress.IntVector
	Floats    *compress.FloatVector
	Strs      *compress.StringVector
	Validity  []uint64 // bit set = value present; nil when no NULLs
	NullCount int
	Psma      *psma.Table // nil for floats and single-value attributes
}

// scheme returns the attribute's compression scheme.
func (a *Attr) scheme() compress.Scheme {
	switch a.Kind {
	case types.Int64:
		return a.Ints.Scheme
	case types.Float64:
		return a.Floats.Scheme
	default:
		return a.Strs.Scheme
	}
}

// Block is an immutable ("frozen") compressed chunk.
type Block struct {
	n     int
	attrs []Attr
}

// ColumnData is the uncompressed input of one column at freeze time.
// Exactly one of Ints, Floats, Strs must be set; Nulls is optional.
type ColumnData struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
}

// FreezeOptions controls block construction.
type FreezeOptions struct {
	// SortBy reorders the block's tuples by the given column before
	// compression, improving PSMA precision for clustered queries (§3.2,
	// Figure 11). Negative keeps the insertion order.
	SortBy int
	// NoPSMA skips building the PSMA lookup tables (ablation for
	// Figure 11's +SORT(−PSMA) configuration).
	NoPSMA bool
}

// Freeze compresses n tuples into an immutable Data Block, choosing the
// optimal compression scheme per attribute (§3.3) and building SMAs and
// PSMAs (§3.2).
func Freeze(cols []ColumnData, n int, opts FreezeOptions) (*Block, error) {
	if n <= 0 || n > MaxRows {
		return nil, fmt.Errorf("core: block size %d out of range (1..%d)", n, MaxRows)
	}
	if len(cols) == 0 {
		return nil, errors.New("core: no columns")
	}
	if opts.SortBy >= len(cols) {
		return nil, fmt.Errorf("core: sort column %d out of range", opts.SortBy)
	}
	var perm []int
	if opts.SortBy >= 0 {
		perm = sortPermutation(cols[opts.SortBy], n)
	}
	b := &Block{n: n, attrs: make([]Attr, len(cols))}
	for ci := range cols {
		col := applyPerm(cols[ci], n, perm)
		a := &b.attrs[ci]
		a.Kind = col.Kind
		if col.Nulls != nil {
			nullCount := 0
			for _, isNull := range col.Nulls[:n] {
				if isNull {
					nullCount++
				}
			}
			if nullCount > 0 {
				a.NullCount = nullCount
				a.Validity = make([]uint64, simd.BitmapWords(n))
				for i, isNull := range col.Nulls[:n] {
					if !isNull {
						simd.BitmapSet(a.Validity, uint32(i))
					}
				}
			} else {
				col.Nulls = nil
			}
		}
		switch col.Kind {
		case types.Int64:
			if len(col.Ints) < n {
				return nil, fmt.Errorf("core: column %d: %d int values for %d rows", ci, len(col.Ints), n)
			}
			a.Ints = compress.EncodeInts(col.Ints[:n], col.Nulls)
			if !opts.NoPSMA && a.Ints.Scheme != compress.SingleValue {
				v := a.Ints
				a.Psma = psma.Build(n, v.Width, v.CodeAt, v.MinCode())
			}
		case types.Float64:
			if len(col.Floats) < n {
				return nil, fmt.Errorf("core: column %d: %d float values for %d rows", ci, len(col.Floats), n)
			}
			a.Floats = compress.EncodeFloats(col.Floats[:n], col.Nulls)
		case types.String:
			if len(col.Strs) < n {
				return nil, fmt.Errorf("core: column %d: %d string values for %d rows", ci, len(col.Strs), n)
			}
			a.Strs = compress.EncodeStrings(col.Strs[:n], col.Nulls)
			if !opts.NoPSMA && a.Strs.Scheme != compress.SingleValue {
				v := a.Strs
				a.Psma = psma.Build(n, v.Width, v.CodeAt, 0)
			}
		default:
			return nil, fmt.Errorf("core: column %d: unsupported kind %v", ci, col.Kind)
		}
	}
	return b, nil
}

// sortPermutation returns the stable ordering of rows by the given column
// (NULLs first).
func sortPermutation(col ColumnData, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	isNull := func(i int) bool { return col.Nulls != nil && col.Nulls[i] }
	less := func(i, j int) bool {
		ni, nj := isNull(i), isNull(j)
		if ni || nj {
			return ni && !nj
		}
		switch col.Kind {
		case types.Int64:
			return col.Ints[i] < col.Ints[j]
		case types.Float64:
			return col.Floats[i] < col.Floats[j]
		default:
			return col.Strs[i] < col.Strs[j]
		}
	}
	sort.SliceStable(perm, func(a, b int) bool { return less(perm[a], perm[b]) })
	return perm
}

// applyPerm reorders a column by perm (identity when perm is nil), always
// truncating to n rows.
func applyPerm(col ColumnData, n int, perm []int) ColumnData {
	if perm == nil {
		return col
	}
	out := ColumnData{Kind: col.Kind}
	switch col.Kind {
	case types.Int64:
		out.Ints = make([]int64, n)
		for i, p := range perm {
			out.Ints[i] = col.Ints[p]
		}
	case types.Float64:
		out.Floats = make([]float64, n)
		for i, p := range perm {
			out.Floats[i] = col.Floats[p]
		}
	case types.String:
		out.Strs = make([]string, n)
		for i, p := range perm {
			out.Strs[i] = col.Strs[p]
		}
	}
	if col.Nulls != nil {
		out.Nulls = make([]bool, n)
		for i, p := range perm {
			out.Nulls[i] = col.Nulls[p]
		}
	}
	return out
}

// Rows returns the number of tuples in the block.
func (b *Block) Rows() int { return b.n }

// NumAttrs returns the number of attributes.
func (b *Block) NumAttrs() int { return len(b.attrs) }

// Attr exposes the compressed attribute at ordinal i (read-only).
func (b *Block) Attr(i int) *Attr { return &b.attrs[i] }

// Scheme returns the compression scheme of attribute col.
func (b *Block) Scheme(col int) compress.Scheme { return b.attrs[col].scheme() }

// LayoutKey identifies the block's storage-layout combination: the tuple of
// (scheme, width) per attribute. The number of distinct layout keys across a
// relation drives JIT code-path explosion (Figure 5).
func (b *Block) LayoutKey() string {
	key := make([]byte, 0, 2*len(b.attrs))
	for i := range b.attrs {
		a := &b.attrs[i]
		w := 0
		switch a.Kind {
		case types.Int64:
			w = a.Ints.Width
		case types.String:
			w = a.Strs.Width
		}
		key = append(key, byte(a.scheme()), byte(w))
	}
	return string(key)
}

// IsNull reports whether the cell (col, row) is NULL.
func (b *Block) IsNull(col, row int) bool {
	a := &b.attrs[col]
	if a.Validity == nil {
		switch a.Kind {
		case types.Int64:
			return a.Ints.AllNull
		case types.Float64:
			return a.Floats.AllNull
		default:
			return a.Strs.AllNull
		}
	}
	return !simd.BitmapGet(a.Validity, uint32(row))
}

// Int performs a positional point access on an integer attribute: O(1)
// decompression of one cell (§3.4).
func (b *Block) Int(col, row int) int64 { return b.attrs[col].Ints.Get(row) }

// AppendInts appends all rows of integer attribute col to dst and returns
// the extended slice — the bulk decode used when an index rebuild streams
// a key column out of a (possibly just reloaded) block. NULL rows append
// their underlying code's value; callers filter them with IsNull.
func (b *Block) AppendInts(col int, dst []int64) []int64 {
	v := b.attrs[col].Ints
	if cap(dst)-len(dst) < b.n {
		grown := make([]int64, len(dst), len(dst)+b.n)
		copy(grown, dst)
		dst = grown
	}
	for row := 0; row < b.n; row++ {
		dst = append(dst, v.Get(row))
	}
	return dst
}

// Float performs a positional point access on a double attribute.
func (b *Block) Float(col, row int) float64 { return b.attrs[col].Floats.Get(row) }

// Str performs a positional point access on a string attribute.
func (b *Block) Str(col, row int) string { return b.attrs[col].Strs.Get(row) }

// Value returns the cell (col, row) as a dynamic value. Prefer the typed
// accessors on hot paths.
func (b *Block) Value(col, row int) types.Value {
	a := &b.attrs[col]
	if b.IsNull(col, row) {
		return types.NullValue(a.Kind)
	}
	switch a.Kind {
	case types.Int64:
		return types.IntValue(a.Ints.Get(row))
	case types.Float64:
		return types.FloatValue(a.Floats.Get(row))
	default:
		return types.StringValue(a.Strs.Get(row))
	}
}

// CompressedSize returns the total in-memory footprint of the block's
// compressed vectors, bitmaps and PSMAs, in bytes.
func (b *Block) CompressedSize() int {
	size := 16 // block header
	for i := range b.attrs {
		size += b.AttrCompressedSize(i)
	}
	return size
}

// AttrCompressedSize returns the in-memory footprint of one attribute's
// compressed vector, validity bitmap and PSMA, in bytes. Per-scheme
// compression-ratio telemetry sums these by Scheme(i).
func (b *Block) AttrCompressedSize(i int) int {
	a := &b.attrs[i]
	size := 0
	switch a.Kind {
	case types.Int64:
		size += a.Ints.CompressedSize()
	case types.Float64:
		size += a.Floats.CompressedSize()
	default:
		size += a.Strs.CompressedSize()
	}
	if a.Validity != nil {
		size += len(a.Validity) * 8
	}
	if a.Psma != nil {
		size += a.Psma.SizeBytes()
	}
	return size
}

// UncompressedSize returns the footprint the same tuples occupy in the hot,
// uncompressed store (8 bytes per fixed-size value; strings as bytes plus
// offset).
func (b *Block) UncompressedSize() int {
	size := 0
	for i := range b.attrs {
		size += b.AttrUncompressedSize(i)
	}
	return size
}

// AttrUncompressedSize returns one attribute's hot-store footprint.
func (b *Block) AttrUncompressedSize(i int) int {
	a := &b.attrs[i]
	switch a.Kind {
	case types.Int64, types.Float64:
		return 8 * b.n
	default:
		size := 16 * b.n // string header
		v := a.Strs
		if v.Scheme == compress.SingleValue {
			size += len(v.Single) * b.n
		} else {
			for row := 0; row < b.n; row++ {
				size += len(v.Dict[v.CodeAt(row)])
			}
		}
		return size
	}
}
