package core

import (
	"fmt"
	"math"

	"datablocks/internal/compress"
	"datablocks/internal/psma"
	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// Predicate is one SARGable scan restriction (§3: =, is, <, ≤, >, ≥,
// between, plus LIKE-prefix on dictionary strings). Lo carries the constant
// for unary operators; Hi is the upper bound of Between. Constant kinds
// must match the column kind.
type Predicate struct {
	Col    int
	Op     types.CompareOp
	Lo, Hi types.Value
}

// DefaultVectorSize is the number of records fetched per scan invocation
// before they are pushed to the consumer — 8192 in HyPer (§4.1, Appendix A).
const DefaultVectorSize = 8192

// ScanSpec configures a block scan.
type ScanSpec struct {
	// Preds are evaluated on the compressed representation inside the scan.
	Preds []Predicate
	// Project lists the attribute ordinals to unpack for matching tuples.
	Project []int
	// VectorSize overrides DefaultVectorSize when positive.
	VectorSize int
	// UsePSMA enables Positional-SMA scan-range narrowing.
	UsePSMA bool
}

// predClass distinguishes how a compiled predicate is evaluated.
type predClass uint8

const (
	predCode  predClass = iota // simd kernels on compressed codes
	predFloat                  // scalar kernels on doubles
	predNull                   // validity-bitmap test
)

// compiledPred is a predicate translated into the block's physical domain.
type compiledPred struct {
	class predClass

	// predCode
	data   []byte
	width  int
	op     simd.Op
	c1, c2 uint64

	// predFloat
	fvals  []float64
	fop    simd.Op
	f1, f2 float64

	// predNull (also used to mask NULLs of value predicates)
	bitmap  []uint64
	wantSet bool

	// psma narrowing inputs (predCode with a range verdict only)
	psma    *psma.Table
	minCode uint64
	isRange bool
}

// Scanner evaluates a ScanSpec over one Data Block, yielding matches
// vector-at-a-time.
type Scanner struct {
	b       *Block
	spec    ScanSpec
	preds   []compiledPred
	vecSize int
	cur     int // next row to examine
	end     int
	skipped bool // block ruled out by SMA / dictionary probe
	matches []uint32
}

// NewScanner compiles spec against the block. A nil error with a skipped
// scanner (Next returning false immediately) means the block was ruled out
// before touching any data — the SMA skip of §3.2.
func NewScanner(b *Block, spec ScanSpec) (*Scanner, error) {
	s := &Scanner{b: b, spec: spec, vecSize: spec.VectorSize, end: b.n}
	if s.vecSize <= 0 {
		s.vecSize = DefaultVectorSize
	}
	for _, p := range spec.Preds {
		if p.Col < 0 || p.Col >= len(b.attrs) {
			return nil, fmt.Errorf("core: predicate column %d out of range", p.Col)
		}
		done, err := s.compilePred(p)
		if err != nil {
			return nil, err
		}
		if done { // predicate can never match: whole block skipped
			s.skipped = true
			s.cur = s.end
			return s, nil
		}
	}
	// Code predicates first: they are cheapest, PSMA-capable, and their
	// false positives on NULL don't-care codes are corrected by the
	// validity reductions that follow them.
	ordered := make([]compiledPred, 0, len(s.preds))
	for _, c := range s.preds {
		if c.class == predCode {
			ordered = append(ordered, c)
		}
	}
	for _, c := range s.preds {
		if c.class != predCode {
			ordered = append(ordered, c)
		}
	}
	s.preds = ordered
	if spec.UsePSMA {
		s.narrowWithPSMA()
	}
	return s, nil
}

// compilePred translates one predicate. It returns done=true when the
// predicate rules out the whole block.
func (s *Scanner) compilePred(p Predicate) (done bool, err error) {
	a := &s.b.attrs[p.Col]
	switch p.Op {
	case types.IsNull, types.IsNotNull:
		wantNull := p.Op == types.IsNull
		if a.Validity == nil {
			// No bitmap: the column is either entirely null or entirely
			// non-null, so the predicate is decided for the whole block.
			if s.attrAllNull(p.Col) == wantNull {
				return false, nil // trivially true: drop
			}
			return true, nil
		}
		s.preds = append(s.preds, compiledPred{class: predNull, bitmap: a.Validity, wantSet: !wantNull})
		return false, nil
	}

	// Value predicate: never matches NULL, so nullable columns get an
	// extra validity reduction.
	addValidity := func() {
		if a.Validity != nil {
			s.preds = append(s.preds, compiledPred{class: predNull, bitmap: a.Validity, wantSet: true})
		}
	}

	switch a.Kind {
	case types.Int64:
		if p.Lo.Kind() != types.Int64 {
			return false, fmt.Errorf("core: predicate on int column %d with %v constant", p.Col, p.Lo.Kind())
		}
		tr, isRange, err := translateInt(a.Ints, p)
		if err != nil {
			return false, err
		}
		return s.addTranslated(a, tr, isRange, a.Ints.Data, a.Ints.Width, a.Ints.MinCode(), addValidity)
	case types.String:
		if p.Lo.Kind() != types.String {
			return false, fmt.Errorf("core: predicate on string column %d with %v constant", p.Col, p.Lo.Kind())
		}
		tr, isRange, err := translateStr(a.Strs, p)
		if err != nil {
			return false, err
		}
		return s.addTranslated(a, tr, isRange, a.Strs.Data, a.Strs.Width, 0, addValidity)
	case types.Float64:
		if p.Lo.Kind() != types.Float64 {
			return false, fmt.Errorf("core: predicate on float column %d with %v constant", p.Col, p.Lo.Kind())
		}
		return s.compileFloat(a, p, addValidity)
	}
	return false, fmt.Errorf("core: unsupported column kind")
}

func (s *Scanner) attrAllNull(col int) bool {
	a := &s.b.attrs[col]
	switch a.Kind {
	case types.Int64:
		return a.Ints.AllNull
	case types.Float64:
		return a.Floats.AllNull
	default:
		return a.Strs.AllNull
	}
}

func (s *Scanner) addTranslated(a *Attr, tr compress.Translation, isRange bool, data []byte, width int, minCode uint64, addValidity func()) (bool, error) {
	switch tr.Verdict {
	case compress.None:
		return true, nil
	case compress.All:
		addValidity()
		return false, nil
	}
	op := simd.OpBetween
	if tr.Verdict == compress.NotEqual {
		op = simd.OpNe
	}
	s.preds = append(s.preds, compiledPred{
		class: predCode, data: data, width: width,
		op: op, c1: tr.C1, c2: tr.C2,
		psma: a.Psma, minCode: minCode, isRange: isRange && tr.Verdict == compress.Range,
	})
	addValidity()
	return false, nil
}

// translateInt normalizes an integer predicate to an inclusive range or a
// not-equal and translates it into the code domain.
func translateInt(v *compress.IntVector, p Predicate) (compress.Translation, bool, error) {
	c := func(val types.Value) int64 { return val.Int() }
	switch p.Op {
	case types.Eq:
		return v.TranslateRange(c(p.Lo), c(p.Lo)), true, nil
	case types.Ne:
		return v.TranslateNotEqual(c(p.Lo)), false, nil
	case types.Lt:
		if c(p.Lo) == math.MinInt64 {
			return compress.Translation{Verdict: compress.None}, false, nil
		}
		return v.TranslateRange(math.MinInt64, c(p.Lo)-1), true, nil
	case types.Le:
		return v.TranslateRange(math.MinInt64, c(p.Lo)), true, nil
	case types.Gt:
		if c(p.Lo) == math.MaxInt64 {
			return compress.Translation{Verdict: compress.None}, false, nil
		}
		return v.TranslateRange(c(p.Lo)+1, math.MaxInt64), true, nil
	case types.Ge:
		return v.TranslateRange(c(p.Lo), math.MaxInt64), true, nil
	case types.Between:
		return v.TranslateRange(c(p.Lo), c(p.Hi)), true, nil
	default:
		return compress.Translation{}, false, fmt.Errorf("core: operator %v not valid on integers", p.Op)
	}
}

func translateStr(v *compress.StringVector, p Predicate) (compress.Translation, bool, error) {
	switch p.Op {
	case types.Eq:
		return v.TranslateRange(p.Lo.Str(), p.Lo.Str()), true, nil
	case types.Ne:
		return v.TranslateNotEqual(p.Lo.Str()), false, nil
	case types.Lt:
		return v.TranslateBounds("", p.Lo.Str(), false, true, false, true), true, nil
	case types.Le:
		return v.TranslateBounds("", p.Lo.Str(), false, true, false, false), true, nil
	case types.Gt:
		return v.TranslateBounds(p.Lo.Str(), "", true, false, true, false), true, nil
	case types.Ge:
		return v.TranslateBounds(p.Lo.Str(), "", true, false, false, false), true, nil
	case types.Between:
		return v.TranslateRange(p.Lo.Str(), p.Hi.Str()), true, nil
	case types.Prefix:
		return v.TranslatePrefix(p.Lo.Str()), true, nil
	default:
		return compress.Translation{}, false, fmt.Errorf("core: operator %v not valid on strings", p.Op)
	}
}

// compileFloat performs the SMA check for doubles and compiles a scalar
// predicate (the paper's non-integer fallback, §4.2).
func (s *Scanner) compileFloat(a *Attr, p Predicate, addValidity func()) (bool, error) {
	v := a.Floats
	if v.AllNull {
		return true, nil
	}
	c1 := p.Lo.Float()
	c2 := c1
	var op simd.Op
	switch p.Op {
	case types.Eq:
		op = simd.OpEq
	case types.Ne:
		op = simd.OpNe
	case types.Lt:
		op = simd.OpLt
	case types.Le:
		op = simd.OpLe
	case types.Gt:
		op = simd.OpGt
	case types.Ge:
		op = simd.OpGe
	case types.Between:
		op = simd.OpBetween
		c2 = p.Hi.Float()
	default:
		return false, fmt.Errorf("core: operator %v not valid on doubles", p.Op)
	}
	switch smaFloat(op, c1, c2, v.Min, v.Max) {
	case compress.None:
		return true, nil
	case compress.All:
		addValidity()
		return false, nil
	}
	s.preds = append(s.preds, compiledPred{class: predFloat, fvals: v.Values, fop: op, f1: c1, f2: c2})
	addValidity()
	return false, nil
}

// smaFloat decides whether the SMA interval [min, max] proves a float
// predicate always-false (None), always-true (All), or undecided (Range).
func smaFloat(op simd.Op, c1, c2, min, max float64) compress.Verdict {
	switch op {
	case simd.OpEq:
		if c1 < min || c1 > max {
			return compress.None
		}
		if min == max && min == c1 {
			return compress.All
		}
	case simd.OpNe:
		if c1 < min || c1 > max {
			return compress.All
		}
		if min == max && min == c1 {
			return compress.None
		}
	case simd.OpLt:
		if min >= c1 {
			return compress.None
		}
		if max < c1 {
			return compress.All
		}
	case simd.OpLe:
		if min > c1 {
			return compress.None
		}
		if max <= c1 {
			return compress.All
		}
	case simd.OpGt:
		if max <= c1 {
			return compress.None
		}
		if min > c1 {
			return compress.All
		}
	case simd.OpGe:
		if max < c1 {
			return compress.None
		}
		if min >= c1 {
			return compress.All
		}
	default: // between
		if c1 > c2 || c2 < min || c1 > max {
			return compress.None
		}
		if c1 <= min && c2 >= max {
			return compress.All
		}
	}
	return compress.Range
}

// narrowWithPSMA intersects the per-predicate PSMA ranges to shrink the
// scanned row interval (§3.2). Predicates without a range verdict or
// without a PSMA contribute the full block.
func (s *Scanner) narrowWithPSMA() {
	r := psma.Range{Begin: 0, End: uint32(s.b.n)}
	narrowed := false
	for i := range s.preds {
		p := &s.preds[i]
		if p.class != predCode || p.psma == nil || !p.isRange {
			continue
		}
		pr := p.psma.LookupRange(p.c1-p.minCode, p.c2-p.minCode)
		r = r.Intersect(pr)
		narrowed = true
	}
	if !narrowed {
		return
	}
	s.cur = int(r.Begin)
	s.end = int(r.End)
	if r.Empty() {
		s.cur, s.end = 0, 0
		s.skipped = true
	}
}

// SkippedBySMA reports whether the whole block was ruled out before
// scanning (SMA bounds, dictionary probe miss, or empty PSMA range).
func (s *Scanner) SkippedBySMA() bool { return s.skipped }

// ScanRange returns the row interval the scan will actually examine after
// PSMA narrowing.
func (s *Scanner) ScanRange() (begin, end int) { return s.cur, s.end }

// Next fills batch with the next vector of matching tuples. It returns
// false when the block is exhausted. The batch's buffers are reused.
func (s *Scanner) Next(batch *Batch) bool {
	m, ok := s.NextMatches()
	if !ok {
		return false
	}
	s.Unpack(batch, m)
	return true
}

// NextMatches runs the find/reduce phase only, returning the next non-empty
// match-position vector (valid until the next call). Splitting matching
// from unpacking lets callers thin the match vector further — e.g. by early
// probing an upstream join's tagged hash table (Appendix E) — before paying
// for decompression.
func (s *Scanner) NextMatches() ([]uint32, bool) {
	for s.cur < s.end {
		hi := s.cur + s.vecSize
		if hi > s.end {
			hi = s.end
		}
		n := hi - s.cur
		base := uint32(s.cur)
		m := s.matches[:0]
		if len(s.preds) == 0 {
			m = simd.Sequence(m, n, base)
		} else {
			m = s.evalFirst(&s.preds[0], n, base, m)
			for i := 1; i < len(s.preds) && len(m) > 0; i++ {
				m = s.evalReduce(&s.preds[i], m)
			}
		}
		s.cur = hi
		s.matches = m
		if len(m) == 0 {
			continue
		}
		return m, true
	}
	return nil, false
}

// Unpack materializes the projected attributes at the given positions into
// the batch.
func (s *Scanner) Unpack(batch *Batch, m []uint32) { s.unpack(batch, m) }

func (s *Scanner) evalFirst(p *compiledPred, n int, base uint32, m []uint32) []uint32 {
	switch p.class {
	case predCode:
		return simd.Find(p.data[int(base)*p.width:], p.width, n, p.op, p.c1, p.c2, base, m)
	case predFloat:
		return simd.FindFloat64(p.fvals[base:int(base)+n], p.fop, p.f1, p.f2, base, m)
	default:
		m = simd.Sequence(m, n, base)
		return simd.ReduceBitmap(p.bitmap, p.wantSet, m)
	}
}

func (s *Scanner) evalReduce(p *compiledPred, m []uint32) []uint32 {
	switch p.class {
	case predCode:
		return simd.Reduce(p.data, p.width, p.op, p.c1, p.c2, m)
	case predFloat:
		return simd.ReduceFloat64(p.fvals, p.fop, p.f1, p.f2, m)
	default:
		return simd.ReduceBitmap(p.bitmap, p.wantSet, m)
	}
}

// UnpackColumn materializes one projected attribute (index k into the
// projection) at the given positions. It is the building block of lazy
// (late-materializing) scans: the consumer unpacks predicate columns
// first, thins the match vector, and only pays decompression of the
// remaining columns for surviving tuples.
func (s *Scanner) UnpackColumn(batch *Batch, k int, m []uint32) {
	if cap(batch.Cols) < len(s.spec.Project) {
		batch.Cols = make([]BatchCol, len(s.spec.Project))
	}
	batch.Cols = batch.Cols[:len(s.spec.Project)]
	s.unpackCol(batch, k, m)
}

// unpack materializes the projected attributes of the matched positions
// into the batch (§3.4 "unpacking matches").
func (s *Scanner) unpack(batch *Batch, m []uint32) {
	batch.N = len(m)
	batch.Pos = append(batch.Pos[:0], m...)
	if cap(batch.Cols) < len(s.spec.Project) {
		batch.Cols = make([]BatchCol, len(s.spec.Project))
	}
	batch.Cols = batch.Cols[:len(s.spec.Project)]
	for k := range s.spec.Project {
		s.unpackCol(batch, k, m)
	}
}

func (s *Scanner) unpackCol(batch *Batch, k int, m []uint32) {
	col := s.spec.Project[k]
	a := &s.b.attrs[col]
	bc := &batch.Cols[k]
	bc.Kind = a.Kind
	switch a.Kind {
	case types.Int64:
		bc.Ints = resizeI64(bc.Ints, len(m))
		a.Ints.Gather(m, bc.Ints)
	case types.Float64:
		bc.Floats = resizeF64(bc.Floats, len(m))
		a.Floats.Gather(m, bc.Floats)
	default:
		bc.Strs = resizeStr(bc.Strs, len(m))
		a.Strs.Gather(m, bc.Strs)
	}
	switch {
	case a.Validity != nil:
		bc.Nulls = resizeBool(bc.Nulls, len(m))
		for i, p := range m {
			bc.Nulls[i] = !simd.BitmapGet(a.Validity, p)
		}
	case s.attrAllNull(col):
		bc.Nulls = resizeBool(bc.Nulls, len(m))
		for i := range bc.Nulls {
			bc.Nulls[i] = true
		}
	default:
		bc.Nulls = nil
	}
}
