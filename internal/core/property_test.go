package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datablocks/internal/types"
)

// TestScanPropertyRandomBlocks is the core end-to-end property test: for
// arbitrary column contents and an arbitrary SARGable predicate, a block
// scan (with and without PSMA narrowing) must select exactly the rows a
// naive row-at-a-time evaluation selects, and unpack exactly their values.
func TestScanPropertyRandomBlocks(t *testing.T) {
	type input struct {
		Seed   int64
		N      uint16
		Domain uint16
		OpRaw  uint8
		C1     int64
		C2     int64
		Sort   bool
	}
	ops := []types.CompareOp{types.Eq, types.Ne, types.Lt, types.Le, types.Gt, types.Ge, types.Between}
	f := func(in input) bool {
		n := int(in.N)%2000 + 1
		domain := int64(in.Domain)%1000 + 1
		r := rand.New(rand.NewSource(in.Seed))
		vals := make([]int64, n)
		nulls := make([]bool, n)
		payload := make([]float64, n)
		for i := range vals {
			vals[i] = r.Int63n(domain) - domain/2
			nulls[i] = r.Intn(8) == 0
			payload[i] = float64(i)
		}
		sortBy := -1
		if in.Sort {
			sortBy = 0
		}
		blk, err := Freeze([]ColumnData{
			{Kind: types.Int64, Ints: vals, Nulls: nulls},
			{Kind: types.Float64, Floats: payload},
		}, n, FreezeOptions{SortBy: sortBy})
		if err != nil {
			return false
		}
		op := ops[int(in.OpRaw)%len(ops)]
		c1 := in.C1 % domain
		c2 := in.C2 % domain
		if op == types.Between && c1 > c2 {
			c1, c2 = c2, c1
		}
		pred := Predicate{Col: 0, Op: op, Lo: types.IntValue(c1), Hi: types.IntValue(c2)}
		for _, usePSMA := range []bool{false, true} {
			sc, err := NewScanner(blk, ScanSpec{
				Preds:   []Predicate{pred},
				Project: []int{0, 1},
				UsePSMA: usePSMA,
			})
			if err != nil {
				return false
			}
			got := map[uint32]int64{}
			var batch Batch
			for sc.Next(&batch) {
				for i, p := range batch.Pos {
					got[p] = batch.Cols[0].Ints[i]
				}
			}
			// Naive reference over the (possibly sorted) block contents.
			matched := 0
			for row := 0; row < blk.Rows(); row++ {
				if blk.IsNull(0, row) {
					continue
				}
				v := blk.Int(0, row)
				var want bool
				switch op {
				case types.Eq:
					want = v == c1
				case types.Ne:
					want = v != c1
				case types.Lt:
					want = v < c1
				case types.Le:
					want = v <= c1
				case types.Gt:
					want = v > c1
				case types.Ge:
					want = v >= c1
				default:
					want = v >= c1 && v <= c2
				}
				gv, ok := got[uint32(row)]
				if want != ok {
					return false
				}
				if ok {
					matched++
					if gv != v {
						return false
					}
				}
			}
			if matched != len(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSerializePropertyRandom round-trips random blocks through the flat
// binary format and verifies every cell.
func TestSerializePropertyRandom(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%1500 + 1
		r := rand.New(rand.NewSource(seed))
		ints := make([]int64, n)
		strs := make([]string, n)
		nulls := make([]bool, n)
		words := []string{"aa", "bb", "cc", "dd", "ee"}
		for i := range ints {
			ints[i] = r.Int63n(1 << uint(r.Intn(40)))
			strs[i] = words[r.Intn(len(words))]
			nulls[i] = r.Intn(6) == 0
		}
		blk, err := Freeze([]ColumnData{
			{Kind: types.Int64, Ints: ints},
			{Kind: types.String, Strs: strs, Nulls: nulls},
		}, n, FreezeOptions{SortBy: -1})
		if err != nil {
			return false
		}
		buf, err := blk.MarshalBinary()
		if err != nil {
			return false
		}
		b2, err := UnmarshalBlock(buf, []types.Kind{types.Int64, types.String})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if b2.Int(0, i) != ints[i] || b2.IsNull(1, i) != nulls[i] {
				return false
			}
			if !nulls[i] && b2.Str(1, i) != strs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
