package core

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"datablocks/internal/compress"
	"datablocks/internal/types"
)

// mkNulls builds a null mask: "none", "some" (every third row), "all".
func mkNulls(n int, mode string) []bool {
	switch mode {
	case "none":
		return nil
	case "all":
		nulls := make([]bool, n)
		for i := range nulls {
			nulls[i] = true
		}
		return nulls
	default: // some
		nulls := make([]bool, n)
		for i := 0; i < n; i += 3 {
			nulls[i] = true
		}
		return nulls
	}
}

// serializeCase produces one column engineered to freeze into a specific
// compression scheme.
type serializeCase struct {
	name   string
	kind   types.Kind
	scheme compress.Scheme
	gen    func(n int) ColumnData
}

func serializeCases() []serializeCase {
	return []serializeCase{
		{"int/single", types.Int64, compress.SingleValue, func(n int) ColumnData {
			ints := make([]int64, n)
			for i := range ints {
				ints[i] = 42
			}
			return ColumnData{Kind: types.Int64, Ints: ints}
		}},
		{"int/trunc1", types.Int64, compress.Truncation, func(n int) ColumnData {
			ints := make([]int64, n)
			for i := range ints {
				ints[i] = 1000 + int64(i%200)
			}
			return ColumnData{Kind: types.Int64, Ints: ints}
		}},
		{"int/trunc2", types.Int64, compress.Truncation, func(n int) ColumnData {
			ints := make([]int64, n)
			for i := range ints {
				ints[i] = int64(i * 7 % 60000)
			}
			return ColumnData{Kind: types.Int64, Ints: ints}
		}},
		{"int/trunc4", types.Int64, compress.Truncation, func(n int) ColumnData {
			ints := make([]int64, n)
			for i := range ints {
				ints[i] = int64(i) * 1_000_003
			}
			return ColumnData{Kind: types.Int64, Ints: ints}
		}},
		{"int/dict", types.Int64, compress.Dictionary, func(n int) ColumnData {
			// Two distinct values spread wider than 4-byte truncation can
			// reach, so the dictionary wins.
			ints := make([]int64, n)
			for i := range ints {
				if i%2 == 0 {
					ints[i] = -1 << 40
				} else {
					ints[i] = 1 << 40
				}
			}
			return ColumnData{Kind: types.Int64, Ints: ints}
		}},
		{"int/uncompressed", types.Int64, compress.Uncompressed, func(n int) ColumnData {
			// Pseudo-random full-width values: truncation needs 8 bytes and
			// the dictionary is as large as the data.
			ints := make([]int64, n)
			x := uint64(0x9E3779B97F4A7C15)
			for i := range ints {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				ints[i] = int64(x)
			}
			return ColumnData{Kind: types.Int64, Ints: ints}
		}},
		{"float/single", types.Float64, compress.SingleValue, func(n int) ColumnData {
			fs := make([]float64, n)
			for i := range fs {
				fs[i] = 3.25
			}
			return ColumnData{Kind: types.Float64, Floats: fs}
		}},
		{"float/uncompressed", types.Float64, compress.Uncompressed, func(n int) ColumnData {
			fs := make([]float64, n)
			for i := range fs {
				fs[i] = float64(i) * 0.5
			}
			return ColumnData{Kind: types.Float64, Floats: fs}
		}},
		{"str/single", types.String, compress.SingleValue, func(n int) ColumnData {
			ss := make([]string, n)
			for i := range ss {
				ss[i] = "constant"
			}
			return ColumnData{Kind: types.String, Strs: ss}
		}},
		{"str/dict", types.String, compress.Dictionary, func(n int) ColumnData {
			words := []string{"alpha", "bravo", "charlie", "delta", ""}
			ss := make([]string, n)
			for i := range ss {
				ss[i] = words[i%len(words)]
			}
			return ColumnData{Kind: types.String, Strs: ss}
		}},
	}
}

// TestSerializeRoundTripMatrix round-trips every compression scheme ×
// {no nulls, some nulls, all nulls} × {PSMA on, off} through
// MarshalBinary/UnmarshalBlock and compares the blocks cell by cell.
func TestSerializeRoundTripMatrix(t *testing.T) {
	const n = 512
	for _, tc := range serializeCases() {
		for _, nullMode := range []string{"none", "some", "all"} {
			for _, noPSMA := range []bool{false, true} {
				name := tc.name + "/nulls=" + nullMode
				if noPSMA {
					name += "/nopsma"
				}
				t.Run(name, func(t *testing.T) {
					col := tc.gen(n)
					col.Nulls = mkNulls(n, nullMode)
					blk, err := Freeze([]ColumnData{col}, n, FreezeOptions{SortBy: -1, NoPSMA: noPSMA})
					if err != nil {
						t.Fatalf("freeze: %v", err)
					}
					if nullMode == "none" && blk.Scheme(0) != tc.scheme {
						t.Fatalf("expected scheme %v, got %v (bad test setup)", tc.scheme, blk.Scheme(0))
					}
					if nullMode == "all" && blk.Scheme(0) != compress.SingleValue {
						t.Fatalf("all-null column froze to %v, want single-value", blk.Scheme(0))
					}
					buf, err := blk.MarshalBinary()
					if err != nil {
						t.Fatalf("marshal: %v", err)
					}
					got, err := UnmarshalBlock(buf, []types.Kind{tc.kind})
					if err != nil {
						t.Fatalf("unmarshal: %v", err)
					}
					if got.Rows() != blk.Rows() || got.Scheme(0) != blk.Scheme(0) {
						t.Fatalf("rows/scheme mismatch: %d/%v vs %d/%v",
							got.Rows(), got.Scheme(0), blk.Rows(), blk.Scheme(0))
					}
					if (got.Attr(0).Psma == nil) != (blk.Attr(0).Psma == nil) {
						t.Fatalf("PSMA presence changed across round-trip")
					}
					if got.Attr(0).NullCount != blk.Attr(0).NullCount {
						t.Fatalf("null count %d, want %d", got.Attr(0).NullCount, blk.Attr(0).NullCount)
					}
					for row := 0; row < n; row++ {
						want, have := blk.Value(0, row), got.Value(0, row)
						if want.IsNull() != have.IsNull() {
							t.Fatalf("row %d: null mismatch", row)
						}
						if !want.IsNull() && want.String() != have.String() {
							t.Fatalf("row %d: %v != %v", row, have, want)
						}
					}
				})
			}
		}
	}
}

// patchCRC recomputes the v2 checksum after a test mutated the buffer, so
// the mutation reaches the structural validation it targets.
func patchCRC(buf []byte) {
	if len(buf) >= headerSize {
		binary.LittleEndian.PutUint32(buf[crcOffset:],
			crc32.Checksum(buf[headerSize:], crcTable))
	}
}

func mustMarshalBlock(t *testing.T) ([]byte, []types.Kind) {
	t.Helper()
	const n = 256
	ints := make([]int64, n)
	strs := make([]string, n)
	for i := range ints {
		ints[i] = int64(i)
		strs[i] = []string{"x", "y", "z"}[i%3]
	}
	blk, err := Freeze([]ColumnData{
		{Kind: types.Int64, Ints: ints},
		{Kind: types.String, Strs: strs},
	}, n, FreezeOptions{SortBy: -1})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := blk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return buf, []types.Kind{types.Int64, types.String}
}

// TestUnmarshalDetectsCorruption flips payload bytes and checks the CRC
// rejects the buffer (the satellite guarantee: corruption is an error at
// reload, not a wrong query result).
func TestUnmarshalDetectsCorruption(t *testing.T) {
	buf, kinds := mustMarshalBlock(t)
	if _, err := UnmarshalBlock(buf, kinds); err != nil {
		t.Fatalf("pristine buffer rejected: %v", err)
	}
	for _, off := range []int{headerSize, headerSize + 7, len(buf) / 2, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0xFF
		if _, err := UnmarshalBlock(bad, kinds); err == nil {
			t.Fatalf("corrupt byte at %d went undetected", off)
		}
	}
}

// TestUnmarshalTruncated slices the buffer at every prefix length and
// requires an error, never a panic — including when the checksum is fixed
// up so structural validation, not the CRC, must catch the damage.
func TestUnmarshalTruncated(t *testing.T) {
	buf, kinds := mustMarshalBlock(t)
	for l := 0; l < len(buf); l += 13 {
		trunc := append([]byte(nil), buf[:l]...)
		if _, err := UnmarshalBlock(trunc, kinds); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", l)
		}
		patchCRC(trunc)
		if _, err := UnmarshalBlock(trunc, kinds); err == nil {
			t.Fatalf("truncation to %d bytes (CRC patched) went undetected", l)
		}
	}
}

// TestUnmarshalRejectsBadStructure corrupts individual header fields with
// a valid checksum, so each structural bound must fire.
func TestUnmarshalRejectsBadStructure(t *testing.T) {
	buf, kinds := mustMarshalBlock(t)
	mutate := func(name string, f func(b []byte)) {
		bad := append([]byte(nil), buf...)
		f(bad)
		patchCRC(bad)
		if _, err := UnmarshalBlock(bad, kinds); err == nil {
			t.Fatalf("%s went undetected", name)
		}
	}
	mutate("bad version", func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 1) })
	mutate("zero rows", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) })
	mutate("huge rows", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], MaxRows+1) })
	mutate("attr count", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 3) })
	mutate("data offset past end", func(b []byte) {
		binary.LittleEndian.PutUint32(b[headerSize+40:], uint32(len(b)))
	})
	mutate("data length past end", func(b []byte) {
		binary.LittleEndian.PutUint32(b[headerSize+44:], uint32(len(b)))
	})
	mutate("bogus scheme", func(b []byte) { b[headerSize+1] = 200 })
	mutate("huge string dictionary count", func(b []byte) {
		// Attribute 1 is the string dictionary: a crafted count must be
		// rejected by a bound check, not by a multi-GiB allocation.
		binary.LittleEndian.PutUint32(b[headerSize+attrHdrSize+52:], 0xFFFFFFF0)
	})
	mutate("string dict code out of range", func(b []byte) {
		// Attribute 1 is the string dictionary; its first code byte lives
		// at its data offset. 3 dictionary entries → code 250 is invalid.
		h := b[headerSize+attrHdrSize:]
		dataOff := binary.LittleEndian.Uint32(h[40:])
		b[dataOff] = 250
	})
}

// FuzzUnmarshalBlock feeds mutated buffers through UnmarshalBlock. The
// harness re-stamps the checksum so the fuzzer reaches the structural
// validation behind it; any input that parses must then be fully readable
// without panicking.
func FuzzUnmarshalBlock(f *testing.F) {
	const n = 64
	kinds := []types.Kind{types.Int64, types.Float64, types.String}
	seed := func(nullMode string, noPSMA bool) []byte {
		ints := make([]int64, n)
		floats := make([]float64, n)
		strs := make([]string, n)
		for i := range ints {
			ints[i] = int64(i % 17)
			floats[i] = float64(i) / 3
			strs[i] = []string{"a", "bb", "ccc"}[i%3]
		}
		blk, err := Freeze([]ColumnData{
			{Kind: types.Int64, Ints: ints, Nulls: mkNulls(n, nullMode)},
			{Kind: types.Float64, Floats: floats},
			{Kind: types.String, Strs: strs, Nulls: mkNulls(n, nullMode)},
		}, n, FreezeOptions{SortBy: -1, NoPSMA: noPSMA})
		if err != nil {
			f.Fatal(err)
		}
		buf, err := blk.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	f.Add(seed("none", false))
	f.Add(seed("some", false))
	f.Add(seed("all", true))
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := append([]byte(nil), data...)
		patchCRC(buf)
		blk, err := UnmarshalBlock(buf, kinds)
		if err != nil {
			return
		}
		// A buffer that parses must be safely readable end to end.
		for col := 0; col < blk.NumAttrs(); col++ {
			for row := 0; row < blk.Rows(); row++ {
				_ = blk.Value(col, row)
			}
		}
		if _, err := blk.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal of valid block failed: %v", err)
		}
	})
}
