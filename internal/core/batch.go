package core

import "datablocks/internal/types"

// Batch is one vector of unpacked tuples flowing from a vectorized scan
// into the consuming query pipeline (Figure 6). Buffers are reused across
// Next calls; consumers must not retain slices beyond the next call.
type Batch struct {
	// N is the number of tuples in the batch.
	N int
	// Pos holds the source row positions of the tuples within their chunk
	// or block — the match vector after all reductions. Storage layers use
	// it to address tuples for deletes and updates.
	Pos []uint32
	// Cols holds one unpacked vector per projected column.
	Cols []BatchCol
}

// BatchCol is one projected column of a batch.
type BatchCol struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	// Nulls marks NULL cells; nil when the column has no NULLs in this
	// batch's source.
	Nulls []bool
}

// Reset clears the batch for reuse without releasing buffers.
func (b *Batch) Reset() {
	b.N = 0
	b.Pos = b.Pos[:0]
}

// Value returns cell (col, row) of the batch as a dynamic value.
func (b *Batch) Value(col, row int) types.Value {
	c := &b.Cols[col]
	if c.Nulls != nil && c.Nulls[row] {
		return types.NullValue(c.Kind)
	}
	switch c.Kind {
	case types.Int64:
		return types.IntValue(c.Ints[row])
	case types.Float64:
		return types.FloatValue(c.Floats[row])
	default:
		return types.StringValue(c.Strs[row])
	}
}

func resizeI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeStr(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	return s[:n]
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
