package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"datablocks/internal/compress"
	"datablocks/internal/psma"
	"datablocks/internal/types"
)

// Serialization follows Figure 3: a single flat, pointer-free buffer
// starting with the tuple count, followed by per-attribute metadata
// (compression method and offsets to SMA/PSMA, dictionary, data vector and
// string section) and the sections themselves. Blocks carry no schema —
// replicating it per block would waste space (§3) — so deserialization
// takes the column kinds from the caller.
//
// Version 2 appends a CRC32-C (Castagnoli) checksum over everything after
// the fixed header to the header itself, so a block reloaded from
// secondary storage detects on-disk corruption at load time instead of
// surfacing it as wrong query results. Every offset and length read from
// the buffer is additionally bounds-checked: a truncated or corrupt buffer
// that happens to carry a valid checksum is rejected with an error, never
// a panic.

const (
	blockMagic = 0x4B4C4244 // "DBLK"
	// blockVersion 2 = v1 layout plus a CRC32-C field in the header
	// (header grew 16 → 24 bytes). v1 buffers are rejected.
	blockVersion = 2
	headerSize   = 24
	crcOffset    = 16 // CRC32-C over buf[headerSize:]
	attrHdrSize  = 64
	// dataSlack is appended to code vectors so 8-byte SWAR loads at the
	// tail stay in bounds.
	dataSlack = 8
)

const (
	flagValidity = 1 << iota
	flagPSMA
	flagAllNull
)

// crcTable is the Castagnoli polynomial table (CRC32-C, hardware
// accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MarshalBinary flattens the block into a self-contained byte buffer.
func (b *Block) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerSize+attrHdrSize*len(b.attrs))
	binary.LittleEndian.PutUint32(buf[0:], blockMagic)
	binary.LittleEndian.PutUint32(buf[4:], blockVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(b.n))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(b.attrs)))

	for i := range b.attrs {
		a := &b.attrs[i]
		// Header fields are written via absolute offsets into the current
		// buf: appends below reallocate the backing array, so a cached
		// subslice would go stale.
		hdr := headerSize + i*attrHdrSize
		putU32 := func(off int, v uint32) { binary.LittleEndian.PutUint32(buf[hdr+off:], v) }
		putU64 := func(off int, v uint64) { binary.LittleEndian.PutUint64(buf[hdr+off:], v) }
		buf[hdr+0] = byte(a.Kind)
		buf[hdr+1] = byte(a.scheme())
		var flags byte
		if a.Validity != nil {
			flags |= flagValidity
		}
		if a.Psma != nil {
			flags |= flagPSMA
		}
		putU32(4, uint32(a.NullCount))

		var width int
		var min, max, single uint64
		var dict []int64
		var data []byte
		var strs []string
		var singleStr string
		switch a.Kind {
		case types.Int64:
			v := a.Ints
			width = v.Width
			min, max, single = uint64(v.Min), uint64(v.Max), uint64(v.Single)
			dict, data = v.Dict, v.Data
			if v.AllNull {
				flags |= flagAllNull
			}
			if v.Scheme != compress.SingleValue {
				data = data[:v.N*v.Width]
			} else {
				data = nil
			}
		case types.Float64:
			v := a.Floats
			min = floatBits(v.Min)
			max = floatBits(v.Max)
			single = floatBits(v.Single)
			if v.AllNull {
				flags |= flagAllNull
			}
			if v.Scheme == compress.Uncompressed {
				data = make([]byte, 8*v.N)
				for j, f := range v.Values {
					binary.LittleEndian.PutUint64(data[j*8:], floatBits(f))
				}
			}
		case types.String:
			v := a.Strs
			width = v.Width
			strs = v.Dict
			singleStr = v.Single
			if v.AllNull {
				flags |= flagAllNull
			}
			if v.Scheme != compress.SingleValue {
				data = v.Data[:v.N*v.Width]
			}
		}
		buf[hdr+2] = byte(width)
		buf[hdr+3] = flags
		putU64(8, min)
		putU64(16, max)
		putU64(24, single)

		// dict section (integer dictionaries)
		putU32(32, uint32(len(buf)))
		putU32(36, uint32(len(dict)))
		for _, d := range dict {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(d))
		}
		// data section
		putU32(40, uint32(len(buf)))
		putU32(44, uint32(len(data)))
		buf = append(buf, data...)
		// string section: single string or string dictionary
		putU32(48, uint32(len(buf)))
		if strs != nil {
			putU32(52, uint32(len(strs)))
			for _, s := range strs {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		} else {
			putU32(52, 0)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(singleStr)))
			buf = append(buf, singleStr...)
		}
		// validity section
		putU32(56, uint32(len(buf)))
		for _, w := range a.Validity {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		// PSMA section
		putU32(60, uint32(len(buf)))
		if a.Psma != nil {
			for s := 0; s < a.Psma.NumSlots(); s++ {
				r := a.Psma.SlotRange(s)
				buf = binary.LittleEndian.AppendUint32(buf, r.Begin)
				buf = binary.LittleEndian.AppendUint32(buf, r.End)
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[crcOffset:], crc32.Checksum(buf[headerSize:], crcTable))
	return buf, nil
}

// section bounds-checks one serialized section and returns it. off and
// length come straight from the (untrusted) buffer.
func section(buf []byte, off uint32, length int, what string) ([]byte, error) {
	end := int(off) + length
	if length < 0 || int(off) < headerSize || end > len(buf) || end < int(off) {
		return nil, fmt.Errorf("core: %s section [%d:%d] outside buffer of %d bytes", what, off, end, len(buf))
	}
	return buf[off:end], nil
}

// checkCodes verifies every code of a dictionary-compressed vector indexes
// an existing dictionary entry, so a logically corrupt (but checksum-valid)
// buffer cannot cause an out-of-range access on first point access.
func checkCodes(data []byte, n, width, dictLen int, attr int) error {
	for i := 0; i < n; i++ {
		if c := readUintAt(data, i, width); c >= uint64(dictLen) {
			return fmt.Errorf("core: attribute %d: row %d code %d exceeds dictionary of %d", attr, i, c, dictLen)
		}
	}
	return nil
}

// readUintAt mirrors simd.ReadUint for the validated widths 1, 2, 4, 8.
func readUintAt(data []byte, idx, width int) uint64 {
	switch width {
	case 1:
		return uint64(data[idx])
	case 2:
		return uint64(binary.LittleEndian.Uint16(data[idx*2:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(data[idx*4:]))
	default:
		return binary.LittleEndian.Uint64(data[idx*8:])
	}
}

func validWidth(w int) bool { return w == 1 || w == 2 || w == 4 || w == 8 }

// UnmarshalBlock reconstructs a block from a flat buffer produced by
// MarshalBinary. kinds supplies the schema the block itself does not
// carry. The buffer is untrusted: the checksum is verified and every
// offset, length and code read from it is bounds-checked, so a truncated
// or corrupt buffer yields an error instead of a panic or wrong results.
func UnmarshalBlock(buf []byte, kinds []types.Kind) (*Block, error) {
	if len(buf) < headerSize {
		return nil, errors.New("core: buffer too short")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != blockMagic {
		return nil, errors.New("core: bad magic")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != blockVersion {
		return nil, fmt.Errorf("core: unsupported version %d", v)
	}
	if want, got := binary.LittleEndian.Uint32(buf[crcOffset:]), crc32.Checksum(buf[headerSize:], crcTable); want != got {
		return nil, fmt.Errorf("core: checksum mismatch: header says %08x, payload is %08x", want, got)
	}
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	if n < 1 || n > MaxRows {
		return nil, fmt.Errorf("core: block size %d out of range (1..%d)", n, MaxRows)
	}
	attrCount := int(binary.LittleEndian.Uint32(buf[12:]))
	if attrCount != len(kinds) {
		return nil, fmt.Errorf("core: block has %d attributes, schema has %d", attrCount, len(kinds))
	}
	if headerSize+attrCount*attrHdrSize > len(buf) {
		return nil, fmt.Errorf("core: %d attribute headers do not fit in %d bytes", attrCount, len(buf))
	}
	b := &Block{n: n, attrs: make([]Attr, attrCount)}
	for i := 0; i < attrCount; i++ {
		h := buf[headerSize+i*attrHdrSize:]
		a := &b.attrs[i]
		a.Kind = types.Kind(h[0])
		if a.Kind != kinds[i] {
			return nil, fmt.Errorf("core: attribute %d kind %v, schema says %v", i, a.Kind, kinds[i])
		}
		scheme := compress.Scheme(h[1])
		if scheme > compress.Truncation {
			return nil, fmt.Errorf("core: attribute %d: unknown scheme %d", i, h[1])
		}
		width := int(h[2])
		flags := h[3]
		a.NullCount = int(binary.LittleEndian.Uint32(h[4:]))
		if a.NullCount > n {
			return nil, fmt.Errorf("core: attribute %d: %d nulls in %d rows", i, a.NullCount, n)
		}
		min := binary.LittleEndian.Uint64(h[8:])
		max := binary.LittleEndian.Uint64(h[16:])
		single := binary.LittleEndian.Uint64(h[24:])
		dictOff := binary.LittleEndian.Uint32(h[32:])
		dictCount := int(binary.LittleEndian.Uint32(h[36:]))
		dataOff := binary.LittleEndian.Uint32(h[40:])
		dataLen := int(binary.LittleEndian.Uint32(h[44:]))
		strOff := binary.LittleEndian.Uint32(h[48:])
		strCount := int(binary.LittleEndian.Uint32(h[52:]))
		validityOff := binary.LittleEndian.Uint32(h[56:])
		psmaOff := binary.LittleEndian.Uint32(h[60:])

		// wantData is the exact code-vector size the scheme implies; the
		// accessors index data by row*width, so anything shorter would be
		// an out-of-range access waiting for its first point read.
		wantData := func(perRow int) error {
			if dataLen != n*perRow {
				return fmt.Errorf("core: attribute %d: data section is %d bytes, %d rows of width %d need %d",
					i, dataLen, n, perRow, n*perRow)
			}
			return nil
		}
		dataSec, err := section(buf, dataOff, dataLen, "data")
		if err != nil {
			return nil, err
		}
		var data []byte
		if dataLen > 0 {
			data = make([]byte, dataLen+dataSlack)
			copy(data, dataSec)
		}
		switch a.Kind {
		case types.Int64:
			switch scheme {
			case compress.SingleValue:
				if err := wantData(0); err != nil {
					return nil, err
				}
			case compress.Uncompressed:
				width = 8
				if err := wantData(8); err != nil {
					return nil, err
				}
			default: // Truncation, Dictionary
				if !validWidth(width) {
					return nil, fmt.Errorf("core: attribute %d: invalid code width %d", i, width)
				}
				if err := wantData(width); err != nil {
					return nil, err
				}
			}
			v := &compress.IntVector{
				Scheme: scheme, Width: width, N: n,
				AllNull: flags&flagAllNull != 0,
				Min:     int64(min), Max: int64(max), Single: int64(single),
				Data: data,
			}
			if scheme == compress.Dictionary {
				if dictCount < 1 {
					return nil, fmt.Errorf("core: attribute %d: dictionary scheme with empty dictionary", i)
				}
				dictSec, err := section(buf, dictOff, 8*dictCount, "dictionary")
				if err != nil {
					return nil, err
				}
				if err := checkCodes(data, n, width, dictCount, i); err != nil {
					return nil, err
				}
				v.Dict = make([]int64, dictCount)
				for j := range v.Dict {
					v.Dict[j] = int64(binary.LittleEndian.Uint64(dictSec[8*j:]))
				}
			}
			a.Ints = v
		case types.Float64:
			v := &compress.FloatVector{
				Scheme: scheme, N: n,
				AllNull: flags&flagAllNull != 0,
				Min:     floatFromBits(min), Max: floatFromBits(max), Single: floatFromBits(single),
			}
			switch scheme {
			case compress.SingleValue:
			case compress.Uncompressed:
				if err := wantData(8); err != nil {
					return nil, err
				}
				v.Values = make([]float64, n)
				for j := range v.Values {
					v.Values[j] = floatFromBits(binary.LittleEndian.Uint64(data[j*8:]))
				}
			default:
				return nil, fmt.Errorf("core: attribute %d: scheme %v not valid for doubles", i, scheme)
			}
			a.Floats = v
		case types.String:
			v := &compress.StringVector{
				Scheme: scheme, Width: width, N: n,
				AllNull: flags&flagAllNull != 0,
				Data:    data,
			}
			switch scheme {
			case compress.SingleValue:
				if err := wantData(0); err != nil {
					return nil, err
				}
				s, _, err := readString(buf, int(strOff), i)
				if err != nil {
					return nil, err
				}
				v.Single = s
			case compress.Dictionary:
				if strCount < 1 {
					return nil, fmt.Errorf("core: attribute %d: string dictionary is empty", i)
				}
				// Every dictionary entry occupies at least its 4-byte length
				// prefix; bound the count against the buffer before the
				// allocation, or a crafted count OOMs instead of erroring.
				if int(strOff)+4*strCount > len(buf) {
					return nil, fmt.Errorf("core: attribute %d: %d dictionary strings cannot fit in %d bytes", i, strCount, len(buf))
				}
				if !validWidth(width) {
					return nil, fmt.Errorf("core: attribute %d: invalid code width %d", i, width)
				}
				if err := wantData(width); err != nil {
					return nil, err
				}
				if err := checkCodes(data, n, width, strCount, i); err != nil {
					return nil, err
				}
				v.Dict = make([]string, strCount)
				off := int(strOff)
				for j := range v.Dict {
					s, next, err := readString(buf, off, i)
					if err != nil {
						return nil, err
					}
					v.Dict[j], off = s, next
				}
			default:
				return nil, fmt.Errorf("core: attribute %d: scheme %v not valid for strings", i, scheme)
			}
			a.Strs = v
		default:
			return nil, fmt.Errorf("core: attribute %d: unknown kind %d", i, h[0])
		}
		if flags&flagValidity != 0 {
			words := (n + 63) / 64
			sec, err := section(buf, validityOff, 8*words, "validity")
			if err != nil {
				return nil, err
			}
			a.Validity = make([]uint64, words)
			for j := range a.Validity {
				a.Validity[j] = binary.LittleEndian.Uint64(sec[8*j:])
			}
		}
		if flags&flagPSMA != 0 {
			if !validWidth(width) {
				return nil, fmt.Errorf("core: attribute %d: PSMA with invalid width %d", i, width)
			}
			t := psma.NewEmpty(width)
			sec, err := section(buf, psmaOff, 8*t.NumSlots(), "psma")
			if err != nil {
				return nil, err
			}
			for s := 0; s < t.NumSlots(); s++ {
				begin := binary.LittleEndian.Uint32(sec[8*s:])
				end := binary.LittleEndian.Uint32(sec[8*s+4:])
				if end > uint32(n) || begin > end {
					return nil, fmt.Errorf("core: attribute %d: PSMA slot %d range [%d,%d) exceeds %d rows", i, s, begin, end, n)
				}
				t.SetSlotRange(s, psma.Range{Begin: begin, End: end})
			}
			a.Psma = t
		}
	}
	return b, nil
}

// readString decodes one length-prefixed string at off, returning the
// string and the offset just past it.
func readString(buf []byte, off, attr int) (string, int, error) {
	if off < headerSize || off+4 > len(buf) {
		return "", 0, fmt.Errorf("core: attribute %d: string length at %d outside buffer of %d bytes", attr, off, len(buf))
	}
	l := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if l < 0 || off+l > len(buf) {
		return "", 0, fmt.Errorf("core: attribute %d: string of %d bytes at %d outside buffer of %d bytes", attr, l, off, len(buf))
	}
	return string(buf[off : off+l]), off + l, nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
