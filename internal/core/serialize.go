package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"datablocks/internal/compress"
	"datablocks/internal/psma"
	"datablocks/internal/types"
)

// Serialization follows Figure 3: a single flat, pointer-free buffer
// starting with the tuple count, followed by per-attribute metadata
// (compression method and offsets to SMA/PSMA, dictionary, data vector and
// string section) and the sections themselves. Blocks carry no schema —
// replicating it per block would waste space (§3) — so deserialization
// takes the column kinds from the caller.

const (
	blockMagic   = 0x4B4C4244 // "DBLK"
	blockVersion = 1
	headerSize   = 16
	attrHdrSize  = 64
	// dataSlack is appended to code vectors so 8-byte SWAR loads at the
	// tail stay in bounds.
	dataSlack = 8
)

const (
	flagValidity = 1 << iota
	flagPSMA
	flagAllNull
)

// MarshalBinary flattens the block into a self-contained byte buffer.
func (b *Block) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerSize+attrHdrSize*len(b.attrs))
	binary.LittleEndian.PutUint32(buf[0:], blockMagic)
	binary.LittleEndian.PutUint32(buf[4:], blockVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(b.n))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(b.attrs)))

	for i := range b.attrs {
		a := &b.attrs[i]
		// Header fields are written via absolute offsets into the current
		// buf: appends below reallocate the backing array, so a cached
		// subslice would go stale.
		hdr := headerSize + i*attrHdrSize
		putU32 := func(off int, v uint32) { binary.LittleEndian.PutUint32(buf[hdr+off:], v) }
		putU64 := func(off int, v uint64) { binary.LittleEndian.PutUint64(buf[hdr+off:], v) }
		buf[hdr+0] = byte(a.Kind)
		buf[hdr+1] = byte(a.scheme())
		var flags byte
		if a.Validity != nil {
			flags |= flagValidity
		}
		if a.Psma != nil {
			flags |= flagPSMA
		}
		putU32(4, uint32(a.NullCount))

		var width int
		var min, max, single uint64
		var dict []int64
		var data []byte
		var strs []string
		var singleStr string
		switch a.Kind {
		case types.Int64:
			v := a.Ints
			width = v.Width
			min, max, single = uint64(v.Min), uint64(v.Max), uint64(v.Single)
			dict, data = v.Dict, v.Data
			if v.AllNull {
				flags |= flagAllNull
			}
			if v.Scheme != compress.SingleValue {
				data = data[:v.N*v.Width]
			} else {
				data = nil
			}
		case types.Float64:
			v := a.Floats
			min = floatBits(v.Min)
			max = floatBits(v.Max)
			single = floatBits(v.Single)
			if v.AllNull {
				flags |= flagAllNull
			}
			if v.Scheme == compress.Uncompressed {
				data = make([]byte, 8*v.N)
				for j, f := range v.Values {
					binary.LittleEndian.PutUint64(data[j*8:], floatBits(f))
				}
			}
		case types.String:
			v := a.Strs
			width = v.Width
			strs = v.Dict
			singleStr = v.Single
			if v.AllNull {
				flags |= flagAllNull
			}
			if v.Scheme != compress.SingleValue {
				data = v.Data[:v.N*v.Width]
			}
		}
		buf[hdr+2] = byte(width)
		buf[hdr+3] = flags
		putU64(8, min)
		putU64(16, max)
		putU64(24, single)

		// dict section (integer dictionaries)
		putU32(32, uint32(len(buf)))
		putU32(36, uint32(len(dict)))
		for _, d := range dict {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(d))
		}
		// data section
		putU32(40, uint32(len(buf)))
		putU32(44, uint32(len(data)))
		buf = append(buf, data...)
		// string section: single string or string dictionary
		putU32(48, uint32(len(buf)))
		if strs != nil {
			putU32(52, uint32(len(strs)))
			for _, s := range strs {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		} else {
			putU32(52, 0)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(singleStr)))
			buf = append(buf, singleStr...)
		}
		// validity section
		putU32(56, uint32(len(buf)))
		for _, w := range a.Validity {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		// PSMA section
		putU32(60, uint32(len(buf)))
		if a.Psma != nil {
			for s := 0; s < a.Psma.NumSlots(); s++ {
				r := a.Psma.SlotRange(s)
				buf = binary.LittleEndian.AppendUint32(buf, r.Begin)
				buf = binary.LittleEndian.AppendUint32(buf, r.End)
			}
		}
	}
	return buf, nil
}

// UnmarshalBlock reconstructs a block from a flat buffer produced by
// MarshalBinary. kinds supplies the schema the block itself does not carry.
func UnmarshalBlock(buf []byte, kinds []types.Kind) (*Block, error) {
	if len(buf) < headerSize {
		return nil, errors.New("core: buffer too short")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != blockMagic {
		return nil, errors.New("core: bad magic")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != blockVersion {
		return nil, fmt.Errorf("core: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	attrCount := int(binary.LittleEndian.Uint32(buf[12:]))
	if attrCount != len(kinds) {
		return nil, fmt.Errorf("core: block has %d attributes, schema has %d", attrCount, len(kinds))
	}
	b := &Block{n: n, attrs: make([]Attr, attrCount)}
	for i := 0; i < attrCount; i++ {
		h := buf[headerSize+i*attrHdrSize:]
		a := &b.attrs[i]
		a.Kind = types.Kind(h[0])
		if a.Kind != kinds[i] {
			return nil, fmt.Errorf("core: attribute %d kind %v, schema says %v", i, a.Kind, kinds[i])
		}
		scheme := compress.Scheme(h[1])
		width := int(h[2])
		flags := h[3]
		a.NullCount = int(binary.LittleEndian.Uint32(h[4:]))
		min := binary.LittleEndian.Uint64(h[8:])
		max := binary.LittleEndian.Uint64(h[16:])
		single := binary.LittleEndian.Uint64(h[24:])
		dictOff := binary.LittleEndian.Uint32(h[32:])
		dictCount := int(binary.LittleEndian.Uint32(h[36:]))
		dataOff := binary.LittleEndian.Uint32(h[40:])
		dataLen := int(binary.LittleEndian.Uint32(h[44:]))
		strOff := binary.LittleEndian.Uint32(h[48:])
		strCount := int(binary.LittleEndian.Uint32(h[52:]))
		validityOff := binary.LittleEndian.Uint32(h[56:])
		psmaOff := binary.LittleEndian.Uint32(h[60:])

		var data []byte
		if dataLen > 0 {
			data = make([]byte, dataLen+dataSlack)
			copy(data, buf[dataOff:int(dataOff)+dataLen])
		}
		switch a.Kind {
		case types.Int64:
			v := &compress.IntVector{
				Scheme: scheme, Width: width, N: n,
				AllNull: flags&flagAllNull != 0,
				Min:     int64(min), Max: int64(max), Single: int64(single),
				Data: data,
			}
			if dictCount > 0 {
				v.Dict = make([]int64, dictCount)
				for j := range v.Dict {
					v.Dict[j] = int64(binary.LittleEndian.Uint64(buf[int(dictOff)+8*j:]))
				}
			}
			a.Ints = v
		case types.Float64:
			v := &compress.FloatVector{
				Scheme: scheme, N: n,
				AllNull: flags&flagAllNull != 0,
				Min:     floatFromBits(min), Max: floatFromBits(max), Single: floatFromBits(single),
			}
			if scheme == compress.Uncompressed {
				v.Values = make([]float64, n)
				for j := range v.Values {
					v.Values[j] = floatFromBits(binary.LittleEndian.Uint64(data[j*8:]))
				}
			}
			a.Floats = v
		case types.String:
			v := &compress.StringVector{
				Scheme: scheme, Width: width, N: n,
				AllNull: flags&flagAllNull != 0,
				Data:    data,
			}
			off := int(strOff)
			if strCount > 0 {
				v.Dict = make([]string, strCount)
				for j := range v.Dict {
					l := int(binary.LittleEndian.Uint32(buf[off:]))
					off += 4
					v.Dict[j] = string(buf[off : off+l])
					off += l
				}
			} else {
				l := int(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
				v.Single = string(buf[off : off+l])
			}
			a.Strs = v
		default:
			return nil, fmt.Errorf("core: attribute %d: unknown kind %d", i, h[0])
		}
		if flags&flagValidity != 0 {
			words := (n + 63) / 64
			a.Validity = make([]uint64, words)
			for j := range a.Validity {
				a.Validity[j] = binary.LittleEndian.Uint64(buf[int(validityOff)+8*j:])
			}
		}
		if flags&flagPSMA != 0 {
			t := psma.NewEmpty(width)
			for s := 0; s < t.NumSlots(); s++ {
				begin := binary.LittleEndian.Uint32(buf[int(psmaOff)+8*s:])
				end := binary.LittleEndian.Uint32(buf[int(psmaOff)+8*s+4:])
				t.SetSlotRange(s, psma.Range{Begin: begin, End: end})
			}
			a.Psma = t
		}
	}
	return b, nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
