package core

import (
	"math/rand"
	"testing"

	"datablocks/internal/compress"
	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// buildTestBlock freezes a 3-column block: id (int), price (float),
// category (string), with optional nulls in category.
func buildTestBlock(t *testing.T, n int, withNulls bool, opts FreezeOptions) (*Block, []int64, []float64, []string, []bool) {
	t.Helper()
	r := rand.New(rand.NewSource(17))
	ids := make([]int64, n)
	prices := make([]float64, n)
	cats := make([]string, n)
	catNames := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var nulls []bool
	if withNulls {
		nulls = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		ids[i] = int64(r.Intn(1000))
		prices[i] = float64(r.Intn(10000)) / 100
		cats[i] = catNames[r.Intn(len(catNames))]
		if withNulls && r.Intn(4) == 0 {
			nulls[i] = true
		}
	}
	b, err := Freeze([]ColumnData{
		{Kind: types.Int64, Ints: ids},
		{Kind: types.Float64, Floats: prices},
		{Kind: types.String, Strs: cats, Nulls: nulls},
	}, n, opts)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return b, ids, prices, cats, nulls
}

func collectAll(t *testing.T, b *Block, spec ScanSpec) ([]uint32, []Batch) {
	t.Helper()
	sc, err := NewScanner(b, spec)
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	var pos []uint32
	var batches []Batch
	var batch Batch
	for sc.Next(&batch) {
		pos = append(pos, batch.Pos...)
		// deep copy for inspection
		cp := Batch{N: batch.N, Pos: append([]uint32(nil), batch.Pos...)}
		for _, c := range batch.Cols {
			cc := BatchCol{Kind: c.Kind}
			cc.Ints = append([]int64(nil), c.Ints...)
			cc.Floats = append([]float64(nil), c.Floats...)
			cc.Strs = append([]string(nil), c.Strs...)
			if c.Nulls != nil {
				cc.Nulls = append([]bool(nil), c.Nulls...)
			}
			cp.Cols = append(cp.Cols, cc)
		}
		batches = append(batches, cp)
	}
	return pos, batches
}

func TestFreezeRejectsBadInput(t *testing.T) {
	if _, err := Freeze(nil, 10, FreezeOptions{SortBy: -1}); err == nil {
		t.Fatal("expected error for no columns")
	}
	if _, err := Freeze([]ColumnData{{Kind: types.Int64, Ints: make([]int64, 5)}}, MaxRows+1, FreezeOptions{SortBy: -1}); err == nil {
		t.Fatal("expected error for oversized block")
	}
	if _, err := Freeze([]ColumnData{{Kind: types.Int64, Ints: make([]int64, 3)}}, 5, FreezeOptions{SortBy: -1}); err == nil {
		t.Fatal("expected error for short column")
	}
}

func TestPointAccess(t *testing.T) {
	n := 1000
	b, ids, prices, cats, nulls := buildTestBlock(t, n, true, FreezeOptions{SortBy: -1})
	for i := 0; i < n; i++ {
		if got := b.Int(0, i); got != ids[i] {
			t.Fatalf("Int(0,%d) = %d, want %d", i, got, ids[i])
		}
		if got := b.Float(1, i); got != prices[i] {
			t.Fatalf("Float(1,%d) = %g, want %g", i, got, prices[i])
		}
		if b.IsNull(2, i) != nulls[i] {
			t.Fatalf("IsNull(2,%d) = %v, want %v", i, b.IsNull(2, i), nulls[i])
		}
		if !nulls[i] {
			if got := b.Str(2, i); got != cats[i] {
				t.Fatalf("Str(2,%d) = %q, want %q", i, got, cats[i])
			}
		}
		v := b.Value(2, i)
		if v.IsNull() != nulls[i] {
			t.Fatalf("Value(2,%d) null mismatch", i)
		}
	}
}

func TestScanNoPredicatesYieldsAll(t *testing.T) {
	n := 20000 // multiple vectors
	b, ids, _, _, _ := buildTestBlock(t, n, false, FreezeOptions{SortBy: -1})
	pos, batches := collectAll(t, b, ScanSpec{Project: []int{0}})
	if len(pos) != n {
		t.Fatalf("got %d rows, want %d", len(pos), n)
	}
	// Vector-at-a-time: every batch obeys the vector size.
	for _, batch := range batches {
		if batch.N > DefaultVectorSize {
			t.Fatalf("batch size %d exceeds vector size", batch.N)
		}
	}
	i := 0
	for _, batch := range batches {
		for j := 0; j < batch.N; j++ {
			if batch.Cols[0].Ints[j] != ids[pos[i]] {
				t.Fatalf("row %d: unpacked %d, want %d", i, batch.Cols[0].Ints[j], ids[pos[i]])
			}
			i++
		}
	}
}

// TestScanMatchesReference cross-checks every operator against a naive
// row-at-a-time evaluation, on all three column kinds, with NULLs.
func TestScanMatchesReference(t *testing.T) {
	n := 5000
	b, ids, prices, cats, nulls := buildTestBlock(t, n, true, FreezeOptions{SortBy: -1})
	intPreds := []Predicate{
		{Col: 0, Op: types.Eq, Lo: types.IntValue(500)},
		{Col: 0, Op: types.Ne, Lo: types.IntValue(500)},
		{Col: 0, Op: types.Lt, Lo: types.IntValue(100)},
		{Col: 0, Op: types.Le, Lo: types.IntValue(100)},
		{Col: 0, Op: types.Gt, Lo: types.IntValue(900)},
		{Col: 0, Op: types.Ge, Lo: types.IntValue(900)},
		{Col: 0, Op: types.Between, Lo: types.IntValue(250), Hi: types.IntValue(750)},
	}
	refInt := func(v int64, p Predicate) bool {
		switch p.Op {
		case types.Eq:
			return v == p.Lo.Int()
		case types.Ne:
			return v != p.Lo.Int()
		case types.Lt:
			return v < p.Lo.Int()
		case types.Le:
			return v <= p.Lo.Int()
		case types.Gt:
			return v > p.Lo.Int()
		case types.Ge:
			return v >= p.Lo.Int()
		default:
			return v >= p.Lo.Int() && v <= p.Hi.Int()
		}
	}
	for _, usePSMA := range []bool{false, true} {
		for _, p := range intPreds {
			var want []uint32
			for i, v := range ids {
				if refInt(v, p) {
					want = append(want, uint32(i))
				}
			}
			got, _ := collectAll(t, b, ScanSpec{Preds: []Predicate{p}, Project: []int{0}, UsePSMA: usePSMA})
			if !equalU32(got, want) {
				t.Fatalf("psma=%v pred %v: got %d matches, want %d", usePSMA, p.Op, len(got), len(want))
			}
		}
	}

	// Conjunction: int range + float range + string predicate (nullable).
	spec := ScanSpec{
		Preds: []Predicate{
			{Col: 0, Op: types.Between, Lo: types.IntValue(100), Hi: types.IntValue(800)},
			{Col: 1, Op: types.Lt, Lo: types.FloatValue(50)},
			{Col: 2, Op: types.Ge, Lo: types.StringValue("beta")},
		},
		Project: []int{0, 1, 2},
		UsePSMA: true,
	}
	var want []uint32
	for i := range ids {
		if ids[i] >= 100 && ids[i] <= 800 && prices[i] < 50 && !nulls[i] && cats[i] >= "beta" {
			want = append(want, uint32(i))
		}
	}
	got, batches := collectAll(t, b, spec)
	if !equalU32(got, want) {
		t.Fatalf("conjunction: got %d matches, want %d", len(got), len(want))
	}
	i := 0
	for _, batch := range batches {
		for j := 0; j < batch.N; j++ {
			p := want[i]
			if batch.Cols[0].Ints[j] != ids[p] || batch.Cols[1].Floats[j] != prices[p] || batch.Cols[2].Strs[j] != cats[p] {
				t.Fatalf("unpacked row %d mismatch", i)
			}
			i++
		}
	}
}

func TestScanIsNull(t *testing.T) {
	n := 3000
	b, _, _, _, nulls := buildTestBlock(t, n, true, FreezeOptions{SortBy: -1})
	var wantNull, wantNotNull []uint32
	for i, isNull := range nulls {
		if isNull {
			wantNull = append(wantNull, uint32(i))
		} else {
			wantNotNull = append(wantNotNull, uint32(i))
		}
	}
	got, _ := collectAll(t, b, ScanSpec{Preds: []Predicate{{Col: 2, Op: types.IsNull}}, Project: []int{0}})
	if !equalU32(got, wantNull) {
		t.Fatalf("IsNull: got %d, want %d", len(got), len(wantNull))
	}
	got, _ = collectAll(t, b, ScanSpec{Preds: []Predicate{{Col: 2, Op: types.IsNotNull}}, Project: []int{0}})
	if !equalU32(got, wantNotNull) {
		t.Fatalf("IsNotNull: got %d, want %d", len(got), len(wantNotNull))
	}
}

func TestSMABlockSkipping(t *testing.T) {
	n := 1000
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(5000 + i) // domain [5000, 5999]
	}
	b, err := Freeze([]ColumnData{{Kind: types.Int64, Ints: ids}}, n, FreezeOptions{SortBy: -1})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(b, ScanSpec{Preds: []Predicate{{Col: 0, Op: types.Lt, Lo: types.IntValue(1000)}}})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.SkippedBySMA() {
		t.Fatal("expected SMA skip for out-of-range predicate")
	}
	var batch Batch
	if sc.Next(&batch) {
		t.Fatal("skipped scanner must yield nothing")
	}
	// Dictionary probe miss also rules the block out: string equality on a
	// value between dictionary entries.
	sb, err := Freeze([]ColumnData{{Kind: types.String, Strs: []string{"aa", "cc", "aa", "cc"}}}, 4, FreezeOptions{SortBy: -1})
	if err != nil {
		t.Fatal(err)
	}
	sc, err = NewScanner(sb, ScanSpec{Preds: []Predicate{{Col: 0, Op: types.Eq, Lo: types.StringValue("bb")}}})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.SkippedBySMA() {
		t.Fatal("expected dictionary-probe skip")
	}
}

func TestPSMANarrowsSortedBlock(t *testing.T) {
	n := 1 << 16
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	b, err := Freeze([]ColumnData{{Kind: types.Int64, Ints: ids}}, n, FreezeOptions{SortBy: -1})
	if err != nil {
		t.Fatal(err)
	}
	spec := ScanSpec{
		Preds:   []Predicate{{Col: 0, Op: types.Between, Lo: types.IntValue(1000), Hi: types.IntValue(1099)}},
		Project: []int{0},
		UsePSMA: true,
	}
	sc, err := NewScanner(b, spec)
	if err != nil {
		t.Fatal(err)
	}
	begin, end := sc.ScanRange()
	if end-begin >= n {
		t.Fatalf("PSMA did not narrow: [%d,%d)", begin, end)
	}
	if begin > 1000 || end < 1100 {
		t.Fatalf("PSMA range [%d,%d) excludes matches", begin, end)
	}
	got, _ := collectAll(t, b, spec)
	if len(got) != 100 || got[0] != 1000 || got[99] != 1099 {
		t.Fatalf("wrong matches: %d rows", len(got))
	}
	// Without PSMA the range is the whole block but results are identical.
	spec.UsePSMA = false
	got2, _ := collectAll(t, b, spec)
	if !equalU32(got, got2) {
		t.Fatal("PSMA changed scan results")
	}
}

func TestFreezeSortImprovesPSMA(t *testing.T) {
	// Shuffled values, then frozen with SortBy: the PSMA ranges become
	// tight (the Figure 11 mechanism).
	n := 1 << 14
	r := rand.New(rand.NewSource(3))
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	r.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	payload := make([]int64, n)
	for i := range payload {
		payload[i] = ids[i] * 10
	}
	b, err := Freeze([]ColumnData{
		{Kind: types.Int64, Ints: ids},
		{Kind: types.Int64, Ints: payload},
	}, n, FreezeOptions{SortBy: 0})
	if err != nil {
		t.Fatal(err)
	}
	// After sorting, row i holds id i; tuples stay intact.
	for i := 0; i < n; i++ {
		if b.Int(0, i) != int64(i) || b.Int(1, i) != int64(i)*10 {
			t.Fatalf("sort broke tuple integrity at %d: (%d, %d)", i, b.Int(0, i), b.Int(1, i))
		}
	}
	spec := ScanSpec{
		Preds:   []Predicate{{Col: 0, Op: types.Eq, Lo: types.IntValue(42)}},
		Project: []int{1},
		UsePSMA: true,
	}
	sc, err := NewScanner(b, spec)
	if err != nil {
		t.Fatal(err)
	}
	begin, end := sc.ScanRange()
	if end-begin > 256 {
		t.Fatalf("sorted block PSMA range too wide: [%d,%d)", begin, end)
	}
}

func TestNoPSMAOption(t *testing.T) {
	n := 100
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	b, err := Freeze([]ColumnData{{Kind: types.Int64, Ints: ids}}, n, FreezeOptions{SortBy: -1, NoPSMA: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Attr(0).Psma != nil {
		t.Fatal("NoPSMA ignored")
	}
	got, _ := collectAll(t, b, ScanSpec{
		Preds:   []Predicate{{Col: 0, Op: types.Eq, Lo: types.IntValue(5)}},
		Project: []int{0},
		UsePSMA: true, // requesting PSMA on a block without one must still work
	})
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v", got)
	}
}

// TestScanWithDeletes: delete filtering happens above the scanner (the
// exec layer thins match vectors through its epoch-aware ChunkView before
// unpacking); the scanner itself returns every predicate match, and the
// caller-side ReduceBitmap pass yields exactly the live matches.
func TestScanWithDeletes(t *testing.T) {
	n := 1000
	b, ids, _, _, _ := buildTestBlock(t, n, false, FreezeOptions{SortBy: -1})
	deleted := make([]uint64, simd.BitmapWords(n))
	r := rand.New(rand.NewSource(9))
	isDel := make([]bool, n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			simd.BitmapSet(deleted, uint32(i))
			isDel[i] = true
		}
	}
	var all, want []uint32
	for i, v := range ids {
		if v < 500 {
			all = append(all, uint32(i))
			if !isDel[i] {
				want = append(want, uint32(i))
			}
		}
	}
	got, _ := collectAll(t, b, ScanSpec{
		Preds:   []Predicate{{Col: 0, Op: types.Lt, Lo: types.IntValue(500)}},
		Project: []int{0},
	})
	if !equalU32(got, all) {
		t.Fatalf("scanner matches: got %d, want %d", len(got), len(all))
	}
	live := simd.ReduceBitmap(deleted, false, append([]uint32(nil), got...))
	if !equalU32(live, want) {
		t.Fatalf("live matches: got %d, want %d", len(live), len(want))
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	n := 4096
	b, ids, prices, cats, nulls := buildTestBlock(t, n, true, FreezeOptions{SortBy: -1})
	buf, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := UnmarshalBlock(buf, []types.Kind{types.Int64, types.Float64, types.String})
	if err != nil {
		t.Fatal(err)
	}
	if b2.Rows() != n {
		t.Fatalf("rows = %d", b2.Rows())
	}
	for i := 0; i < n; i++ {
		if b2.Int(0, i) != ids[i] || b2.Float(1, i) != prices[i] {
			t.Fatalf("row %d: values differ after round trip", i)
		}
		if b2.IsNull(2, i) != nulls[i] {
			t.Fatalf("row %d: null flag differs", i)
		}
		if !nulls[i] && b2.Str(2, i) != cats[i] {
			t.Fatalf("row %d: string differs", i)
		}
	}
	// Scans over the deserialized block must behave identically, including
	// PSMA narrowing.
	spec := ScanSpec{
		Preds:   []Predicate{{Col: 0, Op: types.Between, Lo: types.IntValue(100), Hi: types.IntValue(200)}},
		Project: []int{0, 2},
		UsePSMA: true,
	}
	got1, _ := collectAll(t, b, spec)
	got2, _ := collectAll(t, b2, spec)
	if !equalU32(got1, got2) {
		t.Fatalf("scan differs after round trip: %d vs %d", len(got1), len(got2))
	}
	// Schema mismatch must be rejected.
	if _, err := UnmarshalBlock(buf, []types.Kind{types.Int64, types.Float64}); err == nil {
		t.Fatal("expected attribute-count mismatch error")
	}
	if _, err := UnmarshalBlock(buf[:8], nil); err == nil {
		t.Fatal("expected short-buffer error")
	}
}

func TestSerializeAllSchemes(t *testing.T) {
	n := 300
	single := make([]int64, n)
	for i := range single {
		single[i] = 7
	}
	allNull := make([]bool, n)
	for i := range allNull {
		allNull[i] = true
	}
	wide := make([]int64, n)
	for i := range wide {
		wide[i] = int64(i) * (1 << 40) // uncompressed
	}
	floats := make([]float64, n)
	for i := range floats {
		floats[i] = float64(i) * 1.5
	}
	strs := make([]string, n)
	for i := range strs {
		strs[i] = []string{"x", "y"}[i%2]
	}
	b, err := Freeze([]ColumnData{
		{Kind: types.Int64, Ints: single},
		{Kind: types.Int64, Ints: single, Nulls: allNull},
		{Kind: types.Int64, Ints: wide},
		{Kind: types.Float64, Floats: floats},
		{Kind: types.String, Strs: strs},
	}, n, FreezeOptions{SortBy: -1})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	kinds := []types.Kind{types.Int64, types.Int64, types.Int64, types.Float64, types.String}
	b2, err := UnmarshalBlock(buf, kinds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if b2.Int(0, i) != 7 || !b2.IsNull(1, i) || b2.Int(2, i) != wide[i] ||
			b2.Float(3, i) != floats[i] || b2.Str(4, i) != strs[i] {
			t.Fatalf("round trip mismatch at row %d", i)
		}
	}
	if b2.Scheme(0) != compress.SingleValue || b2.Scheme(2) != compress.Uncompressed {
		t.Fatalf("schemes lost: %v %v", b2.Scheme(0), b2.Scheme(2))
	}
}

func TestLayoutKey(t *testing.T) {
	a := make([]int64, 100)
	bcol := make([]int64, 100)
	for i := range a {
		a[i] = int64(i)           // trunc1
		bcol[i] = int64(i) * 1000 // trunc4
	}
	b1, _ := Freeze([]ColumnData{{Kind: types.Int64, Ints: a}, {Kind: types.Int64, Ints: bcol}}, 100, FreezeOptions{SortBy: -1})
	b2, _ := Freeze([]ColumnData{{Kind: types.Int64, Ints: a}, {Kind: types.Int64, Ints: a}}, 100, FreezeOptions{SortBy: -1})
	if b1.LayoutKey() == b2.LayoutKey() {
		t.Fatal("different layouts share a key")
	}
	b3, _ := Freeze([]ColumnData{{Kind: types.Int64, Ints: a}, {Kind: types.Int64, Ints: bcol}}, 100, FreezeOptions{SortBy: -1})
	if b1.LayoutKey() != b3.LayoutKey() {
		t.Fatal("same layout produced different keys")
	}
}

func TestCompressionRatio(t *testing.T) {
	// Dictionary-friendly data should compress well (the §3.3 claim of up
	// to 5x on real data sets).
	n := 1 << 16
	cats := make([]string, n)
	names := []string{"AIR", "AIR REG", "MAIL", "RAIL", "SHIP", "TRUCK", "FOB"}
	small := make([]int64, n)
	for i := range cats {
		cats[i] = names[i%len(names)]
		small[i] = int64(i % 100)
	}
	b, err := Freeze([]ColumnData{
		{Kind: types.String, Strs: cats},
		{Kind: types.Int64, Ints: small},
	}, n, FreezeOptions{SortBy: -1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b.UncompressedSize()) / float64(b.CompressedSize())
	if ratio < 4 {
		t.Fatalf("compression ratio %.2f too low for dict-friendly data", ratio)
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
