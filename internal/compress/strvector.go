package compress

import (
	"sort"

	"datablocks/internal/simd"
)

// StringVector is one string attribute of a Data Block. Strings are always
// reduced to integer codes (§3.4: "also string types are always compressed
// to integers"): either a single value or an order-preserving dictionary.
// The dictionary doubles as the block's string section.
type StringVector struct {
	Scheme  Scheme // SingleValue or Dictionary
	Width   int
	N       int
	AllNull bool
	Single  string
	Dict    []string // ascending distinct values
	Data    []byte   // key codes
}

// EncodeStrings compresses one string column. nulls may be nil; null
// positions receive code 0 as a don't-care.
func EncodeStrings(values []string, nulls []bool) *StringVector {
	v := &StringVector{N: len(values)}
	nonNull := values
	if nulls != nil {
		nonNull = make([]string, 0, len(values))
		for i, s := range values {
			if !nulls[i] {
				nonNull = append(nonNull, s)
			}
		}
	}
	if len(nonNull) == 0 {
		v.Scheme = SingleValue
		v.AllNull = true
		return v
	}
	dict := sortedDistinctStrings(nonNull)
	if len(dict) == 1 {
		v.Scheme = SingleValue
		v.Single = dict[0]
		return v
	}
	v.Scheme = Dictionary
	v.Dict = dict
	v.Width = ByteWidth(uint64(len(dict) - 1))
	idx := make(map[string]uint64, len(dict))
	for i, s := range dict {
		idx[s] = uint64(i)
	}
	v.Data = make([]byte, len(values)*v.Width+8)
	for i, s := range values {
		code := uint64(0)
		if nulls == nil || !nulls[i] {
			code = idx[s]
		}
		simd.WriteUint(v.Data, i, v.Width, code)
	}
	return v
}

// Get decodes the string at row i (don't-care for null rows).
func (v *StringVector) Get(i int) string {
	if v.Scheme == SingleValue {
		return v.Single
	}
	return v.Dict[simd.ReadUint(v.Data, i, v.Width)]
}

// CodeAt returns the raw dictionary code at row i.
func (v *StringVector) CodeAt(i int) uint64 { return simd.ReadUint(v.Data, i, v.Width) }

// Min returns the smallest non-null string (SMA).
func (v *StringVector) Min() string {
	if v.Scheme == SingleValue {
		return v.Single
	}
	return v.Dict[0]
}

// Max returns the largest non-null string (SMA).
func (v *StringVector) Max() string {
	if v.Scheme == SingleValue {
		return v.Single
	}
	return v.Dict[len(v.Dict)-1]
}

// TranslateRange rewrites an inclusive string range into the code domain.
func (v *StringVector) TranslateRange(lo, hi string) Translation {
	return v.TranslateBounds(lo, hi, true, true, false, false)
}

// TranslateBounds rewrites a general string interval into the code domain.
// hasLo/hasHi select one- or two-sided intervals; loExcl/hiExcl make the
// respective bound strict. Strings have no predecessor/successor, so
// strict bounds cannot be rewritten as inclusive ones the way integers can.
func (v *StringVector) TranslateBounds(lo, hi string, hasLo, hasHi, loExcl, hiExcl bool) Translation {
	if v.AllNull {
		return Translation{Verdict: None}
	}
	inBounds := func(s string) bool {
		if hasLo && (s < lo || loExcl && s == lo) {
			return false
		}
		if hasHi && (s > hi || hiExcl && s == hi) {
			return false
		}
		return true
	}
	if v.Scheme == SingleValue {
		if inBounds(v.Single) {
			return Translation{Verdict: All}
		}
		return Translation{Verdict: None}
	}
	c1 := 0
	if hasLo {
		if loExcl {
			c1 = sort.Search(len(v.Dict), func(i int) bool { return v.Dict[i] > lo })
		} else {
			c1 = sort.SearchStrings(v.Dict, lo)
		}
	}
	c2 := len(v.Dict) - 1
	if hasHi {
		if hiExcl {
			c2 = sort.SearchStrings(v.Dict, hi) - 1
		} else {
			c2 = sort.Search(len(v.Dict), func(i int) bool { return v.Dict[i] > hi }) - 1
		}
	}
	switch {
	case c1 > c2:
		return Translation{Verdict: None}
	case c1 == 0 && c2 == len(v.Dict)-1:
		return Translation{Verdict: All}
	default:
		return Translation{Verdict: Range, C1: uint64(c1), C2: uint64(c2)}
	}
}

// TranslatePrefix rewrites a LIKE 'p%' prefix predicate into a code range,
// exploiting the order-preserving dictionary.
func (v *StringVector) TranslatePrefix(p string) Translation {
	if v.AllNull {
		return Translation{Verdict: None}
	}
	if p == "" {
		return Translation{Verdict: All}
	}
	if v.Scheme == SingleValue {
		if len(v.Single) >= len(p) && v.Single[:len(p)] == p {
			return Translation{Verdict: All}
		}
		return Translation{Verdict: None}
	}
	c1 := sort.SearchStrings(v.Dict, p)
	c2 := sort.Search(len(v.Dict), func(i int) bool {
		s := v.Dict[i]
		return len(s) < len(p) && s > p || len(s) >= len(p) && s[:len(p)] > p
	}) - 1
	if c1 > c2 {
		return Translation{Verdict: None}
	}
	if c1 == 0 && c2 == len(v.Dict)-1 {
		return Translation{Verdict: All}
	}
	return Translation{Verdict: Range, C1: uint64(c1), C2: uint64(c2)}
}

// TranslateNotEqual rewrites v != c into the code domain.
func (v *StringVector) TranslateNotEqual(c string) Translation {
	if v.AllNull {
		return Translation{Verdict: None}
	}
	if v.Scheme == SingleValue {
		if v.Single == c {
			return Translation{Verdict: None}
		}
		return Translation{Verdict: All}
	}
	i := sort.SearchStrings(v.Dict, c)
	if i >= len(v.Dict) || v.Dict[i] != c {
		return Translation{Verdict: All}
	}
	return Translation{Verdict: NotEqual, C1: uint64(i)}
}

// CompressedSize returns the in-memory footprint in bytes: key codes plus
// the dictionary's string bytes and per-entry offsets.
func (v *StringVector) CompressedSize() int {
	size := headerOverhead
	switch v.Scheme {
	case SingleValue:
		return size + len(v.Single) + 4
	default:
		for _, s := range v.Dict {
			size += len(s) + 4
		}
		return size + v.N*v.Width
	}
}

// FloatVector is one double attribute. Doubles are never truncated (§3.3);
// the only schemes are single-value and uncompressed.
type FloatVector struct {
	Scheme   Scheme // SingleValue or Uncompressed
	N        int
	AllNull  bool
	Min, Max float64
	Single   float64
	Values   []float64
}

// EncodeFloats compresses one double column.
func EncodeFloats(values []float64, nulls []bool) *FloatVector {
	v := &FloatVector{N: len(values)}
	first := true
	for i, x := range values {
		if nulls != nil && nulls[i] {
			continue
		}
		if first {
			v.Min, v.Max = x, x
			first = false
			continue
		}
		if x < v.Min {
			v.Min = x
		}
		if x > v.Max {
			v.Max = x
		}
	}
	if first {
		v.Scheme = SingleValue
		v.AllNull = true
		return v
	}
	if v.Min == v.Max {
		v.Scheme = SingleValue
		v.Single = v.Min
		return v
	}
	v.Scheme = Uncompressed
	v.Values = append([]float64(nil), values...)
	if nulls != nil {
		for i := range v.Values {
			if nulls[i] {
				v.Values[i] = v.Min // don't-care
			}
		}
	}
	return v
}

// Get returns the double at row i (don't-care for null rows).
func (v *FloatVector) Get(i int) float64 {
	if v.Scheme == SingleValue {
		return v.Single
	}
	return v.Values[i]
}

// CompressedSize returns the in-memory footprint in bytes.
func (v *FloatVector) CompressedSize() int {
	if v.Scheme == SingleValue {
		return headerOverhead + 8
	}
	return headerOverhead + 8*v.N
}
