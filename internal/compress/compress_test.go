package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeIntsSchemes(t *testing.T) {
	tests := []struct {
		name   string
		values []int64
		nulls  []bool
		scheme Scheme
		width  int
	}{
		{"single", []int64{7, 7, 7, 7}, nil, SingleValue, 0},
		{"all-null", []int64{0, 0}, []bool{true, true}, SingleValue, 0},
		{"trunc1", []int64{1000, 1001, 1002, 1255}, nil, Truncation, 1},
		{"trunc2", []int64{0, 65535, 3, 9}, nil, Truncation, 2},
		{"trunc4", []int64{0, 1 << 30, 5, 6}, nil, Truncation, 4},
		{"uncompressed", []int64{math.MinInt64, math.MaxInt64, 0, 5}, nil, Uncompressed, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := EncodeInts(tt.values, tt.nulls)
			if v.Scheme != tt.scheme {
				t.Fatalf("scheme = %v, want %v", v.Scheme, tt.scheme)
			}
			if v.Width != tt.width {
				t.Fatalf("width = %d, want %d", v.Width, tt.width)
			}
			for i, want := range tt.values {
				if tt.nulls != nil && tt.nulls[i] {
					continue
				}
				if got := v.Get(i); got != want {
					t.Fatalf("Get(%d) = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestDictionaryChosenForWideSparseDomain(t *testing.T) {
	// Few distinct values spread across a huge range: truncation would need
	// 8 bytes; dictionary needs 1-byte keys.
	values := make([]int64, 1000)
	domain := []int64{0, 1 << 40, 1 << 50, -(1 << 45)}
	for i := range values {
		values[i] = domain[i%len(domain)]
	}
	v := EncodeInts(values, nil)
	if v.Scheme != Dictionary {
		t.Fatalf("scheme = %v, want Dictionary", v.Scheme)
	}
	if v.Width != 1 {
		t.Fatalf("width = %d, want 1", v.Width)
	}
	for i, want := range values {
		if got := v.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	// Order preservation: codes must sort like values.
	for i := 1; i < len(v.Dict); i++ {
		if v.Dict[i-1] >= v.Dict[i] {
			t.Fatalf("dictionary not strictly ascending at %d", i)
		}
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(values []int64, seed int64) bool {
		if len(values) == 0 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		nulls := make([]bool, len(values))
		for i := range nulls {
			nulls[i] = r.Intn(5) == 0
		}
		v := EncodeInts(values, nulls)
		for i, want := range values {
			if nulls[i] {
				continue
			}
			if v.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateRangeInt(t *testing.T) {
	values := []int64{10, 20, 30, 40, 50}
	v := EncodeInts(values, nil)
	check := func(lo, hi int64, verdict Verdict) Translation {
		t.Helper()
		tr := v.TranslateRange(lo, hi)
		if tr.Verdict != verdict {
			t.Fatalf("TranslateRange(%d,%d) verdict = %v, want %v", lo, hi, tr.Verdict, verdict)
		}
		return tr
	}
	check(0, 5, None)   // below min: block skip
	check(60, 99, None) // above max: block skip
	check(10, 50, All)  // covers whole domain
	check(0, 100, All)  // superset
	tr := check(15, 35, Range)
	// verify translated codes select exactly {20, 30}
	count := 0
	for i := range values {
		c := v.CodeAt(i)
		if c >= tr.C1 && c <= tr.C2 {
			count++
			if values[i] < 15 || values[i] > 35 {
				t.Fatalf("false positive at %d", i)
			}
		}
	}
	if count != 2 {
		t.Fatalf("matched %d, want 2", count)
	}
}

// TestTranslateRangeEquivalence: for any scheme, decoding codes in the
// translated range must select exactly the values in [lo, hi].
func TestTranslateRangeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	gens := []func() int64{
		func() int64 { return int64(r.Intn(100)) },                 // trunc1
		func() int64 { return int64(r.Intn(100000)) },              // trunc4
		func() int64 { return []int64{5, 1 << 40, -9}[r.Intn(3)] }, // dict
		func() int64 { return r.Int63() - r.Int63() },              // uncompressed
	}
	for gi, gen := range gens {
		values := make([]int64, 500)
		for i := range values {
			values[i] = gen()
		}
		v := EncodeInts(values, nil)
		for trial := 0; trial < 50; trial++ {
			lo := gen()
			hi := gen()
			if lo > hi {
				lo, hi = hi, lo
			}
			tr := v.TranslateRange(lo, hi)
			for i, x := range values {
				want := x >= lo && x <= hi
				var got bool
				switch tr.Verdict {
				case None:
					got = false
				case All:
					got = true
				case Range:
					c := v.CodeAt(i)
					got = c >= tr.C1 && c <= tr.C2
				}
				if got != want {
					t.Fatalf("gen %d scheme %v: value %d in [%d,%d]: got %v want %v",
						gi, v.Scheme, x, lo, hi, got, want)
				}
			}
		}
	}
}

func TestTranslateNotEqual(t *testing.T) {
	values := []int64{10, 20, 30}
	v := EncodeInts(values, nil)
	if tr := v.TranslateNotEqual(99); tr.Verdict != All {
		t.Fatalf("out-of-domain != should be All, got %v", tr.Verdict)
	}
	tr := v.TranslateNotEqual(20)
	if tr.Verdict != NotEqual {
		t.Fatalf("verdict = %v", tr.Verdict)
	}
	for i, x := range values {
		got := v.CodeAt(i) != tr.C1
		if got != (x != 20) {
			t.Fatalf("value %d: got %v", x, got)
		}
	}
	single := EncodeInts([]int64{5, 5}, nil)
	if tr := single.TranslateNotEqual(5); tr.Verdict != None {
		t.Fatalf("single != self should be None, got %v", tr.Verdict)
	}
	if tr := single.TranslateNotEqual(6); tr.Verdict != All {
		t.Fatalf("single != other should be All, got %v", tr.Verdict)
	}
}

func TestEncodeStrings(t *testing.T) {
	values := []string{"cherry", "apple", "banana", "apple", "cherry"}
	v := EncodeStrings(values, nil)
	if v.Scheme != Dictionary {
		t.Fatalf("scheme = %v", v.Scheme)
	}
	for i, want := range values {
		if got := v.Get(i); got != want {
			t.Fatalf("Get(%d) = %q, want %q", i, got, want)
		}
	}
	if v.Min() != "apple" || v.Max() != "cherry" {
		t.Fatalf("SMA = %q..%q", v.Min(), v.Max())
	}
	tr := v.TranslateRange("b", "c")
	if tr.Verdict != Range {
		t.Fatalf("verdict = %v", tr.Verdict)
	}
	for i, s := range values {
		got := v.CodeAt(i) >= tr.C1 && v.CodeAt(i) <= tr.C2
		want := s >= "b" && s <= "c"
		if got != want {
			t.Fatalf("string %q: got %v want %v", s, got, want)
		}
	}
	if tr := v.TranslateRange("x", "z"); tr.Verdict != None {
		t.Fatalf("out of range should be None")
	}
	single := EncodeStrings([]string{"x", "x"}, nil)
	if single.Scheme != SingleValue || single.Single != "x" {
		t.Fatalf("single-value string broken: %+v", single)
	}
}

func TestTranslatePrefix(t *testing.T) {
	values := []string{"AIR", "AIR REG", "MAIL", "RAIL", "SHIP", "TRUCK"}
	v := EncodeStrings(values, nil)
	tr := v.TranslatePrefix("AIR")
	if tr.Verdict != Range {
		t.Fatalf("verdict = %v", tr.Verdict)
	}
	for i, s := range values {
		got := v.CodeAt(i) >= tr.C1 && v.CodeAt(i) <= tr.C2
		want := len(s) >= 3 && s[:3] == "AIR"
		if got != want {
			t.Fatalf("prefix AIR on %q: got %v want %v", s, got, want)
		}
	}
	if tr := v.TranslatePrefix("ZZZ"); tr.Verdict != None {
		t.Fatalf("missing prefix should be None")
	}
	if tr := v.TranslatePrefix(""); tr.Verdict != All {
		t.Fatalf("empty prefix should be All")
	}
}

func TestEncodeFloats(t *testing.T) {
	values := []float64{1.5, 2.5, 0.25, 9.75}
	v := EncodeFloats(values, nil)
	if v.Scheme != Uncompressed {
		t.Fatalf("scheme = %v", v.Scheme)
	}
	if v.Min != 0.25 || v.Max != 9.75 {
		t.Fatalf("SMA = %g..%g", v.Min, v.Max)
	}
	for i, want := range values {
		if v.Get(i) != want {
			t.Fatalf("Get(%d) mismatch", i)
		}
	}
	single := EncodeFloats([]float64{3.5, 3.5}, nil)
	if single.Scheme != SingleValue || single.Single != 3.5 {
		t.Fatalf("single float broken")
	}
	allNull := EncodeFloats([]float64{1, 2}, []bool{true, true})
	if !allNull.AllNull {
		t.Fatalf("all-null float not detected")
	}
}

func TestByteWidth(t *testing.T) {
	cases := []struct {
		v uint64
		w int
	}{{0, 1}, {255, 1}, {256, 2}, {65535, 2}, {65536, 4}, {1<<32 - 1, 4}, {1 << 32, 8}, {math.MaxUint64, 8}}
	for _, c := range cases {
		if got := ByteWidth(c.v); got != c.w {
			t.Errorf("ByteWidth(%d) = %d, want %d", c.v, got, c.w)
		}
	}
}

func TestBiasIntOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		return (a < b) == (BiasInt(a) < BiasInt(b)) && UnbiasInt(BiasInt(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSizeAccounting(t *testing.T) {
	values := make([]int64, 1000)
	for i := range values {
		values[i] = int64(i % 100)
	}
	v := EncodeInts(values, nil)
	if v.Scheme != Truncation || v.Width != 1 {
		t.Fatalf("expected 1-byte truncation, got %v w=%d", v.Scheme, v.Width)
	}
	if size := v.CompressedSize(); size < 1000 || size > 1100 {
		t.Fatalf("size = %d, want ~1032", size)
	}
}
