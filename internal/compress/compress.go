// Package compress implements the byte-addressable attribute compression of
// Data Blocks (§3.3): single-value, order-preserving dictionary, and
// truncation (a Frame-of-Reference with the block minimum as reference).
//
// Compressed codes are unsigned little-endian integers of 1, 2, 4 or 8
// bytes stored in a flat byte slice, so point accesses stay O(1)
// (byte-addressability is the format's central requirement) and the simd
// kernels evaluate predicates directly on the compressed representation.
// All schemes are order-preserving, so a SARGable predicate translates into
// an unsigned range or inequality over codes.
//
// Sub-byte encodings (BitWeaving-style bit-packing) are intentionally
// rejected, following §5.4; package bitpack implements them only as the
// comparison baseline.
package compress

import (
	"fmt"
	"sort"
)

// Scheme identifies a compression method for one attribute in one block.
type Scheme uint8

const (
	// Uncompressed stores full-width codes. Integer columns use an
	// order-preserving sign-bias mapping so unsigned code order equals
	// signed value order.
	Uncompressed Scheme = iota
	// SingleValue stores one value for the whole block — the paper's
	// special case of run-length encoding, covering the all-NULL column.
	SingleValue
	// Dictionary stores a sorted dictionary of distinct values and
	// byte-truncated key codes. Immutability makes the order-preserving
	// dictionary affordable (§3.3).
	Dictionary
	// Truncation stores v − min(block) in 1, 2, or 4 bytes.
	Truncation
)

func (s Scheme) String() string {
	switch s {
	case Uncompressed:
		return "uncompressed"
	case SingleValue:
		return "single"
	case Dictionary:
		return "dict"
	case Truncation:
		return "trunc"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// Verdict summarizes a predicate translated into a block's code domain.
type Verdict uint8

const (
	// None means no tuple in the block can match; the block is skipped.
	None Verdict = iota
	// All means every (non-null) tuple matches; no comparison is needed.
	All
	// Range means tuples with code in [C1, C2] match.
	Range
	// NotEqual means tuples with code != C1 match.
	NotEqual
)

// Translation is a predicate rewritten into the code domain of one
// compressed vector.
type Translation struct {
	Verdict Verdict
	C1, C2  uint64
}

// ByteWidth returns the smallest supported code width (1, 2, 4 or 8 bytes)
// that can represent maxCode.
func ByteWidth(maxCode uint64) int {
	switch {
	case maxCode <= 0xFF:
		return 1
	case maxCode <= 0xFFFF:
		return 2
	case maxCode <= 0xFFFFFFFF:
		return 4
	default:
		return 8
	}
}

const signBias = uint64(1) << 63

// BiasInt maps an int64 to a uint64 such that unsigned order of the images
// equals signed order of the inputs. Used for uncompressed integer codes.
func BiasInt(v int64) uint64 { return uint64(v) ^ signBias }

// UnbiasInt inverts BiasInt.
func UnbiasInt(c uint64) int64 { return int64(c ^ signBias) }

// sortedDistinct returns the ascending distinct values of vals.
func sortedDistinct(vals []int64) []int64 {
	if len(vals) == 0 {
		return nil
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

func sortedDistinctStrings(vals []string) []string {
	if len(vals) == 0 {
		return nil
	}
	s := append([]string(nil), vals...)
	sort.Strings(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}
