package compress

import (
	"sort"

	"datablocks/internal/simd"
)

// IntVector is one integer attribute of a Data Block in compressed form.
// It also backs dates, decimals and char(1), which the type system stores
// as int64.
type IntVector struct {
	Scheme  Scheme
	Width   int // bytes per code (0 for SingleValue)
	N       int
	AllNull bool
	// Min and Max are the SMA over non-null values (§3.2). Undefined when
	// AllNull.
	Min, Max int64
	Single   int64   // SingleValue payload
	Dict     []int64 // Dictionary: ascending distinct values
	Data     []byte  // codes, little-endian, Width bytes each
}

// headerOverhead approximates the per-attribute fixed metadata of the block
// layout (compression tag, offsets, SMA) for scheme selection and stats.
const headerOverhead = 32

// EncodeInts compresses one integer column. nulls may be nil; null
// positions receive the minimum code as a don't-care (scan results are
// corrected by the validity bitmap, which the block layer owns).
//
// The scheme minimizing the encoded size wins, matching §3.3: single value
// if constant, otherwise the smaller of truncation and dictionary, falling
// back to (sign-biased) uncompressed storage.
func EncodeInts(values []int64, nulls []bool) *IntVector {
	v := &IntVector{N: len(values)}
	nonNull := values
	if nulls != nil {
		nonNull = make([]int64, 0, len(values))
		for i, x := range values {
			if !nulls[i] {
				nonNull = append(nonNull, x)
			}
		}
	}
	if len(nonNull) == 0 {
		v.Scheme = SingleValue
		v.AllNull = true
		return v
	}
	min, max := nonNull[0], nonNull[0]
	for _, x := range nonNull[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	v.Min, v.Max = min, max
	if min == max {
		v.Scheme = SingleValue
		v.Single = min
		return v
	}

	// Every scheme pays the same per-attribute header, so selection
	// compares pure data sizes.
	truncWidth := ByteWidth(uint64(max) - uint64(min))
	truncSize := len(values) * truncWidth
	dict := sortedDistinct(nonNull)
	dictWidth := ByteWidth(uint64(len(dict) - 1))
	dictSize := len(dict)*8 + len(values)*dictWidth
	uncSize := len(values) * 8

	switch {
	case truncWidth < 8 && truncSize <= dictSize && truncSize < uncSize:
		v.Scheme = Truncation
		v.Width = truncWidth
		v.Data = make([]byte, len(values)*truncWidth+8) // +8: slack for 8-byte SWAR loads
		for i, x := range values {
			code := uint64(0)
			if nulls == nil || !nulls[i] {
				code = uint64(x) - uint64(min)
			}
			simd.WriteUint(v.Data, i, truncWidth, code)
		}
	case dictSize < uncSize:
		v.Scheme = Dictionary
		v.Width = dictWidth
		v.Dict = dict
		idx := make(map[int64]uint64, len(dict))
		for i, d := range dict {
			idx[d] = uint64(i)
		}
		v.Data = make([]byte, len(values)*dictWidth+8)
		for i, x := range values {
			code := uint64(0)
			if nulls == nil || !nulls[i] {
				code = idx[x]
			}
			simd.WriteUint(v.Data, i, dictWidth, code)
		}
	default:
		v.Scheme = Uncompressed
		v.Width = 8
		v.Data = make([]byte, len(values)*8+8)
		for i, x := range values {
			code := BiasInt(min)
			if nulls == nil || !nulls[i] {
				code = BiasInt(x)
			}
			simd.WriteUint(v.Data, i, 8, code)
		}
	}
	return v
}

// Get decodes the value at row i. For null rows it returns the don't-care
// minimum; callers consult the validity bitmap first.
func (v *IntVector) Get(i int) int64 {
	switch v.Scheme {
	case SingleValue:
		return v.Single
	case Truncation:
		return int64(uint64(v.Min) + simd.ReadUint(v.Data, i, v.Width))
	case Dictionary:
		return v.Dict[simd.ReadUint(v.Data, i, v.Width)]
	default:
		return UnbiasInt(simd.ReadUint(v.Data, i, v.Width))
	}
}

// CodeAt returns the raw code at row i (undefined for SingleValue).
func (v *IntVector) CodeAt(i int) uint64 { return simd.ReadUint(v.Data, i, v.Width) }

// MinCode is the code of the block minimum, the reference for PSMA deltas.
func (v *IntVector) MinCode() uint64 {
	if v.Scheme == Uncompressed {
		return BiasInt(v.Min)
	}
	return 0
}

// TranslateRange rewrites an inclusive value range [lo, hi] into the code
// domain. The SMA check (block skipping, §3.2) is the None verdict.
func (v *IntVector) TranslateRange(lo, hi int64) Translation {
	if v.AllNull || lo > hi || lo > v.Max || hi < v.Min {
		return Translation{Verdict: None}
	}
	if lo <= v.Min && hi >= v.Max {
		return Translation{Verdict: All}
	}
	if lo < v.Min {
		lo = v.Min
	}
	if hi > v.Max {
		hi = v.Max
	}
	switch v.Scheme {
	case SingleValue:
		// Min == Max handled above; reaching here means no match.
		return Translation{Verdict: None}
	case Truncation:
		return Translation{Verdict: Range, C1: uint64(lo) - uint64(v.Min), C2: uint64(hi) - uint64(v.Min)}
	case Dictionary:
		// In the equality case a miss in the dictionary rules out the
		// block before any scan (§3.4); ranges narrow to existing keys.
		c1 := sort.Search(len(v.Dict), func(i int) bool { return v.Dict[i] >= lo })
		c2 := sort.Search(len(v.Dict), func(i int) bool { return v.Dict[i] > hi }) - 1
		if c1 > c2 {
			return Translation{Verdict: None}
		}
		return Translation{Verdict: Range, C1: uint64(c1), C2: uint64(c2)}
	default:
		return Translation{Verdict: Range, C1: BiasInt(lo), C2: BiasInt(hi)}
	}
}

// TranslateNotEqual rewrites v != c into the code domain.
func (v *IntVector) TranslateNotEqual(c int64) Translation {
	if v.AllNull {
		return Translation{Verdict: None}
	}
	if c < v.Min || c > v.Max {
		return Translation{Verdict: All}
	}
	switch v.Scheme {
	case SingleValue:
		if v.Single == c {
			return Translation{Verdict: None}
		}
		return Translation{Verdict: All}
	case Truncation:
		return Translation{Verdict: NotEqual, C1: uint64(c) - uint64(v.Min)}
	case Dictionary:
		i := sort.Search(len(v.Dict), func(i int) bool { return v.Dict[i] >= c })
		if i >= len(v.Dict) || v.Dict[i] != c {
			return Translation{Verdict: All}
		}
		return Translation{Verdict: NotEqual, C1: uint64(i)}
	default:
		return Translation{Verdict: NotEqual, C1: BiasInt(c)}
	}
}

// CompressedSize returns the in-memory footprint of the vector in bytes,
// including dictionary and metadata overhead.
func (v *IntVector) CompressedSize() int {
	size := headerOverhead
	switch v.Scheme {
	case SingleValue:
		return size + 8
	case Dictionary:
		size += len(v.Dict) * 8
	}
	return size + v.N*v.Width
}
