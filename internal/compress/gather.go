package compress

import (
	"encoding/binary"

	"datablocks/internal/simd"
)

// This file implements the "unpacking matches" half of §3.4: decompressing
// exactly the tuples selected by a match-position vector into output
// vectors. Byte-aligned codes make this a tight positional gather — the
// operation whose cost dominates bit-packed formats at moderate
// selectivities (Figure 12b).

// Gather decompresses the values at the given positions into out, which
// must have length len(pos).
func (v *IntVector) Gather(pos []uint32, out []int64) {
	switch v.Scheme {
	case SingleValue:
		for i := range out {
			out[i] = v.Single
		}
	case Truncation:
		base := uint64(v.Min)
		switch v.Width {
		case 1:
			for i, p := range pos {
				out[i] = int64(base + uint64(v.Data[p]))
			}
		case 2:
			for i, p := range pos {
				out[i] = int64(base + uint64(binary.LittleEndian.Uint16(v.Data[p*2:])))
			}
		default:
			for i, p := range pos {
				out[i] = int64(base + uint64(binary.LittleEndian.Uint32(v.Data[p*4:])))
			}
		}
	case Dictionary:
		switch v.Width {
		case 1:
			for i, p := range pos {
				out[i] = v.Dict[v.Data[p]]
			}
		case 2:
			for i, p := range pos {
				out[i] = v.Dict[binary.LittleEndian.Uint16(v.Data[p*2:])]
			}
		default:
			for i, p := range pos {
				out[i] = v.Dict[binary.LittleEndian.Uint32(v.Data[p*4:])]
			}
		}
	default:
		for i, p := range pos {
			out[i] = UnbiasInt(binary.LittleEndian.Uint64(v.Data[p*8:]))
		}
	}
}

// Decode decompresses the full column into out (length N). Used by scans
// without predicate pushdown and by the decompress-then-filter baselines.
func (v *IntVector) Decode(out []int64) {
	switch v.Scheme {
	case SingleValue:
		for i := range out {
			out[i] = v.Single
		}
	case Truncation:
		base := uint64(v.Min)
		switch v.Width {
		case 1:
			for i := 0; i < v.N; i++ {
				out[i] = int64(base + uint64(v.Data[i]))
			}
		case 2:
			for i := 0; i < v.N; i++ {
				out[i] = int64(base + uint64(binary.LittleEndian.Uint16(v.Data[i*2:])))
			}
		default:
			for i := 0; i < v.N; i++ {
				out[i] = int64(base + uint64(binary.LittleEndian.Uint32(v.Data[i*4:])))
			}
		}
	case Dictionary:
		switch v.Width {
		case 1:
			for i := 0; i < v.N; i++ {
				out[i] = v.Dict[v.Data[i]]
			}
		case 2:
			for i := 0; i < v.N; i++ {
				out[i] = v.Dict[binary.LittleEndian.Uint16(v.Data[i*2:])]
			}
		default:
			for i := 0; i < v.N; i++ {
				out[i] = v.Dict[binary.LittleEndian.Uint32(v.Data[i*4:])]
			}
		}
	default:
		for i := 0; i < v.N; i++ {
			out[i] = UnbiasInt(binary.LittleEndian.Uint64(v.Data[i*8:]))
		}
	}
}

// Gather decompresses the strings at the given positions into out.
func (v *StringVector) Gather(pos []uint32, out []string) {
	if v.Scheme == SingleValue {
		for i := range out {
			out[i] = v.Single
		}
		return
	}
	switch v.Width {
	case 1:
		for i, p := range pos {
			out[i] = v.Dict[v.Data[p]]
		}
	case 2:
		for i, p := range pos {
			out[i] = v.Dict[binary.LittleEndian.Uint16(v.Data[p*2:])]
		}
	default:
		for i, p := range pos {
			out[i] = v.Dict[binary.LittleEndian.Uint32(v.Data[p*4:])]
		}
	}
}

// Decode decompresses the full string column into out.
func (v *StringVector) Decode(out []string) {
	if v.Scheme == SingleValue {
		for i := 0; i < v.N; i++ {
			out[i] = v.Single
		}
		return
	}
	for i := 0; i < v.N; i++ {
		out[i] = v.Dict[simd.ReadUint(v.Data, i, v.Width)]
	}
}

// Gather decompresses the doubles at the given positions into out.
func (v *FloatVector) Gather(pos []uint32, out []float64) {
	if v.Scheme == SingleValue {
		for i := range out {
			out[i] = v.Single
		}
		return
	}
	for i, p := range pos {
		out[i] = v.Values[p]
	}
}

// Decode decompresses the full double column into out.
func (v *FloatVector) Decode(out []float64) {
	if v.Scheme == SingleValue {
		for i := 0; i < v.N; i++ {
			out[i] = v.Single
		}
		return
	}
	copy(out, v.Values)
}
