package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"datablocks/internal/types"
	"datablocks/internal/walfs"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.Int64},
		types.Column{Name: "amount", Kind: types.Float64},
		types.Column{Name: "status", Kind: types.String, Nullable: true},
	)
}

func testRow(i int64) types.Row {
	if i%7 == 0 {
		return types.Row{types.IntValue(i), types.FloatValue(float64(i) / 2), types.NullValue(types.String)}
	}
	return types.Row{types.IntValue(i), types.FloatValue(float64(i) / 2), types.StringValue("s")}
}

func mustOpen(t *testing.T, fs walfs.FS, path string, seq *atomic.Uint64, st *Stats) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(fs, path, testSchema(), seq, st)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

// TestAppendWaitReopen is the basic durability roundtrip: acknowledged
// records come back from a fresh Open, in LSN order, bit-exact.
func TestAppendWaitReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, recs := mustOpen(t, walfs.OS, path, &seq, &st)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	const n = 50
	for i := int64(0); i < n; i++ {
		op := byte(OpInsert)
		switch i % 3 {
		case 1:
			op = OpUpdate
		case 2:
			op = OpDelete
		}
		row := testRow(i)
		if op == OpDelete {
			row = nil
		}
		lsn, b, err := l.Append(op, i, row)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d for record %d", lsn, i)
		}
		if err := l.Wait(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var seq2 atomic.Uint64
	var st2 Stats
	l2, recs2 := mustOpen(t, walfs.OS, path, &seq2, &st2)
	defer l2.Close()
	if len(recs2) != n {
		t.Fatalf("recovered %d records, want %d", len(recs2), n)
	}
	for i, rec := range recs2 {
		if rec.LSN != uint64(i+1) || rec.Key != int64(i) {
			t.Fatalf("record %d: lsn %d key %d", i, rec.LSN, rec.Key)
		}
		if rec.Op == OpDelete {
			if rec.Row != nil {
				t.Fatalf("delete record %d carries a row", i)
			}
			continue
		}
		want := testRow(int64(i))
		if len(rec.Row) != len(want) {
			t.Fatalf("record %d: %d values", i, len(rec.Row))
		}
		if rec.Row[0].Int() != want[0].Int() || rec.Row[1].Float() != want[1].Float() {
			t.Fatalf("record %d round-trip mismatch: %v", i, rec.Row)
		}
		if want[2].IsNull() != rec.Row[2].IsNull() {
			t.Fatalf("record %d null flag lost", i)
		}
	}
	if got := seq2.Load(); got != n {
		t.Fatalf("sequence recovered to %d, want %d", got, n)
	}
}

// TestGroupCommitOneFsync stages several records before the first Wait:
// the leader must flush them all with a single append+fsync.
func TestGroupCommitOneFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _ := mustOpen(t, walfs.OS, path, &seq, &st)
	defer l.Close()
	var batches []*Batch
	for i := int64(0); i < 5; i++ {
		_, b, err := l.Append(OpInsert, i, testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	for _, b := range batches {
		if err := l.Wait(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Batches.Load(); got != 1 {
		t.Fatalf("%d group-commit flushes for 5 staged records, want 1", got)
	}
	if got := st.Records.Load(); got != 5 {
		t.Fatalf("%d records flushed, want 5", got)
	}
}

// TestGroupCommitConcurrentWriters drives concurrent appenders and checks
// every acknowledged record is durable and batching actually grouped them.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _ := mustOpen(t, walfs.OS, path, &seq, &st)
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := int64(w*per + i)
				_, b, err := l.Append(OpInsert, key, testRow(key))
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Wait(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := st.Records.Load(); got != writers*per {
		t.Fatalf("%d records flushed, want %d", got, writers*per)
	}
	var seq2 atomic.Uint64
	var st2 Stats
	l2, recs := mustOpen(t, walfs.OS, path, &seq2, &st2)
	defer l2.Close()
	if len(recs) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(recs), writers*per)
	}
	seen := make(map[int64]bool, len(recs))
	last := uint64(0)
	for _, rec := range recs {
		if rec.LSN <= last {
			t.Fatalf("LSNs not strictly ascending at %d", rec.LSN)
		}
		last = rec.LSN
		seen[rec.Key] = true
	}
	if len(seen) != writers*per {
		t.Fatalf("%d distinct keys recovered, want %d", len(seen), writers*per)
	}
}

// TestTornTailTruncated appends garbage after a clean close; Open must
// recover the verified prefix, count the torn tail and cut it.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _ := mustOpen(t, walfs.OS, path, &seq, &st)
	for i := int64(0); i < 10; i++ {
		_, b, err := l.Append(OpInsert, i, testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Wait(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var seq2 atomic.Uint64
	var st2 Stats
	l2, recs := mustOpen(t, walfs.OS, path, &seq2, &st2)
	defer l2.Close()
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	if got := st2.TornTails.Load(); got != 1 {
		t.Fatalf("TornTails = %d, want 1", got)
	}
	// The cut must be durable: a third open sees a clean file.
	var seq3 atomic.Uint64
	var st3 Stats
	l3, recs3 := mustOpen(t, walfs.OS, path, &seq3, &st3)
	defer l3.Close()
	if len(recs3) != 10 || st3.TornTails.Load() != 0 {
		t.Fatalf("second recovery: %d records, %d torn tails", len(recs3), st3.TornTails.Load())
	}
}

// TestTruncationMatrix is the WAL-layer crash-point matrix: the log image
// is cut at EVERY byte offset — record boundaries and mid-record alike —
// and recovery must return exactly the records whose frames fit the cut,
// never an error, never a partial record.
func TestTruncationMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _ := mustOpen(t, walfs.OS, path, &seq, &st)
	const n = 8
	for i := int64(0); i < n; i++ {
		_, b, err := l.Append(OpInsert, i, testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Wait(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record end offsets, from a full scan of the intact image.
	full, valid, err := ScanRecords(img, testSchema())
	if err != nil || len(full) != n || valid != int64(len(img)) {
		t.Fatalf("intact image: %d records, valid %d/%d, err %v", len(full), valid, len(img), err)
	}
	for cut := 0; cut <= len(img); cut++ {
		recs, v, err := ScanRecords(img[:cut], testSchema())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if v > int64(cut) {
			t.Fatalf("cut %d: valid prefix %d exceeds image", cut, v)
		}
		// Re-scanning the valid prefix must be a fixed point.
		again, v2, err := ScanRecords(img[:v], testSchema())
		if err != nil || v2 != v || len(again) != len(recs) {
			t.Fatalf("cut %d: prefix not a fixed point (%d/%d records, valid %d/%d, err %v)",
				cut, len(again), len(recs), v2, v, err)
		}
		for i, rec := range recs {
			if rec.LSN != uint64(i+1) || rec.Key != int64(i) {
				t.Fatalf("cut %d record %d: lsn %d key %d", cut, i, rec.LSN, rec.Key)
			}
		}
		// A cut at this exact offset recovers through a real Open too.
		if cut == len(img) || cut == len(img)/2 {
			sub := filepath.Join(dir, "copy")
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			cp := filepath.Join(sub, "wal.log")
			if err := os.WriteFile(cp, img[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			var s2 atomic.Uint64
			var st2 Stats
			l2, got := mustOpen(t, walfs.OS, cp, &s2, &st2)
			l2.Close()
			if len(got) != len(recs) {
				t.Fatalf("cut %d: Open recovered %d records, scan says %d", cut, len(got), len(recs))
			}
		}
	}
}

// TestFailSyncPoisons injects an fsync failure: the waiter gets the
// error, the log poisons, and truncation refuses while poisoned.
func TestFailSyncPoisons(t *testing.T) {
	ffs := walfs.NewFaultFS()
	path := filepath.Join(t.TempDir(), "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _ := mustOpen(t, ffs, path, &seq, &st)
	// Sync 1 is the header; fail the first record flush.
	ffs.FailSync(2)
	_, b, err := l.Append(OpInsert, 1, testRow(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(b); err == nil {
		t.Fatal("Wait succeeded through a failed fsync")
	}
	if _, _, err := l.Append(OpInsert, 2, testRow(2)); err == nil {
		t.Fatal("Append succeeded on a poisoned log")
	}
	if err := l.Err(); err == nil {
		t.Fatal("Err() nil on a poisoned log")
	}
	if err := l.TruncateAll(); err == nil {
		t.Fatal("TruncateAll succeeded on a poisoned log")
	}
}

// TestTornAppendRecovers tears a group-commit append mid-frame: the
// waiter errors, and reopening the file recovers every record
// acknowledged before the tear and nothing after.
func TestTornAppendRecovers(t *testing.T) {
	ffs := walfs.NewFaultFS()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _ := mustOpen(t, ffs, path, &seq, &st)
	for i := int64(0); i < 5; i++ {
		_, b, err := l.Append(OpInsert, i, testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Wait(b); err != nil {
			t.Fatal(err)
		}
	}
	// Append 1 was the header; the next record flush is append 7 — tear
	// it 3 bytes in.
	appends, _ := ffs.Ops()
	ffs.TearAppend(appends+1, 3)
	_, b, err := l.Append(OpInsert, 99, testRow(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Wait(b); err == nil {
		t.Fatal("Wait succeeded through a torn append")
	}
	if err := ffs.Crash(1 << 20); err != nil {
		t.Fatal(err)
	}
	var seq2 atomic.Uint64
	var st2 Stats
	l2, recs := mustOpen(t, walfs.OS, path, &seq2, &st2)
	defer l2.Close()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want the 5 acknowledged", len(recs))
	}
	if st2.TornTails.Load() != 1 {
		t.Fatalf("torn tail not detected")
	}
}

// TestTruncateAllRefusesStagedBatch: truncation with a staged unflushed
// batch would drop a record a writer is about to be acknowledged for.
func TestTruncateAllRefusesStagedBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _ := mustOpen(t, walfs.OS, path, &seq, &st)
	defer l.Close()
	_, b, err := l.Append(OpInsert, 1, testRow(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateAll(); err == nil {
		t.Fatal("TruncateAll succeeded with a staged batch")
	}
	if err := l.Wait(b); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateAll(); err != nil {
		t.Fatal(err)
	}
	var seq2 atomic.Uint64
	var st2 Stats
	l2, recs := mustOpen(t, walfs.OS, path, &seq2, &st2)
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("%d records survive TruncateAll", len(recs))
	}
}

// FuzzWALReplay feeds arbitrary (and corrupted-real) log images to the
// recovery scanner: it must never panic, never return a record from an
// unverified region, and always produce a valid prefix that rescans to
// the same result — corruption yields clean truncation or a clean error,
// never wrong records.
func FuzzWALReplay(f *testing.F) {
	schema := testSchema()
	// Seed with a genuine image and simple mutations of it.
	dir := f.TempDir()
	path := filepath.Join(dir, "wal.log")
	var seq atomic.Uint64
	var st Stats
	l, _, err := Open(walfs.OS, path, schema, &seq, &st)
	if err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		op := byte(OpInsert)
		if i%3 == 2 {
			op = OpDelete
		}
		row := testRow(i)
		if op == OpDelete {
			row = nil
		}
		_, b, aerr := l.Append(op, i, row)
		if aerr != nil {
			f.Fatal(aerr)
		}
		if werr := l.Wait(b); werr != nil {
			f.Fatal(werr)
		}
	}
	l.Close()
	img, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add([]byte{})
	flip := bytes.Clone(img)
	flip[len(flip)/3] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := ScanRecords(data, schema)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err != nil {
			return // clean error: corrupt-but-CRC-valid record, never wrong results
		}
		last := uint64(0)
		for _, rec := range recs {
			if rec.LSN <= last {
				t.Fatal("recovered LSNs not strictly ascending")
			}
			last = rec.LSN
			if rec.Op == OpInsert || rec.Op == OpUpdate {
				if len(rec.Row) != schema.NumColumns() {
					t.Fatalf("recovered row has %d values", len(rec.Row))
				}
			}
		}
		again, v2, err2 := ScanRecords(data[:valid], schema)
		if err2 != nil || v2 != valid || len(again) != len(recs) {
			t.Fatalf("valid prefix is not a fixed point: %d/%d records, valid %d/%d, err %v",
				len(again), len(recs), v2, valid, err2)
		}
	})
}
