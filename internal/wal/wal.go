// Package wal is the per-stripe write-ahead log behind the table write
// path: the component that makes acknowledged hot-row writes survive a
// crash, closing the durability gap the manifest machinery leaves (a
// manifest covers frozen chunks only; rows still hot at a crash used to
// be lost).
//
// # Log format (version 1)
//
// One log file per write stripe. The file opens with an 8-byte header —
// magic "DBWL" (u32 LE) then format version (u32 LE) — followed by
// records, each framed as
//
//	u32 length of body | u32 CRC32-C of body | body
//
// and each body encoding
//
//	u64 LSN | u8 op | s64 key | row (op-dependent)
//
// with the row serialized schema-positionally: per column a presence
// byte (0 value, 1 NULL) and then the value — int64 LE, float64 bits
// LE, or u32 length + UTF-8 bytes. Ops: insert (row, key unused for
// tables without a primary key), update (key = the pre-update primary
// key, row = the complete new version), delete (key only).
//
// LSNs are drawn from one table-global sequence, assigned under the
// stripe's batch lock, so each stripe's file is LSN-ascending and a
// cross-stripe replay merges files by LSN into the exact serialization
// order of every conflicting pair (conflicting operations share the
// key's stripe lock, which spans both the apply and the LSN draw).
//
// # Group commit
//
// Append stages a record in the stripe's open batch and returns without
// touching the disk; Wait acknowledges it. The first waiter becomes the
// batch leader: it claims the open batch, writes it with one append and
// one fsync, and wakes every staged writer at once. Writers that arrive
// while a flush is in flight stage into the next batch and queue on the
// flush lock, so under contention the fsync cost amortizes over the
// whole group — the classic leader/follower commit of write-optimized
// engines — while a lone writer degrades to exactly one fsync per
// record.
//
// A failed append or fsync poisons the log: the durable state of the
// file tail is unknown after a failed fsync, and appending past a torn
// write would put unreachable bytes behind garbage, so every later
// Append and Wait fails fast with the original error. The table keeps
// serving reads; writes report the durability loss instead of hiding it.
//
// # Recovery
//
// Open scans the file, verifies each frame's length and CRC, stops at
// the first frame that does not verify — a torn group-commit tail — and
// truncates the file back to the end of the verified prefix before
// appending resumes. A record that frames and checksums correctly but
// does not decode against the schema is corruption, not a torn tail:
// Open refuses the log rather than silently dropping a suffix that may
// contain acknowledged writes.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"

	"datablocks/internal/obs"
	"datablocks/internal/types"
	"datablocks/internal/walfs"
)

const (
	// Magic opens every log file ("DBWL", little-endian).
	Magic = 0x4C574244
	// Version is the on-disk format version of header and records.
	Version = 1
	// headerSize is the file header: magic u32 | version u32.
	headerSize = 8
	// frameSize is the per-record frame: body length u32 | CRC32-C u32.
	frameSize = 8
	// maxBody bounds a single record body; larger lengths read as torn.
	maxBody = 1 << 26
)

// Record ops.
const (
	// OpInsert appends Row; Key mirrors the primary key (0 without one).
	OpInsert = byte(1)
	// OpUpdate rewrites the row at pre-update primary key Key with Row.
	OpUpdate = byte(2)
	// OpDelete removes primary key Key.
	OpDelete = byte(3)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one logical write: the unit of logging and replay.
type Record struct {
	LSN uint64
	Op  byte
	// Key is the primary key the operation addresses: the pre-update key
	// for OpUpdate, the deleted key for OpDelete, the inserted row's key
	// for OpInsert on tables with a primary key (diagnostic there — the
	// row carries it — and unused without one).
	Key int64
	// Row is the complete tuple for OpInsert/OpUpdate, nil for OpDelete.
	Row types.Row
}

// Stats is the log's telemetry, aggregated by the owning table across
// its stripes (shared atomic instruments; the WAL sits on the per-call
// write path, not inside scan kernels).
type Stats struct {
	// Records counts appended records; Batches counts group-commit
	// flushes (each one append + one fsync), so Records/Batches is the
	// achieved commit group size.
	Records, Batches obs.Counter
	// Bytes counts appended bytes including frames.
	Bytes obs.Counter
	// Replayed counts records re-applied by recovery; ReplaySkipped
	// counts records recovery found already durable (at or below the
	// manifest's applied LSN, or already present in restored blocks).
	Replayed, ReplaySkipped obs.Counter
	// TornTails counts recovery scans that had to cut a torn suffix.
	TornTails obs.Counter
}

// Log is one stripe's write-ahead log.
type Log struct {
	f      walfs.File
	schema *types.Schema
	seq    *atomic.Uint64
	st     *Stats

	// mu guards batch formation: staging a record, drawing its LSN and
	// extending cur are one critical section, so file order within the
	// stripe is LSN order.
	mu      sync.Mutex
	cur     *batch
	scratch []byte
	poison  error

	// flushMu admits one flusher at a time; waiters of an already-claimed
	// batch queue here and find their batch done when they get the lock.
	flushMu sync.Mutex
}

// batch is one group-commit unit: framed records accumulated between
// flushes. err is written (at most once) before done closes.
type batch struct {
	data []byte
	n    int
	done chan struct{}
	err  error
}

// Batch is an acknowledgement handle: Append stages the record and
// returns the batch it joined; Wait(batch) blocks until that batch's
// fsync decided the record's durability.
type Batch = batch

// Open opens (or creates) the log at path, scans it, truncates a torn
// tail, and returns the verified records for replay, in file (= LSN)
// order. seq is the table-global LSN sequence: Open advances it past
// every LSN in the file so new records sort after recovered ones. st
// receives the log's telemetry (must be non-nil).
func Open(fs walfs.FS, path string, schema *types.Schema, seq *atomic.Uint64, st *Stats) (*Log, []Record, error) {
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	recs, valid, err := scanFile(f, schema)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	if valid == 0 {
		// No verified header: new file, or a create torn before the
		// header synced (nothing was ever acknowledged from it).
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], Magic)
		binary.LittleEndian.PutUint32(hdr[4:], Version)
		if size != 0 {
			if terr := f.Truncate(0); terr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: %s: %w", path, terr)
			}
		}
		herr := f.Append(hdr[:])
		if herr == nil {
			herr = f.Sync()
		}
		if herr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %s: header: %w", path, herr)
		}
	} else if size > valid {
		// Torn group-commit tail: cut it before appends resume, so new
		// records are never stranded behind garbage.
		st.TornTails.Inc()
		terr := f.Truncate(valid)
		if terr == nil {
			terr = f.Sync()
		}
		if terr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %s: truncate torn tail: %w", path, terr)
		}
	}
	for _, rec := range recs {
		for {
			curSeq := seq.Load()
			if rec.LSN <= curSeq || seq.CompareAndSwap(curSeq, rec.LSN) {
				break
			}
		}
	}
	return &Log{f: f, schema: schema, seq: seq, st: st}, recs, nil
}

// Append stages one record for the next group commit and returns its
// LSN and batch handle. The record's effect must already be applied to
// the in-memory relation (apply-then-log: a checkpoint that reads the
// stripe's last assigned LSN under the stripe lock then knows every
// effect at or below it is visible to its snapshot). The write is not
// durable — and must not be acknowledged — until Wait returns nil.
func (l *Log) Append(op byte, key int64, row types.Row) (uint64, *Batch, error) {
	l.mu.Lock()
	if l.poison != nil {
		err := l.poison
		l.mu.Unlock()
		return 0, nil, err
	}
	lsn := l.seq.Add(1)
	l.scratch = appendBody(l.scratch[:0], l.schema, Record{LSN: lsn, Op: op, Key: key, Row: row})
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	l.cur.data = appendFrame(l.cur.data, l.scratch)
	l.cur.n++
	b := l.cur
	l.mu.Unlock()
	return lsn, b, nil
}

// AppendRows stages one insert record per row in a single batch — the
// bulk-load path: one lock acquisition, one flush, one fsync for the
// whole load. Returns the first and last LSN of the run.
func (l *Log) AppendRows(rows []types.Row, keyCol int) (first, last uint64, b *Batch, err error) {
	if len(rows) == 0 {
		return 0, 0, nil, nil
	}
	l.mu.Lock()
	if l.poison != nil {
		err := l.poison
		l.mu.Unlock()
		return 0, 0, nil, err
	}
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	for i, row := range rows {
		lsn := l.seq.Add(1)
		if i == 0 {
			first = lsn
		}
		last = lsn
		var key int64
		if keyCol >= 0 && !row[keyCol].IsNull() {
			key = row[keyCol].Int()
		}
		l.scratch = appendBody(l.scratch[:0], l.schema, Record{LSN: lsn, Op: OpInsert, Key: key, Row: row})
		l.cur.data = appendFrame(l.cur.data, l.scratch)
		l.cur.n++
	}
	b = l.cur
	l.mu.Unlock()
	return first, last, b, nil
}

// Wait blocks until b's batch is durable and returns its outcome. The
// first waiter of an unflushed batch becomes the leader: it performs the
// batch's single append+fsync and wakes the group. A nil b (no WAL
// record was staged) returns nil.
func (l *Log) Wait(b *Batch) error {
	if b == nil {
		return nil
	}
	select {
	case <-b.done:
		return b.err
	default:
	}
	l.flushMu.Lock()
	select {
	case <-b.done:
		// A leader flushed our batch while we queued.
		l.flushMu.Unlock()
		return b.err
	default:
	}
	// We are the leader: detach the batch so new appends open a fresh one
	// while our fsync is in flight.
	l.mu.Lock()
	if l.cur == b {
		l.cur = nil
	}
	err := l.poison
	l.mu.Unlock()
	if err == nil {
		if err = l.f.Append(b.data); err == nil {
			err = l.f.Sync()
		}
		if err != nil {
			l.mu.Lock()
			l.poison = err
			l.mu.Unlock()
		} else {
			l.st.Records.Add(uint64(b.n))
			l.st.Batches.Inc()
			l.st.Bytes.Add(uint64(len(b.data)))
		}
	}
	b.err = err
	close(b.done)
	l.flushMu.Unlock()
	return err
}

// Err returns the poison error, or nil while the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poison
}

// TruncateAll discards every record (the checkpoint fast path: the
// manifest's applied LSN has caught up with the stripe's last assigned
// LSN, so nothing in the file is needed for recovery). It refuses while
// a batch is staged and unflushed, and on a poisoned log — records a
// failed fsync left in limbo must survive for recovery.
func (l *Log) TruncateAll() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poison != nil {
		return l.poison
	}
	if l.cur != nil {
		return fmt.Errorf("wal: truncate with a staged unflushed batch")
	}
	if err := l.f.Truncate(headerSize); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close releases the file. Staged-but-unflushed records are the caller's
// bug (quiesce writers first); they die with the process as they would
// at a crash.
func (l *Log) Close() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// appendFrame frames one body: length, CRC32-C, body.
func appendFrame(buf, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crcTable))
	return append(buf, body...)
}

// appendBody serializes a record body (see the package doc's format).
func appendBody(buf []byte, schema *types.Schema, rec Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, rec.LSN)
	buf = append(buf, rec.Op)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Key))
	if rec.Op == OpDelete {
		return buf
	}
	for i, v := range rec.Row {
		if v.IsNull() {
			buf = append(buf, 1)
			continue
		}
		buf = append(buf, 0)
		switch schema.Columns[i].Kind {
		case types.Int64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
		case types.Float64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
		default:
			s := v.Str()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

// DecodeBody decodes one record body against the schema. Every defect is
// an error, never a panic: the fuzz target feeds this arbitrary bytes.
func DecodeBody(body []byte, schema *types.Schema) (Record, error) {
	var rec Record
	if len(body) < 17 {
		return rec, fmt.Errorf("wal: record body too short (%d bytes)", len(body))
	}
	rec.LSN = binary.LittleEndian.Uint64(body[0:])
	rec.Op = body[8]
	rec.Key = int64(binary.LittleEndian.Uint64(body[9:]))
	off := 17
	switch rec.Op {
	case OpDelete:
		if off != len(body) {
			return rec, fmt.Errorf("wal: delete record has %d trailing bytes", len(body)-off)
		}
		return rec, nil
	case OpInsert, OpUpdate:
	default:
		return rec, fmt.Errorf("wal: unknown record op %d", rec.Op)
	}
	rec.Row = make(types.Row, schema.NumColumns())
	for i := range rec.Row {
		if off >= len(body) {
			return rec, fmt.Errorf("wal: record body truncated at column %d", i)
		}
		null := body[off]
		off++
		kind := schema.Columns[i].Kind
		if null == 1 {
			rec.Row[i] = types.NullValue(kind)
			continue
		}
		if null != 0 {
			return rec, fmt.Errorf("wal: record column %d has presence byte %d", i, null)
		}
		switch kind {
		case types.Int64:
			if off+8 > len(body) {
				return rec, fmt.Errorf("wal: record body truncated in column %d", i)
			}
			rec.Row[i] = types.IntValue(int64(binary.LittleEndian.Uint64(body[off:])))
			off += 8
		case types.Float64:
			if off+8 > len(body) {
				return rec, fmt.Errorf("wal: record body truncated in column %d", i)
			}
			rec.Row[i] = types.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(body[off:])))
			off += 8
		default:
			if off+4 > len(body) {
				return rec, fmt.Errorf("wal: record body truncated in column %d", i)
			}
			n := int(binary.LittleEndian.Uint32(body[off:]))
			off += 4
			if n < 0 || off+n > len(body) {
				return rec, fmt.Errorf("wal: record column %d string length %d exceeds body", i, n)
			}
			rec.Row[i] = types.StringValue(string(body[off : off+n]))
			off += n
		}
	}
	if off != len(body) {
		return rec, fmt.Errorf("wal: record body has %d trailing bytes", len(body)-off)
	}
	return rec, nil
}

// scanFile reads and verifies the whole log. It returns the decoded
// records of the verified prefix and the file offset where that prefix
// ends — 0 when even the header does not verify on a file too short to
// have one. An unreadable file, a corrupt header on a full-length file,
// or a CRC-valid record that fails to decode is an error.
func scanFile(f walfs.File, schema *types.Schema) ([]Record, int64, error) {
	size, err := f.Size()
	if err != nil {
		return nil, 0, err
	}
	if size < headerSize {
		return nil, 0, nil
	}
	buf := make([]byte, size)
	if _, rerr := f.ReadAt(buf, 0); rerr != nil {
		return nil, 0, rerr
	}
	return ScanRecords(buf, schema)
}

// ScanRecords is the pure scanning core over a full log image: header,
// then frames until the first one that does not verify (torn tail — the
// scan stops and valid marks the end of the verified prefix). Exposed
// for the recovery tests and the fuzz target.
func ScanRecords(buf []byte, schema *types.Schema) (recs []Record, valid int64, err error) {
	if len(buf) < headerSize {
		return nil, 0, nil
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, 0, fmt.Errorf("wal: bad magic %08x", binary.LittleEndian.Uint32(buf[0:]))
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != Version {
		return nil, 0, fmt.Errorf("wal: unsupported format version %d", v)
	}
	off := int64(headerSize)
	var lastLSN uint64
	for {
		if off+frameSize > int64(len(buf)) {
			return recs, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(buf[off:]))
		want := binary.LittleEndian.Uint32(buf[off+4:])
		if n > maxBody || off+frameSize+n > int64(len(buf)) {
			return recs, off, nil
		}
		body := buf[off+frameSize : off+frameSize+n]
		if crc32.Checksum(body, crcTable) != want {
			return recs, off, nil
		}
		rec, derr := DecodeBody(body, schema)
		if derr != nil {
			// Framed and checksummed but undecodable: corruption or a
			// schema mismatch, not a torn tail. Refuse rather than drop a
			// suffix that may hold acknowledged writes.
			return nil, 0, fmt.Errorf("wal: record at offset %d: %w", off, derr)
		}
		if rec.LSN <= lastLSN {
			return nil, 0, fmt.Errorf("wal: record at offset %d: LSN %d not ascending (previous %d)", off, rec.LSN, lastLSN)
		}
		lastLSN = rec.LSN
		recs = append(recs, rec)
		off += frameSize + n
	}
}
