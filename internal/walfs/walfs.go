// Package walfs is the file layer beneath the write-ahead log: a minimal
// append/sync/truncate interface over one log file, with a production
// implementation backed by the OS and a fault-injecting implementation for
// crash tests.
//
// The WAL's durability argument leans on exactly three properties of this
// layer, so they are the whole interface:
//
//   - Append is the only mutator while the log is live; records become
//     durable at the next successful Sync, in append order.
//   - Truncate discards a suffix (torn tails at recovery, applied records
//     at a checkpoint) and is only called with no appends in flight.
//   - ReadAt serves recovery scans of the existing contents.
//
// Keeping the surface this small is what makes the fault model honest:
// FaultFS (fault.go) can tear an append mid-write, drop the page cache at
// a simulated crash, or fail a sync — deterministically — because every
// byte the WAL writes goes through these calls and nothing else.
package walfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is one write-ahead log file.
type File interface {
	io.ReaderAt
	io.Closer
	// Append writes p at the end of the file. Short or failed writes may
	// leave a torn suffix; the WAL's record framing detects and discards
	// it at recovery.
	Append(p []byte) error
	// Sync makes all appended bytes durable. A failed sync leaves the
	// durable state unknown (some, all or none of the unsynced bytes);
	// callers must treat the writer as poisoned.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Size returns the current file size in bytes.
	Size() (int64, error)
}

// FS creates and removes write-ahead log files. Implementations must be
// safe for concurrent use on distinct paths; a single File is serialized
// by the WAL writer's own locking.
type FS interface {
	// OpenAppend opens path for reading and appending, creating it empty
	// when missing. Creation must be durable before the call returns (the
	// OS implementation fsyncs the parent directory): a log file that can
	// vanish at power loss would take every acknowledged write with it.
	OpenAppend(path string) (File, error)
	// Remove deletes path; removing a missing file is not an error.
	Remove(path string) error
}

// OS is the production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenAppend(path string) (File, error) {
	_, serr := os.Stat(path)
	created := os.IsNotExist(serr)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if created {
		// A freshly created log file is only durable once its directory
		// entry is: without this fsync a power failure could drop the
		// whole file — and every acknowledged write in it — even though
		// the data syncs succeeded.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &osFile{f: f}, nil
}

func (osFS) Remove(path string) error {
	err := os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so created and removed entries survive power
// loss, not only process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// osFile appends at a tracked offset rather than O_APPEND so Truncate and
// Append compose predictably (an O_APPEND descriptor ignores the seek
// position, but tracking the end explicitly keeps the write path identical
// to FaultFS's, which the crash tests rely on).
type osFile struct {
	f   *os.File
	end int64
	// endKnown avoids a Stat per append: the end offset is loaded once and
	// maintained by Append/Truncate, which are serialized by the WAL.
	endKnown bool
}

func (w *osFile) loadEnd() error {
	if w.endKnown {
		return nil
	}
	st, err := w.f.Stat()
	if err != nil {
		return err
	}
	w.end = st.Size()
	w.endKnown = true
	return nil
}

func (w *osFile) Append(p []byte) error {
	if err := w.loadEnd(); err != nil {
		return err
	}
	n, err := w.f.WriteAt(p, w.end)
	w.end += int64(n)
	return err
}

func (w *osFile) Sync() error { return w.f.Sync() }

func (w *osFile) Truncate(size int64) error {
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	w.end, w.endKnown = size, true
	return nil
}

func (w *osFile) Size() (int64, error) {
	if err := w.loadEnd(); err != nil {
		return 0, err
	}
	return w.end, nil
}

func (w *osFile) ReadAt(p []byte, off int64) (int, error) { return w.f.ReadAt(p, off) }

func (w *osFile) Close() error { return w.f.Close() }
