package walfs

import (
	"errors"
	"sync"
)

// ErrInjected is returned by operations a FaultFS was told to fail.
var ErrInjected = errors.New("walfs: injected fault")

// ErrCrashed is returned by every operation after FaultFS.Crash: the
// simulated machine is down, so nothing further can reach the disk.
var ErrCrashed = errors.New("walfs: simulated crash")

// FaultFS wraps a real filesystem and injects WAL failure modes
// deterministically:
//
//   - TearAppend(n, keep) makes the n-th append across all files write
//     only its first keep bytes and fail — a torn write.
//   - FailSync(n) makes the n-th sync fail without syncing — the
//     fsyncgate failure mode, where the durable state becomes unknown.
//   - Crash(keepUnsynced) simulates power loss: every file is truncated
//     back to its last-synced length plus at most keepUnsynced bytes of
//     the unsynced suffix (the page-cache prefix a real crash may or may
//     not have flushed), and every later operation returns ErrCrashed.
//
// Because FaultFS writes through to real files, a crashed image can be
// reopened afterwards with walfs.OS against the same directory — exactly
// what the recovery tests do.
type FaultFS struct {
	// Base is the wrapped filesystem; nil means OS.
	Base FS

	mu      sync.Mutex
	files   []*faultFile
	crashed bool

	appends, syncs   int // completed-op counters, 1-based injection points
	tearAt, tearKeep int
	failSyncAt       int
}

// NewFaultFS wraps the OS filesystem.
func NewFaultFS() *FaultFS { return &FaultFS{Base: OS} }

// TearAppend makes the n-th Append (1-based, across all files) write only
// its first keep bytes and then fail with ErrInjected.
func (f *FaultFS) TearAppend(n, keep int) {
	f.mu.Lock()
	f.tearAt, f.tearKeep = n, keep
	f.mu.Unlock()
}

// FailSync makes the n-th Sync (1-based, across all files) fail with
// ErrInjected without syncing anything.
func (f *FaultFS) FailSync(n int) {
	f.mu.Lock()
	f.failSyncAt = n
	f.mu.Unlock()
}

// Ops returns the number of completed appends and syncs so far.
func (f *FaultFS) Ops() (appends, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appends, f.syncs
}

// Crash simulates power loss: every file is truncated to its last-synced
// length plus at most keepUnsynced bytes of unsynced data, and all later
// operations fail with ErrCrashed. In-flight operations complete first
// (they serialize on the same lock); whether their bytes survive depends,
// as on real hardware, on whether a sync completed before the crash.
func (f *FaultFS) Crash(keepUnsynced int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil
	}
	f.crashed = true
	var first error
	for _, ff := range f.files {
		cut := ff.synced + keepUnsynced
		if cut > ff.size {
			cut = ff.size
		}
		if err := ff.real.Truncate(cut); err != nil && first == nil {
			first = err
		}
		if err := ff.real.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	base := f.Base
	if base == nil {
		base = OS
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	real, err := base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	size, err := real.Size()
	if err != nil {
		real.Close()
		return nil, err
	}
	// Existing contents predate this process lifetime: durable by
	// definition.
	ff := &faultFile{fs: f, real: real, size: size, synced: size}
	f.files = append(f.files, ff)
	return ff, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error {
	base := f.Base
	if base == nil {
		base = OS
	}
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return base.Remove(path)
}

type faultFile struct {
	fs     *FaultFS
	real   File
	size   int64
	synced int64
}

func (ff *faultFile) Append(p []byte) error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.appends++
	if f.tearAt != 0 && f.appends == f.tearAt {
		keep := f.tearKeep
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			if err := ff.real.Append(p[:keep]); err != nil {
				return err
			}
			ff.size += int64(keep)
		}
		return ErrInjected
	}
	if err := ff.real.Append(p); err != nil {
		return err
	}
	ff.size += int64(len(p))
	return nil
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.failSyncAt != 0 && f.syncs == f.failSyncAt {
		return ErrInjected
	}
	if err := ff.real.Sync(); err != nil {
		return err
	}
	ff.synced = ff.size
	return nil
}

func (ff *faultFile) Truncate(size int64) error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := ff.real.Truncate(size); err != nil {
		return err
	}
	if size < ff.size {
		ff.size = size
	}
	if ff.synced > ff.size {
		ff.synced = ff.size
	}
	return nil
}

func (ff *faultFile) Size() (int64, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	return ff.size, nil
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	f.mu.Unlock()
	return ff.real.ReadAt(p, off)
}

func (ff *faultFile) Close() error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		// Crash already closed the real file.
		return nil
	}
	return ff.real.Close()
}
