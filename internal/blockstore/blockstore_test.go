package blockstore

import (
	"os"
	"sync/atomic"
	"testing"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

func testBlock(t testing.TB, n int, base int64) *core.Block {
	t.Helper()
	ints := make([]int64, n)
	strs := make([]string, n)
	for i := range ints {
		ints[i] = base + int64(i)
		strs[i] = []string{"red", "green", "blue"}[i%3]
	}
	blk, err := core.Freeze([]core.ColumnData{
		{Kind: types.Int64, Ints: ints},
		{Kind: types.String, Strs: strs},
	}, n, core.FreezeOptions{SortBy: -1})
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

var testKinds = []types.Kind{types.Int64, types.String}

func TestStorePutLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blk := testBlock(t, 100, 1000)
	h, err := s.Put(blk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(h, testKinds)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != blk.Rows() {
		t.Fatalf("rows %d, want %d", got.Rows(), blk.Rows())
	}
	for row := 0; row < blk.Rows(); row++ {
		if got.Int(0, row) != blk.Int(0, row) || got.Str(1, row) != blk.Str(1, row) {
			t.Fatalf("row %d differs after reload", row)
		}
	}
	st := s.Stats()
	if st.Puts != 1 || st.Loads != 1 || st.Blocks != 1 || st.DiskBytes <= 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestStoreLoadErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, lerr := s.Load(0, testKinds); lerr == nil {
		t.Fatal("zero handle load succeeded")
	}
	if _, lerr := s.Load(99, testKinds); lerr == nil {
		t.Fatal("missing block load succeeded")
	}
	h, err := s.Put(testBlock(t, 50, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk: the CRC must reject it at reload.
	path := s.path(h)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(h, testKinds); err == nil {
		t.Fatal("corrupt block load succeeded")
	}
	// The zero handle is rejected before touching disk; the missing file
	// and the corrupt file each count as a load error.
	if got := s.Stats().LoadErrors; got != 2 {
		t.Fatalf("LoadErrors = %d, want 2", got)
	}
}

func TestStoreReopenResumesHandles(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s1.Put(testBlock(t, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s2.Put(testBlock(t, 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if h2 <= h1 {
		t.Fatalf("reopened store reused handle space: %d then %d", h1, h2)
	}
	// Both blocks must still load through the reopened store.
	for _, h := range []Handle{h1, h2} {
		if _, err := s2.Load(h, testKinds); err != nil {
			t.Fatalf("load %d: %v", h, err)
		}
	}
	if got := s2.handlesByID(); len(got) != 2 {
		t.Fatalf("reopened store sees %d blocks, want 2", len(got))
	}
}

func TestStoreRemove(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Put(testBlock(t, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(h, testKinds); err == nil {
		t.Fatal("removed block still loads")
	}
	if st := s.Stats(); st.Blocks != 0 || st.DiskBytes != 0 {
		t.Fatalf("stats after remove: %+v", st)
	}
}

// fakeOwner implements Owner for cache tests.
type fakeOwner struct {
	temp   atomic.Uint64
	pinned atomic.Bool
}

func (f *fakeOwner) Temperature() uint64 { return f.temp.Load() }
func (f *fakeOwner) Pinned() bool        { return f.pinned.Load() }

func TestCacheVictimsColdestFirst(t *testing.T) {
	c := NewCache(250)
	owners := make([]*fakeOwner, 4)
	for i := range owners {
		owners[i] = &fakeOwner{}
		owners[i].temp.Store(uint64(10 * (i + 1))) // owner 0 is coldest
		c.Insert(owners[i], 100)
	}
	if got := c.Used(); got != 400 {
		t.Fatalf("used %d, want 400", got)
	}
	if !c.OverBudget() {
		t.Fatal("400 bytes against a 250 budget is not over budget?")
	}
	victims := c.Victims()
	if len(victims) != 2 {
		t.Fatalf("%d victims to shed 150 bytes of 100-byte blocks, want 2", len(victims))
	}
	if victims[0] != owners[0] || victims[1] != owners[1] {
		t.Fatal("victims are not the two coldest owners")
	}
	for _, v := range victims {
		c.Drop(v)
	}
	if c.OverBudget() {
		t.Fatalf("still over budget after evictions: %d", c.Used())
	}
	if st := c.Stats(); st.Evictions != 2 || st.Resident != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheSkipsPinnedOwners(t *testing.T) {
	c := NewCache(100)
	cold, hot := &fakeOwner{}, &fakeOwner{}
	hot.temp.Store(99)
	cold.pinned.Store(true) // coldest, but in use by a scan
	c.Insert(cold, 80)
	c.Insert(hot, 80)
	victims := c.Victims()
	if len(victims) != 1 || victims[0] != hot {
		t.Fatalf("expected only the unpinned owner as victim, got %d", len(victims))
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewCache(0)
	o := &fakeOwner{}
	c.Insert(o, 1<<40)
	if c.OverBudget() || c.Victims() != nil {
		t.Fatal("unbounded cache nominated victims")
	}
}

func TestCacheReinsertUpdatesSize(t *testing.T) {
	c := NewCache(0)
	o := &fakeOwner{}
	c.Insert(o, 100)
	c.Insert(o, 60)
	if got := c.Used(); got != 60 {
		t.Fatalf("used %d after re-insert, want 60", got)
	}
	c.Drop(o)
	c.Drop(o) // second drop is a no-op
	if got := c.Used(); got != 0 {
		t.Fatalf("used %d after drop, want 0", got)
	}
}
