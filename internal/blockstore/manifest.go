package blockstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

// The durable metadata of a database is two kinds of record file, both
// versioned, generation-stamped and CRC32-C protected:
//
//   - The catalog (catalog-<gen>.dbc, in the database root) lists every
//     table: name, schema, primary key and chunk capacity. It is what
//     OpenPath needs to reconstruct the table set before any data is read.
//   - The manifest (manifest-<gen>.dbm, in a table's block directory)
//     lists the table's frozen chunks in order: the block handle that
//     reloads each chunk, its row count, its delete bitmap, and the sort
//     column of the last sorted freeze.
//
// Records are never updated in place. Each write serializes the whole
// record, writes it to a temp file, fsyncs and renames it to a fresh
// generation-numbered name, then removes generations older than the
// immediately preceding one. Readers pick the highest generation whose
// checksum and structure verify, so a torn or truncated write (a crash
// mid-rename, a chopped file) falls back to the previous generation —
// never to a half state. Block files referenced by neither the surviving
// manifest generation nor anything else are garbage (an eviction or flush
// that raced a crash before its manifest write) and are removed at
// recovery time via Store.Retain.

const (
	// FormatVersion is the on-disk format version of catalog and manifest
	// records. Blocks themselves carry their own version (core: v2 adds
	// the payload CRC32-C).
	FormatVersion = 1

	manifestMagic = 0x4D4C4244 // "DBLM"
	catalogMagic  = 0x434C4244 // "DBLC"

	// Record header: magic u32 | version u32 | generation u64 | crc u32
	// (CRC32-C over the payload that follows the header).
	recHdrSize = 20

	manifestPrefix = "manifest-"
	manifestExt    = ".dbm"
	catalogPrefix  = "catalog-"
	catalogExt     = ".dbc"
)

// recCRC is the Castagnoli table shared by catalog and manifest records
// (same polynomial the serialized blocks use).
var recCRC = crc32.MakeTable(crc32.Castagnoli)

// maxWalStripes bounds the stripe counts a decoded record may claim, so a
// corrupt-but-CRC-colliding tail cannot drive huge allocations.
const maxWalStripes = 1 << 12

// ManifestChunk describes one frozen chunk of a table: the handle that
// reloads its block, its row count, and its delete state. Rows pending an
// uncommitted update at manifest time are recorded as deleted — their
// commit never becomes durable, so recovery must not resurrect them.
type ManifestChunk struct {
	Handle     Handle
	Rows       int
	NumDeleted int
	// Bytes is the block's compressed in-RAM size, so recovery can account
	// residency against the memory budget without loading the payload.
	Bytes int64
	// Deleted is the chunk's delete bitmap (bit set = deleted), trimmed to
	// Rows; nil when no row is deleted.
	Deleted []uint64
}

// Manifest is the durable description of a table's frozen chunk sequence.
type Manifest struct {
	// Generation is the record's monotonically increasing write stamp; the
	// highest generation that verifies wins at load time.
	Generation uint64
	// SortBy is the column the blocks were last freeze-sorted by, or -1.
	SortBy int
	// Chunks lists the frozen chunks in relation order. Hot chunks are not
	// recorded: recovery covers hot data through the write-ahead log (see
	// WalApplied), frozen data through the chunk list.
	Chunks []ManifestChunk

	// Epoch is the table's write-epoch high-water mark at manifest time.
	// Recovery restores it before WAL replay so replayed mutations mint
	// epochs above everything the previous lifetime acknowledged
	// (cross-restart epoch continuity).
	Epoch uint64
	// WalApplied holds, per write stripe, the highest WAL LSN whose effect
	// is fully covered by this manifest's chunks — the stripe's WAL
	// truncation point. Replay skips records at or below it. Empty when
	// the table runs without a WAL. Both fields ride in an optional
	// manifest tail: manifests written before the WAL existed decode with
	// a zero epoch and no stripes.
	WalApplied []uint64
}

// CatalogTable is one table entry of the catalog.
type CatalogTable struct {
	Name       string
	Columns    []types.Column
	PrimaryKey string // "" when the table has no primary key
	ChunkRows  int

	// WriteStripes and Wal record the table's write-path shape: both are
	// structural (reopening must recreate the same stripe count to route
	// WAL replay, and must know a WAL exists to replay it), so they live
	// in the durable catalog, in an optional tail that old catalogs decode
	// as 1 stripe / no WAL.
	WriteStripes int
	Wal          bool
}

// Catalog is the durable table registry of a database directory.
type Catalog struct {
	Generation uint64
	Tables     []CatalogTable
}

// genFile is one generation-stamped record file on disk.
type genFile struct {
	gen  uint64
	path string
}

// genFiles lists dir's prefix<gen-hex>ext files, newest generation first.
// A missing directory reads as empty.
func genFiles(dir, prefix, ext string) []genFile {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []genFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext), 16, 64)
		if err != nil {
			continue
		}
		out = append(out, genFile{g, filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gen > out[j].gen })
	return out
}

// writeRecord atomically persists one generation of a record: temp file,
// fsync, rename to prefix<gen-hex>ext — then prunes generations older than
// gen-1 (the immediately preceding generation is kept as the torn-write
// fallback).
func writeRecord(dir, prefix, ext string, magic uint32, gen uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	buf := make([]byte, recHdrSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], FormatVersion)
	binary.LittleEndian.PutUint64(buf[8:], gen)
	binary.LittleEndian.PutUint32(buf[16:], crc32.Checksum(payload, recCRC))
	copy(buf[recHdrSize:], payload)

	dst := filepath.Join(dir, fmt.Sprintf("%s%016x%s", prefix, gen, ext))
	tmp, err := os.CreateTemp(dir, prefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("blockstore: write %s: %w", dst, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("blockstore: sync %s: %w", dst, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("blockstore: close %s: %w", dst, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	for _, f := range genFiles(dir, prefix, ext) {
		if f.gen+1 < gen {
			os.Remove(f.path)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// survives power loss — without it the file contents are durable but the
// name may not be, and an acknowledged record or block could vanish.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("blockstore: sync %s: %w", dir, err)
	}
	return nil
}

// loadRecord reads and verifies one record file, returning its generation
// and payload. Any defect — wrong magic or version, short file, checksum
// mismatch — is an error; callers fall back to an older generation.
func loadRecord(path string, magic uint32) (uint64, []byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < recHdrSize {
		return 0, nil, fmt.Errorf("blockstore: %s: truncated record (%d bytes)", path, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return 0, nil, fmt.Errorf("blockstore: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != FormatVersion {
		return 0, nil, fmt.Errorf("blockstore: %s: unsupported format version %d", path, v)
	}
	gen := binary.LittleEndian.Uint64(buf[8:])
	if want, got := binary.LittleEndian.Uint32(buf[16:]), crc32.Checksum(buf[recHdrSize:], recCRC); want != got {
		return 0, nil, fmt.Errorf("blockstore: %s: checksum mismatch (header %08x, payload %08x)", path, want, got)
	}
	return gen, buf[recHdrSize:], nil
}

// recReader is a bounds-checked cursor over a record payload: the CRC
// guards against bit rot, the reader against structurally impossible
// values, so a defective payload reads as an error, never a panic.
type recReader struct {
	buf []byte
	off int
	err error
}

func (r *recReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("blockstore: record payload: %s at offset %d of %d", what, r.off, len(r.buf))
	}
}

func (r *recReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *recReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *recReader) byte() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *recReader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func encodeManifest(m *Manifest) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(m.SortBy)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Chunks)))
	for i := range m.Chunks {
		c := &m.Chunks[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Handle))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.NumDeleted))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Bytes))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Deleted)))
		for _, w := range c.Deleted {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	// Optional WAL tail (epoch + per-stripe applied LSNs). Written only
	// when there is something to say, so WAL-less tables keep producing
	// byte-identical manifests that pre-WAL builds can still read.
	if m.Epoch != 0 || len(m.WalApplied) > 0 {
		buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.WalApplied)))
		for _, lsn := range m.WalApplied {
			buf = binary.LittleEndian.AppendUint64(buf, lsn)
		}
	}
	return buf
}

func decodeManifest(payload []byte) (*Manifest, error) {
	r := &recReader{buf: payload}
	m := &Manifest{SortBy: int(int32(r.u32()))}
	count := int(r.u32())
	for i := 0; i < count && r.err == nil; i++ {
		c := ManifestChunk{
			Handle:     Handle(r.u64()),
			Rows:       int(r.u32()),
			NumDeleted: int(r.u32()),
			Bytes:      int64(r.u64()),
		}
		words := int(r.u32())
		if r.err != nil {
			break
		}
		if c.Handle == 0 || c.Rows < 1 || c.Rows > core.MaxRows {
			return nil, fmt.Errorf("blockstore: manifest chunk %d: handle %d, %d rows out of range", i, c.Handle, c.Rows)
		}
		if c.NumDeleted > c.Rows {
			return nil, fmt.Errorf("blockstore: manifest chunk %d: %d deleted of %d rows", i, c.NumDeleted, c.Rows)
		}
		if words > (c.Rows+63)/64 {
			return nil, fmt.Errorf("blockstore: manifest chunk %d: %d bitmap words for %d rows", i, words, c.Rows)
		}
		if words > 0 {
			c.Deleted = make([]uint64, words)
			for w := range c.Deleted {
				c.Deleted[w] = r.u64()
			}
		}
		m.Chunks = append(m.Chunks, c)
	}
	if r.err == nil && r.off != len(payload) {
		// Optional WAL tail: epoch high-water mark and per-stripe applied
		// LSNs. Absent in pre-WAL manifests.
		m.Epoch = r.u64()
		stripes := int(r.u32())
		if r.err == nil && stripes > maxWalStripes {
			return nil, fmt.Errorf("blockstore: manifest records %d WAL stripes", stripes)
		}
		for i := 0; i < stripes && r.err == nil; i++ {
			m.WalApplied = append(m.WalApplied, r.u64())
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("blockstore: manifest payload has %d trailing bytes", len(payload)-r.off)
	}
	return m, nil
}

func encodeCatalog(c *Catalog) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Tables)))
	for i := range c.Tables {
		t := &c.Tables[i]
		buf = appendStr(buf, t.Name)
		buf = appendStr(buf, t.PrimaryKey)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.ChunkRows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Columns)))
		for _, col := range t.Columns {
			buf = append(buf, byte(col.Kind))
			if col.Nullable {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = appendStr(buf, col.Name)
		}
	}
	// Optional write-path tail: one (stripes, wal) pair per table, in
	// table order. Written only when some table departs from the pre-WAL
	// default (1 stripe, no WAL), keeping old catalogs byte-stable.
	tailNeeded := false
	for i := range c.Tables {
		if c.Tables[i].WriteStripes > 1 || c.Tables[i].Wal {
			tailNeeded = true
			break
		}
	}
	if tailNeeded {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Tables)))
		for i := range c.Tables {
			t := &c.Tables[i]
			stripes := t.WriteStripes
			if stripes < 1 {
				stripes = 1
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(stripes))
			if t.Wal {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

func decodeCatalog(payload []byte) (*Catalog, error) {
	r := &recReader{buf: payload}
	c := &Catalog{}
	count := int(r.u32())
	for i := 0; i < count && r.err == nil; i++ {
		t := CatalogTable{
			Name:       r.str(),
			PrimaryKey: r.str(),
			ChunkRows:  int(r.u32()),
		}
		cols := int(r.u32())
		for j := 0; j < cols && r.err == nil; j++ {
			kind := types.Kind(r.byte())
			nullable := r.byte() != 0
			name := r.str()
			if kind > types.String {
				return nil, fmt.Errorf("blockstore: catalog table %q: column %q has unknown kind %d", t.Name, name, kind)
			}
			t.Columns = append(t.Columns, types.Column{Name: name, Kind: kind, Nullable: nullable})
		}
		if r.err == nil {
			if t.Name == "" || len(t.Columns) == 0 {
				return nil, fmt.Errorf("blockstore: catalog table %d is empty", i)
			}
			t.WriteStripes = 1
			c.Tables = append(c.Tables, t)
		}
	}
	if r.err == nil && r.off != len(payload) {
		// Optional write-path tail: per-table stripe counts and WAL flags.
		// Absent in pre-WAL catalogs (every table defaults to 1 stripe).
		n := int(r.u32())
		if r.err == nil && n != len(c.Tables) {
			return nil, fmt.Errorf("blockstore: catalog write-path tail covers %d tables, catalog has %d", n, len(c.Tables))
		}
		for i := 0; i < n && r.err == nil; i++ {
			stripes := int(r.u32())
			wal := r.byte() != 0
			if r.err != nil {
				break
			}
			if stripes < 1 || stripes > maxWalStripes {
				return nil, fmt.Errorf("blockstore: catalog table %q records %d write stripes", c.Tables[i].Name, stripes)
			}
			c.Tables[i].WriteStripes = stripes
			c.Tables[i].Wal = wal
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("blockstore: catalog payload has %d trailing bytes", len(payload)-r.off)
	}
	return c, nil
}

// WriteManifest atomically persists one generation of a table's manifest
// into dir (the table's block directory). The caller owns the generation
// counter and must increase it monotonically; the immediately preceding
// generation is retained on disk as the torn-write fallback, older ones
// are pruned.
func WriteManifest(dir string, m *Manifest) error {
	return writeRecord(dir, manifestPrefix, manifestExt, manifestMagic, m.Generation, encodeManifest(m))
}

// LoadManifest returns the newest manifest generation in dir that verifies
// (checksum and structure), or (nil, nil) when the directory holds no
// manifest files at all. Torn, truncated or corrupt newer generations are
// skipped — recovery falls back to the previous generation, never to a
// half state. When manifest files exist but none of them verifies,
// LoadManifest returns an error: the table demonstrably had durable state,
// so treating it as empty would let recovery garbage-collect intact block
// files and escalate record corruption into data loss. Use PruneManifests
// after a successful load to clear the skipped files.
func LoadManifest(dir string) (*Manifest, error) {
	var newestErr error
	for _, f := range genFiles(dir, manifestPrefix, manifestExt) {
		gen, payload, err := loadRecord(f.path, manifestMagic)
		if err == nil {
			var m *Manifest
			if m, err = decodeManifest(payload); err == nil {
				m.Generation = gen
				return m, nil
			}
		}
		if newestErr == nil {
			newestErr = err
		}
	}
	return nil, refuseIfAllCorrupt("manifest", dir, newestErr)
}

// refuseIfAllCorrupt turns "record files exist but none verifies" into an
// error (nil when the directory simply held no records).
func refuseIfAllCorrupt(kind, dir string, newestErr error) error {
	if newestErr == nil {
		return nil
	}
	return fmt.Errorf("blockstore: %s records exist in %s but none verifies (newest: %w); refusing to recover as empty", kind, dir, newestErr)
}

// PruneManifests removes every manifest generation other than keep (with
// keep zero: all of them). Recovery calls it after choosing a generation,
// so superseded and corrupt records do not accumulate.
func PruneManifests(dir string, keep uint64) {
	for _, f := range genFiles(dir, manifestPrefix, manifestExt) {
		if keep == 0 || f.gen != keep {
			os.Remove(f.path)
		}
	}
}

// WriteCatalog atomically persists one generation of the database catalog
// into dir (the database root). Generation discipline is the caller's, as
// with WriteManifest.
func WriteCatalog(dir string, c *Catalog) error {
	return writeRecord(dir, catalogPrefix, catalogExt, catalogMagic, c.Generation, encodeCatalog(c))
}

// LoadCatalog returns the newest catalog generation in dir that verifies,
// (nil, nil) when dir holds no catalog files, or an error when catalog
// files exist but none verifies — the semantics of LoadManifest, for the
// database root.
func LoadCatalog(dir string) (*Catalog, error) {
	var newestErr error
	for _, f := range genFiles(dir, catalogPrefix, catalogExt) {
		gen, payload, err := loadRecord(f.path, catalogMagic)
		if err == nil {
			var c *Catalog
			if c, err = decodeCatalog(payload); err == nil {
				c.Generation = gen
				return c, nil
			}
		}
		if newestErr == nil {
			newestErr = err
		}
	}
	return nil, refuseIfAllCorrupt("catalog", dir, newestErr)
}

// PruneCatalogs removes every catalog generation other than keep (with
// keep zero: all of them).
func PruneCatalogs(dir string, keep uint64) {
	for _, f := range genFiles(dir, catalogPrefix, catalogExt) {
		if keep == 0 || f.gen != keep {
			os.Remove(f.path)
		}
	}
}
