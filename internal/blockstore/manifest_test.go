package blockstore

import (
	"os"
	"path/filepath"
	"testing"

	"datablocks/internal/types"
)

func sampleManifest(gen uint64) *Manifest {
	return &Manifest{
		Generation: gen,
		SortBy:     2,
		Chunks: []ManifestChunk{
			{Handle: 1, Rows: 1024, NumDeleted: 3, Bytes: 4096, Deleted: []uint64{0b1011, 0, 7: 0}},
			{Handle: 9, Rows: 65536, Bytes: 1 << 20},
			{Handle: 2, Rows: 1, NumDeleted: 1, Bytes: 64, Deleted: []uint64{1}},
		},
	}
}

func sampleCatalog(gen uint64) *Catalog {
	return &Catalog{
		Generation: gen,
		Tables: []CatalogTable{
			{
				Name: "events",
				Columns: []types.Column{
					{Name: "id", Kind: types.Int64},
					{Name: "amount", Kind: types.Float64, Nullable: true},
					{Name: "status", Kind: types.String},
				},
				PrimaryKey: "id",
				ChunkRows:  2048,
			},
			{
				Name:      "nopk",
				Columns:   []types.Column{{Name: "v", Kind: types.String}},
				ChunkRows: 65536,
			},
		},
	}
}

func manifestEqual(t *testing.T, a, b *Manifest) {
	t.Helper()
	if a.Generation != b.Generation || a.SortBy != b.SortBy || len(a.Chunks) != len(b.Chunks) {
		t.Fatalf("manifest header diverged: %+v vs %+v", a, b)
	}
	for i := range a.Chunks {
		x, y := a.Chunks[i], b.Chunks[i]
		if x.Handle != y.Handle || x.Rows != y.Rows || x.NumDeleted != y.NumDeleted || x.Bytes != y.Bytes {
			t.Fatalf("chunk %d diverged: %+v vs %+v", i, x, y)
		}
		if len(x.Deleted) != len(y.Deleted) {
			t.Fatalf("chunk %d bitmap length %d vs %d", i, len(x.Deleted), len(y.Deleted))
		}
		for w := range x.Deleted {
			if x.Deleted[w] != y.Deleted[w] {
				t.Fatalf("chunk %d bitmap word %d diverged", i, w)
			}
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleManifest(7)
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no manifest loaded")
	}
	manifestEqual(t, want, got)
}

func TestCatalogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleCatalog(3)
	if err := WriteCatalog(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no catalog loaded")
	}
	if got.Generation != want.Generation || len(got.Tables) != len(want.Tables) {
		t.Fatalf("catalog header diverged: %+v vs %+v", got, want)
	}
	for i := range want.Tables {
		w, g := want.Tables[i], got.Tables[i]
		if w.Name != g.Name || w.PrimaryKey != g.PrimaryKey || w.ChunkRows != g.ChunkRows {
			t.Fatalf("table %d diverged: %+v vs %+v", i, g, w)
		}
		if len(w.Columns) != len(g.Columns) {
			t.Fatalf("table %d column count %d vs %d", i, len(g.Columns), len(w.Columns))
		}
		for j := range w.Columns {
			if w.Columns[j] != g.Columns[j] {
				t.Fatalf("table %d column %d diverged: %+v vs %+v", i, j, g.Columns[j], w.Columns[j])
			}
		}
	}
}

func TestLoadEmptyDirIsNil(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadManifest(dir); err != nil || m != nil {
		t.Fatalf("LoadManifest on empty dir = %v, %v", m, err)
	}
	if c, err := LoadCatalog(dir); err != nil || c != nil {
		t.Fatalf("LoadCatalog on empty dir = %v, %v", c, err)
	}
	if m, err := LoadManifest(filepath.Join(dir, "missing")); err != nil || m != nil {
		t.Fatalf("LoadManifest on missing dir = %v, %v", m, err)
	}
}

// newestRecord returns the path of the highest-generation record file
// with the given prefix and extension.
func newestRecord(t *testing.T, dir, prefix, ext string) string {
	t.Helper()
	files := genFiles(dir, prefix, ext)
	if len(files) == 0 {
		t.Fatalf("no %s*%s records in %s", prefix, ext, dir)
	}
	return files[0].path
}

// TestTornManifestFallsBackToPreviousGeneration is the write-then-chop
// harness: a manifest truncated at every possible length — simulating a
// torn write or a crash mid-flush — must never yield a half state. Load
// returns the previous generation intact (or nothing when no older
// generation survives).
func TestTornManifestFallsBackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	prev := sampleManifest(4)
	if err := WriteManifest(dir, prev); err != nil {
		t.Fatal(err)
	}
	next := sampleManifest(5)
	next.Chunks = append(next.Chunks, ManifestChunk{Handle: 77, Rows: 10, Bytes: 100})
	if err := WriteManifest(dir, next); err != nil {
		t.Fatal(err)
	}
	newest := newestRecord(t, dir, manifestPrefix, manifestExt)
	whole, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(whole); cut++ {
		if err = os.WriteFile(newest, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, lerr := LoadManifest(dir)
		if lerr != nil {
			t.Fatalf("cut %d: %v", cut, lerr)
		}
		if got == nil {
			t.Fatalf("cut %d: previous generation lost", cut)
		}
		if got.Generation != prev.Generation {
			t.Fatalf("cut %d: loaded generation %d, want fallback to %d", cut, got.Generation, prev.Generation)
		}
		manifestEqual(t, prev, got)
	}
	// Restore the whole file: the newest generation wins again.
	if err = os.WriteFile(newest, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil || got == nil || got.Generation != next.Generation {
		t.Fatalf("restored newest generation not chosen: %+v, %v", got, err)
	}
}

// TestCorruptManifestPayloadFallsBack flips bits (rather than truncating):
// the checksum must reject the record and the previous generation wins.
func TestCorruptManifestPayloadFallsBack(t *testing.T) {
	dir := t.TempDir()
	prev := sampleManifest(1)
	if err := WriteManifest(dir, prev); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, sampleManifest(2)); err != nil {
		t.Fatal(err)
	}
	newest := newestRecord(t, dir, manifestPrefix, manifestExt)
	whole, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the magic, the version, and two payload positions:
	// each defect must reject the record and fall back cleanly.
	for _, pos := range []int{0, 5, recHdrSize, recHdrSize + 9, len(whole) - 1} {
		buf := append([]byte(nil), whole...)
		buf[pos] ^= 0x40
		if err := os.WriteFile(newest, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadManifest(dir)
		if err != nil {
			t.Fatalf("corrupt byte %d: %v", pos, err)
		}
		if got == nil || got.Generation != prev.Generation {
			t.Fatalf("corrupt byte %d: want fallback to generation %d, got %+v", pos, prev.Generation, got)
		}
		manifestEqual(t, prev, got)
	}
}

// TestAllGenerationsCorruptIsAnError: when record files exist but none
// verifies, loading must fail loudly — a silent "no manifest" would let
// recovery garbage-collect intact block files and destroy data that was
// merely missing its metadata.
func TestAllGenerationsCorruptIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, sampleManifest(1)); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, sampleManifest(2)); err != nil {
		t.Fatal(err)
	}
	for _, f := range genFiles(dir, manifestPrefix, manifestExt) {
		if err := os.Truncate(f.path, 7); err != nil {
			t.Fatal(err)
		}
	}
	if m, err := LoadManifest(dir); err == nil {
		t.Fatalf("all-corrupt manifests loaded as %+v, want an error", m)
	}
	if err := WriteCatalog(dir, sampleCatalog(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newestRecord(t, dir, catalogPrefix, catalogExt), 3); err != nil {
		t.Fatal(err)
	}
	if c, err := LoadCatalog(dir); err == nil {
		t.Fatalf("all-corrupt catalog loaded as %+v, want an error", c)
	}
}

func TestPruneRecords(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 5; gen++ {
		m := sampleManifest(gen)
		if err := WriteManifest(dir, m); err != nil {
			t.Fatal(err)
		}
	}
	// WriteManifest keeps the current and previous generation only.
	files := genFiles(dir, manifestPrefix, manifestExt)
	if len(files) != 2 || files[0].gen != 5 || files[1].gen != 4 {
		t.Fatalf("after 5 writes: %+v", files)
	}
	PruneManifests(dir, 5)
	files = genFiles(dir, manifestPrefix, manifestExt)
	if len(files) != 1 || files[0].gen != 5 {
		t.Fatalf("after prune-to-5: %+v", files)
	}
	PruneManifests(dir, 0)
	if files = genFiles(dir, manifestPrefix, manifestExt); len(files) != 0 {
		t.Fatalf("after prune-all: %+v", files)
	}
}

func TestStoreRetain(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blk := testBlock(t, 64, 0)
	var handles []Handle
	for i := 0; i < 4; i++ {
		h, perr := s.Put(blk)
		if perr != nil {
			t.Fatal(perr)
		}
		handles = append(handles, h)
	}
	// A stray temp file from an interrupted write must be cleared too.
	if err = os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := map[Handle]bool{handles[1]: true, handles[3]: true}
	removed, err := s.Retain(keep)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d blocks, want 2", removed)
	}
	left := s.handlesByID()
	if len(left) != 2 || left[0] != handles[1] || left[1] != handles[3] {
		t.Fatalf("surviving handles %v", left)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d files left on disk, want the 2 kept blocks", len(entries))
	}
	// Retain(nil) clears the store.
	if _, err := s.Retain(nil); err != nil {
		t.Fatal(err)
	}
	if got := s.handlesByID(); len(got) != 0 {
		t.Fatalf("handles after Retain(nil): %v", got)
	}
}
