package blockstore

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Owner is the cache's view of the chunk that serves a resident block:
// its observed access count (temperature) and whether a reader currently
// pins its payload in RAM. The storage layer implements it with its
// chunks; the cache never touches the block itself.
type Owner interface {
	// Temperature is a monotone access counter, bumped by every scan or
	// point lookup that touches the owner's block.
	Temperature() uint64
	// Pinned reports whether an in-flight reader holds the payload; a
	// pinned owner is never nominated for eviction.
	Pinned() bool
}

// Cache tracks which frozen blocks are resident in RAM against a byte
// budget and nominates eviction victims coldest-first. It deliberately
// does not own the block payloads: the storage layer installs and drops
// them under its own locks, reporting residency changes here — so a block
// is counted exactly once, whether it is serving scans out of its chunk
// or has just been reloaded from the store.
type Cache struct {
	budget int64

	mu   sync.Mutex
	res  map[Owner]int64
	used int64

	evictions atomic.Int64
}

// CacheStats summarizes cache occupancy and churn.
type CacheStats struct {
	BudgetBytes   int64
	ResidentBytes int64
	Resident      int
	Evictions     int64
}

// NewCache creates a residency cache with the given byte budget; a budget
// of zero or less means unbounded (no victim is ever nominated).
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, res: make(map[Owner]int64)}
}

// Budget returns the configured byte budget (<= 0: unbounded).
func (c *Cache) Budget() int64 { return c.budget }

// Used returns the resident bytes currently accounted for.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Insert records that an owner's block is resident with the given
// footprint. Re-inserting an already resident owner updates its size.
func (c *Cache) Insert(o Owner, bytes int64) {
	c.mu.Lock()
	if old, ok := c.res[o]; ok {
		c.used -= old
	}
	c.res[o] = bytes
	c.used += bytes
	c.mu.Unlock()
}

// Drop records that an owner's block left RAM (evicted, or the owner went
// away). Dropping a non-resident owner is a no-op.
func (c *Cache) Drop(o Owner) {
	c.mu.Lock()
	if bytes, ok := c.res[o]; ok {
		c.used -= bytes
		delete(c.res, o)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
}

// OverBudget reports whether the resident set exceeds the budget.
func (c *Cache) OverBudget() bool {
	if c.budget <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used > c.budget
}

// Victims nominates unpinned owners, coldest first by temperature, whose
// combined eviction would bring the resident set back under budget. The
// caller performs the actual evictions (some may fail benignly — a reader
// can pin a victim after nomination) and reports them back through Drop.
func (c *Cache) Victims() []Owner {
	if c.budget <= 0 {
		return nil
	}
	c.mu.Lock()
	shed := c.used - c.budget
	if shed <= 0 {
		c.mu.Unlock()
		return nil
	}
	type cand struct {
		o     Owner
		bytes int64
		temp  uint64
	}
	cands := make([]cand, 0, len(c.res))
	for o, bytes := range c.res {
		if o.Pinned() {
			continue
		}
		cands = append(cands, cand{o, bytes, o.Temperature()})
	}
	c.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].temp < cands[j].temp })
	var out []Owner
	for _, v := range cands {
		if shed <= 0 {
			break
		}
		out = append(out, v.o)
		shed -= v.bytes
	}
	return out
}

// Stats returns a snapshot of cache occupancy and eviction count.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		BudgetBytes:   c.budget,
		ResidentBytes: c.used,
		Resident:      len(c.res),
		Evictions:     c.evictions.Load(),
	}
}
