// Package blockstore implements the cold block store: frozen Data Blocks
// are serialized to secondary storage (Store) so their compressed payload
// can be dropped from RAM, and a byte-budgeted residency cache (Cache)
// decides — coldest first, by observed access — which resident blocks to
// evict when a table exceeds its memory budget.
//
// This is the paper's eviction story made concrete (§1: "cold data can be
// evicted to secondary storage" while staying query-able): the storage
// layer keeps serving scans and O(1) point accesses out of evicted chunks
// by transparently reloading their blocks through this package, and the
// temperature-driven placement follows the compaction/storage-advisor line
// of work — placement tracks observed access, not just chunk age.
//
// The Store is a flat directory of self-contained block files, one per
// block, written atomically (temp file + fsync + rename) and verified on
// load through the serialized format's CRC32-C. It stores payload bytes
// only; which chunk a handle belongs to is the owner's (the relation's)
// bookkeeping, exactly like the paper's blocks, which carry no schema.
//
// # Durability and garbage collection
//
// The package also defines the durable metadata records that make a store
// directory a restart-recoverable database image (see manifest.go): a
// CRC-protected, generation-stamped catalog (table registry, database
// root) and per-table manifest (frozen chunk sequence, block directory).
// The contract:
//
//   - A block file is durable the moment Put returns (fsync before
//     rename), but it is *reachable* only once a manifest generation
//     references its handle. Writers therefore order: put blocks first,
//     write the manifest second.
//   - Record writes are atomic and keep the previous generation as a
//     fallback; loaders pick the newest generation that verifies, so a
//     torn write reads as the previous generation, never a half state.
//   - At recovery, block files not referenced by the surviving manifest
//     generation are garbage — a crash between Put and the manifest
//     write, or a superseded generation — and must be removed with
//     Retain, passing the manifest's handle set. A store that was never
//     given a manifest (a pure spill cache) is cleared the same way with
//     an empty handle set when its owner is done with it.
//
// Error discipline is machine-checked: the dbvet errcheckdb analyzer
// (internal/analysis, run by `make lint`) refuses a discarded error from
// ReadBlock, WriteBlock, Load, Flush, Sync or the catalog/manifest
// save/load functions — a dropped error here is a cold block silently
// treated as resident. See ARCHITECTURE.md, "Enforced invariants".
package blockstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

// Handle identifies one stored block within its Store. The zero Handle
// means "not stored".
type Handle uint64

// blockExt is the on-disk suffix of one serialized block.
const blockExt = ".dblk"

// Store is a disk-backed store of serialized frozen blocks. It is safe
// for concurrent use: Put and Load run without a lock (each handle maps
// to its own file), only handle allocation is serialized.
type Store struct {
	dir  string
	next atomic.Uint64

	mu    sync.Mutex
	sizes map[Handle]int64 // on-disk bytes per stored block

	puts, loads         atomic.Int64
	bytesOut, bytesIn   atomic.Int64
	removed, loadErrors atomic.Int64
}

// StoreStats summarizes a store's traffic and footprint.
type StoreStats struct {
	Puts, Loads, Removes int64
	LoadErrors           int64
	BytesWritten         int64
	BytesRead            int64
	Blocks               int
	DiskBytes            int64
}

// Open creates (or reopens) a block store rooted at dir. Reopening a
// directory that already holds block files resumes handle allocation past
// the existing ones, so new blocks never clobber old files.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	s := &Store{dir: dir, sizes: make(map[Handle]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	var max uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, blockExt) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, blockExt), 10, 64)
		if err != nil {
			continue
		}
		if info, err := e.Info(); err == nil {
			s.sizes[Handle(id)] = info.Size()
		}
		if id > max {
			max = id
		}
	}
	s.next.Store(max)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(h Handle) string {
	return filepath.Join(s.dir, fmt.Sprintf("%012d%s", uint64(h), blockExt))
}

// Put serializes the block and writes it to the store atomically (temp
// file, fsync, rename), returning the handle that reloads it.
func (s *Store) Put(blk *core.Block) (Handle, error) {
	buf, err := blk.MarshalBinary()
	if err != nil {
		return 0, fmt.Errorf("blockstore: marshal: %w", err)
	}
	h := Handle(s.next.Add(1))
	dst := s.path(h)
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("blockstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("blockstore: write %s: %w", dst, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("blockstore: sync %s: %w", dst, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("blockstore: close %s: %w", dst, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return 0, fmt.Errorf("blockstore: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.sizes[h] = int64(len(buf))
	s.mu.Unlock()
	s.puts.Add(1)
	s.bytesOut.Add(int64(len(buf)))
	return h, nil
}

// Load reads a stored block back into memory, verifying its checksum and
// structure; kinds supplies the schema the serialized block does not
// carry. A missing file, a truncated read, or corruption all surface as
// errors — never as a block with wrong contents.
func (s *Store) Load(h Handle, kinds []types.Kind) (*core.Block, error) {
	if h == 0 {
		return nil, fmt.Errorf("blockstore: load of zero handle")
	}
	buf, err := os.ReadFile(s.path(h))
	if err != nil {
		s.loadErrors.Add(1)
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	blk, err := core.UnmarshalBlock(buf, kinds)
	if err != nil {
		s.loadErrors.Add(1)
		return nil, fmt.Errorf("blockstore: block %d: %w", h, err)
	}
	s.loads.Add(1)
	s.bytesIn.Add(int64(len(buf)))
	return blk, nil
}

// Retain removes every stored block whose handle is not in keep — the
// manifest-driven garbage collection — plus stray temp files left by
// interrupted writes. With an empty (or nil) keep set it clears the store
// entirely. It returns the number of block files removed.
func (s *Store) Retain(keep map[Handle]bool) (int, error) {
	removed := 0
	for _, h := range s.handlesByID() {
		if keep[h] {
			continue
		}
		if err := s.Remove(h); err != nil {
			return removed, err
		}
		removed++
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return removed, fmt.Errorf("blockstore: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return removed, nil
}

// Remove deletes a stored block.
func (s *Store) Remove(h Handle) error {
	if err := os.Remove(s.path(h)); err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	s.mu.Lock()
	delete(s.sizes, h)
	s.mu.Unlock()
	s.removed.Add(1)
	return nil
}

// Stats returns a snapshot of the store's counters and footprint.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	blocks, disk := len(s.sizes), int64(0)
	for _, b := range s.sizes {
		disk += b
	}
	s.mu.Unlock()
	return StoreStats{
		Puts:         s.puts.Load(),
		Loads:        s.loads.Load(),
		Removes:      s.removed.Load(),
		LoadErrors:   s.loadErrors.Load(),
		BytesWritten: s.bytesOut.Load(),
		BytesRead:    s.bytesIn.Load(),
		Blocks:       blocks,
		DiskBytes:    disk,
	}
}

// Close is the store's lifecycle hook. Block files are each synced at
// Put time, so there is nothing to flush, and the store deliberately
// stays readable afterwards — Table.Close closes its store yet evicted
// chunks keep reloading through it. A future write-behind store would
// drain here.
func (s *Store) Close() error { return nil }

// handlesByID returns the stored handles in ascending order (test helper
// and future recovery hook).
func (s *Store) handlesByID() []Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs := make([]Handle, 0, len(s.sizes))
	for h := range s.sizes {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}
