package exec

import (
	"encoding/binary"
	"math"
	"math/bits"

	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// hashTable is the materialized build side of a hash join. In addition to
// the bucket map it keeps a 2^16-bit tag filter — our analogue of HyPer's
// tagged hash-table pointers (Appendix E, [20]) — that vectorized scans can
// probe early to drop probe tuples before unpacking them.
type hashTable struct {
	build    *Result
	keyCols  []int
	keyKinds []types.Kind
	buckets  map[uint64][]int32
	tags     [1024]uint64 // 2^16 tag bits
	// intKey is >= 0 when the join key is a single non-null integer
	// column, enabling the fast early-probe path.
	intKey int
}

func buildHashTable(build *Result, keyCols []int) *hashTable {
	ht := &hashTable{
		build:   build,
		keyCols: keyCols,
		buckets: make(map[uint64][]int32, build.NumRows()),
		intKey:  -1,
	}
	ht.keyKinds = make([]types.Kind, len(keyCols))
	for i, c := range keyCols {
		ht.keyKinds[i] = build.Cols[c].Kind
	}
	if len(keyCols) == 1 && ht.keyKinds[0] == types.Int64 {
		ht.intKey = keyCols[0]
	}
	var buf []byte
	for row := 0; row < build.NumRows(); row++ {
		buf = ht.encodeBuildKey(buf[:0], row)
		if buf == nil {
			continue // NULL keys never join
		}
		h := hashBytes(buf)
		ht.buckets[h] = append(ht.buckets[h], int32(row))
		ht.setTag(h)
	}
	return ht
}

// encodeBuildKey serializes the key of a build row; nil marks a NULL key.
func (ht *hashTable) encodeBuildKey(buf []byte, row int) []byte {
	for _, c := range ht.keyCols {
		col := &ht.build.Cols[c]
		if col.Nulls[row] {
			return nil
		}
		switch col.Kind {
		case types.Int64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(col.Ints[row]))
		case types.Float64:
			buf = binary.LittleEndian.AppendUint64(buf, floatKeyBits(col.Floats[row]))
		default:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col.Strs[row])))
			buf = append(buf, col.Strs[row]...)
		}
	}
	return buf
}

// encodeProbeKey serializes the probe tuple's key; nil marks a NULL key.
func (ht *hashTable) encodeProbeKey(buf []byte, t *Tuple, probeKeys []int) []byte {
	for i, c := range probeKeys {
		if t.Nulls[c] {
			return nil
		}
		switch ht.keyKinds[i] {
		case types.Int64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Ints[c]))
		case types.Float64:
			buf = binary.LittleEndian.AppendUint64(buf, floatKeyBits(t.Floats[c]))
		default:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Strs[c])))
			buf = append(buf, t.Strs[c]...)
		}
	}
	return buf
}

// lookup returns the candidate build rows for an encoded key. Candidates
// share the 64-bit hash; the caller verifies equality.
func (ht *hashTable) lookup(key []byte) []int32 {
	h := hashBytes(key)
	if !ht.testTag(h) {
		return nil
	}
	return ht.buckets[h]
}

// verify checks that the build row's key equals the probe key byte-wise.
// It returns the (possibly regrown) scratch buffer for reuse.
func (ht *hashTable) verify(key []byte, row int32, scratch []byte) (bool, []byte) {
	bk := ht.encodeBuildKey(scratch[:0], int(row))
	if len(bk) != len(key) {
		return false, bk
	}
	for i := range bk {
		if bk[i] != key[i] {
			return false, bk
		}
	}
	return true, bk
}

func (ht *hashTable) setTag(h uint64) {
	tag := h >> 48
	ht.tags[tag>>6] |= 1 << (tag & 63)
}

func (ht *hashTable) testTag(h uint64) bool {
	tag := h >> 48
	return ht.tags[tag>>6]>>(tag&63)&1 == 1
}

// TestTagInt probes the tag filter for a bare integer key — the early-probe
// fast path used inside vectorized scans (Appendix E, Figure 14): one hash,
// one bit test, no bucket access.
func (ht *hashTable) testTagInt(key int64) bool {
	return ht.testTag(hashInt(uint64(key)))
}

// hashInt is a finalized multiplicative hash (splitmix64 finalizer); it
// lives in the simd package so the vectorized batch kernels agree with the
// scalar hash table and its tag filter.
func hashInt(x uint64) uint64 { return simd.Mix64(x) }

// hashBytes hashes an encoded key. Single 8-byte keys (the common integer
// join key) take the finalizer fast path so that testTagInt agrees with the
// general path.
func hashBytes(b []byte) uint64 {
	if len(b) == 8 {
		return hashInt(binary.LittleEndian.Uint64(b))
	}
	var h uint64 = 14695981039346656037 // FNV-64 offset basis
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 1099511628211
		h = bits.RotateLeft64(h, 23)
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return hashInt(h)
}

// floatKeyBits canonicalizes -0.0 to +0.0 so equal floats hash equally.
func floatKeyBits(f float64) uint64 {
	if f == 0 {
		f = 0
	}
	return math.Float64bits(f)
}
