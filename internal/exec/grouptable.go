package exec

// groupTable is the aggregator's cache-conscious group index: an
// open-addressing table with linear probing over two parallel flat arrays
// (combined group-key hash, group id), replacing the Go maps the batch
// path previously probed per row. Power-of-two capacity keeps the slot
// computation a mask; the parallel-array layout touches 12 bytes per probe
// step instead of a map bucket, and the hot probe loop allocates nothing
// and calls nothing (see assignGroups).
//
// Collision policy matches the old map+overflow design: a slot hit counts
// only if the stored hash equals the probe hash AND the caller verifies the
// stored key against the row (verifyRow), so hash collisions can
// never merge distinct groups — equal-hash distinct keys simply occupy
// later slots in the probe chain.
type groupTable struct {
	hashes []uint64
	slots  []uint32 // gid+1; 0 marks an empty slot
	mask   uint64
	used   int
	// displaced counts insert-probe steps past an occupied slot — the
	// table's collision telemetry, surfaced as the aggregator's
	// "overflow groups" profile counter.
	displaced int
}

// groupTableMinSize is the initial slot count; most aggregations (a few
// groups) never grow past it. 64 slots = one KB of hashes + slots.
const groupTableMinSize = 64

// ensure allocates the initial slot arrays, so probe loops can assume
// non-nil tables (an empty table then simply misses every probe).
func (t *groupTable) ensure() {
	if t.slots == nil {
		t.hashes = make([]uint64, groupTableMinSize)
		t.slots = make([]uint32, groupTableMinSize)
		t.mask = groupTableMinSize - 1
	}
}

// insert registers gid under the combined key hash h. Called once per new
// group — never per row — so it may allocate (first use, growth).
func (t *groupTable) insert(h uint64, gid uint32) {
	t.ensure()
	if (t.used+1)*4 >= len(t.slots)*3 {
		t.grow()
	}
	i := h & t.mask
	for t.slots[i] != 0 {
		i = (i + 1) & t.mask
		t.displaced++
	}
	t.hashes[i] = h
	t.slots[i] = gid + 1
	t.used++
}

// grow doubles the table and rehashes every occupied slot. Out of line so
// the allocation cost is attributed here, not to insert's caller.
//
//go:noinline
func (t *groupTable) grow() {
	oldHashes, oldSlots := t.hashes, t.slots
	n := len(oldSlots) * 2
	t.hashes = make([]uint64, n)
	t.slots = make([]uint32, n)
	t.mask = uint64(n - 1)
	for j, s := range oldSlots {
		if s == 0 {
			continue
		}
		h := oldHashes[j]
		i := h & t.mask
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.hashes[i] = h
		t.slots[i] = s
	}
}
