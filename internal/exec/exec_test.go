package exec

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"datablocks/internal/blockstore"
	"datablocks/internal/core"
	"datablocks/internal/storage"
	"datablocks/internal/types"
)

var allModes = []ScanMode{ModeJIT, ModeVectorized, ModeVectorizedSARG, ModeVectorizedSARGPSMA}

// ordersRel builds a relation with frozen and hot chunks:
// (okey int, price float, status string nullable, qty int).
func ordersRel(t *testing.T, n, chunkCap int, frozenChunks int) *storage.Relation {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "okey", Kind: types.Int64},
		types.Column{Name: "price", Kind: types.Float64},
		types.Column{Name: "status", Kind: types.String, Nullable: true},
		types.Column{Name: "qty", Kind: types.Int64},
	)
	rel := storage.NewRelation(schema, chunkCap)
	r := rand.New(rand.NewSource(31))
	statuses := []string{"open", "paid", "shipped", "returned"}
	cols := []core.ColumnData{
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Float64, Floats: make([]float64, n)},
		{Kind: types.String, Strs: make([]string, n), Nulls: make([]bool, n)},
		{Kind: types.Int64, Ints: make([]int64, n)},
	}
	for i := 0; i < n; i++ {
		cols[0].Ints[i] = int64(i)
		cols[1].Floats[i] = float64(r.Intn(100000)) / 100
		cols[2].Strs[i] = statuses[r.Intn(len(statuses))]
		cols[2].Nulls[i] = r.Intn(10) == 0
		cols[3].Ints[i] = int64(r.Intn(50))
	}
	if err := rel.BulkAppend(cols, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frozenChunks && i < rel.NumChunks(); i++ {
		if err := rel.FreezeChunk(i, core.FreezeOptions{SortBy: -1}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// sortedRows renders a result to sorted strings for order-insensitive
// comparison.
func sortedRows(r *Result) []string {
	rows := strings.Split(strings.TrimRight(r.String(), "\n"), "\n")
	sort.Strings(rows)
	return rows
}

// requireApproxResult compares results row-wise after sorting, allowing
// relative float error (parallel aggregation changes summation order).
func requireApproxResult(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shapes differ", name)
	}
	keys := make([]OrderKey, a.NumCols())
	for i := range keys {
		keys[i] = OrderKey{Col: i}
	}
	a.SortBy(keys, 0)
	b.SortBy(keys, 0)
	for i := 0; i < a.NumRows(); i++ {
		for c := 0; c < a.NumCols(); c++ {
			va, vb := a.Value(c, i), b.Value(c, i)
			if va.Kind() == types.Float64 && !va.IsNull() && !vb.IsNull() {
				if !approxEq(va.Float(), vb.Float()) {
					t.Fatalf("%s: cell (%d,%d): %v vs %v", name, i, c, va, vb)
				}
				continue
			}
			if !va.Equal(vb) {
				t.Fatalf("%s: cell (%d,%d): %v vs %v", name, i, c, va, vb)
			}
		}
	}
}

func requireSameResult(t *testing.T, name string, a, b *Result) {
	t.Helper()
	ra, rb := sortedRows(a), sortedRows(b)
	if len(ra) != len(rb) {
		t.Fatalf("%s: row counts differ: %d vs %d", name, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s: row %d differs:\n%s\n%s", name, i, ra[i], rb[i])
		}
	}
}

func TestScanModesAgree(t *testing.T) {
	rel := ordersRel(t, 25000, 1<<13, 2) // 2 frozen chunks + hot tail
	mkPlan := func() Node {
		return &ScanNode{
			Rel:  rel,
			Cols: []int{0, 1, 2, 3},
			Preds: []core.Predicate{
				{Col: 0, Op: types.Between, Lo: types.IntValue(1000), Hi: types.IntValue(20000)},
				{Col: 2, Op: types.Eq, Lo: types.StringValue("paid")},
				{Col: 1, Op: types.Lt, Lo: types.FloatValue(400)},
			},
		}
	}
	var ref *Result
	for _, mode := range allModes {
		res, err := Run(mkPlan(), Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.NumRows() == 0 {
			t.Fatalf("%v: empty result", mode)
		}
		if ref == nil {
			ref = res
			continue
		}
		requireSameResult(t, mode.String(), ref, res)
	}
	// Parallel execution returns the same multiset.
	res, err := Run(mkPlan(), Options{Mode: ModeVectorizedSARGPSMA, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "parallel", ref, res)
	// Small vector sizes exercise multi-batch paths.
	res, err = Run(mkPlan(), Options{Mode: ModeVectorizedSARG, VectorSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "vec256", ref, res)
}

func TestScanAgainstNaiveReference(t *testing.T) {
	rel := ordersRel(t, 9000, 1<<12, 1)
	plan := &ScanNode{
		Rel:  rel,
		Cols: []int{0, 3},
		Preds: []core.Predicate{
			{Col: 3, Op: types.Ge, Lo: types.IntValue(25)},
		},
	}
	res, err := Run(plan, Options{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	// Naive reference via point accesses.
	want := 0
	for _, ch := range rel.Chunks() {
		for row := 0; row < ch.Rows(); row++ {
			var qty int64
			if ch.IsFrozen() {
				qty = ch.Block().Int(3, row)
			} else {
				qty = ch.Hot().Ints(3)[row]
			}
			if qty >= 25 {
				want++
			}
		}
	}
	if res.NumRows() != want {
		t.Fatalf("got %d rows, want %d", res.NumRows(), want)
	}
}

func TestAggregation(t *testing.T) {
	rel := ordersRel(t, 20000, 1<<13, 2)
	mkPlan := func() Node {
		return &AggNode{
			Child:   &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}},
			GroupBy: []int{2},
			Aggs: []AggSpec{
				{Func: AggCount},
				{Func: AggSum, Arg: Col(1)},
				{Func: AggAvg, Arg: Col(3)},
				{Func: AggMin, Arg: Col(0)},
				{Func: AggMax, Arg: Col(0)},
			},
		}
	}
	var ref *Result
	for _, mode := range allModes {
		res, err := Run(mkPlan(), Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// 4 statuses + NULL group.
		if res.NumRows() != 5 {
			t.Fatalf("%v: %d groups, want 5", mode, res.NumRows())
		}
		if ref == nil {
			ref = res
			continue
		}
		requireSameResult(t, mode.String(), ref, res)
	}
	// Parallel merge must agree (floats up to summation-order rounding).
	res, err := Run(mkPlan(), Options{Mode: ModeVectorized, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireApproxResult(t, "parallel-agg", ref, res)
	// Counts add up to the relation size.
	total := int64(0)
	for i := 0; i < ref.NumRows(); i++ {
		total += ref.Cols[1].Ints[i]
	}
	if total != int64(rel.NumRows()) {
		t.Fatalf("counts sum to %d, want %d", total, rel.NumRows())
	}
}

func TestMapAndFilterExpressions(t *testing.T) {
	rel := ordersRel(t, 5000, 1<<12, 1)
	// revenue = price * (1 + 0.1), flagged = qty >= 40 ? 1 : 0
	plan := &AggNode{
		Child: &MapNode{
			Child: &FilterNode{
				Child: &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}},
				Cond:  Cmp(types.Ge, Col(3), CInt(10)),
			},
			Exprs: []Expr{
				Mul(Col(1), CFloat(1.1)),
				If{Cond: Cmp(types.Ge, Col(3), CInt(40)), Then: CInt(1), Else: CInt(0)},
			},
		},
		GroupBy: []int{},
		Aggs: []AggSpec{
			{Func: AggSum, Arg: Col(0)},
			{Func: AggSum, Arg: Col(1)},
			{Func: AggCount},
		},
	}
	res, err := Run(plan, Options{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	// Reference computation.
	var wantRev, wantFlag float64
	var wantCount int64
	for _, ch := range rel.Chunks() {
		for row := 0; row < ch.Rows(); row++ {
			var qty int64
			var price float64
			if ch.IsFrozen() {
				qty, price = ch.Block().Int(3, row), ch.Block().Float(1, row)
			} else {
				qty, price = ch.Hot().Ints(3)[row], ch.Hot().Floats(1)[row]
			}
			if qty >= 10 {
				wantRev += price * 1.1
				if qty >= 40 {
					wantFlag++
				}
				wantCount++
			}
		}
	}
	if got := res.Cols[0].Floats[0]; !approxEq(got, wantRev) {
		t.Fatalf("revenue = %g, want %g", got, wantRev)
	}
	if got := res.Cols[1].Floats[0]; got != wantFlag {
		t.Fatalf("flagged = %g, want %g", got, wantFlag)
	}
	if got := res.Cols[2].Ints[0]; got != wantCount {
		t.Fatalf("count = %d, want %d", got, wantCount)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-9*(1+scale)
}

// customersRel: (ckey int, nation string).
func customersRel(t *testing.T, n int) *storage.Relation {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "ckey", Kind: types.Int64},
		types.Column{Name: "nation", Kind: types.String},
	)
	rel := storage.NewRelation(schema, 1<<12)
	nations := []string{"DE", "FR", "US", "JP"}
	cols := []core.ColumnData{
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.String, Strs: make([]string, n)},
	}
	for i := 0; i < n; i++ {
		cols[0].Ints[i] = int64(i)
		cols[1].Strs[i] = nations[i%len(nations)]
	}
	if err := rel.BulkAppend(cols, n); err != nil {
		t.Fatal(err)
	}
	if err := rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestHashJoinInner(t *testing.T) {
	orders := ordersRel(t, 8000, 1<<12, 2)
	customers := customersRel(t, 2000)
	// orders join customers on okey % 2000 == ckey is not expressible;
	// instead join on okey (0..7999) vs ckey (0..1999): 2000 matches.
	mkPlan := func(early bool) Node {
		return &AggNode{
			Child: &JoinNode{
				Build:      &ScanNode{Rel: customers, Cols: []int{0, 1}, Preds: []core.Predicate{{Col: 1, Op: types.Eq, Lo: types.StringValue("DE")}}},
				Probe:      &ScanNode{Rel: orders, Cols: []int{0, 1}},
				BuildKeys:  []int{0},
				ProbeKeys:  []int{0},
				Kind:       InnerJoin,
				EarlyProbe: early,
			},
			GroupBy: []int{3}, // nation
			Aggs:    []AggSpec{{Func: AggCount}, {Func: AggSum, Arg: Col(1)}},
		}
	}
	var ref *Result
	for _, mode := range allModes {
		for _, early := range []bool{false, true} {
			res, err := Run(mkPlan(early), Options{Mode: mode})
			if err != nil {
				t.Fatalf("%v early=%v: %v", mode, early, err)
			}
			if res.NumRows() != 1 {
				t.Fatalf("%v early=%v: %d groups, want 1", mode, early, res.NumRows())
			}
			if got := res.Cols[1].Ints[0]; got != 500 {
				t.Fatalf("%v early=%v: count = %d, want 500 (DE customers with ckey<2000)", mode, early, got)
			}
			if ref == nil {
				ref = res
				continue
			}
			requireSameResult(t, fmt.Sprintf("%v early=%v", mode, early), ref, res)
		}
	}
}

func TestSemiAntiJoin(t *testing.T) {
	orders := ordersRel(t, 4000, 1<<12, 1)
	customers := customersRel(t, 1000)
	semi := &AggNode{
		Child: &JoinNode{
			Build:     &ScanNode{Rel: customers, Cols: []int{0}},
			Probe:     &ScanNode{Rel: orders, Cols: []int{0}},
			BuildKeys: []int{0},
			ProbeKeys: []int{0},
			Kind:      SemiJoin,
		},
		Aggs: []AggSpec{{Func: AggCount}},
	}
	res, err := Run(semi, Options{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cols[0].Ints[0]; got != 1000 {
		t.Fatalf("semi count = %d, want 1000", got)
	}
	anti := &AggNode{
		Child: &JoinNode{
			Build:     &ScanNode{Rel: customers, Cols: []int{0}},
			Probe:     &ScanNode{Rel: orders, Cols: []int{0}},
			BuildKeys: []int{0},
			ProbeKeys: []int{0},
			Kind:      AntiJoin,
		},
		Aggs: []AggSpec{{Func: AggCount}},
	}
	res, err = Run(anti, Options{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cols[0].Ints[0]; got != 3000 {
		t.Fatalf("anti count = %d, want 3000", got)
	}
}

func TestOrderByLimit(t *testing.T) {
	rel := ordersRel(t, 3000, 1<<12, 1)
	plan := &OrderByNode{
		Child: &ScanNode{Rel: rel, Cols: []int{0, 1}},
		Keys:  []OrderKey{{Col: 1, Desc: true}, {Col: 0}},
		Limit: 10,
	}
	res, err := Run(plan, Options{Mode: ModeVectorizedSARG})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 10 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	for i := 1; i < res.NumRows(); i++ {
		if res.Cols[1].Floats[i] > res.Cols[1].Floats[i-1] {
			t.Fatalf("not descending at %d", i)
		}
	}
}

func TestCompileStatsScanPathExplosion(t *testing.T) {
	// Figure 5's mechanism: JIT scans compile one code path per distinct
	// storage layout; vectorized scans compile exactly one.
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.Int64},
		types.Column{Name: "b", Kind: types.Int64},
	)
	rel := storage.NewRelation(schema, 256)
	// Chunk 1: small domain (trunc1/trunc1); chunk 2: wide (trunc4);
	// chunk 3: constant (single) — three distinct layouts.
	mk := func(f func(i int) (int64, int64)) {
		cols := []core.ColumnData{
			{Kind: types.Int64, Ints: make([]int64, 256)},
			{Kind: types.Int64, Ints: make([]int64, 256)},
		}
		for i := 0; i < 256; i++ {
			cols[0].Ints[i], cols[1].Ints[i] = f(i)
		}
		if err := rel.BulkAppend(cols, 256); err != nil {
			t.Fatal(err)
		}
	}
	mk(func(i int) (int64, int64) { return int64(i), int64(i) })
	mk(func(i int) (int64, int64) { return int64(i) * 1000000, int64(i) })
	mk(func(i int) (int64, int64) { return 7, 7 })
	if err := rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	plan := func() Node { return &ScanNode{Rel: rel, Cols: []int{0, 1}} }

	var jitStats CompileStats
	if _, err := Run(plan(), Options{Mode: ModeJIT, Stats: &jitStats}); err != nil {
		t.Fatal(err)
	}
	// 3 block layouts + 1 hot path.
	if jitStats.ScanPaths != 4 {
		t.Fatalf("JIT scan paths = %d, want 4", jitStats.ScanPaths)
	}
	var vecStats CompileStats
	if _, err := Run(plan(), Options{Mode: ModeVectorized, Stats: &vecStats}); err != nil {
		t.Fatal(err)
	}
	if vecStats.ScanPaths != 1 {
		t.Fatalf("vectorized scan paths = %d, want 1", vecStats.ScanPaths)
	}
	if jitStats.Closures <= vecStats.Closures {
		t.Fatalf("JIT should compile more closures: %d vs %d", jitStats.Closures, vecStats.Closures)
	}
}

func TestScanWithDeletesAllModes(t *testing.T) {
	rel := ordersRel(t, 6000, 1<<12, 1)
	// Delete every 7th tuple, across frozen and hot chunks.
	deleted := 0
	for i := 0; i < 6000; i += 7 {
		tid := storage.TupleID{Chunk: uint32(i / (1 << 12)), Row: uint32(i % (1 << 12))}
		if rel.Delete(tid) {
			deleted++
		}
	}
	plan := func() Node {
		return &AggNode{
			Child: &ScanNode{Rel: rel, Cols: []int{0}},
			Aggs:  []AggSpec{{Func: AggCount}},
		}
	}
	for _, mode := range allModes {
		res, err := Run(plan(), Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Cols[0].Ints[0]; got != int64(6000-deleted) {
			t.Fatalf("%v: count = %d, want %d", mode, got, 6000-deleted)
		}
	}
}

func TestPredicateColumnMustBeProjected(t *testing.T) {
	rel := ordersRel(t, 100, 0, 0)
	plan := &ScanNode{
		Rel:   rel,
		Cols:  []int{0},
		Preds: []core.Predicate{{Col: 3, Op: types.Ge, Lo: types.IntValue(1)}},
	}
	if _, err := Run(plan, Options{Mode: ModeVectorizedSARG}); err == nil {
		t.Fatal("expected error for unprojected predicate column")
	}
}

// requireExactResult compares rendered results including row order; serial
// executions are deterministic, so the batch and tuple paths must agree
// exactly.
func requireExactResult(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.String() != b.String() {
		t.Fatalf("%s: results differ:\n%s\nvs\n%s", name, a.String(), b.String())
	}
}

// TestBatchSinksMatchTupleExactly drives the batch-at-a-time consume path
// against the tuple-at-a-time fallback over aggregation shapes the TPC-H
// subset does not cover: nullable string group-bys, float and multi-column
// group keys, COUNT(col), MIN/MAX over every kind, and residual filters in
// non-pushdown mode.
func TestBatchSinksMatchTupleExactly(t *testing.T) {
	rel := ordersRel(t, 30000, 1<<13, 2) // frozen blocks + hot tail
	plans := map[string]func() Node{
		"group-by-string": func() Node {
			return &AggNode{
				Child:   &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}},
				GroupBy: []int{2},
				Aggs: []AggSpec{
					{Func: AggCount},
					{Func: AggCountCol, Arg: Col(2)},
					{Func: AggSum, Arg: Col(1)},
					{Func: AggAvg, Arg: Col(3)},
					{Func: AggMin, Arg: Col(0)},
					{Func: AggMax, Arg: Col(1)},
					{Func: AggMin, Arg: Col(2)},
					{Func: AggMax, Arg: Col(2)},
				},
			}
		},
		"group-by-float-and-int": func() Node {
			return &AggNode{
				Child: &FilterNode{
					Child: &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}},
					Cond:  Cmp(types.Lt, Col(1), CFloat(50)),
				},
				GroupBy: []int{1, 3},
				Aggs:    []AggSpec{{Func: AggCount}, {Func: AggMax, Arg: Col(0)}},
			}
		},
		"no-group-by": func() Node {
			return &AggNode{
				Child: &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}, Preds: []core.Predicate{
					{Col: 3, Op: types.Between, Lo: types.IntValue(5), Hi: types.IntValue(40)},
				}},
				Aggs: []AggSpec{
					{Func: AggCount},
					{Func: AggCountCol, Arg: Col(2)},
					{Func: AggSum, Arg: Mul(Col(1), Col(3))},
					{Func: AggAvg, Arg: Col(1)},
					{Func: AggMin, Arg: Col(2)},
					{Func: AggMax, Arg: Col(2)},
					{Func: AggMin, Arg: Col(1)},
					{Func: AggMax, Arg: Col(3)},
				},
			}
		},
		"materialize-with-map": func() Node {
			return &MapNode{
				Child: &FilterNode{
					Child: &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}},
					Cond: Or(
						Cmp(types.Eq, Col(2), CStr("paid")),
						IsNullExpr{E: Col(2)},
					),
				},
				// Duplicate column references: the batch map must not alias
				// one buffer twice (downstream compaction safety).
				Exprs: []Expr{Col(0), Col(0), Add(Col(0), Col(3)), Col(2)},
			}
		},
	}
	for _, mode := range []ScanMode{ModeVectorized, ModeVectorizedSARG, ModeVectorizedSARGPSMA} {
		for name, mk := range plans {
			batch, err := Run(mk(), Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s %v batch: %v", name, mode, err)
			}
			tuple, err := Run(mk(), Options{Mode: mode, TupleAtATime: true})
			if err != nil {
				t.Fatalf("%s %v tuple: %v", name, mode, err)
			}
			if batch.NumRows() == 0 {
				t.Fatalf("%s %v: empty result", name, mode)
			}
			requireExactResult(t, fmt.Sprintf("%s %v", name, mode), tuple, batch)
			small, err := Run(mk(), Options{Mode: mode, VectorSize: 300})
			if err != nil {
				t.Fatal(err)
			}
			requireExactResult(t, fmt.Sprintf("%s %v vec300", name, mode), tuple, small)
		}
	}
}

// TestBatchJoinStringKeysAndNulls exercises the byte-key batch probe path
// (non-integer join keys) including NULL probe keys, for inner, semi and
// anti joins, against the tuple path.
func TestBatchJoinStringKeysAndNulls(t *testing.T) {
	orders := ordersRel(t, 12000, 1<<12, 2)
	// Build side keyed by status strings; "open" appears twice so inner
	// joins emit multiple matches per probe row.
	schema := types.NewSchema(
		types.Column{Name: "status", Kind: types.String},
		types.Column{Name: "weight", Kind: types.Int64},
	)
	build := storage.NewRelation(schema, 1<<12)
	cols := []core.ColumnData{
		{Kind: types.String, Strs: []string{"open", "paid", "open", "missing"}},
		{Kind: types.Int64, Ints: []int64{1, 2, 3, 4}},
	}
	if err := build.BulkAppend(cols, 4); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []JoinKind{InnerJoin, SemiJoin, AntiJoin} {
		mk := func() Node {
			return &JoinNode{
				Build:     &ScanNode{Rel: build, Cols: []int{0, 1}},
				Probe:     &ScanNode{Rel: orders, Cols: []int{0, 2, 3}},
				BuildKeys: []int{0},
				ProbeKeys: []int{1}, // status: nullable string key
				Kind:      kind,
			}
		}
		for _, mode := range []ScanMode{ModeVectorized, ModeVectorizedSARG} {
			batch, err := Run(mk(), Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			tuple, err := Run(mk(), Options{Mode: mode, TupleAtATime: true})
			if err != nil {
				t.Fatal(err)
			}
			if batch.NumRows() == 0 {
				t.Fatalf("join kind %v: empty result", kind)
			}
			requireExactResult(t, fmt.Sprintf("join kind %v %v", kind, mode), tuple, batch)
		}
	}
}

// TestParallelErrorStopsWorkers: when one morsel fails, the pipeline must
// return the error, and the shared cancellation flag must keep the
// remaining workers from draining the whole backlog.
func TestParallelErrorStopsWorkers(t *testing.T) {
	const chunkRows = 1 << 10
	rel := ordersRel(t, 400*chunkRows, chunkRows, 1) // chunk 0 frozen
	// Fault-inject exactly one morsel: evict the frozen chunk to a block
	// store, then destroy the store directory so its reload fails.
	dir := t.TempDir()
	bs, err := blockstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel.SetBlockStore(bs, 0, nil)
	if err = rel.FlushFrozen(); err != nil {
		t.Fatal(err)
	}
	if ok, eerr := rel.EvictChunk(0); eerr != nil || !ok {
		t.Fatalf("evict: ok=%v err=%v", ok, eerr)
	}
	if err = os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	plan := &ScanNode{Rel: rel, Cols: []int{0, 3}}
	var consumed atomic.Int64
	ex := &executor{
		opt:    Options{Mode: ModeVectorizedSARG, Parallelism: 2, VectorSize: core.DefaultVectorSize},
		builds: make(map[*JoinNode]*hashTable),
	}
	err = ex.runPipeline(plan, func(*compiler) (pipeSink, error) {
		return pipeSink{tuple: func(*Tuple) { consumed.Add(1) }}, nil
	})
	if err == nil {
		t.Fatal("expected the broken chunk's reload error to propagate")
	}
	// The failing chunk is first in the queue, so one worker errors almost
	// immediately; the other must stop at the flag instead of draining the
	// remaining ~399 chunks. Allow generous slack for morsels already in
	// flight when the flag flips.
	total := int64(400 * chunkRows)
	if got := consumed.Load(); got > total/2 {
		t.Fatalf("workers consumed %d of %d rows after the error; cancellation is not stopping the backlog", got, total)
	}
}
