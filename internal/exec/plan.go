package exec

import (
	"fmt"

	"datablocks/internal/core"
	"datablocks/internal/storage"
	"datablocks/internal/types"
)

// ScanMode selects the scan flavor, mirroring the configurations of
// Table 2 / Table 4.
type ScanMode int

const (
	// ModeJIT compiles a tuple-at-a-time scan: predicates are evaluated
	// inside the query pipeline. On frozen blocks this "unrolls" one
	// specialized code path per storage-layout combination (§4).
	ModeJIT ScanMode = iota
	// ModeVectorized uses the interpreted vectorized scan without SARG
	// pushdown: all tuples are copied into vectors, predicates run in the
	// pipeline.
	ModeVectorized
	// ModeVectorizedSARG pushes SARGable predicates into the vectorized
	// scan (evaluated on compressed data with SMA block skipping).
	ModeVectorizedSARG
	// ModeVectorizedSARGPSMA additionally narrows scan ranges with the
	// Positional SMA.
	ModeVectorizedSARGPSMA
)

func (m ScanMode) String() string {
	switch m {
	case ModeJIT:
		return "jit"
	case ModeVectorized:
		return "vectorized"
	case ModeVectorizedSARG:
		return "vectorized+sarg"
	case ModeVectorizedSARGPSMA:
		return "vectorized+sarg+psma"
	default:
		return fmt.Sprintf("ScanMode(%d)", int(m))
	}
}

// Node is a physical plan operator.
type Node interface {
	// OutKinds returns the kinds of the operator's output columns.
	OutKinds() ([]types.Kind, error)
}

// ScanNode is the leaf of every pipeline: it scans one relation.
type ScanNode struct {
	Rel *storage.Relation
	// Cols are the relation columns projected into the pipeline, in order.
	Cols []int
	// Preds are SARGable restrictions (column ordinals refer to the
	// relation schema). Depending on the scan mode they are pushed into
	// the scan or compiled into the pipeline. Every predicate column must
	// also appear in Cols so that pipeline evaluation is possible.
	Preds []core.Predicate
	// Filter is an optional residual (non-SARGable) condition over the
	// scan's output tuple; always evaluated in the pipeline.
	Filter Expr
}

// OutKinds implements Node.
func (s *ScanNode) OutKinds() ([]types.Kind, error) {
	kinds := make([]types.Kind, len(s.Cols))
	for i, c := range s.Cols {
		if c < 0 || c >= s.Rel.Schema().NumColumns() {
			return nil, fmt.Errorf("exec: scan column %d out of range", c)
		}
		kinds[i] = s.Rel.Schema().Columns[c].Kind
	}
	return kinds, nil
}

// colOrdinal returns the pipeline slot of relation column rc, or -1.
func (s *ScanNode) colOrdinal(rc int) int {
	for i, c := range s.Cols {
		if c == rc {
			return i
		}
	}
	return -1
}

// FilterNode drops tuples failing Cond.
type FilterNode struct {
	Child Node
	Cond  Expr
}

// OutKinds implements Node.
func (f *FilterNode) OutKinds() ([]types.Kind, error) { return f.Child.OutKinds() }

// MapNode computes a new tuple layout from expressions over the child.
type MapNode struct {
	Child Node
	Exprs []Expr
}

// OutKinds implements Node.
func (m *MapNode) OutKinds() ([]types.Kind, error) {
	childKinds, err := m.Child.OutKinds()
	if err != nil {
		return nil, err
	}
	kinds := make([]types.Kind, len(m.Exprs))
	for i, e := range m.Exprs {
		kinds[i], err = e.resultKind(childKinds)
		if err != nil {
			return nil, err
		}
	}
	return kinds, nil
}

// JoinKind selects the join semantics.
type JoinKind int

const (
	// InnerJoin emits probe ++ build columns per match.
	InnerJoin JoinKind = iota
	// SemiJoin emits the probe tuple when at least one build match exists.
	SemiJoin
	// AntiJoin emits the probe tuple when no build match exists.
	AntiJoin
)

// JoinNode is a hash join: the build side is materialized into a tagged
// hash table (a pipeline breaker), the probe side streams through the
// pipeline.
type JoinNode struct {
	Build, Probe         Node
	BuildKeys, ProbeKeys []int
	Kind                 JoinKind
	// EarlyProbe thins vectorized-scan match vectors against the build
	// side's tag table before unpacking (Appendix E). It requires the
	// probe child to be a ScanNode and a single integer join key.
	EarlyProbe bool
}

// OutKinds implements Node.
func (j *JoinNode) OutKinds() ([]types.Kind, error) {
	probe, err := j.Probe.OutKinds()
	if err != nil {
		return nil, err
	}
	if j.Kind != InnerJoin {
		return probe, nil
	}
	build, err := j.Build.OutKinds()
	if err != nil {
		return nil, err
	}
	out := make([]types.Kind, 0, len(probe)+len(build))
	out = append(out, probe...)
	out = append(out, build...)
	return out, nil
}

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	AggSum AggFunc = iota
	AggCount
	AggCountCol // COUNT(expr): non-null only
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate column.
type AggSpec struct {
	Func AggFunc
	Arg  Expr // nil for AggCount
}

// AggNode is a hash aggregation (a pipeline breaker). The output is the
// group-by columns followed by the aggregates.
type AggNode struct {
	Child   Node
	GroupBy []int
	Aggs    []AggSpec
}

// OutKinds implements Node.
func (a *AggNode) OutKinds() ([]types.Kind, error) {
	childKinds, err := a.Child.OutKinds()
	if err != nil {
		return nil, err
	}
	kinds := make([]types.Kind, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		if g < 0 || g >= len(childKinds) {
			return nil, fmt.Errorf("exec: group-by column %d out of range", g)
		}
		kinds = append(kinds, childKinds[g])
	}
	for _, spec := range a.Aggs {
		switch spec.Func {
		case AggCount, AggCountCol:
			kinds = append(kinds, types.Int64)
		case AggSum, AggAvg:
			kinds = append(kinds, types.Float64)
		default: // Min, Max
			k, err := spec.Arg.resultKind(childKinds)
			if err != nil {
				return nil, err
			}
			kinds = append(kinds, k)
		}
	}
	return kinds, nil
}

// OrderKey is one sort key of an OrderByNode.
type OrderKey struct {
	Col  int
	Desc bool
}

// OrderByNode sorts (and optionally limits) the materialized child result.
type OrderByNode struct {
	Child Node
	Keys  []OrderKey
	Limit int // 0 = no limit
}

// OutKinds implements Node.
func (o *OrderByNode) OutKinds() ([]types.Kind, error) { return o.Child.OutKinds() }
