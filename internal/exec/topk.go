package exec

import (
	"sort"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

// topkSink is the bounded ORDER BY ... LIMIT k sink: instead of
// materializing the whole child result and sorting it, each worker keeps
// at most k rows in a columnar buffer governed by a max-heap over
// (sort keys, arrival sequence). A row enters only when it is strictly
// less than the current heap root in that order — the arrival-sequence
// tiebreak makes the kept set identical to a stable sort followed by
// truncation, so the sink is result-equivalent to Result.SortBy.
//
// The buffer holds limit+1 slots once full: slot `limit` is scratch, the
// staging area for each incoming row, so the heap comparison runs over
// uniform columnar storage with no boxing.
type topkSink struct {
	buf     *Result
	keys    []OrderKey
	limit   int
	seqs    []int64 // arrival sequence per slot (ties → earliest wins)
	heap    []int32 // max-heap of slot indexes; root = current worst row
	next    int64   // rows consumed (also the per-worker orderIn count)
	full    bool
	scratch int32
}

func newTopkSink(kinds []types.Kind, keys []OrderKey, limit int) *topkSink {
	return &topkSink{buf: NewResult(kinds), keys: keys, limit: limit}
}

// less orders slots by (keys, arrival sequence); a strict total order,
// since sequences are distinct.
func (s *topkSink) less(a, b int32) bool {
	if c := s.buf.compareRowsAt(s.keys, int(a), int(b)); c != 0 {
		return c < 0
	}
	return s.seqs[a] < s.seqs[b]
}

func (s *topkSink) siftDown(i int) {
	h := s.heap
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		big := l
		if r := l + 1; r < len(h) && s.less(h[big], h[r]) {
			big = r
		}
		if !s.less(h[i], h[big]) {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// becomeFull switches from the filling phase to bounded operation: append
// the scratch slot and heapify the limit resident rows in O(limit).
func (s *topkSink) becomeFull() {
	s.appendZeroRow()
	s.scratch = int32(s.limit)
	s.heap = make([]int32, s.limit)
	for i := range s.heap {
		s.heap[i] = int32(i)
	}
	for i := s.limit/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	s.full = true
}

func (s *topkSink) appendZeroRow() {
	for i := range s.buf.Cols {
		c := &s.buf.Cols[i]
		c.Nulls = append(c.Nulls, false)
		switch c.Kind {
		case types.Int64:
			c.Ints = append(c.Ints, 0)
		case types.Float64:
			c.Floats = append(c.Floats, 0)
		default:
			c.Strs = append(c.Strs, "")
		}
	}
	s.buf.n++
	s.seqs = append(s.seqs, 0)
}

// offer routes a staged row: during filling it is already resident (slot
// buf.n-1); when full the caller staged it in scratch and offer replaces
// the heap root if the row beats it.
func (s *topkSink) offerScratch() {
	s.seqs[s.scratch] = s.next
	s.next++
	root := s.heap[0]
	if s.less(s.scratch, root) {
		s.buf.copyRow(int(root), int(s.scratch))
		s.seqs[root] = s.seqs[s.scratch]
		s.siftDown(0)
	}
}

// consumeTuple is the tuple-at-a-time sink interface.
func (s *topkSink) consumeTuple(t *Tuple) {
	if !s.full {
		s.buf.appendTuple(t)
		s.seqs = append(s.seqs, s.next)
		s.next++
		if s.buf.n == s.limit {
			s.becomeFull()
		}
		return
	}
	s.buf.writeRowFromTuple(int(s.scratch), t)
	s.offerScratch()
}

// consumeBatch is the batch-at-a-time sink interface.
//
//dbvet:hotpath
func (s *topkSink) consumeBatch(b *core.Batch) {
	r := 0
	for !s.full && r < b.N {
		s.buf.appendRowFromBatch(b, r)
		s.seqs = append(s.seqs, s.next)
		s.next++
		if s.buf.n == s.limit {
			s.becomeFull()
		}
		r++
	}
	for ; r < b.N; r++ {
		s.buf.writeRowFromBatch(int(s.scratch), b, r)
		s.offerScratch()
	}
}

// finalize sorts the resident rows by (keys, arrival) and compacts the
// buffer in place (dropping the scratch slot); the returned result is the
// worker's exact top-k in output order.
func (s *topkSink) finalize() *Result {
	n := s.buf.n
	if s.full {
		n = s.limit
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// (keys, seq) is a strict total order, so a non-stable sort of the
	// slot indexes is deterministic.
	sort.Slice(idx, func(a, b int) bool { return s.less(int32(idx[a]), int32(idx[b])) })
	s.buf.permute(idx)
	return s.buf
}
