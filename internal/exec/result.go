package exec

import (
	"fmt"
	"sort"
	"strings"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

// Result is a materialized, columnar query result.
type Result struct {
	Kinds []types.Kind
	Cols  []ResultCol
	n     int
	// Profile is the query's EXPLAIN-ANALYZE profile, attached when the
	// query ran with Options.Profile; nil otherwise.
	Profile *QueryProfile
}

// ResultCol is one column of a result.
type ResultCol struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
}

// NewResult allocates an empty result with the given column kinds.
func NewResult(kinds []types.Kind) *Result {
	r := &Result{Kinds: kinds, Cols: make([]ResultCol, len(kinds))}
	for i, k := range kinds {
		r.Cols[i].Kind = k
	}
	return r
}

// NumRows returns the row count.
func (r *Result) NumRows() int { return r.n }

// NumCols returns the column count.
func (r *Result) NumCols() int { return len(r.Cols) }

// appendTuple copies the first ncols slots of t as a new row.
func (r *Result) appendTuple(t *Tuple) {
	for i := range r.Cols {
		c := &r.Cols[i]
		c.Nulls = append(c.Nulls, t.Nulls[i])
		switch c.Kind {
		case types.Int64:
			c.Ints = append(c.Ints, t.Ints[i])
		case types.Float64:
			c.Floats = append(c.Floats, t.Floats[i])
		default:
			c.Strs = append(c.Strs, t.Strs[i])
		}
	}
	r.n++
}

// appendBatch bulk-appends a whole batch column-at-a-time — the
// batch-mode materialization sink (no per-row dispatch).
func (r *Result) appendBatch(b *core.Batch) {
	for i := range r.Cols {
		c := &r.Cols[i]
		bc := &b.Cols[i]
		switch c.Kind {
		case types.Int64:
			c.Ints = append(c.Ints, bc.Ints[:b.N]...)
		case types.Float64:
			c.Floats = append(c.Floats, bc.Floats[:b.N]...)
		default:
			c.Strs = append(c.Strs, bc.Strs[:b.N]...)
		}
		if bc.Nulls != nil {
			c.Nulls = append(c.Nulls, bc.Nulls[:b.N]...)
		} else {
			for k := 0; k < b.N; k++ {
				c.Nulls = append(c.Nulls, false)
			}
		}
	}
	r.n += b.N
}

// appendRow adds a dynamic row (used by sinks that finalize states).
func (r *Result) appendRow(row types.Row) {
	for i := range r.Cols {
		c := &r.Cols[i]
		v := row[i]
		c.Nulls = append(c.Nulls, v.IsNull())
		switch c.Kind {
		case types.Int64:
			if v.IsNull() {
				c.Ints = append(c.Ints, 0)
			} else {
				c.Ints = append(c.Ints, v.Int())
			}
		case types.Float64:
			if v.IsNull() {
				c.Floats = append(c.Floats, 0)
			} else {
				c.Floats = append(c.Floats, v.Float())
			}
		default:
			if v.IsNull() {
				c.Strs = append(c.Strs, "")
			} else {
				c.Strs = append(c.Strs, v.Str())
			}
		}
	}
	r.n++
}

// Value returns cell (col, row).
func (r *Result) Value(col, row int) types.Value {
	c := &r.Cols[col]
	if c.Nulls[row] {
		return types.NullValue(c.Kind)
	}
	switch c.Kind {
	case types.Int64:
		return types.IntValue(c.Ints[row])
	case types.Float64:
		return types.FloatValue(c.Floats[row])
	default:
		return types.StringValue(c.Strs[row])
	}
}

// Row materializes row i.
func (r *Result) Row(i int) types.Row {
	row := make(types.Row, len(r.Cols))
	for c := range r.Cols {
		row[c] = r.Value(c, i)
	}
	return row
}

// append concatenates another result with identical kinds (merge of
// per-worker partial results).
func (r *Result) append(o *Result) {
	for i := range r.Cols {
		c, oc := &r.Cols[i], &o.Cols[i]
		c.Ints = append(c.Ints, oc.Ints...)
		c.Floats = append(c.Floats, oc.Floats...)
		c.Strs = append(c.Strs, oc.Strs...)
		c.Nulls = append(c.Nulls, oc.Nulls...)
	}
	r.n += o.n
}

// compareRowsAt compares rows ia and ib under the given order keys (NULLs
// first, Desc negates), returning <0, 0 or >0. Shared by SortBy and the
// top-k sink so both orders agree exactly.
func (r *Result) compareRowsAt(keys []OrderKey, ia, ib int) int {
	for _, k := range keys {
		c := &r.Cols[k.Col]
		na, nb := c.Nulls[ia], c.Nulls[ib]
		var ord int
		switch {
		case na && nb:
			ord = 0
		case na:
			ord = -1
		case nb:
			ord = 1
		default:
			switch c.Kind {
			case types.Int64:
				ord = compareI64(c.Ints[ia], c.Ints[ib])
			case types.Float64:
				ord = compareF64(c.Floats[ia], c.Floats[ib])
			default:
				ord = compareStr(c.Strs[ia], c.Strs[ib])
			}
		}
		if k.Desc {
			ord = -ord
		}
		if ord != 0 {
			return ord
		}
	}
	return 0
}

// SortBy orders rows by the given keys (NULLs first) and truncates to
// limit when positive.
func (r *Result) SortBy(keys []OrderKey, limit int) {
	idx := make([]int, r.n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.compareRowsAt(keys, idx[a], idx[b]) < 0
	})
	if limit > 0 && limit < len(idx) {
		idx = idx[:limit]
	}
	r.permute(idx)
}

// copyRow overwrites row dst with row src, in place.
func (r *Result) copyRow(dst, src int) {
	for i := range r.Cols {
		c := &r.Cols[i]
		c.Nulls[dst] = c.Nulls[src]
		switch c.Kind {
		case types.Int64:
			c.Ints[dst] = c.Ints[src]
		case types.Float64:
			c.Floats[dst] = c.Floats[src]
		default:
			c.Strs[dst] = c.Strs[src]
		}
	}
}

// writeRowFromTuple overwrites row slot with the tuple's leading columns.
func (r *Result) writeRowFromTuple(slot int, t *Tuple) {
	for i := range r.Cols {
		c := &r.Cols[i]
		c.Nulls[slot] = t.Nulls[i]
		switch c.Kind {
		case types.Int64:
			c.Ints[slot] = t.Ints[i]
		case types.Float64:
			c.Floats[slot] = t.Floats[i]
		default:
			c.Strs[slot] = t.Strs[i]
		}
	}
}

// writeRowFromBatch overwrites row slot with batch row br.
func (r *Result) writeRowFromBatch(slot int, b *core.Batch, br int) {
	for i := range r.Cols {
		c := &r.Cols[i]
		bc := &b.Cols[i]
		c.Nulls[slot] = bc.Nulls != nil && bc.Nulls[br]
		switch c.Kind {
		case types.Int64:
			c.Ints[slot] = bc.Ints[br]
		case types.Float64:
			c.Floats[slot] = bc.Floats[br]
		default:
			c.Strs[slot] = bc.Strs[br]
		}
	}
}

// appendRowFromBatch appends batch row br as a new result row.
func (r *Result) appendRowFromBatch(b *core.Batch, br int) {
	for i := range r.Cols {
		c := &r.Cols[i]
		bc := &b.Cols[i]
		c.Nulls = append(c.Nulls, bc.Nulls != nil && bc.Nulls[br])
		switch c.Kind {
		case types.Int64:
			c.Ints = append(c.Ints, bc.Ints[br])
		case types.Float64:
			c.Floats = append(c.Floats, bc.Floats[br])
		default:
			c.Strs = append(c.Strs, bc.Strs[br])
		}
	}
	r.n++
}

func (r *Result) permute(idx []int) {
	for ci := range r.Cols {
		c := &r.Cols[ci]
		nulls := make([]bool, len(idx))
		for i, p := range idx {
			nulls[i] = c.Nulls[p]
		}
		c.Nulls = nulls
		switch c.Kind {
		case types.Int64:
			vals := make([]int64, len(idx))
			for i, p := range idx {
				vals[i] = c.Ints[p]
			}
			c.Ints = vals
		case types.Float64:
			vals := make([]float64, len(idx))
			for i, p := range idx {
				vals[i] = c.Floats[p]
			}
			c.Floats = vals
		default:
			vals := make([]string, len(idx))
			for i, p := range idx {
				vals[i] = c.Strs[p]
			}
			c.Strs = vals
		}
	}
	r.n = len(idx)
}

// String renders the result as a compact table, useful in examples and
// golden tests.
func (r *Result) String() string {
	var sb strings.Builder
	for i := 0; i < r.n; i++ {
		for c := 0; c < len(r.Cols); c++ {
			if c > 0 {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%v", r.Value(c, i))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
