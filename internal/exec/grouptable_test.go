package exec

import "testing"

// TestGroupTableGrowAndProbe drives the table through several doublings
// with adversarial hashes (all landing on the same initial slot) and
// verifies every gid stays reachable by its hash's probe chain.
func TestGroupTableGrowAndProbe(t *testing.T) {
	var tab groupTable
	const n = 10_000
	hash := func(i int) uint64 { return uint64(i)*2654435761 | 1 }
	for i := 0; i < n; i++ {
		tab.insert(hash(i), uint32(i))
	}
	if tab.used != n {
		t.Fatalf("used = %d want %d", tab.used, n)
	}
	if len(tab.slots)&(len(tab.slots)-1) != 0 {
		t.Fatalf("slot count %d not a power of two", len(tab.slots))
	}
	if 4*tab.used >= 3*len(tab.slots) {
		t.Fatalf("load factor too high: %d used in %d slots", tab.used, len(tab.slots))
	}
	lookup := func(h uint64) (uint32, bool) {
		i := h & tab.mask
		for {
			s := tab.slots[i]
			if s == 0 {
				return 0, false
			}
			if tab.hashes[i] == h {
				return s - 1, true
			}
			i = (i + 1) & tab.mask
		}
	}
	for i := 0; i < n; i++ {
		gid, ok := lookup(hash(i))
		if !ok || gid != uint32(i) {
			t.Fatalf("hash(%d): gid=%d ok=%v", i, gid, ok)
		}
	}

	// Colliding hashes must coexist: same hash, distinct gids, both on the
	// probe chain (callers disambiguate by key verification).
	var dup groupTable
	dup.insert(42, 0)
	dup.insert(42, 1)
	dup.insert(42+64, 2) // same initial slot in the 64-slot table
	seen := map[uint32]bool{}
	i := uint64(42) & dup.mask
	for dup.slots[i] != 0 {
		seen[dup.slots[i]-1] = true
		i = (i + 1) & dup.mask
	}
	for gid := uint32(0); gid < 3; gid++ {
		if !seen[gid] {
			t.Fatalf("gid %d not reachable on probe chain", gid)
		}
	}
	if dup.displaced == 0 {
		t.Fatal("displacement telemetry not counting")
	}
}

// TestGroupTableEmptyProbe: a fresh ensure()d table misses every probe
// without panicking.
func TestGroupTableEmptyProbe(t *testing.T) {
	var tab groupTable
	tab.ensure()
	i := uint64(0xdeadbeef) & tab.mask
	if tab.slots[i] != 0 {
		t.Fatal("fresh table not empty")
	}
}
