package exec

import (
	"encoding/binary"
	"math"

	"datablocks/internal/core"
	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// aggregator is a per-worker hash-aggregation sink. Group state is
// columnar — flat accumulator arrays indexed [aggregate][group id] — so the
// batch-at-a-time path can fold whole argument vectors with the simd
// kernels instead of chasing a per-group state struct per row.
//
// Two consume paths feed it:
//
//   - consume (tuple-at-a-time): serializes the group-by values into a
//     byte key and resolves the group id through byteIDs. Used by the JIT
//     pipeline and as the fallback when vectorization is unavailable.
//   - consumeBatch (batch-at-a-time): hashes the group-by columns
//     column-wise into a group-id vector (verified against the stored
//     keys, so hash collisions cannot merge distinct groups), evaluates
//     each aggregate argument as a vector, and scatter-folds it with the
//     simd grouping kernels. Aggregations without GROUP BY skip the hash
//     step entirely and fold straight into group 0 — no map in the loop.
//
// Both paths fold rows in scan order into the same accumulators, so their
// results are bit-identical.
type aggregator struct {
	node     *AggNode
	inKinds  []types.Kind
	argI     []intFn
	argF     []floatFn
	argS     []strFn
	argKinds []types.Kind

	// accIdx maps each aggregate to its canonical accumulator: aggregates
	// whose folds are identical — SUM(x)/AVG(x) (same sum+count),
	// MIN(x)/MAX(x) (one fold maintains both bounds), repeated COUNTs —
	// share one accumulator row, folded once per batch. accIdx[i] == i
	// marks the canonical aggregate; the rest only read at finalize.
	accIdx []int

	// Vectorized argument evaluation slots; populated by vectorize, nil
	// when the aggregator runs tuple-at-a-time only. Aggregates with an
	// identical (argument expression, evaluation kind) share a slot, so
	// e.g. SUM(x) and AVG(x) evaluate x once per batch.
	argSlot []int // per agg; -1 for COUNT(*)
	// cse is the vectorized compiler's common-subexpression state; the
	// batch path bumps its epoch before evaluating each batch's slots.
	cse      *vcse
	slotKind []types.Kind
	slotI    []vecIntFn
	slotF    []vecFloatFn
	slotS    []vecStrFn
	// Per-batch evaluation cache, one entry per slot (slices alias the
	// slot closures' scratch; valid until the next batch).
	slotValsI [][]int64
	slotValsF [][]float64
	slotValsS [][]string
	slotNulls [][]bool

	// Columnar accumulators, indexed [agg][gid].
	counts [][]int64
	sums   [][]float64
	minI   [][]int64
	maxI   [][]int64
	minF   [][]float64
	maxF   [][]float64
	minS   [][]string
	maxS   [][]string
	seen   [][]bool

	keys   []types.Row // group-by values per group id, in first-seen order
	keyEnc []string    // canonical byte encoding per group id (merge identity)

	// Raw group-by key columns, indexed [group-by ordinal][gid]: the batch
	// path verifies hash hits against these flat arrays instead of boxing
	// through types.Value. Floats are stored as their bit patterns.
	gbNull [][]bool
	gbInt  [][]int64
	gbStr  [][]string

	byteIDs map[string]uint32 // canonical key → gid (tuple path, merge)

	// table indexes groups by combined key hash for the batch path: an
	// open-addressing table probed with flat array accesses instead of a
	// map lookup per row. Every newGroup call inserts, whichever path
	// created the group, so batch lookups see tuple- and merge-created
	// groups too.
	table groupTable

	keyBuf  []byte
	gids    []uint32
	hashes  []uint64
	vfy     []gbVerify // per-batch verification views (scratch)
	badRows []uint32   // rows flagged by column-wise verification (scratch)
}

func newAggregator(node *AggNode, inKinds []types.Kind, c *compiler) (*aggregator, error) {
	n := len(node.Aggs)
	a := &aggregator{
		node:     node,
		inKinds:  inKinds,
		argI:     make([]intFn, n),
		argF:     make([]floatFn, n),
		argS:     make([]strFn, n),
		argKinds: make([]types.Kind, n),
		counts:   make([][]int64, n),
		sums:     make([][]float64, n),
		minI:     make([][]int64, n),
		maxI:     make([][]int64, n),
		minF:     make([][]float64, n),
		maxF:     make([][]float64, n),
		minS:     make([][]string, n),
		maxS:     make([][]string, n),
		seen:     make([][]bool, n),
		byteIDs:  make(map[string]uint32),
	}
	// Deduplicate identical folds into canonical accumulators. The fold
	// class captures which accumulator rows a fold writes: SUM and AVG
	// both maintain (sum, count); MIN and MAX both maintain the (min,
	// max, seen) triple. Expr values are comparable structs, so equal
	// argument trees compare equal as map keys.
	type foldKey struct {
		cls int
		arg Expr
	}
	a.accIdx = make([]int, n)
	canon := make(map[foldKey]int, n)
	for i, spec := range node.Aggs {
		var cls int
		switch spec.Func {
		case AggCount:
			cls = 0
		case AggCountCol:
			cls = 1
		case AggSum, AggAvg:
			cls = 2
		default:
			cls = 3
		}
		k := foldKey{cls: cls, arg: spec.Arg}
		if j, ok := canon[k]; ok {
			a.accIdx[i] = j
		} else {
			canon[k] = i
			a.accIdx[i] = i
		}
	}
	for i, spec := range node.Aggs {
		if spec.Func == AggCount {
			continue
		}
		k, err := spec.Arg.resultKind(inKinds)
		if err != nil {
			return nil, err
		}
		a.argKinds[i] = k
		switch spec.Func {
		case AggSum, AggAvg:
			f, err := c.compileFloat(spec.Arg)
			if err != nil {
				return nil, err
			}
			a.argF[i] = f
		default:
			switch k {
			case types.Int64:
				f, err := c.compileInt(spec.Arg)
				if err != nil {
					return nil, err
				}
				a.argI[i] = f
			case types.Float64:
				f, err := c.compileFloat(spec.Arg)
				if err != nil {
					return nil, err
				}
				a.argF[i] = f
			default:
				f, err := c.compileStr(spec.Arg)
				if err != nil {
					return nil, err
				}
				a.argS[i] = f
			}
		}
	}
	return a, nil
}

// vectorize compiles the batch-at-a-time argument evaluators, deduplicating
// identical arguments into shared slots. An error means some aggregate
// argument cannot be vectorized; the caller falls back to the tuple path.
func (a *aggregator) vectorize(stats *CompileStats) error {
	type slotKey struct {
		e    Expr
		kind types.Kind
	}
	// One CSE scope across every slot: repeated subtrees (an argument
	// reused inside a larger expression, e.g. Q1's discounted price
	// inside its charge) evaluate once per batch. evalSlots bumps the
	// epoch, so the scope is exactly one batch.
	vc := &vcompiler{kinds: a.inKinds, stats: stats, cse: &vcse{memo: make(map[Expr]vecFloatFn)}}
	a.argSlot = make([]int, len(a.node.Aggs))
	seen := make(map[slotKey]int)
	for i, spec := range a.node.Aggs {
		if spec.Func == AggCount {
			a.argSlot[i] = -1
			continue
		}
		// Evaluation kind: SUM/AVG fold doubles whatever the argument's
		// kind; the rest evaluate in the argument's own kind.
		kind := a.argKinds[i]
		if spec.Func == AggSum || spec.Func == AggAvg {
			kind = types.Float64
		}
		k := slotKey{e: spec.Arg, kind: kind}
		if id, ok := seen[k]; ok {
			a.argSlot[i] = id
			continue
		}
		id := len(a.slotKind)
		var err error
		var fI vecIntFn
		var fF vecFloatFn
		var fS vecStrFn
		switch kind {
		case types.Int64:
			fI, err = vc.compileInt(spec.Arg)
		case types.Float64:
			fF, err = vc.compileFloat(spec.Arg)
		default:
			fS, err = vc.compileStr(spec.Arg)
		}
		if err != nil {
			a.argSlot = nil
			a.slotKind, a.slotI, a.slotF, a.slotS = nil, nil, nil, nil
			return err
		}
		a.slotKind = append(a.slotKind, kind)
		a.slotI = append(a.slotI, fI)
		a.slotF = append(a.slotF, fF)
		a.slotS = append(a.slotS, fS)
		seen[k] = id
		a.argSlot[i] = id
	}
	n := len(a.slotKind)
	a.slotValsI = make([][]int64, n)
	a.slotValsF = make([][]float64, n)
	a.slotValsS = make([][]string, n)
	a.slotNulls = make([][]bool, n)
	a.cse = vc.cse
	return nil
}

// evalSlots evaluates every distinct aggregate argument once for the batch.
//
//dbvet:hotpath
func (a *aggregator) evalSlots(b *core.Batch) {
	// New batch, new CSE epoch: memoized subtrees recompute on first use.
	a.cse.epoch++
	// Every slot-indexed array is re-sliced to the slot count up front,
	// which proves the loop's indexing in bounds.
	k := len(a.slotKind)
	valsI, valsF, valsS := a.slotValsI[:k], a.slotValsF[:k], a.slotValsS[:k]
	nulls := a.slotNulls[:k]
	fnI, fnF, fnS := a.slotI[:k], a.slotF[:k], a.slotS[:k]
	for s, kind := range a.slotKind {
		switch kind {
		case types.Int64:
			valsI[s], nulls[s] = fnI[s](b)
		case types.Float64:
			valsF[s], nulls[s] = fnF[s](b)
		default:
			valsS[s], nulls[s] = fnS[s](b)
		}
	}
}

func (a *aggregator) numGroups() int { return len(a.keys) }

// overflowGroups reports the group table's insert-displacement count —
// probe steps past an occupied slot — the aggregator's collision telemetry.
func (a *aggregator) overflowGroups() int {
	return a.table.displaced
}

// newGroup appends a zeroed accumulator slot for a fresh group, registers
// its canonical byte key for merging and its raw key cells for batch-path
// verification.
func (a *aggregator) newGroup(key types.Row, enc string) uint32 {
	gid := uint32(len(a.keys))
	a.keys = append(a.keys, key)
	a.keyEnc = append(a.keyEnc, enc)
	a.byteIDs[enc] = gid
	if len(a.node.GroupBy) > 0 {
		a.table.insert(a.groupKeyHash(key), gid)
	}
	if a.gbNull == nil && len(a.node.GroupBy) > 0 {
		ng := len(a.node.GroupBy)
		a.gbNull = make([][]bool, ng)
		a.gbInt = make([][]int64, ng)
		a.gbStr = make([][]string, ng)
	}
	for i, g := range a.node.GroupBy {
		v := key[i]
		a.gbNull[i] = append(a.gbNull[i], v.IsNull())
		switch a.inKinds[g] {
		case types.Int64:
			var raw int64
			if !v.IsNull() {
				raw = v.Int()
			}
			a.gbInt[i] = append(a.gbInt[i], raw)
			a.gbStr[i] = append(a.gbStr[i], "")
		case types.Float64:
			var raw int64
			if !v.IsNull() {
				raw = int64(math.Float64bits(v.Float()))
			}
			a.gbInt[i] = append(a.gbInt[i], raw)
			a.gbStr[i] = append(a.gbStr[i], "")
		default:
			var raw string
			if !v.IsNull() {
				raw = v.Str()
			}
			a.gbInt[i] = append(a.gbInt[i], 0)
			a.gbStr[i] = append(a.gbStr[i], raw)
		}
	}
	for i := range a.node.Aggs {
		a.counts[i] = append(a.counts[i], 0)
		a.sums[i] = append(a.sums[i], 0)
		a.minI[i] = append(a.minI[i], 0)
		a.maxI[i] = append(a.maxI[i], 0)
		a.minF[i] = append(a.minF[i], 0)
		a.maxF[i] = append(a.maxF[i], 0)
		a.minS[i] = append(a.minS[i], "")
		a.maxS[i] = append(a.maxS[i], "")
		a.seen[i] = append(a.seen[i], false)
	}
	return gid
}

// consume folds one tuple into the hash table (tuple-at-a-time path).
func (a *aggregator) consume(t *Tuple) {
	key := a.keyBuf[:0]
	for _, g := range a.node.GroupBy {
		if t.Nulls[g] {
			key = append(key, 0)
			continue
		}
		key = append(key, 1)
		switch a.inKinds[g] {
		case types.Int64:
			key = binary.LittleEndian.AppendUint64(key, uint64(t.Ints[g]))
		case types.Float64:
			key = binary.LittleEndian.AppendUint64(key, math.Float64bits(t.Floats[g]))
		default:
			key = binary.LittleEndian.AppendUint32(key, uint32(len(t.Strs[g])))
			key = append(key, t.Strs[g]...)
		}
	}
	a.keyBuf = key
	gid, ok := a.byteIDs[string(key)]
	if !ok {
		gid = a.newGroup(a.keyFromTuple(t), string(key))
	}
	a.fold(gid, t)
}

// keyFromTuple materializes the group-by values of a tuple.
func (a *aggregator) keyFromTuple(t *Tuple) types.Row {
	key := make(types.Row, len(a.node.GroupBy))
	for i, g := range a.node.GroupBy {
		if t.Nulls[g] {
			key[i] = types.NullValue(a.inKinds[g])
			continue
		}
		switch a.inKinds[g] {
		case types.Int64:
			key[i] = types.IntValue(t.Ints[g])
		case types.Float64:
			key[i] = types.FloatValue(t.Floats[g])
		default:
			key[i] = types.StringValue(t.Strs[g])
		}
	}
	return key
}

func (a *aggregator) fold(gid uint32, t *Tuple) {
	for i, spec := range a.node.Aggs {
		if a.accIdx[i] != i {
			continue // an identical fold already feeds this accumulator
		}
		switch spec.Func {
		case AggCount:
			a.counts[i][gid]++
		case AggCountCol:
			if _, null := a.anyArg(i, t); !null {
				a.counts[i][gid]++
			}
		case AggSum, AggAvg:
			v, null := a.argF[i](t)
			if null {
				continue
			}
			a.sums[i][gid] += v
			a.counts[i][gid]++
		case AggMin, AggMax:
			a.foldMinMax(gid, i, t)
		}
	}
}

// anyArg evaluates the i-th aggregate argument only for its null flag.
func (a *aggregator) anyArg(i int, t *Tuple) (any, bool) {
	switch a.argKinds[i] {
	case types.Int64:
		v, null := a.argI[i](t)
		return v, null
	case types.Float64:
		v, null := a.argF[i](t)
		return v, null
	default:
		v, null := a.argS[i](t)
		return v, null
	}
}

func (a *aggregator) foldMinMax(gid uint32, i int, t *Tuple) {
	switch a.argKinds[i] {
	case types.Int64:
		v, null := a.argI[i](t)
		if null {
			return
		}
		if !a.seen[i][gid] {
			a.minI[i][gid], a.maxI[i][gid] = v, v
		} else {
			if v < a.minI[i][gid] {
				a.minI[i][gid] = v
			}
			if v > a.maxI[i][gid] {
				a.maxI[i][gid] = v
			}
		}
	case types.Float64:
		v, null := a.argF[i](t)
		if null {
			return
		}
		if !a.seen[i][gid] {
			a.minF[i][gid], a.maxF[i][gid] = v, v
		} else {
			if v < a.minF[i][gid] {
				a.minF[i][gid] = v
			}
			if v > a.maxF[i][gid] {
				a.maxF[i][gid] = v
			}
		}
	default:
		v, null := a.argS[i](t)
		if null {
			return
		}
		if !a.seen[i][gid] {
			a.minS[i][gid], a.maxS[i][gid] = v, v
		} else {
			if v < a.minS[i][gid] {
				a.minS[i][gid] = v
			}
			if v > a.maxS[i][gid] {
				a.maxS[i][gid] = v
			}
		}
	}
	a.seen[i][gid] = true
}

// nullKeyHash is the hash contribution of a NULL group-by cell.
const nullKeyHash = 0x9e3779b97f4a7c15

// consumeBatch folds a whole batch (batch-at-a-time path).
//
//dbvet:hotpath
func (a *aggregator) consumeBatch(b *core.Batch) {
	if b.N == 0 {
		return
	}
	a.evalSlots(b)
	if len(a.node.GroupBy) == 0 {
		a.foldBatchSingle(b)
		return
	}
	gids := a.assignGroups(b)
	aggs := a.node.Aggs
	argSlot := a.argSlot[:len(aggs)]
	accIdx := a.accIdx[:len(aggs)]
	counts, sums := a.counts[:len(aggs)], a.sums[:len(aggs)]
	for i, spec := range aggs {
		if accIdx[i] != i {
			continue // an identical fold already feeds this accumulator
		}
		slot := argSlot[i]
		switch spec.Func {
		case AggCount:
			simd.GroupCount(counts[i], gids)
		case AggCountCol:
			simd.GroupCountNotNull(counts[i], gids, a.slotNulls[slot])
		case AggSum, AggAvg:
			simd.GroupSumFloat64(sums[i], counts[i], gids, a.slotValsF[slot], a.slotNulls[slot])
		case AggMin, AggMax:
			a.foldBatchMinMax(i, slot, gids)
		}
	}
}

// foldBatchSingle is the no-GROUP-BY fast path: one global group, folded
// column-at-a-time with the sequential simd kernels — no hash table at all.
//
//dbvet:hotpath
func (a *aggregator) foldBatchSingle(b *core.Batch) {
	if len(a.keys) == 0 {
		a.ensureGlobalGroup()
	}
	n := b.N
	// Aggregate-indexed accesses are proven by re-slicing every
	// accumulator table to the aggregate count; the row-0 accesses into
	// each accumulator row stay checked (run-time group count, see
	// lint-budget.json).
	aggs := a.node.Aggs
	argSlot := a.argSlot[:len(aggs)]
	accIdx := a.accIdx[:len(aggs)]
	argKinds := a.argKinds[:len(aggs)]
	counts, sums, seen := a.counts[:len(aggs)], a.sums[:len(aggs)], a.seen[:len(aggs)]
	minI, maxI := a.minI[:len(aggs)], a.maxI[:len(aggs)]
	minF, maxF := a.minF[:len(aggs)], a.maxF[:len(aggs)]
	minS, maxS := a.minS[:len(aggs)], a.maxS[:len(aggs)]
	for i, spec := range aggs {
		if accIdx[i] != i {
			continue // an identical fold already feeds this accumulator
		}
		slot := argSlot[i]
		switch spec.Func {
		case AggCount:
			counts[i][0] += int64(n)
		case AggCountCol:
			counts[i][0] += simd.CountNotNull(n, a.slotNulls[slot])
		case AggSum, AggAvg:
			s, cnt := simd.SumFloat64(sums[i][0], a.slotValsF[slot], a.slotNulls[slot])
			sums[i][0] = s
			counts[i][0] += cnt
		case AggMin, AggMax:
			switch argKinds[i] {
			case types.Int64:
				mn, mx, any := simd.MinMaxInt64(a.slotValsI[slot], a.slotNulls[slot])
				if !any {
					continue
				}
				if !seen[i][0] {
					minI[i][0], maxI[i][0], seen[i][0] = mn, mx, true
					continue
				}
				if mn < minI[i][0] {
					minI[i][0] = mn
				}
				if mx > maxI[i][0] {
					maxI[i][0] = mx
				}
			case types.Float64:
				mn, mx, any := simd.MinMaxFloat64(a.slotValsF[slot], a.slotNulls[slot])
				if !any {
					continue
				}
				if !seen[i][0] {
					minF[i][0], maxF[i][0], seen[i][0] = mn, mx, true
					continue
				}
				if mn < minF[i][0] {
					minF[i][0] = mn
				}
				if mx > maxF[i][0] {
					maxF[i][0] = mx
				}
			default:
				vals := a.slotValsS[slot][:n]
				nulls := a.slotNulls[slot]
				if nulls != nil {
					nulls = nulls[:n]
				}
				for r, v := range vals {
					if nulls != nil && nulls[r] {
						continue
					}
					if !seen[i][0] {
						minS[i][0], maxS[i][0], seen[i][0] = v, v, true
						continue
					}
					if v < minS[i][0] {
						minS[i][0] = v
					}
					if v > maxS[i][0] {
						maxS[i][0] = v
					}
				}
			}
		}
	}
}

// ensureGlobalGroup registers group 0 for the no-GROUP-BY path. Kept
// out of line so its once-per-aggregator key allocation is attributed
// here, not to the hot fold loop that calls it.
//
//go:noinline
func (a *aggregator) ensureGlobalGroup() {
	a.newGroup(types.Row{}, "")
}

//dbvet:hotpath
func (a *aggregator) foldBatchMinMax(i, slot int, gids []uint32) {
	switch a.argKinds[i] {
	case types.Int64:
		simd.GroupMinMaxInt64(a.minI[i], a.maxI[i], a.seen[i], gids, a.slotValsI[slot], a.slotNulls[slot])
	case types.Float64:
		simd.GroupMinMaxFloat64(a.minF[i], a.maxF[i], a.seen[i], gids, a.slotValsF[slot], a.slotNulls[slot])
	default:
		vals := a.slotValsS[slot][:len(gids)]
		nulls := a.slotNulls[slot]
		if nulls != nil {
			nulls = nulls[:len(gids)]
		}
		mins, maxs, seen := a.minS[i], a.maxS[i], a.seen[i]
		for r, g := range gids {
			if nulls != nil && nulls[r] {
				continue
			}
			v := vals[r]
			if !seen[g] {
				mins[g], maxs[g], seen[g] = v, v, true
				continue
			}
			if v < mins[g] {
				mins[g] = v
			}
			if v > maxs[g] {
				maxs[g] = v
			}
		}
	}
}

// assignGroups computes the group id of every batch row: the group-by
// columns are hashed column-at-a-time into one combined hash per row, and
// each hash resolves to a group id verified against the stored key values
// (so a collision can never merge two distinct groups). New groups are
// created in row order, matching the tuple path's first-seen order.
//
//dbvet:hotpath
func (a *aggregator) assignGroups(b *core.Batch) []uint32 {
	n := b.N
	a.hashes = resizeU64(a.hashes, n)
	a.gids = resizeU32(a.gids, n)
	// hs and gids are re-sliced to n outside the loops, so every [r]
	// access below is proven in bounds; the group-by columns are
	// re-sliced once per column (a per-batch check, not a per-row one).
	hs := a.hashes[:n]
	gids := a.gids[:n]
	for ci, g := range a.node.GroupBy {
		col := &b.Cols[g]
		nulls := col.Nulls
		if nulls != nil {
			nulls = nulls[:n]
		}
		first := ci == 0
		switch a.inKinds[g] {
		case types.Int64:
			ints := col.Ints[:n]
			if nulls == nil {
				// Dense column: the whole hash column runs through the
				// batched Mix64 kernel.
				if first {
					simd.HashInt64(ints, hs)
				} else {
					simd.HashCombineInt64(hs, ints)
				}
				continue
			}
			for r := range hs {
				hv := uint64(nullKeyHash)
				if !nulls[r] {
					hv = simd.Mix64(uint64(ints[r]))
				}
				if first {
					hs[r] = hv
				} else {
					hs[r] = simd.Mix64(hs[r] ^ hv)
				}
			}
		case types.Float64:
			floats := col.Floats[:n]
			if nulls == nil {
				if first {
					simd.HashFloat64(floats, hs)
				} else {
					simd.HashCombineFloat64(hs, floats)
				}
				continue
			}
			for r := range hs {
				hv := uint64(nullKeyHash)
				if !nulls[r] {
					hv = simd.Mix64(math.Float64bits(floats[r]))
				}
				if first {
					hs[r] = hv
				} else {
					hs[r] = simd.Mix64(hs[r] ^ hv)
				}
			}
		default:
			strs := col.Strs[:n]
			for r := range hs {
				hv := uint64(nullKeyHash)
				if nulls == nil || !nulls[r] {
					hv = simd.HashStr(strs[r])
				}
				if first {
					hs[r] = hv
				} else {
					hs[r] = simd.Mix64(hs[r] ^ hv)
				}
			}
		}
	}
	// Probe the open-addressing table: flat array reads, no map, no calls
	// on the hit path. Resolution is two-pass. Pass 1 assigns each row a
	// provisional group by stored hash alone (an empty slot creates the
	// group, in row order). Pass 2 then verifies every assignment
	// column-at-a-time against the stored raw keys — the kind dispatch
	// runs once per column per batch instead of once per row — and the
	// (astronomically rare, 64-bit hash collision) mismatches re-probe
	// with the full per-row verification. A collision can therefore never
	// merge two distinct groups; the only observable effect of deferring
	// its resolution is the colliding group's first-seen position. The
	// verify views and table slices are hoisted out of the row loops and
	// refreshed only after a new group is created (inserting may grow the
	// table and the per-group key arrays).
	table := &a.table
	table.ensure()
	vfy := a.buildVerify(b)
	hashes, slots, mask := table.hashes, table.slots, table.mask
	for r, h := range hs {
		i := h & mask
		var gid uint32
		for {
			s := slots[i]
			if s == 0 {
				gid = a.newGroupFromBatch(b, r)
				vfy = a.refreshVerify(vfy)
				hashes, slots, mask = table.hashes, table.slots, table.mask
				break
			}
			if hashes[i] == h {
				gid = s - 1
				break
			}
			i = (i + 1) & mask
		}
		gids[r] = gid
	}
	bad := a.badRows[:0]
	for c := range vfy {
		v := &vfy[c]
		gNull := v.gNull
		switch v.kind {
		case types.Int64:
			ints, gInt := v.ints[:len(gids)], v.gInt
			if v.nulls == nil {
				for r, g := range gids {
					if gNull[g] || gInt[g] != ints[r] {
						bad = append(bad, uint32(r))
					}
				}
			} else {
				nulls := v.nulls[:len(gids)]
				for r, g := range gids {
					if gNull[g] != nulls[r] || (!nulls[r] && gInt[g] != ints[r]) {
						bad = append(bad, uint32(r))
					}
				}
			}
		case types.Float64:
			floats, gInt := v.floats[:len(gids)], v.gInt
			if v.nulls == nil {
				for r, g := range gids {
					if gNull[g] || gInt[g] != int64(math.Float64bits(floats[r])) {
						bad = append(bad, uint32(r))
					}
				}
			} else {
				nulls := v.nulls[:len(gids)]
				for r, g := range gids {
					if gNull[g] != nulls[r] || (!nulls[r] && gInt[g] != int64(math.Float64bits(floats[r]))) {
						bad = append(bad, uint32(r))
					}
				}
			}
		default:
			strs, gStr := v.strs[:len(gids)], v.gStr
			if v.nulls == nil {
				for r, g := range gids {
					if gNull[g] || gStr[g] != strs[r] {
						bad = append(bad, uint32(r))
					}
				}
			} else {
				nulls := v.nulls[:len(gids)]
				for r, g := range gids {
					if gNull[g] != nulls[r] || (!nulls[r] && gStr[g] != strs[r]) {
						bad = append(bad, uint32(r))
					}
				}
			}
		}
	}
	a.badRows = bad[:0]
	// Re-probe the flagged rows with full verification. A row flagged by
	// more than one column appears more than once; the re-probe is
	// idempotent, so duplicates only repeat the (rare) walk.
	for _, br := range bad {
		r := int(br)
		h := hs[r]
		i := h & mask
		for {
			s := slots[i]
			if s == 0 {
				gids[r] = a.newGroupFromBatch(b, r)
				vfy = a.refreshVerify(vfy)
				hashes, slots, mask = table.hashes, table.slots, table.mask
				break
			}
			if hashes[i] == h && verifyRow(vfy, s-1, r) {
				gids[r] = s - 1
				break
			}
			i = (i + 1) & mask
		}
	}
	return gids
}

// gbVerify is the per-batch flattened view of one group-by column: the
// batch side (this vector's values) and the group side (the stored raw
// keys), gathered once per batch so the per-row hash-hit verification
// indexes flat slices instead of re-deriving [][] views on every row.
type gbVerify struct {
	kind   types.Kind
	nulls  []bool
	ints   []int64
	floats []float64
	strs   []string
	gNull  []bool
	gInt   []int64
	gStr   []string
}

// buildVerify assembles the verification views for this batch.
func (a *aggregator) buildVerify(b *core.Batch) []gbVerify {
	if a.gbNull == nil {
		// No group exists yet; allocate the outer arrays so the views
		// below stay valid (newGroup appends into these same slots).
		ng := len(a.node.GroupBy)
		a.gbNull = make([][]bool, ng)
		a.gbInt = make([][]int64, ng)
		a.gbStr = make([][]string, ng)
	}
	vfy := a.vfy[:0]
	n := b.N
	for i, g := range a.node.GroupBy {
		col := &b.Cols[g]
		vc := gbVerify{
			kind:  a.inKinds[g],
			gNull: a.gbNull[i],
			gInt:  a.gbInt[i],
			gStr:  a.gbStr[i],
		}
		if col.Nulls != nil {
			vc.nulls = col.Nulls[:n]
		}
		switch vc.kind {
		case types.Int64:
			vc.ints = col.Ints[:n]
		case types.Float64:
			vc.floats = col.Floats[:n]
		default:
			vc.strs = col.Strs[:n]
		}
		vfy = append(vfy, vc)
	}
	a.vfy = vfy
	return vfy
}

// refreshVerify re-reads the group-side key arrays after a newGroup append
// may have reallocated them; the batch-side views are unchanged.
func (a *aggregator) refreshVerify(vfy []gbVerify) []gbVerify {
	for i := range vfy {
		vfy[i].gNull = a.gbNull[i]
		vfy[i].gInt = a.gbInt[i]
		vfy[i].gStr = a.gbStr[i]
	}
	return vfy
}

// verifyRow reports whether batch row r's group-by values equal the stored
// raw key of gid. Floats compare by bit pattern, matching the byte-key
// encoding of the tuple path.
//
//dbvet:hotpath
func verifyRow(vfy []gbVerify, gid uint32, r int) bool {
	for k := range vfy {
		c := &vfy[k]
		null := c.nulls != nil && c.nulls[r]
		if c.gNull[gid] != null {
			return false
		}
		if null {
			continue
		}
		switch c.kind {
		case types.Int64:
			if c.gInt[gid] != c.ints[r] {
				return false
			}
		case types.Float64:
			if c.gInt[gid] != int64(math.Float64bits(c.floats[r])) {
				return false
			}
		default:
			if c.gStr[gid] != c.strs[r] {
				return false
			}
		}
	}
	return true
}

// groupKeyHash computes the canonical combined hash of a materialized
// group key — the same value assignGroups computes column-wise per row —
// so groups created by any path (batch, tuple, merge) index identically.
func (a *aggregator) groupKeyHash(key types.Row) uint64 {
	var h uint64
	for i, g := range a.node.GroupBy {
		v := key[i]
		hv := uint64(nullKeyHash)
		if !v.IsNull() {
			switch a.inKinds[g] {
			case types.Int64:
				hv = simd.Mix64(uint64(v.Int()))
			case types.Float64:
				hv = simd.Mix64(math.Float64bits(v.Float()))
			default:
				hv = simd.HashStr(v.Str())
			}
		}
		if i == 0 {
			h = hv
		} else {
			h = simd.Mix64(h ^ hv)
		}
	}
	return h
}

// newGroupFromBatch creates a group from batch row r, registering the same
// canonical byte key the tuple path would have produced.
func (a *aggregator) newGroupFromBatch(b *core.Batch, r int) uint32 {
	key := make(types.Row, len(a.node.GroupBy))
	enc := a.keyBuf[:0]
	for i, g := range a.node.GroupBy {
		col := &b.Cols[g]
		if col.Nulls != nil && col.Nulls[r] {
			key[i] = types.NullValue(a.inKinds[g])
			enc = append(enc, 0)
			continue
		}
		enc = append(enc, 1)
		switch a.inKinds[g] {
		case types.Int64:
			key[i] = types.IntValue(col.Ints[r])
			enc = binary.LittleEndian.AppendUint64(enc, uint64(col.Ints[r]))
		case types.Float64:
			key[i] = types.FloatValue(col.Floats[r])
			enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(col.Floats[r]))
		default:
			key[i] = types.StringValue(col.Strs[r])
			enc = binary.LittleEndian.AppendUint32(enc, uint32(len(col.Strs[r])))
			enc = append(enc, col.Strs[r]...)
		}
	}
	a.keyBuf = enc
	return a.newGroup(key, string(enc))
}

// merge folds another worker's partial groups into this aggregator, in the
// other worker's first-seen group order (re-aggregation across morsels,
// cf. morsel-driven parallelism [20]).
func (a *aggregator) merge(o *aggregator) {
	for g := 0; g < o.numGroups(); g++ {
		og := uint32(g)
		gid, ok := a.byteIDs[o.keyEnc[g]]
		if !ok {
			gid = a.newGroup(o.keys[g], o.keyEnc[g])
		}
		for i, spec := range a.node.Aggs {
			if a.accIdx[i] != i {
				continue // an identical fold already feeds this accumulator
			}
			switch spec.Func {
			case AggCount, AggCountCol:
				a.counts[i][gid] += o.counts[i][og]
			case AggSum, AggAvg:
				a.sums[i][gid] += o.sums[i][og]
				a.counts[i][gid] += o.counts[i][og]
			case AggMin, AggMax:
				if !o.seen[i][og] {
					continue
				}
				if !a.seen[i][gid] {
					a.minI[i][gid], a.maxI[i][gid] = o.minI[i][og], o.maxI[i][og]
					a.minF[i][gid], a.maxF[i][gid] = o.minF[i][og], o.maxF[i][og]
					a.minS[i][gid], a.maxS[i][gid] = o.minS[i][og], o.maxS[i][og]
					a.seen[i][gid] = true
					continue
				}
				if o.minI[i][og] < a.minI[i][gid] {
					a.minI[i][gid] = o.minI[i][og]
				}
				if o.maxI[i][og] > a.maxI[i][gid] {
					a.maxI[i][gid] = o.maxI[i][og]
				}
				if o.minF[i][og] < a.minF[i][gid] {
					a.minF[i][gid] = o.minF[i][og]
				}
				if o.maxF[i][og] > a.maxF[i][gid] {
					a.maxF[i][gid] = o.maxF[i][og]
				}
				if o.minS[i][og] < a.minS[i][gid] {
					a.minS[i][gid] = o.minS[i][og]
				}
				if o.maxS[i][og] > a.maxS[i][gid] {
					a.maxS[i][gid] = o.maxS[i][og]
				}
			}
		}
	}
}

// canonNaN maps every NaN to the canonical quiet NaN, mirroring the simd
// sum kernels: a sum that hits Inf + -Inf manufactures a NaN whose payload
// depends on hardware operand order, which the compiler picks per build —
// canonicalizing at finalize keeps the tuple and batch paths bit-identical
// even for NaN-producing inputs.
func canonNaN(x float64) float64 {
	if x != x {
		return math.NaN()
	}
	return x
}

// finalize renders the aggregation result in first-seen group order.
func (a *aggregator) finalize(outKinds []types.Kind) *Result {
	res := NewResult(outKinds)
	ng := len(a.node.GroupBy)
	row := make(types.Row, len(outKinds))
	for g := 0; g < a.numGroups(); g++ {
		gid := uint32(g)
		copy(row, a.keys[g])
		for i, spec := range a.node.Aggs {
			c := ng + i
			// Read through the canonical accumulator: aggregates with
			// identical folds share one row (SUM/AVG, MIN/MAX pairs).
			ci := a.accIdx[i]
			switch spec.Func {
			case AggCount, AggCountCol:
				row[c] = types.IntValue(a.counts[ci][gid])
			case AggSum:
				// A sum's NULL-ness is its non-null count being zero;
				// the fold kernels don't maintain seen for sums.
				if a.counts[ci][gid] == 0 {
					row[c] = types.NullValue(types.Float64)
				} else {
					row[c] = types.FloatValue(canonNaN(a.sums[ci][gid]))
				}
			case AggAvg:
				if a.counts[ci][gid] == 0 {
					row[c] = types.NullValue(types.Float64)
				} else {
					row[c] = types.FloatValue(canonNaN(a.sums[ci][gid] / float64(a.counts[ci][gid])))
				}
			case AggMin, AggMax:
				if !a.seen[ci][gid] {
					row[c] = types.NullValue(outKinds[c])
					continue
				}
				isMin := spec.Func == AggMin
				switch a.argKinds[i] {
				case types.Int64:
					if isMin {
						row[c] = types.IntValue(a.minI[ci][gid])
					} else {
						row[c] = types.IntValue(a.maxI[ci][gid])
					}
				case types.Float64:
					if isMin {
						row[c] = types.FloatValue(a.minF[ci][gid])
					} else {
						row[c] = types.FloatValue(a.maxF[ci][gid])
					}
				default:
					if isMin {
						row[c] = types.StringValue(a.minS[ci][gid])
					} else {
						row[c] = types.StringValue(a.maxS[ci][gid])
					}
				}
			}
		}
		res.appendRow(row)
	}
	return res
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return growU64(n)
	}
	return s[:n]
}

//go:noinline
func growU64(n int) []uint64 { return make([]uint64, n) }
