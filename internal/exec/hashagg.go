package exec

import (
	"encoding/binary"
	"math"

	"datablocks/internal/types"
)

// aggState accumulates the aggregates of one group.
type aggState struct {
	key    types.Row // group-by values
	counts []int64   // per agg: rows (Count) or non-null inputs
	sums   []float64
	minI   []int64
	maxI   []int64
	minF   []float64
	maxF   []float64
	minS   []string
	maxS   []string
	seen   []bool // per agg: any non-null input (for Min/Max/Avg NULL results)
}

// aggregator is a per-worker hash-aggregation sink.
type aggregator struct {
	node     *AggNode
	inKinds  []types.Kind
	argI     []intFn
	argF     []floatFn
	argS     []strFn
	argKinds []types.Kind
	groups   map[string]*aggState
	order    []*aggState // insertion order for deterministic output
	keyBuf   []byte
}

func newAggregator(node *AggNode, inKinds []types.Kind, c *compiler) (*aggregator, error) {
	a := &aggregator{
		node:     node,
		inKinds:  inKinds,
		groups:   make(map[string]*aggState),
		argI:     make([]intFn, len(node.Aggs)),
		argF:     make([]floatFn, len(node.Aggs)),
		argS:     make([]strFn, len(node.Aggs)),
		argKinds: make([]types.Kind, len(node.Aggs)),
	}
	for i, spec := range node.Aggs {
		if spec.Func == AggCount {
			continue
		}
		k, err := spec.Arg.resultKind(inKinds)
		if err != nil {
			return nil, err
		}
		a.argKinds[i] = k
		switch spec.Func {
		case AggSum, AggAvg:
			f, err := c.compileFloat(spec.Arg)
			if err != nil {
				return nil, err
			}
			a.argF[i] = f
		default:
			switch k {
			case types.Int64:
				f, err := c.compileInt(spec.Arg)
				if err != nil {
					return nil, err
				}
				a.argI[i] = f
			case types.Float64:
				f, err := c.compileFloat(spec.Arg)
				if err != nil {
					return nil, err
				}
				a.argF[i] = f
			default:
				f, err := c.compileStr(spec.Arg)
				if err != nil {
					return nil, err
				}
				a.argS[i] = f
			}
		}
	}
	return a, nil
}

// consume folds one tuple into the hash table.
func (a *aggregator) consume(t *Tuple) {
	key := a.keyBuf[:0]
	for _, g := range a.node.GroupBy {
		if t.Nulls[g] {
			key = append(key, 0)
			continue
		}
		key = append(key, 1)
		switch a.inKinds[g] {
		case types.Int64:
			key = binary.LittleEndian.AppendUint64(key, uint64(t.Ints[g]))
		case types.Float64:
			key = binary.LittleEndian.AppendUint64(key, math.Float64bits(t.Floats[g]))
		default:
			key = binary.LittleEndian.AppendUint32(key, uint32(len(t.Strs[g])))
			key = append(key, t.Strs[g]...)
		}
	}
	a.keyBuf = key
	st, ok := a.groups[string(key)]
	if !ok {
		st = a.newState(t)
		a.groups[string(key)] = st
		a.order = append(a.order, st)
	}
	a.fold(st, t)
}

func (a *aggregator) newState(t *Tuple) *aggState {
	n := len(a.node.Aggs)
	st := &aggState{
		key:    make(types.Row, len(a.node.GroupBy)),
		counts: make([]int64, n),
		sums:   make([]float64, n),
		minI:   make([]int64, n),
		maxI:   make([]int64, n),
		minF:   make([]float64, n),
		maxF:   make([]float64, n),
		minS:   make([]string, n),
		maxS:   make([]string, n),
		seen:   make([]bool, n),
	}
	for i, g := range a.node.GroupBy {
		if t.Nulls[g] {
			st.key[i] = types.NullValue(a.inKinds[g])
			continue
		}
		switch a.inKinds[g] {
		case types.Int64:
			st.key[i] = types.IntValue(t.Ints[g])
		case types.Float64:
			st.key[i] = types.FloatValue(t.Floats[g])
		default:
			st.key[i] = types.StringValue(t.Strs[g])
		}
	}
	return st
}

func (a *aggregator) fold(st *aggState, t *Tuple) {
	for i, spec := range a.node.Aggs {
		switch spec.Func {
		case AggCount:
			st.counts[i]++
		case AggCountCol:
			if _, null := a.anyArg(i, t); !null {
				st.counts[i]++
			}
		case AggSum, AggAvg:
			v, null := a.argF[i](t)
			if null {
				continue
			}
			st.sums[i] += v
			st.counts[i]++
			st.seen[i] = true
		case AggMin, AggMax:
			a.foldMinMax(st, i, spec.Func, t)
		}
	}
}

// anyArg evaluates the i-th aggregate argument only for its null flag.
func (a *aggregator) anyArg(i int, t *Tuple) (any, bool) {
	switch a.argKinds[i] {
	case types.Int64:
		v, null := a.argI[i](t)
		return v, null
	case types.Float64:
		v, null := a.argF[i](t)
		return v, null
	default:
		v, null := a.argS[i](t)
		return v, null
	}
}

func (a *aggregator) foldMinMax(st *aggState, i int, f AggFunc, t *Tuple) {
	switch a.argKinds[i] {
	case types.Int64:
		v, null := a.argI[i](t)
		if null {
			return
		}
		if !st.seen[i] {
			st.minI[i], st.maxI[i] = v, v
		} else {
			if v < st.minI[i] {
				st.minI[i] = v
			}
			if v > st.maxI[i] {
				st.maxI[i] = v
			}
		}
	case types.Float64:
		v, null := a.argF[i](t)
		if null {
			return
		}
		if !st.seen[i] {
			st.minF[i], st.maxF[i] = v, v
		} else {
			if v < st.minF[i] {
				st.minF[i] = v
			}
			if v > st.maxF[i] {
				st.maxF[i] = v
			}
		}
	default:
		v, null := a.argS[i](t)
		if null {
			return
		}
		if !st.seen[i] {
			st.minS[i], st.maxS[i] = v, v
		} else {
			if v < st.minS[i] {
				st.minS[i] = v
			}
			if v > st.maxS[i] {
				st.maxS[i] = v
			}
		}
	}
	st.seen[i] = true
}

// merge folds another worker's partial states into this aggregator
// (re-aggregation across morsels, cf. morsel-driven parallelism [20]).
func (a *aggregator) merge(o *aggregator) {
	for keyStr, ost := range o.groups {
		st, ok := a.groups[keyStr]
		if !ok {
			a.groups[keyStr] = ost
			a.order = append(a.order, ost)
			continue
		}
		for i, spec := range a.node.Aggs {
			switch spec.Func {
			case AggCount, AggCountCol:
				st.counts[i] += ost.counts[i]
			case AggSum, AggAvg:
				st.sums[i] += ost.sums[i]
				st.counts[i] += ost.counts[i]
				st.seen[i] = st.seen[i] || ost.seen[i]
			case AggMin, AggMax:
				if !ost.seen[i] {
					continue
				}
				if !st.seen[i] {
					st.minI[i], st.maxI[i] = ost.minI[i], ost.maxI[i]
					st.minF[i], st.maxF[i] = ost.minF[i], ost.maxF[i]
					st.minS[i], st.maxS[i] = ost.minS[i], ost.maxS[i]
					st.seen[i] = true
					continue
				}
				if ost.minI[i] < st.minI[i] {
					st.minI[i] = ost.minI[i]
				}
				if ost.maxI[i] > st.maxI[i] {
					st.maxI[i] = ost.maxI[i]
				}
				if ost.minF[i] < st.minF[i] {
					st.minF[i] = ost.minF[i]
				}
				if ost.maxF[i] > st.maxF[i] {
					st.maxF[i] = ost.maxF[i]
				}
				if ost.minS[i] < st.minS[i] {
					st.minS[i] = ost.minS[i]
				}
				if ost.maxS[i] > st.maxS[i] {
					st.maxS[i] = ost.maxS[i]
				}
			}
		}
	}
}

// finalize renders the aggregation result.
func (a *aggregator) finalize(outKinds []types.Kind) *Result {
	res := NewResult(outKinds)
	ng := len(a.node.GroupBy)
	row := make(types.Row, len(outKinds))
	for _, st := range a.order {
		copy(row, st.key)
		for i, spec := range a.node.Aggs {
			c := ng + i
			switch spec.Func {
			case AggCount, AggCountCol:
				row[c] = types.IntValue(st.counts[i])
			case AggSum:
				if !st.seen[i] {
					row[c] = types.NullValue(types.Float64)
				} else {
					row[c] = types.FloatValue(st.sums[i])
				}
			case AggAvg:
				if st.counts[i] == 0 {
					row[c] = types.NullValue(types.Float64)
				} else {
					row[c] = types.FloatValue(st.sums[i] / float64(st.counts[i]))
				}
			case AggMin, AggMax:
				if !st.seen[i] {
					row[c] = types.NullValue(outKinds[c])
					continue
				}
				isMin := spec.Func == AggMin
				switch a.argKinds[i] {
				case types.Int64:
					if isMin {
						row[c] = types.IntValue(st.minI[i])
					} else {
						row[c] = types.IntValue(st.maxI[i])
					}
				case types.Float64:
					if isMin {
						row[c] = types.FloatValue(st.minF[i])
					} else {
						row[c] = types.FloatValue(st.maxF[i])
					}
				default:
					if isMin {
						row[c] = types.StringValue(st.minS[i])
					} else {
						row[c] = types.StringValue(st.maxS[i])
					}
				}
			}
		}
		res.appendRow(row)
	}
	return res
}
