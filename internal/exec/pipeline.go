package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datablocks/internal/core"
	"datablocks/internal/storage"
	"datablocks/internal/types"
)

// Options configures query execution.
type Options struct {
	// Mode selects the scan flavor (Table 2 configurations).
	Mode ScanMode
	// VectorSize is the number of records fetched per vectorized-scan
	// invocation (Appendix A); 0 selects the 8192 default.
	VectorSize int
	// Parallelism is the number of morsel workers; <=1 runs serially.
	// Each worker compiles its own consumer chain and drives whole chunks
	// (morsels); partial sink states are merged when all workers finish.
	Parallelism int
	// TupleAtATime forces the tuple-at-a-time consume path even in
	// vectorized modes, disabling the batch sinks. Used by equivalence
	// tests and benchmarks to isolate the batch pipeline's contribution;
	// JIT mode is always tuple-at-a-time regardless.
	TupleAtATime bool
	// Stats, when non-nil, receives code-generation counters.
	Stats *CompileStats
	// Profile collects an EXPLAIN-ANALYZE style QueryProfile on the
	// Result. Profiling counters live in per-worker shards merged after
	// the morsel workers join, so the scan kernels stay allocation- and
	// contention-free; still, the per-edge wrappers cost a little, so
	// profiling is opt-in per query.
	Profile bool
}

// Run executes the plan and materializes its result.
func Run(n Node, opt Options) (*Result, error) {
	if opt.VectorSize <= 0 {
		opt.VectorSize = core.DefaultVectorSize
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = 1
	}
	ex := &executor{opt: opt, builds: make(map[*JoinNode]*hashTable)}
	if opt.Profile {
		// Plans whose shape the profiler cannot map run unprofiled rather
		// than failing.
		ex.prof, _ = newProfiler(n, opt)
	}
	res, err := ex.run(n)
	if err != nil {
		return nil, err
	}
	if ex.prof != nil {
		res.Profile = ex.prof.finish(uint64(res.NumRows()))
	}
	return res, nil
}

type executor struct {
	opt         Options
	builds      map[*JoinNode]*hashTable
	compileOnly bool
	// prof, when non-nil, collects the QueryProfile for the root pipeline.
	// Join build sides run with prof temporarily cleared: the profile
	// describes the probe spine, builds appear as BuildRows on their join.
	prof *profiler
}

// profIdx maps a spine node to its operator slot, -1 when unprofiled.
func (ex *executor) profIdx(n Node) int {
	if ex.prof == nil {
		return -1
	}
	return ex.prof.opIndex(n)
}

// CompileOnly performs all code generation for the plan — pipeline
// closures and the per-storage-layout scan paths — without scanning any
// data. It isolates the compile-time cost that Figure 5 plots. Join build
// sides, being pipeline breakers, would require execution and are not
// permitted here.
func CompileOnly(n Node, opt Options) (CompileStats, error) {
	var stats CompileStats
	if opt.Stats == nil {
		opt.Stats = &stats
	}
	if opt.VectorSize <= 0 {
		opt.VectorSize = core.DefaultVectorSize
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = 1
	}
	ex := &executor{opt: opt, builds: make(map[*JoinNode]*hashTable), compileOnly: true}
	if _, err := ex.run(n); err != nil {
		return CompileStats{}, err
	}
	return *opt.Stats, nil
}

func (ex *executor) run(n Node) (*Result, error) {
	switch n := n.(type) {
	case *OrderByNode:
		if n.Limit > 0 && streamableChain(n.Child) {
			return ex.runTopK(n)
		}
		res, err := ex.run(n.Child)
		if err != nil {
			return nil, err
		}
		rowsIn := res.NumRows()
		t0 := time.Now()
		res.SortBy(n.Keys, n.Limit)
		if p := ex.prof; p != nil {
			p.orderIn = uint64(rowsIn)
			p.orderOut = uint64(res.NumRows())
			p.orderTime = time.Since(t0)
		}
		return res, nil
	case *AggNode:
		inKinds, err := n.Child.OutKinds()
		if err != nil {
			return nil, err
		}
		outKinds, err := n.OutKinds()
		if err != nil {
			return nil, err
		}
		var (
			mu   sync.Mutex
			aggs []*aggregator
		)
		err = ex.runPipeline(n.Child, func(c *compiler) (pipeSink, error) {
			a, err := newAggregator(n, inKinds, &compiler{kinds: inKinds, stats: c.stats})
			if err != nil {
				return pipeSink{}, err
			}
			mu.Lock()
			aggs = append(aggs, a)
			mu.Unlock()
			s := pipeSink{tuple: a.consume}
			if ex.batchMode() {
				// An unvectorizable aggregate argument falls back to the
				// tuple chain; the aggregator still works either way.
				if err := a.vectorize(c.stats); err == nil {
					s.batch = a.consumeBatch
				} else if ex.prof != nil {
					ex.prof.setFallback("aggregate not vectorizable: " + err.Error())
				}
			}
			return s, nil
		})
		if err != nil {
			return nil, err
		}
		if p := ex.prof; p != nil {
			// Overflow-map occupancy is per worker state; sum it before the
			// merge collapses the partials.
			var spilled uint64
			for _, a := range aggs {
				spilled += uint64(a.overflowGroups())
			}
			p.spilled = spilled
		}
		root := aggs[0]
		for _, a := range aggs[1:] {
			root.merge(a)
		}
		if p := ex.prof; p != nil {
			p.groups = uint64(root.numGroups())
		}
		return root.finalize(outKinds), nil
	default:
		outKinds, err := n.OutKinds()
		if err != nil {
			return nil, err
		}
		var (
			mu      sync.Mutex
			results []*Result
		)
		err = ex.runPipeline(n, func(*compiler) (pipeSink, error) {
			res := NewResult(outKinds)
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
			return pipeSink{tuple: res.appendTuple, batch: res.appendBatch}, nil
		})
		if err != nil {
			return nil, err
		}
		root := results[0]
		for _, r := range results[1:] {
			root.append(r)
		}
		return root, nil
	}
}

// streamableChain reports whether n is a pure pipeline (scan / filter /
// map / join-probe chain) that runPipeline can drive directly — the
// precondition for the streaming top-k sink. Pipeline breakers
// (aggregation, nested ORDER BY) materialize first and sort after.
func streamableChain(n Node) bool {
	switch n := n.(type) {
	case *ScanNode:
		return true
	case *FilterNode:
		return streamableChain(n.Child)
	case *MapNode:
		return streamableChain(n.Child)
	case *JoinNode:
		// The build side is materialized by prepareBuilds regardless.
		return streamableChain(n.Probe)
	default:
		return false
	}
}

// runTopK executes ORDER BY ... LIMIT k over a streamable child with the
// bounded per-worker top-k sinks: each worker retains at most k rows
// during the scan, so the sort input never materializes. Result order is
// identical to materialize + SortBy (stable, NULLs first).
func (ex *executor) runTopK(n *OrderByNode) (*Result, error) {
	outKinds, err := n.Child.OutKinds()
	if err != nil {
		return nil, err
	}
	var (
		mu    sync.Mutex
		sinks []*topkSink
	)
	err = ex.runPipeline(n.Child, func(*compiler) (pipeSink, error) {
		s := newTopkSink(outKinds, n.Keys, n.Limit)
		mu.Lock()
		sinks = append(sinks, s)
		mu.Unlock()
		return pipeSink{tuple: s.consumeTuple, batch: s.consumeBatch}, nil
	})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	var rowsIn uint64
	for _, s := range sinks {
		rowsIn += uint64(s.next)
	}
	root := sinks[0].finalize()
	if len(sinks) > 1 {
		for _, s := range sinks[1:] {
			// Each worker's top-k is a superset filter of the global
			// top-k: concatenate and re-rank the ≤ workers*k survivors.
			root.append(s.finalize())
		}
		root.SortBy(n.Keys, n.Limit)
	}
	if p := ex.prof; p != nil {
		p.orderIn = rowsIn
		p.orderOut = uint64(root.NumRows())
		p.orderTime = time.Since(t0)
	}
	return root, nil
}

// pipeSink is one worker's terminal consumer: the tuple-at-a-time closure
// always exists; batch is the sink's batch-at-a-time interface, nil when
// the sink (or its compiled expressions) cannot run batch-wise.
type pipeSink struct {
	tuple func(*Tuple)
	batch batchConsumer
}

// batchMode reports whether this execution is allowed to consume
// batch-at-a-time: vectorized scans only, unless explicitly disabled.
func (ex *executor) batchMode() bool {
	return ex.opt.Mode != ModeJIT && !ex.opt.TupleAtATime
}

// runPipeline executes the pipeline rooted at chain: it materializes the
// build sides of all hash joins along the probe spine, compiles one
// consumer chain per worker — the batch-at-a-time chain when every
// operator and the sink support it, the fused tuple-at-a-time chain
// otherwise — and drives the scan over the relation's chunks (morsels).
func (ex *executor) runPipeline(chain Node, sinkFactory func(*compiler) (pipeSink, error)) error {
	scan, err := ex.prepareBuilds(chain)
	if err != nil {
		return err
	}
	// One immutable snapshot drives the whole pipeline: compilation and
	// every worker see the same chunk states even while writers and the
	// background freezer keep mutating the relation.
	chunks := scan.Rel.Snapshot()
	workers := ex.opt.Parallelism
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers < 1 {
		workers = 1
	}
	if p := ex.prof; p != nil && !ex.compileOnly {
		p.totalChunks = uint64(len(chunks))
		if ex.opt.TupleAtATime && ex.opt.Mode != ModeJIT {
			p.setFallback("tuple-at-a-time forced by options")
		}
	}
	drivers := make([]*scanDriver, workers)
	for w := 0; w < workers; w++ {
		c := &compiler{}
		if w == 0 {
			c.stats = ex.opt.Stats
		}
		if ex.prof != nil && !ex.compileOnly {
			c.wp = ex.prof.newWorker()
		}
		sink, err := sinkFactory(c)
		if err != nil {
			return err
		}
		cons, err := ex.compileChain(chain, sink.tuple, c)
		if err != nil {
			return err
		}
		var bcons batchConsumer
		if ex.batchMode() && sink.batch != nil {
			// Any operator or expression the vectorized compiler cannot
			// lower silently falls back to the tuple chain compiled above.
			if bc, berr := ex.compileBatchChain(chain, sink.batch, c); berr == nil {
				bcons = bc
			} else if ex.prof != nil {
				ex.prof.setFallback("batch chain: " + berr.Error())
			}
		}
		d, err := ex.newScanDriver(scan, cons, bcons, c, chunks)
		if err != nil {
			return err
		}
		if p := ex.prof; p != nil && w == 0 {
			if d.bcons != nil {
				p.mu.Lock()
				p.batchPath = true
				p.mu.Unlock()
			} else if bcons != nil {
				// The driver dropped the compiled batch chain: a scan
				// conjunct could not be lowered to a batch mask.
				p.setFallback("scan conjunct not vectorizable")
			}
		}
		// Early probing runs inside vectorized scans only (Appendix E).
		if ex.opt.Mode != ModeJIT {
			if ht, slot := ex.earlyProbeFor(chain); ht != nil {
				d.ep = ht
				d.epRelCol = scan.Cols[slot]
			}
		}
		drivers[w] = d
	}
	if ex.compileOnly {
		return nil
	}
	if workers == 1 {
		for i := range chunks {
			if err := drivers[0].processChunkTimed(&chunks[i]); err != nil {
				return err
			}
		}
		return nil
	}
	work := make(chan *storage.ChunkView, len(chunks))
	for i := range chunks {
		work <- &chunks[i]
	}
	close(work)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	// The first failure flips the shared flag so the surviving workers
	// stop at their next morsel instead of draining the whole channel.
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(d *scanDriver) {
			defer wg.Done()
			for v := range work {
				if failed.Load() {
					return
				}
				if err := d.processChunkTimed(v); err != nil {
					failed.Store(true)
					errCh <- err
					return
				}
			}
		}(drivers[w])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// prepareBuilds materializes the build side of every join on the probe
// spine and returns the driving ScanNode.
func (ex *executor) prepareBuilds(n Node) (*ScanNode, error) {
	switch n := n.(type) {
	case *ScanNode:
		return n, nil
	case *FilterNode:
		return ex.prepareBuilds(n.Child)
	case *MapNode:
		return ex.prepareBuilds(n.Child)
	case *JoinNode:
		if ex.compileOnly {
			return nil, fmt.Errorf("exec: CompileOnly does not support joins (pipeline breakers execute)")
		}
		if _, done := ex.builds[n]; !done {
			// The build side is its own pipeline; profile counters describe
			// the probe spine only, so suspend collection while it runs.
			saved := ex.prof
			ex.prof = nil
			buildRes, err := ex.run(n.Build)
			ex.prof = saved
			if err != nil {
				return nil, err
			}
			ex.builds[n] = buildHashTable(buildRes, n.BuildKeys)
			if ex.prof != nil {
				ex.prof.noteBuild(n, uint64(buildRes.NumRows()))
			}
		}
		return ex.prepareBuilds(n.Probe)
	default:
		return nil, fmt.Errorf("exec: %T cannot appear inside a pipeline", n)
	}
}

// compileChain lowers the operator chain above the scan into a single fused
// consumer closure — the query-pipeline compilation of §4.
func (ex *executor) compileChain(n Node, down func(*Tuple), c *compiler) (func(*Tuple), error) {
	// down consumes n's output: wrapping it here counts n's emitted rows
	// and times everything downstream of n, attributed to n's slot.
	down = c.wp.wrapTuple(ex.profIdx(n), down)
	switch n := n.(type) {
	case *ScanNode:
		return down, nil
	case *FilterNode:
		kinds, err := n.Child.OutKinds()
		if err != nil {
			return nil, err
		}
		cc := &compiler{kinds: kinds, stats: c.stats}
		cond, err := cc.compileBool(n.Cond)
		if err != nil {
			return nil, err
		}
		cc.emit()
		cons := func(t *Tuple) {
			if cond(t) {
				down(t)
			}
		}
		return ex.compileChain(n.Child, cons, c)
	case *MapNode:
		kinds, err := n.Child.OutKinds()
		if err != nil {
			return nil, err
		}
		cc := &compiler{kinds: kinds, stats: c.stats}
		out := NewTuple(len(n.Exprs))
		setters := make([]func(in, out *Tuple), len(n.Exprs))
		for i, e := range n.Exprs {
			k, err := e.resultKind(kinds)
			if err != nil {
				return nil, err
			}
			slot := i
			switch k {
			case types.Int64:
				f, err := cc.compileInt(e)
				if err != nil {
					return nil, err
				}
				setters[i] = func(in, out *Tuple) { out.Ints[slot], out.Nulls[slot] = f(in) }
			case types.Float64:
				f, err := cc.compileFloat(e)
				if err != nil {
					return nil, err
				}
				setters[i] = func(in, out *Tuple) { out.Floats[slot], out.Nulls[slot] = f(in) }
			default:
				f, err := cc.compileStr(e)
				if err != nil {
					return nil, err
				}
				setters[i] = func(in, out *Tuple) { out.Strs[slot], out.Nulls[slot] = f(in) }
			}
			cc.emit()
		}
		cons := func(t *Tuple) {
			for _, set := range setters {
				set(t, out)
			}
			down(out)
		}
		return ex.compileChain(n.Child, cons, c)
	case *JoinNode:
		return ex.compileJoinProbe(n, down, c)
	default:
		return nil, fmt.Errorf("exec: %T cannot appear inside a pipeline", n)
	}
}

func (ex *executor) compileJoinProbe(n *JoinNode, down func(*Tuple), c *compiler) (func(*Tuple), error) {
	ht := ex.builds[n]
	probeKinds, err := n.Probe.OutKinds()
	if err != nil {
		return nil, err
	}
	var keyBuf, scratch []byte
	verify := func(key []byte, row int32) bool {
		ok, grown := ht.verify(key, row, scratch)
		scratch = grown
		return ok
	}
	switch n.Kind {
	case InnerJoin:
		buildKinds, err := n.Build.OutKinds()
		if err != nil {
			return nil, err
		}
		out := NewTuple(len(probeKinds) + len(buildKinds))
		np := len(probeKinds)
		c.emit()
		cons := func(t *Tuple) {
			key := ht.encodeProbeKey(keyBuf[:0], t, n.ProbeKeys)
			if key == nil {
				return
			}
			keyBuf = key
			rows := ht.lookup(key)
			if len(rows) == 0 {
				return
			}
			// Probe columns change only per probe tuple.
			copy(out.Ints[:np], t.Ints[:np])
			copy(out.Floats[:np], t.Floats[:np])
			copy(out.Strs[:np], t.Strs[:np])
			copy(out.Nulls[:np], t.Nulls[:np])
			for _, row := range rows {
				if !verify(key, row) {
					continue
				}
				for bi := range buildKinds {
					col := &ht.build.Cols[bi]
					slot := np + bi
					out.Nulls[slot] = col.Nulls[row]
					switch col.Kind {
					case types.Int64:
						out.Ints[slot] = col.Ints[row]
					case types.Float64:
						out.Floats[slot] = col.Floats[row]
					default:
						out.Strs[slot] = col.Strs[row]
					}
				}
				down(out)
			}
		}
		return ex.compileChain(n.Probe, cons, c)
	default: // SemiJoin, AntiJoin
		wantMatch := n.Kind == SemiJoin
		c.emit()
		cons := func(t *Tuple) {
			key := ht.encodeProbeKey(keyBuf[:0], t, n.ProbeKeys)
			if key == nil {
				if !wantMatch {
					down(t)
				}
				return
			}
			keyBuf = key
			matched := false
			for _, row := range ht.lookup(key) {
				if verify(key, row) {
					matched = true
					break
				}
			}
			if matched == wantMatch {
				down(t)
			}
		}
		return ex.compileChain(n.Probe, cons, c)
	}
}

// earlyProbeFor finds a join directly above the scan with EarlyProbe set
// and a single integer key, returning its hash table and the scan-output
// column holding the key.
func (ex *executor) earlyProbeFor(n Node) (*hashTable, int) {
	switch n := n.(type) {
	case *FilterNode:
		return ex.earlyProbeFor(n.Child)
	case *MapNode:
		return ex.earlyProbeFor(n.Child)
	case *JoinNode:
		if !n.EarlyProbe || len(n.ProbeKeys) != 1 {
			return ex.earlyProbeFor(n.Probe)
		}
		if _, isScan := n.Probe.(*ScanNode); !isScan {
			return ex.earlyProbeFor(n.Probe)
		}
		ht := ex.builds[n]
		if ht.intKey < 0 {
			return nil, -1
		}
		return ht, n.ProbeKeys[0]
	default:
		return nil, -1
	}
}
