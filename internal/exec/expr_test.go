package exec

import (
	"testing"

	"datablocks/internal/types"
)

func testTuple() (*Tuple, []types.Kind) {
	kinds := []types.Kind{types.Int64, types.Float64, types.String, types.Int64}
	t := NewTuple(len(kinds))
	t.Ints[0] = 10
	t.Floats[1] = 2.5
	t.Strs[2] = "PROMO BRASS"
	t.Ints[3] = 0
	t.Nulls[3] = true
	return t, kinds
}

func TestArithmetic(t *testing.T) {
	tup, kinds := testTuple()
	c := &compiler{kinds: kinds}
	// int arithmetic
	f, err := c.compileInt(Add(Col(0), CInt(5)))
	if err != nil {
		t.Fatal(err)
	}
	if v, null := f(tup); v != 15 || null {
		t.Fatalf("10+5 = %d null=%v", v, null)
	}
	// mixed int/float promotes to float
	g, err := c.compileFloat(Mul(Col(0), Col(1)))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g(tup); v != 25 {
		t.Fatalf("10*2.5 = %g", v)
	}
	// division is always float; divide by zero yields NULL
	g, err = c.compileFloat(Div(Col(0), CInt(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, null := g(tup); !null {
		t.Fatal("x/0 should be NULL")
	}
	// NULL propagation
	f, err = c.compileInt(Add(Col(3), CInt(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, null := f(tup); !null {
		t.Fatal("NULL+1 should be NULL")
	}
	// integer division is rejected
	if _, err := c.compileInt(Div(Col(0), CInt(2))); err == nil {
		t.Fatal("int division accepted")
	}
	// arithmetic on strings is rejected
	if _, err := c.compileFloat(Add(Col(2), CInt(1))); err == nil {
		t.Fatal("string arithmetic accepted")
	}
}

func TestComparisons(t *testing.T) {
	tup, kinds := testTuple()
	c := &compiler{kinds: kinds}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Cmp(types.Eq, Col(0), CInt(10)), true},
		{Cmp(types.Ne, Col(0), CInt(10)), false},
		{Cmp(types.Lt, Col(1), CFloat(3)), true},
		{Cmp(types.Ge, Col(1), CFloat(2.5)), true},
		{BetweenE(Col(0), CInt(5), CInt(15)), true},
		{BetweenE(Col(0), CInt(11), CInt(15)), false},
		{Cmp(types.Eq, Col(2), CStr("PROMO BRASS")), true},
		{Cmp(types.Prefix, Col(2), CStr("PROMO")), true},
		{Cmp(types.Prefix, Col(2), CStr("STANDARD")), false},
		{Cmp(types.Lt, Col(2), CStr("Z")), true},
		// comparisons against NULL are false
		{Cmp(types.Eq, Col(3), CInt(0)), false},
		{Cmp(types.Ne, Col(3), CInt(0)), false},
		{IsNullExpr{E: Col(3)}, true},
		{IsNullExpr{E: Col(0)}, false},
		{IsNullExpr{E: Col(0), Not: true}, true},
		// logic
		{And(Cmp(types.Eq, Col(0), CInt(10)), Cmp(types.Gt, Col(1), CFloat(1))), true},
		{Or(Cmp(types.Eq, Col(0), CInt(99)), Cmp(types.Gt, Col(1), CFloat(1))), true},
		{Not(Cmp(types.Eq, Col(0), CInt(10))), false},
	}
	for i, tc := range cases {
		f, err := c.compileBool(tc.e)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := f(tup); got != tc.want {
			t.Fatalf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}

func TestIfExpression(t *testing.T) {
	tup, kinds := testTuple()
	c := &compiler{kinds: kinds}
	e := If{
		Cond: Cmp(types.Prefix, Col(2), CStr("PROMO")),
		Then: Mul(Col(1), CFloat(2)),
		Else: CFloat(0),
	}
	f, err := c.compileFloat(e)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f(tup); v != 5 {
		t.Fatalf("If = %g, want 5", v)
	}
	tup.Strs[2] = "STANDARD"
	if v, _ := f(tup); v != 0 {
		t.Fatalf("If else = %g, want 0", v)
	}
}

func TestCompileErrors(t *testing.T) {
	_, kinds := testTuple()
	c := &compiler{kinds: kinds}
	if _, err := c.compileInt(Col(99)); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := c.compileStr(Col(0)); err == nil {
		t.Fatal("int column as string accepted")
	}
	if _, err := c.compileInt(Col(2)); err == nil {
		t.Fatal("string column as int accepted")
	}
	if _, err := c.compileBool(Compare{Op: types.Eq, L: Col(0), R: Col(2)}); err == nil {
		t.Fatal("cross-kind comparison accepted")
	}
}

func TestCompileStatsCount(t *testing.T) {
	_, kinds := testTuple()
	stats := &CompileStats{}
	c := &compiler{kinds: kinds, stats: stats}
	if _, err := c.compileBool(And(Cmp(types.Eq, Col(0), CInt(1)), Cmp(types.Lt, Col(1), CFloat(2)))); err != nil {
		t.Fatal(err)
	}
	if stats.Closures < 5 {
		t.Fatalf("closures = %d, want >= 5", stats.Closures)
	}
}

func TestBoolFromIntExpr(t *testing.T) {
	tup, kinds := testTuple()
	c := &compiler{kinds: kinds}
	f, err := c.compileBool(Col(0)) // non-zero int is true
	if err != nil {
		t.Fatal(err)
	}
	if !f(tup) {
		t.Fatal("10 should be truthy")
	}
	f, err = c.compileBool(Col(3)) // NULL is false
	if err != nil {
		t.Fatal(err)
	}
	if f(tup) {
		t.Fatal("NULL should be falsy")
	}
}
