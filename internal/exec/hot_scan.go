package exec

import (
	"fmt"

	"datablocks/internal/core"
	"datablocks/internal/simd"
	"datablocks/internal/storage"
	"datablocks/internal/types"
)

// This file implements the interpreted vectorized scan over hot
// uncompressed chunks (Figure 6, middle path): SARGable predicates are
// evaluated on column vectors with the simd kernels, matching tuples are
// copied into a batch, and the batch is pushed tuple-at-a-time into the
// compiled pipeline.

func (d *scanDriver) vecHot(ch *storage.ChunkView) error {
	h := ch.Hot()
	var s *scanShard
	if d.wp != nil {
		s = &d.wp.scan
	}
	// Iterate to the view's watermark: rows appended after the snapshot
	// are not part of the view.
	n := ch.Rows()
	for from := 0; from < n; from += d.vecSize {
		hi := from + d.vecSize
		if hi > n {
			hi = n
		}
		cnt := hi - from
		m := d.matches[:0]
		if d.pushSARG && len(d.scan.Preds) > 0 {
			var err error
			m, err = d.findHot(h, d.scan.Preds[0], from, cnt, m)
			if err != nil {
				return err
			}
			for _, p := range d.scan.Preds[1:] {
				if len(m) == 0 {
					break
				}
				m, err = d.reduceHot(h, p, m)
				if err != nil {
					return err
				}
			}
		} else {
			m = simd.Sequence(m, cnt, uint32(from))
		}
		if s != nil {
			s.vectors.Inc()
			if len(m) == 0 {
				// SARG predicates emptied this vector before visibility.
				s.prunedVectors.Inc()
			}
		}
		if len(m) > 0 {
			// Epoch-aware visibility: drops rows deleted at or before the
			// snapshot cutoff and update versions born after it, reading
			// the shared delete bitmap with atomic loads (zero-copy view).
			m = ch.FilterVisible(m)
		}
		if d.ep != nil && len(m) > 0 {
			m = d.earlyProbeHot(h, m)
		}
		d.matches = m
		if len(m) == 0 {
			continue
		}
		if s != nil {
			s.rowsMatched.Add(uint64(len(m)))
		}
		if d.bcons != nil {
			d.lazyPush(m, func(col int, m []uint32) {
				d.gatherHotCol(h, col, m)
			})
			continue
		}
		d.gatherHot(h, m)
		if s != nil {
			s.unpacks.Add(uint64(len(d.kinds)))
		}
		d.pushBatch()
	}
	return nil
}

// simdOp maps a SARGable operator to its kernel op.
func simdOp(op types.CompareOp) (simd.Op, bool) {
	switch op {
	case types.Eq:
		return simd.OpEq, true
	case types.Ne:
		return simd.OpNe, true
	case types.Lt:
		return simd.OpLt, true
	case types.Le:
		return simd.OpLe, true
	case types.Gt:
		return simd.OpGt, true
	case types.Ge:
		return simd.OpGe, true
	case types.Between:
		return simd.OpBetween, true
	default:
		return 0, false
	}
}

// findHot produces the initial match vector for one predicate over rows
// [from, from+cnt) of a hot chunk.
func (d *scanDriver) findHot(h *storage.HotChunk, p core.Predicate, from, cnt int, m []uint32) ([]uint32, error) {
	base := uint32(from)
	nulls := h.Nulls(p.Col)
	switch p.Op {
	case types.IsNull, types.IsNotNull:
		wantNull := p.Op == types.IsNull
		if nulls == nil {
			if wantNull {
				return m, nil
			}
			return simd.Sequence(m, cnt, base), nil
		}
		m = simd.EnsureCap(m, cnt)
		for i := 0; i < cnt; i++ {
			if nulls[from+i] == wantNull {
				m = append(m, base+uint32(i))
			}
		}
		return m, nil
	}
	kind := d.kinds[d.scan.colOrdinal(p.Col)]
	switch kind {
	case types.Int64:
		op, ok := simdOp(p.Op)
		if !ok {
			return nil, fmt.Errorf("exec: operator %v not valid on integers", p.Op)
		}
		c2 := int64(0)
		if p.Op == types.Between {
			c2 = p.Hi.Int()
		}
		m = simd.FindInt64(h.Ints(p.Col)[from:from+cnt], op, p.Lo.Int(), c2, base, m)
	case types.Float64:
		op, ok := simdOp(p.Op)
		if !ok {
			return nil, fmt.Errorf("exec: operator %v not valid on doubles", p.Op)
		}
		c2 := 0.0
		if p.Op == types.Between {
			c2 = p.Hi.Float()
		}
		m = simd.FindFloat64(h.Floats(p.Col)[from:from+cnt], op, p.Lo.Float(), c2, base, m)
	default:
		eval, err := strPredEval(p)
		if err != nil {
			return nil, err
		}
		col := h.Strs(p.Col)
		m = simd.EnsureCap(m, cnt)
		for i := 0; i < cnt; i++ {
			if eval(col[from+i]) {
				m = append(m, base+uint32(i))
			}
		}
	}
	if nulls != nil && len(m) > 0 {
		m = reduceNotNull(nulls, m)
	}
	return m, nil
}

// reduceHot shrinks an existing match vector by one additional predicate.
func (d *scanDriver) reduceHot(h *storage.HotChunk, p core.Predicate, m []uint32) ([]uint32, error) {
	nulls := h.Nulls(p.Col)
	switch p.Op {
	case types.IsNull, types.IsNotNull:
		wantNull := p.Op == types.IsNull
		if nulls == nil {
			if wantNull {
				return m[:0], nil
			}
			return m, nil
		}
		w := 0
		for _, pos := range m {
			if nulls[pos] == wantNull {
				m[w] = pos
				w++
			}
		}
		return m[:w], nil
	}
	kind := d.kinds[d.scan.colOrdinal(p.Col)]
	switch kind {
	case types.Int64:
		op, ok := simdOp(p.Op)
		if !ok {
			return nil, fmt.Errorf("exec: operator %v not valid on integers", p.Op)
		}
		c2 := int64(0)
		if p.Op == types.Between {
			c2 = p.Hi.Int()
		}
		m = simd.ReduceInt64(h.Ints(p.Col), op, p.Lo.Int(), c2, m)
	case types.Float64:
		op, ok := simdOp(p.Op)
		if !ok {
			return nil, fmt.Errorf("exec: operator %v not valid on doubles", p.Op)
		}
		c2 := 0.0
		if p.Op == types.Between {
			c2 = p.Hi.Float()
		}
		m = simd.ReduceFloat64(h.Floats(p.Col), op, p.Lo.Float(), c2, m)
	default:
		eval, err := strPredEval(p)
		if err != nil {
			return nil, err
		}
		col := h.Strs(p.Col)
		w := 0
		for _, pos := range m {
			if eval(col[pos]) {
				m[w] = pos
				w++
			}
		}
		m = m[:w]
	}
	if nulls != nil && len(m) > 0 {
		m = reduceNotNull(nulls, m)
	}
	return m, nil
}

// strPredEval builds a scalar evaluator for a string predicate (strings on
// hot chunks have no integer codes to vectorize over).
func strPredEval(p core.Predicate) (func(string) bool, error) {
	c := p.Lo.Str()
	switch p.Op {
	case types.Eq:
		return func(s string) bool { return s == c }, nil
	case types.Ne:
		return func(s string) bool { return s != c }, nil
	case types.Lt:
		return func(s string) bool { return s < c }, nil
	case types.Le:
		return func(s string) bool { return s <= c }, nil
	case types.Gt:
		return func(s string) bool { return s > c }, nil
	case types.Ge:
		return func(s string) bool { return s >= c }, nil
	case types.Between:
		hi := p.Hi.Str()
		return func(s string) bool { return s >= c && s <= hi }, nil
	case types.Prefix:
		return func(s string) bool { return len(s) >= len(c) && s[:len(c)] == c }, nil
	default:
		return nil, fmt.Errorf("exec: operator %v not valid on strings", p.Op)
	}
}

// reduceNotNull drops match positions whose value is NULL (value predicates
// never match NULL).
func reduceNotNull(nulls []bool, m []uint32) []uint32 {
	w := 0
	for _, pos := range m {
		if !nulls[pos] {
			m[w] = pos
			w++
		}
	}
	return m[:w]
}

// gatherHot copies the matched rows of the projected columns into the
// driver's batch (the "copying of matches" of Figure 6).
func (d *scanDriver) gatherHot(h *storage.HotChunk, m []uint32) {
	b := &d.batch
	b.N = len(m)
	b.Pos = append(b.Pos[:0], m...)
	for i := range d.scan.Cols {
		d.gatherHotCol(h, i, m)
	}
}

// gatherHotCol copies one projected column's matched rows into the batch.
func (d *scanDriver) gatherHotCol(h *storage.HotChunk, k int, m []uint32) {
	b := &d.batch
	if cap(b.Cols) < len(d.scan.Cols) {
		b.Cols = make([]core.BatchCol, len(d.scan.Cols))
	}
	b.Cols = b.Cols[:len(d.scan.Cols)]
	relCol := d.scan.Cols[k]
	bc := &b.Cols[k]
	bc.Kind = d.kinds[k]
	switch d.kinds[k] {
	case types.Int64:
		if cap(bc.Ints) < len(m) {
			bc.Ints = make([]int64, len(m))
		}
		bc.Ints = bc.Ints[:len(m)]
		col := h.Ints(relCol)
		for j, p := range m {
			bc.Ints[j] = col[p]
		}
	case types.Float64:
		if cap(bc.Floats) < len(m) {
			bc.Floats = make([]float64, len(m))
		}
		bc.Floats = bc.Floats[:len(m)]
		col := h.Floats(relCol)
		for j, p := range m {
			bc.Floats[j] = col[p]
		}
	default:
		if cap(bc.Strs) < len(m) {
			bc.Strs = make([]string, len(m))
		}
		bc.Strs = bc.Strs[:len(m)]
		col := h.Strs(relCol)
		for j, p := range m {
			bc.Strs[j] = col[p]
		}
	}
	if nulls := h.Nulls(relCol); nulls != nil {
		if cap(bc.Nulls) < len(m) {
			bc.Nulls = make([]bool, len(m))
		}
		bc.Nulls = bc.Nulls[:len(m)]
		for j, p := range m {
			bc.Nulls[j] = nulls[p]
		}
	} else {
		bc.Nulls = nil
	}
}
