// Package exec implements the query engine of §4: a data-centric,
// push-based engine whose pipelines are "compiled" into fused
// tuple-at-a-time Go closures (our stand-in for HyPer's LLVM code
// generation), fed either by compiled scans or by interpreted, pre-compiled
// vectorized scans over uncompressed chunks and Data Blocks behind a single
// interface (Figure 6).
//
// The closure-compilation analogy is load-bearing for the reproduction:
// compile time is real work proportional to the number of generated code
// paths, so the Figure 5 explosion (one specialized scan per storage-layout
// combination) and its vectorized-scan remedy are measurable.
package exec

import (
	"fmt"

	"datablocks/internal/types"
)

// Tuple is the pipeline's register file: one slot per pipeline column, in
// the array matching the column's kind. Operators pass tuples through
// compiled closures without intermediate materialization (§4).
type Tuple struct {
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
}

// NewTuple allocates a register file for n columns.
func NewTuple(n int) *Tuple {
	return &Tuple{
		Ints:   make([]int64, n),
		Floats: make([]float64, n),
		Strs:   make([]string, n),
		Nulls:  make([]bool, n),
	}
}

// CompileStats counts the code-generation work of a query: the number of
// closures constructed (the analogue of emitted IR instructions) and the
// number of specialized scan code paths (Figure 5's x-axis).
type CompileStats struct {
	Closures  int
	ScanPaths int
}

// Expr is a scalar expression over pipeline tuples.
type Expr interface {
	resultKind(kinds []types.Kind) (types.Kind, error)
}

// ColRef references pipeline column Idx.
type ColRef struct{ Idx int }

// Const is a literal.
type Const struct{ Val types.Value }

// Binary is an arithmetic expression: Op is one of + - * /.
type Binary struct {
	Op   byte
	L, R Expr
}

// Compare is a comparison yielding a boolean: =, <>, <, <=, >, >=, between
// (R2 as upper bound), like-prefix.
type Compare struct {
	Op   types.CompareOp
	L, R Expr
	R2   Expr // Between upper bound
}

// Logic combines booleans: '&' (and), '|' (or), '!' (not; R unused).
type Logic struct {
	Op   byte
	L, R Expr
}

// IsNullExpr tests a column for NULL (negated when Not).
type IsNullExpr struct {
	E   Expr
	Not bool
}

// If is CASE WHEN Cond THEN Then ELSE Else END.
type If struct {
	Cond, Then, Else Expr
}

// Col returns a column reference.
func Col(i int) Expr { return ColRef{Idx: i} }

// CInt returns an integer literal.
func CInt(v int64) Expr { return Const{Val: types.IntValue(v)} }

// CFloat returns a double literal.
func CFloat(v float64) Expr { return Const{Val: types.FloatValue(v)} }

// CStr returns a string literal.
func CStr(v string) Expr { return Const{Val: types.StringValue(v)} }

// Add, Sub, Mul, Div build arithmetic expressions.
func Add(l, r Expr) Expr { return Binary{Op: '+', L: l, R: r} }
func Sub(l, r Expr) Expr { return Binary{Op: '-', L: l, R: r} }
func Mul(l, r Expr) Expr { return Binary{Op: '*', L: l, R: r} }
func Div(l, r Expr) Expr { return Binary{Op: '/', L: l, R: r} }

// Cmp builds a comparison.
func Cmp(op types.CompareOp, l, r Expr) Expr { return Compare{Op: op, L: l, R: r} }

// BetweenE builds l <= e <= r.
func BetweenE(e, lo, hi Expr) Expr { return Compare{Op: types.Between, L: e, R: lo, R2: hi} }

// And, Or, Not build boolean connectives.
func And(l, r Expr) Expr { return Logic{Op: '&', L: l, R: r} }
func Or(l, r Expr) Expr  { return Logic{Op: '|', L: l, R: r} }
func Not(e Expr) Expr    { return Logic{Op: '!', L: e} }

func (e ColRef) resultKind(kinds []types.Kind) (types.Kind, error) {
	if e.Idx < 0 || e.Idx >= len(kinds) {
		return 0, fmt.Errorf("exec: column %d out of range", e.Idx)
	}
	return kinds[e.Idx], nil
}

func (e Const) resultKind([]types.Kind) (types.Kind, error) { return e.Val.Kind(), nil }

func (e Binary) resultKind(kinds []types.Kind) (types.Kind, error) {
	lk, err := e.L.resultKind(kinds)
	if err != nil {
		return 0, err
	}
	rk, err := e.R.resultKind(kinds)
	if err != nil {
		return 0, err
	}
	if lk == types.String || rk == types.String {
		return 0, fmt.Errorf("exec: arithmetic on strings")
	}
	if e.Op == '/' || lk == types.Float64 || rk == types.Float64 {
		return types.Float64, nil
	}
	return types.Int64, nil
}

// boolKind marks boolean results; reuse Int64 (0/1) as the physical kind.
func (e Compare) resultKind(kinds []types.Kind) (types.Kind, error)    { return types.Int64, nil }
func (e Logic) resultKind(kinds []types.Kind) (types.Kind, error)      { return types.Int64, nil }
func (e IsNullExpr) resultKind(kinds []types.Kind) (types.Kind, error) { return types.Int64, nil }

func (e If) resultKind(kinds []types.Kind) (types.Kind, error) {
	return e.Then.resultKind(kinds)
}

// Typed closure signatures: each returns the value and a null flag.
type (
	intFn   func(t *Tuple) (int64, bool)
	floatFn func(t *Tuple) (float64, bool)
	strFn   func(t *Tuple) (string, bool)
	boolFn  func(t *Tuple) bool // SQL three-valued logic collapsed: NULL ⇒ false
)

// compiler lowers expressions to closures against a fixed tuple layout.
type compiler struct {
	kinds []types.Kind
	stats *CompileStats
	// wp is the worker's profile shard the chain being compiled should
	// report into; nil when the query is not being profiled.
	wp *workerProf
}

func (c *compiler) emit() {
	if c.stats != nil {
		c.stats.Closures++
	}
}

func (c *compiler) compileInt(e Expr) (intFn, error) {
	k, err := e.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if k != types.Int64 {
		return nil, fmt.Errorf("exec: expression is %v, want int", k)
	}
	switch e := e.(type) {
	case ColRef:
		idx := e.Idx
		c.emit()
		return func(t *Tuple) (int64, bool) { return t.Ints[idx], t.Nulls[idx] }, nil
	case Const:
		if e.Val.IsNull() {
			c.emit()
			return func(*Tuple) (int64, bool) { return 0, true }, nil
		}
		v := e.Val.Int()
		c.emit()
		return func(*Tuple) (int64, bool) { return v, false }, nil
	case Binary:
		l, err := c.compileInt(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileInt(e.R)
		if err != nil {
			return nil, err
		}
		c.emit()
		switch e.Op {
		case '+':
			return func(t *Tuple) (int64, bool) {
				a, an := l(t)
				b, bn := r(t)
				return a + b, an || bn
			}, nil
		case '-':
			return func(t *Tuple) (int64, bool) {
				a, an := l(t)
				b, bn := r(t)
				return a - b, an || bn
			}, nil
		case '*':
			return func(t *Tuple) (int64, bool) {
				a, an := l(t)
				b, bn := r(t)
				return a * b, an || bn
			}, nil
		default:
			return nil, fmt.Errorf("exec: integer division unsupported; use Div for doubles")
		}
	case Compare, Logic, IsNullExpr:
		b, err := c.compileBool(e)
		if err != nil {
			return nil, err
		}
		c.emit()
		return func(t *Tuple) (int64, bool) {
			if b(t) {
				return 1, false
			}
			return 0, false
		}, nil
	case If:
		cond, err := c.compileBool(e.Cond)
		if err != nil {
			return nil, err
		}
		th, err := c.compileInt(e.Then)
		if err != nil {
			return nil, err
		}
		el, err := c.compileInt(e.Else)
		if err != nil {
			return nil, err
		}
		c.emit()
		return func(t *Tuple) (int64, bool) {
			if cond(t) {
				return th(t)
			}
			return el(t)
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T as int", e)
}

func (c *compiler) compileFloat(e Expr) (floatFn, error) {
	k, err := e.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if k == types.Int64 {
		f, err := c.compileInt(e)
		if err != nil {
			return nil, err
		}
		c.emit()
		return func(t *Tuple) (float64, bool) {
			v, n := f(t)
			return float64(v), n
		}, nil
	}
	if k != types.Float64 {
		return nil, fmt.Errorf("exec: expression is %v, want float", k)
	}
	switch e := e.(type) {
	case ColRef:
		idx := e.Idx
		c.emit()
		return func(t *Tuple) (float64, bool) { return t.Floats[idx], t.Nulls[idx] }, nil
	case Const:
		if e.Val.IsNull() {
			c.emit()
			return func(*Tuple) (float64, bool) { return 0, true }, nil
		}
		v := e.Val.Float()
		c.emit()
		return func(*Tuple) (float64, bool) { return v, false }, nil
	case Binary:
		l, err := c.compileFloat(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileFloat(e.R)
		if err != nil {
			return nil, err
		}
		c.emit()
		switch e.Op {
		case '+':
			return func(t *Tuple) (float64, bool) {
				a, an := l(t)
				b, bn := r(t)
				return a + b, an || bn
			}, nil
		case '-':
			return func(t *Tuple) (float64, bool) {
				a, an := l(t)
				b, bn := r(t)
				return a - b, an || bn
			}, nil
		case '*':
			return func(t *Tuple) (float64, bool) {
				a, an := l(t)
				b, bn := r(t)
				return a * b, an || bn
			}, nil
		default:
			return func(t *Tuple) (float64, bool) {
				a, an := l(t)
				b, bn := r(t)
				if bn || b == 0 {
					return 0, true
				}
				return a / b, an
			}, nil
		}
	case If:
		cond, err := c.compileBool(e.Cond)
		if err != nil {
			return nil, err
		}
		th, err := c.compileFloat(e.Then)
		if err != nil {
			return nil, err
		}
		el, err := c.compileFloat(e.Else)
		if err != nil {
			return nil, err
		}
		c.emit()
		return func(t *Tuple) (float64, bool) {
			if cond(t) {
				return th(t)
			}
			return el(t)
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T as float", e)
}

func (c *compiler) compileStr(e Expr) (strFn, error) {
	k, err := e.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if k != types.String {
		return nil, fmt.Errorf("exec: expression is %v, want string", k)
	}
	switch e := e.(type) {
	case ColRef:
		idx := e.Idx
		c.emit()
		return func(t *Tuple) (string, bool) { return t.Strs[idx], t.Nulls[idx] }, nil
	case Const:
		if e.Val.IsNull() {
			c.emit()
			return func(*Tuple) (string, bool) { return "", true }, nil
		}
		v := e.Val.Str()
		c.emit()
		return func(*Tuple) (string, bool) { return v, false }, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T as string", e)
}

func (c *compiler) compileBool(e Expr) (boolFn, error) {
	switch e := e.(type) {
	case Compare:
		return c.compileCompare(e)
	case Logic:
		switch e.Op {
		case '!':
			inner, err := c.compileBool(e.L)
			if err != nil {
				return nil, err
			}
			c.emit()
			return func(t *Tuple) bool { return !inner(t) }, nil
		case '&':
			l, err := c.compileBool(e.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileBool(e.R)
			if err != nil {
				return nil, err
			}
			c.emit()
			return func(t *Tuple) bool { return l(t) && r(t) }, nil
		default:
			l, err := c.compileBool(e.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileBool(e.R)
			if err != nil {
				return nil, err
			}
			c.emit()
			return func(t *Tuple) bool { return l(t) || r(t) }, nil
		}
	case IsNullExpr:
		col, ok := e.E.(ColRef)
		if !ok {
			return nil, fmt.Errorf("exec: IS NULL supports column references only")
		}
		idx := col.Idx
		not := e.Not
		c.emit()
		return func(t *Tuple) bool { return t.Nulls[idx] != not }, nil
	case ColRef, Const, If, Binary:
		// Treat a 0/1 integer expression as a boolean.
		f, err := c.compileInt(e)
		if err != nil {
			return nil, err
		}
		c.emit()
		return func(t *Tuple) bool {
			v, n := f(t)
			return !n && v != 0
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T as bool", e)
}

func (c *compiler) compileCompare(e Compare) (boolFn, error) {
	lk, err := e.L.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if e.Op == types.Prefix {
		l, lerr := c.compileStr(e.L)
		if lerr != nil {
			return nil, lerr
		}
		r, rerr := c.compileStr(e.R)
		if rerr != nil {
			return nil, rerr
		}
		c.emit()
		return func(t *Tuple) bool {
			a, an := l(t)
			p, pn := r(t)
			return !an && !pn && len(a) >= len(p) && a[:len(p)] == p
		}, nil
	}
	rk, err := e.R.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	useFloat := lk == types.Float64 || rk == types.Float64
	switch {
	case lk == types.String:
		l, err := c.compileStr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileStr(e.R)
		if err != nil {
			return nil, err
		}
		if e.Op == types.Between {
			r2, err := c.compileStr(e.R2)
			if err != nil {
				return nil, err
			}
			c.emit()
			return func(t *Tuple) bool {
				a, an := l(t)
				lo, ln := r(t)
				hi, hn := r2(t)
				return !an && !ln && !hn && a >= lo && a <= hi
			}, nil
		}
		op := e.Op
		c.emit()
		return func(t *Tuple) bool {
			a, an := l(t)
			b, bn := r(t)
			if an || bn {
				return false
			}
			return cmpOrd(op, compareStr(a, b))
		}, nil
	case useFloat:
		l, err := c.compileFloat(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileFloat(e.R)
		if err != nil {
			return nil, err
		}
		if e.Op == types.Between {
			r2, err := c.compileFloat(e.R2)
			if err != nil {
				return nil, err
			}
			c.emit()
			return func(t *Tuple) bool {
				a, an := l(t)
				lo, ln := r(t)
				hi, hn := r2(t)
				return !an && !ln && !hn && a >= lo && a <= hi
			}, nil
		}
		op := e.Op
		c.emit()
		return func(t *Tuple) bool {
			a, an := l(t)
			b, bn := r(t)
			if an || bn {
				return false
			}
			return cmpOrd(op, compareF64(a, b))
		}, nil
	default:
		l, err := c.compileInt(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileInt(e.R)
		if err != nil {
			return nil, err
		}
		if e.Op == types.Between {
			r2, err := c.compileInt(e.R2)
			if err != nil {
				return nil, err
			}
			c.emit()
			return func(t *Tuple) bool {
				a, an := l(t)
				lo, ln := r(t)
				hi, hn := r2(t)
				return !an && !ln && !hn && a >= lo && a <= hi
			}, nil
		}
		op := e.Op
		c.emit()
		return func(t *Tuple) bool {
			a, an := l(t)
			b, bn := r(t)
			if an || bn {
				return false
			}
			return cmpOrd(op, compareI64(a, b))
		}, nil
	}
}

func compareI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpOrd(op types.CompareOp, ord int) bool {
	switch op {
	case types.Eq:
		return ord == 0
	case types.Ne:
		return ord != 0
	case types.Lt:
		return ord < 0
	case types.Le:
		return ord <= 0
	case types.Gt:
		return ord > 0
	default: // Ge
		return ord >= 0
	}
}
