package exec

import (
	"encoding/binary"

	"datablocks/internal/core"
	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// This file lowers an operator chain into a batch-at-a-time consumer — the
// vectorized twin of compileChain. Where the tuple chain pushes one record
// file through fused closures, the batch chain hands whole core.Batch
// vectors from operator to operator: filters compact the batch with a
// selection vector, maps evaluate their expressions column-at-a-time, and
// join probes hash whole key vectors against the build table before
// gathering the joined output columnar-wise.
//
// Every operator's output batch owns its buffers (reused across calls), so
// downstream in-place compaction can never corrupt an upstream vector.

// batchConsumer consumes one batch. The batch's buffers are only valid for
// the duration of the call.
type batchConsumer func(*core.Batch)

// compileBatchChain lowers the chain above the scan into a batch consumer
// feeding down. It returns errVecUnsupported (or an expression-compile
// error) when some operator cannot run batch-at-a-time; the caller then
// falls back to the tuple chain.
func (ex *executor) compileBatchChain(n Node, down batchConsumer, c *compiler) (batchConsumer, error) {
	// down consumes n's output batches: the wrapper counts n's emitted
	// rows/batches and times the downstream chain (see compileChain).
	down = c.wp.wrapBatch(ex.profIdx(n), down)
	switch n := n.(type) {
	case *ScanNode:
		return down, nil
	case *FilterNode:
		kinds, err := n.Child.OutKinds()
		if err != nil {
			return nil, err
		}
		vc := &vcompiler{kinds: kinds, stats: c.stats}
		mask, err := vc.compileMask(n.Cond)
		if err != nil {
			return nil, err
		}
		f := &batchFilter{mask: mask, down: down}
		return ex.compileBatchChain(n.Child, f.consume, c)
	case *MapNode:
		m, err := ex.compileBatchMap(n, down, c)
		if err != nil {
			return nil, err
		}
		return ex.compileBatchChain(n.Child, m.consume, c)
	case *JoinNode:
		j, err := ex.compileBatchJoin(n, down, c)
		if err != nil {
			return nil, err
		}
		return ex.compileBatchChain(n.Probe, j.consume, c)
	default:
		return nil, errVecUnsupported
	}
}

// vconjunct is one top-level conjunct of a scan's residual condition,
// compiled as a vectorized mask, plus the scan-output columns it reads.
// The lazy scan unpacks exactly those columns before evaluating it.
type vconjunct struct {
	cols []int
	mask vecMaskFn
}

// splitConjuncts flattens the ∧-spine of an expression.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if l, ok := e.(Logic); ok && l.Op == '&' {
		out = splitConjuncts(l.L, out)
		return splitConjuncts(l.R, out)
	}
	return append(out, e)
}

// exprCols collects the distinct column ordinals an expression references,
// in first-reference order.
func exprCols(e Expr, cols []int) []int {
	add := func(idx int) []int {
		for _, c := range cols {
			if c == idx {
				return cols
			}
		}
		return append(cols, idx)
	}
	switch e := e.(type) {
	case ColRef:
		cols = add(e.Idx)
	case Binary:
		cols = exprCols(e.L, cols)
		cols = exprCols(e.R, cols)
	case Compare:
		cols = exprCols(e.L, cols)
		cols = exprCols(e.R, cols)
		if e.R2 != nil {
			cols = exprCols(e.R2, cols)
		}
	case Logic:
		cols = exprCols(e.L, cols)
		if e.R != nil {
			cols = exprCols(e.R, cols)
		}
	case IsNullExpr:
		cols = exprCols(e.E, cols)
	case If:
		cols = exprCols(e.Cond, cols)
		cols = exprCols(e.Then, cols)
		cols = exprCols(e.Else, cols)
	}
	return cols
}

// batchFilter drops batch rows failing the compiled mask by compacting the
// batch in place.
type batchFilter struct {
	mask vecMaskFn
	sel  []uint32
	down batchConsumer
}

//dbvet:hotpath
func (f *batchFilter) consume(b *core.Batch) {
	f.sel = filterBatch(b, f.mask(b), f.sel)
	if b.N > 0 {
		f.down(b)
	}
}

// filterBatch compacts b to the rows where mask is true, reusing sel as
// scratch; it returns the (possibly regrown) scratch slice.
//
//dbvet:hotpath
func filterBatch(b *core.Batch, mask []bool, sel []uint32) []uint32 {
	sel = resizeU32(sel, b.N)[:0]
	mask = mask[:b.N]
	for i, m := range mask {
		if m {
			sel = append(sel, uint32(i))
		}
	}
	if len(sel) < b.N {
		compactBatchSel(b, sel)
	}
	return sel
}

// compactBatchSel keeps only the selected rows of b, in order, in place.
//
//dbvet:hotpath
func compactBatchSel(b *core.Batch, sel []uint32) {
	// Compaction writes go through destinations re-sliced to len(sel),
	// which proves the write index in bounds for the whole row loop; the
	// reads stay checked because the selection indices are data-dependent
	// (see lint-budget.json). cols is a local so stores through c cannot
	// clobber the slice header mid-loop.
	cols := b.Cols
	for ci := range cols {
		c := &cols[ci]
		switch c.Kind {
		case types.Int64:
			dst := c.Ints[:len(sel)]
			for i, p := range sel {
				dst[i] = c.Ints[p]
			}
			c.Ints = dst
		case types.Float64:
			dst := c.Floats[:len(sel)]
			for i, p := range sel {
				dst[i] = c.Floats[p]
			}
			c.Floats = dst
		default:
			dst := c.Strs[:len(sel)]
			for i, p := range sel {
				dst[i] = c.Strs[p]
			}
			c.Strs = dst
		}
		if c.Nulls != nil {
			dst := c.Nulls[:len(sel)]
			for i, p := range sel {
				dst[i] = c.Nulls[p]
			}
			c.Nulls = dst
		}
	}
	if len(b.Pos) > 0 {
		src := b.Pos
		dst := src[:len(sel)]
		for i, p := range sel {
			dst[i] = src[p]
		}
		b.Pos = dst
	}
	b.N = len(sel)
}

// batchMap computes a new batch layout column-at-a-time. Output columns
// are always copied into map-owned buffers (a ColRef projection could
// otherwise alias one source column twice, which would break downstream
// in-place compaction).
type batchMap struct {
	setters []func(in *core.Batch, out *core.BatchCol)
	out     core.Batch
	down    batchConsumer
}

func (ex *executor) compileBatchMap(n *MapNode, down batchConsumer, c *compiler) (*batchMap, error) {
	kinds, err := n.Child.OutKinds()
	if err != nil {
		return nil, err
	}
	vc := &vcompiler{kinds: kinds, stats: c.stats}
	m := &batchMap{down: down}
	m.out.Cols = make([]core.BatchCol, len(n.Exprs))
	for _, e := range n.Exprs {
		k, err := e.resultKind(kinds)
		if err != nil {
			return nil, err
		}
		switch k {
		case types.Int64:
			f, err := vc.compileInt(e)
			if err != nil {
				return nil, err
			}
			m.setters = append(m.setters, func(in *core.Batch, out *core.BatchCol) {
				vals, nulls := f(in)
				out.Kind = types.Int64
				out.Ints = resizeI64(out.Ints, in.N)
				copy(out.Ints, vals)
				out.Nulls = copyNulls(out.Nulls, nulls, in.N)
			})
		case types.Float64:
			f, err := vc.compileFloat(e)
			if err != nil {
				return nil, err
			}
			m.setters = append(m.setters, func(in *core.Batch, out *core.BatchCol) {
				vals, nulls := f(in)
				out.Kind = types.Float64
				out.Floats = resizeF64(out.Floats, in.N)
				copy(out.Floats, vals)
				out.Nulls = copyNulls(out.Nulls, nulls, in.N)
			})
		default:
			f, err := vc.compileStr(e)
			if err != nil {
				return nil, err
			}
			m.setters = append(m.setters, func(in *core.Batch, out *core.BatchCol) {
				vals, nulls := f(in)
				out.Kind = types.String
				out.Strs = resizeStr(out.Strs, in.N)
				copy(out.Strs, vals)
				out.Nulls = copyNulls(out.Nulls, nulls, in.N)
			})
		}
	}
	return m, nil
}

func copyNulls(dst, src []bool, n int) []bool {
	if src == nil {
		return nil
	}
	dst = resizeBool(dst, n)
	copy(dst, src[:n])
	return dst
}

//dbvet:hotpath
func (m *batchMap) consume(b *core.Batch) {
	m.out.N = b.N
	m.out.Pos = append(m.out.Pos[:0], b.Pos...)
	cols := m.out.Cols[:len(m.setters)]
	for i, set := range m.setters {
		set(b, &cols[i])
	}
	m.down(&m.out)
}

// batchJoinProbe probes the build hash table with a whole batch of keys,
// collecting (probe row, build row) match pairs and gathering the joined
// output columnar-wise (inner joins), or compacting the probe batch by its
// match mask (semi/anti joins).
type batchJoinProbe struct {
	ht         *hashTable
	node       *JoinNode
	buildKinds []types.Kind
	np         int // probe column count
	down       batchConsumer

	intKey bool // single int64 key: hash without byte encoding

	out      core.Batch
	pairsP   []uint32
	pairsB   []int32
	mask     []bool
	sel      []uint32
	keyBuf   []byte
	vscratch []byte
}

func (ex *executor) compileBatchJoin(n *JoinNode, down batchConsumer, c *compiler) (*batchJoinProbe, error) {
	ht := ex.builds[n]
	if ht == nil {
		// compileOnly never materializes builds (and rejects joins).
		return nil, errVecUnsupported
	}
	probeKinds, err := n.Probe.OutKinds()
	if err != nil {
		return nil, err
	}
	j := &batchJoinProbe{ht: ht, node: n, np: len(probeKinds), down: down}
	j.intKey = len(n.ProbeKeys) == 1 && ht.keyKinds[0] == types.Int64
	if n.Kind == InnerJoin {
		j.buildKinds, err = n.Build.OutKinds()
		if err != nil {
			return nil, err
		}
		j.out.Cols = make([]core.BatchCol, j.np+len(j.buildKinds))
	}
	c.emit()
	return j, nil
}

//dbvet:hotpath
func (j *batchJoinProbe) consume(b *core.Batch) {
	if j.node.Kind == InnerJoin {
		j.consumeInner(b)
		return
	}
	j.consumeSemiAnti(b)
}

// matchPairs fills pairsP/pairsB with the verified matches of the batch,
// bucket order per probe row — the same emission order as the tuple path.
//
//dbvet:hotpath
func (j *batchJoinProbe) matchPairs(b *core.Batch) {
	j.pairsP = j.pairsP[:0]
	j.pairsB = j.pairsB[:0]
	ht := j.ht
	if j.intKey {
		col := &b.Cols[j.node.ProbeKeys[0]]
		bc := &ht.build.Cols[ht.keyCols[0]]
		// Re-slicing the key column to the batch length lets the range
		// loop index without checks; the null vector gets the same
		// treatment by sharing the loop index with ints.
		ints := col.Ints[:b.N]
		nulls := col.Nulls
		if nulls != nil {
			nulls = nulls[:b.N]
		}
		for r, v := range ints {
			if nulls != nil && nulls[r] {
				continue
			}
			h := simd.Mix64(uint64(v))
			if !ht.testTag(h) {
				continue
			}
			for _, row := range ht.buckets[h] {
				if bc.Ints[row] == v {
					j.pairsP = append(j.pairsP, uint32(r))
					j.pairsB = append(j.pairsB, row)
				}
			}
		}
		return
	}
	for r := 0; r < b.N; r++ {
		key := j.encodeKey(b, r)
		if key == nil {
			continue
		}
		for _, row := range ht.lookup(key) {
			if j.verify(key, row) {
				j.pairsP = append(j.pairsP, uint32(r))
				j.pairsB = append(j.pairsB, row)
			}
		}
	}
}

//dbvet:hotpath
func (j *batchJoinProbe) consumeInner(b *core.Batch) {
	j.matchPairs(b)
	if len(j.pairsP) == 0 {
		return
	}
	out := &j.out
	out.N = len(j.pairsP)
	out.Pos = out.Pos[:0]
	// Probe columns: gather by probe row index.
	pcols := b.Cols[:j.np]
	pout := out.Cols[:j.np]
	for i := range pcols {
		gatherBatchCol(&pout[i], &pcols[i], j.pairsP)
	}
	// Build columns: gather from the materialized build result.
	nb := len(j.buildKinds)
	bcols := j.ht.build.Cols[:nb]
	bout := out.Cols[j.np:][:nb]
	for bi := range bcols {
		gatherResultCol(&bout[bi], &bcols[bi], j.pairsB)
	}
	j.down(out)
}

//dbvet:hotpath
func (j *batchJoinProbe) consumeSemiAnti(b *core.Batch) {
	wantMatch := j.node.Kind == SemiJoin
	j.mask = resizeBool(j.mask, b.N)
	mask := j.mask[:b.N]
	ht := j.ht
	if j.intKey {
		col := &b.Cols[j.node.ProbeKeys[0]]
		bc := &ht.build.Cols[ht.keyCols[0]]
		ints := col.Ints[:b.N]
		nulls := col.Nulls
		if nulls != nil {
			nulls = nulls[:b.N]
		}
		for r, v := range ints {
			if nulls != nil && nulls[r] {
				// NULL keys never match: semi drops, anti keeps.
				mask[r] = !wantMatch
				continue
			}
			matched := false
			if h := simd.Mix64(uint64(v)); ht.testTag(h) {
				for _, row := range ht.buckets[h] {
					if bc.Ints[row] == v {
						matched = true
						break
					}
				}
			}
			mask[r] = matched == wantMatch
		}
	} else {
		for r := range mask {
			key := j.encodeKey(b, r)
			if key == nil {
				mask[r] = !wantMatch
				continue
			}
			matched := false
			for _, row := range ht.lookup(key) {
				if j.verify(key, row) {
					matched = true
					break
				}
			}
			mask[r] = matched == wantMatch
		}
	}
	j.sel = filterBatch(b, j.mask, j.sel)
	if b.N > 0 {
		j.down(b)
	}
}

// encodeKey serializes the probe key of batch row r; nil marks a NULL key.
//
//dbvet:hotpath
func (j *batchJoinProbe) encodeKey(b *core.Batch, r int) []byte {
	buf := j.keyBuf[:0]
	keys := j.node.ProbeKeys
	kinds := j.ht.keyKinds[:len(keys)]
	for i, c := range keys {
		col := &b.Cols[c]
		if col.Nulls != nil && col.Nulls[r] {
			return nil
		}
		buf = appendKeyCell(buf, kinds[i], col, r)
	}
	j.keyBuf = buf
	return buf
}

//dbvet:hotpath
func (j *batchJoinProbe) verify(key []byte, row int32) bool {
	ok, grown := j.ht.verify(key, row, j.vscratch)
	j.vscratch = grown
	return ok
}

// appendKeyCell serializes one batch cell with the same encoding the tuple
// path's encodeProbeKey uses, so both probe paths hash identically.
//
//dbvet:hotpath
func appendKeyCell(buf []byte, kind types.Kind, col *core.BatchCol, r int) []byte {
	switch kind {
	case types.Int64:
		return binary.LittleEndian.AppendUint64(buf, uint64(col.Ints[r]))
	case types.Float64:
		return binary.LittleEndian.AppendUint64(buf, floatKeyBits(col.Floats[r]))
	default:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(col.Strs[r])))
		return append(buf, col.Strs[r]...)
	}
}

//dbvet:hotpath
func gatherBatchCol(dst, src *core.BatchCol, idx []uint32) {
	// The destination of each gather is a local re-sliced to len(idx),
	// proving the write index in bounds; the data-dependent reads keep
	// their checks (see lint-budget.json).
	n := len(idx)
	dst.Kind = src.Kind
	switch src.Kind {
	case types.Int64:
		d := resizeI64(dst.Ints, n)[:n]
		for i, p := range idx {
			d[i] = src.Ints[p]
		}
		dst.Ints = d
	case types.Float64:
		d := resizeF64(dst.Floats, n)[:n]
		for i, p := range idx {
			d[i] = src.Floats[p]
		}
		dst.Floats = d
	default:
		d := resizeStr(dst.Strs, n)[:n]
		for i, p := range idx {
			d[i] = src.Strs[p]
		}
		dst.Strs = d
	}
	if src.Nulls != nil {
		d := resizeBool(dst.Nulls, n)[:n]
		for i, p := range idx {
			d[i] = src.Nulls[p]
		}
		dst.Nulls = d
	} else {
		dst.Nulls = nil
	}
}

//dbvet:hotpath
func gatherResultCol(dst *core.BatchCol, src *ResultCol, rows []int32) {
	n := len(rows)
	dst.Kind = src.Kind
	switch src.Kind {
	case types.Int64:
		d := resizeI64(dst.Ints, n)[:n]
		for i, p := range rows {
			d[i] = src.Ints[p]
		}
		dst.Ints = d
	case types.Float64:
		d := resizeF64(dst.Floats, n)[:n]
		for i, p := range rows {
			d[i] = src.Floats[p]
		}
		dst.Floats = d
	default:
		d := resizeStr(dst.Strs, n)[:n]
		for i, p := range rows {
			d[i] = src.Strs[p]
		}
		dst.Strs = d
	}
	d := resizeBool(dst.Nulls, n)[:n]
	for i, p := range rows {
		d[i] = src.Nulls[p]
	}
	dst.Nulls = d
}
