package exec

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"datablocks/internal/core"
	"datablocks/internal/obs"
)

// QueryProfile is the EXPLAIN-ANALYZE view of one executed query,
// returned on Result.Profile when Options.Profile is set. Counters are
// collected in per-worker obs shards (plain, uncontended cells owned by
// one morsel worker) and merged once, after the workers join — the same
// boundary at which per-worker aggregator and result states merge — so
// profiling never puts a contended atomic or an allocation inside the
// //dbvet:hotpath scan kernels.
type QueryProfile struct {
	// Mode/VectorSize/Parallelism echo the options the query ran with;
	// Workers has one entry per morsel worker actually started.
	Mode        ScanMode
	VectorSize  int
	Parallelism int
	// BatchPath reports whether the batch-at-a-time chain drove the
	// pipeline; when false, Fallback holds the reason the execution fell
	// back to the fused tuple-at-a-time chain ("" when tuple execution
	// was requested rather than fallen back to, e.g. JIT mode).
	BatchPath bool
	Fallback  string
	// Wall is the end-to-end execution time, including plan compilation
	// and join build sides.
	Wall time.Duration
	// Operators lists the pipeline bottom-up: scan first, then each
	// operator in dataflow order, the sink (aggregate or materialize)
	// and, when present, the final order-by.
	Operators []OperatorProfile
	// Scan details the storage side of the leaf scan.
	Scan ScanProfile
	// Workers reports per-worker morsel counts and busy time; skew here
	// means morsel-size imbalance.
	Workers []WorkerProfile
}

// OperatorProfile is one operator's row accounting. RowsIn of operator
// i+1 always equals RowsOut of operator i (they observe the same edge);
// the renderer and the profile invariants lean on that conservation.
type OperatorProfile struct {
	Name    string
	RowsIn  uint64
	RowsOut uint64
	// Batches counts vectors pushed across the operator's output edge on
	// the batch path (0 on the tuple path).
	Batches uint64
	// Time is inclusive: the wall time spent in this operator and
	// everything downstream of it, summed across workers. For the scan
	// it is the workers' total busy time.
	Time time.Duration
	// Join detail: build-side rows and probe hits (rows emitted for
	// inner joins, probe rows surviving for semi/anti).
	BuildRows uint64
	ProbeHits uint64
	// Aggregate detail: group count after the cross-worker merge, and
	// group ids that landed in the same-hash overflow map (the spill
	// path of the batch aggregator), summed across workers pre-merge.
	Groups         uint64
	SpilledGroups  uint64
	ProbeDetail    bool // ProbeHits/BuildRows are meaningful
	GroupingDetail bool // Groups/SpilledGroups are meaningful
}

// ScanProfile details the leaf scan's storage traffic. The chunk
// accounting is exact: HotChunks + FrozenChunks + SkippedChunks ==
// TotalChunks (every snapshotted chunk is visited or skipped whole).
type ScanProfile struct {
	// TotalChunks is the size of the snapshot the scan iterated.
	TotalChunks uint64
	// HotChunks/FrozenChunks count morsels actually scanned;
	// SkippedChunks counts frozen blocks ruled out whole by the SMA /
	// dictionary probe (and PSMA) before any vector was read.
	HotChunks, FrozenChunks, SkippedChunks uint64
	// Vectors counts find/reduce vector iterations; PrunedVectors the
	// subset whose match vector the SARG predicates emptied.
	Vectors, PrunedVectors uint64
	// RowsMatched counts rows surviving SARGs, visibility and early
	// probing — the rows the scan materialized or pushed.
	RowsMatched uint64
	// ColumnUnpacks counts per-column materializations on the
	// vectorized path (lazy per-conjunct unpacks and final projections).
	ColumnUnpacks uint64
	// Reloads counts evicted blocks this query reloaded from the store;
	// PinWait is the total time spent acquiring frozen blocks (pin +
	// single-flight wait + disk read), summed across workers.
	Reloads uint64
	PinWait time.Duration
}

// WorkerProfile is one morsel worker's share of the scan.
type WorkerProfile struct {
	Morsels uint64
	Busy    time.Duration
}

// profiler collects a QueryProfile while the executor runs. Worker
// shards are appended at compile time (one per worker) and merged in
// finish after the workers join.
type profiler struct {
	mu      sync.Mutex
	start   time.Time
	opt     Options
	names   []string
	idx     map[Node]int
	sinkIdx int
	aggSink bool
	joins   map[Node]uint64 // spine join -> build rows

	totalChunks uint64
	fallback    string
	batchPath   bool
	workers     []*workerProf

	groups, spilled   uint64
	orderIn, orderOut uint64
	orderTime         time.Duration
	hasOrder          bool
}

// workerProf is one worker's profile shard: plain obs.ShardCounter
// cells owned by that worker alone, merged after wg.Wait().
type workerProf struct {
	cells  []opCell
	scan   scanShard
	morsel obs.ShardCounter
	busyNs obs.ShardCounter
}

// opCell is one operator's per-worker shard. rowsOut/batches/downNs are
// recorded by a wrapper on the operator's output edge; downNs is the
// time spent inside the downstream chain.
type opCell struct {
	rowsOut obs.ShardCounter
	batches obs.ShardCounter
	downNs  obs.ShardCounter
}

// scanShard is the scan driver's per-worker counters (see ScanProfile).
type scanShard struct {
	hotChunks, frozenChunks, skippedChunks obs.ShardCounter
	vectors, prunedVectors                 obs.ShardCounter
	rowsMatched, unpacks                   obs.ShardCounter
	reloads, pinWaitNs                     obs.ShardCounter
}

// newProfiler maps the plan to an operator list (scan-first dataflow
// order). Plans whose shape the profiler does not understand run
// unprofiled (ok=false) rather than failing the query.
func newProfiler(root Node, opt Options) (*profiler, bool) {
	p := &profiler{
		start: time.Now(),
		opt:   opt,
		idx:   make(map[Node]int),
		joins: make(map[Node]uint64),
	}
	n := root
	if ob, ok := n.(*OrderByNode); ok {
		p.hasOrder = true
		n = ob.Child
	}
	var chain Node
	if agg, ok := n.(*AggNode); ok {
		p.aggSink = true
		chain = agg.Child
	} else {
		chain = n
	}
	// Walk the probe spine top-down, then reverse into dataflow order.
	var topDown []Node
	for cur := chain; ; {
		switch c := cur.(type) {
		case *ScanNode:
			topDown = append(topDown, c)
			goto done
		case *FilterNode:
			topDown = append(topDown, c)
			cur = c.Child
		case *MapNode:
			topDown = append(topDown, c)
			cur = c.Child
		case *JoinNode:
			topDown = append(topDown, c)
			cur = c.Probe
		default:
			return nil, false
		}
	}
done:
	for i := len(topDown) - 1; i >= 0; i-- {
		nd := topDown[i]
		p.idx[nd] = len(p.names)
		p.names = append(p.names, opName(nd))
	}
	p.sinkIdx = len(p.names)
	if p.aggSink {
		p.names = append(p.names, "aggregate")
	} else {
		p.names = append(p.names, "materialize")
	}
	if p.hasOrder {
		p.names = append(p.names, "order-by")
	}
	return p, true
}

func opName(n Node) string {
	switch n := n.(type) {
	case *ScanNode:
		return "scan"
	case *FilterNode:
		return "filter"
	case *MapNode:
		return "map"
	case *JoinNode:
		switch n.Kind {
		case SemiJoin:
			return "semi-join"
		case AntiJoin:
			return "anti-join"
		default:
			return "join"
		}
	default:
		return fmt.Sprintf("%T", n)
	}
}

// newWorker allocates one worker's shard. Called once per worker at
// compile time, before any morsel is processed.
func (p *profiler) newWorker() *workerProf {
	wp := &workerProf{cells: make([]opCell, len(p.names))}
	p.mu.Lock()
	p.workers = append(p.workers, wp)
	p.mu.Unlock()
	return wp
}

// opIndex returns the operator position of a spine node, or -1.
func (p *profiler) opIndex(n Node) int {
	if i, ok := p.idx[n]; ok {
		return i
	}
	return -1
}

// setFallback records the first tuple-path fallback reason.
func (p *profiler) setFallback(reason string) {
	p.mu.Lock()
	if p.fallback == "" {
		p.fallback = reason
	}
	p.mu.Unlock()
}

func (p *profiler) noteBuild(n Node, rows uint64) {
	p.mu.Lock()
	p.joins[n] = rows
	p.mu.Unlock()
}

// wrapTuple instruments one operator's output edge on the tuple chain.
func (wp *workerProf) wrapTuple(i int, down func(*Tuple)) func(*Tuple) {
	if wp == nil || i < 0 {
		return down
	}
	cell := &wp.cells[i]
	return func(t *Tuple) {
		cell.rowsOut.Inc()
		t0 := time.Now()
		down(t)
		cell.downNs.Add(uint64(time.Since(t0)))
	}
}

// wrapBatch instruments one operator's output edge on the batch chain.
func (wp *workerProf) wrapBatch(i int, down batchConsumer) batchConsumer {
	if wp == nil || i < 0 {
		return down
	}
	cell := &wp.cells[i]
	return func(b *core.Batch) {
		cell.rowsOut.Add(uint64(b.N))
		cell.batches.Inc()
		t0 := time.Now()
		down(b)
		cell.downNs.Add(uint64(time.Since(t0)))
	}
}

// finish merges the worker shards into the final QueryProfile. Called
// once, after every worker has joined.
func (p *profiler) finish(resultRows uint64) *QueryProfile {
	q := &QueryProfile{
		Mode:        p.opt.Mode,
		VectorSize:  p.opt.VectorSize,
		Parallelism: p.opt.Parallelism,
		BatchPath:   p.batchPath,
		Fallback:    p.fallback,
		Wall:        time.Since(p.start),
		Operators:   make([]OperatorProfile, len(p.names)),
	}
	nOps := len(p.names)
	rowsOut := make([]uint64, nOps)
	batches := make([]uint64, nOps)
	downNs := make([]uint64, nOps)
	for _, wp := range p.workers {
		for i := range wp.cells {
			rowsOut[i] += wp.cells[i].rowsOut.Value()
			batches[i] += wp.cells[i].batches.Value()
			downNs[i] += wp.cells[i].downNs.Value()
		}
		s := &wp.scan
		q.Scan.HotChunks += s.hotChunks.Value()
		q.Scan.FrozenChunks += s.frozenChunks.Value()
		q.Scan.SkippedChunks += s.skippedChunks.Value()
		q.Scan.Vectors += s.vectors.Value()
		q.Scan.PrunedVectors += s.prunedVectors.Value()
		q.Scan.RowsMatched += s.rowsMatched.Value()
		q.Scan.ColumnUnpacks += s.unpacks.Value()
		q.Scan.Reloads += s.reloads.Value()
		q.Scan.PinWait += time.Duration(s.pinWaitNs.Value())
		q.Workers = append(q.Workers, WorkerProfile{
			Morsels: wp.morsel.Value(),
			Busy:    time.Duration(wp.busyNs.Value()),
		})
	}
	q.Scan.TotalChunks = p.totalChunks
	// The JIT/tuple scan paths do not count matches separately — the scan
	// edge wrapper already sees every produced row.
	if q.Scan.RowsMatched == 0 && rowsOut[0] > 0 {
		q.Scan.RowsMatched = rowsOut[0]
	}
	var totalBusy time.Duration
	for _, w := range q.Workers {
		totalBusy += w.Busy
	}
	for i := range q.Operators {
		op := &q.Operators[i]
		op.Name = p.names[i]
		op.RowsOut = rowsOut[i]
		op.Batches = batches[i]
		if i == 0 {
			op.RowsIn = rowsOut[0]
			op.Time = totalBusy
		} else {
			op.RowsIn = rowsOut[i-1]
			op.Time = time.Duration(downNs[i-1])
		}
	}
	// Sink and order-by edges are not wrapped; fill them from the merged
	// end states.
	sink := &q.Operators[p.sinkIdx]
	if p.aggSink {
		sink.GroupingDetail = true
		sink.Groups = p.groups
		sink.SpilledGroups = p.spilled
		sink.RowsOut = p.groups
	} else {
		sink.RowsOut = sink.RowsIn
	}
	if p.hasOrder {
		ob := &q.Operators[len(q.Operators)-1]
		ob.RowsIn = p.orderIn
		ob.RowsOut = p.orderOut
		ob.Time = p.orderTime
	} else if !p.aggSink && resultRows > 0 {
		// Without a sink wrapper the materialize row count comes from the
		// merged result itself.
		sink.RowsOut = resultRows
	}
	// Join detail from the recorded build sides.
	for n, buildRows := range p.joins {
		if i := p.opIndex(n); i >= 0 {
			op := &q.Operators[i]
			op.ProbeDetail = true
			op.BuildRows = buildRows
			if jn, ok := n.(*JoinNode); ok && jn.Kind == AntiJoin {
				op.ProbeHits = op.RowsIn - op.RowsOut
			} else {
				op.ProbeHits = op.RowsOut
			}
		}
	}
	return q
}

// String renders the profile EXPLAIN-ANALYZE style.
func (q *QueryProfile) String() string {
	var b strings.Builder
	path := "tuple"
	if q.BatchPath {
		path = "batch"
	}
	fmt.Fprintf(&b, "mode=%s vector=%d workers=%d path=%s wall=%s\n",
		q.Mode, q.VectorSize, len(q.Workers), path, round(q.Wall))
	if q.Fallback != "" {
		fmt.Fprintf(&b, "tuple-path fallback: %s\n", q.Fallback)
	}
	for i := len(q.Operators) - 1; i >= 0; i-- {
		op := &q.Operators[i]
		indent := strings.Repeat("  ", len(q.Operators)-1-i)
		fmt.Fprintf(&b, "%s%-12s rows=%-10d", indent, op.Name, op.RowsOut)
		if op.Batches > 0 {
			fmt.Fprintf(&b, " batches=%-7d", op.Batches)
		}
		fmt.Fprintf(&b, " time=%s", round(op.Time))
		if op.ProbeDetail {
			fmt.Fprintf(&b, " build=%d hits=%d", op.BuildRows, op.ProbeHits)
		}
		if op.GroupingDetail {
			fmt.Fprintf(&b, " groups=%d", op.Groups)
			if op.SpilledGroups > 0 {
				fmt.Fprintf(&b, " spilled=%d", op.SpilledGroups)
			}
		}
		b.WriteByte('\n')
	}
	s := &q.Scan
	fmt.Fprintf(&b, "scan detail: chunks=%d (hot=%d frozen=%d sma-skipped=%d)",
		s.TotalChunks, s.HotChunks, s.FrozenChunks, s.SkippedChunks)
	if s.Vectors > 0 {
		fmt.Fprintf(&b, " vectors=%d (sarg-pruned=%d)", s.Vectors, s.PrunedVectors)
	}
	fmt.Fprintf(&b, " matched=%d unpacks=%d", s.RowsMatched, s.ColumnUnpacks)
	if s.Reloads > 0 || s.PinWait > 0 {
		fmt.Fprintf(&b, " reloads=%d pin-wait=%s", s.Reloads, round(s.PinWait))
	}
	b.WriteByte('\n')
	if len(q.Workers) > 1 {
		fmt.Fprintf(&b, "workers:")
		for i, w := range q.Workers {
			fmt.Fprintf(&b, " w%d=%dm/%s", i, w.Morsels, round(w.Busy))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}
