package exec

import (
	"errors"
	"fmt"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

// This file is the vectorized twin of the closure compiler in expr.go: it
// lowers scalar expressions into column-at-a-time evaluators over a
// core.Batch. Batch-capable sinks (the vectorized aggregator, filters, maps
// and join probes) use these instead of calling a tuple closure per row.
//
// The evaluators mirror the tuple compiler's semantics operation for
// operation — same NULL collapsing, same division-by-zero rule, same
// per-row arithmetic — so that the batch pipeline produces bit-identical
// results to the tuple-at-a-time pipeline.
//
// Each compiled closure owns its output scratch buffers, reused across
// batches; callers must not retain the returned slices beyond the next
// call. A ColRef returns the batch's column directly (zero copy), so the
// returned slices are read-only.

// errVecUnsupported marks an expression the vectorized compiler cannot
// lower; callers fall back to the tuple-at-a-time chain.
var errVecUnsupported = errors.New("exec: expression not vectorizable")

// Vectorized closure signatures: value vector plus a null mask (nil = no
// NULLs in this batch).
type (
	vecIntFn   func(b *core.Batch) ([]int64, []bool)
	vecFloatFn func(b *core.Batch) ([]float64, []bool)
	vecStrFn   func(b *core.Batch) ([]string, []bool)
	// vecMaskFn evaluates a boolean expression with SQL three-valued
	// logic collapsed (NULL ⇒ false), one flag per row.
	vecMaskFn func(b *core.Batch) []bool
)

// vcompiler lowers expressions to vectorized closures against a fixed
// batch layout.
type vcompiler struct {
	kinds []types.Kind
	stats *CompileStats
	// cse, when non-nil, enables common-subexpression elimination across
	// everything this compiler lowers: structurally identical float
	// subtrees share one closure whose result is computed once per epoch.
	// Sinks that evaluate several expressions over the same batch (the
	// vectorized aggregator) opt in and bump the epoch before each batch.
	cse *vcse
}

// vcse is the shared memoization state of one vcompiler's CSE mode. Expr
// nodes are comparable value structs, so a subtree is its own memo key:
// two independently built but structurally equal trees compare equal.
type vcse struct {
	epoch uint64 // bumped by the owning sink before each batch
	memo  map[Expr]vecFloatFn
}

// cseWorthy reports whether a float subtree is worth memoizing: only
// nodes that do per-row work (arithmetic, conditionals). ColRef and Const
// already evaluate for free, and wrapping them would only add a call.
func cseWorthy(e Expr) bool {
	switch e.(type) {
	case Binary, If:
		return true
	}
	return false
}

// compileFloat lowers a float expression, routing through the CSE memo
// when enabled: a structurally repeated subtree returns the same shared
// closure, which evaluates its operand tree once per epoch and hands the
// cached vector to every consumer after that.
func (c *vcompiler) compileFloat(e Expr) (vecFloatFn, error) {
	if c.cse == nil || !cseWorthy(e) {
		return c.compileFloatExpr(e)
	}
	if f, ok := c.cse.memo[e]; ok {
		return f, nil
	}
	inner, err := c.compileFloatExpr(e)
	if err != nil {
		return nil, err
	}
	cs := c.cse
	var vals []float64
	var nulls []bool
	var stamp uint64                               // 0 = never evaluated; the sink's first epoch is 1
	f := func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
		if stamp != cs.epoch {
			vals, nulls = inner(b)
			stamp = cs.epoch
		}
		return vals, nulls
	}
	c.cse.memo[e] = f
	return f, nil
}

func (c *vcompiler) emit() {
	if c.stats != nil {
		c.stats.Closures++
	}
}

// The resize helpers return s with length n, reusing capacity when they
// can. The grow side is kept in separate //go:noinline functions so the
// make stays out of the inlined fast path: hot-path callers see only a
// capacity compare, and the (amortized, once-per-growth) allocation is
// attributed to the cold grow frame where it actually runs.

func resizeI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return growI64(n)
	}
	return s[:n]
}

//go:noinline
func growI64(n int) []int64 { return make([]int64, n) }

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return growF64(n)
	}
	return s[:n]
}

//go:noinline
func growF64(n int) []float64 { return make([]float64, n) }

func resizeStr(s []string, n int) []string {
	if cap(s) < n {
		return growStr(n)
	}
	return s[:n]
}

//go:noinline
func growStr(n int) []string { return make([]string, n) }

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return growBool(n)
	}
	return s[:n]
}

//go:noinline
func growBool(n int) []bool { return make([]bool, n) }

func resizeU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return growU32(n)
	}
	return s[:n]
}

//go:noinline
func growU32(n int) []uint32 { return make([]uint32, n) }

// constInt extracts a non-null integer literal for broadcast loops.
func constInt(e Expr) (int64, bool) {
	c, ok := e.(Const)
	if !ok || c.Val.IsNull() || c.Val.Kind() != types.Int64 {
		return 0, false
	}
	return c.Val.Int(), true
}

// constFloat extracts a non-null numeric literal for broadcast loops.
func constFloat(e Expr) (float64, bool) {
	c, ok := e.(Const)
	if !ok || c.Val.IsNull() {
		return 0, false
	}
	switch c.Val.Kind() {
	case types.Int64:
		return float64(c.Val.Int()), true
	case types.Float64:
		return c.Val.Float(), true
	}
	return 0, false
}

// orNulls merges two null masks into scratch; nil means "no NULLs".
func orNulls(a, b []bool, scratch []bool, n int) ([]bool, []bool) {
	if a == nil && b == nil {
		return nil, scratch
	}
	scratch = resizeBool(scratch, n)
	switch {
	case a == nil:
		copy(scratch, b[:n])
	case b == nil:
		copy(scratch, a[:n])
	default:
		for i := 0; i < n; i++ {
			scratch[i] = a[i] || b[i]
		}
	}
	return scratch, scratch
}

func (c *vcompiler) compileInt(e Expr) (vecIntFn, error) {
	k, err := e.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if k != types.Int64 {
		return nil, fmt.Errorf("exec: expression is %v, want int", k)
	}
	switch e := e.(type) {
	case ColRef:
		idx := e.Idx
		c.emit()
		return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
			col := &b.Cols[idx]
			return col.Ints[:b.N], col.Nulls
		}, nil
	case Const:
		// Splats are memoized: the buffer is filled once and reused for
		// every batch that fits (callers never mutate operand vectors).
		var out []int64
		var nulls []bool
		if e.Val.IsNull() {
			c.emit()
			return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
				if b.N > len(out) {
					out = make([]int64, b.N)
					nulls = make([]bool, b.N)
					for i := range nulls {
						nulls[i] = true
					}
				}
				return out[:b.N], nulls[:b.N]
			}, nil
		}
		v := e.Val.Int()
		c.emit()
		return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
			if b.N > len(out) {
				out = make([]int64, b.N)
				for i := range out {
					out[i] = v
				}
			}
			return out[:b.N], nil
		}, nil
	case Binary:
		if e.Op != '+' && e.Op != '-' && e.Op != '*' {
			return nil, fmt.Errorf("exec: integer division unsupported; use Div for doubles")
		}
		op := e.Op
		// Broadcast specialization: a constant operand becomes a scalar in
		// the loop instead of a splatted vector.
		if rv, ok := constInt(e.R); ok {
			l, err := c.compileInt(e.L)
			if err != nil {
				return nil, err
			}
			var out []int64
			c.emit()
			return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
				av, an := l(b)
				out = resizeI64(out, b.N)
				switch op {
				case '+':
					for i := range out {
						out[i] = av[i] + rv
					}
				case '-':
					for i := range out {
						out[i] = av[i] - rv
					}
				default:
					for i := range out {
						out[i] = av[i] * rv
					}
				}
				return out, an
			}, nil
		}
		if lv, ok := constInt(e.L); ok {
			r, err := c.compileInt(e.R)
			if err != nil {
				return nil, err
			}
			var out []int64
			c.emit()
			return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
				bv, bn := r(b)
				out = resizeI64(out, b.N)
				switch op {
				case '+':
					for i := range out {
						out[i] = lv + bv[i]
					}
				case '-':
					for i := range out {
						out[i] = lv - bv[i]
					}
				default:
					for i := range out {
						out[i] = lv * bv[i]
					}
				}
				return out, bn
			}, nil
		}
		l, err := c.compileInt(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileInt(e.R)
		if err != nil {
			return nil, err
		}
		var out []int64
		var nscratch []bool
		c.emit()
		return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
			av, an := l(b)
			bv, bn := r(b)
			out = resizeI64(out, b.N)
			switch op {
			case '+':
				for i := range out {
					out[i] = av[i] + bv[i]
				}
			case '-':
				for i := range out {
					out[i] = av[i] - bv[i]
				}
			default:
				for i := range out {
					out[i] = av[i] * bv[i]
				}
			}
			var nulls []bool
			nulls, nscratch = orNulls(an, bn, nscratch, b.N)
			return out, nulls
		}, nil
	case Compare, Logic, IsNullExpr:
		m, err := c.compileMask(e)
		if err != nil {
			return nil, err
		}
		var out []int64
		c.emit()
		return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
			mask := m(b)
			out = resizeI64(out, b.N)
			for i := range out {
				if mask[i] {
					out[i] = 1
				} else {
					out[i] = 0
				}
			}
			return out, nil
		}, nil
	case If:
		cond, err := c.compileMask(e.Cond)
		if err != nil {
			return nil, err
		}
		th, err := c.compileInt(e.Then)
		if err != nil {
			return nil, err
		}
		el, err := c.compileInt(e.Else)
		if err != nil {
			return nil, err
		}
		var out []int64
		var nscratch []bool
		c.emit()
		return func(b *core.Batch) ([]int64, []bool) { //dbvet:hotpath
			mask := cond(b)
			tv, tn := th(b)
			ev, en := el(b)
			out = resizeI64(out, b.N)
			var nulls []bool
			if tn != nil || en != nil {
				nscratch = resizeBool(nscratch, b.N)
				nulls = nscratch
			}
			for i := range out {
				if mask[i] {
					out[i] = tv[i]
					if nulls != nil {
						nulls[i] = tn != nil && tn[i]
					}
				} else {
					out[i] = ev[i]
					if nulls != nil {
						nulls[i] = en != nil && en[i]
					}
				}
			}
			return out, nulls
		}, nil
	}
	return nil, errVecUnsupported
}

func (c *vcompiler) compileFloatExpr(e Expr) (vecFloatFn, error) {
	k, err := e.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if k == types.Int64 {
		f, err := c.compileInt(e)
		if err != nil {
			return nil, err
		}
		var out []float64
		c.emit()
		return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
			iv, nulls := f(b)
			out = resizeF64(out, b.N)
			for i := range out {
				out[i] = float64(iv[i])
			}
			return out, nulls
		}, nil
	}
	if k != types.Float64 {
		return nil, fmt.Errorf("exec: expression is %v, want float", k)
	}
	switch e := e.(type) {
	case ColRef:
		idx := e.Idx
		c.emit()
		return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
			col := &b.Cols[idx]
			return col.Floats[:b.N], col.Nulls
		}, nil
	case Const:
		var out []float64
		var nulls []bool
		if e.Val.IsNull() {
			c.emit()
			return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
				if b.N > len(out) {
					out = make([]float64, b.N)
					nulls = make([]bool, b.N)
					for i := range nulls {
						nulls[i] = true
					}
				}
				return out[:b.N], nulls[:b.N]
			}, nil
		}
		v := e.Val.Float()
		c.emit()
		return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
			if b.N > len(out) {
				out = make([]float64, b.N)
				for i := range out {
					out[i] = v
				}
			}
			return out[:b.N], nil
		}, nil
	case Binary:
		op := e.Op
		// Broadcast specialization: a constant operand becomes a scalar in
		// the loop instead of a splatted vector. A constant divisor also
		// hoists the zero test out of the loop (division semantics follow
		// the tuple compiler exactly: NULL or zero divisor yields NULL).
		if rv, ok := constFloat(e.R); ok {
			l, err := c.compileFloat(e.L)
			if err != nil {
				return nil, err
			}
			var out []float64
			var nulls []bool
			c.emit()
			if op == '/' && rv == 0 {
				return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
					out = resizeF64(out, b.N)
					nulls = resizeBool(nulls, b.N)
					for i := range nulls {
						out[i], nulls[i] = 0, true
					}
					return out, nulls
				}, nil
			}
			return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
				av, an := l(b)
				out = resizeF64(out, b.N)
				switch op {
				case '+':
					for i := range out {
						out[i] = av[i] + rv
					}
				case '-':
					for i := range out {
						out[i] = av[i] - rv
					}
				case '*':
					for i := range out {
						out[i] = av[i] * rv
					}
				default:
					for i := range out {
						out[i] = av[i] / rv
					}
				}
				return out, an
			}, nil
		}
		if lv, ok := constFloat(e.L); ok {
			r, err := c.compileFloat(e.R)
			if err != nil {
				return nil, err
			}
			var out []float64
			var nscratch []bool
			c.emit()
			if op == '/' {
				return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
					bv, bn := r(b)
					out = resizeF64(out, b.N)
					nscratch = resizeBool(nscratch, b.N)
					for i := range out {
						if (bn != nil && bn[i]) || bv[i] == 0 {
							out[i], nscratch[i] = 0, true
							continue
						}
						out[i], nscratch[i] = lv/bv[i], false
					}
					return out, nscratch
				}, nil
			}
			return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
				bv, bn := r(b)
				out = resizeF64(out, b.N)
				switch op {
				case '+':
					for i := range out {
						out[i] = lv + bv[i]
					}
				case '-':
					for i := range out {
						out[i] = lv - bv[i]
					}
				default:
					for i := range out {
						out[i] = lv * bv[i]
					}
				}
				return out, bn
			}, nil
		}
		l, err := c.compileFloat(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileFloat(e.R)
		if err != nil {
			return nil, err
		}
		var out []float64
		var nscratch []bool
		c.emit()
		if op == '/' {
			// Division follows the tuple compiler exactly: NULL or zero
			// divisor yields NULL (value 0).
			return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
				av, an := l(b)
				bv, bn := r(b)
				out = resizeF64(out, b.N)
				nscratch = resizeBool(nscratch, b.N)
				for i := range out {
					if (bn != nil && bn[i]) || bv[i] == 0 {
						out[i], nscratch[i] = 0, true
						continue
					}
					out[i] = av[i] / bv[i]
					nscratch[i] = an != nil && an[i]
				}
				return out, nscratch
			}, nil
		}
		return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
			av, an := l(b)
			bv, bn := r(b)
			out = resizeF64(out, b.N)
			switch op {
			case '+':
				for i := range out {
					out[i] = av[i] + bv[i]
				}
			case '-':
				for i := range out {
					out[i] = av[i] - bv[i]
				}
			default:
				for i := range out {
					out[i] = av[i] * bv[i]
				}
			}
			var nulls []bool
			nulls, nscratch = orNulls(an, bn, nscratch, b.N)
			return out, nulls
		}, nil
	case If:
		cond, err := c.compileMask(e.Cond)
		if err != nil {
			return nil, err
		}
		th, err := c.compileFloat(e.Then)
		if err != nil {
			return nil, err
		}
		el, err := c.compileFloat(e.Else)
		if err != nil {
			return nil, err
		}
		var out []float64
		var nscratch []bool
		c.emit()
		return func(b *core.Batch) ([]float64, []bool) { //dbvet:hotpath
			mask := cond(b)
			tv, tn := th(b)
			ev, en := el(b)
			out = resizeF64(out, b.N)
			var nulls []bool
			if tn != nil || en != nil {
				nscratch = resizeBool(nscratch, b.N)
				nulls = nscratch
			}
			for i := range out {
				if mask[i] {
					out[i] = tv[i]
					if nulls != nil {
						nulls[i] = tn != nil && tn[i]
					}
				} else {
					out[i] = ev[i]
					if nulls != nil {
						nulls[i] = en != nil && en[i]
					}
				}
			}
			return out, nulls
		}, nil
	}
	return nil, errVecUnsupported
}

func (c *vcompiler) compileStr(e Expr) (vecStrFn, error) {
	k, err := e.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if k != types.String {
		return nil, fmt.Errorf("exec: expression is %v, want string", k)
	}
	switch e := e.(type) {
	case ColRef:
		idx := e.Idx
		c.emit()
		return func(b *core.Batch) ([]string, []bool) { //dbvet:hotpath
			col := &b.Cols[idx]
			return col.Strs[:b.N], col.Nulls
		}, nil
	case Const:
		var out []string
		var nulls []bool
		if e.Val.IsNull() {
			c.emit()
			return func(b *core.Batch) ([]string, []bool) { //dbvet:hotpath
				if b.N > len(out) {
					out = make([]string, b.N)
					nulls = make([]bool, b.N)
					for i := range nulls {
						nulls[i] = true
					}
				}
				return out[:b.N], nulls[:b.N]
			}, nil
		}
		v := e.Val.Str()
		c.emit()
		return func(b *core.Batch) ([]string, []bool) { //dbvet:hotpath
			if b.N > len(out) {
				out = make([]string, b.N)
				for i := range out {
					out[i] = v
				}
			}
			return out[:b.N], nil
		}, nil
	}
	return nil, errVecUnsupported
}

func (c *vcompiler) compileMask(e Expr) (vecMaskFn, error) {
	switch e := e.(type) {
	case Compare:
		return c.compileCompareMask(e)
	case Logic:
		switch e.Op {
		case '!':
			inner, err := c.compileMask(e.L)
			if err != nil {
				return nil, err
			}
			var out []bool
			c.emit()
			return func(b *core.Batch) []bool { //dbvet:hotpath
				m := inner(b)
				out = resizeBool(out, b.N)
				for i := range out {
					out[i] = !m[i]
				}
				return out
			}, nil
		case '&':
			l, err := c.compileMask(e.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileMask(e.R)
			if err != nil {
				return nil, err
			}
			var out []bool
			c.emit()
			return func(b *core.Batch) []bool { //dbvet:hotpath
				lm, rm := l(b), r(b)
				out = resizeBool(out, b.N)
				for i := range out {
					out[i] = lm[i] && rm[i]
				}
				return out
			}, nil
		default:
			l, err := c.compileMask(e.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileMask(e.R)
			if err != nil {
				return nil, err
			}
			var out []bool
			c.emit()
			return func(b *core.Batch) []bool { //dbvet:hotpath
				lm, rm := l(b), r(b)
				out = resizeBool(out, b.N)
				for i := range out {
					out[i] = lm[i] || rm[i]
				}
				return out
			}, nil
		}
	case IsNullExpr:
		col, ok := e.E.(ColRef)
		if !ok {
			return nil, fmt.Errorf("exec: IS NULL supports column references only")
		}
		idx := col.Idx
		not := e.Not
		var out []bool
		c.emit()
		return func(b *core.Batch) []bool { //dbvet:hotpath
			nulls := b.Cols[idx].Nulls
			out = resizeBool(out, b.N)
			if nulls == nil {
				for i := range out {
					out[i] = not
				}
				return out
			}
			for i := range out {
				out[i] = nulls[i] != not
			}
			return out
		}, nil
	case ColRef, Const, If, Binary:
		// Treat a 0/1 integer expression as a boolean.
		f, err := c.compileInt(e)
		if err != nil {
			return nil, err
		}
		var out []bool
		c.emit()
		return func(b *core.Batch) []bool { //dbvet:hotpath
			v, nulls := f(b)
			out = resizeBool(out, b.N)
			for i := range out {
				out[i] = (nulls == nil || !nulls[i]) && v[i] != 0
			}
			return out
		}, nil
	}
	return nil, errVecUnsupported
}

func (c *vcompiler) compileCompareMask(e Compare) (vecMaskFn, error) {
	lk, err := e.L.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	if e.Op == types.Prefix {
		l, lerr := c.compileStr(e.L)
		if lerr != nil {
			return nil, lerr
		}
		r, rerr := c.compileStr(e.R)
		if rerr != nil {
			return nil, rerr
		}
		var out []bool
		c.emit()
		return func(b *core.Batch) []bool { //dbvet:hotpath
			av, an := l(b)
			pv, pn := r(b)
			out = resizeBool(out, b.N)
			for i := range out {
				a, p := av[i], pv[i]
				out[i] = (an == nil || !an[i]) && (pn == nil || !pn[i]) &&
					len(a) >= len(p) && a[:len(p)] == p
			}
			return out
		}, nil
	}
	rk, err := e.R.resultKind(c.kinds)
	if err != nil {
		return nil, err
	}
	useFloat := lk == types.Float64 || rk == types.Float64
	switch {
	case lk == types.String:
		l, err := c.compileStr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileStr(e.R)
		if err != nil {
			return nil, err
		}
		if e.Op == types.Between {
			r2, err := c.compileStr(e.R2)
			if err != nil {
				return nil, err
			}
			var out []bool
			c.emit()
			return func(b *core.Batch) []bool { //dbvet:hotpath
				av, an := l(b)
				lov, lon := r(b)
				hiv, hin := r2(b)
				out = resizeBool(out, b.N)
				for i := range out {
					out[i] = (an == nil || !an[i]) && (lon == nil || !lon[i]) && (hin == nil || !hin[i]) &&
						av[i] >= lov[i] && av[i] <= hiv[i]
				}
				return out
			}, nil
		}
		op := e.Op
		var out []bool
		c.emit()
		return func(b *core.Batch) []bool { //dbvet:hotpath
			av, an := l(b)
			bv, bn := r(b)
			out = resizeBool(out, b.N)
			for i := range out {
				out[i] = (an == nil || !an[i]) && (bn == nil || !bn[i]) &&
					cmpOrd(op, compareStr(av[i], bv[i]))
			}
			return out
		}, nil
	case useFloat:
		l, err := c.compileFloat(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileFloat(e.R)
		if err != nil {
			return nil, err
		}
		if e.Op == types.Between {
			r2, err := c.compileFloat(e.R2)
			if err != nil {
				return nil, err
			}
			var out []bool
			c.emit()
			return func(b *core.Batch) []bool { //dbvet:hotpath
				av, an := l(b)
				lov, lon := r(b)
				hiv, hin := r2(b)
				out = resizeBool(out, b.N)
				for i := range out {
					out[i] = (an == nil || !an[i]) && (lon == nil || !lon[i]) && (hin == nil || !hin[i]) &&
						av[i] >= lov[i] && av[i] <= hiv[i]
				}
				return out
			}, nil
		}
		op := e.Op
		var out []bool
		c.emit()
		return func(b *core.Batch) []bool { //dbvet:hotpath
			av, an := l(b)
			bv, bn := r(b)
			out = resizeBool(out, b.N)
			for i := range out {
				out[i] = (an == nil || !an[i]) && (bn == nil || !bn[i]) &&
					cmpOrd(op, compareF64(av[i], bv[i]))
			}
			return out
		}, nil
	default:
		l, err := c.compileInt(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileInt(e.R)
		if err != nil {
			return nil, err
		}
		if e.Op == types.Between {
			r2, err := c.compileInt(e.R2)
			if err != nil {
				return nil, err
			}
			var out []bool
			c.emit()
			return func(b *core.Batch) []bool { //dbvet:hotpath
				av, an := l(b)
				lov, lon := r(b)
				hiv, hin := r2(b)
				out = resizeBool(out, b.N)
				for i := range out {
					out[i] = (an == nil || !an[i]) && (lon == nil || !lon[i]) && (hin == nil || !hin[i]) &&
						av[i] >= lov[i] && av[i] <= hiv[i]
				}
				return out
			}, nil
		}
		op := e.Op
		var out []bool
		c.emit()
		return func(b *core.Batch) []bool { //dbvet:hotpath
			av, an := l(b)
			bv, bn := r(b)
			out = resizeBool(out, b.N)
			for i := range out {
				out[i] = (an == nil || !an[i]) && (bn == nil || !bn[i]) &&
					cmpOrd(op, compareI64(av[i], bv[i]))
			}
			return out
		}, nil
	}
}
