package exec

import (
	"fmt"
	"time"

	"datablocks/internal/compress"
	"datablocks/internal/core"
	"datablocks/internal/simd"
	"datablocks/internal/storage"
	"datablocks/internal/types"
)

// scanDriver drives one worker's pipeline over chunks. It owns all
// per-worker buffers (tuple register file, batch, match vectors).
type scanDriver struct {
	scan    *ScanNode
	mode    ScanMode
	vecSize int
	cons    func(*Tuple)
	kinds   []types.Kind
	stats   *CompileStats
	tuple   *Tuple
	batch   core.Batch

	// pipeFilter is the residual condition evaluated tuple-at-a-time:
	// Filter only in pushdown modes, Preds ∧ Filter otherwise. nil = none.
	pipeFilter boolFn

	// bcons, when non-nil, is the batch-at-a-time consumer chain: gathered
	// batches are handed over whole instead of being pushed tuple-wise.
	bcons batchConsumer
	// conjuncts are the residual condition's top-level conjuncts compiled
	// as vectorized masks (the batch twin of pipeFilter). The batch path
	// materializes lazily: each conjunct unpacks only the columns it
	// references, thins the match vector, and later conjuncts (and the
	// final projection) decompress survivors only.
	conjuncts []vconjunct
	// unpacked tracks which scan-output columns the current batch has
	// materialized; vsel is the selection-vector scratch.
	unpacked []bool
	vsel     []uint32

	// batchLoad copies one batch row into the tuple register file.
	batchLoad []func(b *core.Batch, row int, t *Tuple)

	// JIT scan code paths: one specialized path per storage-layout
	// combination (Figure 5), plus one for hot chunks.
	jitLayouts map[string]*layoutPath
	jitHot     *hotPath

	// Early probing of an upstream join (Appendix E).
	ep       *hashTable
	epRelCol int
	epVals   []int64

	matches  []uint32
	pushSARG bool
	usePSMA  bool

	// wp is this worker's profile shard (nil when the query is not being
	// profiled); its counters are plain, worker-owned cells.
	wp *workerProf
}

// layoutPath is the compiled scan code for one storage-layout combination.
type layoutPath struct {
	accessors []blockAccessor
	filter    boolFn
}

// blockAccessor loads one attribute of one row into a tuple slot. It is
// specialized at compile time on (kind, scheme, width) — the "unrolled"
// decompression code of §4.
type blockAccessor func(a *core.Attr, row int, t *Tuple, slot int)

// hotPath is the compiled tuple-at-a-time scan over uncompressed chunks.
type hotPath struct {
	loaders []func(h *storage.HotChunk, relCol, row int, t *Tuple, slot int)
	filter  boolFn
}

func (ex *executor) newScanDriver(scan *ScanNode, cons func(*Tuple), bcons batchConsumer, c *compiler, chunks []storage.ChunkView) (*scanDriver, error) {
	kinds, err := scan.OutKinds()
	if err != nil {
		return nil, err
	}
	d := &scanDriver{
		scan:    scan,
		mode:    ex.opt.Mode,
		vecSize: ex.opt.VectorSize,
		cons:    cons,
		bcons:   bcons,
		kinds:   kinds,
		stats:   c.stats,
		tuple:   NewTuple(len(kinds)),
		usePSMA: ex.opt.Mode == ModeVectorizedSARGPSMA,
		wp:      c.wp,
	}
	d.pushSARG = ex.opt.Mode == ModeVectorizedSARG || ex.opt.Mode == ModeVectorizedSARGPSMA
	for _, p := range scan.Preds {
		if scan.colOrdinal(p.Col) < 0 {
			return nil, fmt.Errorf("exec: predicate column %d not in scan projection", p.Col)
		}
	}
	filterExpr, err := d.residualExpr()
	if err != nil {
		return nil, err
	}
	if filterExpr != nil {
		cc := &compiler{kinds: kinds, stats: c.stats}
		d.pipeFilter, err = cc.compileBool(filterExpr)
		if err != nil {
			return nil, err
		}
		if d.bcons != nil {
			// The batch chain needs the residual as vectorized masks; if
			// any conjunct cannot be lowered, drop back to the tuple chain.
			vc := &vcompiler{kinds: kinds, stats: c.stats}
			for _, cj := range splitConjuncts(filterExpr, nil) {
				mask, verr := vc.compileMask(cj)
				if verr != nil {
					d.bcons = nil
					d.conjuncts = nil
					break
				}
				d.conjuncts = append(d.conjuncts, vconjunct{cols: exprCols(cj, nil), mask: mask})
			}
		}
	}
	if d.mode == ModeJIT {
		d.jitHot = d.compileHotPath(c)
		d.jitLayouts = make(map[string]*layoutPath)
		for i := range chunks {
			ch := &chunks[i]
			// Evicted chunks have no resident block to compile against;
			// their layout path is compiled lazily when the scan acquires
			// (reloads) the block.
			if ch.IsFrozen() && ch.Block() != nil {
				key := ch.Block().LayoutKey()
				if _, done := d.jitLayouts[key]; !done {
					lp, err := d.compileLayout(ch.Block(), c)
					if err != nil {
						return nil, err
					}
					d.jitLayouts[key] = lp
				}
			}
		}
	} else {
		if d.bcons == nil {
			// Tuple fallback: per-row copies from the gathered batch into
			// the register file. The batch chain needs no loaders — whole
			// vectors flow through.
			d.batchLoad = d.compileBatchLoaders(c)
		}
		if c.stats != nil {
			c.stats.ScanPaths++ // one interpreted vectorized path
		}
	}
	return d, nil
}

// residualExpr builds the condition evaluated inside the pipeline: the
// non-SARGable Filter, plus the SARGable predicates in modes that do not
// push them into the scan.
func (d *scanDriver) residualExpr() (Expr, error) {
	var conj Expr
	and := func(e Expr) {
		if conj == nil {
			conj = e
		} else {
			conj = And(conj, e)
		}
	}
	if d.mode == ModeJIT || d.mode == ModeVectorized {
		for _, p := range d.scan.Preds {
			slot := d.scan.colOrdinal(p.Col)
			e, err := predExpr(p, slot)
			if err != nil {
				return nil, err
			}
			and(e)
		}
	}
	if d.scan.Filter != nil {
		and(d.scan.Filter)
	}
	return conj, nil
}

// predExpr rewrites a SARGable predicate as a pipeline expression over the
// scan-output tuple.
func predExpr(p core.Predicate, slot int) (Expr, error) {
	switch p.Op {
	case types.IsNull:
		return IsNullExpr{E: Col(slot)}, nil
	case types.IsNotNull:
		return IsNullExpr{E: Col(slot), Not: true}, nil
	case types.Between:
		return Compare{Op: types.Between, L: Col(slot), R: Const{Val: p.Lo}, R2: Const{Val: p.Hi}}, nil
	default:
		return Compare{Op: p.Op, L: Col(slot), R: Const{Val: p.Lo}}, nil
	}
}

// compileBatchLoaders compiles the per-column copies from a scan batch into
// the tuple register file.
func (d *scanDriver) compileBatchLoaders(c *compiler) []func(b *core.Batch, row int, t *Tuple) {
	loaders := make([]func(b *core.Batch, row int, t *Tuple), len(d.kinds))
	for i, k := range d.kinds {
		slot := i
		switch k {
		case types.Int64:
			loaders[i] = func(b *core.Batch, row int, t *Tuple) {
				col := &b.Cols[slot]
				t.Ints[slot] = col.Ints[row]
				t.Nulls[slot] = col.Nulls != nil && col.Nulls[row]
			}
		case types.Float64:
			loaders[i] = func(b *core.Batch, row int, t *Tuple) {
				col := &b.Cols[slot]
				t.Floats[slot] = col.Floats[row]
				t.Nulls[slot] = col.Nulls != nil && col.Nulls[row]
			}
		default:
			loaders[i] = func(b *core.Batch, row int, t *Tuple) {
				col := &b.Cols[slot]
				t.Strs[slot] = col.Strs[row]
				t.Nulls[slot] = col.Nulls != nil && col.Nulls[row]
			}
		}
		c.emit()
	}
	return loaders
}

// compileHotPath compiles the tuple-at-a-time loaders over uncompressed
// chunk columns.
func (d *scanDriver) compileHotPath(c *compiler) *hotPath {
	hp := &hotPath{filter: d.pipeFilter}
	for _, k := range d.kinds {
		switch k {
		case types.Int64:
			hp.loaders = append(hp.loaders, func(h *storage.HotChunk, relCol, row int, t *Tuple, slot int) {
				t.Ints[slot] = h.Ints(relCol)[row]
				t.Nulls[slot] = h.IsNull(relCol, row)
			})
		case types.Float64:
			hp.loaders = append(hp.loaders, func(h *storage.HotChunk, relCol, row int, t *Tuple, slot int) {
				t.Floats[slot] = h.Floats(relCol)[row]
				t.Nulls[slot] = h.IsNull(relCol, row)
			})
		default:
			hp.loaders = append(hp.loaders, func(h *storage.HotChunk, relCol, row int, t *Tuple, slot int) {
				t.Strs[slot] = h.Strs(relCol)[row]
				t.Nulls[slot] = h.IsNull(relCol, row)
			})
		}
		c.emit()
	}
	if c.stats != nil {
		c.stats.ScanPaths++
	}
	return hp
}

// compileLayout generates the specialized ("unrolled", §4) scan code path
// for one storage-layout combination: one decompressing accessor per
// projected attribute plus a fresh clone of the residual filter. The work
// done here is what Figure 5 measures.
func (d *scanDriver) compileLayout(blk *core.Block, c *compiler) (*layoutPath, error) {
	lp := &layoutPath{}
	for i, relCol := range d.scan.Cols {
		acc, err := compileAccessor(blk.Attr(relCol), d.kinds[i], c)
		if err != nil {
			return nil, err
		}
		lp.accessors = append(lp.accessors, acc)
	}
	// Clone the filter for this code path (the paper's unrolled variants
	// each carry their own copies of the predicate code).
	if expr, err := d.residualExpr(); err != nil {
		return nil, err
	} else if expr != nil {
		cc := &compiler{kinds: d.kinds, stats: c.stats}
		f, err := cc.compileBool(expr)
		if err != nil {
			return nil, err
		}
		lp.filter = f
	}
	if c.stats != nil {
		c.stats.ScanPaths++
	}
	return lp, nil
}

// compileAccessor specializes decompression on (kind, scheme, width).
func compileAccessor(a *core.Attr, kind types.Kind, c *compiler) (blockAccessor, error) {
	defer c.emit()
	loadNull := func(a *core.Attr, row int) bool {
		return a.Validity != nil && !simd.BitmapGet(a.Validity, uint32(row))
	}
	switch kind {
	case types.Int64:
		switch a.Ints.Scheme {
		case compress.SingleValue:
			allNull := a.Ints.AllNull
			return func(a *core.Attr, row int, t *Tuple, slot int) {
				t.Ints[slot] = a.Ints.Single
				t.Nulls[slot] = allNull || loadNull(a, row)
			}, nil
		case compress.Truncation:
			switch a.Ints.Width {
			case 1:
				return func(a *core.Attr, row int, t *Tuple, slot int) {
					t.Ints[slot] = a.Ints.Min + int64(a.Ints.Data[row])
					t.Nulls[slot] = loadNull(a, row)
				}, nil
			case 2:
				return func(a *core.Attr, row int, t *Tuple, slot int) {
					t.Ints[slot] = a.Ints.Min + int64(simd.ReadUint(a.Ints.Data, row, 2))
					t.Nulls[slot] = loadNull(a, row)
				}, nil
			default:
				return func(a *core.Attr, row int, t *Tuple, slot int) {
					t.Ints[slot] = a.Ints.Min + int64(simd.ReadUint(a.Ints.Data, row, 4))
					t.Nulls[slot] = loadNull(a, row)
				}, nil
			}
		case compress.Dictionary:
			width := a.Ints.Width
			return func(a *core.Attr, row int, t *Tuple, slot int) {
				t.Ints[slot] = a.Ints.Dict[simd.ReadUint(a.Ints.Data, row, width)]
				t.Nulls[slot] = loadNull(a, row)
			}, nil
		default:
			return func(a *core.Attr, row int, t *Tuple, slot int) {
				t.Ints[slot] = compress.UnbiasInt(simd.ReadUint(a.Ints.Data, row, 8))
				t.Nulls[slot] = loadNull(a, row)
			}, nil
		}
	case types.Float64:
		if a.Floats.Scheme == compress.SingleValue {
			allNull := a.Floats.AllNull
			return func(a *core.Attr, row int, t *Tuple, slot int) {
				t.Floats[slot] = a.Floats.Single
				t.Nulls[slot] = allNull || loadNull(a, row)
			}, nil
		}
		return func(a *core.Attr, row int, t *Tuple, slot int) {
			t.Floats[slot] = a.Floats.Values[row]
			t.Nulls[slot] = loadNull(a, row)
		}, nil
	case types.String:
		if a.Strs.Scheme == compress.SingleValue {
			allNull := a.Strs.AllNull
			return func(a *core.Attr, row int, t *Tuple, slot int) {
				t.Strs[slot] = a.Strs.Single
				t.Nulls[slot] = allNull || loadNull(a, row)
			}, nil
		}
		width := a.Strs.Width
		return func(a *core.Attr, row int, t *Tuple, slot int) {
			t.Strs[slot] = a.Strs.Dict[simd.ReadUint(a.Strs.Data, row, width)]
			t.Nulls[slot] = loadNull(a, row)
		}, nil
	}
	return nil, fmt.Errorf("exec: unsupported kind %v", kind)
}

// processChunk runs the pipeline over one morsel. The chunk view is an
// immutable snapshot: the driver never re-reads mutable relation state, so
// concurrent inserts, deletes and hot→cold freezes cannot tear a scan.
// Frozen views are acquired first — pinning the block in RAM, reloading
// it from the block store when the chunk was evicted — so the budget
// evictor cannot pull the block out from under the scan.
func (d *scanDriver) processChunk(ch *storage.ChunkView) error {
	if ch.IsFrozen() {
		if d.wp != nil {
			t0 := time.Now()
			reloaded, err := ch.AcquireReload()
			d.wp.scan.pinWaitNs.Add(uint64(time.Since(t0)))
			if err != nil {
				return err
			}
			if reloaded {
				d.wp.scan.reloads.Inc()
			}
		} else if err := ch.Acquire(); err != nil {
			return err
		}
		defer ch.Release()
		if d.mode == ModeJIT {
			// JIT never probes the SMA, so every frozen chunk is visited.
			if d.wp != nil {
				d.wp.scan.frozenChunks.Inc()
			}
			return d.jitBlock(ch)
		}
		// vecBlock attributes the chunk to visited or SMA-skipped itself.
		return d.vecBlock(ch)
	}
	if d.wp != nil {
		d.wp.scan.hotChunks.Inc()
	}
	if ch.Rows() == 0 {
		return nil
	}
	if d.mode == ModeJIT {
		return d.jitHotChunk(ch)
	}
	return d.vecHot(ch)
}

// processChunkTimed is processChunk under the profiler's per-worker
// morsel/busy accounting; identical when unprofiled.
func (d *scanDriver) processChunkTimed(ch *storage.ChunkView) error {
	if d.wp == nil {
		return d.processChunk(ch)
	}
	d.wp.morsel.Inc()
	t0 := time.Now()
	err := d.processChunk(ch)
	d.wp.busyNs.Add(uint64(time.Since(t0)))
	return err
}

// jitBlock scans a frozen block tuple-at-a-time through the layout's
// specialized code path.
func (d *scanDriver) jitBlock(ch *storage.ChunkView) error {
	blk := ch.Block()
	key := blk.LayoutKey()
	lp := d.jitLayouts[key]
	if lp == nil {
		// A layout frozen after compilation: generate its path lazily
		// (and pay the compile cost now).
		var err error
		lp, err = d.compileLayout(blk, &compiler{kinds: d.kinds, stats: d.stats})
		if err != nil {
			return err
		}
		d.jitLayouts[key] = lp
	}
	t := d.tuple
	n := ch.Rows()
	for row := 0; row < n; row++ {
		if ch.IsDeleted(row) {
			continue
		}
		for i, acc := range lp.accessors {
			acc(blk.Attr(d.scan.Cols[i]), row, t, i)
		}
		if lp.filter == nil || lp.filter(t) {
			d.cons(t)
		}
	}
	return nil
}

// jitHotChunk scans an uncompressed chunk tuple-at-a-time.
func (d *scanDriver) jitHotChunk(ch *storage.ChunkView) error {
	h := ch.Hot()
	t := d.tuple
	// Iterate to the view's watermark: rows appended after the snapshot
	// are not part of the view.
	n := ch.Rows()
	for row := 0; row < n; row++ {
		if ch.IsDeleted(row) {
			continue
		}
		for i, load := range d.jitHot.loaders {
			load(h, d.scan.Cols[i], row, t, i)
		}
		if d.jitHot.filter == nil || d.jitHot.filter(t) {
			d.cons(t)
		}
	}
	return nil
}

// vecBlock scans a frozen block through the interpreted vectorized scan
// (Figure 6, left path). Deleted tuples are filtered here through the
// view's epoch cutoff rather than via ScanSpec.Deleted: the view shares
// the live delete bitmap zero-copy, so raw word access inside the scanner
// would race concurrent delete stamps.
func (d *scanDriver) vecBlock(ch *storage.ChunkView) error {
	spec := core.ScanSpec{
		Project:    d.scan.Cols,
		VectorSize: d.vecSize,
		UsePSMA:    d.usePSMA,
	}
	if d.pushSARG {
		spec.Preds = d.scan.Preds
	}
	sc, err := core.NewScanner(ch.Block(), spec)
	if err != nil {
		return err
	}
	var s *scanShard
	var totalVec, produced uint64
	if d.wp != nil {
		s = &d.wp.scan
		if sc.SkippedBySMA() {
			s.skippedChunks.Inc()
		} else {
			s.frozenChunks.Inc()
		}
		// ScanRange must be read before iterating: the cursor advances.
		if begin, end := sc.ScanRange(); end > begin {
			totalVec = uint64((end - begin + d.vecSize - 1) / d.vecSize)
		}
	}
	for {
		m, ok := sc.NextMatches()
		if !ok {
			if s != nil {
				// NextMatches skips SARG-emptied vectors internally, so the
				// pruned count is the vectors the range held minus the
				// vectors that surfaced.
				s.vectors.Add(totalVec)
				s.prunedVectors.Add(totalVec - produced)
			}
			return nil
		}
		produced++
		m = ch.FilterVisible(m)
		if len(m) == 0 {
			continue
		}
		if d.ep != nil {
			m = d.earlyProbeBlock(ch.Block(), m)
			if len(m) == 0 {
				continue
			}
		}
		if s != nil {
			s.rowsMatched.Add(uint64(len(m)))
		}
		if d.bcons != nil {
			d.lazyPush(m, func(col int, m []uint32) {
				sc.UnpackColumn(&d.batch, col, m)
			})
			continue
		}
		sc.Unpack(&d.batch, m)
		if s != nil {
			s.unpacks.Add(uint64(len(d.kinds)))
		}
		d.pushBatch()
	}
}

// lazyPush drives the late-materializing batch flow over one match vector:
// residual conjuncts unpack only the columns they reference and thin the
// match vector in place; columns not needed by any conjunct are unpacked
// for the surviving positions only, and the finished batch goes to the
// batch consumer whole.
func (d *scanDriver) lazyPush(m []uint32, unpackCol func(col int, m []uint32)) {
	b := &d.batch
	b.N = len(m)
	b.Pos = append(b.Pos[:0], m...)
	if d.unpacked == nil {
		d.unpacked = make([]bool, len(d.kinds))
	}
	for i := range d.unpacked {
		d.unpacked[i] = false
	}
	for i := range d.conjuncts {
		cj := &d.conjuncts[i]
		for _, col := range cj.cols {
			if !d.unpacked[col] {
				unpackCol(col, b.Pos)
				if d.wp != nil {
					d.wp.scan.unpacks.Inc()
				}
				d.unpacked[col] = true
			}
		}
		mask := cj.mask(b)
		sel := resizeU32(d.vsel, b.N)[:0]
		for r := 0; r < b.N; r++ {
			if mask[r] {
				sel = append(sel, uint32(r))
			}
		}
		d.vsel = sel
		if len(sel) == b.N {
			continue
		}
		if len(sel) == 0 {
			return
		}
		d.compactUnpacked(sel)
	}
	for col := range d.kinds {
		if !d.unpacked[col] {
			unpackCol(col, b.Pos)
			if d.wp != nil {
				d.wp.scan.unpacks.Inc()
			}
		}
	}
	d.bcons(b)
}

// compactUnpacked keeps only the selected rows of the already-unpacked
// columns and of the position vector.
func (d *scanDriver) compactUnpacked(sel []uint32) {
	b := &d.batch
	for col, up := range d.unpacked {
		if !up {
			continue
		}
		c := &b.Cols[col]
		switch c.Kind {
		case types.Int64:
			for i, p := range sel {
				c.Ints[i] = c.Ints[p]
			}
			c.Ints = c.Ints[:len(sel)]
		case types.Float64:
			for i, p := range sel {
				c.Floats[i] = c.Floats[p]
			}
			c.Floats = c.Floats[:len(sel)]
		default:
			for i, p := range sel {
				c.Strs[i] = c.Strs[p]
			}
			c.Strs = c.Strs[:len(sel)]
		}
		if c.Nulls != nil {
			for i, p := range sel {
				c.Nulls[i] = c.Nulls[p]
			}
			c.Nulls = c.Nulls[:len(sel)]
		}
	}
	for i, p := range sel {
		b.Pos[i] = b.Pos[p]
	}
	b.Pos = b.Pos[:len(sel)]
	b.N = len(sel)
}

// earlyProbeBlock thins a match vector against the upstream join's tag
// table before unpacking (Appendix E): only the key column is gathered.
func (d *scanDriver) earlyProbeBlock(blk *core.Block, m []uint32) []uint32 {
	if cap(d.epVals) < len(m) {
		d.epVals = make([]int64, len(m))
	}
	vals := d.epVals[:len(m)]
	blk.Attr(d.epRelCol).Ints.Gather(m, vals)
	w := 0
	for i, p := range m {
		if d.ep.testTagInt(vals[i]) {
			m[w] = p
			w++
		}
	}
	return m[:w]
}

func (d *scanDriver) earlyProbeHot(h *storage.HotChunk, m []uint32) []uint32 {
	col := h.Ints(d.epRelCol)
	w := 0
	for _, p := range m {
		if d.ep.testTagInt(col[p]) {
			m[w] = p
			w++
		}
	}
	return m[:w]
}

// pushBatch feeds the unpacked batch tuple-at-a-time into the compiled
// pipeline (Figure 6: "matches are pushed to the query pipeline tuple at a
// time") — the fallback when no batch chain is active.
func (d *scanDriver) pushBatch() {
	t := d.tuple
	for row := 0; row < d.batch.N; row++ {
		for _, load := range d.batchLoad {
			load(&d.batch, row, t)
		}
		if d.pipeFilter == nil || d.pipeFilter(t) {
			d.cons(t)
		}
	}
}
