package exec

import (
	"testing"

	"datablocks/internal/types"
)

// topkRef computes the reference answer for ORDER BY ... LIMIT by running
// the same plan with Limit = 0 (which takes the materialize + SortBy path)
// and truncating afterwards — the contract the top-k sink must match
// row-for-row, including stable resolution of ties.
func topkRef(t *testing.T, child Node, keys []OrderKey, limit int, opt Options) *Result {
	t.Helper()
	res, err := Run(&OrderByNode{Child: child, Keys: keys}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if limit < res.n {
		idx := make([]int, limit)
		for i := range idx {
			idx[i] = i
		}
		res.permute(idx)
	}
	return res
}

// TestTopKMatchesSortBy proves the streaming top-k sink is result-identical
// to full materialization + stable sort + truncate, across tie-heavy and
// NULL-bearing keys, ascending/descending mixes, batch and tuple consume
// paths, and limits straddling the input size.
func TestTopKMatchesSortBy(t *testing.T) {
	rel := ordersRel(t, 3000, 1<<10, 2)
	// status (col 2) is a 4-value nullable string column: maximal ties plus
	// NULLs-first handling. qty (col 3) has 50 distinct values: more ties.
	keySets := map[string][]OrderKey{
		"ties+nulls":    {{Col: 2}, {Col: 3, Desc: true}},
		"desc+nulls":    {{Col: 2, Desc: true}, {Col: 1}},
		"numeric":       {{Col: 1, Desc: true}, {Col: 0}},
		"all-tied-tail": {{Col: 3}}, // huge tie groups decided by arrival order
	}
	limits := []int{1, 7, 25, 2999, 3000, 5000}
	for name, keys := range keySets {
		for _, limit := range limits {
			for _, tuple := range []bool{false, true} {
				opt := Options{Mode: ModeVectorizedSARG, TupleAtATime: tuple}
				want := topkRef(t, &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}}, keys, limit, opt)
				got, err := Run(&OrderByNode{
					Child: &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}},
					Keys:  keys,
					Limit: limit,
				}, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.String() != want.String() {
					t.Fatalf("%s limit=%d tuple=%v: top-k diverges from SortBy\n got:\n%s\nwant:\n%s",
						name, limit, tuple, got.String(), want.String())
				}
			}
		}
	}
}

// TestTopKParallelAndFiltered covers the remaining execution shapes: a
// filter below the order (streamableChain recursion) and parallel morsel
// workers (per-worker sinks merged then re-sorted). The key list ends in
// the unique okey column so the expected answer is a total order —
// deterministic under any worker interleaving.
func TestTopKParallelAndFiltered(t *testing.T) {
	rel := ordersRel(t, 4000, 1<<10, 3)
	keys := []OrderKey{{Col: 3, Desc: true}, {Col: 0}}
	child := func() Node {
		return &FilterNode{
			Child: &ScanNode{Rel: rel, Cols: []int{0, 1, 2, 3}},
			Cond:  Cmp(types.Ge, Col(3), CInt(5)),
		}
	}
	want := topkRef(t, child(), keys, 40, Options{Mode: ModeVectorizedSARG})
	for _, par := range []int{1, 4} {
		got, err := Run(&OrderByNode{Child: child(), Keys: keys, Limit: 40},
			Options{Mode: ModeVectorizedSARG, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("parallelism=%d: top-k diverges\n got:\n%s\nwant:\n%s",
				par, got.String(), want.String())
		}
	}
}
