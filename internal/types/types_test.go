package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchema(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Kind: Int64},
		Column{Name: "b", Kind: String, Nullable: true},
	)
	if s.NumColumns() != 2 {
		t.Fatalf("NumColumns = %d", s.NumColumns())
	}
	if s.ColumnIndex("b") != 1 || s.ColumnIndex("missing") != -1 {
		t.Fatal("ColumnIndex broken")
	}
	if s.MustColumn("a") != 0 {
		t.Fatal("MustColumn broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustColumn should panic on missing column")
		}
	}()
	s.MustColumn("missing")
}

func TestSchemaRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column accepted")
		}
	}()
	NewSchema(Column{Name: "a", Kind: Int64}, Column{Name: "a", Kind: String})
}

func TestSchemaNames(t *testing.T) {
	s := NewSchema(Column{Name: "x", Kind: Int64}, Column{Name: "y", Kind: Float64})
	names := s.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("Names = %v", names)
	}
}

func TestValueAccessors(t *testing.T) {
	if IntValue(7).Int() != 7 || FloatValue(1.5).Float() != 1.5 || StringValue("x").Str() != "x" {
		t.Fatal("accessors broken")
	}
	n := NullValue(Int64)
	if !n.IsNull() || n.Kind() != Int64 {
		t.Fatal("null broken")
	}
	var zero Value
	if !zero.IsZero() || IntValue(0).IsZero() {
		t.Fatal("IsZero broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on string should panic")
		}
	}()
	StringValue("x").Int()
}

func TestValueEqualCompare(t *testing.T) {
	if !IntValue(3).Equal(IntValue(3)) || IntValue(3).Equal(IntValue(4)) {
		t.Fatal("Equal broken")
	}
	if !NullValue(Int64).Equal(NullValue(Int64)) {
		t.Fatal("NULL identity broken")
	}
	if NullValue(Int64).Equal(IntValue(0)) {
		t.Fatal("NULL equals 0")
	}
	if IntValue(1).Compare(IntValue(2)) != -1 || StringValue("b").Compare(StringValue("a")) != 1 {
		t.Fatal("Compare broken")
	}
	if FloatValue(1.5).Compare(FloatValue(1.5)) != 0 {
		t.Fatal("float Compare broken")
	}
}

func TestDateRoundTrip(t *testing.T) {
	f := func(off uint16) bool {
		days := int64(off) // 1970..~2149
		y, m, d := DaysToDate(days)
		return DateToDays(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if DateToDays(1970, time.January, 1) != 0 {
		t.Fatal("epoch broken")
	}
	if DateToDays(1998, time.September, 2) <= DateToDays(1994, time.January, 1) {
		t.Fatal("ordering broken")
	}
}

func TestCompareOpStrings(t *testing.T) {
	for _, op := range []CompareOp{Eq, Ne, Lt, Le, Gt, Ge, Between, IsNull, IsNotNull, Prefix} {
		if op.String() == "" {
			t.Fatalf("empty String() for op %d", op)
		}
	}
	for _, k := range []Kind{Int64, Float64, String} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
}
