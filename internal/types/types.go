// Package types defines the logical type system shared by the storage
// engine, the Data Block format, and the query engine.
//
// The design follows the paper's §3.3: every fixed-size SQL type the
// evaluation touches (integers, dates, decimals, char(1)) is represented as a
// 64-bit integer in the uncompressed hot store, strings are variable-length,
// and doubles are IEEE float64. Dates are days since the Unix epoch and
// decimals are scaled integers, so all SARGable predicate evaluation reduces
// to integer comparisons.
package types

import (
	"fmt"
	"math"
	"time"
)

// Kind enumerates the logical column types.
type Kind uint8

const (
	// Int64 covers integers, dates (days since epoch), decimals (scaled)
	// and char(1) (stored as a 32-bit rune widened to int64).
	Int64 Kind = iota
	// Float64 is an IEEE-754 double. Doubles are never truncated (§3.3).
	Float64
	// String is a variable-length UTF-8 string.
	String
)

func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name     string
	Kind     Kind
	Nullable bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// unique.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("types: duplicate column name %q", c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// ColumnIndex returns the ordinal of the named column, or -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustColumn returns the ordinal of the named column and panics if absent.
// Intended for hand-written physical plans where a miss is a programming
// error.
func (s *Schema) MustColumn(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("types: unknown column %q", name))
	}
	return i
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// CompareOp enumerates the SARGable comparison operators of §3: =, is, <, ≤,
// >, ≥, between.
type CompareOp uint8

const (
	Eq CompareOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Between // inclusive on both ends, as in SQL BETWEEN
	IsNull
	IsNotNull
	// Prefix is a LIKE 'p%' predicate on string columns; it is SARGable
	// because the ordered dictionary maps it to a code range.
	Prefix
)

func (op CompareOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Between:
		return "between"
	case IsNull:
		return "is null"
	case IsNotNull:
		return "is not null"
	case Prefix:
		return "like-prefix"
	default:
		return fmt.Sprintf("CompareOp(%d)", uint8(op))
	}
}

// Value is a dynamically typed cell value used at API boundaries (inserts,
// point lookups, query results). The hot paths inside scans never allocate
// Values; they work on typed column slices.
type Value struct {
	kind  Kind
	null  bool
	i     int64
	f     float64
	s     string
	valid bool // distinguishes the zero Value from a typed one
}

// NullValue returns the NULL of the given kind.
func NullValue(k Kind) Value { return Value{kind: k, null: true, valid: true} }

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{kind: Int64, i: v, valid: true} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{kind: Float64, f: v, valid: true} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{kind: String, s: v, valid: true} }

// DateValue wraps a calendar date as days since the Unix epoch.
func DateValue(year int, month time.Month, day int) Value {
	return IntValue(DateToDays(year, month, day))
}

// DateToDays converts a calendar date to days since the Unix epoch.
func DateToDays(year int, month time.Month, day int) int64 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// DaysToDate converts days since the Unix epoch back to a calendar date.
func DaysToDate(days int64) (year int, month time.Month, day int) {
	t := time.Unix(days*86400, 0).UTC()
	return t.Year(), t.Month(), t.Day()
}

// Kind reports the value's logical type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.null }

// IsZero reports whether v is the uninitialized zero Value (no type at all).
func (v Value) IsZero() bool { return !v.valid }

// Int returns the int64 payload. It panics on a non-integer or NULL value.
func (v Value) Int() int64 {
	if v.kind != Int64 || v.null {
		panic(fmt.Sprintf("types: Int() on %s", v))
	}
	return v.i
}

// Float returns the float64 payload. It panics on a non-float or NULL value.
func (v Value) Float() float64 {
	if v.kind != Float64 || v.null {
		panic(fmt.Sprintf("types: Float() on %s", v))
	}
	return v.f
}

// Str returns the string payload. It panics on a non-string or NULL value.
func (v Value) Str() string {
	if v.kind != String || v.null {
		panic(fmt.Sprintf("types: Str() on %s", v))
	}
	return v.s
}

// Equal reports deep equality (NULL equals NULL here; this is identity, not
// SQL three-valued logic).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind || v.null != o.null {
		return false
	}
	if v.null {
		return true
	}
	switch v.kind {
	case Int64:
		return v.i == o.i
	case Float64:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case String:
		return v.s == o.s
	}
	return false
}

// Compare orders two non-null values of the same kind: -1, 0, +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		panic(fmt.Sprintf("types: comparing %s with %s", v.kind, o.kind))
	}
	if v.null || o.null {
		panic("types: comparing NULL values")
	}
	switch v.kind {
	case Int64:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case Float64:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case String:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	}
	return 0
}

func (v Value) String() string {
	if !v.valid {
		return "<zero>"
	}
	if v.null {
		return "NULL"
	}
	switch v.kind {
	case Int64:
		return fmt.Sprintf("%d", v.i)
	case Float64:
		return fmt.Sprintf("%g", v.f)
	case String:
		return fmt.Sprintf("%q", v.s)
	}
	return "<invalid>"
}

// Row is a tuple of values, one per schema column.
type Row []Value
