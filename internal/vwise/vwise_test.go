package vwise

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

func roundTripInts(t *testing.T, values []int64, wantScheme Scheme) *IntColumn {
	t.Helper()
	c := EncodeInts(values)
	if wantScheme != Raw || c.Scheme == Raw {
		// only check when caller cares
	}
	out := make([]int64, len(values))
	c.Decompress(out)
	for i, want := range values {
		if out[i] != want {
			t.Fatalf("scheme %v: out[%d] = %d, want %d", c.Scheme, i, out[i], want)
		}
	}
	return c
}

func TestPFORWithOutliers(t *testing.T) {
	// Mostly small values with rare huge outliers: PFOR's home turf.
	r := rand.New(rand.NewSource(1))
	values := make([]int64, 10000)
	for i := range values {
		values[i] = int64(r.Intn(100))
		if r.Intn(100) == 0 {
			values[i] = int64(r.Uint32()) << 16 // outlier
		}
	}
	c := roundTripInts(t, values, PFOR)
	if c.Scheme != PFOR {
		t.Fatalf("scheme = %v, want PFOR", c.Scheme)
	}
	if len(c.ExcPos) == 0 {
		t.Fatal("expected patched exceptions")
	}
	if got, limit := len(c.ExcPos), int(float64(len(values))*2*exceptionRate)+64; got > limit {
		t.Fatalf("too many exceptions: %d > %d", got, limit)
	}
	if c.CompressedSize() >= 8*len(values) {
		t.Fatalf("PFOR did not compress: %d", c.CompressedSize())
	}
}

func TestPFORDeltaOnSortedData(t *testing.T) {
	values := make([]int64, 10000)
	v := int64(1 << 40)
	r := rand.New(rand.NewSource(2))
	for i := range values {
		v += int64(r.Intn(5))
		values[i] = v
	}
	c := roundTripInts(t, values, PFORDelta)
	if c.Scheme != PFORDelta {
		t.Fatalf("scheme = %v, want PFORDelta", c.Scheme)
	}
	// Sorted data with tiny deltas compresses drastically.
	if c.CompressedSize() > len(values) {
		t.Fatalf("delta compression too weak: %d bytes", c.CompressedSize())
	}
}

func TestPDICTOnSparseDomain(t *testing.T) {
	domain := []int64{-(1 << 50), 0, 1 << 30, 1 << 60}
	values := make([]int64, 5000)
	for i := range values {
		values[i] = domain[i%len(domain)]
	}
	c := roundTripInts(t, values, PDICT)
	if c.Scheme != PDICT {
		t.Fatalf("scheme = %v, want PDICT", c.Scheme)
	}
}

func TestIntsQuick(t *testing.T) {
	f := func(values []int64) bool {
		if len(values) == 0 {
			return true
		}
		c := EncodeInts(values)
		out := make([]int64, len(values))
		c.Decompress(out)
		for i := range values {
			if out[i] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringsRoundTrip(t *testing.T) {
	values := []string{"mail", "air", "truck", "air", "ship", "mail", "air"}
	c := EncodeStrings(values)
	out := make([]string, len(values))
	c.Decompress(out)
	for i := range values {
		if out[i] != values[i] {
			t.Fatalf("out[%d] = %q", i, out[i])
		}
	}
}

func TestTableScanAndLookup(t *testing.T) {
	n := 5000
	cols := []core.ColumnData{
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Float64, Floats: make([]float64, n)},
		{Kind: types.String, Strs: make([]string, n)},
	}
	for i := 0; i < n; i++ {
		cols[0].Ints[i] = int64(i)
		cols[1].Floats[i] = float64(i) / 4
		cols[2].Strs[i] = []string{"x", "y", "z"}[i%3]
	}
	tbl, err := NewTable(cols, n, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumChunks() != 5 {
		t.Fatalf("chunks = %d", tbl.NumChunks())
	}
	// Full scan sums the key column.
	var sum, want int64
	tbl.ScanInts(0, func(base int, vals []int64) {
		for _, v := range vals {
			sum += v
		}
	})
	for i := 0; i < n; i++ {
		want += int64(i)
	}
	if sum != want {
		t.Fatalf("scan sum = %d, want %d", sum, want)
	}
	// Scan-based point lookup.
	if row := tbl.PointLookup(0, 3456); row != 3456 {
		t.Fatalf("lookup = %d", row)
	}
	if row := tbl.PointLookup(0, 99999); row != -1 {
		t.Fatalf("missing key found at %d", row)
	}
	if got := tbl.GetInt(0, 4321); got != 4321 {
		t.Fatalf("GetInt = %d", got)
	}
	// Strings and floats decompress correctly chunk-wise.
	tbl.ScanStrs(2, func(base int, vals []string) {
		for i, s := range vals {
			if s != []string{"x", "y", "z"}[(base+i)%3] {
				t.Fatalf("string mismatch at %d", base+i)
			}
		}
	})
	tbl.ScanFloats(1, func(base int, vals []float64) {
		for i, f := range vals {
			if f != float64(base+i)/4 {
				t.Fatalf("float mismatch at %d", base+i)
			}
		}
	})
}

func TestVectorwiseCompressesTighter(t *testing.T) {
	// On narrow-domain data, bit-packing should beat byte-aligned codes;
	// this is the Table 1 relationship (Vectorwise ~25% smaller).
	n := 1 << 16
	values := make([]int64, n)
	r := rand.New(rand.NewSource(3))
	for i := range values {
		values[i] = int64(r.Intn(512)) // 9 bits; Data Blocks must use 2 bytes
	}
	c := EncodeInts(values)
	if c.CompressedSize() >= 2*n {
		t.Fatalf("vwise size %d not below byte-aligned %d", c.CompressedSize(), 2*n)
	}
}
