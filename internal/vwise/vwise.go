// Package vwise implements a Vectorwise-style compressed columnar baseline
// (Zukowski et al. [39, 40]): PFOR (patched frame-of-reference),
// PFOR-DELTA, and PDICT, with sub-byte bit-packed codes and exception
// "patching" for outliers.
//
// The paper compares Data Blocks against this design in three places:
// Table 1 (Vectorwise compresses ~25% smaller thanks to bit-packing and
// patching), Table 2 (query processing on compressed Vectorwise storage is
// *slower* than uncompressed because scans fully decompress and never
// filter early), and Table 3 (point lookups run as scans, ~17/s). The
// package therefore offers exactly those capabilities: compressed sizes,
// full-column decompression for scans, and scan-based point lookups.
package vwise

import (
	"fmt"
	"sort"

	"datablocks/internal/bitpack"
)

// Scheme identifies a Vectorwise compression method.
type Scheme uint8

const (
	Raw Scheme = iota
	PFOR
	PFORDelta
	PDICT
)

func (s Scheme) String() string {
	switch s {
	case Raw:
		return "raw"
	case PFOR:
		return "pfor"
	case PFORDelta:
		return "pfor-delta"
	case PDICT:
		return "pdict"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// exceptionRate is the tolerated fraction of patched outliers; the bit
// width is chosen so that at most this share of values become exceptions.
const exceptionRate = 0.03

// IntColumn is one compressed integer column.
type IntColumn struct {
	Scheme Scheme
	N      int
	Min    int64 // frame of reference
	Packed *bitpack.Vector
	ExcPos []uint32
	ExcVal []int64
	Dict   []int64
	Raw    []int64
}

// EncodeInts compresses a column, choosing the smallest of PFOR,
// PFOR-DELTA, PDICT and raw storage.
func EncodeInts(values []int64) *IntColumn {
	if len(values) == 0 {
		return &IntColumn{Scheme: Raw}
	}
	candidates := []*IntColumn{
		encodePFOR(values, false),
		encodePFOR(values, true),
		encodePDICT(values),
	}
	best := &IntColumn{Scheme: Raw, N: len(values), Raw: append([]int64(nil), values...)}
	bestSize := best.CompressedSize()
	for _, c := range candidates {
		if c == nil {
			continue
		}
		if s := c.CompressedSize(); s < bestSize {
			best, bestSize = c, s
		}
	}
	return best
}

// zigzag maps signed deltas to unsigned codes.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodePFOR builds a patched FOR column; with delta=true it encodes
// zigzagged differences between consecutive values (PFOR-DELTA).
func encodePFOR(values []int64, delta bool) *IntColumn {
	codes := make([]uint64, len(values))
	if delta {
		prev := int64(0)
		for i, v := range values {
			codes[i] = zigzag(v - prev)
			prev = v
		}
	} else {
		min := values[0]
		for _, v := range values {
			if v < min {
				min = v
			}
		}
		for i, v := range values {
			codes[i] = uint64(v) - uint64(min)
		}
	}
	// Histogram of required bit widths; codes wider than 32 bits can only
	// ever be exceptions.
	var widthCount [34]int
	for _, c := range codes {
		w := bitsFor(c)
		if w > 32 {
			w = 33
		}
		widthCount[w]++
	}
	// Smallest width covering (1 - exceptionRate) of the values.
	budget := int(float64(len(values)) * (1 - exceptionRate))
	cum, bits := 0, 32
	for b := 0; b <= 32; b++ {
		cum += widthCount[b]
		if cum >= budget {
			bits = b
			break
		}
	}
	if bits == 0 {
		bits = 1
	}
	if bits > 32 {
		return nil // codes too wide to bit-pack
	}
	max := uint64(1)<<uint(bits) - 1
	packed := make([]uint32, len(values))
	col := &IntColumn{Scheme: PFOR, N: len(values)}
	if delta {
		col.Scheme = PFORDelta
	} else {
		min := values[0]
		for _, v := range values {
			if v < min {
				min = v
			}
		}
		col.Min = min
	}
	for i, c := range codes {
		if c > max {
			col.ExcPos = append(col.ExcPos, uint32(i))
			col.ExcVal = append(col.ExcVal, int64(c))
			continue
		}
		packed[i] = uint32(c)
	}
	v, err := bitpack.Pack(packed, bits)
	if err != nil {
		return nil
	}
	col.Packed = v
	return col
}

func encodePDICT(values []int64) *IntColumn {
	dict := append([]int64(nil), values...)
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	w := 1
	for i := 1; i < len(dict); i++ {
		if dict[i] != dict[w-1] {
			dict[w] = dict[i]
			w++
		}
	}
	dict = dict[:w]
	if w > 1<<22 { // dictionary too large to be useful
		return nil
	}
	bits := bitsFor(uint64(w - 1))
	if bits == 0 {
		bits = 1
	}
	idx := make(map[int64]uint32, w)
	for i, d := range dict {
		idx[d] = uint32(i)
	}
	packed := make([]uint32, len(values))
	for i, v := range values {
		packed[i] = idx[v]
	}
	pv, err := bitpack.Pack(packed, bits)
	if err != nil {
		return nil
	}
	return &IntColumn{Scheme: PDICT, N: len(values), Dict: dict, Packed: pv}
}

func bitsFor(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// Decompress materializes the whole column into out (length N) — the only
// scan access path: Vectorwise "does not do any early filtering in scans
// and fully decompresses all scanned column ranges" (§2).
func (c *IntColumn) Decompress(out []int64) {
	switch c.Scheme {
	case Raw:
		copy(out, c.Raw)
	case PFOR:
		tmp := make([]uint32, c.N)
		c.Packed.UnpackAll(tmp)
		for i, code := range tmp {
			out[i] = int64(uint64(c.Min) + uint64(code))
		}
		for i, p := range c.ExcPos {
			out[p] = int64(uint64(c.Min) + uint64(c.ExcVal[i]))
		}
	case PFORDelta:
		tmp := make([]uint32, c.N)
		c.Packed.UnpackAll(tmp)
		deltas := make([]int64, c.N)
		for i, code := range tmp {
			deltas[i] = unzigzag(uint64(code))
		}
		for i, p := range c.ExcPos {
			deltas[p] = unzigzag(uint64(c.ExcVal[i]))
		}
		prev := int64(0)
		for i, d := range deltas {
			prev += d
			out[i] = prev
		}
	case PDICT:
		tmp := make([]uint32, c.N)
		c.Packed.UnpackAll(tmp)
		for i, code := range tmp {
			out[i] = c.Dict[code]
		}
	}
}

// CompressedSize returns the column footprint in bytes.
func (c *IntColumn) CompressedSize() int {
	size := 32
	switch c.Scheme {
	case Raw:
		return size + 8*len(c.Raw)
	case PDICT:
		size += 8 * len(c.Dict)
	}
	if c.Packed != nil {
		size += c.Packed.SizeBytes()
	}
	size += 12 * len(c.ExcPos)
	return size
}

// StrColumn is a PDICT-compressed string column.
type StrColumn struct {
	N      int
	Dict   []string
	Packed *bitpack.Vector
}

// EncodeStrings dictionary-compresses a string column with bit-packed
// codes.
func EncodeStrings(values []string) *StrColumn {
	dict := append([]string(nil), values...)
	sort.Strings(dict)
	w := 0
	for i := range dict {
		if i == 0 || dict[i] != dict[w-1] {
			dict[w] = dict[i]
			w++
		}
	}
	dict = dict[:w]
	bits := bitsFor(uint64(w - 1))
	if bits == 0 {
		bits = 1
	}
	idx := make(map[string]uint32, w)
	for i, d := range dict {
		idx[d] = uint32(i)
	}
	packed := make([]uint32, len(values))
	for i, v := range values {
		packed[i] = idx[v]
	}
	pv, _ := bitpack.Pack(packed, bits)
	return &StrColumn{N: len(values), Dict: dict, Packed: pv}
}

// Decompress materializes all strings into out.
func (c *StrColumn) Decompress(out []string) {
	tmp := make([]uint32, c.N)
	c.Packed.UnpackAll(tmp)
	for i, code := range tmp {
		out[i] = c.Dict[code]
	}
}

// CompressedSize returns the column footprint in bytes.
func (c *StrColumn) CompressedSize() int {
	size := 32 + c.Packed.SizeBytes()
	for _, s := range c.Dict {
		size += len(s) + 4
	}
	return size
}

// FloatColumn stores doubles raw (Vectorwise's light-weight schemes target
// integers; doubles rarely compress).
type FloatColumn struct {
	N      int
	Values []float64
}

// EncodeFloats stores a double column.
func EncodeFloats(values []float64) *FloatColumn {
	return &FloatColumn{N: len(values), Values: append([]float64(nil), values...)}
}

// Decompress copies the values.
func (c *FloatColumn) Decompress(out []float64) { copy(out, c.Values) }

// CompressedSize returns the column footprint in bytes.
func (c *FloatColumn) CompressedSize() int { return 32 + 8*c.N }
