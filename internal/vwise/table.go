package vwise

import (
	"fmt"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

// Table is a relation stored in the Vectorwise baseline format: per-chunk
// compressed columns. Chunks let scans decompress into cache-resident
// buffers, as Vectorwise does (§2).
type Table struct {
	Kinds     []types.Kind
	ChunkRows int
	N         int
	chunks    []tableChunk
}

type tableChunk struct {
	n      int
	ints   []*IntColumn
	floats []*FloatColumn
	strs   []*StrColumn
}

// NewTable compresses pre-columnarized data into the baseline format.
// NULLs are not modeled by this baseline; callers substitute sentinel
// values, which only affects sizes marginally.
func NewTable(cols []core.ColumnData, n, chunkRows int) (*Table, error) {
	if chunkRows <= 0 {
		chunkRows = 1 << 16
	}
	t := &Table{ChunkRows: chunkRows, N: n}
	for _, c := range cols {
		t.Kinds = append(t.Kinds, c.Kind)
	}
	for off := 0; off < n; off += chunkRows {
		end := off + chunkRows
		if end > n {
			end = n
		}
		ch := tableChunk{
			n:      end - off,
			ints:   make([]*IntColumn, len(cols)),
			floats: make([]*FloatColumn, len(cols)),
			strs:   make([]*StrColumn, len(cols)),
		}
		for ci, c := range cols {
			switch c.Kind {
			case types.Int64:
				ch.ints[ci] = EncodeInts(c.Ints[off:end])
			case types.Float64:
				ch.floats[ci] = EncodeFloats(c.Floats[off:end])
			case types.String:
				ch.strs[ci] = EncodeStrings(c.Strs[off:end])
			default:
				return nil, fmt.Errorf("vwise: unsupported kind %v", c.Kind)
			}
		}
		t.chunks = append(t.chunks, ch)
	}
	return t, nil
}

// CompressedSize returns the table footprint in bytes.
func (t *Table) CompressedSize() int {
	size := 0
	for _, ch := range t.chunks {
		for ci := range t.Kinds {
			switch t.Kinds[ci] {
			case types.Int64:
				size += ch.ints[ci].CompressedSize()
			case types.Float64:
				size += ch.floats[ci].CompressedSize()
			default:
				size += ch.strs[ci].CompressedSize()
			}
		}
	}
	return size
}

// NumChunks returns the chunk count.
func (t *Table) NumChunks() int { return len(t.chunks) }

// ScanInts decompresses the given integer column chunk by chunk and invokes
// visit with each decompressed buffer and the chunk's base row — the
// decompress-then-process scan pattern.
func (t *Table) ScanInts(col int, visit func(base int, vals []int64)) {
	buf := make([]int64, t.ChunkRows)
	base := 0
	for _, ch := range t.chunks {
		vals := buf[:ch.n]
		ch.ints[col].Decompress(vals)
		visit(base, vals)
		base += ch.n
	}
}

// ScanFloats is ScanInts for doubles.
func (t *Table) ScanFloats(col int, visit func(base int, vals []float64)) {
	buf := make([]float64, t.ChunkRows)
	base := 0
	for _, ch := range t.chunks {
		vals := buf[:ch.n]
		ch.floats[col].Decompress(vals)
		visit(base, vals)
		base += ch.n
	}
}

// ScanStrs is ScanInts for strings.
func (t *Table) ScanStrs(col int, visit func(base int, vals []string)) {
	buf := make([]string, t.ChunkRows)
	base := 0
	for _, ch := range t.chunks {
		vals := buf[:ch.n]
		ch.strs[col].Decompress(vals)
		visit(base, vals)
		base += ch.n
	}
}

// PointLookup finds the first row whose integer key column equals key by
// scanning — Vectorwise has no traditional index structure, so "point
// accesses are always performed as a scan" (§5.3). It returns the row
// ordinal or -1.
func (t *Table) PointLookup(keyCol int, key int64) int {
	found := -1
	buf := make([]int64, t.ChunkRows)
	base := 0
	for _, ch := range t.chunks {
		vals := buf[:ch.n]
		ch.ints[keyCol].Decompress(vals)
		for i, v := range vals {
			if v == key {
				found = base + i
				break
			}
		}
		if found >= 0 {
			break
		}
		base += ch.n
	}
	return found
}

// GetInt decompresses the chunk containing row and returns the value —
// positional access exists only via decompression of the surrounding
// chunk.
func (t *Table) GetInt(col, row int) int64 {
	ci := row / t.ChunkRows
	ch := &t.chunks[ci]
	buf := make([]int64, ch.n)
	ch.ints[col].Decompress(buf)
	return buf[row%t.ChunkRows]
}
