// Package bitpack implements horizontal sub-byte bit-packing — the
// BitWeaving/SIMD-scan style storage the paper evaluates against in §5.4
// and deliberately rejects for Data Blocks.
//
// Values are packed LSB-first at a fixed bit width, crossing 64-bit word
// boundaries. Predicate evaluation streams over the packed words and yields
// a result bitmap; converting that bitmap into a match-position vector is
// either branchy (selectivity-sensitive) or table-driven (robust), exactly
// the two variants of Figure 12(a). Positional access to a single value
// requires shift/mask work across word boundaries, which is what makes
// sparse unpacking expensive (Figure 12(b)).
package bitpack

import "fmt"

// Vector is a horizontally bit-packed sequence of n values of Bits bits.
type Vector struct {
	Bits  int
	N     int
	Words []uint64
}

// Pack encodes values at the given bit width (1..32). Values must fit.
func Pack(values []uint32, bits int) (*Vector, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("bitpack: width %d out of range", bits)
	}
	max := uint64(1)<<uint(bits) - 1
	v := &Vector{Bits: bits, N: len(values), Words: make([]uint64, (len(values)*bits+63)/64+1)}
	for i, x := range values {
		if uint64(x) > max {
			return nil, fmt.Errorf("bitpack: value %d exceeds %d bits", x, bits)
		}
		bitPos := i * bits
		word, off := bitPos>>6, uint(bitPos&63)
		v.Words[word] |= uint64(x) << off
		if off+uint(bits) > 64 {
			v.Words[word+1] |= uint64(x) >> (64 - off)
		}
	}
	return v, nil
}

// Get decodes the value at position i — the positional access whose cost
// the paper contrasts with byte-addressable codes (§5.4).
func (v *Vector) Get(i int) uint32 {
	bitPos := i * v.Bits
	word, off := bitPos>>6, uint(bitPos&63)
	x := v.Words[word] >> off
	if off+uint(v.Bits) > 64 {
		x |= v.Words[word+1] << (64 - off)
	}
	return uint32(x & (1<<uint(v.Bits) - 1))
}

// UnpackAll decodes the whole vector into out (length N) with a streaming
// loop — the "unpack all and filter" strategy of Figure 12(b).
func (v *Vector) UnpackAll(out []uint32) {
	mask := uint64(1)<<uint(v.Bits) - 1
	bitPos := 0
	for i := 0; i < v.N; i++ {
		word, off := bitPos>>6, uint(bitPos&63)
		x := v.Words[word] >> off
		if off+uint(v.Bits) > 64 {
			x |= v.Words[word+1] << (64 - off)
		}
		out[i] = uint32(x & mask)
		bitPos += v.Bits
	}
}

// FindBetweenBitmap evaluates lo <= x <= hi over the packed data and sets
// one bit per qualifying value in bm, which must hold at least
// (N+63)/64 words. The evaluation streams through the packed words without
// materializing values — the early-filtering strength of bit-packed scans.
func (v *Vector) FindBetweenBitmap(lo, hi uint32, bm []uint64) {
	for i := range bm {
		bm[i] = 0
	}
	mask := uint64(1)<<uint(v.Bits) - 1
	lo64, hi64 := uint64(lo), uint64(hi)
	bitPos := 0
	for i := 0; i < v.N; i++ {
		word, off := bitPos>>6, uint(bitPos&63)
		x := v.Words[word] >> off
		if off+uint(v.Bits) > 64 {
			x |= v.Words[word+1] << (64 - off)
		}
		x &= mask
		if x >= lo64 && x <= hi64 {
			bm[i>>6] |= 1 << (uint(i) & 63)
		}
		bitPos += v.Bits
	}
}

// GatherPositions decodes the values at the given positions into out — the
// "positional access" unpack strategy of Figure 12(b).
func (v *Vector) GatherPositions(pos []uint32, out []uint32) {
	for i, p := range pos {
		out[i] = v.Get(int(p))
	}
}

// SizeBytes returns the packed footprint.
func (v *Vector) SizeBytes() int { return len(v.Words) * 8 }
