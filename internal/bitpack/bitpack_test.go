package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"datablocks/internal/simd"
)

func TestPackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, bits := range []int{1, 3, 7, 8, 9, 13, 17, 24, 31, 32} {
		n := 1000 + r.Intn(100)
		max := uint32(1)<<uint(bits) - 1
		values := make([]uint32, n)
		for i := range values {
			values[i] = r.Uint32() & max
		}
		v, err := Pack(values, bits)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range values {
			if got := v.Get(i); got != want {
				t.Fatalf("bits=%d Get(%d) = %d, want %d", bits, i, got, want)
			}
		}
		out := make([]uint32, n)
		v.UnpackAll(out)
		for i, want := range values {
			if out[i] != want {
				t.Fatalf("bits=%d UnpackAll[%d] = %d, want %d", bits, i, out[i], want)
			}
		}
	}
}

func TestPackRejectsBadInput(t *testing.T) {
	if _, err := Pack([]uint32{1}, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := Pack([]uint32{1}, 33); err == nil {
		t.Fatal("width 33 accepted")
	}
	if _, err := Pack([]uint32{8}, 3); err == nil {
		t.Fatal("overflow accepted")
	}
}

func TestFindBetweenBitmap(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, bits := range []int{9, 17} { // the paper's worst-case widths
		n := 1 << 12
		max := uint32(1)<<uint(bits) - 1
		values := make([]uint32, n)
		for i := range values {
			values[i] = r.Uint32() & max
		}
		v, _ := Pack(values, bits)
		bm := make([]uint64, (n+63)/64)
		lo, hi := max/4, max/2
		v.FindBetweenBitmap(lo, hi, bm)
		for i, x := range values {
			want := x >= lo && x <= hi
			got := bm[i>>6]>>(uint(i)&63)&1 == 1
			if got != want {
				t.Fatalf("bits=%d value %d: got %v want %v", bits, x, got, want)
			}
		}
		// Both bitmap→positions conversions agree.
		branchy := simd.PositionsFromBitmapBranchy(bm, n, 0, nil)
		table := simd.PositionsFromBitmap(bm, n, 0, nil)
		if len(branchy) != len(table) {
			t.Fatalf("conversion mismatch: %d vs %d", len(branchy), len(table))
		}
		for i := range branchy {
			if branchy[i] != table[i] {
				t.Fatalf("conversion differs at %d", i)
			}
		}
		// GatherPositions matches direct access.
		vals := make([]uint32, len(table))
		v.GatherPositions(table, vals)
		for i, p := range table {
			if vals[i] != values[p] {
				t.Fatalf("gather mismatch at %d", i)
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16, bitsRaw uint8) bool {
		bits := int(bitsRaw)%16 + 16 // 16..31
		values := make([]uint32, len(raw))
		for i, x := range raw {
			values[i] = uint32(x)
		}
		v, err := Pack(values, bits)
		if err != nil {
			return false
		}
		for i, want := range values {
			if v.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionAdvantage(t *testing.T) {
	// 9-bit packing beats the 2-byte codes Data Blocks are forced to use
	// (the paper's intentional worst case for Data Blocks).
	n := 1 << 16
	values := make([]uint32, n)
	for i := range values {
		values[i] = uint32(i % 512)
	}
	v, _ := Pack(values, 9)
	if packed, byteAligned := v.SizeBytes(), n*2; packed >= byteAligned {
		t.Fatalf("9-bit packing (%d B) should beat 2-byte codes (%d B)", packed, byteAligned)
	}
}
