package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Cache is the standalone driver's per-package result store, so a
// no-change `dbvet ./...` run replays results instead of re-analyzing
// the module. An entry's key covers everything that can change a
// package's findings:
//
//   - the tool binary (a rebuilt dbvet invalidates everything),
//   - the package's source bytes (directives live in comments, which
//     compiler export data cannot see),
//   - the export-data output hashes of every dependency (the go build
//     cache names export files by output hash, so the path strings
//     change exactly when a dependency's compiled form does),
//   - the facts the dependencies exported this run (a dependency's
//     body-only change can alter its lock summaries without altering
//     its export data),
//   - any extra driver salt (the hot-path perf budget file).
//
// Entries are JSON files under dir, one per package, named by key.
type Cache struct {
	dir  string
	salt string
}

// CacheEntry is one package's stored outcome.
type CacheEntry struct {
	Diags      []ResultDiagnostic
	Suppressed int
	Facts      PackageFacts
}

// OpenCache prepares a cache rooted at dir (created on first Put).
// salt is hashed into every key.
func OpenCache(dir, salt string) *Cache {
	return &Cache{dir: dir, salt: salt}
}

// Key computes pkg's cache key given the facts of its dependencies.
func (c *Cache) Key(pkg *Package, depFacts []PackageFacts) (string, error) {
	h := sha256.New()
	io.WriteString(h, c.salt)
	io.WriteString(h, "\x00"+pkg.ListedPath+"\x00")
	for _, name := range pkg.SrcFiles {
		f, err := os.Open(name)
		if err != nil {
			return "", err
		}
		if _, err := io.Copy(h, f); err != nil {
			f.Close()
			return "", err
		}
		f.Close()
		io.WriteString(h, "\x00")
	}
	deps := make([]string, 0, len(pkg.DepExports))
	for dep, file := range pkg.DepExports {
		deps = append(deps, dep+"="+file)
	}
	sort.Strings(deps)
	for _, d := range deps {
		io.WriteString(h, d+"\x00")
	}
	for _, facts := range depFacts {
		raw, err := json.Marshal(facts)
		if err != nil {
			return "", err
		}
		h.Write(raw)
		io.WriteString(h, "\x00")
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// Get returns the stored entry for key, if any.
func (c *Cache) Get(key string) (*CacheEntry, bool) {
	if c == nil || c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	e := new(CacheEntry)
	if json.Unmarshal(data, e) != nil {
		return nil, false
	}
	return e, true
}

// Put stores entry under key (best-effort: a read-only disk degrades to
// re-analysis, never to failure).
func (c *Cache) Put(key string, e *CacheEntry) {
	if c == nil || c.dir == "" {
		return
	}
	if os.MkdirAll(c.dir, 0o777) != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp := filepath.Join(c.dir, key+".tmp")
	if os.WriteFile(tmp, data, 0o666) != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}
