// Package analysistest runs one analyzer over a fixture tree and checks
// its diagnostics against `// want "regexp"` expectations, following the
// golang.org/x/tools/go/analysis/analysistest convention:
//
//   - a comment `// want "re"` on a line expects exactly the diagnostics
//     whose messages match the given regexps, on that line;
//   - several quoted regexps in one want comment expect several
//     diagnostics on the line;
//   - a diagnostic with no matching want, or a want with no matching
//     diagnostic, fails the test.
//
// Each fixture directory is its own Go module (testdata is invisible to
// the enclosing module's go tool), so the loader lists and type-checks
// it exactly as dbvet does real packages.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"datablocks/internal/analysis"
)

// A want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture module rooted at dir, applies the analyzer to
// every package in it, and reports mismatches between the diagnostics
// and the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := analysis.Load(abs, "./...")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no packages under %s", dir)
	}

	// Packages arrive in dependency order; facts flow forward between
	// the fixture's packages exactly as the drivers thread them, so
	// fixtures can exercise cross-package (interprocedural) findings.
	factsByPath := map[string]analysis.PackageFacts{}
	var wants []*want
	var diags []analysis.ResultDiagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg, f)...)
		}
		var deps []analysis.PackageFacts
		for _, dep := range pkg.Deps {
			if facts, ok := factsByPath[dep]; ok {
				deps = append(deps, facts)
			}
		}
		ds, _, facts, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}, deps)
		if err != nil {
			t.Fatalf("analysistest: running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		if len(facts) > 0 {
			factsByPath[pkg.ListedPath] = facts
			factsByPath[pkg.PkgPath] = facts
		}
		diags = append(diags, ds...)
	}

	for _, d := range diags {
		if w := match(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// match finds the first unmatched want on the diagnostic's line whose
// regexp matches the message.
func match(wants []*want, d analysis.ResultDiagnostic) *want {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// parseWants extracts the want expectations of one file.
func parseWants(t *testing.T, pkg *analysis.Package, f *ast.File) []*want {
	t.Helper()
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// The marker may open the comment or follow other text, as
			// in `//dbvet:ignore // want "..."` — directive arguments
			// stop at the embedded "//", so the expectation can sit on
			// the directive's own line.
			i := strings.Index(c.Text, "// want ")
			if i < 0 {
				continue
			}
			text := c.Text[i+len("// want "):]
			pos := pkg.Fset.Position(c.Pos())
			for _, raw := range splitQuoted(text) {
				pattern, err := strconv.Unquote(raw)
				if err != nil {
					t.Fatalf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, raw, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
				}
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
			}
		}
	}
	return out
}

// splitQuoted returns the Go string literals ("..." or `...`) in s, in
// order, quotes included.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		case '`':
			j := i + 1
			for j < len(s) && s[j] != '`' {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		}
	}
	return out
}
