package gcfacts

import (
	"path/filepath"
	"testing"
)

// The parser must hold across toolchain updates: the gate's value is
// zero if a Go minor release silently changes the diagnostic shapes and
// every fact evaporates. These transcripts are captured from real
// `go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'` runs of different
// minor versions; the assertions pin the facts they must yield.

// go 1.22 era: -m=2 prints the conclusion with a trailing colon, the
// flow explanation on position-prefixed indented lines, then repeats
// the plain -m=1 conclusion.
const out122 = `# fixture
./a.go:7:6: can inline Clean with cost 12 as: func([]int64) int64 { t := int64(0); for loop; return t }
./a.go:7:12: xs does not escape
./a.go:22:6: cannot inline EscapingScratch: function too complex
./a.go:23:13: make([]byte, n) escapes to heap:
./a.go:23:13:   flow: {heap} = &{storage for make([]byte, n)}:
./a.go:23:13:     from make([]byte, n) (non-constant size) at ./a.go:23:13
./a.go:23:13: make([]byte, n) escapes to heap
./a.go:31:10: leaking param: xs
./a.go:36:9: Found IsInBounds
./b.go:12:2: moved to heap: scratch
`

// go 1.21 era: same grammar, but exercised with an absolute path, a
// slice-variant bounds check, and no -m=1 echo after the conclusion.
const out121 = `# fixture
/src/fixture/a.go:14:11: parameter idx leaks to {heap} with derefs=0:
/src/fixture/a.go:14:11:   flow: {heap} = idx:
/src/fixture/a.go:18:13: new(node) escapes to heap:
/src/fixture/a.go:18:13:   flow: {heap} = &{storage for new(node)}:
/src/fixture/a.go:40:12: Found IsSliceInBounds
/src/fixture/a.go:44:2: moved to heap: acc
`

func TestParseGo122Format(t *testing.T) {
	s := Parse(out122, "/src/fixture")
	a := s.File(filepath.Join("/src/fixture", "a.go"))
	if len(a) != 2 {
		t.Fatalf("a.go facts = %+v, want 2 (escape + bounds)", a)
	}
	if a[0].Kind != Alloc || a[0].Line != 23 || a[0].Col != 13 || a[0].Detail != "make([]byte, n) escapes to heap" {
		t.Errorf("fact 0 = %+v, want the deduplicated make escape at 23:13", a[0])
	}
	if a[1].Kind != Bounds || a[1].Line != 36 {
		t.Errorf("fact 1 = %+v, want IsInBounds at line 36", a[1])
	}
	b := s.File(filepath.Join("/src/fixture", "b.go"))
	if len(b) != 1 || b[0].Kind != Alloc || b[0].Detail != "moved to heap: scratch" {
		t.Errorf("b.go facts = %+v, want the moved-to-heap fact", b)
	}
}

func TestParseGo121Format(t *testing.T) {
	s := Parse(out121, "/src/fixture")
	a := s.File("/src/fixture/a.go")
	if len(a) != 3 {
		t.Fatalf("a.go facts = %+v, want 3 (new escape, slice bounds, moved)", a)
	}
	if a[0].Kind != Alloc || a[0].Line != 18 || a[0].Detail != "new(node) escapes to heap" {
		t.Errorf("fact 0 = %+v, want the new escape at line 18", a[0])
	}
	if a[1].Kind != Bounds || a[1].Line != 40 || a[1].Detail != "Found IsSliceInBounds" {
		t.Errorf("fact 1 = %+v, want IsSliceInBounds at line 40", a[1])
	}
	if a[2].Kind != Alloc || a[2].Line != 44 || a[2].Detail != "moved to heap: acc" {
		t.Errorf("fact 2 = %+v, want moved to heap at line 44", a[2])
	}
}

// Leak annotations, inlining chatter and "does not escape" must never
// become facts — a false alloc fact would force spurious budget
// entries.
func TestParseIgnoresNonFacts(t *testing.T) {
	s := Parse(out122, "/src/fixture")
	for _, f := range s.File("/src/fixture/a.go") {
		switch f.Line {
		case 7, 22, 31:
			t.Errorf("line %d produced fact %+v, want none", f.Line, f)
		}
	}
}
