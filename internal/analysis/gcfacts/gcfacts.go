// Package gcfacts turns the Go compiler's optimization diagnostics into
// position-keyed facts the hotpathperf analyzer can gate on. It runs
//
//	go build -gcflags='-m=2 -d=ssa/check_bce/debug=1' .
//
// in a package directory and parses the escape-analysis lines ("moved
// to heap: x", "x escapes to heap") and the bounds-check-elimination
// debug lines ("Found IsInBounds", "Found IsSliceInBounds") that
// survive optimization. What the compiler reports here is ground truth:
// an AST walker can guess that append allocates, but only the compiler
// knows whether escape analysis stack-allocated it or BCE removed the
// check.
//
// Repeat runs are cheap: the go build cache replays the compiler's
// diagnostics on cache hits, so an unchanged package costs one cache
// probe, not a compile. That property is what makes a per-package
// compile acceptable inside a lint driver.
package gcfacts

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies one compiler fact.
type Kind uint8

const (
	// Alloc marks a value the compiler moved to or allocated on the
	// heap inside the function body.
	Alloc Kind = iota
	// Bounds marks a bounds check the SSA backend could not eliminate.
	Bounds
)

func (k Kind) String() string {
	if k == Bounds {
		return "bounds"
	}
	return "alloc"
}

// A Fact is one diagnostic, keyed by its source position.
type Fact struct {
	File   string // absolute path
	Line   int
	Col    int
	Kind   Kind
	Detail string // the compiler's own words, e.g. "moved to heap: buf"
}

// A Set holds the facts of one package, grouped by file.
type Set struct {
	byFile map[string][]Fact
}

// File returns the facts of one file (absolute path), ordered by
// position.
func (s *Set) File(file string) []Fact {
	if s == nil {
		return nil
	}
	return s.byFile[file]
}

// ForPackage compiles the package in dir with diagnostic flags and
// parses the output. The build must succeed — the caller is expected to
// run after the ordinary build gate.
func ForPackage(dir string) (*Set, error) {
	cmd := exec.Command("go", "build",
		"-gcflags=-m=2 -d=ssa/check_bce/debug=1", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("gcfacts: go build in %s: %v\n%s", dir, err, out)
	}
	return Parse(string(out), dir), nil
}

// Parse extracts facts from compiler output, resolving relative file
// names against dir. Exported so tests can feed captured output from
// several toolchain versions.
func Parse(out, dir string) *Set {
	s := &Set{byFile: map[string][]Fact{}}
	seen := map[Fact]bool{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		file, lineNo, col, msg, ok := splitPosLine(line)
		if !ok {
			continue
		}
		kind, detail, ok := classify(msg)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		f := Fact{File: file, Line: lineNo, Col: col, Kind: kind, Detail: detail}
		if seen[f] {
			continue
		}
		seen[f] = true
		s.byFile[f.File] = append(s.byFile[f.File], f)
	}
	for _, facts := range s.byFile {
		sort.Slice(facts, func(i, j int) bool {
			if facts[i].Line != facts[j].Line {
				return facts[i].Line < facts[j].Line
			}
			return facts[i].Col < facts[j].Col
		})
	}
	return s
}

// splitPosLine parses "file.go:12:34: message", anchoring on the first
// colon (the engine does not target systems with colons in file names).
func splitPosLine(line string) (file string, lineNo, col int, msg string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", 0, 0, "", false
	}
	parts := strings.SplitN(line[i+1:], ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	ln, err1 := strconv.Atoi(parts[0])
	cn, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	// One space separates the position from the message. Further
	// indentation marks -m=2's explanation lines ("flow:", "from ...")
	// which repeat the position but are not conclusions.
	msg, found := strings.CutPrefix(parts[2], " ")
	if !found || msg == "" || msg[0] == ' ' || msg[0] == '\t' {
		return "", 0, 0, "", false
	}
	return line[:i], ln, cn, msg, true
}

// classify maps one diagnostic message to a fact kind. The -m=2
// conclusion may carry a trailing colon (when an explanation follows)
// or not (the -m=1 summary repeated after it); trimming it folds the
// two spellings into one fact.
func classify(msg string) (Kind, string, bool) {
	msg = strings.TrimSuffix(msg, ":")
	switch {
	case strings.HasPrefix(msg, "moved to heap"):
		return Alloc, msg, true
	case strings.HasSuffix(msg, "escapes to heap"):
		// "does not escape" never matches this suffix.
		return Alloc, msg, true
	case msg == "Found IsInBounds":
		return Bounds, msg, true
	case msg == "Found IsSliceInBounds":
		return Bounds, msg, true
	}
	return 0, "", false
}
