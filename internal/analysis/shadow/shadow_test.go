package shadow_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, "../testdata/shadow", shadow.Analyzer)
}
