// Package shadow reports variable declarations that shadow a variable
// of the same name and type from an enclosing function scope, when the
// shadowed variable is still used after the shadowing scope ends. That
// conjunction is the dangerous shape: an inner `err :=` swallows an
// assignment the outer code later inspects.
//
// The check follows the golang.org/x/tools shadow heuristics (same
// type, outer use after the inner scope closes, package- and
// universe-scope names exempt) but is implemented on the standard
// library only, since the engine's module carries no dependencies. One
// deliberate divergence: a declaration inside a function literal never
// shadows a variable of the enclosing function. In a closure — above
// all in a goroutine — declaring a fresh err IS the correct pattern;
// assigning the enclosing function's variable would be the bug (a data
// race), so reporting the safe form as suspect would invert the check's
// purpose.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"datablocks/internal/analysis"
)

// Analyzer is the shadow pass.
var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "check for shadowed variables whose outer binding is still used after the inner scope ends",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// lastUse maps each variable to the position of its final use.
	lastUse := map[types.Object]token.Pos{}
	for id, obj := range info.Uses {
		if v, ok := obj.(*types.Var); ok {
			if id.End() > lastUse[v] {
				lastUse[v] = id.End()
			}
		}
	}

	// Like the upstream checker, only short variable declarations and var
	// statements are candidates: function parameters and range variables
	// routinely reuse names on purpose (accessor closures taking their
	// own `a *core.Attr` are the idiom here, not an accident).
	candidates := map[*ast.Ident]bool{}
	// litBodies collects function-literal body ranges for the closure
	// exemption below.
	type span struct{ lo, hi token.Pos }
	var litBodies []span
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				litBodies = append(litBodies, span{n.Body.Pos(), n.Body.End()})
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							candidates[id] = true
						}
					}
				}
			case *ast.GenDecl:
				if n.Tok == token.VAR {
					for _, spec := range n.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, id := range vs.Names {
								candidates[id] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	for id, obj := range info.Defs {
		if !candidates[id] {
			continue
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner.Parent() == nil {
			continue
		}
		// Find what the same name resolves to just outside this
		// declaration.
		_, outerObj := inner.Parent().LookupParent(id.Name, v.Pos())
		outer, ok := outerObj.(*types.Var)
		if !ok || outer == v {
			continue
		}
		// Package-level and universe names are deliberately reusable.
		if outer.Parent() == pass.Pkg.Scope() || outer.Parent() == types.Universe {
			continue
		}
		// Only same-type shadowing is the footgun (an inner redeclaration
		// at a different type is usually intentional narrowing).
		if !types.Identical(v.Type(), outer.Type()) {
			continue
		}
		// The outer binding must be used after the inner scope ends;
		// otherwise the shadow can never change behavior.
		if lastUse[outer] <= inner.End() {
			continue
		}
		// Closure exemption: the declaration lives in a function literal
		// the outer variable merely encloses.
		crossesLit := false
		for _, s := range litBodies {
			if s.lo <= id.Pos() && id.Pos() < s.hi && !(s.lo <= outer.Pos() && outer.Pos() < s.hi) {
				crossesLit = true
				break
			}
		}
		if crossesLit {
			continue
		}
		pass.Reportf(id.Pos(), "declaration of %q shadows the %s declared at %s, which is used again after this scope",
			id.Name, id.Name, pass.Fset.Position(outer.Pos()))
	}
	return nil, nil
}
