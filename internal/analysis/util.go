package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeObject resolves the function or method object a call invokes, or
// nil for calls through function values, built-ins and type conversions.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		// Package-qualified call (pkg.Fn) has no Selection entry.
		return info.Uses[fn.Sel]
	}
	return nil
}

// IsPackageFunc reports whether the call invokes a function of the named
// package (import path), e.g. IsPackageFunc(info, call, "sync/atomic").
func IsPackageFunc(info *types.Info, call *ast.CallExpr, pkgPath string) bool {
	obj := CalleeObject(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// ExprString renders a canonical, whitespace-free form of simple
// expressions (identifiers and selector chains), used to compare "the
// same variable" lexically: r.mu and r .mu both render "r.mu"; anything
// more complex renders "" and never matches.
func ExprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// via pointer).
func IsMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// MutexField inspects a selector expression like r.mu or c.loadMu and,
// when it names a mutex-typed struct field, returns the canonical text
// of the lock-holder expression ("r.mu"), the owning named type's name
// ("Relation") and the field name ("mu").
func MutexField(info *types.Info, sel *ast.SelectorExpr) (lockExpr, ownerType, fieldName string, ok bool) {
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", "", false
	}
	field, isVar := s.Obj().(*types.Var)
	if !isVar || !IsMutexType(field.Type()) {
		return "", "", "", false
	}
	recv := s.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	owner := ""
	if named, isNamed := recv.(*types.Named); isNamed {
		owner = named.Obj().Name()
	}
	text := ExprString(sel)
	if text == "" {
		return "", "", "", false
	}
	return text, owner, field.Name(), true
}

// LastResultIsError reports whether the call's final result is the
// built-in error type.
func LastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	obj := CalleeObject(info, call)
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// IsInterface reports whether t is an interface type (including any).
func IsInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
