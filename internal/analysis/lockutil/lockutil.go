// Package lockutil is the lock-model vocabulary shared by lockcheck
// (must-hold enforcement of the *Locked contract) and deadlockcheck
// (may-hold construction of the acquires-before graph): classifying
// calls as mutex acquire/release, collecting //dbvet:locks annotations,
// computing the lock set a function holds at entry, and resolving local
// aliases of mutex fields (`mu := &r.mu; mu.Lock()`) through the
// reaching-definitions lattice.
package lockutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"datablocks/internal/analysis"
	"datablocks/internal/analysis/cfg"
	"datablocks/internal/analysis/dataflow"
)

// An Ident names one lock: the canonical holder expression and, when
// the mutex is a named type's field, the class "Owner.field" every
// instance of that field shares.
type Ident struct {
	Token string // canonical holder expression, e.g. "r.mu"
	Owner string // declaring type, e.g. "Relation" ("" for plain vars)
	Field string
}

// Class returns the lock's class ("Relation.mu"), or "" for mutexes
// that are not fields of a named type.
func (id Ident) Class() string {
	if id.Owner == "" {
		return ""
	}
	return id.Owner + "." + id.Field
}

// Annotations maps same-package function objects to the mutex field
// their //dbvet:locks annotation names.
type Annotations map[types.Object]string

// CollectAnnotations gathers the //dbvet:locks directives of the pass's
// files.
func CollectAnnotations(pass *analysis.Pass) Annotations {
	ann := Annotations{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d, ok := analysis.FuncDirective(pass.Fset, fd, "locks"); ok && d.Args != "" {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					ann[obj] = d.Args
				}
			}
		}
	}
	return ann
}

// RequiresLock reports whether calling obj requires a held mutex: the
// name ends in "Locked" or the same-package declaration is annotated.
func (ann Annotations) RequiresLock(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if strings.HasSuffix(obj.Name(), "Locked") {
		return true
	}
	_, ok := ann[obj]
	return ok
}

// LockFieldOf returns the mutex field obj's contract names: its
// //dbvet:locks annotation when present, else the "mu" convention.
func (ann Annotations) LockFieldOf(obj types.Object) string {
	if f, ok := ann[obj]; ok {
		return f
	}
	return "mu"
}

// EntryLocks returns the lock set fd holds at entry: a *Locked (or
// annotated) function holds <receiver>.<field>.
func EntryLocks(info *types.Info, fd *ast.FuncDecl, ann Annotations) dataflow.LockSet {
	entry := dataflow.LockSet{}
	obj := info.Defs[fd.Name]
	if obj == nil || !ann.RequiresLock(obj) {
		return entry
	}
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return entry
	}
	recvName := fd.Recv.List[0].Names[0].Name
	field := ann.LockFieldOf(obj)
	owner := RecvTypeName(fd)
	id := Ident{Token: recvName + "." + field, Owner: owner, Field: field}
	entry[id.Token] = id.Class()
	return entry
}

// RecvTypeName names fd's receiver base type.
func RecvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// A Classifier adapts one function's lock model to the dataflow Locks
// lattice.
type Classifier struct {
	Info  *types.Info
	Entry dataflow.LockSet
	// Aliases resolves mutex-method calls through local pointer
	// aliases, keyed by the call expression (see ResolveAliases).
	Aliases map[*ast.CallExpr]Ident
}

func (c *Classifier) EntryLocks() dataflow.LockSet { return c.Entry }

// ClassifyLockOp reports whether call acquires (+1) or releases (-1) a
// recognizable mutex, with its token and class.
func (c *Classifier) ClassifyLockOp(call *ast.CallExpr) (op int, token, class string) {
	o, id := Classify(c.Info, call)
	if o != 0 {
		if resolved, ok := c.Aliases[call]; ok {
			id = resolved
		}
	}
	return o, id.Token, id.Class()
}

// Classify is the alias-unaware classification: a call to
// Lock/RLock/TryLock/TryRLock (+1) or Unlock/RUnlock (-1) on a mutex
// field selector or a plain mutex variable.
func Classify(info *types.Info, call *ast.CallExpr) (op int, id Ident) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, Ident{}
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = +1
	case "Unlock", "RUnlock":
		op = -1
	default:
		return 0, Ident{}
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if text, owner, field, ok := analysis.MutexField(info, x); ok {
			return op, Ident{Token: text, Owner: owner, Field: field}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x]; ok && analysis.IsMutexType(obj.Type()) {
			return op, Ident{Token: x.Name, Field: x.Name}
		}
	}
	return 0, Ident{}
}

// ResolveAliases runs reaching definitions over g and resolves mutex
// operations whose receiver is a local pointer variable: when every
// definition of the variable reaching the call assigns `&X.mu` (or an
// equivalent mutex-field pointer) of one and the same lock, the call
// classifies as operating on that lock. Mixed or opaque definitions
// stay unresolved — flow-sensitivity here only ever adds precision.
func ResolveAliases(g *cfg.Graph, info *types.Info) map[*ast.CallExpr]Ident {
	res := dataflow.Forward(g, dataflow.ReachingDefs{R: defResolver{info}})
	aliases := map[*ast.CallExpr]Ident{}
	res.Walk(g, func(n ast.Node, s dataflow.DefSet) {
		if _, isRange := n.(*ast.RangeStmt); isRange {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.RangeStmt:
				return false
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
				default:
					return true
				}
				recv, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[recv]
				if obj == nil || !analysis.IsMutexType(obj.Type()) {
					return true
				}
				// Only a pointer-typed local can alias another lock; a
				// value-typed mutex variable is its own lock and needs
				// no resolution.
				if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
					return true
				}
				if id, ok := resolveDefs(info, s[obj]); ok {
					aliases[n] = id
				}
			}
			return true
		})
	})
	return aliases
}

// resolveDefs returns the single lock every reaching definition aliases.
func resolveDefs(info *types.Info, defs map[token.Pos]dataflow.Def) (Ident, bool) {
	if len(defs) == 0 {
		return Ident{}, false
	}
	var resolved Ident
	first := true
	for _, d := range defs {
		id, ok := lockExprIdent(info, d.RHS)
		if !ok {
			return Ident{}, false
		}
		if first {
			resolved = id
			first = false
		} else if resolved != id {
			return Ident{}, false
		}
	}
	return resolved, true
}

// lockExprIdent recognizes `&X.mu` (and plain `X.mu` for completeness)
// as a reference to a mutex field.
func lockExprIdent(info *types.Info, e ast.Expr) (Ident, bool) {
	if e == nil {
		return Ident{}, false
	}
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return Ident{}, false
	}
	if text, owner, field, ok := analysis.MutexField(info, sel); ok {
		return Ident{Token: text, Owner: owner, Field: field}, true
	}
	return Ident{}, false
}

// defResolver feeds ReachingDefs: single-identifier assignments and
// declarations define; range bindings and multi-assignments define
// opaquely.
type defResolver struct{ info *types.Info }

func (r defResolver) DefsOf(n ast.Node) []dataflow.IdentityDef {
	var out []dataflow.IdentityDef
	add := func(idExpr ast.Expr, rhs ast.Expr) {
		ident, ok := ast.Unparen(idExpr).(*ast.Ident)
		if !ok || ident.Name == "_" {
			return
		}
		obj := r.info.Defs[ident]
		if obj == nil {
			obj = r.info.Uses[ident]
		}
		if obj == nil {
			return
		}
		out = append(out, dataflow.IdentityDef{
			Identity: obj,
			Def:      dataflow.Def{Pos: ident.Pos(), RHS: rhs},
		})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				add(n.Lhs[i], n.Rhs[i])
			}
		} else {
			for _, lhs := range n.Lhs {
				add(lhs, nil)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					add(name, rhs)
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			add(n.Key, nil)
		}
		if n.Value != nil {
			add(n.Value, nil)
		}
	}
	return out
}
