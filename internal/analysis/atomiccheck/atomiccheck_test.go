package atomiccheck_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/atomiccheck"
)

func TestAtomiccheck(t *testing.T) {
	analysistest.Run(t, "../testdata/atomiccheck", atomiccheck.Analyzer)
}
