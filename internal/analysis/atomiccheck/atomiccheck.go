// Package atomiccheck enforces the engine's mixed-access rule: a struct
// field that is accessed through sync/atomic anywhere in the package —
// either by passing its address (or the address of one of its elements)
// to a sync/atomic function, or by passing the field to a helper whose
// name ends in "Atomic" (the simd.Bitmap*Atomic word-access helpers) —
// must not also be read or written plainly, except where a written
// //dbvet:ignore justification states why the plain access is safe
// (typically: performed under the writer lock that excludes every
// lock-free reader, or during single-threaded construction).
//
// Flagged plain accesses are the ones that can tear or race against the
// atomic side:
//
//   - assignments to the field (including swapping in a new slice
//     header, which races a concurrent atomic element reader),
//   - element reads/writes (x.f[i]) outside an atomic call,
//   - passing the field (or its address) to any non-atomic function,
//     which hides plain element access behind a call boundary.
//
// Nil checks (x.f == nil), len/cap, and capturing the field in a
// composite literal are not flagged: they touch only the slice header
// in ways the engine performs under the relation lock by construction.
package atomiccheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"datablocks/internal/analysis"
)

// Analyzer is the atomiccheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc:  "check that fields accessed via sync/atomic are never read or written plainly",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Pass 1: collect atomically-accessed fields, and remember every
	// selector expression that participates in an atomic access so pass
	// 2 can skip them.
	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic use
	atomicUse := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicCall(info, call) {
				return true
			}
			// Which arguments perform the atomic access? For sync/atomic
			// functions, the address-taken ones (&x.f, &x.f[i]); for the
			// *Atomic slice helpers, the slice itself — argument 0. Plain
			// arguments (indices, values) are not atomic uses.
			helperCall := !analysis.IsPackageFunc(info, call, "sync/atomic")
			for i, arg := range call.Args {
				if !isAddrOf(arg) && !(helperCall && i == 0) {
					continue
				}
				if sel, field := fieldOfAtomicArg(info, arg); field != nil {
					if _, seen := atomicFields[field]; !seen {
						atomicFields[field] = sel.Pos()
					}
					atomicUse[sel] = true
				}
			}
			return false
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: find plain accesses of those fields.
	for _, f := range pass.Files {
		var visit func(n ast.Node, parent ast.Node) // manual walk to know each selector's context
		_ = visit
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, field := selField(info, lhs); field != nil {
						if _, hot := atomicFields[field]; hot && !atomicUse[sel] {
							pass.Reportf(sel.Pos(),
								"plain write to %s, which is accessed atomically elsewhere (e.g. %s): use sync/atomic or justify with //dbvet:ignore",
								analysis.ExprString(sel), pass.Fset.Position(atomicFields[field]))
						}
					}
					// Element write: x.f[i] = v
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if sel, field := selField(info, idx.X); field != nil {
							if _, hot := atomicFields[field]; hot {
								pass.Reportf(sel.Pos(),
									"plain element write to %s, which is accessed atomically elsewhere (e.g. %s)",
									analysis.ExprString(sel), pass.Fset.Position(atomicFields[field]))
							}
						}
					}
				}
			case *ast.IndexExpr:
				// Element read (writes were handled above; revisiting them
				// here is prevented by the assign case returning true but
				// index-LHS selectors matching twice — guard with a marker).
				if sel, field := selField(info, n.X); field != nil {
					if _, hot := atomicFields[field]; hot && !atomicUse[sel] && !indexIsAssignTarget(f, n) {
						pass.Reportf(sel.Pos(),
							"plain element read of %s, which is accessed atomically elsewhere (e.g. %s)",
							analysis.ExprString(sel), pass.Fset.Position(atomicFields[field]))
					}
				}
			case *ast.RangeStmt:
				if sel, field := selField(info, n.X); field != nil {
					if _, hot := atomicFields[field]; hot {
						pass.Reportf(sel.Pos(),
							"plain range over %s, which is accessed atomically elsewhere (e.g. %s)",
							analysis.ExprString(sel), pass.Fset.Position(atomicFields[field]))
					}
				}
			case *ast.CallExpr:
				if isAtomicCall(info, call(n)) {
					return false
				}
				if skipHeaderOnlyCall(info, n) {
					return false
				}
				for _, arg := range n.Args {
					target := ast.Unparen(arg)
					if u, ok := target.(*ast.UnaryExpr); ok && u.Op == token.AND {
						target = ast.Unparen(u.X)
					}
					if sel, field := selField(info, target); field != nil {
						if _, hot := atomicFields[field]; hot && !atomicUse[sel] {
							pass.Reportf(sel.Pos(),
								"%s is passed to a non-atomic call but is accessed atomically elsewhere (e.g. %s): the callee's plain access races the atomic side",
								analysis.ExprString(sel), pass.Fset.Position(atomicFields[field]))
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func call(n *ast.CallExpr) *ast.CallExpr { return n }

// isAtomicCall reports whether the call performs an atomic access: a
// sync/atomic function, a method on the atomic.* value types, or a
// helper whose name ends in "Atomic" (the package-local convention for
// word-granular atomic slice helpers like simd.BitmapSetAtomic).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	if analysis.IsPackageFunc(info, call, "sync/atomic") {
		return true
	}
	obj := analysis.CalleeObject(info, call)
	return obj != nil && strings.HasSuffix(obj.Name(), "Atomic")
}

// skipHeaderOnlyCall exempts built-ins that touch only the slice header
// or type identity: len, cap, and conversions.
func skipHeaderOnlyCall(info *types.Info, callExpr *ast.CallExpr) bool {
	id, ok := ast.Unparen(callExpr.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if obj, isBuiltin := info.Uses[id]; isBuiltin {
		if b, ok := obj.(*types.Builtin); ok {
			return b.Name() == "len" || b.Name() == "cap"
		}
		if _, isType := obj.(*types.TypeName); isType {
			return true
		}
	}
	return false
}

// selField resolves an expression to (selector, struct field) when it is
// a plain field selection like x.f; nil otherwise.
func selField(info *types.Info, e ast.Expr) (*ast.SelectorExpr, *types.Var) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return nil, nil
	}
	if v, ok := s.Obj().(*types.Var); ok {
		return sel, v
	}
	return nil, nil
}

// isAddrOf reports whether the argument takes an address (&expr).
func isAddrOf(arg ast.Expr) bool {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

// fieldOfAtomicArg resolves an atomic call argument to the struct field
// it addresses: &x.f, &x.f[i], or x.f passed by value to an *Atomic
// helper.
func fieldOfAtomicArg(info *types.Info, arg ast.Expr) (*ast.SelectorExpr, *types.Var) {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	return selField(info, e)
}

// indexIsAssignTarget reports whether idx is the direct LHS of an
// assignment (those are reported as element writes, not reads).
func indexIsAssignTarget(f *ast.File, idx *ast.IndexExpr) bool {
	target := false
	ast.Inspect(f, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ast.Unparen(lhs) == idx {
					target = true
				}
			}
		}
		return !target
	})
	return target
}
