// Package pincheck enforces the blockstore pin protocol: every
// successful pin must be released on every path out of the function
// that took it (lostcancel-style). Two pin shapes are recognized:
//
//   - view pins: a call to a method named Acquire with signature
//     func() error on a receiver that also has a Release() method
//     (storage.ChunkView). The matching release is <recv>.Release(),
//     called directly or deferred.
//   - handle pins: a call to a function in PinFuncs (storage's
//     (*Relation).pinBlock) whose results include a func() unpin
//     closure and a trailing error. The closure must be invoked or
//     deferred; discarding it with _ loses the pin outright.
//
// A failed pin holds nothing: returns inside the `if err != nil` block
// guarding the pin call are exempt. The analysis is block-scoped and
// lexical like the rest of the suite: a pin taken inside a loop body
// must be released by the end of that body (or deferred), otherwise the
// next iteration leaks it.
package pincheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"datablocks/internal/analysis"
)

// PinFuncs names functions whose returned func() closure releases a pin
// taken by the call.
var PinFuncs = map[string]bool{
	"pinBlock": true,
}

// Analyzer is the pincheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "pincheck",
	Doc:  "check that every successful Acquire/pinBlock pin is paired with its release on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					newWalker(pass).walkFunc(fn.Body)
				}
				return false // walkFunc handles nested literals
			case *ast.FuncLit:
				newWalker(pass).walkFunc(fn.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// A pin is one live acquisition on the current path.
type pin struct {
	pos token.Pos
	// token identifies the release: "recv.Release" for view pins
	// (canonical receiver text), or the unpin variable name for handle
	// pins.
	token string
	// errVar is the error variable assigned alongside the pin; returns
	// inside its != nil guard hold no pin.
	errVar string
	// deferred is set once a defer releasing this pin has been seen.
	deferred bool
	// loopDepth is the loop nesting level the pin was taken at; leaving
	// an iteration of that loop (continue, or falling off the body) with
	// the pin live is a leak.
	loopDepth int
}

type walker struct {
	pass      *analysis.Pass
	loopDepth int
}

func newWalker(pass *analysis.Pass) *walker { return &walker{pass: pass} }

// state is the live-pin set, keyed by release token.
type state map[string]*pin

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

func (w *walker) walkFunc(body *ast.BlockStmt) {
	st := state{}
	w.walkBlock(body, st)
	// Pins still live at the end of the function body (no return, no
	// release) leak when the function falls off the end.
	for _, p := range st {
		if !p.deferred {
			w.pass.Reportf(p.pos, "pin taken here is never released on the fall-through path: pair it with %s or defer the release", releaseHint(p))
		}
	}
}

func releaseHint(p *pin) string { return p.token }

func (w *walker) walkBlock(b *ast.BlockStmt, st state) {
	for _, s := range b.List {
		w.walkStmt(s, st)
	}
}

func (w *walker) walkStmt(s ast.Stmt, st state) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBlock(s, st)
	case *ast.AssignStmt:
		w.scanNested(s, st)
		// Storing a live unpin closure (v.release = unpin) transfers
		// ownership of the pin to the new holder; tracking stops here.
		for _, rhs := range s.Rhs {
			w.handleEscape(rhs, st)
		}
		w.handleAssign(s, st)
	case *ast.ExprStmt:
		w.scanNested(s, st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.handleRelease(call, st, false)
		}
	case *ast.DeferStmt:
		w.scanNested(s, st)
		w.handleRelease(s.Call, st, true)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanNested(s.Cond, st)
		bodySt := st.clone()
		// `if err != nil { ... }` where err belongs to a just-taken pin:
		// inside that branch the pin was never taken.
		if name, ok := errNilCheck(s.Cond); ok {
			for tok, p := range bodySt {
				if p.errVar == name && p.errVar != "" {
					delete(bodySt, tok)
				}
			}
		}
		w.walkBlock(s.Body, bodySt)
		if s.Else != nil {
			w.walkStmt(s.Else, st.clone())
		}
		// Optimistic merge: releases performed in a non-terminating
		// branch are honored on the continuation, so a conditional
		// release is never double-reported; missed releases surface at
		// the next return instead.
		if !terminates(s.Body) {
			for tok := range st {
				if _, live := bodySt[tok]; !live {
					delete(st, tok)
				}
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.loopDepth++
		bodySt := st.clone()
		w.walkBlock(s.Body, bodySt)
		w.checkLoopExit(bodySt, s.Body.Rbrace)
		w.loopDepth--
	case *ast.RangeStmt:
		w.scanNested(s.X, st)
		w.loopDepth++
		bodySt := st.clone()
		w.walkBlock(s.Body, bodySt)
		w.checkLoopExit(bodySt, s.Body.Rbrace)
		w.loopDepth--
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkBranches(s, st)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			w.checkLoopExit(st, s.Pos())
		}
	case *ast.ReturnStmt:
		w.scanNested(s, st)
		// Returning the unpin closure (or the pinned view itself) hands
		// the pin to the caller, who becomes responsible for releasing.
		for _, res := range s.Results {
			w.handleEscape(res, st)
		}
		for _, p := range st {
			if !p.deferred {
				w.pass.Reportf(s.Pos(), "returning with the pin taken at %s still held: release it before this return or defer the release",
					w.pass.Fset.Position(p.pos))
			}
		}
	default:
		w.scanNested(s, st)
	}
}

// walkBranches handles switch/select: each clause sees a clone.
func (w *walker) walkBranches(s ast.Stmt, st state) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanNested(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	for _, cc := range body.List {
		sub := st.clone()
		switch cl := cc.(type) {
		case *ast.CaseClause:
			for _, stmt := range cl.Body {
				w.walkStmt(stmt, sub)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				w.walkStmt(cl.Comm, sub)
			}
			for _, stmt := range cl.Body {
				w.walkStmt(stmt, sub)
			}
		}
	}
}

// checkLoopExit reports pins taken at the current loop depth that are
// still live when an iteration ends.
func (w *walker) checkLoopExit(st state, pos token.Pos) {
	for tok, p := range st {
		if p.loopDepth == w.loopDepth && !p.deferred {
			w.pass.Reportf(p.pos, "pin taken inside this loop iteration is not released before the iteration ends: the next iteration leaks it (release %s or defer within the body)", p.token)
			delete(st, tok) // one report per pin
		}
	}
}

// scanNested analyzes function literals nested in the statement as
// independent functions.
func (w *walker) scanNested(n ast.Node, st state) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			newWalker(w.pass).walkFunc(fl.Body)
			return false
		}
		return true
	})
}

// handleEscape drops pins whose handle escapes through e: the unpin
// closure used as a value (not called), or the pinned receiver itself.
// Whoever receives the value owns the release from here on.
func (w *walker) handleEscape(e ast.Expr, st state) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// The Fun position is a call, not an escape; arguments are.
			for _, arg := range n.Args {
				w.handleEscape(arg, st)
			}
			return false
		case *ast.Ident:
			if p, live := st[n.Name]; live && p.token == n.Name+"()" {
				delete(st, n.Name)
			}
			delete(st, n.Name+".Release")
		case *ast.SelectorExpr:
			if text := analysis.ExprString(n); text != "" {
				if _, live := st[text+".Release"]; live {
					delete(st, text+".Release")
				}
				return false
			}
		}
		return true
	})
}

// handleAssign recognizes the two pin-taking shapes.
func (w *walker) handleAssign(s *ast.AssignStmt, st state) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	obj := analysis.CalleeObject(w.pass.TypesInfo, call)
	if obj == nil {
		return
	}

	// Handle pins: v1, unpin, ..., err := x.pinBlock(...). The unpin
	// closure is located by type — the func() result — not by position,
	// so pin functions may grow extra results (pinBlock's loaded flag)
	// without silently escaping the check.
	if PinFuncs[obj.Name()] && len(s.Lhs) >= 2 {
		unpinIdx := len(s.Lhs) - 2
		if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Results().Len() == len(s.Lhs) {
			for i := 0; i < sig.Results().Len(); i++ {
				if rs, isFn := sig.Results().At(i).Type().Underlying().(*types.Signature); isFn &&
					rs.Params().Len() == 0 && rs.Results().Len() == 0 {
					unpinIdx = i
					break
				}
			}
		}
		unpinName := identName(s.Lhs[unpinIdx])
		errName := identName(s.Lhs[len(s.Lhs)-1])
		if unpinName == "_" {
			w.pass.Reportf(s.Pos(), "the unpin closure returned by %s is discarded: the pin can never be released", obj.Name())
			return
		}
		if unpinName == "" {
			return
		}
		st[unpinName] = &pin{pos: call.Pos(), token: unpinName + "()", errVar: errName, loopDepth: w.loopDepth}
		return
	}

	// View pins: err := v.Acquire()
	if obj.Name() == "Acquire" && analysis.LastResultIsError(w.pass.TypesInfo, call) {
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel {
			return
		}
		recv := analysis.ExprString(sel.X)
		if recv == "" {
			return
		}
		errName := ""
		if len(s.Lhs) >= 1 {
			errName = identName(s.Lhs[len(s.Lhs)-1])
		}
		st[recv+".Release"] = &pin{pos: call.Pos(), token: recv + ".Release()", errVar: errName, loopDepth: w.loopDepth}
	}
}

// handleRelease clears pins released by the call: recv.Release(),
// unpin(), or their deferred forms.
func (w *walker) handleRelease(call *ast.CallExpr, st state, deferred bool) {
	var key string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Release" {
			return
		}
		recv := analysis.ExprString(fun.X)
		if recv == "" {
			return
		}
		key = recv + ".Release"
	case *ast.Ident:
		key = fun.Name
	default:
		return
	}
	p, live := st[key]
	if !live {
		return
	}
	if deferred {
		p.deferred = true
		return
	}
	delete(st, key)
}

func identName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// errNilCheck matches `X != nil` conditions and returns X's name.
func errNilCheck(cond ast.Expr) (string, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return "", false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if id, ok := x.(*ast.Ident); ok && isNil(y) {
		return id.Name, true
	}
	if id, ok := y.(*ast.Ident); ok && isNil(x) {
		return id.Name, true
	}
	return "", false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control away
// (ends in return, panic, continue, break, or goto).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
