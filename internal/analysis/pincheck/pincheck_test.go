package pincheck_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/pincheck"
)

func TestPincheck(t *testing.T) {
	analysistest.Run(t, "../testdata/pincheck", pincheck.Analyzer)
}
