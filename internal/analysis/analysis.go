// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so
// the repository carries no module dependencies. It exists to make the
// engine's hand-written contracts — the storage package's lock and epoch
// rules, the blockstore pin/reload protocol, the batch path's
// no-allocation discipline — machine-checkable on every build instead of
// enforced by prose and code review.
//
// The API mirrors go/analysis deliberately: an Analyzer owns a Run
// function over a Pass that exposes the package's syntax and type
// information and reports Diagnostics. Should the upstream module become
// available, the analyzers port by changing one import path.
//
// # Directives
//
// Analyzers and the driver understand three comment directives:
//
//	//dbvet:locks <field>   on a function: callers must hold the named
//	                        mutex field of the receiver (lockcheck).
//	//dbvet:hotpath         on a function or function literal: the body
//	                        must obey the hot-path discipline (hotpath).
//	//dbvet:ignore <reason> suppresses every dbvet diagnostic on the
//	                        same line, or on the next line when the
//	                        directive stands alone. The reason is
//	                        mandatory: an ignore without one is itself
//	                        reported.
//
// Drivers: cmd/dbvet runs the suite standalone over package patterns and
// speaks the `go vet -vettool` protocol; analysistest runs one analyzer
// over a fixture tree annotated with `// want` expectations.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check: a name, a contract description, and a
// Run function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. It must be a valid Go identifier.
	Name string

	// Doc states the contract the analyzer enforces. The first line is
	// the summary shown by `dbvet help`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an error only for internal failures —
	// a finding is a Diagnostic, never an error.
	Run func(*Pass) (any, error)

	// ExportsFacts marks analyzers that call Pass.ExportFact. Drivers
	// run only these (and only over module packages) when a unit is
	// analyzed purely for its facts (go vet's VetxOnly mode).
	ExportsFacts bool
}

// A Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package's source directory ("" when unknown), which
	// fact layers that shell out per package (gcfacts) key off.
	Dir string

	// Report delivers one finding. The driver applies //dbvet:ignore
	// suppression after this call.
	Report func(Diagnostic)

	// deps holds the facts exported by this package's dependencies,
	// one PackageFacts per dependency that produced any; export
	// collects the facts this pass produces for its dependents.
	deps   []PackageFacts
	export PackageFacts
}

// PackageFacts is the serialized analysis state one package exports for
// its dependents, keyed by analyzer name. It travels through the go
// vet vetx files in -vettool mode and in memory (plus the result
// cache) in standalone mode.
type PackageFacts map[string]json.RawMessage

// DepFacts returns the facts the named analyzer exported from each of
// this package's dependencies, in dependency order.
func (p *Pass) DepFacts(name string) []json.RawMessage {
	var out []json.RawMessage
	for _, d := range p.deps {
		if raw, ok := d[name]; ok {
			out = append(out, raw)
		}
	}
	return out
}

// ExportFact serializes v as this analyzer's fact for dependent
// packages. The value must marshal deterministically (sorted slices;
// maps are fine, encoding/json orders their keys), or the go command's
// vetx-based caching churns.
func (p *Pass) ExportFact(v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%s: exporting fact: %w", p.Analyzer.Name, err)
	}
	p.export[p.Analyzer.Name] = raw
	return nil
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, attributed to the analyzer that produced
// it by the driver.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks the analyzer set for driver use: non-empty unique
// names and a Run function each.
func Validate(analyzers []*Analyzer) error {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q lacks a name or Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// directivePrefix introduces every dbvet comment directive.
const directivePrefix = "//dbvet:"

// Directive is one parsed //dbvet: comment.
type Directive struct {
	Pos  token.Pos
	Name string // "ignore", "locks", "hotpath", ...
	// Args is the remainder of the line, space-trimmed. An embedded
	// "//" ends the arguments (comment-within-comment convention), so
	// test fixtures can append `// want` expectations to a directive.
	Args string
	// EndOfLine reports whether the directive trails code on its line
	// (true) or stands alone (false). A standalone ignore applies to the
	// next line; a trailing one to its own.
	EndOfLine bool
}

// fileDirectives extracts every dbvet directive of one file. Line
// directives attached to declarations are found through comment groups;
// free-standing comments are found through File.Comments, which includes
// all of them when the file was parsed with parser.ParseComments. A
// directive is classified end-of-line (trailing code) when any other AST
// token ends on its line before it, which is decided by comparing the
// comment's column with the line's first non-comment token.
func fileDirectives(fset *token.FileSet, f *ast.File) []Directive {
	// lineHasCode records lines on which some non-comment syntax ends.
	lineHasCode := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		lineHasCode[fset.Position(n.Pos()).Line] = true
		lineHasCode[fset.Position(n.End()).Line] = true
		return true
	})
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, args := splitDirective(text)
			pos := fset.Position(c.Pos())
			out = append(out, Directive{
				Pos:       c.Pos(),
				Name:      name,
				Args:      args,
				EndOfLine: lineHasCode[pos.Line],
			})
		}
	}
	return out
}

// FileDirectives returns every dbvet directive in one file, for
// analyzers that attach directives to non-declaration nodes (hotpath on
// function literals).
func FileDirectives(fset *token.FileSet, f *ast.File) []Directive {
	return fileDirectives(fset, f)
}

// FuncDirective returns the named directive attached to a function
// declaration's doc comment, if any.
func FuncDirective(fset *token.FileSet, decl *ast.FuncDecl, name string) (Directive, bool) {
	if decl.Doc == nil {
		return Directive{}, false
	}
	for _, c := range decl.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			if n, args := splitDirective(text); n == name {
				return Directive{Pos: c.Pos(), Name: n, Args: args}, true
			}
		}
	}
	return Directive{}, false
}

// splitDirective separates a directive's name from its arguments,
// cutting the arguments at an embedded "//".
func splitDirective(text string) (name, args string) {
	name, args, _ = strings.Cut(text, " ")
	if i := strings.Index(args, "//"); i >= 0 {
		args = args[:i]
	}
	return name, strings.TrimSpace(args)
}

// ignoreIndex records, per file line, whether a //dbvet:ignore directive
// suppresses diagnostics there, and whether the directive carried the
// mandatory reason.
type ignoreIndex struct {
	fset *token.FileSet
	// byLine maps filename -> line -> directive.
	byLine map[string]map[int]Directive
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{fset: fset, byLine: map[string]map[int]Directive{}}
	for _, f := range files {
		for _, d := range fileDirectives(fset, f) {
			if d.Name != "ignore" {
				continue
			}
			pos := fset.Position(d.Pos)
			m := idx.byLine[pos.Filename]
			if m == nil {
				m = map[int]Directive{}
				idx.byLine[pos.Filename] = m
			}
			line := pos.Line
			if !d.EndOfLine {
				// A standalone ignore covers the following line.
				line++
			}
			m[line] = d
		}
	}
	return idx
}

// suppressed reports whether a diagnostic at pos is covered by an ignore
// directive, and returns that directive.
func (idx *ignoreIndex) suppressed(pos token.Pos) (Directive, bool) {
	p := idx.fset.Position(pos)
	d, ok := idx.byLine[p.Filename][p.Line]
	return d, ok
}

// ResultDiagnostic is a finding after suppression, tagged with the
// analyzer that produced it.
type ResultDiagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// RunAnalyzers applies each analyzer to pkg, applies //dbvet:ignore
// suppression, and returns surviving findings sorted by position plus
// the facts the analyzers exported for dependent packages. deps carries
// the facts of the package's dependencies (nil when unknown — the
// analyzers degrade to package-local precision). An ignore directive
// without a reason is reported as a finding of the pseudo-analyzer
// "dbvet". suppressedCount reports how many findings the directives
// swallowed, so drivers can surface the suppression budget.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, deps []PackageFacts) (diags []ResultDiagnostic, suppressedCount int, facts PackageFacts, err error) {
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
	facts = PackageFacts{}

	// Reasonless ignores are findings themselves: the escape hatch
	// demands a written justification.
	for _, m := range idx.byLine {
		for _, d := range m {
			if d.Args == "" {
				diags = append(diags, ResultDiagnostic{
					Analyzer: "dbvet",
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  "//dbvet:ignore requires a written justification",
				})
			}
		}
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Dir:       pkg.Dir,
			deps:      deps,
			export:    facts,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			if _, ok := idx.suppressed(d.Pos); ok {
				suppressedCount++
				return
			}
			diags = append(diags, ResultDiagnostic{
				Analyzer: name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, rerr := a.Run(pass); rerr != nil {
			return nil, 0, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, rerr)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, suppressedCount, facts, nil
}
