package deadlockcheck_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/deadlockcheck"
)

func TestDeadlockcheck(t *testing.T) {
	analysistest.Run(t, "../testdata/deadlockcheck", deadlockcheck.Analyzer)
}
