// Package deadlockcheck proves the engine's lock order acyclic. It
// replaces the pairwise rank check lockcheck carried before dbvet v2
// with an interprocedural acquires-before graph:
//
//   - Per function, a may-hold dataflow over the control-flow graph
//     records which lock classes ("Relation.mu", "Chunk.loadMu", …) can
//     be held at every acquisition and call site. Acquiring B while
//     holding A contributes the edge A→B.
//   - Per package, a call-graph fixpoint folds callee acquisitions into
//     caller summaries, so `r.mu.Lock(); c.load()` contributes
//     Relation.mu→Chunk.loadMu even when the loadMu.Lock() sits three
//     calls deep. The fixpoint is bounded by the module's import DAG:
//     summaries of other packages arrive as analysis facts (through go
//     vet's vetx files, or threaded in memory by the standalone
//     driver), already transitively closed. Functions without a visible
//     body or summary — interface methods, function values, stdlib —
//     contribute nothing; a *Locked name or a //dbvet:locks annotation
//     is exactly the summary at that boundary: the callee requires its
//     lock held and acquires nothing new.
//   - The documented order (Order) seeds the graph: DB.mu before
//     DB.catMu before tableStripe.wmu before relStripe.mu before
//     Chunk.loadMu before Relation.mu before Relation.loadErrMu before
//     the WAL's Log.flushMu before Log.mu. Any observed edge that closes a cycle
//     against the seeded and accumulated graph — a pairwise inversion,
//     or a cycle spanning any number of hops and packages — is
//     reported at the acquisition or call that creates it.
package deadlockcheck

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"datablocks/internal/analysis"
	"datablocks/internal/analysis/cfg"
	"datablocks/internal/analysis/dataflow"
	"datablocks/internal/analysis/lockutil"
)

// Order is the engine's documented acquires-before chain, the seed of
// the lock-order graph (see internal/storage's package doc and
// ARCHITECTURE.md, "Enforced invariants").
var Order = []string{
	"DB.mu",
	"DB.catMu",
	"tableStripe.wmu",
	"relStripe.mu",
	"Chunk.loadMu",
	"Relation.mu",
	"Relation.loadErrMu",
	"Log.flushMu",
	"Log.mu",
}

// Analyzer is the deadlockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name:         "deadlockcheck",
	Doc:          "build the interprocedural acquires-before lock graph and report any cycle",
	Run:          run,
	ExportsFacts: true,
}

// packageFact is what one package exports for its dependents: the
// transitively-closed acquisition summaries of its functions, and the
// cumulative edge set of the package and everything below it.
type packageFact struct {
	Funcs map[string]funcSummary `json:"funcs,omitempty"`
	Edges [][2]string            `json:"edges,omitempty"`
}

type funcSummary struct {
	Acquires []string `json:"acquires"`
}

// callSite is one resolved call with the lock classes possibly held.
type callSite struct {
	callee string
	held   []string
	pos    token.Pos
}

// funcInfo is the per-function analysis before the fixpoint.
type funcInfo struct {
	id       string
	acquires map[string]bool
	calls    []callSite
}

type observedEdge struct{ from, to string }

func run(pass *analysis.Pass) (any, error) {
	ann := lockutil.CollectAnnotations(pass)

	// Dependency summaries and their accumulated edges.
	depFuncs := map[string]funcSummary{}
	edgeSites := map[observedEdge][]token.Pos{} // own edges, every site
	depEdges := map[observedEdge]bool{}
	for _, raw := range pass.DepFacts("deadlockcheck") {
		var f packageFact
		if json.Unmarshal(raw, &f) != nil {
			continue
		}
		for id, s := range f.Funcs {
			depFuncs[id] = s
		}
		for _, e := range f.Edges {
			depEdges[observedEdge{e[0], e[1]}] = true
		}
	}

	// Pass 1: per-function may-hold replay.
	var funcs []*funcInfo
	byID := map[string]*funcInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := analyzeBody(pass, fd.Body, lockutil.EntryLocks(pass.TypesInfo, fd, ann), edgeSites)
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fi.id = obj.FullName()
				byID[fi.id] = fi
			}
			funcs = append(funcs, fi)
			// Function literals run as independent roots: nothing held
			// at entry unless they acquire it themselves, and no
			// exported summary (nothing can name them), but the edges
			// and calls they perform are real.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					funcs = append(funcs, analyzeBody(pass, lit.Body, dataflow.LockSet{}, edgeSites))
					return false
				}
				return true
			})
		}
	}

	// Pass 2: transitively close acquisition summaries over the
	// package call graph. Same-package callees resolve to their
	// evolving summary; cross-package callees to the (final) dep fact;
	// everything else — including *Locked and //dbvet:locks callees,
	// which by contract hold rather than acquire — contributes nothing.
	summaryOf := func(id string) map[string]bool {
		if fi, ok := byID[id]; ok {
			return fi.acquires
		}
		if s, ok := depFuncs[id]; ok {
			out := make(map[string]bool, len(s.Acquires))
			for _, c := range s.Acquires {
				out[c] = true
			}
			return out
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			for _, cs := range fi.calls {
				for c := range summaryOf(cs.callee) {
					if !fi.acquires[c] {
						fi.acquires[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: edges through calls — holding H while calling a function
	// that (transitively) acquires A is the acquisition order H→A.
	for _, fi := range funcs {
		for _, cs := range fi.calls {
			for a := range summaryOf(cs.callee) {
				for _, h := range cs.held {
					e := observedEdge{h, a}
					edgeSites[e] = append(edgeSites[e], cs.pos)
				}
			}
		}
	}

	// Build the acquires-before graph incrementally, keeping it acyclic:
	// start from the documented seed, add the dependency edges (their
	// inversions were already reported where they happen; a cycle-closing
	// dep edge is dropped rather than poisoning this package), then fold
	// in the observed edges in source order. An edge consistent with the
	// graph so far joins it; an edge that would close a cycle is the
	// deviation, reported at every site that creates it — the documented
	// order stays blameless even when a file contains both directions.
	g := newGraph()
	for i := 0; i+1 < len(Order); i++ {
		g.add(Order[i], Order[i+1])
	}
	sortedDep := make([]observedEdge, 0, len(depEdges))
	for e := range depEdges {
		sortedDep = append(sortedDep, e)
	}
	sort.Slice(sortedDep, func(i, j int) bool {
		if sortedDep[i].from != sortedDep[j].from {
			return sortedDep[i].from < sortedDep[j].from
		}
		return sortedDep[i].to < sortedDep[j].to
	})
	accepted := map[observedEdge]bool{}
	for _, e := range sortedDep {
		if e.from != e.to && g.path(e.to, e.from) == nil {
			g.add(e.from, e.to)
			accepted[e] = true
		}
	}
	own := make([]observedEdge, 0, len(edgeSites))
	for e, sites := range edgeSites {
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		own = append(own, e)
	}
	sort.Slice(own, func(i, j int) bool { return edgeSites[own[i]][0] < edgeSites[own[j]][0] })
	for _, e := range own {
		path := g.path(e.to, e.from)
		if path == nil {
			g.add(e.from, e.to)
			accepted[e] = true
			continue
		}
		for _, pos := range edgeSites[e] {
			pass.Reportf(pos,
				"acquiring %s while holding %s creates a cycle in the acquires-before graph: %s",
				e.to, e.from, renderCycle(e, path))
		}
	}

	// Export: own summaries (already transitively closed) plus the
	// cumulative acyclic edge set, deterministically sorted.
	fact := packageFact{Funcs: map[string]funcSummary{}}
	for id, fi := range byID {
		if len(fi.acquires) == 0 {
			continue
		}
		acq := make([]string, 0, len(fi.acquires))
		for c := range fi.acquires {
			acq = append(acq, c)
		}
		sort.Strings(acq)
		fact.Funcs[id] = funcSummary{Acquires: acq}
	}
	for e := range accepted {
		fact.Edges = append(fact.Edges, [2]string{e.from, e.to})
	}
	sort.Slice(fact.Edges, func(i, j int) bool {
		if fact.Edges[i][0] != fact.Edges[j][0] {
			return fact.Edges[i][0] < fact.Edges[j][0]
		}
		return fact.Edges[i][1] < fact.Edges[j][1]
	})
	if len(fact.Funcs) > 0 || len(fact.Edges) > 0 {
		if err := pass.ExportFact(fact); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// analyzeBody runs the may-hold fixpoint over one body, recording
// direct acquisition edges into edgeSites and returning the function's
// direct acquisitions and resolved call sites.
func analyzeBody(pass *analysis.Pass, body *ast.BlockStmt, entry dataflow.LockSet, edgeSites map[observedEdge][]token.Pos) *funcInfo {
	g := cfg.New(body)
	cls := &lockutil.Classifier{
		Info:    pass.TypesInfo,
		Entry:   entry,
		Aliases: lockutil.ResolveAliases(g, pass.TypesInfo),
	}
	lat := dataflow.Locks{C: cls, Must: false}
	res := dataflow.Forward(g, lat)

	fi := &funcInfo{acquires: map[string]bool{}}
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		held := lat.Copy(in)
		visit := func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit, *ast.RangeStmt, *ast.DeferStmt:
					// Literals are separate roots; a deferred unlock is
					// not an acquisition; deferred calls run at return
					// with unknowable held sets — skip conservatively.
					return false
				case *ast.CallExpr:
					applySite(pass, cls, n, held, fi, edgeSites)
				}
				return true
			})
		}
		for _, n := range b.Nodes {
			visit(n)
		}
	}
	return fi
}

// applySite classifies one call: a lock operation updates held and
// records direct edges; any other resolvable call becomes a call site
// with the currently-held classes.
func applySite(pass *analysis.Pass, cls *lockutil.Classifier, call *ast.CallExpr, held dataflow.LockSet, fi *funcInfo, edgeSites map[observedEdge][]token.Pos) {
	if op, tok, class := cls.ClassifyLockOp(call); op != 0 {
		switch op {
		case +1:
			// Re-acquiring the identical token is lockcheck's
			// self-deadlock, not an ordering edge; a second instance of
			// the same class (a.mu held, b.mu acquired) is.
			if _, dup := held[tok]; class != "" && !dup {
				fi.acquires[class] = true
				for _, h := range heldClasses(held) {
					e := observedEdge{h, class}
					edgeSites[e] = append(edgeSites[e], call.Pos())
				}
			}
			held[tok] = class
		case -1:
			delete(held, tok)
		}
		return
	}
	obj, ok := analysis.CalleeObject(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return
	}
	classes := heldClasses(held)
	if len(classes) == 0 {
		// Nothing held: the callee's acquisitions order against nothing
		// here, but the call still matters for this function's own
		// transitive summary.
		fi.calls = append(fi.calls, callSite{callee: obj.FullName(), pos: call.Pos()})
		return
	}
	fi.calls = append(fi.calls, callSite{callee: obj.FullName(), held: classes, pos: call.Pos()})
}

func heldClasses(held dataflow.LockSet) []string {
	seen := map[string]bool{}
	var out []string
	for _, class := range held {
		if class != "" && !seen[class] {
			seen[class] = true
			out = append(out, class)
		}
	}
	sort.Strings(out)
	return out
}

// graph is the acquires-before digraph over lock classes.
type graph struct{ succs map[string]map[string]bool }

func newGraph() *graph { return &graph{succs: map[string]map[string]bool{}} }

func (g *graph) add(from, to string) {
	m := g.succs[from]
	if m == nil {
		m = map[string]bool{}
		g.succs[from] = m
	}
	m[to] = true
}

// path returns some path from → to (inclusive), or nil. A self-path
// (from == to) requires an actual edge or cycle, except the trivial
// case where the query asks from==to and an edge from→from exists.
func (g *graph) path(from, to string) []string {
	if from == to {
		return []string{from, to}
	}
	prev := map[string]string{}
	queue := []string{from}
	seen := map[string]bool{from: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		next := make([]string, 0, len(g.succs[n]))
		for s := range g.succs[n] {
			next = append(next, s)
		}
		sort.Strings(next)
		for _, s := range next {
			if seen[s] {
				continue
			}
			seen[s] = true
			prev[s] = n
			if s == to {
				var path []string
				for cur := to; ; cur = prev[cur] {
					path = append([]string{cur}, path...)
					if cur == from {
						return path
					}
				}
			}
			queue = append(queue, s)
		}
	}
	return nil
}

// renderCycle formats the cycle the edge closes: the edge itself, then
// the return path.
func renderCycle(e observedEdge, path []string) string {
	out := e.from
	for _, n := range path {
		out += " → " + n
	}
	return out
}
