package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// A Package is one loaded, parsed and type-checked compilation unit,
// ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// ListedPath is the import path as `go list` printed it, which for
	// test variants carries the bracket suffix ("p [p.test]",
	// "p_test [p.test]"). It keys the facts map threaded between
	// packages; PkgPath is the clean path handed to the type checker.
	ListedPath string
	// Dir is the package directory on disk.
	Dir string
	// Deps are the listed import paths of all (transitive)
	// dependencies, used to hand each package its dependencies' facts.
	Deps []string
	// SrcFiles are the absolute paths of the files in Files, in order.
	SrcFiles []string
	// DepExports maps each dependency that has compiler export data to
	// that file's path. The path embeds the go build cache's output
	// hash, so it changes whenever the dependency's compiled form
	// does — the standalone result cache keys on it.
	DepExports map[string]string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Deps       []string
	DepOnly    bool
	Standard   bool
	Name       string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns in dir (module-aware, like
// the go tool itself), then parses and type-checks every matched
// package from source. Dependencies — including the standard library —
// are imported from compiler export data produced by `go list -export`,
// so loading works offline and without any third-party module.
//
// Test files are included, exactly as the `go vet -vettool` path sees
// them: `go list -test` expands each package with tests into its
// test-augmented variant ("p [p.test]", whose GoFiles fold in the
// in-package _test.go files) and the external test package
// ("p_test [p.test]"); Load analyzes those instead of the plain
// package, so the standalone and vettool modes cannot disagree on
// findings. The synthesized test-binary mains ("p.test") are skipped.
//
// The returned slice is in dependency order: a package appears after
// every package it imports, so drivers can thread analysis facts
// forward in one sweep.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-test", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // listed package path -> export data file
	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		listed = append(listed, lp)
	}

	// A plain package is superseded by its test-augmented variant: the
	// variant's GoFiles are a superset, so analyzing both would duplicate
	// every finding in the non-test files.
	augmented := map[string]bool{}
	for _, lp := range listed {
		if lp.ForTest != "" && lp.ImportPath == lp.ForTest+testSuffix(lp.ImportPath) {
			augmented[lp.ForTest] = true
		}
	}

	var targets []*listPackage
	for _, lp := range listed {
		switch {
		case lp.DepOnly, lp.Standard:
		case lp.Name == "main" && strings.HasSuffix(lp.ImportPath, ".test"):
			// The generated test-binary main: nothing human-written.
		case augmented[lp.ImportPath]:
		default:
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, exports, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	// `go list -deps` emits dependencies before dependents, so targets
	// (and therefore out) are already in dependency order.
	return out, nil
}

// testSuffix extracts the " [p.test]" bracket suffix of a test-variant
// import path, or "".
func testSuffix(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[i:]
	}
	return ""
}

// cleanPath strips the test-variant bracket suffix.
func cleanPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// typeCheck parses and checks one listed package from source. Each
// package gets its own importer so the external-test remapping (the
// "p_test [p.test]" package's import of "p" must resolve to the
// test-augmented "p [p.test]" export, which carries the in-package test
// symbols) cannot pollute another package's import cache.
func typeCheck(fset *token.FileSet, exports map[string]string, lp *listPackage) (*Package, error) {
	suffix := testSuffix(lp.ImportPath)
	compilerImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if suffix != "" {
			if file, ok := exports[path+suffix]; ok {
				return os.Open(file)
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var files []*ast.File
	var srcs []string
	for _, name := range lp.GoFiles {
		if !strings.HasPrefix(name, "/") {
			name = lp.Dir + "/" + name
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
		srcs = append(srcs, name)
	}
	goVersion := ""
	if lp.Module != nil && lp.Module.GoVersion != "" {
		goVersion = "go" + lp.Module.GoVersion
	}
	pkg, err := checkFiles(fset, compilerImp, cleanPath(lp.ImportPath), goVersion, files)
	if err != nil {
		return nil, err
	}
	pkg.ListedPath = lp.ImportPath
	pkg.Dir = lp.Dir
	pkg.Deps = lp.Deps
	pkg.SrcFiles = srcs
	pkg.DepExports = map[string]string{}
	for _, dep := range lp.Deps {
		if file, ok := exports[dep]; ok {
			pkg.DepExports[dep] = file
		}
	}
	return pkg, nil
}

// checkFiles runs the type checker over parsed files, producing the full
// types.Info an analyzer Pass expects.
func checkFiles(fset *token.FileSet, imp types.Importer, path, goVersion string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: imp, GoVersion: goVersion}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		PkgPath:   path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
