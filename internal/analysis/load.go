package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// A Package is one loaded, parsed and type-checked compilation unit,
// ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns in dir (module-aware, like
// the go tool itself), then parses and type-checks every matched package
// from source. Dependencies — including the standard library — are
// imported from compiler export data produced by `go list -export`, so
// loading works offline and without any third-party module. Test files
// are not included: dbvet analyzes the shipping code, and the fixtures
// under analysistest are plain packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // package path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	// The gc importer reads the export data the go tool just compiled;
	// the lookup resolves package paths to those files. The importer
	// caches, so one instance serves every target package.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typeCheck parses and checks one listed package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		if !strings.HasPrefix(name, "/") {
			name = lp.Dir + "/" + name
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	goVersion := ""
	if lp.Module != nil && lp.Module.GoVersion != "" {
		goVersion = "go" + lp.Module.GoVersion
	}
	return checkFiles(fset, imp, lp.ImportPath, goVersion, files)
}

// checkFiles runs the type checker over parsed files, producing the full
// types.Info an analyzer Pass expects.
func checkFiles(fset *token.FileSet, imp types.Importer, path, goVersion string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: imp, GoVersion: goVersion}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		PkgPath:   path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
