// Package dataflow is the fixpoint engine the flow-sensitive dbvet
// analyzers share. It runs a forward worklist iteration over a cfg.Graph
// with a client-supplied lattice: the client defines the abstract state,
// the join at control-flow merges, the transfer over one evaluated node,
// and (optionally) the refinement applied along branch edges, which is
// how `if x == nil` narrows x on one side of the branch without SSA.
//
// Two concrete analyses ship with the engine because several analyzers
// need them: Locks (the set of mutexes held, with a must- and a
// may-variant of the join — lockcheck reports on must-held, the
// deadlock graph collects edges on may-held) and ReachingDefs (which
// definitions of each variable reach a point, used to resolve local
// aliases of lock fields).
package dataflow

import (
	"go/ast"
	"go/token"

	"datablocks/internal/analysis/cfg"
)

// A Lattice drives one forward analysis.
type Lattice[S any] interface {
	// Entry is the state at function entry.
	Entry() S
	// Copy returns an independent copy of s.
	Copy(s S) S
	// Equal reports state equality; the fixpoint stops on it.
	Equal(a, b S) bool
	// Join merges two states at a control-flow merge, in place on a
	// (a may alias a previous Copy).
	Join(a, b S) S
	// Transfer applies one evaluated node to s in place.
	Transfer(n ast.Node, s S) S
	// TransferEdge refines s for traveling edge e (s is already a
	// private copy). Implementations that don't refine return s.
	TransferEdge(e *cfg.Edge, s S) S
}

// Result holds the fixpoint: the state at the entry of each block.
type Result[S any] struct {
	In map[*cfg.Block]S
	l  Lattice[S]
}

// Forward runs the analysis to fixpoint. Unreachable blocks get no
// entry in Result.In.
func Forward[S any](g *cfg.Graph, l Lattice[S]) *Result[S] {
	res := &Result[S]{In: map[*cfg.Block]S{}, l: l}
	res.In[g.Entry] = l.Entry()

	work := []*cfg.Block{g.Entry}
	queued := map[*cfg.Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := res.l.Copy(res.In[b])
		for _, n := range b.Nodes {
			out = l.Transfer(n, out)
		}
		for _, e := range b.Succs {
			next := l.TransferEdge(e, l.Copy(out))
			old, ok := res.In[e.To]
			if !ok {
				res.In[e.To] = next
			} else {
				joined := l.Join(l.Copy(old), next)
				if l.Equal(joined, old) {
					continue
				}
				res.In[e.To] = joined
			}
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return res
}

// Walk replays the transfer function over every reachable block,
// invoking visit before each node with the state holding at that node.
// It is how analyzers turn a fixpoint into diagnostics: the states are
// final, so one pass suffices.
func (r *Result[S]) Walk(g *cfg.Graph, visit func(n ast.Node, s S)) {
	for _, b := range g.Blocks {
		in, ok := r.In[b]
		if !ok {
			continue
		}
		s := r.l.Copy(in)
		for _, n := range b.Nodes {
			visit(n, s)
			s = r.l.Transfer(n, s)
		}
	}
}

// ---------------------------------------------------------------------
// Locks: the held-mutex set.

// A LockSet maps a canonical lock token (e.g. "r.mu") to the lock's
// class ("Relation.mu", "" when the mutex is a plain variable with no
// declaring type).
type LockSet map[string]string

// LockClassifier tells the lattice how the client's package maps AST
// call expressions to lock operations. Classify returns the operation a
// call performs on a recognizable mutex (token + class), or opNone.
type LockClassifier interface {
	// ClassifyLockOp reports whether call acquires (+1) or releases
	// (-1) a mutex, with the canonical token and class; 0 otherwise.
	ClassifyLockOp(call *ast.CallExpr) (op int, token, class string)
	// EntryLocks returns the set held at function entry (a *Locked
	// function holds its contract mutex).
	EntryLocks() LockSet
}

// Locks is the lattice of held mutexes. Must selects the join:
// intersection (must-hold, for reporting missing holds and definite
// re-acquisition) or union (may-hold, for building the acquires-before
// graph, where any path's acquisition order matters).
type Locks struct {
	C    LockClassifier
	Must bool
}

func (l Locks) Entry() LockSet {
	e := l.C.EntryLocks()
	out := make(LockSet, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func (Locks) Copy(s LockSet) LockSet {
	out := make(LockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (Locks) Equal(a, b LockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (l Locks) Join(a, b LockSet) LockSet {
	if l.Must {
		for k := range a {
			if _, ok := b[k]; !ok {
				delete(a, k)
			}
		}
		return a
	}
	for k, v := range b {
		a[k] = v
	}
	return a
}

func (l Locks) Transfer(n ast.Node, s LockSet) LockSet {
	// Deferred unlocks run at return, not here; deferred locks are not
	// a pattern the engine uses.
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return s
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // literals are analyzed as their own functions
		case *ast.DeferStmt:
			return false
		case *ast.RangeStmt:
			return false // the binding only; X and Body live elsewhere
		case *ast.CallExpr:
			op, tok, class := l.C.ClassifyLockOp(n)
			switch op {
			case +1:
				s[tok] = class
			case -1:
				delete(s, tok)
			}
		}
		return true
	})
	return s
}

func (Locks) TransferEdge(_ *cfg.Edge, s LockSet) LockSet { return s }

// ---------------------------------------------------------------------
// ReachingDefs: which assignments reach each point.

// A Def is one definition site of a variable: the defining node and the
// assigned expression (nil for definitions whose value is opaque — a
// range binding, a multi-value assignment, a declared zero value).
type Def struct {
	Pos token.Pos
	RHS ast.Expr
}

// DefSet maps a variable identity (types.Object, but kept as an opaque
// comparable to avoid the dependency here) to the set of definitions
// reaching the point, keyed by position.
type DefSet map[any]map[token.Pos]Def

// DefResolver tells ReachingDefs which identifier definitions to track
// and how to resolve an identifier to its variable identity.
type DefResolver interface {
	// DefinedVars returns (identity, def) pairs the node generates, or
	// nil. Assignments kill previous definitions of the same identity.
	DefsOf(n ast.Node) []IdentityDef
}

// IdentityDef pairs a variable identity with one definition.
type IdentityDef struct {
	Identity any
	Def      Def
}

// ReachingDefs is the classic kill/gen lattice over DefSet.
type ReachingDefs struct{ R DefResolver }

func (ReachingDefs) Entry() DefSet { return DefSet{} }

func (ReachingDefs) Copy(s DefSet) DefSet {
	out := make(DefSet, len(s))
	for k, defs := range s {
		m := make(map[token.Pos]Def, len(defs))
		for p, d := range defs {
			m[p] = d
		}
		out[k] = m
	}
	return out
}

func (ReachingDefs) Equal(a, b DefSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, da := range a {
		db, ok := b[k]
		if !ok || len(da) != len(db) {
			return false
		}
		for p := range da {
			if _, ok := db[p]; !ok {
				return false
			}
		}
	}
	return true
}

func (ReachingDefs) Join(a, b DefSet) DefSet {
	for k, defs := range b {
		m := a[k]
		if m == nil {
			m = map[token.Pos]Def{}
			a[k] = m
		}
		for p, d := range defs {
			m[p] = d
		}
	}
	return a
}

func (r ReachingDefs) Transfer(n ast.Node, s DefSet) DefSet {
	for _, id := range r.R.DefsOf(n) {
		s[id.Identity] = map[token.Pos]Def{id.Def.Pos: id.Def}
	}
	return s
}

func (ReachingDefs) TransferEdge(_ *cfg.Edge, s DefSet) DefSet { return s }
