package hotpath_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "../testdata/hotpath", hotpath.Analyzer)
}
