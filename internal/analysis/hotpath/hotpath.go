// Package hotpath enforces the batch-kernel discipline on functions
// annotated //dbvet:hotpath (in the doc comment of a declaration, or on
// the line of — or immediately above — a function literal). These are
// the per-batch inner loops of the scan, filter, join and aggregation
// paths: they run once per 1024-row batch and must stay allocation-free
// and branch-predictable. Inside an annotated body the analyzer flags:
//
//   - map iteration (range over a map): non-deterministic order and a
//     hash-table walk per batch; hot kernels index maps, they do not
//     walk them.
//   - calls into fmt: every fmt call allocates and reflects. Hot-path
//     errors are returned as sentinel values or pre-formatted.
//   - interface conversions of concrete values (explicit conversions,
//     or type assertions back out of any): each boxes its operand onto
//     the heap.
//   - panic: kernels must return errors; a panic in a per-batch loop
//     tears down the whole scan driver.
//   - shared telemetry: method calls on the obs package's process-wide
//     instruments (Counter, Gauge, Histogram — all backed by a single
//     atomic) contend one cache line across every worker on every
//     batch. Kernels must use the per-worker Shard* fast path (plain
//     fields) and flush at batch boundaries.
//   - expvar: the global registry locks and allocates; export metrics
//     from outside the kernel.
//
// The annotation is inherited by function literals declared inside an
// annotated body (they run on the same per-batch path).
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"datablocks/internal/analysis"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "check that //dbvet:hotpath functions avoid map iteration, fmt, interface boxing and panic",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Lines carrying a hotpath directive; a directive on (or directly
		// above) a function literal's opening line marks that literal.
		litLines := map[int]bool{}
		for _, d := range analysis.FileDirectives(pass.Fset, f) {
			if d.Name != "hotpath" {
				continue
			}
			line := pass.Fset.Position(d.Pos).Line
			litLines[line] = true
			if !d.EndOfLine {
				litLines[line+1] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if _, ok := analysis.FuncDirective(pass.Fset, n, "hotpath"); ok && n.Body != nil {
					checkBody(pass, n.Body)
					return false
				}
			case *ast.FuncLit:
				if litLines[pass.Fset.Position(n.Pos()).Line] {
					checkBody(pass, n.Body)
					return false
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkBody walks one annotated body, including nested literals (the
// annotation is inherited — a closure built on the hot path runs on it).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "hot path iterates a map: per-batch hash-table walks are forbidden (index the map or hoist the iteration out of //dbvet:hotpath code)")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.TypeAssertExpr:
			// x.(T) where T is concrete: the success path is fine (no
			// allocation), but asserting back *into* an interface boxes.
			if n.Type != nil {
				if t := info.TypeOf(n.Type); t != nil && analysis.IsInterface(t) {
					pass.Reportf(n.Pos(), "hot path asserts to an interface type: the conversion allocates (keep kernels monomorphic)")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo

	// panic tears down the scan driver mid-batch.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if obj, isUse := info.Uses[id]; isUse {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "hot path calls panic: kernels must return errors, not unwind per-batch loops")
				return
			}
		}
	}

	// fmt allocates and reflects on every call.
	if analysis.IsPackageFunc(info, call, "fmt") {
		obj := analysis.CalleeObject(info, call)
		pass.Reportf(call.Pos(), "hot path calls fmt.%s: fmt allocates and reflects; format outside the per-batch loop", obj.Name())
		return
	}

	// Telemetry discipline: the obs package's shared instruments are
	// process-wide atomics — an increment from a kernel contends one cache
	// line across every worker, once per batch element. Only the sharded
	// per-worker API (Shard* types, plain fields) may run here; shards are
	// merged into the shared instruments at batch boundaries.
	if obj := analysis.CalleeObject(info, call); obj != nil && obj.Pkg() != nil {
		if obj.Pkg().Name() == "obs" {
			if recv := receiverNamed(obj); recv != nil && !strings.HasPrefix(recv.Obj().Name(), "Shard") {
				pass.Reportf(call.Pos(), "hot path calls %s.%s on shared telemetry: every worker contends the same atomic; count into a per-worker obs.Shard%s and flush at the batch boundary", recv.Obj().Name(), obj.Name(), recv.Obj().Name())
				return
			}
		}
		if obj.Pkg().Path() == "expvar" {
			pass.Reportf(call.Pos(), "hot path calls into expvar: the global registry locks and allocates; export metrics outside //dbvet:hotpath code")
			return
		}
	}

	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if analysis.IsInterface(tv.Type) {
			if argT := info.TypeOf(call.Args[0]); argT != nil && !analysis.IsInterface(argT) {
				pass.Reportf(call.Pos(), "hot path converts a concrete value to an interface: the conversion allocates")
			}
		}
	}
}

// receiverNamed returns the named type a method is declared on (through
// a pointer receiver), or nil for plain functions.
func receiverNamed(obj types.Object) *types.Named {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
