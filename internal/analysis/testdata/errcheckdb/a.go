package fixture

// Store mimics the engine APIs on the curated errcheckdb list.
type Store struct{}

func (s *Store) Acquire() error          { return nil }
func (s *Store) ReadBlock() (int, error) { return 0, nil }
func (s *Store) Release()                {}

// Gauge.Acquire returns no error: the analyzer must stay silent on it.
type Gauge struct{}

func (g *Gauge) Acquire() {}

func bare(s *Store) {
	s.Acquire() // want "error result of Acquire is discarded"
}

func blank(s *Store) {
	_ = s.Acquire() // want "assigned to the blank identifier"
}

func blankMulti(s *Store) int {
	blk, _ := s.ReadBlock() // want "assigned to the blank identifier"
	return blk
}

func deferred(s *Store) {
	defer s.Acquire() // want "deferred Acquire discards its error"
}

func inGoroutine(s *Store) {
	go s.Acquire() // want "goroutine call to Acquire discards its error"
}

func handled(s *Store) error {
	if err := s.Acquire(); err != nil {
		return err
	}
	defer s.Release()
	blk, err := s.ReadBlock()
	if err != nil {
		return err
	}
	_ = blk
	return nil
}

func sameNameNoError(g *Gauge) {
	g.Acquire()
}

func justified(s *Store) {
	s.Acquire() //dbvet:ignore fixture: error intentionally dropped in teardown
}
