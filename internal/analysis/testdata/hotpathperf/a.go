package fixture

// sink keeps escape analysis honest: assigning to it forces the heap.
var sink []byte

// Clean is the discipline the gate wants: no allocation, and the
// compiler eliminates the bounds check from the canonical range loop.
//
//dbvet:hotpath
func Clean(xs []int64) int64 {
	var t int64
	for i := range xs {
		t += xs[i]
	}
	return t
}

// EscapingScratch allocates its scratch buffer on the heap because the
// global keeps it alive.
//
//dbvet:hotpath
func EscapingScratch(n int) {
	buf := make([]byte, n) // want "heap allocation in hot path"
	for i := range buf {
		buf[i] = byte(i)
	}
	sink = buf
}

// GatherChecked indexes with data-dependent positions the SSA backend
// cannot prove in range: the bounds check survives inside the loop.
//
//dbvet:hotpath
func GatherChecked(xs []int64, idx []int32) int64 {
	var t int64
	for _, i := range idx {
		t += xs[i] // want "bounds check inside a loop in hot path"
	}
	return t
}

// ColdBounds keeps a bounds check too, but outside any loop: one
// predictable branch is not a hot-path violation.
//
//dbvet:hotpath
func ColdBounds(xs []int64, i int32) int64 {
	return xs[i]
}

// Budgeted is GatherChecked with a justified lint-budget.json entry.
//
//dbvet:hotpath
func Budgeted(xs []int64, idx []int32) int64 {
	var t int64
	for _, i := range idx {
		t += xs[i]
	}
	return t
}

// Reasonless has a budget entry without a reason, which is itself a
// finding — the entry, not the function, is the defect.
//
//dbvet:hotpath
func Reasonless(xs []int64) int64 { // want "lacks a reason"
	var t int64
	for i := range xs {
		t += xs[i]
	}
	return t
}

// Unmarked is outside the gate entirely.
func Unmarked(n int) {
	buf := make([]byte, n)
	sink = buf
}
