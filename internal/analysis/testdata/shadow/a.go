package fixture

func source() (int, error) { return 0, nil }
func work() error          { return nil }
func sink(int)             {}

func bad() error {
	v, err := source()
	if v > 0 {
		err := work() // want `declaration of "err" shadows`
		_ = err
	}
	return err
}

func badIfInit() error {
	v, err := source()
	if v > 0 {
		if err := work(); err != nil { // want `declaration of "err" shadows`
			sink(v)
		}
	}
	return err
}

// A fresh err inside a function literal is the correct pattern — the
// literal typically runs on another goroutine, where assigning the
// enclosing err would be a race. Never flagged.
func okClosure() error {
	v, err := source()
	go func() {
		if err := work(); err != nil {
			sink(v)
		}
	}()
	return err
}

// Parameters are never shadow candidates (matches upstream x/tools).
func okParam() error {
	_, err := source()
	f := func(err error) { _ = err }
	f(nil)
	return err
}

// The outer variable is dead after the inner scope: not a shadow.
func okDeadOuter() {
	_, err := source()
	_ = err
	{
		err := work()
		_ = err
	}
}
