package fixture

import "sync/atomic"

type counter struct {
	n    int64
	bits []uint64
	name string
}

// bitmapSetAtomic follows the engine's *Atomic helper convention: the
// slice argument (argument 0) is accessed atomically inside.
func bitmapSetAtomic(bm []uint64, i uint32) {
	atomic.StoreUint64(&bm[i>>6], atomic.LoadUint64(&bm[i>>6])|1<<(i&63))
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) mark(i uint32) {
	bitmapSetAtomic(c.bits, i)
}

func (c *counter) badWrite() {
	c.n = 0 // want "plain write to c.n"
}

func (c *counter) badElemRead() uint64 {
	return c.bits[0] // want "plain element read of c.bits"
}

func (c *counter) badElemWrite() {
	c.bits[0] = 1 // want "plain element write to c.bits"
}

func (c *counter) badRange() uint64 {
	var s uint64
	for _, w := range c.bits { // want "plain range over c.bits"
		s += w
	}
	return s
}

func (c *counter) badPass() {
	consume(c.bits) // want "passed to a non-atomic call"
}

func consume([]uint64) {}

// Header-only operations and untracked fields stay silent.
func (c *counter) okHeader() int {
	if c.bits == nil {
		return 0
	}
	c.name = "ok"
	return len(c.bits)
}

func (c *counter) justified() {
	c.n = 0 //dbvet:ignore fixture: reset runs before any goroutine can observe the counter
}
