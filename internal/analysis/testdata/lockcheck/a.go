package fixture

import "sync"

// Relation reuses the engine's type name so the fixture exercises the
// real lock classes. Ordering between classes is deadlockcheck's
// fixture; this one is about the *Locked holder contract.
type Relation struct {
	mu sync.RWMutex
}

func (r *Relation) viewLocked() int { return 0 }

func (r *Relation) Snapshot() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.viewLocked()
}

func (r *Relation) Broken() int {
	return r.viewLocked() // want "without holding r.mu"
}

func (r *Relation) EarlyUnlock() int {
	r.mu.Lock()
	r.mu.Unlock()
	return r.viewLocked() // want "without holding r.mu"
}

func (r *Relation) SelfDeadlock() {
	r.mu.Lock()
	r.mu.Lock() // want "self-deadlock"
	r.mu.Unlock()
}

// BranchUnlock releases on one path only: at the merge the lock is no
// longer must-held, which the pre-v2 lexical model missed.
func (r *Relation) BranchUnlock(cond bool) int {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
	}
	n := r.viewLocked() // want "without holding r.mu"
	if !cond {
		r.mu.Unlock()
	}
	return n
}

// BranchLock acquires on both paths; the merge must-holds the lock.
func (r *Relation) BranchLock(cond bool) int {
	if cond {
		r.mu.RLock()
	} else {
		r.mu.Lock()
	}
	n := r.viewLocked()
	if cond {
		r.mu.RUnlock()
	} else {
		r.mu.Unlock()
	}
	return n
}

// OneArmedLock acquires on one path only: not must-held at the call.
func (r *Relation) OneArmedLock(cond bool) int {
	if cond {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return r.viewLocked() // want "without holding r.mu"
}

// Aliased locks through a local pointer; reaching definitions resolve
// the alias back to r.mu.
func (r *Relation) Aliased() int {
	mu := &r.mu
	mu.Lock()
	defer mu.Unlock()
	return r.viewLocked()
}

// LoopHold keeps the lock across iterations.
func (r *Relation) LoopHold(n int) int {
	total := 0
	r.mu.Lock()
	for i := 0; i < n; i++ {
		total += r.viewLocked()
	}
	r.mu.Unlock()
	return total
}

// Closure runs on its own goroutine: the enclosing hold doesn't count.
func (r *Relation) Closure() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.viewLocked() // want "without holding r.mu"
	}()
}

type Table struct {
	wmu sync.Mutex
}

//dbvet:locks wmu
func (t *Table) flushPending() {}

func (t *Table) Write() {
	t.wmu.Lock()
	t.flushPending()
	t.wmu.Unlock()
}

func (t *Table) WriteBroken() {
	t.flushPending() // want "without holding t.wmu"
}

func (t *Table) Suppressed() {
	t.flushPending() //dbvet:ignore fixture: construction-time call, nothing concurrent exists yet
}

func (t *Table) ReasonlessIgnore() {
	t.flushPending() //dbvet:ignore // want "requires a written justification"
}
