package fixture

import "sync"

// Relation and Chunk reuse the engine's type names so the fixture
// exercises the documented lock-order ranks (Chunk.loadMu before
// Relation.mu).
type Relation struct {
	mu sync.RWMutex
}

type Chunk struct {
	loadMu sync.Mutex
}

func (r *Relation) viewLocked() int { return 0 }

func (r *Relation) Snapshot() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.viewLocked()
}

func (r *Relation) Broken() int {
	return r.viewLocked() // want "without holding r.mu"
}

func (r *Relation) EarlyUnlock() int {
	r.mu.Lock()
	r.mu.Unlock()
	return r.viewLocked() // want "without holding r.mu"
}

func (r *Relation) SelfDeadlock() {
	r.mu.Lock()
	r.mu.Lock() // want "self-deadlock"
	r.mu.Unlock()
}

func (r *Relation) BadOrder(c *Chunk) {
	r.mu.Lock()
	c.loadMu.Lock() // want "inverts the documented lock order"
	c.loadMu.Unlock()
	r.mu.Unlock()
}

func (r *Relation) GoodOrder(c *Chunk) {
	c.loadMu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	c.loadMu.Unlock()
}

type Table struct {
	wmu sync.Mutex
}

//dbvet:locks wmu
func (t *Table) flushPending() {}

func (t *Table) Write() {
	t.wmu.Lock()
	t.flushPending()
	t.wmu.Unlock()
}

func (t *Table) WriteBroken() {
	t.flushPending() // want "without holding t.wmu"
}

func (t *Table) Suppressed() {
	t.flushPending() //dbvet:ignore fixture: construction-time call, nothing concurrent exists yet
}

func (t *Table) ReasonlessIgnore() {
	t.flushPending() //dbvet:ignore // want "requires a written justification"
}
