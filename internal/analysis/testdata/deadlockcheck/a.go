// The fixture reuses the engine's type names so the lock classes line
// up with the documented acquires-before order:
//
//	DB.mu → DB.catMu → Table.wmu → Chunk.loadMu → Relation.mu → Relation.loadErrMu
//
// (The fixture's Table.wmu plays the role of the engine's current
// tableStripe.wmu; the analyzer orders lock classes by name, so the
// fixture keeps its own stable names.)
package fixture

import (
	"sync"

	"fixture/sub"
)

type Relation struct {
	mu        sync.RWMutex
	loadErrMu sync.Mutex
}

type Chunk struct {
	loadMu sync.Mutex
}

// GoodOrder follows the documented chain.
func GoodOrder(c *Chunk, r *Relation) {
	c.loadMu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	c.loadMu.Unlock()
}

// BadOrder inverts it: Chunk.loadMu acquired under Relation.mu closes a
// cycle against the documented edge Chunk.loadMu → Relation.mu.
func BadOrder(c *Chunk, r *Relation) {
	r.mu.Lock()
	c.loadMu.Lock() // want "creates a cycle in the acquires-before graph"
	c.loadMu.Unlock()
	r.mu.Unlock()
}

// BadOrderDeep inverts through a same-package call: the helper's
// acquisition is only visible interprocedurally.
func BadOrderDeep(c *Chunk, r *Relation) {
	r.mu.Lock()
	lockAndPoke(c) // want "creates a cycle in the acquires-before graph"
	r.mu.Unlock()
}

func lockAndPoke(c *Chunk) {
	c.loadMu.Lock()
	c.loadMu.Unlock()
}

// BadOrderCrossPackage inverts through the dependency's exported
// summary: sub.Relation.Load acquires Relation.mu, which the documented
// order places before Relation.loadErrMu.
func BadOrderCrossPackage(r *Relation, s *sub.Relation) {
	r.loadErrMu.Lock()
	s.Load() // want "creates a cycle in the acquires-before graph"
	r.loadErrMu.Unlock()
}

// BadOrderCrossPackageDeep is the same inversion three calls down in
// the dependency — the imported summary is transitively closed.
func BadOrderCrossPackageDeep(r *Relation, s *sub.Relation) {
	r.loadErrMu.Lock()
	s.LoadDeep() // want "creates a cycle in the acquires-before graph"
	r.loadErrMu.Unlock()
}

// GoodCrossPackage holds nothing the dependency's acquisitions could
// order against.
func GoodCrossPackage(s *sub.Relation) {
	s.Load()
	s.LoadDeep()
}

// TwoInstances acquires two locks of the same class with no instance
// order: the class-level self-edge is a cycle (classic AB-BA hazard).
func TwoInstances(a, b *Relation) {
	a.mu.Lock()
	b.mu.Lock() // want "creates a cycle in the acquires-before graph"
	b.mu.Unlock()
	a.mu.Unlock()
}

// BranchOrder only inverts on one path; may-hold still collects it.
func BranchOrder(c *Chunk, r *Relation, cond bool) {
	if cond {
		r.mu.Lock()
	}
	c.loadMu.Lock() // want "creates a cycle in the acquires-before graph"
	c.loadMu.Unlock()
	if cond {
		r.mu.Unlock()
	}
}

// HandOff releases before the next acquisition: no edge, no cycle.
func HandOff(c *Chunk, r *Relation) {
	r.mu.Lock()
	r.mu.Unlock()
	c.loadMu.Lock()
	c.loadMu.Unlock()
}

// Suppressed documents a known exception with a reason.
func Suppressed(c *Chunk, r *Relation) {
	r.mu.Lock()
	c.loadMu.Lock() //dbvet:ignore fixture: startup path, single-threaded by construction
	c.loadMu.Unlock()
	r.mu.Unlock()
}
