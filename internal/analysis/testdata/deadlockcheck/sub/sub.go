// Package sub is the dependency side of the interprocedural fixture:
// its exported helpers acquire locks, and the root package's calls to
// them must inherit those acquisitions through the package fact.
package sub

import "sync"

type Relation struct {
	mu sync.RWMutex
}

// Load acquires Relation.mu; callers holding anything that must come
// after Relation.mu in the documented order close a cycle.
func (r *Relation) Load() {
	r.mu.Lock()
	defer r.mu.Unlock()
}

// LoadDeep acquires Relation.mu two calls down, so the exported summary
// must be transitively closed before the root package sees it.
func (r *Relation) LoadDeep() { r.loadMiddle() }

func (r *Relation) loadMiddle() { r.Load() }
