package fixture

import (
	"expvar"

	"fixture/obs"
)

var (
	scanned obs.Counter
	depth   obs.Gauge
	latency obs.Histogram
	evRows  expvar.Int
)

//dbvet:hotpath
func badSharedCounter(rows []int64) {
	for range rows {
		scanned.Inc() // want "shared telemetry"
	}
}

//dbvet:hotpath
func badSharedAdd(n uint64) {
	scanned.Add(n) // want "shared telemetry"
}

//dbvet:hotpath
func badSharedGauge() {
	depth.Set(3) // want "shared telemetry"
}

//dbvet:hotpath
func badSharedHist(ns uint64) {
	latency.Observe(ns) // want "shared telemetry"
}

//dbvet:hotpath
func badExpvar(rows []int64) {
	for range rows {
		evRows.Add(1) // want "calls into expvar"
	}
}

// The per-worker shard API is the sanctioned fast path: plain fields,
// no atomics, no findings.
//
//dbvet:hotpath
func goodShard(rows []int64, c *obs.ShardCounter) {
	for range rows {
		c.Inc()
	}
}

// Batch boundary: no annotation, so merging shards into the shared
// instruments (and touching them directly) is fine here.
func flushBoundary(c *obs.ShardCounter) {
	c.FlushTo(&scanned)
	scanned.Inc()
	evRows.Add(1)
}
