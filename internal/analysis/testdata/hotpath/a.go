package fixture

import "fmt"

//dbvet:hotpath
func kernel(m map[uint64]uint32, keys []uint64, out []uint32) {
	for i, k := range keys {
		out[i] = m[k]
	}
}

//dbvet:hotpath
func badMapIter(m map[uint64]uint32) uint32 {
	var s uint32
	for _, v := range m { // want "iterates a map"
		s += v
	}
	return s
}

//dbvet:hotpath
func badFmt(n int) string {
	return fmt.Sprintf("row %d", n) // want "calls fmt.Sprintf"
}

//dbvet:hotpath
func badPanic(n int) {
	if n < 0 {
		panic("negative") // want "calls panic"
	}
}

//dbvet:hotpath
func badBox(v int64) any {
	return any(v) // want "converts a concrete value to an interface"
}

//dbvet:hotpath
func badAssert(x any) error {
	e, _ := x.(error) // want "asserts to an interface type"
	return e
}

// coldPath has no annotation: the same constructs are fine here.
func coldPath(m map[uint64]uint32) string {
	for range m {
	}
	return fmt.Sprint("fine here")
}

var hotLit = func(vals []int64) int64 { //dbvet:hotpath
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

//dbvet:hotpath
var badLit = func(m map[int]int) {
	for range m { // want "iterates a map"
	}
}

//dbvet:hotpath
func badNested(rows []int) func() {
	return func() {
		panic("nested literals inherit the annotation") // want "calls panic"
	}
}
