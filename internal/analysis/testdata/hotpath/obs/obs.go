// Package obs mirrors the shapes of the engine's telemetry core: the
// shared process-wide instruments (Counter, Gauge, Histogram) the
// hotpath rule forbids in kernels, and the per-worker Shard* fast path
// it steers them toward.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Add(n uint64) { c.v += n }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) { g.v = v }

type Histogram struct{ sum uint64 }

func (h *Histogram) Observe(v uint64) { h.sum += v }

type ShardCounter struct{ v uint64 }

func (c *ShardCounter) Inc()         { c.v++ }
func (c *ShardCounter) Add(n uint64) { c.v += n }

func (c *ShardCounter) FlushTo(d *Counter) {
	d.Add(c.v)
	c.v = 0
}
