// Package cold mirrors pinBlock after it grew a loaded flag: the unpin
// closure is no longer the second-to-last result, and pincheck must find
// it by type rather than position.
package cold

import "errors"

func pinBlock() (int, func(), bool, error) { return 0, func() {}, false, nil }

func cond() bool { return false }

func handlePin() (int, error) {
	blk, unpin, _, err := pinBlock()
	if err != nil {
		return 0, err
	}
	defer unpin()
	return blk, nil
}

func discardPin() error {
	_, _, loaded, err := pinBlock() // want "unpin closure returned by pinBlock is discarded"
	if err != nil {
		return err
	}
	_ = loaded
	return nil
}

func leakPin() error {
	_, unpin, _, err := pinBlock()
	if err != nil {
		return err
	}
	if cond() {
		return errors.New("lost") // want "returning with the pin taken"
	}
	unpin()
	return nil
}
