package fixture

import "errors"

// View mimics storage.ChunkView: Acquire() error pins, Release() unpins.
type View struct{}

func (v *View) Acquire() error { return nil }
func (v *View) Release()       {}

// pinBlock mimics (*Relation).pinBlock: the func() result releases the pin.
func pinBlock() (int, func(), error) { return 0, func() {}, nil }

func cond() bool { return false }

func deferredRelease(v *View) error {
	if err := v.Acquire(); err != nil {
		return err
	}
	defer v.Release()
	return nil
}

func manualRelease(v *View) error {
	if err := v.Acquire(); err != nil {
		return err
	}
	if cond() {
		v.Release()
		return errors.New("early out")
	}
	v.Release()
	return nil
}

func leakOnReturn(v *View) error {
	if err := v.Acquire(); err != nil {
		return err
	}
	if cond() {
		return errors.New("oops") // want "returning with the pin taken"
	}
	v.Release()
	return nil
}

func leakInLoop(vs []*View) {
	for _, v := range vs {
		if err := v.Acquire(); err != nil { // want "not released before the iteration ends"
			continue
		}
	}
}

func releasedInLoop(vs []*View) {
	for _, v := range vs {
		if err := v.Acquire(); err != nil {
			continue
		}
		v.Release()
	}
}

func discardUnpin() {
	_, _, err := pinBlock() // want "unpin closure returned by pinBlock is discarded"
	_ = err
}

func handlePin() (int, error) {
	blk, unpin, err := pinBlock()
	if err != nil {
		return 0, err
	}
	defer unpin()
	return blk, nil
}

// holder receives ownership of the unpin closure; tracking must stop at
// the store, mirroring ChunkView.Acquire stashing v.release = unpin.
type holder struct{ release func() }

func transfer(h *holder) error {
	_, unpin, err := pinBlock()
	if err != nil {
		return err
	}
	h.release = unpin
	return nil
}

func returnsUnpin() (func(), error) {
	_, unpin, err := pinBlock()
	if err != nil {
		return nil, err
	}
	return unpin, nil
}
