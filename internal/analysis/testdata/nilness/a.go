package fixture

import "errors"

type node struct {
	val  int
	next *node
}

// ZeroValue dereferences the declared zero value.
func ZeroValue() int {
	var p *node
	return p.val // want "nil dereference in field selection"
}

// ExplicitNil assigns nil right before the dereference.
func ExplicitNil(p *node) int {
	p = nil
	return p.val // want "nil dereference in field selection"
}

// BranchRefined dereferences inside the nil arm of the test: the
// branch-condition edge proves p nil there.
func BranchRefined(p *node) int {
	if p == nil {
		return p.val // want "nil dereference in field selection"
	}
	return p.val // non-nil here: refined by the false edge
}

// BranchRefinedNeq is the negated test.
func BranchRefinedNeq(p *node) int {
	if p != nil {
		return p.val
	}
	return p.val // want "nil dereference in field selection"
}

// Reassigned is nil on one path only: unknown at the merge, no report.
func Reassigned(cond bool) int {
	var p *node
	if cond {
		p = &node{val: 1}
	}
	return p.val
}

// Healed assigns a fresh value after the nil state.
func Healed() int {
	var p *node
	p = new(node)
	return p.val
}

// StarDeref reports the explicit pointer dereference.
func StarDeref() int {
	var p *int
	return *p // want "nil dereference in pointer dereference"
}

// Loop: nil-ness of the iteration variable is decided by the loop, not
// the entry state.
func Loop(head *node) int {
	total := 0
	for p := head; p != nil; p = p.next {
		total += p.val // refined non-nil by the loop condition
	}
	return total
}

// NilInterface calls through a definitely-nil interface.
func NilInterface() string {
	var err error
	return err.Error() // want "nil dereference in dynamic method call"
}

// NonNilInterface is assigned before the call.
func NonNilInterface() string {
	var err error
	err = errors.New("boom")
	return err.Error()
}

// Suppressed documents an intentional crash (e.g. a test helper).
func Suppressed() int {
	var p *node
	return p.val //dbvet:ignore fixture: deliberate crash to exercise the recovery path
}

// Escaped loses track once the address is taken.
func Escaped(fill func(**node)) int {
	var p *node
	fill(&p)
	return p.val
}
