package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// The builder is deterministic, so each shape is pinned by its rendered
// graph: block roles, branch polarity (T/F) and edge targets.
var golden = []struct {
	name, src, want string
}{
	{
		"if_return",
		`func f(c bool) int { if c { return 1 }; return 2 }`,
		`b0(entry): T->b2 F->b3
b1(exit):
b2(if.then): ->b1
b3(if.done): ->b1
`,
	},
	{
		"for_continue_break",
		`func f(n int) int { s := 0; for i := 0; i < n; i++ { if i == 3 { continue }; if i == 5 { break }; s += i }; return s }`,
		`b0(entry): ->b2
b1(exit):
b2(for.head): T->b3 F->b4
b3(for.body): T->b6 F->b7
b4(for.done): ->b1
b5(for.post): ->b2
b6(if.then): ->b5
b7(if.done): T->b8 F->b9
b8(if.then): ->b4
b9(if.done): ->b5
`,
	},
	{
		"range_backedge",
		`func f(xs []int) int { s := 0; for _, x := range xs { s += x }; return s }`,
		`b0(entry): ->b2
b1(exit):
b2(range.head): ->b3 ->b4
b3(range.body): ->b2
b4(range.done): ->b1
`,
	},
	{
		"switch_fallthrough",
		`func f(x int) string {
	switch x {
	case 1:
		return "a"
	case 2:
		fallthrough
	case 3:
		return "b"
	}
	return "c"
}`,
		`b0(entry): ->b3 ->b4 ->b5 ->b2
b1(exit):
b2(switch.done): ->b1
b3(switch.case): ->b1
b4(switch.case): ->b5
b5(switch.case): ->b1
`,
	},
	{
		"labeled_break_continue",
		`func f(x int) {
outer:
	for i := 0; i < x; i++ {
		for j := 0; j < x; j++ {
			if j > i { continue outer }
			if j == 7 { break outer }
		}
	}
}`,
		`b0(entry): ->b2
b1(exit):
b2(label.outer): ->b3
b3(for.head): T->b4 F->b5
b4(for.body): ->b7
b5(for.done): ->b1
b6(for.post): ->b3
b7(for.head): T->b8 F->b9
b8(for.body): T->b11 F->b12
b9(for.done): ->b6
b10(for.post): ->b7
b11(if.then): ->b6
b12(if.done): T->b13 F->b14
b13(if.then): ->b5
b14(if.done): ->b10
`,
	},
	{
		"panic_terminates",
		`func f(x int) { if x < 0 { panic("neg") }; _ = x }`,
		`b0(entry): T->b2 F->b3
b1(exit):
b2(if.then): ->b1
b3(if.done): ->b1
`,
	},
	{
		"goto_forward",
		`func f(x int) int {
	if x == 0 { goto done }
	x++
done:
	return x
}`,
		`b0(entry): T->b2 F->b3
b1(exit):
b2(if.then): ->b4
b3(if.done): ->b4
b4(label.done): ->b1
`,
	},
}

func TestBuild(t *testing.T) {
	for _, tc := range golden {
		t.Run(tc.name, func(t *testing.T) {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "p.go", "package p\n"+tc.src, 0)
			if err != nil {
				t.Fatal(err)
			}
			g := New(f.Decls[0].(*ast.FuncDecl).Body)
			if got := g.String(); got != tc.want {
				t.Errorf("graph mismatch\n got:\n%s want:\n%s", got, tc.want)
			}
		})
	}
}

// TestBranchEdges pins the property analyzers rely on for refinement:
// the true and false edges out of a condition carry the condition
// expression with the right polarity.
func TestBranchEdges(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", `package p
func f(p *int) int { if p == nil { return 0 }; return *p }`, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := New(f.Decls[0].(*ast.FuncDecl).Body)
	var saw []string
	for _, e := range g.Entry.Succs {
		bin, ok := e.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.EQL {
			t.Fatalf("entry successor lacks the p == nil condition")
		}
		if e.Negate {
			saw = append(saw, "false")
		} else {
			saw = append(saw, "true")
		}
	}
	if got := strings.Join(saw, ","); got != "true,false" {
		t.Errorf("branch polarity = %s, want true,false", got)
	}
}

// TestExitReachable: every graph the builder produces keeps exit
// reachable from entry (no orphaned terminators).
func TestExitReachable(t *testing.T) {
	for _, tc := range golden {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", "package p\n"+tc.src, 0)
		if err != nil {
			t.Fatal(err)
		}
		g := New(f.Decls[0].(*ast.FuncDecl).Body)
		seen := map[*Block]bool{}
		var dfs func(*Block)
		dfs = func(b *Block) {
			if seen[b] {
				return
			}
			seen[b] = true
			for _, e := range b.Succs {
				dfs(e.To)
			}
		}
		dfs(g.Entry)
		if !seen[g.Exit] {
			t.Errorf("%s: exit unreachable from entry", tc.name)
		}
	}
}
