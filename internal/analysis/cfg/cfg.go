// Package cfg builds per-function control-flow graphs over the typed
// AST, the shared substrate of the flow-sensitive dbvet analyzers
// (lockcheck's hold tracking, deadlockcheck's acquires-before edges,
// nilness). It deliberately stays statement-level: a Block carries the
// statements and control expressions it evaluates in order, and Edges
// carry the branch condition that must hold for control to take them,
// so dataflow clients can refine state per edge (`x == nil` on the true
// edge of an if) without an SSA construction.
//
// The builder understands the full Go statement grammar — if/else,
// three-clause and range for, switch (with fallthrough), type switch,
// select, labeled break/continue/goto, return — and models calls to
// panic and to the known no-return terminators (os.Exit, runtime.Goexit,
// testing's FailNow family via log.Fatal*) as edges to Exit. Deferred
// statements stay in their block in source order; analyses that care
// (pincheck's deferred releases, lockcheck's deferred unlocks) see the
// *ast.DeferStmt node and decide their own semantics.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // every return/panic/fall-off edge targets Exit
	Blocks []*Block
}

// A Block is a maximal straight-line sequence of evaluated nodes.
type Block struct {
	Index int
	// Nodes holds statements and control expressions in evaluation
	// order. Control expressions (an if condition, a switch tag, a
	// range operand) appear as bare ast.Expr entries before the edges
	// that depend on them.
	//
	// One convention clients must honor: a *ast.RangeStmt in Nodes
	// stands for the per-iteration key/value binding only — its X was
	// already evaluated in a predecessor block and its Body has its own
	// blocks, so transfer functions must not descend into either.
	// Function literals are likewise opaque: their bodies are separate
	// functions with their own graphs.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
	// comment labels the block's role for debugging ("if.then",
	// "for.body", "range.head", ...).
	comment string
}

// An Edge connects two blocks. When Cond is non-nil, control takes the
// edge only when Cond evaluates to Negate == false ? true : false —
// i.e. Negate marks the else/false edge of the branch on Cond.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Negate   bool
}

// Reachable reports whether b has at least one predecessor or is the
// entry block; dataflow clients skip unreachable blocks (code after an
// unconditional return).
func (g *Graph) Reachable(b *Block) bool {
	return b == g.Entry || len(b.Preds) > 0
}

// String renders the graph for debugging and the builder's unit tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", b.Index, b.comment)
		for _, e := range b.Succs {
			if e.Cond != nil {
				op := "T"
				if e.Negate {
					op = "F"
				}
				fmt.Fprintf(&sb, " %s->b%d", op, e.To.Index)
			} else {
				fmt.Fprintf(&sb, " ->b%d", e.To.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// New builds the graph of one function body. The body may be a
// declaration's or a function literal's.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	b.graph = &Graph{}
	b.graph.Entry = b.newBlock("entry")
	b.graph.Exit = b.newBlock("exit")
	cur := b.graph.Entry
	cur = b.stmtList(body.List, cur)
	// Falling off the end of the body is an implicit return.
	b.edge(cur, b.graph.Exit, nil, false)
	b.resolveGotos()
	return b.graph
}

type loopFrame struct {
	label      string
	breakTo    *Block // successor of the loop/switch/select
	continueTo *Block // loop post/head; nil for switch/select frames
	isLoop     bool
}

type builder struct {
	graph  *Graph
	frames []loopFrame
	// label is the name of a label whose statement is about to be
	// built; the next loop/switch frame adopts it so labeled
	// break/continue resolve.
	label string
	// labels maps a label name to the block starting its statement,
	// for goto resolution; pendingGotos are forward gotos patched at
	// the end.
	labels       map[string]*Block
	pendingGotos []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(comment string) *Block {
	blk := &Block{Index: len(b.graph.Blocks), comment: comment}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, negate bool) {
	if from == nil {
		return // predecessor already terminated (return/panic/goto)
	}
	e := &Edge{From: from, To: to, Cond: cond, Negate: negate}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

func (b *builder) resolveGotos() {
	for _, pg := range b.pendingGotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target, nil, false)
		} else {
			// Malformed code (the type checker rejects it); fall to exit
			// so the graph stays connected.
			b.edge(pg.from, b.graph.Exit, nil, false)
		}
	}
	b.pendingGotos = nil
}

// stmtList threads the statements through cur, returning the block
// control falls out of (nil when the list always transfers away).
func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// append adds a node to cur, materializing a block if control arrived
// here only via labels/gotos into dead code.
func (b *builder) append(cur *Block, n ast.Node) *Block {
	if cur == nil {
		cur = b.newBlock("unreachable")
	}
	cur.Nodes = append(cur.Nodes, n)
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur = b.append(cur, s.Cond)
		then := b.newBlock("if.then")
		b.edge(cur, then, s.Cond, false)
		after := b.newBlock("if.done")
		thenEnd := b.stmtList(s.Body.List, then)
		b.edge(thenEnd, after, nil, false)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cur, els, s.Cond, true)
			elseEnd := b.stmt(s.Else, els)
			b.edge(elseEnd, after, nil, false)
		} else {
			b.edge(cur, after, s.Cond, true)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock("for.head")
		b.edge(cur, head, nil, false)
		body := b.newBlock("for.body")
		after := b.newBlock("for.done")
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, s.Cond, false)
			b.edge(head, after, s.Cond, true)
		} else {
			b.edge(head, body, nil, false)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			end := b.stmt(s.Post, post)
			b.edge(end, head, nil, false)
		}
		b.pushFrame(loopFrame{label: b.pendingLabel(s), breakTo: after, continueTo: post, isLoop: true})
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popFrame()
		b.edge(bodyEnd, post, nil, false)
		return after

	case *ast.RangeStmt:
		cur = b.append(cur, s.X)
		head := b.newBlock("range.head")
		b.edge(cur, head, nil, false)
		// The per-iteration key/value assignment happens at the head.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		after := b.newBlock("range.done")
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		b.pushFrame(loopFrame{label: b.pendingLabel(s), breakTo: after, continueTo: head, isLoop: true})
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popFrame()
		b.edge(bodyEnd, head, nil, false)
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			cur = b.append(cur, s.Tag)
		}
		return b.switchBody(s, s.Body, cur)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur = b.append(cur, s.Assign)
		return b.switchBody(s, s.Body, cur)

	case *ast.SelectStmt:
		after := b.newBlock("select.done")
		b.pushFrame(loopFrame{label: b.pendingLabel(s), breakTo: after})
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(cur, blk, nil, false)
			if cl.Comm != nil {
				blk = b.stmt(cl.Comm, blk)
			}
			end := b.stmtList(cl.Body, blk)
			b.edge(end, after, nil, false)
		}
		b.popFrame()
		if len(s.Body.List) == 0 {
			// Empty select blocks forever.
			b.edge(cur, b.graph.Exit, nil, false)
		}
		return after

	case *ast.LabeledStmt:
		// Start a fresh block so gotos can target the label; remember
		// the label for the framed statement it introduces.
		target := b.newBlock("label." + s.Label.Name)
		b.edge(cur, target, nil, false)
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = target
		b.label = s.Label.Name
		res := b.stmt(s.Stmt, target)
		b.label = ""
		return res

	case *ast.BranchStmt:
		cur = b.append(cur, s)
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(cur, f.breakTo, nil, false)
			} else {
				b.edge(cur, b.graph.Exit, nil, false)
			}
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(cur, f.continueTo, nil, false)
			} else {
				b.edge(cur, b.graph.Exit, nil, false)
			}
		case token.GOTO:
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: cur, label: s.Label.Name})
		case token.FALLTHROUGH:
			// The edge into the next case body is added by switchBody,
			// which sees the fallthrough at the end of the clause; the
			// block stays live so that edge has a source.
			return cur
		}
		return nil

	case *ast.ReturnStmt:
		cur = b.append(cur, s)
		b.edge(cur, b.graph.Exit, nil, false)
		return nil

	case *ast.ExprStmt:
		cur = b.append(cur, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isNoReturn(call) {
			b.edge(cur, b.graph.Exit, nil, false)
			return nil
		}
		return cur

	default:
		// Assignments, declarations, go/defer, send, incdec, empty.
		return b.append(cur, s)
	}
}

// switchBody wires the case clauses of a value or type switch.
func (b *builder) switchBody(sw ast.Stmt, body *ast.BlockStmt, cur *Block) *Block {
	after := b.newBlock("switch.done")
	b.pushFrame(loopFrame{label: b.pendingLabel(sw), breakTo: after})
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cc := range body.List {
		cl := cc.(*ast.CaseClause)
		blk := b.newBlock("switch.case")
		b.edge(cur, blk, nil, false)
		for _, e := range cl.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		if cl.List == nil {
			hasDefault = true
		}
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cl)
	}
	if !hasDefault {
		// No default: the switch may match nothing and fall through.
		b.edge(cur, after, nil, false)
	}
	for i, cl := range clauses {
		end := b.stmtList(cl.Body, caseBlocks[i])
		if fallsThrough(cl.Body) && i+1 < len(caseBlocks) {
			b.edge(end, caseBlocks[i+1], nil, false)
		} else {
			b.edge(end, after, nil, false)
		}
	}
	b.popFrame()
	return after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// pendingLabel consumes the label attached to the statement being
// built, so only the outermost frame of a labeled loop adopts it.
func (b *builder) pendingLabel(ast.Stmt) string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) pushFrame(f loopFrame) { b.frames = append(b.frames, f) }
func (b *builder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

// findFrame locates the frame a break/continue targets: the innermost
// (or labeled) frame; continue only matches loops.
func (b *builder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// isNoReturn recognizes statement calls that never return: the panic
// built-in and the well-known process terminators.
func isNoReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
