// Package hotpathperf gates //dbvet:hotpath functions on the compiler's
// own optimization verdicts, via internal/analysis/gcfacts: a hot-path
// kernel must not heap-allocate at all, and must not keep a bounds
// check inside any loop. The syntactic hotpath analyzer catches the
// patterns that *always* break the discipline (fmt calls, map
// iteration); this gate catches the ones only the compiler can decide —
// a scratch slice escape analysis failed to stack-allocate, an index
// the SSA backend could not prove in range.
//
// Intentional exceptions live in lint-budget.json next to go.mod
// (found by walking up from the package directory):
//
//	{"entries": [
//	  {"func": "datablocks/internal/exec.gather", "kind": "bounds",
//	   "count": 1, "reason": "dictionary indices are data-dependent; ..."}
//	]}
//
// Each entry excuses up to count facts of one kind in one function and
// must carry a written reason — a reasonless entry is itself a finding,
// the same contract //dbvet:ignore follows. The file is committed, so
// every new exception is a reviewable diff line, not a silent
// regression.
//
// Functions declared in _test.go files are outside the gate: the facts
// come from compiling the production package.
package hotpathperf

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"

	"datablocks/internal/analysis"
	"datablocks/internal/analysis/gcfacts"
)

// Analyzer is the hotpathperf pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathperf",
	Doc:  "verify //dbvet:hotpath functions are zero-heap-allocation and loop-bounds-check-free via compiler facts",
	Run:  run,
}

// budgetFile mirrors lint-budget.json.
type budgetFile struct {
	Entries []budgetEntry `json:"entries"`
}

type budgetEntry struct {
	Func   string `json:"func"` // types.Func.FullName of the hot function
	Kind   string `json:"kind"` // "alloc" or "bounds"
	Count  int    `json:"count,omitempty"`
	Reason string `json:"reason"`
}

func run(pass *analysis.Pass) (any, error) {
	// Collect the gated functions first; most packages have none and
	// must not pay for a compile.
	type hot struct {
		fd   *ast.FuncDecl
		name string
	}
	var hots []hot
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		if isTestFile(fname) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(pass.Fset, fd, "hotpath"); !ok {
				continue
			}
			name := fd.Name.Name
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				name = obj.FullName()
			}
			hots = append(hots, hot{fd, name})
		}
	}
	if len(hots) == 0 || pass.Dir == "" {
		return nil, nil
	}

	facts, err := gcfacts.ForPackage(pass.Dir)
	if err != nil {
		return nil, err
	}
	budget, budgetPath := loadBudget(pass.Dir)

	for _, h := range hots {
		fname := pass.Fset.Position(h.fd.Pos()).Filename
		start := pass.Fset.Position(h.fd.Pos())
		end := pass.Fset.Position(h.fd.End())
		loops := loopRanges(pass.Fset, h.fd)

		remaining := map[gcfacts.Kind]int{}
		for _, e := range budget.Entries {
			if e.Func != h.name {
				continue
			}
			if e.Reason == "" {
				pass.Reportf(h.fd.Pos(),
					"%s entry for %s/%s lacks a reason: budget exceptions require a written justification",
					filepath.Base(budgetPath), e.Func, e.Kind)
				continue
			}
			n := e.Count
			if n == 0 {
				n = 1
			}
			switch e.Kind {
			case "alloc":
				remaining[gcfacts.Alloc] += n
			case "bounds":
				remaining[gcfacts.Bounds] += n
			}
		}

		for _, fact := range facts.File(fname) {
			if fact.Line < start.Line || fact.Line > end.Line {
				continue
			}
			if fact.Kind == gcfacts.Bounds && !inRanges(loops, fact.Line) {
				continue // a straight-line bounds check costs one branch, not one per element
			}
			if remaining[fact.Kind] > 0 {
				remaining[fact.Kind]--
				continue
			}
			pos := factPos(pass.Fset, h.fd, fact)
			switch fact.Kind {
			case gcfacts.Alloc:
				pass.Reportf(pos,
					"heap allocation in hot path %s: %s (//dbvet:hotpath functions must not allocate; hoist to the caller or add a justified lint-budget.json entry)",
					h.name, fact.Detail)
			case gcfacts.Bounds:
				pass.Reportf(pos,
					"bounds check inside a loop in hot path %s (hint the compiler — e.g. `_ = s[:n]` before the loop — or add a justified lint-budget.json entry)",
					h.name)
			}
		}
	}
	return nil, nil
}

func isTestFile(name string) bool {
	base := filepath.Base(name)
	return len(base) > len("_test.go") && base[len(base)-len("_test.go"):] == "_test.go"
}

// lineRange is an inclusive source-line interval.
type lineRange struct{ from, to int }

func inRanges(rs []lineRange, line int) bool {
	for _, r := range rs {
		if line >= r.from && line <= r.to {
			return true
		}
	}
	return false
}

// loopRanges returns the line ranges of every loop in fd, including
// loops in nested literals (they run on the hot path too).
func loopRanges(fset *token.FileSet, fd *ast.FuncDecl) []lineRange {
	var out []lineRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, lineRange{
				from: fset.Position(n.Pos()).Line,
				to:   fset.Position(n.End()).Line,
			})
		}
		return true
	})
	return out
}

// factPos converts a fact's file/line/col back to a token.Pos inside
// the declaration's file, falling back to the declaration when the
// position cannot be resolved.
func factPos(fset *token.FileSet, fd *ast.FuncDecl, fact gcfacts.Fact) token.Pos {
	var tf *token.File
	fset.Iterate(func(f *token.File) bool {
		if f.Name() == fact.File {
			tf = f
			return false
		}
		return true
	})
	if tf == nil || fact.Line < 1 || fact.Line > tf.LineCount() {
		return fd.Pos()
	}
	pos := tf.LineStart(fact.Line) + token.Pos(fact.Col-1)
	if !pos.IsValid() || int(pos) > tf.Base()+tf.Size() {
		return fd.Pos()
	}
	return pos
}

// loadBudget finds lint-budget.json by walking from dir up to the
// module root (the directory holding go.mod, inclusive). No file is an
// empty budget.
func loadBudget(dir string) (budgetFile, string) {
	for d := dir; ; {
		path := filepath.Join(d, "lint-budget.json")
		if data, err := os.ReadFile(path); err == nil {
			var b budgetFile
			if json.Unmarshal(data, &b) == nil {
				return b, path
			}
			return budgetFile{}, path
		}
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	return budgetFile{}, "lint-budget.json"
}
