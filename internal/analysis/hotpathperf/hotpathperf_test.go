package hotpathperf_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/hotpathperf"
)

func TestHotpathperf(t *testing.T) {
	analysistest.Run(t, "../testdata/hotpathperf", hotpathperf.Analyzer)
}
