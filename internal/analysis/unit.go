package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// unitConfig mirrors the JSON compilation-unit description `go vet`
// hands a -vettool (x/tools unitchecker.Config / cmd/go vetConfig).
// Fields the suite does not consume are omitted from the decode.
type unitConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit implements the `go vet -vettool` compilation-unit protocol:
// read the JSON config, type-check the unit against the export data the
// go command already produced, run the analyzers, print plain findings
// to stderr and exit non-zero when any survive.
//
// Facts: the vetx files the protocol threads between units carry the
// analyzers' exported PackageFacts as deterministic JSON. Dependencies'
// facts arrive through PackageVetx; this unit's facts are written to
// VetxOutput. In VetxOnly mode (the go command wants facts for a
// dependency of the package actually being vetted) only the
// fact-exporting analyzers run, diagnostics are discarded, and only
// packages accepted by wantFacts pay for type-checking — everything
// else (the standard library, mostly) gets an empty facts file.
func RunUnit(cfgFile string, analyzers []*Analyzer, wantFacts func(importPath string) bool) {
	cfg := new(unitConfig)
	data, err := os.ReadFile(cfgFile)
	if err == nil {
		err = json.Unmarshal(data, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}

	if cfg.VetxOnly {
		var exporters []*Analyzer
		for _, a := range analyzers {
			if a.ExportsFacts {
				exporters = append(exporters, a)
			}
		}
		if len(exporters) == 0 || wantFacts == nil || !wantFacts(cfg.ImportPath) {
			writeVetx(cfg.VetxOutput, PackageFacts{})
			os.Exit(0)
		}
		analyzers = exporters
	}

	pkg, ok := typeCheckUnit(cfg)
	if !ok {
		return // failTypecheck already decided the exit
	}

	diags, _, facts, err := RunAnalyzers(pkg, analyzers, readDepFacts(cfg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	writeVetx(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// typeCheckUnit parses and checks the unit's files against the export
// data the go command supplied.
func typeCheckUnit(cfg *unitConfig) (*Package, bool) {
	fset := token.NewFileSet()
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if perr != nil {
			failTypecheck(cfg, perr)
			return nil, false
		}
		files = append(files, f)
	}
	pkg, err := checkFiles(fset, imp, cfg.ImportPath, cfg.GoVersion, files)
	if err != nil {
		failTypecheck(cfg, err)
		return nil, false
	}
	pkg.Dir = cfg.Dir
	return pkg, true
}

// readDepFacts loads the facts of every dependency whose vetx file
// holds any, in deterministic (sorted import path) order. Vetx files
// written by other tools (or the empty files older dbvet versions
// wrote) are skipped, not errors.
func readDepFacts(cfg *unitConfig) []PackageFacts {
	paths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var out []PackageFacts
	for _, path := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil || len(data) == 0 {
			continue
		}
		facts := PackageFacts{}
		if json.Unmarshal(data, &facts) != nil || len(facts) == 0 {
			continue
		}
		out = append(out, facts)
	}
	return out
}

// writeVetx persists the unit's exported facts. The file is always
// written — the go command's caching contract requires it — and the
// JSON encoding is deterministic (sorted map keys), so unchanged facts
// keep cache entries valid.
func writeVetx(path string, facts PackageFacts) {
	if path == "" {
		return
	}
	data, err := json.Marshal(facts)
	if err == nil {
		err = os.WriteFile(path, data, 0o666)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
}

// failTypecheck honors SucceedOnTypecheckFailure: the go command asks
// the vet tool to stay silent on packages the compiler will reject
// anyway, so the build error is reported once, by the compiler.
func failTypecheck(cfg *unitConfig, err error) {
	if cfg.SucceedOnTypecheckFailure {
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
	os.Exit(1)
}

// PrintVersion implements -V=full: the go command hashes the tool
// binary's self-description into its action cache key, so the output
// must change when the executable does. Format follows the x/tools
// versionFlag contract.
func PrintVersion() {
	h, err := SelfHash()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	exe, _ := os.Executable()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h)
	os.Exit(0)
}

// SelfHash hashes the running executable; the vettool protocol and the
// standalone result cache both key on it so a rebuilt tool invalidates
// everything it produced.
func SelfHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// PrintFlags implements -flags: a JSON description of the flags the go
// command may forward to the tool. The suite exposes one boolean per
// analyzer (enable/disable, vet style).
func PrintFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name + " analysis"})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
	os.Exit(0)
}
