package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// unitConfig mirrors the JSON compilation-unit description `go vet`
// hands a -vettool (x/tools unitchecker.Config / cmd/go vetConfig).
// Fields the suite does not consume are omitted from the decode.
type unitConfig struct {
	ID          string
	Compiler    string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit implements the `go vet -vettool` compilation-unit protocol:
// read the JSON config, type-check the unit against the export data the
// go command already produced, run the analyzers, print plain findings
// to stderr and exit non-zero when any survive. The facts output file is
// always written (empty — the suite defines no cross-package facts) so
// the go command's caching contract holds.
func RunUnit(cfgFile string, analyzers []*Analyzer) {
	cfg := new(unitConfig)
	data, err := os.ReadFile(cfgFile)
	if err == nil {
		err = json.Unmarshal(data, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	if cfg.VetxOutput != "" {
		if err = os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if perr != nil {
			failTypecheck(cfg, perr)
			return
		}
		files = append(files, f)
	}
	pkg, err := checkFiles(fset, imp, cfg.ImportPath, cfg.GoVersion, files)
	if err != nil {
		failTypecheck(cfg, err)
		return
	}

	diags, _, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// failTypecheck honors SucceedOnTypecheckFailure: the go command asks
// the vet tool to stay silent on packages the compiler will reject
// anyway, so the build error is reported once, by the compiler.
func failTypecheck(cfg *unitConfig, err error) {
	if cfg.SucceedOnTypecheckFailure {
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
	os.Exit(1)
}

// PrintVersion implements -V=full: the go command hashes the tool
// binary's self-description into its action cache key, so the output
// must change when the executable does. Format follows the x/tools
// versionFlag contract.
func PrintVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
}

// PrintFlags implements -flags: a JSON description of the flags the go
// command may forward to the tool. The suite exposes one boolean per
// analyzer (enable/disable, vet style).
func PrintFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name + " analysis"})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbvet: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
	os.Exit(0)
}
