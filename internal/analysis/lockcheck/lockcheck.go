// Package lockcheck enforces the engine's mutex-holder contracts:
//
//  1. A function whose name ends in "Locked" (or that carries a
//     "//dbvet:locks <field>" annotation) may only be called while the
//     corresponding mutex is held: the caller either acquired
//     <recv>.<field> on every path reaching the call, or is itself a
//     *Locked function on the same receiver.
//  2. Re-acquiring a mutex the function definitely still holds is
//     reported as a self-deadlock.
//
// Since dbvet v2 the analysis is flow-sensitive: the held set is a
// must-hold dataflow over the function's control-flow graph
// (internal/analysis/cfg), so an Unlock on one branch correctly
// un-holds the merge point — the lexical model this replaces treated
// branch effects as invisible and accepted code that reaches a *Locked
// call unlocked through one of its paths. Local mutex aliases
// (`mu := &r.mu; mu.Lock()`) resolve through reaching definitions.
// Function literals are analyzed as independent functions, since they
// typically run on another goroutine or after the enclosing frame
// returned.
//
// Lock *ordering* — which locks may be acquired while which are held —
// is deadlockcheck's job: it builds the interprocedural acquires-before
// graph and reports cycles, subsuming the pairwise rank check lockcheck
// carried before dbvet v2.
package lockcheck

import (
	"go/ast"

	"datablocks/internal/analysis"
	"datablocks/internal/analysis/cfg"
	"datablocks/internal/analysis/dataflow"
	"datablocks/internal/analysis/lockutil"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "check that *Locked functions are called with their mutex held on every path",
	Run:  run,
}

type checker struct {
	pass *analysis.Pass
	ann  lockutil.Annotations
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, ann: lockutil.CollectAnnotations(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body, lockutil.EntryLocks(pass.TypesInfo, fd, c.ann))
			// Function literals anywhere in the declaration run as their
			// own functions with nothing held.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkFunc(lit.Body, dataflow.LockSet{})
					return false
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkFunc runs the must-hold fixpoint over one body and replays it,
// checking each call against the lock set definitely held there.
func (c *checker) checkFunc(body *ast.BlockStmt, entry dataflow.LockSet) {
	g := cfg.New(body)
	cls := &lockutil.Classifier{
		Info:    c.pass.TypesInfo,
		Entry:   entry,
		Aliases: lockutil.ResolveAliases(g, c.pass.TypesInfo),
	}
	lat := dataflow.Locks{C: cls, Must: true}
	res := dataflow.Forward(g, lat)

	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		held := lat.Copy(in)
		for _, n := range b.Nodes {
			c.checkNode(n, cls, held)
			held = lat.Transfer(n, held)
		}
	}
}

// checkNode inspects one evaluated node's calls in source order against
// held, mirroring the lattice's transfer so intra-node sequences
// (lock then call in one statement) see intermediate states.
func (c *checker) checkNode(n ast.Node, cls *lockutil.Classifier, held dataflow.LockSet) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		return // binding only; X and Body are separate nodes
	case *ast.DeferStmt:
		// A deferred unlock is the normal pairing, not a release here;
		// any other deferred call is checked like a normal call (it
		// runs with whatever the function holds at return, which the
		// model approximates with the state at the defer statement).
		if op, _, _ := cls.ClassifyLockOp(n.Call); op == -1 {
			return
		}
		c.checkCalls(n.Call, cls, dataflowCopy(held))
		return
	}
	c.checkCalls(n, cls, held)
}

func dataflowCopy(s dataflow.LockSet) dataflow.LockSet {
	out := make(dataflow.LockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// checkCalls visits the calls under n in source order, applying lock
// effects to held as it goes (held is the caller's working state).
func (c *checker) checkCalls(n ast.Node, cls *lockutil.Classifier, held dataflow.LockSet) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.RangeStmt:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			c.applyCall(n, cls, held)
		}
		return true
	})
}

func (c *checker) applyCall(call *ast.CallExpr, cls *lockutil.Classifier, held dataflow.LockSet) {
	if op, tok, class := cls.ClassifyLockOp(call); op != 0 {
		switch op {
		case +1:
			if _, dup := held[tok]; dup {
				c.pass.Reportf(call.Pos(), "acquiring %s, which this function already holds (self-deadlock)", tok)
				return
			}
			held[tok] = class
		case -1:
			delete(held, tok)
		}
		return
	}

	obj := analysis.CalleeObject(c.pass.TypesInfo, call)
	if !c.ann.RequiresLock(obj) {
		return
	}
	// Identify the receiver expression of the *Locked call; a plain
	// function call (no receiver) cannot be tied to a lock and is only
	// legal from another *Locked function.
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		if len(held) == 0 {
			c.pass.Reportf(call.Pos(), "call to %s without any lock held: callers of *Locked functions must hold the contract mutex", obj.Name())
		}
		return
	}
	recvText := analysis.ExprString(sel.X)
	field := c.ann.LockFieldOf(obj)
	want := recvText + "." + field
	if _, ok := held[want]; ok {
		return
	}
	// A *Locked helper called on a different object while the caller
	// holds that object's lock through another name cannot be resolved
	// lexically; require the canonical form and let //dbvet:ignore
	// document the exceptions.
	c.pass.Reportf(call.Pos(), "call to %s without holding %s: the %s contract requires the caller to hold it on every path to this call", obj.Name(), want, obj.Name())
}
