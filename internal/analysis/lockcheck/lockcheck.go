// Package lockcheck enforces the engine's mutex contracts:
//
//  1. A function whose name ends in "Locked" (or that carries a
//     "//dbvet:locks <field>" annotation) may only be called while the
//     corresponding mutex is held: the caller either acquired
//     <recv>.<field> earlier in the same function, or is itself a
//     *Locked function on the same receiver.
//  2. Ranked locks must be acquired in ascending rank order (see
//     Ranks); acquiring a lower- or equal-ranked lock while holding a
//     higher-ranked one is the inversion that deadlocks the
//     loadMu-before-relation-lock and wmu-before-relation-lock
//     protocols documented in internal/storage and the Table write
//     path.
//  3. Re-acquiring a mutex already held in the same function is
//     reported as a self-deadlock.
//
// The analysis is intra-procedural and lexical with block scoping: a
// hold established in a block covers the statements after it in that
// block and everything nested; an Unlock cancels the hold only for the
// remainder of its own block (so an early-return branch that unlocks
// does not unhold the main path). Function literals are analyzed as
// independent functions, since they typically run on another
// goroutine or after the enclosing frame returned.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"datablocks/internal/analysis"
)

// Ranks orders the engine's lock classes, keyed "OwnerType.field".
// Acquiring a lock while holding one of equal or higher rank is a
// violation. Locks absent from the map are exempt from ordering (but
// still subject to the *Locked holder check).
var Ranks = map[string]int{
	"DB.mu":              10,
	"DB.catMu":           20,
	"Table.wmu":          30,
	"Chunk.loadMu":       40,
	"Relation.mu":        50,
	"Relation.loadErrMu": 60,
}

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "check that *Locked functions are called with their mutex held and that ranked locks are acquired in order",
	Run:  run,
}

// heldLock is one mutex the walker believes the current path holds.
type heldLock struct {
	owner string // named type declaring the field, e.g. "Relation"
	field string // mutex field name, e.g. "mu"
}

type checker struct {
	pass *analysis.Pass
	// locksAnn maps same-package function objects to the mutex field
	// their //dbvet:locks annotation names.
	locksAnn map[types.Object]string
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, locksAnn: map[types.Object]string{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d, ok := analysis.FuncDirective(pass.Fset, fd, "locks"); ok && d.Args != "" {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					c.locksAnn[obj] = d.Args
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil, nil
}

// lockFieldOf returns the mutex field a callee's contract names: its
// //dbvet:locks annotation when the declaration is in this package,
// else the "mu" convention.
func (c *checker) lockFieldOf(obj types.Object) string {
	if f, ok := c.locksAnn[obj]; ok {
		return f
	}
	return "mu"
}

// requiresLock reports whether calling obj requires a held mutex: the
// name ends in "Locked" or the same-package declaration is annotated.
func (c *checker) requiresLock(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if strings.HasSuffix(obj.Name(), "Locked") {
		return true
	}
	_, ok := c.locksAnn[obj]
	return ok
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	held := map[string]heldLock{}
	// A *Locked (or annotated) function holds its own contract lock at
	// entry: <receiver>.<field>.
	obj := c.pass.TypesInfo.Defs[fd.Name]
	if obj != nil && c.requiresLock(obj) && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvName := fd.Recv.List[0].Names[0].Name
		field := c.lockFieldOf(obj)
		owner := recvTypeName(fd)
		held[recvName+"."+field] = heldLock{owner: owner, field: field}
	}
	c.walkBlock(fd.Body, held)
}

// recvTypeName names the receiver's base type.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// walkBlock processes statements in order, threading the held-set; each
// nested block receives a copy so branch-local Unlocks stay local.
func (c *checker) walkBlock(b *ast.BlockStmt, held map[string]heldLock) {
	for _, s := range b.List {
		c.walkStmt(s, held)
	}
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *checker) walkStmt(s ast.Stmt, held map[string]heldLock) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.walkBlock(s, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.scanCalls(s.Cond, held)
		c.walkBlock(s.Body, copyHeld(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanCalls(s.Cond, held)
		}
		c.walkBlock(s.Body, copyHeld(held))
	case *ast.RangeStmt:
		c.scanCalls(s.X, held)
		c.walkBlock(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanCalls(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cl.Body {
					c.walkStmt(st, sub)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cl.Body {
					c.walkStmt(st, sub)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				sub := copyHeld(held)
				if cl.Comm != nil {
					c.walkStmt(cl.Comm, sub)
				}
				for _, st := range cl.Body {
					c.walkStmt(st, sub)
				}
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	case *ast.DeferStmt:
		// defer X.Unlock() does not cancel the hold; any other deferred
		// call is checked like a normal call (it runs with whatever the
		// function holds at return, which this lexical model cannot see;
		// the common deferred Unlock/RUnlock is the case that matters).
		if kind, _ := lockOpKind(c.pass.TypesInfo, s.Call); kind == opUnlock {
			return
		}
		c.scanCalls(s.Call, held)
	default:
		c.scanCalls(s, held)
	}
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockOpKind classifies a call as mutex acquire/release and returns the
// lock's identity when the receiver is a recognizable mutex field or
// mutex-typed variable.
func lockOpKind(info *types.Info, call *ast.CallExpr) (lockOp, lockIdent) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, lockIdent{}
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return opNone, lockIdent{}
	}
	// The receiver must itself be a mutex: a field selector (r.mu) or a
	// plain mutex variable.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if text, owner, field, ok := analysis.MutexField(info, x); ok {
			return op, lockIdent{text: text, owner: owner, field: field}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x]; ok && analysis.IsMutexType(obj.Type()) {
			return op, lockIdent{text: x.Name, field: x.Name}
		}
	}
	return opNone, lockIdent{}
}

type lockIdent struct {
	text  string // canonical holder expression, e.g. "r.mu"
	owner string // declaring type, e.g. "Relation" ("" for plain vars)
	field string
}

// scanCalls visits every call expression under n in source order,
// skipping function literal bodies (analyzed separately), and applies
// lock-op effects and *Locked checks against held.
func (c *checker) scanCalls(n ast.Node, held map[string]heldLock) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkBlock(n.Body, map[string]heldLock{})
			return false
		case *ast.CallExpr:
			c.applyCall(n, held)
		}
		return true
	})
}

func (c *checker) applyCall(call *ast.CallExpr, held map[string]heldLock) {
	info := c.pass.TypesInfo
	if op, id := lockOpKind(info, call); op != opNone {
		switch op {
		case opLock:
			if _, dup := held[id.text]; dup {
				c.pass.Reportf(call.Pos(), "acquiring %s, which this function already holds (self-deadlock)", id.text)
				return
			}
			c.checkOrder(call, id, held)
			held[id.text] = heldLock{owner: id.owner, field: id.field}
		case opUnlock:
			delete(held, id.text)
		}
		return
	}

	obj := analysis.CalleeObject(info, call)
	if !c.requiresLock(obj) {
		return
	}
	// Identify the receiver expression of the *Locked call; a plain
	// function call (no receiver) cannot be tied to a lock and is only
	// legal from another *Locked function.
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		if len(held) == 0 {
			c.pass.Reportf(call.Pos(), "call to %s without any lock held: callers of *Locked functions must hold the contract mutex", obj.Name())
		}
		return
	}
	recvText := analysis.ExprString(sel.X)
	field := c.lockFieldOf(obj)
	want := recvText + "." + field
	if _, ok := held[want]; ok {
		return
	}
	// A *Locked helper called on a different object while the caller
	// holds that object's lock through another name cannot be resolved
	// lexically; require the canonical form and let //dbvet:ignore
	// document the exceptions.
	c.pass.Reportf(call.Pos(), "call to %s without holding %s: the %s contract requires the caller to hold it", obj.Name(), want, obj.Name())
}

// checkOrder reports acquisitions that invert the documented lock
// ranking while another ranked lock is held.
func (c *checker) checkOrder(call *ast.CallExpr, id lockIdent, held map[string]heldLock) {
	rank, ranked := Ranks[id.owner+"."+id.field]
	if !ranked {
		return
	}
	for text, h := range held {
		hr, ok := Ranks[h.owner+"."+h.field]
		if ok && hr >= rank {
			c.pass.Reportf(call.Pos(),
				"acquiring %s (rank %d) while holding %s (rank %d) inverts the documented lock order",
				id.text, rank, text, hr)
		}
	}
}
