package lockcheck_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "../testdata/lockcheck", lockcheck.Analyzer)
}
