// Package nilness reports dereferences of pointers and interface
// values that are definitely nil on every path reaching them. It is a
// must-analysis over the control-flow graph: a variable is "definitely
// nil" only when all paths agree — a zero-value declaration with no
// intervening assignment, an explicit `p = nil`, or the true side of a
// `p == nil` branch (the branch-condition edges of internal/analysis/cfg
// carry the refinement, which is how the analysis narrows without SSA).
// Anything merged with a non-nil or unknown state degrades to unknown,
// so the checker only fires on dereferences that cannot succeed.
//
// The analysis is intraprocedural: parameters, call results (other than
// new and &composite) and captured variables are unknown. A dereference
// that survives marks the variable non-nil afterwards, both because it
// proved it and to keep one mistake from cascading down the function.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"datablocks/internal/analysis"
	"datablocks/internal/analysis/cfg"
	"datablocks/internal/analysis/dataflow"
)

// Analyzer is the nilness pass.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report dereferences of definitely-nil pointers and interfaces",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil, nil
}

// state is the nil-ness of one variable.
type state uint8

const (
	unknown state = iota
	isNil
	nonNil
)

// nilSet maps tracked variables to their state; absent means unknown.
type nilSet map[*types.Var]state

// lattice is the must-nilness analysis.
type lattice struct {
	info *types.Info
	// reported collects definite dereferences during Transfer, so the
	// fixpoint and the diagnostic scan are the same code path.
	reported map[token.Pos]string
}

func (lattice) Entry() nilSet { return nilSet{} }

func (lattice) Copy(s nilSet) nilSet {
	out := make(nilSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (lattice) Equal(a, b nilSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (lattice) Join(a, b nilSet) nilSet {
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			delete(a, k) // disagreement (or unknown in b) → unknown
		}
	}
	return a
}

func (l lattice) Transfer(n ast.Node, s nilSet) nilSet {
	switch n := n.(type) {
	case *ast.RangeStmt:
		// The binding only (cfg convention): range over a tracked
		// variable proves nothing about nil-ness of the bindings.
		if n.Key != nil {
			l.invalidate(n.Key, s)
		}
		if n.Value != nil {
			l.invalidate(n.Value, s)
		}
		return s
	case *ast.DeferStmt:
		return s // runs at return, against unknowable state
	}
	// Scan uses before redefinitions: a deref in the RHS happens before
	// the LHS assignment takes effect, but ast.Inspect order (LHS
	// first for AssignStmt) is close enough because the LHS update
	// below runs after the whole node is scanned.
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal's body is analyzed separately, but it may
			// write any variable it captures (possibly on another
			// goroutine, possibly repeatedly): everything it mentions
			// becomes unknown from here on.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v := l.trackedVar(id); v != nil {
						delete(s, v)
					}
				}
				return true
			})
			return false
		case *ast.RangeStmt, *ast.DeferStmt:
			return false
		case *ast.StarExpr:
			l.checkDeref(n.X, "pointer dereference", n.Star, s)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// &v escapes: writes through the pointer are invisible.
				l.invalidate(n.X, s)
			}
		case *ast.SelectorExpr:
			if sel, ok := l.info.Selections[n]; ok && sel.Indirect() {
				l.checkDeref(n.X, "field selection", n.X.Pos(), s)
			}
		case *ast.CallExpr:
			// A dynamic method call through a nil interface panics
			// before the callee runs.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sl, ok := l.info.Selections[sel]; ok && sl.Kind() == types.MethodVal {
					if _, isIface := sl.Recv().Underlying().(*types.Interface); isIface {
						l.checkDeref(sel.X, "dynamic method call", sel.X.Pos(), s)
					}
				}
			}
		}
		return true
	})
	l.applyWrites(n, s)
	return s
}

func (l lattice) TransferEdge(e *cfg.Edge, s nilSet) nilSet {
	v, toNil, ok := l.nilTest(e.Cond)
	if !ok {
		return s
	}
	if e.Negate {
		toNil = !toNil
	}
	if toNil {
		s[v] = isNil
	} else {
		s[v] = nonNil
	}
	return s
}

// nilTest recognizes `v == nil` and `v != nil` over a trackable
// variable, reporting which state the true branch implies.
func (l lattice) nilTest(cond ast.Expr) (v *types.Var, trueMeansNil, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if l.isNilLiteral(y) {
		// v OP nil
	} else if l.isNilLiteral(x) {
		x = y
	} else {
		return nil, false, false
	}
	vv := l.trackedVar(x)
	if vv == nil {
		return nil, false, false
	}
	return vv, be.Op == token.EQL, true
}

func (l lattice) isNilLiteral(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := l.info.Uses[id]
	_, isNilObj := obj.(*types.Nil)
	return isNilObj
}

// trackedVar resolves e to a local pointer- or interface-typed
// variable, the domain of the analysis.
func (l lattice) trackedVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := l.info.Uses[id].(*types.Var)
	if !ok {
		obj2, ok2 := l.info.Defs[id].(*types.Var)
		if !ok2 {
			return nil
		}
		obj = obj2
	}
	if obj.IsField() || obj.Pkg() == nil {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return obj
	}
	return nil
}

// checkDeref records a diagnostic when the dereferenced expression is a
// definitely-nil tracked variable, then marks it non-nil: the program
// either panicked (reported) or proved the value.
func (l lattice) checkDeref(x ast.Expr, what string, pos token.Pos, s nilSet) {
	v := l.trackedVar(x)
	if v == nil {
		return
	}
	if s[v] == isNil {
		if _, dup := l.reported[pos]; !dup {
			l.reported[pos] = "nil dereference in " + what + " (" + v.Name() + " is nil on every path to this point)"
		}
	}
	s[v] = nonNil
}

// applyWrites updates the state for the definitions n performs.
func (l lattice) applyWrites(n ast.Node, s nilSet) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				l.assign(n.Lhs[i], n.Rhs[i], s)
			}
		} else {
			for _, lhs := range n.Lhs {
				l.invalidate(lhs, s)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if len(vs.Values) == 0 {
					// var p *T — the zero value is nil.
					if v := l.trackedVar(name); v != nil {
						s[v] = isNil
					}
				} else if len(vs.Values) == len(vs.Names) {
					l.assign(name, vs.Values[i], s)
				} else {
					l.invalidate(name, s)
				}
			}
		}
	case *ast.IncDecStmt:
		l.invalidate(n.X, s)
	}
}

func (l lattice) assign(lhs, rhs ast.Expr, s nilSet) {
	v := l.trackedVar(lhs)
	if v == nil {
		return
	}
	s[v] = l.valueState(rhs)
}

func (l lattice) invalidate(lhs ast.Expr, s nilSet) {
	if v := l.trackedVar(lhs); v != nil {
		delete(s, v)
	}
}

// valueState classifies an assigned expression.
func (l lattice) valueState(e ast.Expr) state {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if l.isNilLiteral(e) {
			return isNil
		}
		if v := l.trackedVar(e); v != nil {
			return unknown // propagating would need the source's state at this point; keep simple
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nonNil // &x is never nil
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := l.info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "new" {
				return nonNil
			}
		}
	}
	return unknown
}

// checkBody runs the fixpoint and reports the collected dereferences.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	l := lattice{info: pass.TypesInfo, reported: map[token.Pos]string{}}
	res := dataflow.Forward[nilSet](g, l)
	// The fixpoint may visit a block several times with intermediate
	// states; discard what it recorded and re-derive diagnostics from
	// the final states only (the map is shared with res by reference,
	// so it must be cleared in place, not reassigned).
	clear(l.reported)
	res.Walk(g, func(ast.Node, nilSet) {}) // Walk replays Transfer, filling reported
	positions := make([]token.Pos, 0, len(l.reported))
	for pos := range l.reported {
		positions = append(positions, pos)
	}
	sortPositions(positions)
	for _, pos := range positions {
		pass.Reportf(pos, "%s", l.reported[pos])
	}
}

func sortPositions(ps []token.Pos) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
