package nilness_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, "../testdata/nilness", nilness.Analyzer)
}
