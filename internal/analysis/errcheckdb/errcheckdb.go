// Package errcheckdb enforces error handling on the engine APIs whose
// errors are load-bearing: a discarded error from these functions is a
// silently-corrupted scan, a leaked pin, or a cold block treated as
// resident. Unlike a general errcheck, the list is curated (Funcs) so
// the check stays loud on the calls that matter and silent on the rest.
//
// A call is flagged when its final error result is dropped:
//
//   - the call stands alone as a statement,
//   - the error position is assigned to the blank identifier, or
//   - the call is deferred without a wrapper that inspects the error.
package errcheckdb

import (
	"go/ast"

	"datablocks/internal/analysis"
)

// Funcs names the engine APIs whose errors must be consumed. Names are
// matched against the callee's object name, and only when the callee's
// final result is the error type — so a same-named method elsewhere with
// no error return never matches.
var Funcs = map[string]bool{
	// storage: view pinning and cold-chunk restore
	"Acquire":        true,
	"RestoreEvicted": true,
	"UnpackColumn":   true,
	// blockstore: durable reads and writes
	"ReadBlock":  true,
	"WriteBlock": true,
	"Load":       true,
	"Flush":      true,
	"Sync":       true,
	// catalog / manifest persistence
	"SaveCatalog":  true,
	"LoadCatalog":  true,
	"SaveManifest": true,
	"LoadManifest": true,
}

// Analyzer is the errcheckdb pass.
var Analyzer = &analysis.Analyzer{
	Name: "errcheckdb",
	Doc:  "check that errors from pinning, restore and store I/O APIs are never discarded",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if name, bad := checked(pass, call); bad {
						pass.Reportf(call.Pos(), "error result of %s is discarded: a dropped error here hides a failed pin or a bad block read", name)
					}
				}
			case *ast.DeferStmt:
				if name, bad := checked(pass, n.Call); bad {
					pass.Reportf(n.Call.Pos(), "deferred %s discards its error: wrap it in a closure that handles the error", name)
				}
				return false
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.GoStmt:
				if name, bad := checked(pass, n.Call); bad {
					pass.Reportf(n.Call.Pos(), "goroutine call to %s discards its error", name)
				}
				return false
			}
			return true
		})
	}
	return nil, nil
}

// checked reports whether the call targets a configured API returning an
// error that the surrounding statement drops.
func checked(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	obj := analysis.CalleeObject(pass.TypesInfo, call)
	if obj == nil || !Funcs[obj.Name()] {
		return "", false
	}
	if !analysis.LastResultIsError(pass.TypesInfo, call) {
		return "", false
	}
	return obj.Name(), true
}

// checkAssign flags `_ = x.Acquire()` and multi-assigns whose error
// position is blank, e.g. `blk, unpin, _ := r.pinBlock(i)`.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, bad := checked(pass, call)
	if !bad {
		return
	}
	// The error is the final result, so it lands in the final LHS slot.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(call.Pos(), "error result of %s is assigned to the blank identifier: handle it or justify with //dbvet:ignore", name)
	}
}
