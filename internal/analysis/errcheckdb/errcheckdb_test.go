package errcheckdb_test

import (
	"testing"

	"datablocks/internal/analysis/analysistest"
	"datablocks/internal/analysis/errcheckdb"
)

func TestErrcheckdb(t *testing.T) {
	analysistest.Run(t, "../testdata/errcheckdb", errcheckdb.Analyzer)
}
