package experiments

import (
	"fmt"
	"io"

	"datablocks/internal/bench"
	"datablocks/internal/core"
	"datablocks/internal/datasets"
	"datablocks/internal/storage"
	"datablocks/internal/tpch"
	"datablocks/internal/vwise"
)

// Datasets builds the three Table 1 / Figure 10 data sets at laptop scale.
func Datasets(sf float64, imdbRows, flightRows int) (map[string]*storage.Relation, error) {
	db, err := tpch.Generate(sf, 0)
	if err != nil {
		return nil, err
	}
	cast, err := datasets.CastInfo(imdbRows, 0)
	if err != nil {
		return nil, err
	}
	flights, err := datasets.Flights(flightRows, 0)
	if err != nil {
		return nil, err
	}
	return map[string]*storage.Relation{
		"TPC-H lineitem": db.Lineitem,
		"IMDB cast_info": cast,
		"Flights":        flights,
	}, nil
}

// Table1 reproduces Table 1: database sizes — CSV, uncompressed
// (HyPer-style hot format and Vectorwise raw columnar) and compressed
// (Data Blocks vs the Vectorwise PFOR/PDICT baseline).
func Table1(w io.Writer, sf float64, imdbRows, flightRows int) error {
	rels, err := Datasets(sf, imdbRows, flightRows)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 1 — database sizes (TPC-H SF %g, cast_info %d rows, flights %d rows)\n", sf, imdbRows, flightRows)
	tbl := bench.NewTable("data set", "CSV", "HyPer unc.", "HyPer Data Blocks", "Vectorwise comp.", "DB ratio", "VW ratio")
	for _, name := range []string{"TPC-H lineitem", "IMDB cast_info", "Flights"} {
		rel := rels[name]
		csv := bench.CSVSize(rel)
		cols, n := RelationColumns(rel)
		unc := UncompressedBytes(cols, n)
		frozen, err := CloneRelation(rel.Schema(), cols, n, 0, true)
		if err != nil {
			return err
		}
		dbBytes := frozen.MemoryStats().FrozenBytes
		vw, err := vwise.NewTable(cols, n, 1<<16)
		if err != nil {
			return err
		}
		vwBytes := vw.CompressedSize()
		tbl.AddRow(name, bench.Bytes(csv), bench.Bytes(unc), bench.Bytes(dbBytes), bench.Bytes(vwBytes),
			float64(unc)/float64(dbBytes), float64(unc)/float64(vwBytes))
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(ratios are uncompressed/compressed; the paper reports Vectorwise ~25% smaller than Data Blocks)")
	return nil
}

// Fig10 reproduces Figure 10: compression ratio versus records per Data
// Block, for the three data sets.
func Fig10(w io.Writer, sf float64, imdbRows, flightRows int) error {
	rels, err := Datasets(sf, imdbRows, flightRows)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10 — compression ratio vs records per Data Block")
	tbl := bench.NewTable("records/block", "TPC-H lineitem", "IMDB cast_info", "Flights")
	type prepared struct {
		rel  *storage.Relation
		cols []core.ColumnData
		n    int
		unc  int
	}
	cache := make(map[string]prepared, len(rels))
	for name, rel := range rels {
		cols, n := RelationColumns(rel)
		cache[name] = prepared{rel: rel, cols: cols, n: n, unc: UncompressedBytes(cols, n)}
	}
	for _, size := range []int{2048, 4096, 8192, 16384, 32768, 65536} {
		row := []any{size}
		for _, name := range []string{"TPC-H lineitem", "IMDB cast_info", "Flights"} {
			p := cache[name]
			frozen, err := CloneRelation(p.rel.Schema(), p.cols, p.n, size, true)
			if err != nil {
				return err
			}
			row = append(row, float64(p.unc)/float64(frozen.MemoryStats().FrozenBytes))
		}
		tbl.AddRow(row...)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(expected shape: ratio grows with block size; metadata overhead dominates small blocks)")
	return nil
}
