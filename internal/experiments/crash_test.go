package experiments

import (
	"os"
	"strings"
	"testing"
)

// TestCrashChildMode is the victim entry point for the kill -9 stress:
// TestKillRecoveryStress re-executes this test binary with CrashDirEnv
// set, and this function then writes against that directory until the
// parent kills the process. In a normal test run the env is unset and it
// skips.
func TestCrashChildMode(t *testing.T) {
	dir := os.Getenv(CrashDirEnv)
	if dir == "" {
		t.Skip("victim mode: spawned by TestKillRecoveryStress")
	}
	if err := CrashChild(dir); err != nil {
		t.Fatal(err)
	}
}

// TestKillRecoveryStress is the kill -9 recovery stress: spawn a victim
// process writing through the striped WAL, SIGKILL it at a random crash
// point, reopen and assert zero lost acknowledged writes.
func TestKillRecoveryStress(t *testing.T) {
	if testing.Short() {
		t.Skip("kill -9 stress skipped in -short")
	}
	var report strings.Builder
	err := CrashRestart(&report, 3, []string{"-test.run=^TestCrashChildMode$", "-test.v"})
	if out := strings.TrimSpace(report.String()); out != "" {
		t.Log(out)
	}
	if err != nil {
		t.Fatal(err)
	}
}
