package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"datablocks"
	"datablocks/internal/bench"
	"datablocks/internal/xrand"
)

// Restart exercises the durable-reopen path: a dataset far larger than
// the memory budget is loaded into a durable database (OpenPath), churned
// with updates and deletes, closed — and reopened as a second database
// instance that must answer exactly like the first. The check list:
//
//   - The reopened table recovers every frozen chunk in the evicted state
//     (no payload resident until a query touches it) and rebuilds the PK
//     index by streaming keys from the stored blocks.
//   - Full-scan aggregates (COUNT, SUM(id), SUM(amount)) and a sampled
//     point-lookup sweep across the whole keyspace match the pre-restart
//     answers exactly, including deleted keys staying deleted and the
//     last committed update winning.
//   - Garbage collection: a block file planted after the close —
//     simulating a crash between a block write and its manifest, i.e. a
//     file no manifest generation references — is removed at reopen, and
//     only the surviving manifest generation remains.
func Restart(w io.Writer, rows int, budget int64) error {
	if rows < 10_000 {
		rows = 10_000
	}
	if budget <= 0 {
		budget = 128 << 10
	}
	dir, err := os.MkdirTemp("", "restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cols := []datablocks.Column{
		{Name: "id", Kind: datablocks.Int64},
		{Name: "amount", Kind: datablocks.Float64},
		{Name: "status", Kind: datablocks.String},
	}
	const chunkRows = 2048
	runtimeOpts := []datablocks.TableOption{
		datablocks.WithAutoFreeze(1),
		datablocks.WithMemoryBudget(budget),
		datablocks.WithChunkRows(chunkRows),
	}
	statuses := []string{"new", "paid", "shipped"}
	mkRow := func(key int64, amount float64) datablocks.Row {
		return datablocks.Row{
			datablocks.Int(key),
			datablocks.Float(amount),
			datablocks.Str(statuses[int(key%3)]),
		}
	}

	// Session one: load, churn, measure, close.
	db1, err := datablocks.OpenPath(dir, runtimeOpts...)
	if err != nil {
		return err
	}
	tbl, err := db1.CreateTable("events", cols, datablocks.WithPrimaryKey("id"))
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if _, err = tbl.Insert(mkRow(int64(i), float64(i)/2)); err != nil {
			return err
		}
	}
	r := xrand.New(0xD15C)
	updates, deletes := 0, 0
	for i := 0; i < rows/10; i++ {
		key := r.Range(0, int64(rows)-1)
		switch r.Range(0, 2) {
		case 0:
			if ok, _ := tbl.Delete(key); ok {
				deletes++
			}
		default:
			if err = tbl.Update(key, mkRow(key, float64(i))); err == nil {
				updates++
			}
		}
	}

	type answers struct {
		n      int
		sumID  int64
		sumAmt float64
	}
	aggregate := func(t *datablocks.Table) (answers, error) {
		res, err := t.Scan([]string{"id", "amount"}, nil,
			datablocks.QueryOptions{Mode: datablocks.ModeVectorizedSARG})
		if err != nil {
			return answers{}, err
		}
		var a answers
		a.n = res.NumRows()
		for i := 0; i < res.NumRows(); i++ {
			a.sumID += res.Value(0, i).Int()
			a.sumAmt += res.Value(1, i).Float() // halves and small ints: exact in binary
		}
		return a, nil
	}
	type sample struct {
		ok     bool
		amount float64
		status string
	}
	const sampleStride = 97
	lookups := func(t *datablocks.Table) []sample {
		var out []sample
		for key := int64(0); key < int64(rows); key += sampleStride {
			row, ok := t.Lookup(key)
			s := sample{ok: ok}
			if ok {
				s.amount, s.status = row[1].Float(), row[2].Str()
			}
			out = append(out, s)
		}
		return out
	}
	before, err := aggregate(tbl)
	if err != nil {
		return err
	}
	beforeLookups := lookups(tbl)
	if err = db1.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	m1 := tbl.Metrics()
	if m1.Cold.DiskBytes <= budget {
		return fmt.Errorf("dataset does not exceed the budget: %s on disk vs %s budget — raise -rows",
			fmtBytes(m1.Cold.DiskBytes), fmtBytes(budget))
	}

	// Simulate a crash-orphaned block write: a block file that no manifest
	// generation references must be garbage-collected at reopen.
	tableDir := filepath.Join(dir, "events")
	blocks, err := filepath.Glob(filepath.Join(tableDir, "*.dblk"))
	if err != nil || len(blocks) == 0 {
		return fmt.Errorf("no block files in %s after close (err %v)", tableDir, err)
	}
	orphan := filepath.Join(tableDir, "999999999999.dblk")
	buf, err := os.ReadFile(blocks[0])
	if err != nil {
		return err
	}
	if err = os.WriteFile(orphan, buf, 0o644); err != nil {
		return err
	}

	// Session two: reopen from disk and re-answer everything.
	db2, err := datablocks.OpenPath(dir, runtimeOpts...)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer db2.Close()
	tbl2 := db2.Table("events")
	if tbl2 == nil {
		return fmt.Errorf("table %q not recovered from catalog", "events")
	}
	if _, err = os.Stat(orphan); !os.IsNotExist(err) {
		return fmt.Errorf("orphaned block file survived reopen: %s (err %v)", orphan, err)
	}
	manifests, err := filepath.Glob(filepath.Join(tableDir, "manifest-*.dbm"))
	if err != nil || len(manifests) != 1 {
		return fmt.Errorf("expected exactly the surviving manifest generation after reopen, found %d (err %v)", len(manifests), err)
	}
	// Recovery restores chunks evicted; the index rebuild then reloads
	// blocks one at a time (and the budget evictor trims asynchronously),
	// so right after reopen the table must be frozen+evicted only — no
	// hot chunks until the first insert — with most chunks still evicted.
	// One Metrics() call snapshots chunk states and the rebuilt index
	// together, so the two facets describe the same instant.
	recovered := tbl2.Metrics()
	if recovered.Mem.EvictedChunks == 0 || recovered.Mem.HotChunks != 0 {
		return fmt.Errorf("recovered table should be fully frozen with evicted chunks: %d evicted, %d frozen, %d hot chunks",
			recovered.Mem.EvictedChunks, recovered.Mem.FrozenChunks, recovered.Mem.HotChunks)
	}
	after, err := aggregate(tbl2)
	if err != nil {
		return err
	}
	if after != before {
		return fmt.Errorf("aggregates diverged across restart: rows %d/%d, sum(id) %d/%d, sum(amount) %g/%g",
			after.n, before.n, after.sumID, before.sumID, after.sumAmt, before.sumAmt)
	}
	afterLookups := lookups(tbl2)
	mismatch := 0
	for i := range beforeLookups {
		if beforeLookups[i] != afterLookups[i] {
			mismatch++
		}
	}
	if mismatch > 0 {
		return fmt.Errorf("%d of %d sampled point lookups diverged across restart", mismatch, len(beforeLookups))
	}
	m2 := tbl2.Metrics()
	if m2.Cold.Reloads == 0 {
		return fmt.Errorf("reopened table answered without reloading any block")
	}

	fmt.Fprintf(w, "Durable reopen — dataset ≫ budget (%d rows, %s budget), closed and reopened from disk\n",
		rows, fmtBytes(budget))
	t := bench.NewTable("metric", "value")
	t.AddRow("rows loaded", fmt.Sprint(rows))
	t.AddRow("updates / deletes", fmt.Sprintf("%d / %d", updates, deletes))
	t.AddRow("live rows (both runs)", fmt.Sprint(after.n))
	t.AddRow("on-disk blocks / bytes", fmt.Sprintf("%d / %s", m2.Cold.StoredBlocks, fmtBytes(m2.Cold.DiskBytes)))
	t.AddRow("memory budget", fmtBytes(budget))
	t.AddRow("chunks recovered (evicted)", fmt.Sprint(recovered.Mem.EvictedChunks))
	t.AddRow("index keys rebuilt", fmt.Sprint(recovered.IndexKeys))
	t.AddRow("block reloads after reopen", fmt.Sprint(m2.Cold.Reloads))
	t.AddRow("store reads after reopen", fmt.Sprintf("%d loads / %s", m2.Store.Loads, fmtBytes(m2.Store.BytesRead)))
	t.AddRow("sampled lookups compared", fmt.Sprint(len(beforeLookups)))
	t.Write(w)
	fmt.Fprintln(w, "aggregates and sampled lookups match the pre-restart run exactly; orphaned block file was garbage-collected")
	return nil
}
