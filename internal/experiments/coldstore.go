package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"datablocks"
	"datablocks/internal/bench"
	"datablocks/internal/xrand"
)

// ColdStore exercises the larger-than-RAM path the paper's eviction story
// promises (§1: cold blocks move to secondary storage yet stay
// query-able): a table whose frozen set far exceeds its memory budget
// serves concurrent OLTP writers and OLAP scanners while the background
// compactor freezes sealed chunks, spills the coldest blocks to the disk
// store and reloads them on demand — scans and point lookups pin blocks
// through the cache, so every sweep forces reload churn.
//
// Correctness is checked against ground truth: every writer draws its
// operations from a deterministic per-stripe sequence, so after the clock
// runs out the same rounds are replayed serially into an unbounded
// in-memory table. The budgeted run must match it exactly — live row
// count, COUNT/SUM aggregates over full scans, the pinned hot keys each
// writer rewrote every round, and a sample sweep of point lookups across
// the whole keyspace — and must report eviction and reload counts > 0,
// or the experiment fails.
func ColdStore(w io.Writer, rows int, seconds float64, writers, scanners int, budget int64) error {
	if writers < 1 {
		writers = 1
	}
	if scanners < 1 {
		scanners = 1
	}
	if rows < writers*1000 {
		rows = writers * 1000
	}
	if budget <= 0 {
		budget = 128 << 10
	}
	dir, err := os.MkdirTemp("", "coldstore-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cols := []datablocks.Column{
		{Name: "id", Kind: datablocks.Int64},
		{Name: "amount", Kind: datablocks.Float64},
		{Name: "status", Kind: datablocks.String},
	}
	const chunkRows = 2048
	cold := datablocks.Open()
	tbl, err := cold.CreateTable("events", cols,
		datablocks.WithPrimaryKey("id"),
		datablocks.WithChunkRows(chunkRows),
		datablocks.WithAutoFreeze(1),
		datablocks.WithBlockStore(dir),
		datablocks.WithMemoryBudget(budget),
	)
	if err != nil {
		return err
	}
	// Idempotent safety net: the error returns below (preload, replay,
	// verification) must not leak the background compactor while the
	// deferred RemoveAll deletes its store directory; the explicit Close
	// after the concurrent phase still reports the first real error.
	defer cold.Close()

	// Disjoint key stripes keep each writer's sequence independent, which
	// is what makes the concurrent run replayable.
	const stripe = int64(1) << 32
	statuses := []string{"new", "paid", "shipped"}
	mkRow := func(key int64, amount float64) datablocks.Row {
		return datablocks.Row{
			datablocks.Int(key),
			datablocks.Float(amount),
			datablocks.Str(statuses[int(key%3)]),
		}
	}

	// applyRound replays one operation round of writer g. next tracks the
	// first unused key of the stripe; the round index doubles as the
	// pinned key's payload so the final pinned row proves the last update
	// won. Deterministic: all decisions come from r, all state from the
	// stripe itself.
	pinnedKey := func(g int) int64 { return int64(g)*stripe + stripe - 1 }
	applyRound := func(t *datablocks.Table, g, round int, r *xrand.Rand, next *int64) error {
		if err := t.Update(pinnedKey(g), datablocks.Row{
			datablocks.Int(pinnedKey(g)),
			datablocks.Float(float64(round)),
			datablocks.Str("pinned"),
		}); err != nil {
			return fmt.Errorf("pinned update: %w", err)
		}
		base := int64(g) * stripe
		switch r.Range(0, 9) {
		case 0, 1, 2, 3, 4, 5: // insert a fresh key
			key := *next
			*next++
			if _, err := t.Insert(mkRow(key, float64(key-base)/2)); err != nil {
				return fmt.Errorf("insert %d: %w", key, err)
			}
		case 6, 7: // rewrite one of our own keys (may be deleted: no-op)
			if *next == base {
				return nil
			}
			key := base + r.Range(0, *next-base-1)
			_ = t.Update(key, mkRow(key, -0.5))
		case 8: // delete one of our own keys (may already be gone)
			if *next == base {
				return nil
			}
			t.Delete(base + r.Range(0, *next-base-1))
		default: // point lookup (keeps the rng streams aligned on replay)
			if *next == base {
				return nil
			}
			key := base + r.Range(0, *next-base-1)
			if row, ok := t.Lookup(key); ok && row[0].Int() != key {
				return fmt.Errorf("lookup %d resolved id %d", key, row[0].Int())
			}
		}
		return nil
	}

	// Preload: dataset ≫ budget, split across stripes, plus the pinned
	// keys. The auto-freeze compactor seals and freezes chunks behind the
	// loader; the budget evictor starts spilling immediately.
	perStripe := rows / writers
	nextKeys := make([]int64, writers)
	for g := 0; g < writers; g++ {
		base := int64(g) * stripe
		for i := 0; i < perStripe; i++ {
			key := base + int64(i)
			if _, err = tbl.Insert(mkRow(key, float64(i)/2)); err != nil {
				return err
			}
		}
		nextKeys[g] = base + int64(perStripe)
		if _, err = tbl.Insert(datablocks.Row{
			datablocks.Int(pinnedKey(g)),
			datablocks.Float(-1),
			datablocks.Str("pinned"),
		}); err != nil {
			return err
		}
	}

	// Concurrent phase: writers churn their stripes, scanners sweep the
	// table (reloading evicted blocks as they go), a reader hammers the
	// pinned keys. Misses on always-live keys fail the run.
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		runErr error
		rounds = make([]int, writers)
	)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xrand.New(uint64(0xC01D + g))
			next := nextKeys[g]
			for round := 0; time.Now().Before(deadline); round++ {
				if err := applyRound(tbl, g, round, r, &next); err != nil {
					fail(fmt.Errorf("writer %d round %d: %w", g, round, err))
					return
				}
				rounds[g]++
			}
		}(g)
	}
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			modes := []datablocks.ScanMode{
				datablocks.ModeVectorizedSARG,
				datablocks.ModeVectorizedSARGPSMA,
				datablocks.ModeJIT,
			}
			for i := s; time.Now().Before(deadline); i++ {
				if _, err := tbl.Scan([]string{"id", "amount"},
					[]datablocks.Pred{{Col: "amount", Op: datablocks.Ge, Lo: datablocks.Float(0)}},
					datablocks.QueryOptions{Mode: modes[i%len(modes)]}); err != nil {
					fail(fmt.Errorf("scan: %w", err))
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			g := i % writers
			row, ok := tbl.Lookup(pinnedKey(g))
			if !ok {
				fail(fmt.Errorf("read anomaly: pinned key %d missed mid-update", pinnedKey(g)))
				return
			}
			if row[0].Int() != pinnedKey(g) {
				fail(fmt.Errorf("pinned key %d resolved id %d", pinnedKey(g), row[0].Int()))
				return
			}
		}
	}()
	wg.Wait()
	// Snapshot the full telemetry at the end of the concurrent phase, in
	// one consistent Metrics() read (separate ColdStats/Stats calls could
	// interleave with late compactor work): DB.Close below reloads every
	// evicted block and garbage-collects the spill cache (the store was
	// never persisted), and the verification sweeps add churn of their own
	// — both would skew the report.
	m := tbl.Metrics()
	if err = cold.Close(); err != nil {
		return fmt.Errorf("cold table close: %w", err)
	}
	if runErr != nil {
		return runErr
	}

	// Ground truth: an unbounded in-memory table, same preload, same
	// rounds replayed serially from the same seeds.
	hot := datablocks.Open()
	truth, err := hot.CreateTable("events", cols,
		datablocks.WithPrimaryKey("id"),
		datablocks.WithChunkRows(chunkRows),
	)
	if err != nil {
		return err
	}
	for g := 0; g < writers; g++ {
		base := int64(g) * stripe
		for i := 0; i < perStripe; i++ {
			key := base + int64(i)
			if _, err = truth.Insert(mkRow(key, float64(i)/2)); err != nil {
				return err
			}
		}
		if _, err = truth.Insert(datablocks.Row{
			datablocks.Int(pinnedKey(g)),
			datablocks.Float(-1),
			datablocks.Str("pinned"),
		}); err != nil {
			return err
		}
	}
	for g := 0; g < writers; g++ {
		r := xrand.New(uint64(0xC01D + g))
		next := nextKeys[g]
		for round := 0; round < rounds[g]; round++ {
			if err = applyRound(truth, g, round, r, &next); err != nil {
				return fmt.Errorf("replay writer %d round %d: %w", g, round, err)
			}
		}
	}

	// Equivalence: live counts, full-scan aggregates, pinned keys, and a
	// sampled point-lookup sweep across every stripe.
	aggregate := func(t *datablocks.Table) (int, int64, float64, error) {
		res, err := t.Scan([]string{"id", "amount"}, nil,
			datablocks.QueryOptions{Mode: datablocks.ModeVectorizedSARG})
		if err != nil {
			return 0, 0, 0, err
		}
		var sumID int64
		var sumAmount float64 // halves of small ints: exact in binary, order-free
		for i := 0; i < res.NumRows(); i++ {
			sumID += res.Value(0, i).Int()
			sumAmount += res.Value(1, i).Float()
		}
		return res.NumRows(), sumID, sumAmount, nil
	}
	gotN, gotID, gotAmt, err := aggregate(tbl)
	if err != nil {
		return err
	}
	wantN, wantID, wantAmt, err := aggregate(truth)
	if err != nil {
		return err
	}
	if tbl.NumRows() != truth.NumRows() || gotN != wantN || gotID != wantID || gotAmt != wantAmt {
		return fmt.Errorf("coldstore diverged from ground truth: rows %d/%d, scanned %d/%d, sum(id) %d/%d, sum(amount) %g/%g",
			tbl.NumRows(), truth.NumRows(), gotN, wantN, gotID, wantID, gotAmt, wantAmt)
	}
	for g := 0; g < writers; g++ {
		a, okA := tbl.Lookup(pinnedKey(g))
		b, okB := truth.Lookup(pinnedKey(g))
		if !okA || !okB || a[1].Float() != b[1].Float() {
			return fmt.Errorf("pinned key %d diverged: %v vs %v", pinnedKey(g), a, b)
		}
	}
	sampled, sampleMismatch := 0, 0
	for g := 0; g < writers; g++ {
		base := int64(g) * stripe
		for key := base; key < nextKeys[g]; key += 97 {
			a, okA := tbl.Lookup(key)
			b, okB := truth.Lookup(key)
			sampled++
			if okA != okB || (okA && (a[1].Float() != b[1].Float() || a[2].Str() != b[2].Str())) {
				sampleMismatch++
			}
		}
	}
	if sampleMismatch > 0 {
		return fmt.Errorf("%d of %d sampled point lookups diverged from ground truth", sampleMismatch, sampled)
	}

	if m.Cold.Evictions == 0 || m.Cold.Reloads == 0 {
		return fmt.Errorf("no eviction/reload churn (evictions %d, reloads %d): dataset did not exceed the budget",
			m.Cold.Evictions, m.Cold.Reloads)
	}

	fmt.Fprintf(w, "Cold block store — dataset ≫ budget (%d rows, %s budget), %d writers, %d scanners, %.1fs\n",
		rows, fmtBytes(budget), writers, scanners, seconds)
	t := bench.NewTable("metric", "value")
	totalRounds := 0
	for _, r := range rounds {
		totalRounds += r
	}
	t.AddRow("live rows", fmt.Sprint(tbl.NumRows()))
	t.AddRow("writer rounds", fmt.Sprint(totalRounds))
	t.AddRow("analytic scans", fmt.Sprint(m.Ops.Scans))
	t.AddRow("rows read (scans + lookups)", fmt.Sprint(m.Ops.RowsRead))
	t.AddRow("point lookups", fmt.Sprint(m.Ops.Lookups))
	t.AddRow("block evictions", fmt.Sprint(m.Cold.Evictions))
	t.AddRow("block reloads", fmt.Sprint(m.Cold.Reloads))
	t.AddRow("single-flight collapses", fmt.Sprint(m.Cold.Collapses))
	t.AddRow("resident frozen bytes", fmtBytes(m.Cold.ResidentBytes))
	t.AddRow("memory budget", fmtBytes(m.Cold.BudgetBytes))
	t.AddRow("store blocks / bytes", fmt.Sprintf("%d / %s", m.Cold.StoredBlocks, fmtBytes(m.Cold.DiskBytes)))
	t.AddRow("freezes (end)", fmt.Sprint(m.Freeze.Freezes))
	t.AddRow("evicted chunks (end)", fmt.Sprint(m.Mem.EvictedChunks))
	t.Write(w)
	fmt.Fprintf(w, "aggregates, pinned keys and %d sampled lookups match the unbounded-memory run exactly\n", sampled)
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
