package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"datablocks/internal/bench"
	"datablocks/internal/core"
	"datablocks/internal/datasets"
	"datablocks/internal/exec"
	"datablocks/internal/storage"
	"datablocks/internal/tpch"
	"datablocks/internal/types"
	"datablocks/internal/vwise"
	"datablocks/internal/xrand"
)

// Table2Config is one scan configuration of Table 2 / Table 4.
type Table2Config struct {
	Name   string
	Frozen bool
	Mode   exec.ScanMode
}

// Table2Configs lists the six HyPer-side configurations in paper order.
var Table2Configs = []Table2Config{
	{"JIT (uncompressed)", false, exec.ModeJIT},
	{"Vectorized (uncompressed)", false, exec.ModeVectorized},
	{"+SARG (uncompressed)", false, exec.ModeVectorizedSARG},
	{"Data Blocks", true, exec.ModeVectorized},
	{"+SARG/SMA", true, exec.ModeVectorizedSARG},
	{"+PSMA", true, exec.ModeVectorizedSARGPSMA},
}

// Table2 reproduces Table 2 / Table 4 (Appendix F): TPC-H query runtimes
// per scan configuration on uncompressed storage and Data Blocks, with the
// geometric mean, plus the Vectorwise compressed-vs-uncompressed contrast
// on Q1/Q6 (§5.2 reports those two are 18%/38% slower compressed).
// parallelism <= 0 uses every core (runtime.GOMAXPROCS).
func Table2(w io.Writer, sf float64, rounds, parallelism int) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	hot, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	cold, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	if err := cold.FreezeAll(false, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2/4 — TPC-H (SF %g) runtimes per scan type (median of %d runs)\n", sf, rounds)
	header := []string{"query"}
	for _, c := range Table2Configs {
		header = append(header, c.Name)
	}
	header = append(header, "PSMA speedup over JIT")
	tbl := bench.NewTable(header...)
	times := make([][]float64, len(Table2Configs))
	for _, q := range tpch.SupportedQueries {
		row := []any{fmt.Sprintf("Q%d", q)}
		var jit, psma time.Duration
		for ci, cfg := range Table2Configs {
			db := hot
			if cfg.Frozen {
				db = cold
			}
			var res *exec.Result
			d := bench.MeasureBest(rounds, func() {
				var err error
				res, err = db.Query(q, exec.Options{Mode: cfg.Mode, Parallelism: parallelism})
				if err != nil {
					panic(err)
				}
			})
			_ = res
			times[ci] = append(times[ci], d.Seconds())
			row = append(row, d)
			if ci == 0 {
				jit = d
			}
			if ci == len(Table2Configs)-1 {
				psma = d
			}
		}
		row = append(row, float64(jit)/float64(psma))
		tbl.AddRow(row...)
	}
	geo := []any{"geometric mean"}
	for ci := range Table2Configs {
		geo = append(geo, time.Duration(bench.GeoMean(times[ci])*float64(time.Second)))
	}
	geo = append(geo, bench.GeoMean(times[0])/bench.GeoMean(times[len(Table2Configs)-1]))
	tbl.AddRow(geo...)
	tbl.Write(w)

	fmt.Fprintln(w, "\nVectorwise baseline (decompress-then-filter; §5.2 contrast on Q1/Q6):")
	if err := vectorwiseQ1Q6(w, cold, rounds); err != nil {
		return err
	}
	return nil
}

// vectorwiseQ1Q6 runs hand-coded Q1/Q6 equivalents on the Vectorwise
// baseline, uncompressed (raw slices) vs compressed (full decompression
// per scan) — no early filtering in either, per Vectorwise's design.
func vectorwiseQ1Q6(w io.Writer, db *tpch.DB, rounds int) error {
	cols, n := RelationColumns(db.Lineitem)
	vw, err := vwise.NewTable(cols, n, 1<<16)
	if err != nil {
		return err
	}
	li := db.Lineitem.Schema()
	var (
		qtyC   = li.MustColumn("l_quantity")
		priceC = li.MustColumn("l_extendedprice")
		discC  = li.MustColumn("l_discount")
		shipC  = li.MustColumn("l_shipdate")
	)
	loDate := types.DateToDays(1994, time.January, 1)
	hiDate := types.DateToDays(1994, time.December, 31)

	q6Raw := func(ship, disc, qty, price []int64) float64 {
		rev := 0.0
		for i := range ship {
			if ship[i] >= loDate && ship[i] <= hiDate && disc[i] >= 5 && disc[i] <= 7 && qty[i] < 24 {
				rev += float64(price[i]) / 100 * float64(disc[i]) / 100
			}
		}
		return rev
	}
	// Uncompressed: loops over the raw columnar arrays.
	rawTime := bench.MeasureBest(rounds, func() {
		_ = q6Raw(cols[shipC].Ints, cols[discC].Ints, cols[qtyC].Ints, cols[priceC].Ints)
	})
	// Compressed: full decompression of every scanned column, then filter.
	bufs := map[int][]int64{
		shipC: make([]int64, n), discC: make([]int64, n),
		qtyC: make([]int64, n), priceC: make([]int64, n),
	}
	compTime := bench.MeasureBest(rounds, func() {
		for col, buf := range bufs {
			off := 0
			vw.ScanInts(col, func(_ int, vals []int64) {
				copy(buf[off:], vals)
				off += len(vals)
			})
		}
		_ = q6Raw(bufs[shipC], bufs[discC], bufs[qtyC], bufs[priceC])
	})
	tbl := bench.NewTable("query", "VW uncompressed", "VW compressed", "slowdown")
	tbl.AddRow("Q6 scan+filter+sum", rawTime, compTime, float64(compTime)/float64(rawTime))
	tbl.Write(w)
	return nil
}

// Fig5 reproduces Figure 5: compile time of a select * over an 8-attribute
// relation as the number of storage-layout combinations grows — exploding
// for JIT-compiled scans, flat for the interpreted vectorized scan.
func Fig5(w io.Writer, maxCombos int) error {
	fmt.Fprintln(w, "Figure 5 — compile time vs storage layout combinations (8-attribute relation)")
	tbl := bench.NewTable("layouts", "jit compile", "jit scan paths", "vectorized compile", "vectorized scan paths")
	for combos := 1; combos <= maxCombos; combos *= 4 {
		rel, err := LayoutRelation(combos)
		if err != nil {
			return err
		}
		cols := make([]int, 8)
		for i := range cols {
			cols[i] = i
		}
		plan := &exec.ScanNode{Rel: rel, Cols: cols}
		var jitStats, vecStats exec.CompileStats
		jit := bench.MeasureBest(3, func() {
			s, err := exec.CompileOnly(plan, exec.Options{Mode: exec.ModeJIT})
			if err != nil {
				panic(err)
			}
			jitStats = s
		})
		vec := bench.MeasureBest(3, func() {
			s, err := exec.CompileOnly(plan, exec.Options{Mode: exec.ModeVectorized})
			if err != nil {
				panic(err)
			}
			vecStats = s
		})
		tbl.AddRow(combos, jit, jitStats.ScanPaths, vec, vecStats.ScanPaths)
	}
	tbl.Write(w)
	return nil
}

// LayoutRelation builds an 8-int-attribute relation whose frozen blocks
// exhibit exactly `combos` distinct storage-layout combinations.
func LayoutRelation(combos int) (*storage.Relation, error) {
	colsDef := make([]types.Column, 8)
	for i := range colsDef {
		colsDef[i] = types.Column{Name: fmt.Sprintf("a%d", i), Kind: types.Int64}
	}
	const rows = 64 // tiny blocks: Figure 5 measures compilation, not scans
	rel := storage.NewRelation(types.NewSchema(colsDef...), rows)
	r := xrand.New(5)
	for b := 0; b < combos; b++ {
		data := make([]core.ColumnData, 8)
		for c := 0; c < 8; c++ {
			vals := make([]int64, rows)
			// Two scheme-determining digits per column: the block index
			// selects one of 4 physical layouts per attribute.
			switch (b >> (2 * uint(c))) & 3 {
			case 0: // 1-byte truncation
				for i := range vals {
					vals[i] = r.Range(0, 200)
				}
			case 1: // 2-byte truncation
				for i := range vals {
					vals[i] = r.Range(0, 40000)
				}
			case 2: // 4-byte truncation
				for i := range vals {
					vals[i] = r.Range(0, 1<<30)
				}
			default: // single value
				v := int64(b)
				for i := range vals {
					vals[i] = v
				}
			}
			data[c] = core.ColumnData{Kind: types.Int64, Ints: vals}
		}
		if err := rel.BulkAppend(data, rows); err != nil {
			return nil, err
		}
	}
	if err := rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		return nil, err
	}
	return rel, nil
}

// Fig11 reproduces Figure 11: TPC-H Q6 speedup over the JIT scan, adding
// vectorization, Data Blocks (+PSMA), block-wise sorting on l_shipdate
// without PSMA, and sorting with PSMA.
func Fig11(w io.Writer, sf float64, rounds int) error {
	hot, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	frozen, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	if err = frozen.FreezeAll(false, false); err != nil {
		return err
	}
	sortedNoPsma, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	if err = sortedNoPsma.FreezeAll(true, true); err != nil {
		return err
	}
	sorted, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	if err := sorted.FreezeAll(true, false); err != nil {
		return err
	}
	type cfg struct {
		name string
		db   *tpch.DB
		mode exec.ScanMode
	}
	cfgs := []cfg{
		{"JIT", hot, exec.ModeJIT},
		{"VEC", hot, exec.ModeVectorized},
		{"Data Blocks (+PSMA)", frozen, exec.ModeVectorizedSARGPSMA},
		{"+SORT (-PSMA)", sortedNoPsma, exec.ModeVectorizedSARG},
		{"+SORT +PSMA", sorted, exec.ModeVectorizedSARGPSMA},
	}
	fmt.Fprintf(w, "Figure 11 — TPC-H Q6 (SF %g) speedup over JIT with block-wise l_shipdate sorting\n", sf)
	tbl := bench.NewTable("configuration", "runtime", "speedup over JIT")
	var jit time.Duration
	for i, c := range cfgs {
		d := bench.MeasureBest(rounds, func() {
			if _, err := c.db.Query(6, exec.Options{Mode: c.mode}); err != nil {
				panic(err)
			}
		})
		if i == 0 {
			jit = d
		}
		tbl.AddRow(c.name, d, float64(jit)/float64(d))
	}
	tbl.Write(w)
	return nil
}

// Fig13 reproduces Figure 13 (Appendix A): geometric mean of the TPC-H
// subset versus the scan vector size, on uncompressed chunks and Data
// Blocks.
func Fig13(w io.Writer, sf float64, rounds int) error {
	hot, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	cold, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	if err := cold.FreezeAll(false, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 13 — TPC-H (SF %g) geometric mean vs vector size\n", sf)
	tbl := bench.NewTable("vector size", "vectorized uncompressed", "data block scan")
	for _, vs := range []int{256, 1024, 4096, 8192, 16384, 65536} {
		var hotTimes, coldTimes []float64
		for _, q := range tpch.SupportedQueries {
			d := bench.MeasureBest(rounds, func() {
				if _, err := hot.Query(q, exec.Options{Mode: exec.ModeVectorizedSARG, VectorSize: vs}); err != nil {
					panic(err)
				}
			})
			hotTimes = append(hotTimes, d.Seconds())
			d = bench.MeasureBest(rounds, func() {
				if _, err := cold.Query(q, exec.Options{Mode: exec.ModeVectorizedSARGPSMA, VectorSize: vs}); err != nil {
					panic(err)
				}
			})
			coldTimes = append(coldTimes, d.Seconds())
		}
		tbl.AddRow(vs,
			time.Duration(bench.GeoMean(hotTimes)*float64(time.Second)),
			time.Duration(bench.GeoMean(coldTimes)*float64(time.Second)))
	}
	tbl.Write(w)
	return nil
}

// FlightsQuery reproduces the Appendix D experiment: the SFO arrival-delay
// query on naturally date-ordered data, JIT on uncompressed vs Data Blocks
// with SMAs and PSMAs (the paper reports >20x).
func FlightsQuery(w io.Writer, rows, rounds int) error {
	hot, err := datasets.Flights(rows, 0)
	if err != nil {
		return err
	}
	frozenRel, err := datasets.Flights(rows, 0)
	if err != nil {
		return err
	}
	if err := frozenRel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "Appendix D — flights query (%d rows): carriers by avg arrival delay, SFO, 1998-2008\n", rows)
	tbl := bench.NewTable("configuration", "runtime", "speedup over JIT")
	jit := bench.MeasureBest(rounds, func() {
		if _, err := exec.Run(datasets.FlightsQuery(hot), exec.Options{Mode: exec.ModeJIT}); err != nil {
			panic(err)
		}
	})
	tbl.AddRow("JIT (uncompressed)", jit, 1.0)
	blocks := bench.MeasureBest(rounds, func() {
		if _, err := exec.Run(datasets.FlightsQuery(frozenRel), exec.Options{Mode: exec.ModeVectorizedSARGPSMA}); err != nil {
			panic(err)
		}
	})
	tbl.AddRow("Data Blocks +SMA/PSMA", blocks, float64(jit)/float64(blocks))
	tbl.Write(w)
	return nil
}
