// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and the appendices). Each function prints the same rows or
// series the paper reports; cmd/dbrepro exposes them on the command line
// and the repository-root benchmarks measure their kernels under
// testing.B. Absolute numbers differ from the paper's testbed; the shapes
// (who wins, by what factor, where the crossovers fall) are the
// reproduction target — see EXPERIMENTS.md.
package experiments

import (
	"datablocks/internal/core"
	"datablocks/internal/storage"
	"datablocks/internal/types"
)

// RelationColumns materializes a relation back into columnar buffers
// (NULLs become zero values plus a flag), for feeding the Vectorwise
// baseline and CSV sizing.
func RelationColumns(rel *storage.Relation) ([]core.ColumnData, int) {
	n := 0
	for _, ch := range rel.Chunks() {
		n += ch.Rows()
	}
	cols := make([]core.ColumnData, rel.Schema().NumColumns())
	for i, c := range rel.Schema().Columns {
		cols[i].Kind = c.Kind
		switch c.Kind {
		case types.Int64:
			cols[i].Ints = make([]int64, 0, n)
		case types.Float64:
			cols[i].Floats = make([]float64, 0, n)
		default:
			cols[i].Strs = make([]string, 0, n)
		}
		if c.Nullable {
			cols[i].Nulls = make([]bool, 0, n)
		}
	}
	for _, ch := range rel.Chunks() {
		rows := ch.Rows()
		for ci := range cols {
			kind := cols[ci].Kind
			for row := 0; row < rows; row++ {
				var v types.Value
				if ch.IsFrozen() {
					v = ch.Block().Value(ci, row)
				} else {
					v = ch.Hot().Value(ci, row)
				}
				if cols[ci].Nulls != nil {
					cols[ci].Nulls = append(cols[ci].Nulls, v.IsNull())
				}
				switch kind {
				case types.Int64:
					if v.IsNull() {
						cols[ci].Ints = append(cols[ci].Ints, 0)
					} else {
						cols[ci].Ints = append(cols[ci].Ints, v.Int())
					}
				case types.Float64:
					if v.IsNull() {
						cols[ci].Floats = append(cols[ci].Floats, 0)
					} else {
						cols[ci].Floats = append(cols[ci].Floats, v.Float())
					}
				default:
					if v.IsNull() {
						cols[ci].Strs = append(cols[ci].Strs, "")
					} else {
						cols[ci].Strs = append(cols[ci].Strs, v.Str())
					}
				}
			}
		}
	}
	return cols, n
}

// CloneRelation rebuilds a relation from columns with a given chunk size
// and freeze state, used by the block-size sweep (Figure 10).
func CloneRelation(schema *types.Schema, cols []core.ColumnData, n, chunkRows int, freeze bool) (*storage.Relation, error) {
	rel := storage.NewRelation(schema, chunkRows)
	if err := rel.BulkAppend(cols, n); err != nil {
		return nil, err
	}
	if freeze {
		if err := rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// UncompressedBytes returns the hot-format footprint of columnar data: the
// "HyPer uncompressed" rows of Table 1.
func UncompressedBytes(cols []core.ColumnData, n int) int {
	size := 0
	for _, c := range cols {
		switch c.Kind {
		case types.Int64, types.Float64:
			size += 8 * n
		default:
			for _, s := range c.Strs {
				size += len(s) + 16
			}
		}
		if c.Nulls != nil {
			size += n
		}
	}
	return size
}
