package experiments

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"datablocks"
	"datablocks/internal/xrand"
)

// CrashDirEnv carries the database directory into the victim process:
// when set, the process must run CrashChild against it instead of its
// normal entry point (cmd/dbrepro and the experiments test binary both
// honor it).
const CrashDirEnv = "DBREPRO_CRASH_DIR"

const crashTable = "events"

// crashOpts is the table configuration both sides of the kill test agree
// on: striped write path, write-ahead logging, modest chunks so freezes
// interleave with the kill window.
func crashOpts() []datablocks.TableOption {
	return []datablocks.TableOption{
		datablocks.WithChunkRows(2048),
		datablocks.WithWriteStripes(8),
		datablocks.WithWAL(),
	}
}

// crashAmount is the deterministic payload for a key, so the parent can
// verify every recovered row — acknowledged or not — without shipping
// values across the pipe.
func crashAmount(key int64) float64 { return float64(key%1_000_003) / 2 }

// CrashChild is the victim: it opens dir as a WAL-enabled database and
// runs concurrent writers forever. Each writer inserts rows (even key
// slots) and periodically renames one of its earlier rows to a fresh odd
// key — a key-changing update, usually crossing stripes, the WAL's
// two-record decomposition. The protocol on stdout:
//
//	ACK <key> #          insert of <key> acknowledged
//	MV? <old> <new> #    rename <old> → <new> about to be attempted
//	MV <old> <new> #     that rename acknowledged
//
// Every line is printed after (for MV?, before) the corresponding group
// commit, and the trailing '#' lets the parent discard the line the kill
// tore. Writer 0 checkpoints periodically so the kill also lands between
// manifest writes and log truncations.
func CrashChild(dir string) error {
	cols := []datablocks.Column{
		{Name: "id", Kind: datablocks.Int64},
		{Name: "amount", Kind: datablocks.Float64},
		{Name: "status", Kind: datablocks.String},
	}
	db, err := datablocks.OpenPath(dir, crashOpts()...)
	if err != nil {
		return err
	}
	tbl, err := db.CreateTable(crashTable, cols, datablocks.WithPrimaryKey("id"))
	if err != nil {
		return err
	}
	const writers = 4
	var mu sync.Mutex // one line per write syscall, never interleaved
	errc := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 1_000_000_000
			for i := int64(0); ; i++ {
				key := base + 2*i // even slots: inserts
				row := datablocks.Row{
					datablocks.Int(key),
					datablocks.Float(crashAmount(key)),
					datablocks.Str("new"),
				}
				if _, err := tbl.Insert(row); err != nil {
					errc <- err
					return
				}
				mu.Lock()
				fmt.Fprintf(os.Stdout, "ACK %d #\n", key)
				mu.Unlock()
				if i%7 == 6 {
					// Rename an earlier own row to its odd neighbor slot.
					// Each old key is renamed at most once and rename
					// targets are never touched again, so the parent can
					// reason about every key's final owner.
					old := base + 2*(i-3)
					nk := old + 1
					mu.Lock()
					fmt.Fprintf(os.Stdout, "MV? %d %d #\n", old, nk)
					mu.Unlock()
					mv := datablocks.Row{
						datablocks.Int(nk),
						datablocks.Float(crashAmount(nk)),
						datablocks.Str("moved"),
					}
					if err := tbl.Update(old, mv); err != nil {
						errc <- err
						return
					}
					mu.Lock()
					fmt.Fprintf(os.Stdout, "MV %d %d #\n", old, nk)
					mu.Unlock()
				}
				if w == 0 && i%2000 == 1999 {
					if err := tbl.Freeze(); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return <-errc
}

// crashLedger is the parent's record of the victim's stdout protocol:
// which inserts were acknowledged, which renames were attempted and which
// of those were acknowledged.
type crashLedger struct {
	mu    sync.Mutex
	acked map[int64]bool  // keys whose latest acknowledged owner they are
	tried map[int64]int64 // old → new, rename attempt announced (MV?)
	moved map[int64]int64 // old → new, rename acknowledged (MV)
}

// CrashRestart is `dbrepro restart`'s kill mode: rounds times over, it
// spawns this binary as a CrashChild victim, SIGKILLs it at a random
// crash point mid-traffic, reopens the directory and asserts ZERO lost
// acknowledged writes — every insert or rename whose group commit
// acknowledged before the kill is present with its exact payload, an
// acknowledged rename's old key is gone, a rename in flight at the kill
// never destroys its acknowledged pre-update row without the new version
// surviving, and every recovered row carries a payload that was actually
// written. childArgs are extra argv for the victim (the test harness uses
// them to route its binary into child mode); the database directory
// travels via CrashDirEnv.
func CrashRestart(w io.Writer, rounds int, childArgs []string) error {
	if rounds < 1 {
		rounds = 1
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	rng := xrand.New(0xC4A5)
	for round := 1; round <= rounds; round++ {
		dir, err := os.MkdirTemp("", "crash-*")
		if err != nil {
			return err
		}
		led, err := runVictim(exe, childArgs, dir, 300+rng.Range(0, 2000))
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("round %d: %w", round, err)
		}
		recovered, err := verifyCrashImage(dir, led)
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Fprintf(w, "round %d: killed at %d acknowledged writes (%d renames), recovered %d rows, 0 lost\n",
			round, len(led.acked), len(led.moved), recovered)
	}
	fmt.Fprintf(w, "kill -9 recovery: %d rounds, every acknowledged write survived\n", rounds)
	return nil
}

// runVictim spawns the child, collects the acknowledgement ledger off its
// stdout, kills it once threshold acks arrived (or after a 60s safety
// valve) and returns the ledger.
func runVictim(exe string, childArgs []string, dir string, threshold int64) (*crashLedger, error) {
	cmd := exec.Command(exe, childArgs...)
	cmd.Env = append(os.Environ(), CrashDirEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = io.Discard
	if serr := cmd.Start(); serr != nil {
		return nil, serr
	}
	led := &crashLedger{
		acked: make(map[int64]bool),
		tried: make(map[int64]int64),
		moved: make(map[int64]int64),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			// Only complete lines count: the kill can tear the last line
			// mid-write, which the missing " #" marker reveals.
			if !strings.HasSuffix(line, " #") {
				continue
			}
			fields := strings.Fields(strings.TrimSuffix(line, " #"))
			led.mu.Lock()
			switch {
			case len(fields) == 2 && fields[0] == "ACK":
				if key, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					led.acked[key] = true
				}
			case len(fields) == 3 && (fields[0] == "MV?" || fields[0] == "MV"):
				old, err1 := strconv.ParseInt(fields[1], 10, 64)
				nk, err2 := strconv.ParseInt(fields[2], 10, 64)
				if err1 == nil && err2 == nil {
					if fields[0] == "MV?" {
						led.tried[old] = nk
					} else {
						// Acknowledged rename: the new key is now the
						// acknowledged owner, the old key must be gone.
						led.moved[old] = nk
						delete(led.acked, old)
						led.acked[nk] = true
					}
				}
			}
			led.mu.Unlock()
		}
	}()
	deadline := time.Now().Add(60 * time.Second)
	killed := false
	for {
		select {
		case <-done:
		default:
			led.mu.Lock()
			n := int64(len(led.acked))
			led.mu.Unlock()
			if !killed && (n >= threshold || time.Now().After(deadline)) {
				_ = cmd.Process.Kill() // SIGKILL: no handlers, no flushes
				killed = true
			}
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	err = cmd.Wait()
	if !killed {
		// The victim died on its own — a write failed; that error beat us
		// to the crash point.
		return nil, fmt.Errorf("victim exited before the kill (%v)", err)
	}
	return led, nil
}

// verifyCrashImage reopens the killed directory and checks the
// acknowledged-durability contract.
func verifyCrashImage(dir string, led *crashLedger) (int, error) {
	db, err := datablocks.OpenPath(dir, crashOpts()...)
	if err != nil {
		return 0, fmt.Errorf("reopen after kill: %w", err)
	}
	defer db.Close()
	tbl := db.Table(crashTable)
	if tbl == nil {
		return 0, fmt.Errorf("table %q not recovered after kill", crashTable)
	}
	lost := 0
	for key := range led.acked {
		row, ok := tbl.Lookup(key)
		if ok {
			if got := row[1].Float(); got != crashAmount(key) {
				return 0, fmt.Errorf("key %d recovered with amount %v, want %v", key, got, crashAmount(key))
			}
			continue
		}
		// The acknowledged key is absent. That is legal in exactly one
		// case: a rename of it was in flight at the kill and fully
		// applied durably — then the new version owns the row and nothing
		// acknowledged was lost. A missing new version means the delete
		// half became durable without the insert half: data loss.
		nk, inFlight := led.tried[key]
		if !inFlight {
			lost++
			continue
		}
		nrow, nok := tbl.Lookup(nk)
		if !nok || nrow[1].Float() != crashAmount(nk) {
			return 0, fmt.Errorf("key %d erased by in-flight rename to %d, but the new version did not survive (%v %v)",
				key, nk, nrow, nok)
		}
	}
	if lost > 0 {
		return 0, fmt.Errorf("lost %d of %d acknowledged writes", lost, len(led.acked))
	}
	// An acknowledged rename's both halves are durable: the old key must
	// not resurrect.
	for old, nk := range led.moved {
		if _, ok := tbl.Lookup(old); ok {
			return 0, fmt.Errorf("key %d resurrected after its acknowledged rename to %d", old, nk)
		}
	}
	// Integrity sweep: in-flight rows may legitimately survive, but every
	// surviving row must carry the payload its key was written with.
	res, err := tbl.Scan([]string{"id", "amount"}, nil,
		datablocks.QueryOptions{Mode: datablocks.ModeVectorizedSARG})
	if err != nil {
		return 0, err
	}
	for i := 0; i < res.NumRows(); i++ {
		key := res.Value(0, i).Int()
		if got := res.Value(1, i).Float(); got != crashAmount(key) {
			return 0, fmt.Errorf("recovered row %d carries amount %v, want %v", key, got, crashAmount(key))
		}
	}
	if res.NumRows() < len(led.acked) {
		return 0, fmt.Errorf("scan sees %d rows, %d were acknowledged", res.NumRows(), len(led.acked))
	}
	return res.NumRows(), nil
}
