package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"datablocks"
	"datablocks/internal/bench"
	"datablocks/internal/core"
	"datablocks/internal/exec"
	"datablocks/internal/index"
	"datablocks/internal/storage"
	"datablocks/internal/tpcc"
	"datablocks/internal/tpch"
	"datablocks/internal/types"
	"datablocks/internal/xrand"
)

// Table3 reproduces Table 3: throughput of random point-access queries
// (select * from customer where c_custkey = ?) under
// {uncompressed JIT, uncompressed vectorized, Data Blocks, +PSMA}
// x {PK index, no index} x {ordered, shuffled}.
func Table3(w io.Writer, sf float64, lookups int) error {
	base, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	cols, n := RelationColumns(base.Customer)
	shuffled := shuffleColumns(cols, n)

	type variant struct {
		name   string
		rel    *storage.Relation
		frozen bool
		mode   exec.ScanMode
	}
	build := func(c []core.ColumnData, freeze bool) (*storage.Relation, error) {
		return CloneRelation(base.Customer.Schema(), c, n, 0, freeze)
	}
	mkVariants := func(c []core.ColumnData) ([]variant, error) {
		hot, err := build(c, false)
		if err != nil {
			return nil, err
		}
		cold, err := build(c, true)
		if err != nil {
			return nil, err
		}
		return []variant{
			{"uncompressed (JIT)", hot, false, exec.ModeJIT},
			{"uncompressed (Vectorized)", hot, false, exec.ModeVectorizedSARG},
			{"Data Blocks", cold, true, exec.ModeVectorizedSARG},
			{"Data Blocks +PSMA", cold, true, exec.ModeVectorizedSARGPSMA},
		}, nil
	}
	ordered, err := mkVariants(cols)
	if err != nil {
		return err
	}
	shuffledV, err := mkVariants(shuffled)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Table 3 — point-access throughput (lookups/s), customer SF %g (%d rows), %d lookups\n", sf, n, lookups)
	tbl := bench.NewTable("storage", "index", "ordered", "shuffled")
	allCols := allColumnOrdinals(base.Customer.Schema())
	for vi := range ordered {
		for _, withIndex := range []bool{true, false} {
			row := []any{ordered[vi].name, idxName(withIndex)}
			for _, vs := range [][]variant{ordered, shuffledV} {
				v := vs[vi]
				nLookups := lookups
				if !withIndex {
					nLookups = lookups / 100 // scans are ~1000x slower; keep runs short
					if nLookups < 3 {
						nLookups = 3
					}
				}
				tput, err := pointLookupThroughput(v.rel, v.mode, withIndex, nLookups, allCols)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.0f", tput))
			}
			tbl.AddRow(row...)
		}
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(expected shape: index ≫ scans; without index, SMAs/PSMAs help only on ordered keys)")
	return nil
}

func idxName(b bool) string {
	if b {
		return "PK index"
	}
	return "no index"
}

func allColumnOrdinals(s *types.Schema) []int {
	out := make([]int, s.NumColumns())
	for i := range out {
		out[i] = i
	}
	return out
}

// pointLookupThroughput measures select-star point queries per second.
func pointLookupThroughput(rel *storage.Relation, mode exec.ScanMode, withIndex bool, lookups int, cols []int) (float64, error) {
	n := 0
	for _, ch := range rel.Chunks() {
		n += ch.Rows()
	}
	r := xrand.New(0xA11)
	var pk *index.Hash
	if withIndex {
		pk = index.NewHash(n)
		if err := pk.Rebuild(rel, 0); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < lookups; i++ {
		key := r.Range(1, int64(n))
		if withIndex {
			tid, ok := pk.Lookup(key)
			if !ok {
				return 0, fmt.Errorf("key %d missing", key)
			}
			if _, ok := rel.Get(tid); !ok {
				return 0, fmt.Errorf("tuple %v missing", tid)
			}
			continue
		}
		plan := &exec.ScanNode{
			Rel:   rel,
			Cols:  cols,
			Preds: []core.Predicate{{Col: 0, Op: types.Eq, Lo: types.IntValue(key)}},
		}
		res, err := exec.Run(plan, exec.Options{Mode: mode})
		if err != nil {
			return 0, err
		}
		if res.NumRows() != 1 {
			return 0, fmt.Errorf("key %d: %d rows", key, res.NumRows())
		}
	}
	return float64(lookups) / time.Since(start).Seconds(), nil
}

// shuffleColumns permutes all columns with one random permutation,
// destroying the c_custkey ordering (the Table 3 "shuffled" column).
func shuffleColumns(cols []core.ColumnData, n int) []core.ColumnData {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	xrand.New(0x5F).Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	out := make([]core.ColumnData, len(cols))
	for ci, c := range cols {
		out[ci].Kind = c.Kind
		switch c.Kind {
		case types.Int64:
			out[ci].Ints = make([]int64, n)
			for i, p := range perm {
				out[ci].Ints[i] = c.Ints[p]
			}
		case types.Float64:
			out[ci].Floats = make([]float64, n)
			for i, p := range perm {
				out[ci].Floats[i] = c.Floats[p]
			}
		default:
			out[ci].Strs = make([]string, n)
			for i, p := range perm {
				out[ci].Strs[i] = c.Strs[p]
			}
		}
		if c.Nulls != nil {
			out[ci].Nulls = make([]bool, n)
			for i, p := range perm {
				out[ci].Nulls[i] = c.Nulls[p]
			}
		}
	}
	return out
}

// Hybrid exercises the paper's central claim (§1): OLTP writers and OLAP
// scanners run *simultaneously* over one relation while the background
// compactor freezes cold chunks into Data Blocks behind the insert tail.
// Writers insert, update, delete and point-look-up rows in disjoint key
// stripes; scanners sweep the table with vectorized and JIT scans across
// the hot/frozen boundary. Each writer also pins one hot key that it
// updates in place on every round while a dedicated reader hammers point
// lookups on it: those keys exist at all times, so any lookup miss is a
// read anomaly and fails the experiment (the epoch-versioned reads
// guarantee). After the clock runs out the table is verified: the live
// row count must equal what the writers left behind.
func Hybrid(w io.Writer, seconds float64, writers, scanners int) error {
	if writers < 1 {
		writers = 1
	}
	if scanners < 1 {
		scanners = 1
	}
	db := datablocks.Open()
	tbl, err := db.CreateTable("orders",
		[]datablocks.Column{
			{Name: "id", Kind: datablocks.Int64},
			{Name: "amount", Kind: datablocks.Float64},
			{Name: "status", Kind: datablocks.String},
		},
		datablocks.WithPrimaryKey("id"),
		datablocks.WithChunkRows(4096),
		datablocks.WithAutoFreeze(1),
	)
	if err != nil {
		return err
	}

	// Operation counts come from the table's own telemetry (Table.Metrics)
	// rather than hand-rolled atomics; only the pinned-key anomaly check
	// keeps local counters, because "reader-observed miss" is a property of
	// this experiment, not of the engine.
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	var (
		pinnedLookups, pinnedMisses atomic.Int64
		errMu                       sync.Mutex
		runErr                      error
		live                        = make([]int64, writers)
		wg                          sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	const stripe = int64(1) << 32
	statuses := []string{"new", "paid", "shipped"}

	// One pinned hot key per writer, inserted before the clock starts: it
	// is never deleted, so every lookup on it must succeed — a miss is the
	// update/lookup read anomaly.
	pinned := make([]int64, writers)
	for g := range pinned {
		pinned[g] = int64(g)*stripe + stripe - 1
		row := datablocks.Row{
			datablocks.Int(pinned[g]),
			datablocks.Float(0),
			datablocks.Str("pinned"),
		}
		if _, err = tbl.Insert(row); err != nil {
			return err
		}
		live[g]++
	}

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xrand.New(uint64(0xB0B + g))
			base := int64(g) * stripe
			next := base
			for round := 0; time.Now().Before(deadline); round++ {
				// Update-heavy pressure on the pinned key: every round
				// rewrites it while its reader hammers lookups.
				row := datablocks.Row{
					datablocks.Int(pinned[g]),
					datablocks.Float(float64(round)),
					datablocks.Str("pinned"),
				}
				if err := tbl.Update(pinned[g], row); err != nil {
					fail(fmt.Errorf("pinned update %d: %w", pinned[g], err))
					return
				}
				switch r.Range(0, 10) {
				case 0, 1, 2, 3, 4, 5: // insert a fresh key
					key := next
					next++
					row := datablocks.Row{
						datablocks.Int(key),
						datablocks.Float(float64(key-base) / 2),
						datablocks.Str(statuses[int(key%3)]),
					}
					if _, err := tbl.Insert(row); err != nil {
						fail(fmt.Errorf("insert %d: %w", key, err))
						return
					}
					live[g]++
				case 6, 7: // update one of our own live keys in place
					if next == base {
						continue
					}
					key := base + r.Range(0, next-base-1)
					row := datablocks.Row{
						datablocks.Int(key),
						datablocks.Float(-1),
						datablocks.Str("updated"),
					}
					_ = tbl.Update(key, row)
				case 8: // delete one of our own keys
					if next == base {
						continue
					}
					if ok, _ := tbl.Delete(base + r.Range(0, next-base-1)); ok {
						live[g]--
					}
				default: // point lookup of the most recent own key
					if next == base {
						continue
					}
					if row, ok := tbl.Lookup(next - 1); ok && row[0].Int() != next-1 {
						fail(fmt.Errorf("lookup %d returned id %d", next-1, row[0].Int()))
						return
					}
				}
			}
		}(g)
	}

	// Pinned-key readers: one per writer, asserting zero lost lookups
	// while the key is being rewritten.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				row, ok := tbl.Lookup(pinned[g])
				pinnedLookups.Add(1)
				if !ok {
					pinnedMisses.Add(1)
					fail(fmt.Errorf("read anomaly: pinned key %d missed mid-update", pinned[g]))
					return
				}
				if row[0].Int() != pinned[g] {
					fail(fmt.Errorf("pinned key %d resolved to id %d", pinned[g], row[0].Int()))
					return
				}
			}
		}(g)
	}

	modes := []datablocks.ScanMode{
		datablocks.ModeVectorizedSARG,
		datablocks.ModeVectorizedSARGPSMA,
		datablocks.ModeJIT,
	}
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; time.Now().Before(deadline); i++ {
				if _, err := tbl.Scan([]string{"id", "amount"},
					[]datablocks.Pred{{Col: "amount", Op: datablocks.Ge, Lo: datablocks.Float(0)}},
					datablocks.QueryOptions{Mode: modes[i%len(modes)]}); err != nil {
					fail(fmt.Errorf("scan: %w", err))
					return
				}
			}
		}(s)
	}
	wg.Wait()
	// One consistent snapshot of the concurrent phase, before Close's final
	// freeze and the verification queries add traffic of their own.
	m := tbl.Metrics()
	if err = db.Close(); err != nil {
		return fmt.Errorf("compactor: %w", err)
	}
	if runErr != nil {
		return runErr
	}

	// Verify: the surviving rows must be exactly what the writers left.
	want := int64(0)
	for _, n := range live {
		want += n
	}
	if got := int64(tbl.NumRows()); got != want {
		return fmt.Errorf("hybrid: %d live rows, writers left %d", got, want)
	}
	// The final sweep doubles as the profile demonstration: one profiled
	// scan across the hot/frozen boundary the experiment just built.
	res, err := tbl.Scan([]string{"id"}, nil,
		datablocks.QueryOptions{Mode: datablocks.ModeVectorizedSARG, Profile: true})
	if err != nil {
		return err
	}
	if int64(res.NumRows()) != want {
		return fmt.Errorf("hybrid: final scan saw %d rows, want %d", res.NumRows(), want)
	}

	final := tbl.Metrics()
	fmt.Fprintf(w, "Hybrid OLTP/OLAP (§1) — %d writers, %d scanners, %.1fs, auto-freeze on\n",
		writers, scanners, seconds)
	t := bench.NewTable("metric", "count", "per second")
	rate := func(n uint64) string {
		if seconds <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(n)/seconds)
	}
	t.AddRow("inserts", fmt.Sprint(m.Ops.Inserts), rate(m.Ops.Inserts))
	t.AddRow("updates", fmt.Sprint(m.Ops.Updates), rate(m.Ops.Updates))
	t.AddRow("deletes", fmt.Sprint(m.Ops.Deletes), rate(m.Ops.Deletes))
	t.AddRow("point lookups", fmt.Sprint(m.Ops.Lookups), rate(m.Ops.Lookups))
	t.AddRow("analytic scans", fmt.Sprint(m.Ops.Scans), rate(m.Ops.Scans))
	t.AddRow("rows read", fmt.Sprint(m.Ops.RowsRead), rate(m.Ops.RowsRead))
	t.AddRow("rows written", fmt.Sprint(m.Ops.RowsWritten), rate(m.Ops.RowsWritten))
	t.AddRow("freezes", fmt.Sprint(m.Freeze.Freezes), rate(m.Freeze.Freezes))
	t.AddRow("index publishes", fmt.Sprint(m.IndexPublishes), rate(m.IndexPublishes))
	t.Write(w)
	fmt.Fprintf(w, "read anomalies on always-live keys: %d of %d lookups (must be 0)\n",
		pinnedMisses.Load(), pinnedLookups.Load())
	fmt.Fprintf(w, "final state: %d live rows, %d frozen chunks (%d B compressed), %d hot chunks (%d B)\n",
		tbl.NumRows(), final.Mem.FrozenChunks, final.Mem.FrozenBytes, final.Mem.HotChunks, final.Mem.HotBytes)
	if p := res.Profile; p != nil {
		fmt.Fprintf(w, "\nfinal verification scan, profiled:\n%s", p)
	}
	return nil
}

// TPCC reproduces the §5.3 experiments: (1) new-order throughput with cold
// new-order chunks frozen versus all-uncompressed, and (2) read-only
// transaction throughput on an uncompressed versus fully frozen database.
func TPCC(w io.Writer, txCount int) error {
	fmt.Fprintf(w, "TPC-C (§5.3) — 5 warehouses, %d transactions per measurement\n", txCount)
	tbl := bench.NewTable("experiment", "configuration", "tx/s")

	run := func(freezeCold bool) (float64, error) {
		db, err := tpcc.New(tpcc.DefaultConfig())
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < txCount; i++ {
			if err := db.NewOrderTx(); err != nil {
				return 0, err
			}
			if freezeCold && i%2000 == 1999 {
				if err := db.FreezeNewOrderCold(); err != nil {
					return 0, err
				}
			}
		}
		return float64(txCount) / time.Since(start).Seconds(), nil
	}
	unc, err := run(false)
	if err != nil {
		return err
	}
	frz, err := run(true)
	if err != nil {
		return err
	}
	tbl.AddRow("new-order stream", "uncompressed", fmt.Sprintf("%.0f", unc))
	tbl.AddRow("new-order stream", "cold neworder frozen", fmt.Sprintf("%.0f", frz))

	runRO := func(freezeAll bool) (float64, error) {
		db, err := tpcc.New(tpcc.DefaultConfig())
		if err != nil {
			return 0, err
		}
		for i := 0; i < txCount/2; i++ {
			if err := db.NewOrderTx(); err != nil {
				return 0, err
			}
		}
		if freezeAll {
			if err := db.FreezeAll(); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < txCount; i++ {
			if i%2 == 0 {
				if _, err := db.OrderStatusTx(); err != nil {
					return 0, err
				}
			} else {
				if _, err := db.StockLevelTx(); err != nil {
					return 0, err
				}
			}
		}
		return float64(txCount) / time.Since(start).Seconds(), nil
	}
	uncRO, err := runRO(false)
	if err != nil {
		return err
	}
	frzRO, err := runRO(true)
	if err != nil {
		return err
	}
	tbl.AddRow("read-only (order-status + stock-level)", "uncompressed", fmt.Sprintf("%.0f", uncRO))
	tbl.AddRow("read-only (order-status + stock-level)", "fully frozen", fmt.Sprintf("%.0f", frzRO))
	tbl.Write(w)
	fmt.Fprintf(w, "(read-only overhead on Data Blocks: %.1f%%; the paper reports ~9%%)\n",
		100*(uncRO-frzRO)/uncRO)
	return nil
}
