package experiments

import (
	"fmt"
	"io"
	"time"

	"datablocks/internal/bench"
	"datablocks/internal/core"
	"datablocks/internal/exec"
	"datablocks/internal/index"
	"datablocks/internal/storage"
	"datablocks/internal/tpcc"
	"datablocks/internal/tpch"
	"datablocks/internal/types"
	"datablocks/internal/xrand"
)

// Table3 reproduces Table 3: throughput of random point-access queries
// (select * from customer where c_custkey = ?) under
// {uncompressed JIT, uncompressed vectorized, Data Blocks, +PSMA}
// x {PK index, no index} x {ordered, shuffled}.
func Table3(w io.Writer, sf float64, lookups int) error {
	base, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	cols, n := RelationColumns(base.Customer)
	shuffled := shuffleColumns(cols, n)

	type variant struct {
		name   string
		rel    *storage.Relation
		frozen bool
		mode   exec.ScanMode
	}
	build := func(c []core.ColumnData, freeze bool) (*storage.Relation, error) {
		return CloneRelation(base.Customer.Schema(), c, n, 0, freeze)
	}
	mkVariants := func(c []core.ColumnData) ([]variant, error) {
		hot, err := build(c, false)
		if err != nil {
			return nil, err
		}
		cold, err := build(c, true)
		if err != nil {
			return nil, err
		}
		return []variant{
			{"uncompressed (JIT)", hot, false, exec.ModeJIT},
			{"uncompressed (Vectorized)", hot, false, exec.ModeVectorizedSARG},
			{"Data Blocks", cold, true, exec.ModeVectorizedSARG},
			{"Data Blocks +PSMA", cold, true, exec.ModeVectorizedSARGPSMA},
		}, nil
	}
	ordered, err := mkVariants(cols)
	if err != nil {
		return err
	}
	shuffledV, err := mkVariants(shuffled)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Table 3 — point-access throughput (lookups/s), customer SF %g (%d rows), %d lookups\n", sf, n, lookups)
	tbl := bench.NewTable("storage", "index", "ordered", "shuffled")
	allCols := allColumnOrdinals(base.Customer.Schema())
	for vi := range ordered {
		for _, withIndex := range []bool{true, false} {
			row := []any{ordered[vi].name, idxName(withIndex)}
			for _, vs := range [][]variant{ordered, shuffledV} {
				v := vs[vi]
				nLookups := lookups
				if !withIndex {
					nLookups = lookups / 100 // scans are ~1000x slower; keep runs short
					if nLookups < 3 {
						nLookups = 3
					}
				}
				tput, err := pointLookupThroughput(v.rel, v.mode, withIndex, nLookups, allCols)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.0f", tput))
			}
			tbl.AddRow(row...)
		}
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(expected shape: index ≫ scans; without index, SMAs/PSMAs help only on ordered keys)")
	return nil
}

func idxName(b bool) string {
	if b {
		return "PK index"
	}
	return "no index"
}

func allColumnOrdinals(s *types.Schema) []int {
	out := make([]int, s.NumColumns())
	for i := range out {
		out[i] = i
	}
	return out
}

// pointLookupThroughput measures select-star point queries per second.
func pointLookupThroughput(rel *storage.Relation, mode exec.ScanMode, withIndex bool, lookups int, cols []int) (float64, error) {
	n := 0
	for _, ch := range rel.Chunks() {
		n += ch.Rows()
	}
	r := xrand.New(0xA11)
	var pk *index.Hash
	if withIndex {
		pk = index.NewHash(n)
		if err := pk.Rebuild(rel, 0); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < lookups; i++ {
		key := r.Range(1, int64(n))
		if withIndex {
			tid, ok := pk.Lookup(key)
			if !ok {
				return 0, fmt.Errorf("key %d missing", key)
			}
			if _, ok := rel.Get(tid); !ok {
				return 0, fmt.Errorf("tuple %v missing", tid)
			}
			continue
		}
		plan := &exec.ScanNode{
			Rel:   rel,
			Cols:  cols,
			Preds: []core.Predicate{{Col: 0, Op: types.Eq, Lo: types.IntValue(key)}},
		}
		res, err := exec.Run(plan, exec.Options{Mode: mode})
		if err != nil {
			return 0, err
		}
		if res.NumRows() != 1 {
			return 0, fmt.Errorf("key %d: %d rows", key, res.NumRows())
		}
	}
	return float64(lookups) / time.Since(start).Seconds(), nil
}

// shuffleColumns permutes all columns with one random permutation,
// destroying the c_custkey ordering (the Table 3 "shuffled" column).
func shuffleColumns(cols []core.ColumnData, n int) []core.ColumnData {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	xrand.New(0x5F).Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	out := make([]core.ColumnData, len(cols))
	for ci, c := range cols {
		out[ci].Kind = c.Kind
		switch c.Kind {
		case types.Int64:
			out[ci].Ints = make([]int64, n)
			for i, p := range perm {
				out[ci].Ints[i] = c.Ints[p]
			}
		case types.Float64:
			out[ci].Floats = make([]float64, n)
			for i, p := range perm {
				out[ci].Floats[i] = c.Floats[p]
			}
		default:
			out[ci].Strs = make([]string, n)
			for i, p := range perm {
				out[ci].Strs[i] = c.Strs[p]
			}
		}
		if c.Nulls != nil {
			out[ci].Nulls = make([]bool, n)
			for i, p := range perm {
				out[ci].Nulls[i] = c.Nulls[p]
			}
		}
	}
	return out
}

// TPCC reproduces the §5.3 experiments: (1) new-order throughput with cold
// new-order chunks frozen versus all-uncompressed, and (2) read-only
// transaction throughput on an uncompressed versus fully frozen database.
func TPCC(w io.Writer, txCount int) error {
	fmt.Fprintf(w, "TPC-C (§5.3) — 5 warehouses, %d transactions per measurement\n", txCount)
	tbl := bench.NewTable("experiment", "configuration", "tx/s")

	run := func(freezeCold bool) (float64, error) {
		db, err := tpcc.New(tpcc.DefaultConfig())
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < txCount; i++ {
			if err := db.NewOrderTx(); err != nil {
				return 0, err
			}
			if freezeCold && i%2000 == 1999 {
				if err := db.FreezeNewOrderCold(); err != nil {
					return 0, err
				}
			}
		}
		return float64(txCount) / time.Since(start).Seconds(), nil
	}
	unc, err := run(false)
	if err != nil {
		return err
	}
	frz, err := run(true)
	if err != nil {
		return err
	}
	tbl.AddRow("new-order stream", "uncompressed", fmt.Sprintf("%.0f", unc))
	tbl.AddRow("new-order stream", "cold neworder frozen", fmt.Sprintf("%.0f", frz))

	runRO := func(freezeAll bool) (float64, error) {
		db, err := tpcc.New(tpcc.DefaultConfig())
		if err != nil {
			return 0, err
		}
		for i := 0; i < txCount/2; i++ {
			if err := db.NewOrderTx(); err != nil {
				return 0, err
			}
		}
		if freezeAll {
			if err := db.FreezeAll(); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < txCount; i++ {
			if i%2 == 0 {
				if _, err := db.OrderStatusTx(); err != nil {
					return 0, err
				}
			} else {
				if _, err := db.StockLevelTx(); err != nil {
					return 0, err
				}
			}
		}
		return float64(txCount) / time.Since(start).Seconds(), nil
	}
	uncRO, err := runRO(false)
	if err != nil {
		return err
	}
	frzRO, err := runRO(true)
	if err != nil {
		return err
	}
	tbl.AddRow("read-only (order-status + stock-level)", "uncompressed", fmt.Sprintf("%.0f", uncRO))
	tbl.AddRow("read-only (order-status + stock-level)", "fully frozen", fmt.Sprintf("%.0f", frzRO))
	tbl.Write(w)
	fmt.Fprintf(w, "(read-only overhead on Data Blocks: %.1f%%; the paper reports ~9%%)\n",
		100*(uncRO-frzRO)/uncRO)
	return nil
}
