package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"datablocks"
	"datablocks/internal/bench"
	"datablocks/internal/exec"
	"datablocks/internal/tpch"
)

// ProfileQueries renders the EXPLAIN-ANALYZE view of the paper's two
// extreme queries — Q1 (nearly all tuples qualify) and Q6 (few qualify)
// — on Data Blocks with full SARG/SMA/PSMA pushdown, making Table 2's
// behavior visible per query: chunks ruled out whole by the SMAs,
// vectors the SARGs emptied, lazy column unpacks, per-operator row flow.
// Each query is also timed with profiling off and on, so the report
// states what turning the instrumentation on costs; with profiling off
// no counter is touched on the scan path at all.
func ProfileQueries(w io.Writer, sf float64, rounds, parallelism int) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	db, err := tpch.Generate(sf, 0)
	if err != nil {
		return err
	}
	if err := db.FreezeAll(false, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "Query profiles — TPC-H SF %g on Data Blocks (+SARG/SMA/PSMA), parallelism %d\n",
		sf, parallelism)
	for _, q := range []int{1, 6} {
		opt := exec.Options{Mode: exec.ModeVectorizedSARGPSMA, Parallelism: parallelism}
		var runErr error
		off := bench.MeasureBest(rounds, func() {
			if _, err := db.Query(q, opt); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			return runErr
		}
		opt.Profile = true
		var res *exec.Result
		on := bench.MeasureBest(rounds, func() {
			if res, runErr = db.Query(q, opt); runErr != nil {
				return
			}
		})
		if runErr != nil {
			return runErr
		}
		fmt.Fprintf(w, "\nQ%d:\n%s", q, res.Profile)
		fmt.Fprintf(w, "profiling overhead: off %s, on %s (%+.1f%%)\n",
			off, on, 100*(float64(on)-float64(off))/float64(off))
	}
	return nil
}

// MetricsSnapshot runs a compact but representative workload — bulk
// load, freezes, updates, deletes, point lookups, budget-forced eviction
// and reloading scans against a disk-backed store — and prints the
// resulting DB.Metrics() snapshot as JSON: the same document ObsHandler
// serves on /vars, captured for offline comparison next to bench JSON.
func MetricsSnapshot(w io.Writer, rows int) error {
	if rows < 1000 {
		rows = 1000
	}
	dir, err := os.MkdirTemp("", "metrics-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	db := datablocks.Open()
	defer db.Close()
	tbl, err := db.CreateTable("events",
		[]datablocks.Column{
			{Name: "id", Kind: datablocks.Int64},
			{Name: "amount", Kind: datablocks.Float64},
			{Name: "status", Kind: datablocks.String},
		},
		datablocks.WithPrimaryKey("id"),
		datablocks.WithChunkRows(2048),
		datablocks.WithBlockStore(dir),
		datablocks.WithMemoryBudget(64<<10),
	)
	if err != nil {
		return err
	}
	statuses := []string{"new", "paid", "shipped"}
	for i := 0; i < rows; i++ {
		if _, err := tbl.Insert(datablocks.Row{
			datablocks.Int(int64(i)),
			datablocks.Float(float64(i) / 2),
			datablocks.Str(statuses[i%3]),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < rows/10; i++ {
		key := int64(i * 7 % rows)
		if i%3 == 0 {
			tbl.Delete(key)
			continue
		}
		_ = tbl.Update(key, datablocks.Row{
			datablocks.Int(key), datablocks.Float(-1), datablocks.Str("updated"),
		})
	}
	if err := tbl.Freeze(); err != nil {
		return err
	}
	if _, err := tbl.Relation().EvictUnderBudget(); err != nil {
		return err
	}
	for i := 0; i < rows; i += 97 {
		tbl.Lookup(int64(i))
	}
	for _, mode := range []datablocks.ScanMode{
		datablocks.ModeVectorizedSARG, datablocks.ModeVectorizedSARGPSMA,
	} {
		if _, err := tbl.Scan([]string{"id", "amount"},
			[]datablocks.Pred{{Col: "amount", Op: datablocks.Ge, Lo: datablocks.Float(0)}},
			datablocks.QueryOptions{Mode: mode}); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.Metrics())
}
