package experiments

import (
	"fmt"
	"io"
	"time"

	"datablocks/internal/bench"
	"datablocks/internal/bitpack"
	"datablocks/internal/compress"
	"datablocks/internal/simd"
	"datablocks/internal/xrand"
)

// makeCodes generates n codes uniform in [0, domain) at the given byte
// width.
func makeCodes(n, width int, domain uint64, seed uint64) []byte {
	r := xrand.New(seed)
	data := make([]byte, n*width+8)
	for i := 0; i < n; i++ {
		simd.WriteUint(data, i, width, r.Uint64()%domain)
	}
	return data
}

// Fig8 reproduces Figure 8: speedup of the SWAR between-kernel over
// branch-free scalar code, per lane width, at 20% selectivity.
func Fig8(w io.Writer, n int) {
	fmt.Fprintln(w, "Figure 8 — SIMD(SWAR) speedup of `l <= A <= r` (selectivity 20%) over scalar code")
	tbl := bench.NewTable("width", "scalar ns/elem", "swar ns/elem", "speedup")
	for _, width := range []int{1, 2, 4, 8} {
		domain := uint64(100)
		data := makeCodes(n, width, domain, 42)
		lo, hi := uint64(10), uint64(29) // 20% of [0,100)
		out := make([]uint32, 0, n+8)
		rounds := 50
		scalar := bench.MeasureBest(5, func() {
			for i := 0; i < rounds; i++ {
				out = simd.FindScalar(data, width, n, simd.OpBetween, lo, hi, 0, out[:0])
			}
		})
		swar := bench.MeasureBest(5, func() {
			for i := 0; i < rounds; i++ {
				out = simd.Find(data, width, n, simd.OpBetween, lo, hi, 0, out[:0])
			}
		})
		perElemS := float64(scalar.Nanoseconds()) / float64(rounds*n)
		perElemV := float64(swar.Nanoseconds()) / float64(rounds*n)
		tbl.AddRow(fmt.Sprintf("%d-bit", width*8), perElemS, perElemV, perElemS/perElemV)
	}
	tbl.Write(w)
}

// Fig9 reproduces Figure 9: cost of applying an additional restriction
// (reduce matches) as a function of the first predicate's selectivity, with
// the second predicate fixed at 40%.
func Fig9(w io.Writer, n int) {
	fmt.Fprintln(w, "Figure 9 — reduce-matches cost vs selectivity of first predicate (second fixed at 40%)")
	tbl := bench.NewTable("width", "sel1 %", "scalar ns/elem", "swar ns/elem")
	for _, width := range []int{1, 2, 4, 8} {
		domain := uint64(200)
		data := makeCodes(n, width, domain, 7)
		for _, sel := range []int{1, 10, 25, 50, 75, 100} {
			// First predicate: uniform matches at the given selectivity.
			hi1 := domain * uint64(sel) / 100
			if hi1 == 0 {
				hi1 = 1
			}
			matches := simd.Find(data, width, n, simd.OpLt, hi1, 0, 0, nil)
			if len(matches) == 0 {
				continue
			}
			hi2 := domain * 40 / 100 // second predicate: 40%
			scratch := make([]uint32, len(matches))
			rounds := 100
			scalar := bench.MeasureBest(3, func() {
				for i := 0; i < rounds; i++ {
					copy(scratch, matches)
					_ = simd.ReduceScalar(data, width, simd.OpLt, hi2, 0, scratch[:len(matches)])
				}
			})
			swar := bench.MeasureBest(3, func() {
				for i := 0; i < rounds; i++ {
					copy(scratch, matches)
					_ = simd.Reduce(data, width, simd.OpLt, hi2, 0, scratch[:len(matches)])
				}
			})
			perS := float64(scalar.Nanoseconds()) / float64(rounds*len(matches))
			perV := float64(swar.Nanoseconds()) / float64(rounds*len(matches))
			tbl.AddRow(fmt.Sprintf("%d-bit", width*8), sel, perS, perV)
		}
	}
	tbl.Write(w)
}

// Fig12Data builds the §5.4 microbenchmark inputs: three columns of 2^16
// values; A and B span [0, 2^16] (17 bits — bit-packing wins on space,
// Data Blocks must take 4-byte codes) and C spans [0, 2^8] (9 bits vs
// 2-byte codes).
type Fig12Data struct {
	N       int
	AVals   []int64
	ACodes  *compress.IntVector
	BCodes  *compress.IntVector
	CCodes  *compress.IntVector
	APacked *bitpack.Vector
	BPacked *bitpack.Vector
	CPacked *bitpack.Vector
}

// NewFig12Data generates the microbenchmark columns.
func NewFig12Data() (*Fig12Data, error) {
	n := 1 << 16
	r := xrand.New(99)
	d := &Fig12Data{N: n}
	mk := func(domain int64) ([]int64, []uint32) {
		vals := make([]int64, n)
		u32 := make([]uint32, n)
		for i := range vals {
			vals[i] = r.Range(0, domain)
			u32[i] = uint32(vals[i])
		}
		return vals, u32
	}
	var aU, bU, cU []uint32
	var bVals, cVals []int64
	d.AVals, aU = mk(1 << 16)
	bVals, bU = mk(1 << 16)
	cVals, cU = mk(1 << 8)
	d.ACodes = compress.EncodeInts(d.AVals, nil)
	d.BCodes = compress.EncodeInts(bVals, nil)
	d.CCodes = compress.EncodeInts(cVals, nil)
	var err error
	if d.APacked, err = bitpack.Pack(aU, 17); err != nil {
		return nil, err
	}
	if d.BPacked, err = bitpack.Pack(bU, 17); err != nil {
		return nil, err
	}
	if d.CPacked, err = bitpack.Pack(cU, 9); err != nil {
		return nil, err
	}
	return d, nil
}

// fig12Matches evaluates 0 <= A <= hi into a match vector, honoring the
// translation verdict (an All verdict selects every row).
func fig12Matches(d *Fig12Data, n int, hi uint64) []uint32 {
	tr := d.ACodes.TranslateRange(0, int64(hi))
	switch tr.Verdict {
	case compress.All:
		return simd.Sequence(nil, n, 0)
	case compress.Range:
		return simd.Find(d.ACodes.Data, d.ACodes.Width, n, simd.OpBetween, tr.C1, tr.C2, 0, nil)
	default:
		return nil
	}
}

// Fig12 reproduces Figure 12: (a) SARG evaluation cost and (b) unpack cost
// per matching tuple, Data Blocks vs horizontal bit-packing, across
// selectivities.
func Fig12(w io.Writer) error {
	d, err := NewFig12Data()
	if err != nil {
		return err
	}
	n := d.N
	fmt.Fprintln(w, "Figure 12(a) — SARG `l <= A <= r` cost (ns/tuple) vs selectivity")
	ta := bench.NewTable("sel %", "data blocks", "bit-packed (branchy)", "bit-packed + positions table")
	bm := make([]uint64, (n+63)/64)
	out := make([]uint32, 0, n+8)
	for _, sel := range []int{0, 10, 25, 50, 75, 100} {
		hi := uint64(1<<16) * uint64(sel) / 100
		rounds := 30
		db := bench.MeasureBest(3, func() {
			for i := 0; i < rounds; i++ {
				tr := d.ACodes.TranslateRange(0, int64(hi))
				if tr.Verdict == compress.Range {
					out = simd.Find(d.ACodes.Data, d.ACodes.Width, n, simd.OpBetween, tr.C1, tr.C2, 0, out[:0])
				}
			}
		})
		bpBranchy := bench.MeasureBest(3, func() {
			for i := 0; i < rounds; i++ {
				d.APacked.FindBetweenBitmap(0, uint32(hi), bm)
				out = simd.PositionsFromBitmapBranchy(bm, n, 0, out[:0])
			}
		})
		bpTable := bench.MeasureBest(3, func() {
			for i := 0; i < rounds; i++ {
				d.APacked.FindBetweenBitmap(0, uint32(hi), bm)
				out = simd.PositionsFromBitmap(bm, n, 0, out[:0])
			}
		})
		per := func(t time.Duration) float64 { return float64(t.Nanoseconds()) / float64(rounds*n) }
		ta.AddRow(sel, per(db), per(bpBranchy), per(bpTable))
	}
	ta.Write(w)

	fmt.Fprintln(w, "\nFigure 12(b) — unpacking 3 attributes, ns per matching tuple vs selectivity")
	tb := bench.NewTable("sel %", "data blocks", "bit-packed positional", "bit-packed unpack-all+filter")
	outI := make([]int64, n)
	outU := make([]uint32, n)
	full := make([]uint32, n)
	for _, sel := range []int{1, 10, 25, 50, 75, 100} {
		hi := uint64(1<<16) * uint64(sel) / 100
		if hi == 0 {
			hi = 1
		}
		matches := fig12Matches(d, n, hi)
		if len(matches) == 0 {
			continue
		}
		rounds := 20
		db := bench.MeasureBest(3, func() {
			for i := 0; i < rounds; i++ {
				d.ACodes.Gather(matches, outI[:len(matches)])
				d.BCodes.Gather(matches, outI[:len(matches)])
				d.CCodes.Gather(matches, outI[:len(matches)])
			}
		})
		bpPos := bench.MeasureBest(3, func() {
			for i := 0; i < rounds; i++ {
				d.APacked.GatherPositions(matches, outU[:len(matches)])
				d.BPacked.GatherPositions(matches, outU[:len(matches)])
				d.CPacked.GatherPositions(matches, outU[:len(matches)])
			}
		})
		bpAll := bench.MeasureBest(3, func() {
			for i := 0; i < rounds; i++ {
				for _, v := range []*bitpack.Vector{d.APacked, d.BPacked, d.CPacked} {
					v.UnpackAll(full)
					for j, p := range matches {
						outU[j] = full[p]
					}
				}
			}
		})
		per := func(t time.Duration) float64 {
			return float64(t.Nanoseconds()) / float64(rounds*len(matches))
		}
		tb.AddRow(sel, per(db), per(bpPos), per(bpAll))
	}
	tb.Write(w)
	return nil
}
