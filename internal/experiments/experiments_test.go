package experiments

import (
	"strings"
	"testing"

	"datablocks/internal/exec"
)

// The experiment drivers are exercised end-to-end at tiny scale: these are
// smoke tests for the harness itself; the benchmarks and cmd/dbrepro run
// them at measurement scale.

func TestTable1Small(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, 0.001, 3000, 3000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TPC-H lineitem", "IMDB cast_info", "Flights", "Data Blocks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable2Small(t *testing.T) {
	var sb strings.Builder
	if err := Table2(&sb, 0.001, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Q1", "Q6", "geometric mean", "VW compressed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable3Small(t *testing.T) {
	var sb strings.Builder
	if err := Table3(&sb, 0.001, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PK index") || !strings.Contains(sb.String(), "no index") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestTPCCSmall(t *testing.T) {
	var sb strings.Builder
	if err := TPCC(&sb, 500); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "new-order stream") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestHybridSmall(t *testing.T) {
	var sb strings.Builder
	if err := Hybrid(&sb, 0.3, 2, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "frozen chunks") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestColdStoreSmall(t *testing.T) {
	var sb strings.Builder
	// 8000 rows against a 32 KiB budget: the frozen set can never fit, so
	// the run must observe evictions and reloads to pass.
	if err := ColdStore(&sb, 8000, 0.3, 2, 1, 32<<10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"block evictions", "block reloads", "match the unbounded-memory run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRestartSmall(t *testing.T) {
	var sb strings.Builder
	// 10k rows against a 32 KiB budget: the frozen set cannot fit in RAM,
	// so the reopened database must answer out of the block store.
	if err := Restart(&sb, 10_000, 32<<10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"chunks recovered", "block reloads after reopen", "match the pre-restart run exactly"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFig5Small(t *testing.T) {
	var sb strings.Builder
	if err := Fig5(&sb, 16); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "jit compile") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestFig8Fig9Small(t *testing.T) {
	var sb strings.Builder
	Fig8(&sb, 1<<10)
	Fig9(&sb, 1<<10)
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestFig10Small(t *testing.T) {
	var sb strings.Builder
	if err := Fig10(&sb, 0.001, 3000, 3000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "records/block") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestFig11Fig13Small(t *testing.T) {
	var sb strings.Builder
	if err := Fig11(&sb, 0.001, 1); err != nil {
		t.Fatal(err)
	}
	if err := Fig13(&sb, 0.001, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "+SORT +PSMA") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestFig12Small(t *testing.T) {
	var sb strings.Builder
	if err := Fig12(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bit-packed") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestFlightsQuerySmall(t *testing.T) {
	var sb strings.Builder
	if err := FlightsQuery(&sb, 20000, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Data Blocks +SMA/PSMA") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestLayoutRelationDistinctLayouts(t *testing.T) {
	for _, combos := range []int{1, 4, 16, 64} {
		rel, err := LayoutRelation(combos)
		if err != nil {
			t.Fatal(err)
		}
		cols := make([]int, 8)
		for i := range cols {
			cols[i] = i
		}
		stats, err := exec.CompileOnly(&exec.ScanNode{Rel: rel, Cols: cols}, exec.Options{Mode: exec.ModeJIT})
		if err != nil {
			t.Fatal(err)
		}
		// One JIT path per distinct layout plus the hot path (tail chunk
		// may be hot if rows don't fill it — layoutRelation freezes all).
		if stats.ScanPaths < combos || stats.ScanPaths > combos+1 {
			t.Fatalf("combos=%d: scan paths = %d", combos, stats.ScanPaths)
		}
	}
}
