package tpcc

import "testing"

func testConfig() Config {
	return Config{
		Warehouses:        2,
		Districts:         3,
		CustomersPerDist:  50,
		Items:             200,
		OrderLinesPerTxLo: 3,
		OrderLinesPerTxHi: 8,
		ChunkRows:         256,
		Seed:              42,
	}
}

func TestLoadAndNewOrder(t *testing.T) {
	db, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if db.Item.NumRows() != 200 {
		t.Fatalf("items = %d", db.Item.NumRows())
	}
	if db.Stock.NumRows() != 400 {
		t.Fatalf("stock = %d", db.Stock.NumRows())
	}
	if db.Customer.NumRows() != 2*3*50 {
		t.Fatalf("customers = %d", db.Customer.NumRows())
	}
	for i := 0; i < 200; i++ {
		if err := db.NewOrderTx(); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if db.Orders.NumRows() != 200 || db.NewOrder.NumRows() != 200 {
		t.Fatalf("orders/neworder = %d/%d", db.Orders.NumRows(), db.NewOrder.NumRows())
	}
	if db.OrderLine.NumRows() < 3*200 {
		t.Fatalf("orderlines = %d", db.OrderLine.NumRows())
	}
	// Stock updates keep the live row count constant (delete + insert).
	if db.Stock.NumRows() != 400 {
		t.Fatalf("stock rows after updates = %d", db.Stock.NumRows())
	}
}

func TestReadOnlyTransactions(t *testing.T) {
	db, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.NewOrderTx(); err != nil {
			t.Fatal(err)
		}
	}
	gotTotal := false
	for i := 0; i < 100; i++ {
		total, err := db.OrderStatusTx()
		if err != nil {
			t.Fatalf("order-status %d: %v", i, err)
		}
		if total > 0 {
			gotTotal = true
		}
		if _, err := db.StockLevelTx(); err != nil {
			t.Fatalf("stock-level %d: %v", i, err)
		}
	}
	if !gotTotal {
		t.Fatal("order-status never found an order")
	}
}

func TestFreezeNewOrderColdKeepsWorkloadRunning(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkRows = 64 // force several neworder chunks
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.NewOrderTx(); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			if err := db.FreezeNewOrderCold(); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := db.NewOrder.MemoryStats()
	if stats.FrozenChunks == 0 {
		t.Fatal("no neworder chunks frozen")
	}
	// Workload continues against the hot tail.
	for i := 0; i < 50; i++ {
		if err := db.NewOrderTx(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFreezeAllThenReadOnly(t *testing.T) {
	// Realistic chunk size: with tiny blocks, per-block PSMA metadata
	// dominates and compression cannot win (the Figure 10 left edge).
	cfg := testConfig()
	cfg.ChunkRows = 1 << 14
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if err := db.NewOrderTx(); err != nil {
			t.Fatal(err)
		}
	}
	before := db.MemoryStats()
	if err := db.FreezeAll(); err != nil {
		t.Fatal(err)
	}
	after := db.MemoryStats()
	if after.HotChunks != 0 {
		t.Fatalf("hot chunks remain: %d", after.HotChunks)
	}
	if after.FrozenBytes >= before.HotBytes+before.FrozenBytes {
		t.Fatalf("freezing did not shrink footprint: %d -> %d",
			before.HotBytes+before.FrozenBytes, after.FrozenBytes)
	}
	// Read-only transactions work against the fully compressed database.
	for i := 0; i < 100; i++ {
		if _, err := db.OrderStatusTx(); err != nil {
			t.Fatalf("order-status on frozen: %v", err)
		}
		if _, err := db.StockLevelTx(); err != nil {
			t.Fatalf("stock-level on frozen: %v", err)
		}
	}
	// And the write path still works: updates migrate tuples to hot.
	for i := 0; i < 20; i++ {
		if err := db.NewOrderTx(); err != nil {
			t.Fatalf("new-order on frozen: %v", err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		db, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := db.NewOrderTx(); err != nil {
				t.Fatal(err)
			}
		}
		var sum int64
		for i := 0; i < 20; i++ {
			v, err := db.OrderStatusTx()
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
