// Package tpcc implements the TPC-C subset used in §5.3: the new-order
// write path plus the two read-only transactions (order-status and
// stock-level), over the hybrid storage engine.
//
// The experiments mirror the paper's two configurations:
//
//  1. only cold new-order records are frozen into Data Blocks while the
//     workload keeps inserting (FreezeNewOrderCold), measuring the overhead
//     of the hot/cold switch on the write path; and
//  2. the whole database is frozen (FreezeAll) and only the read-only
//     transactions run, measuring point-access overhead on compressed
//     tuples (the paper reports ~9%).
//
// District sequence counters live in memory (HyPer updates them in place;
// our storage would otherwise turn every new-order into a district
// migration), and stock rows are rewritten through the anomaly-free
// update protocol (pending insert, index publish, epoch commit), so a
// concurrent point reader always resolves the pre- or post-update
// version of a stock row, never neither (§3).
package tpcc

import (
	"fmt"

	"datablocks/internal/core"
	"datablocks/internal/index"
	"datablocks/internal/storage"
	"datablocks/internal/types"
	"datablocks/internal/xrand"
)

// Config scales the database. TPC-C specifies 10 districts/warehouse, 3000
// customers/district and 100000 items; tests shrink those.
type Config struct {
	Warehouses        int
	Districts         int
	CustomersPerDist  int
	Items             int
	OrderLinesPerTxLo int
	OrderLinesPerTxHi int
	ChunkRows         int
	Seed              uint64
}

// DefaultConfig returns the paper's 5-warehouse setup, scaled down one
// order of magnitude so laptop benchmarks converge quickly.
func DefaultConfig() Config {
	return Config{
		Warehouses:        5,
		Districts:         10,
		CustomersPerDist:  300,
		Items:             10000,
		OrderLinesPerTxLo: 5,
		OrderLinesPerTxHi: 15,
		ChunkRows:         1 << 14,
		Seed:              0x7C9,
	}
}

// DB is a TPC-C database plus its driver state.
type DB struct {
	cfg Config
	rng *xrand.Rand

	Customer  *storage.Relation
	Item      *storage.Relation
	Stock     *storage.Relation
	Orders    *storage.Relation
	NewOrder  *storage.Relation
	OrderLine *storage.Relation

	custIdx  *index.Hash // (w,d,c) -> tuple
	itemIdx  *index.Hash // i -> tuple
	stockIdx *index.Hash // (w,i) -> tuple
	olIdx    *index.Hash // (w,d,o,ln) -> tuple

	nextOID   []int64     // per (w,d): next order id (in-memory sequence)
	lastOID   []int64     // per (w,d): last committed order id
	orderIdx  *index.Hash // (w,d,o) -> orders tuple
	txCounter int64
}

func (db *DB) dIdx(w, d int64) int64 { return w*int64(db.cfg.Districts) + d }

func custKey(db *DB, w, d, c int64) int64 {
	return (w*int64(db.cfg.Districts)+d)*int64(db.cfg.CustomersPerDist+1) + c
}

func stockKey(db *DB, w, i int64) int64 { return w*int64(db.cfg.Items+1) + i }

func orderKey(db *DB, w, d, o int64) int64 {
	return (w*int64(db.cfg.Districts)+d)*(1<<32) + o
}

func olKey(db *DB, w, d, o, ln int64) int64 {
	return orderKey(db, w, d, o)*16 + ln
}

// New loads an initial database.
func New(cfg Config) (*DB, error) {
	db := &DB{cfg: cfg, rng: xrand.New(cfg.Seed)}
	ic := func(name string) types.Column { return types.Column{Name: name, Kind: types.Int64} }
	sc := func(name string) types.Column { return types.Column{Name: name, Kind: types.String} }

	db.Customer = storage.NewRelation(types.NewSchema(
		ic("c_w_id"), ic("c_d_id"), ic("c_id"), sc("c_name"), ic("c_balance"), ic("c_payment_cnt"),
	), cfg.ChunkRows)
	db.Item = storage.NewRelation(types.NewSchema(
		ic("i_id"), sc("i_name"), ic("i_price"), sc("i_data"),
	), cfg.ChunkRows)
	db.Stock = storage.NewRelation(types.NewSchema(
		ic("s_w_id"), ic("s_i_id"), ic("s_quantity"), ic("s_ytd"), ic("s_order_cnt"),
	), cfg.ChunkRows)
	db.Orders = storage.NewRelation(types.NewSchema(
		ic("o_w_id"), ic("o_d_id"), ic("o_id"), ic("o_c_id"), ic("o_entry_d"), ic("o_ol_cnt"),
	), cfg.ChunkRows)
	db.NewOrder = storage.NewRelation(types.NewSchema(
		ic("no_w_id"), ic("no_d_id"), ic("no_o_id"),
	), cfg.ChunkRows)
	db.OrderLine = storage.NewRelation(types.NewSchema(
		ic("ol_w_id"), ic("ol_d_id"), ic("ol_o_id"), ic("ol_number"), ic("ol_i_id"), ic("ol_quantity"), ic("ol_amount"),
	), cfg.ChunkRows)

	db.custIdx = index.NewHash(cfg.Warehouses * cfg.Districts * cfg.CustomersPerDist)
	db.itemIdx = index.NewHash(cfg.Items)
	db.stockIdx = index.NewHash(cfg.Warehouses * cfg.Items)
	db.olIdx = index.NewHash(1 << 16)
	db.orderIdx = index.NewHash(1 << 14)
	db.nextOID = make([]int64, cfg.Warehouses*cfg.Districts)
	db.lastOID = make([]int64, cfg.Warehouses*cfg.Districts)

	for i := 1; i <= cfg.Items; i++ {
		tid, err := db.Item.Insert(types.Row{
			types.IntValue(int64(i)),
			types.StringValue(fmt.Sprintf("item-%06d", i)),
			types.IntValue(db.rng.Range(100, 10000)),
			types.StringValue("data"),
		})
		if err != nil {
			return nil, err
		}
		if err := db.itemIdx.Insert(int64(i), tid); err != nil {
			return nil, err
		}
	}
	for w := 0; w < cfg.Warehouses; w++ {
		for i := 1; i <= cfg.Items; i++ {
			tid, err := db.Stock.Insert(types.Row{
				types.IntValue(int64(w)), types.IntValue(int64(i)),
				types.IntValue(db.rng.Range(10, 100)), types.IntValue(0), types.IntValue(0),
			})
			if err != nil {
				return nil, err
			}
			if err := db.stockIdx.Insert(stockKey(db, int64(w), int64(i)), tid); err != nil {
				return nil, err
			}
		}
		for d := 0; d < cfg.Districts; d++ {
			for c := 1; c <= cfg.CustomersPerDist; c++ {
				tid, err := db.Customer.Insert(types.Row{
					types.IntValue(int64(w)), types.IntValue(int64(d)), types.IntValue(int64(c)),
					types.StringValue(fmt.Sprintf("Cust-%d-%d-%04d", w, d, c)),
					types.IntValue(0), types.IntValue(0),
				})
				if err != nil {
					return nil, err
				}
				if err := db.custIdx.Insert(custKey(db, int64(w), int64(d), int64(c)), tid); err != nil {
					return nil, err
				}
			}
			db.nextOID[db.dIdx(int64(w), int64(d))] = 1
		}
	}
	return db, nil
}

// NewOrderTx executes one new-order transaction: reads the customer and the
// ordered items, inserts order/new-order/order-line rows, and rewrites
// stock through the anomaly-free update protocol.
func (db *DB) NewOrderTx() error {
	cfg := db.cfg
	w := int64(db.rng.Intn(cfg.Warehouses))
	d := int64(db.rng.Intn(cfg.Districts))
	c := db.rng.Range(1, int64(cfg.CustomersPerDist))
	if _, ok := db.custIdx.Lookup(custKey(db, w, d, c)); !ok {
		return fmt.Errorf("tpcc: customer (%d,%d,%d) missing", w, d, c)
	}
	di := db.dIdx(w, d)
	oid := db.nextOID[di]
	db.nextOID[di]++
	nLines := db.rng.Range(int64(cfg.OrderLinesPerTxLo), int64(cfg.OrderLinesPerTxHi))

	oTid, err := db.Orders.Insert(types.Row{
		types.IntValue(w), types.IntValue(d), types.IntValue(oid), types.IntValue(c),
		types.IntValue(db.txCounter), types.IntValue(nLines),
	})
	if err != nil {
		return err
	}
	if err := db.orderIdx.Insert(orderKey(db, w, d, oid), oTid); err != nil {
		return err
	}
	if _, err := db.NewOrder.Insert(types.Row{
		types.IntValue(w), types.IntValue(d), types.IntValue(oid),
	}); err != nil {
		return err
	}
	for ln := int64(1); ln <= nLines; ln++ {
		item := db.rng.Range(1, int64(cfg.Items))
		iTid, ok := db.itemIdx.Lookup(item)
		if !ok {
			return fmt.Errorf("tpcc: item %d missing", item)
		}
		price, _ := db.Item.GetCol(iTid, 2)
		qty := db.rng.Range(1, 10)
		// Stock update: read-modify-write, rewritten as a new row version
		// through the three-step update protocol (§3).
		sKey := stockKey(db, w, item)
		sTid, ok := db.stockIdx.Lookup(sKey)
		if !ok {
			return fmt.Errorf("tpcc: stock (%d,%d) missing", w, item)
		}
		sRow, ok := db.Stock.Get(sTid)
		if !ok {
			return fmt.Errorf("tpcc: stock tuple vanished")
		}
		newQty := sRow[2].Int() - qty
		if newQty < 10 {
			newQty += 91
		}
		// Anomaly-free rewrite: pending insert, index publish, commit.
		// A reader that resolves sKey mid-update falls back from the
		// not-yet-born new version to the previous one.
		newTid, err := db.Stock.InsertPending(types.Row{
			sRow[0], sRow[1], types.IntValue(newQty),
			types.IntValue(sRow[3].Int() + qty), types.IntValue(sRow[4].Int() + 1),
		})
		if err != nil {
			return err
		}
		db.stockIdx.Publish(sKey, newTid)
		epoch, ok := db.Stock.CommitUpdate(sTid, newTid)
		if !ok {
			db.Stock.AbortPending(newTid)
			db.stockIdx.Unpublish(sKey)
			return fmt.Errorf("tpcc: stock (%d,%d) vanished during update", w, item)
		}
		db.stockIdx.Seal(sKey, epoch)

		olTid, err := db.OrderLine.Insert(types.Row{
			types.IntValue(w), types.IntValue(d), types.IntValue(oid), types.IntValue(ln),
			types.IntValue(item), types.IntValue(qty), types.IntValue(qty * price.Int()),
		})
		if err != nil {
			return err
		}
		if err := db.olIdx.Insert(olKey(db, w, d, oid, ln), olTid); err != nil {
			return err
		}
	}
	db.lastOID[di] = oid
	db.txCounter++
	return nil
}

// OrderStatusTx executes one order-status transaction: customer point read,
// last order read, and point reads of its order lines.
func (db *DB) OrderStatusTx() (int64, error) {
	cfg := db.cfg
	w := int64(db.rng.Intn(cfg.Warehouses))
	d := int64(db.rng.Intn(cfg.Districts))
	c := db.rng.Range(1, int64(cfg.CustomersPerDist))
	cTid, ok := db.custIdx.Lookup(custKey(db, w, d, c))
	if !ok {
		return 0, fmt.Errorf("tpcc: customer missing")
	}
	if _, ok = db.Customer.Get(cTid); !ok {
		return 0, fmt.Errorf("tpcc: customer tuple missing")
	}
	oid := db.lastOID[db.dIdx(w, d)]
	if oid == 0 {
		return 0, nil // no orders yet in this district
	}
	oTid, ok := db.orderIdx.Lookup(orderKey(db, w, d, oid))
	if !ok {
		return 0, fmt.Errorf("tpcc: order missing")
	}
	oRow, ok := db.Orders.Get(oTid)
	if !ok {
		return 0, fmt.Errorf("tpcc: order tuple missing")
	}
	total := int64(0)
	for ln := int64(1); ln <= oRow[5].Int(); ln++ {
		olTid, ok := db.olIdx.Lookup(olKey(db, w, d, oid, ln))
		if !ok {
			return 0, fmt.Errorf("tpcc: order line missing")
		}
		amount, ok := db.OrderLine.GetCol(olTid, 6)
		if !ok {
			return 0, fmt.Errorf("tpcc: order line tuple missing")
		}
		total += amount.Int()
	}
	return total, nil
}

// StockLevelTx executes one stock-level transaction: the order lines of the
// district's most recent orders are resolved and their stock entries
// point-read, counting items below a threshold.
func (db *DB) StockLevelTx() (int, error) {
	cfg := db.cfg
	w := int64(db.rng.Intn(cfg.Warehouses))
	d := int64(db.rng.Intn(cfg.Districts))
	last := db.lastOID[db.dIdx(w, d)]
	low := 0
	threshold := db.rng.Range(10, 20)
	for oid := last; oid > 0 && oid > last-20; oid-- {
		oTid, ok := db.orderIdx.Lookup(orderKey(db, w, d, oid))
		if !ok {
			continue
		}
		oRow, ok := db.Orders.Get(oTid)
		if !ok {
			continue
		}
		for ln := int64(1); ln <= oRow[5].Int(); ln++ {
			olTid, ok := db.olIdx.Lookup(olKey(db, w, d, oid, ln))
			if !ok {
				continue
			}
			item, ok := db.OrderLine.GetCol(olTid, 4)
			if !ok {
				continue
			}
			sTid, ok := db.stockIdx.Lookup(stockKey(db, w, item.Int()))
			if !ok {
				continue
			}
			qty, ok := db.Stock.GetCol(sTid, 2)
			if ok && qty.Int() < threshold {
				low++
			}
		}
	}
	return low, nil
}

// FreezeNewOrderCold freezes all full new-order chunks, keeping the hot
// tail writable — the paper's first experiment (§5.3: "only compressed old
// neworder records into Data Blocks").
func (db *DB) FreezeNewOrderCold() error {
	return db.NewOrder.FreezeAll(core.FreezeOptions{SortBy: -1}, true)
}

// FreezeAll freezes every relation completely — the paper's second
// experiment (read-only transactions on a fully compressed database).
// Tuple identifiers survive unsorted freezing, so indexes stay valid.
func (db *DB) FreezeAll() error {
	for _, rel := range []*storage.Relation{db.Customer, db.Item, db.Stock, db.Orders, db.NewOrder, db.OrderLine} {
		if rel.NumRows() == 0 {
			continue
		}
		if err := rel.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
			return err
		}
	}
	return nil
}

// MemoryStats aggregates footprints across all relations.
func (db *DB) MemoryStats() storage.MemStats {
	var total storage.MemStats
	for _, rel := range []*storage.Relation{db.Customer, db.Item, db.Stock, db.Orders, db.NewOrder, db.OrderLine} {
		m := rel.MemoryStats()
		total.HotBytes += m.HotBytes
		total.FrozenBytes += m.FrozenBytes
		total.HotChunks += m.HotChunks
		total.FrozenChunks += m.FrozenChunks
		total.Rows += m.Rows
		total.DeletedRows += m.DeletedRows
	}
	return total
}
