package storage

import (
	"fmt"
	"testing"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.Int64},
		types.Column{Name: "amount", Kind: types.Float64},
		types.Column{Name: "note", Kind: types.String, Nullable: true},
	)
}

func mkRow(id int64, amount float64, note string) types.Row {
	var n types.Value
	if note == "" {
		n = types.NullValue(types.String)
	} else {
		n = types.StringValue(note)
	}
	return types.Row{types.IntValue(id), types.FloatValue(amount), n}
}

func TestInsertGet(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	tid, err := r.Insert(mkRow(1, 2.5, "hello"))
	if err != nil {
		t.Fatal(err)
	}
	row, ok := r.Get(tid)
	if !ok {
		t.Fatal("tuple missing")
	}
	if row[0].Int() != 1 || row[1].Float() != 2.5 || row[2].Str() != "hello" {
		t.Fatalf("row = %v", row)
	}
	tid2, err := r.Insert(mkRow(2, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	row, _ = r.Get(tid2)
	if !row[2].IsNull() {
		t.Fatal("null not preserved")
	}
	if r.NumRows() != 2 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
}

func TestInsertRejectsBadRows(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	if _, err := r.Insert(types.Row{types.NullValue(types.Int64), types.FloatValue(1), types.StringValue("x")}); err == nil {
		t.Fatal("NULL in non-nullable column accepted")
	}
	if _, err := r.Insert(types.Row{types.StringValue("no"), types.FloatValue(1), types.StringValue("x")}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := r.Insert(mkRow(1, 1, "a")[:2]); err == nil {
		t.Fatal("short row accepted")
	}
	if r.NumRows() != 0 {
		t.Fatal("failed inserts left rows behind")
	}
}

func TestChunkRollover(t *testing.T) {
	r := NewRelation(testSchema(), 100)
	for i := 0; i < 250; i++ {
		if _, err := r.Insert(mkRow(int64(i), float64(i), "n")); err != nil {
			t.Fatal(err)
		}
	}
	if r.NumChunks() != 3 {
		t.Fatalf("chunks = %d, want 3", r.NumChunks())
	}
	if got := r.Chunk(0).Rows(); got != 100 {
		t.Fatalf("chunk 0 rows = %d", got)
	}
	if got := r.Chunk(2).Rows(); got != 50 {
		t.Fatalf("chunk 2 rows = %d", got)
	}
}

func TestDeleteUpdate(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	tid, _ := r.Insert(mkRow(1, 1.0, "a"))
	if !r.Delete(tid) {
		t.Fatal("delete failed")
	}
	if r.Delete(tid) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := r.Get(tid); ok {
		t.Fatal("deleted tuple visible")
	}
	tid2, _ := r.Insert(mkRow(2, 2.0, "b"))
	newTid, err := r.Update(tid2, mkRow(2, 9.0, "b2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(tid2); ok {
		t.Fatal("old version visible after update")
	}
	row, ok := r.Get(newTid)
	if !ok || row[1].Float() != 9.0 {
		t.Fatal("new version wrong")
	}
	if r.NumRows() != 1 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
}

func TestBulkAppend(t *testing.T) {
	r := NewRelation(testSchema(), 128)
	n := 1000
	cols := []core.ColumnData{
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Float64, Floats: make([]float64, n)},
		{Kind: types.String, Strs: make([]string, n), Nulls: make([]bool, n)},
	}
	for i := 0; i < n; i++ {
		cols[0].Ints[i] = int64(i)
		cols[1].Floats[i] = float64(i) / 2
		cols[2].Strs[i] = fmt.Sprintf("s%d", i%7)
		cols[2].Nulls[i] = i%13 == 0
	}
	if err := r.BulkAppend(cols, n); err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != n {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	// Spot-check across chunk boundaries.
	for _, i := range []int{0, 127, 128, 500, 999} {
		tid := TupleID{Chunk: uint32(i / 128), Row: uint32(i % 128)}
		row, ok := r.Get(tid)
		if !ok {
			t.Fatalf("row %d missing", i)
		}
		if row[0].Int() != int64(i) {
			t.Fatalf("row %d: id = %v", i, row[0])
		}
		if (i%13 == 0) != row[2].IsNull() {
			t.Fatalf("row %d: null flag wrong", i)
		}
	}
}

func TestFreezePreservesTuplesAndTIDs(t *testing.T) {
	r := NewRelation(testSchema(), 100)
	var tids []TupleID
	for i := 0; i < 150; i++ {
		tid, _ := r.Insert(mkRow(int64(i), float64(i), fmt.Sprintf("n%d", i%5)))
		tids = append(tids, tid)
	}
	// Delete some rows in the chunk to be frozen.
	r.Delete(tids[10])
	r.Delete(tids[20])
	if err := r.FreezeChunk(0, core.FreezeOptions{SortBy: -1}); err != nil {
		t.Fatal(err)
	}
	if !r.Chunk(0).IsFrozen() {
		t.Fatal("chunk not frozen")
	}
	if r.Chunk(0).LiveRows() != 98 {
		t.Fatalf("live rows = %d", r.Chunk(0).LiveRows())
	}
	// TIDs still resolve to the same tuples; deleted stay deleted.
	for i, tid := range tids {
		row, ok := r.Get(tid)
		if i == 10 || i == 20 {
			if ok {
				t.Fatalf("deleted row %d visible after freeze", i)
			}
			continue
		}
		if !ok || row[0].Int() != int64(i) {
			t.Fatalf("row %d wrong after freeze", i)
		}
	}
	// Deleting from a frozen chunk sets the flag.
	if !r.Delete(tids[30]) {
		t.Fatal("delete in frozen chunk failed")
	}
	if _, ok := r.Get(tids[30]); ok {
		t.Fatal("frozen-deleted tuple visible")
	}
	// Updating a frozen tuple moves it to the hot region.
	newTid, err := r.Update(tids[40], mkRow(40, 99.0, "moved"))
	if err != nil {
		t.Fatal(err)
	}
	if int(newTid.Chunk) == 0 {
		t.Fatal("update landed in frozen chunk")
	}
	row, _ := r.Get(newTid)
	if row[1].Float() != 99.0 {
		t.Fatal("updated values wrong")
	}
}

func TestFreezeSortedCompactsDeletes(t *testing.T) {
	r := NewRelation(testSchema(), 100)
	var tids []TupleID
	for i := 0; i < 100; i++ {
		tid, _ := r.Insert(mkRow(int64(99-i), float64(i), "x")) // descending ids
		tids = append(tids, tid)
	}
	r.Delete(tids[0])
	if err := r.FreezeChunk(0, core.FreezeOptions{SortBy: 0}); err != nil {
		t.Fatal(err)
	}
	c := r.Chunk(0)
	if c.Rows() != 99 || c.LiveRows() != 99 {
		t.Fatalf("rows = %d live = %d", c.Rows(), c.LiveRows())
	}
	// Sorted ascending by id; the deleted id (99) is gone.
	for row := 0; row < c.Rows(); row++ {
		if got := c.Block().Int(0, row); got != int64(row) {
			t.Fatalf("row %d: id = %d", row, got)
		}
	}
}

func TestFreezeAllKeepsHotTail(t *testing.T) {
	r := NewRelation(testSchema(), 50)
	for i := 0; i < 125; i++ {
		r.Insert(mkRow(int64(i), 0, "x"))
	}
	if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, true); err != nil {
		t.Fatal(err)
	}
	if !r.Chunk(0).IsFrozen() || !r.Chunk(1).IsFrozen() {
		t.Fatal("full chunks not frozen")
	}
	if r.Chunk(2).IsFrozen() {
		t.Fatal("hot tail frozen despite keepHotTail")
	}
	// Inserts continue into the hot tail.
	if _, err := r.Insert(mkRow(999, 0, "y")); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryStatsShrinkAfterFreeze(t *testing.T) {
	r := NewRelation(testSchema(), 1<<12)
	n := 1 << 12
	cols := []core.ColumnData{
		{Kind: types.Int64, Ints: make([]int64, n)},
		{Kind: types.Float64, Floats: make([]float64, n)},
		{Kind: types.String, Strs: make([]string, n)},
	}
	for i := 0; i < n; i++ {
		cols[0].Ints[i] = int64(i % 50)
		cols[1].Floats[i] = 1.5 // constant: single-value
		cols[2].Strs[i] = []string{"aa", "bb", "cc"}[i%3]
	}
	r.BulkAppend(cols, n)
	before := r.MemoryStats()
	if before.FrozenChunks != 0 || before.HotBytes == 0 {
		t.Fatalf("unexpected before stats: %+v", before)
	}
	if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	after := r.MemoryStats()
	if after.HotChunks != 0 || after.FrozenChunks != 1 {
		t.Fatalf("unexpected after stats: %+v", after)
	}
	if after.FrozenBytes >= before.HotBytes {
		t.Fatalf("freezing did not shrink: %d -> %d", before.HotBytes, after.FrozenBytes)
	}
}

func TestGetColPointAccess(t *testing.T) {
	r := NewRelation(testSchema(), 10)
	tid, _ := r.Insert(mkRow(7, 1.25, "zz"))
	v, ok := r.GetCol(tid, 0)
	if !ok || v.Int() != 7 {
		t.Fatalf("GetCol = %v %v", v, ok)
	}
	r.FreezeChunk(0, core.FreezeOptions{SortBy: -1})
	v, ok = r.GetCol(tid, 2)
	if !ok || v.Str() != "zz" {
		t.Fatalf("frozen GetCol = %v %v", v, ok)
	}
}
