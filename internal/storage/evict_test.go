package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datablocks/internal/blockstore"
	"datablocks/internal/core"
)

// newColdRelation builds a relation with a block store, nChunks full
// chunks of chunkRows rows each (plus an empty insert tail is avoided by
// exact fill) and freezes everything. Row i carries id=i, amount=i/2 and
// a note that is NULL every 5th row.
func newColdRelation(t testing.TB, chunkRows, nChunks int, budget int64) (*Relation, []TupleID) {
	t.Helper()
	r := NewRelation(testSchema(), chunkRows)
	r.SetBlockStore(openTestStore(t), budget, nil)
	var tids []TupleID
	for i := 0; i < chunkRows*nChunks; i++ {
		note := fmt.Sprintf("note-%d", i%7)
		if i%5 == 0 {
			note = ""
		}
		tid, err := r.Insert(mkRow(int64(i), float64(i)/2, note))
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	return r, tids
}

func openTestStore(t testing.TB) *blockstore.Store {
	t.Helper()
	s, err := blockstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func evictAll(t testing.TB, r *Relation) {
	t.Helper()
	for i := 0; i < r.NumChunks(); i++ {
		if r.Chunk(i).State() != ChunkFrozen {
			continue
		}
		ok, err := r.EvictChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("chunk %d not evicted", i)
		}
	}
}

func TestEvictReloadPointReads(t *testing.T) {
	r, tids := newColdRelation(t, 64, 3, 0)
	evictAll(t, r)
	for i := 0; i < r.NumChunks(); i++ {
		c := r.Chunk(i)
		if c.State() != ChunkEvicted || !c.IsFrozen() {
			t.Fatalf("chunk %d: state %v, IsFrozen %v", i, c.State(), c.IsFrozen())
		}
		if c.Block() != nil {
			t.Fatalf("chunk %d still holds its payload", i)
		}
		if c.Rows() != 64 {
			t.Fatalf("chunk %d rows = %d while evicted", i, c.Rows())
		}
	}
	if st := r.MemoryStats(); st.EvictedChunks != 3 || st.FrozenChunks != 0 || st.EvictedBytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	// Point reads reload transparently.
	for _, i := range []int{0, 5, 63, 64, 150} {
		row, ok := r.Get(tids[i])
		if !ok {
			t.Fatalf("row %d missing after eviction", i)
		}
		if row[0].Int() != int64(i) || row[1].Float() != float64(i)/2 {
			t.Fatalf("row %d = %v", i, row)
		}
		if i%5 == 0 && !row[2].IsNull() {
			t.Fatalf("row %d: note should be NULL", i)
		}
	}
	// The touched chunks are frozen (resident) again; reloads counted.
	if r.Chunk(0).State() != ChunkFrozen {
		t.Fatalf("chunk 0 state %v after reload", r.Chunk(0).State())
	}
	cs := r.ColdStatsSnapshot()
	if cs.Evictions != 3 || cs.Reloads == 0 {
		t.Fatalf("cold stats %+v", cs)
	}
	if r.LoadError() != nil {
		t.Fatalf("unexpected load error: %v", r.LoadError())
	}
}

// TestEvictReloadScanEquivalence compares a full snapshot sweep before
// and after eviction — including deletes stamped while the payload was on
// disk — cell by cell.
func TestEvictReloadScanEquivalence(t *testing.T) {
	r, tids := newColdRelation(t, 128, 4, 0)
	// Delete a few rows before eviction…
	for _, i := range []int{3, 130, 400} {
		if !r.Delete(tids[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	sweep := func() map[int64]string {
		out := make(map[int64]string)
		views := r.Snapshot()
		for ci := range views {
			v := &views[ci]
			if err := v.Acquire(); err != nil {
				t.Fatal(err)
			}
			for row := 0; row < v.Rows(); row++ {
				if v.IsDeleted(row) {
					continue
				}
				id := v.Value(0, row).Int()
				out[id] = fmt.Sprintf("%v|%v", v.Value(1, row), v.Value(2, row))
			}
			v.Release()
		}
		return out
	}
	before := sweep()
	evictAll(t, r)
	// …and a few more while the payload lives in the store (the delete
	// bitmap stays in RAM).
	for _, i := range []int{7, 200} {
		if !r.Delete(tids[i]) {
			t.Fatalf("delete %d failed", i)
		}
		delete(before, int64(i))
	}
	after := sweep()
	if len(after) != len(before) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(after), len(before))
	}
	for id, want := range before {
		if got, ok := after[id]; !ok || got != want {
			t.Fatalf("id %d: %q vs %q", id, got, want)
		}
	}
}

func TestEvictSkipsPinnedChunk(t *testing.T) {
	r, _ := newColdRelation(t, 32, 1, 0)
	views := r.Snapshot()
	if err := views[0].Acquire(); err != nil {
		t.Fatal(err)
	}
	ok, err := r.EvictChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("evicted a pinned chunk")
	}
	views[0].Release()
	ok, err = r.EvictChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("unpinned chunk not evicted")
	}
	// Double-eviction is a benign no-op.
	if ok, err := r.EvictChunk(0); err != nil || ok {
		t.Fatalf("second eviction: ok=%v err=%v", ok, err)
	}
}

// TestEvictUnderBudgetColdestFirst heats one chunk with lookups and
// checks the budget evictor sheds the cold ones first.
func TestEvictUnderBudgetColdestFirst(t *testing.T) {
	const chunkRows = 256
	r, tids := newColdRelation(t, chunkRows, 4, 1) // 1-byte budget: everything must go
	// Heat chunk 2 well past the snapshot touches of newColdRelation.
	for i := 0; i < 64; i++ {
		if _, ok := r.Get(tids[2*chunkRows+5]); !ok {
			t.Fatal("hot row missing")
		}
	}
	n, err := r.EvictUnderBudget()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("evicted %d chunks, want 4", n)
	}
	// With an impossible budget everything is evicted eventually, but the
	// victim order is coldest-first: re-check via a fresh pass with a
	// budget that fits exactly one chunk.
	oneBlock := r.Chunk(2).frozenBytes.Load()
	r2, tids2 := newColdRelation(t, chunkRows, 4, oneBlock+16)
	for i := 0; i < 64; i++ {
		if _, ok := r2.Get(tids2[2*chunkRows+5]); !ok {
			t.Fatal("hot row missing")
		}
	}
	if _, err := r2.EvictUnderBudget(); err != nil {
		t.Fatal(err)
	}
	if st := r2.Chunk(2).State(); st != ChunkFrozen {
		t.Fatalf("hottest chunk was evicted (state %v)", st)
	}
	resident := 0
	for i := 0; i < r2.NumChunks(); i++ {
		if r2.Chunk(i).State() == ChunkFrozen {
			resident++
		}
	}
	if resident != 1 {
		t.Fatalf("%d chunks resident, want 1", resident)
	}
}

// TestReloadFailureSurfaces corrupts the stored block and checks the
// reload reports Unavailable + LoadError instead of silent data.
func TestReloadFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	s, err := blockstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelation(testSchema(), 32)
	r.SetBlockStore(s, 0, nil)
	var tid TupleID
	for i := 0; i < 32; i++ {
		tid, err = r.Insert(mkRow(int64(i), 1, "x"))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err = r.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	evictAll(t, r)
	// Truncate every stored block file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".dblk" {
			if err := os.Truncate(filepath.Join(dir, e.Name()), 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := r.Get(tid); ok {
		t.Fatal("read of a corrupt evicted block succeeded")
	}
	if _, vis := r.GetAt(tid, r.ReadEpoch()); vis != Unavailable {
		t.Fatalf("visibility %v, want Unavailable", vis)
	}
	if r.LoadError() == nil {
		t.Fatal("corrupt reload left no LoadError")
	}
	// Scans must propagate the failure as an error too.
	views := r.Snapshot()
	if err := views[0].Acquire(); err == nil {
		t.Fatal("Acquire of a corrupt evicted block succeeded")
	}
}

// TestConcurrentEvictReloadStress races writers, point readers, scanning
// snapshots and a budget evictor over one relation (run under -race).
func TestConcurrentEvictReloadStress(t *testing.T) {
	const chunkRows = 128
	r, tids := newColdRelation(t, chunkRows, 6, 1) // evict everything, always
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var evictions, reloads atomic.Int64
	fail := make(chan error, 16)

	// Evictor: hammer the budget loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := r.EvictUnderBudget()
			if err != nil {
				fail <- err
				return
			}
			evictions.Add(int64(n))
			runtime.Gosched()
		}
	}()
	// Point readers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (i*37 + g*13) % len(tids)
				row, ok := r.Get(tids[idx])
				if !ok {
					fail <- fmt.Errorf("row %d vanished", idx)
					return
				}
				if row[0].Int() != int64(idx) {
					fail <- fmt.Errorf("row %d read id %d", idx, row[0].Int())
					return
				}
			}
		}(g)
	}
	// Scanner: full sweeps with pinned views.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			views := r.Snapshot()
			total := 0
			// Only the six pre-built chunks have a fixed row count; the
			// writer keeps growing the tail behind them.
			for ci := 0; ci < 6; ci++ {
				v := &views[ci]
				if err := v.Acquire(); err != nil {
					fail <- err
					return
				}
				for row := 0; row < v.Rows(); row++ {
					if !v.IsDeleted(row) {
						total++
					}
				}
				v.Release()
			}
			if total != len(tids) {
				fail <- fmt.Errorf("sweep saw %d rows, want %d", total, len(tids))
				return
			}
		}
	}()
	// Writer: keep the hot tail moving (appends land in fresh chunks).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.Insert(mkRow(int64(1_000_000+i), 0, "tail")); err != nil {
				fail <- err
				return
			}
			runtime.Gosched()
		}
	}()

	// Drive churn from the main goroutine too — on a single-CPU box the
	// background goroutines may barely run otherwise — and keep going
	// until both an eviction and a reload have been observed.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 100 || (time.Now().Before(deadline) &&
		(evictions.Load() == 0 || r.ColdStatsSnapshot().Reloads == 0)); i++ {
		if len(fail) > 0 {
			break
		}
		if _, ok := r.Get(tids[(i*101)%len(tids)]); ok {
			reloads.Add(1)
		}
		if i%3 == 0 {
			n, err := r.EvictUnderBudget()
			if err != nil {
				fail <- err
				break
			}
			evictions.Add(int64(n))
		}
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if r.LoadError() != nil {
		t.Fatal(r.LoadError())
	}
	if evictions.Load() == 0 || r.ColdStatsSnapshot().Reloads == 0 {
		t.Fatalf("stress produced no churn: %d evictions, %d reloads",
			evictions.Load(), r.ColdStatsSnapshot().Reloads)
	}
}

// BenchmarkEvictReload measures one evict→reload→point-read cycle — the
// cold path a larger-than-RAM table pays per miss. Run in CI with
// -benchtime=1x to keep the reload path exercised.
func BenchmarkEvictReload(b *testing.B) {
	r, tids := newColdRelation(b, 4096, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := r.EvictChunk(0)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("chunk not evicted")
		}
		if _, ok := r.Get(tids[i%len(tids)]); !ok {
			b.Fatal("row missing")
		}
	}
}
