package storage

import (
	"testing"

	"datablocks/internal/core"
	"datablocks/internal/simd"
)

// TestManifestRestoreRoundTrip drives the relation-level half of durable
// reopen: a frozen relation's ManifestChunks snapshot, restored with
// RestoreEvicted into a fresh relation over the same store, must answer
// point reads identically — deleted rows stay deleted (retired at epoch
// zero), live rows materialize after a lazy reload.
func TestManifestRestoreRoundTrip(t *testing.T) {
	const chunkRows, nChunks = 128, 3
	store := openTestStore(t)
	r := NewRelation(testSchema(), chunkRows)
	r.SetBlockStore(store, 0, nil)
	for i := 0; i < chunkRows*nChunks; i++ {
		if _, err := r.Insert(mkRow(int64(i), float64(i)/2, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	// Delete a few rows across chunks, then flush and snapshot.
	deleted := []TupleID{{Chunk: 0, Row: 3}, {Chunk: 1, Row: 0}, {Chunk: 2, Row: 127}}
	for _, tid := range deleted {
		if !r.Delete(tid) {
			t.Fatalf("delete %v failed", tid)
		}
	}
	if err := r.FlushFrozen(); err != nil {
		t.Fatal(err)
	}
	chunks := r.ManifestChunks()
	if len(chunks) != nChunks {
		t.Fatalf("manifest has %d chunks, want %d", len(chunks), nChunks)
	}

	r2 := NewRelation(testSchema(), chunkRows)
	r2.SetBlockStore(store, 0, nil)
	for _, mc := range chunks {
		if err := r2.RestoreEvicted(mc.Handle, mc.Rows, mc.Bytes, mc.Deleted, mc.NumDeleted); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := r2.NumRows(), r.NumRows(); got != want {
		t.Fatalf("restored live rows %d, want %d", got, want)
	}
	for i := 0; i < nChunks; i++ {
		if s := r2.Chunk(i).State(); s != ChunkEvicted {
			t.Fatalf("restored chunk %d state %v, want evicted", i, s)
		}
	}
	for i := 0; i < chunkRows*nChunks; i++ {
		tid := TupleID{Chunk: uint32(i / chunkRows), Row: uint32(i % chunkRows)}
		row, ok := r2.Get(tid)
		wasDeleted := false
		for _, d := range deleted {
			if d == tid {
				wasDeleted = true
			}
		}
		if wasDeleted {
			if ok {
				t.Fatalf("deleted tuple %v resurrected as %v", tid, row)
			}
			continue
		}
		if !ok || row[0].Int() != int64(i) {
			t.Fatalf("tuple %v = %v, %v", tid, row, ok)
		}
	}
}

// TestManifestChunksMarksPendingDeleted: a row pending an uncommitted
// update at manifest time must be recorded as deleted — its commit epoch
// would not survive a restart, so recovery must never resurrect it.
func TestManifestChunksMarksPendingDeleted(t *testing.T) {
	const chunkRows = 64
	store := openTestStore(t)
	r := NewRelation(testSchema(), chunkRows)
	r.SetBlockStore(store, 0, nil)
	for i := 0; i < chunkRows-1; i++ {
		if _, err := r.Insert(mkRow(int64(i), 0, "x")); err != nil {
			t.Fatal(err)
		}
	}
	pendTid, err := r.InsertPending(mkRow(999, 0, "pending"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushFrozen(); err != nil {
		t.Fatal(err)
	}
	chunks := r.ManifestChunks()
	if len(chunks) != 1 {
		t.Fatalf("manifest has %d chunks, want 1", len(chunks))
	}
	mc := chunks[0]
	if mc.NumDeleted != 1 {
		t.Fatalf("manifest records %d deleted rows, want the pending row", mc.NumDeleted)
	}
	if !simd.BitmapGet(mc.Deleted, pendTid.Row) {
		t.Fatalf("pending row %d not marked deleted in the manifest bitmap", pendTid.Row)
	}

	r2 := NewRelation(testSchema(), chunkRows)
	r2.SetBlockStore(store, 0, nil)
	if err := r2.RestoreEvicted(mc.Handle, mc.Rows, mc.Bytes, mc.Deleted, mc.NumDeleted); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Get(pendTid); ok {
		t.Fatal("pending row resurrected after restore")
	}
	if got := r2.NumRows(); got != chunkRows-1 {
		t.Fatalf("restored live rows %d, want %d", got, chunkRows-1)
	}
}

// TestRestoreEvictedValidation: structurally impossible restores are
// rejected before they can corrupt the relation.
func TestRestoreEvictedValidation(t *testing.T) {
	r := NewRelation(testSchema(), 64)
	if err := r.RestoreEvicted(1, 10, 0, nil, 0); err == nil {
		t.Fatal("restore without a block store accepted")
	}
	r.SetBlockStore(openTestStore(t), 0, nil)
	if err := r.RestoreEvicted(0, 10, 0, nil, 0); err == nil {
		t.Fatal("zero handle accepted")
	}
	if err := r.RestoreEvicted(1, 65, 0, nil, 0); err == nil {
		t.Fatal("rows beyond chunk capacity accepted")
	}
	if err := r.RestoreEvicted(1, 10, 0, nil, 11); err == nil {
		t.Fatal("numDeleted > rows accepted")
	}
}

// TestUnevictAllReloadsEverything: after UnevictAll no chunk is evicted
// and reads work without the store (the spill-cache GC path at DB.Close).
func TestUnevictAllReloadsEverything(t *testing.T) {
	r, tids := newColdRelation(t, 64, 3, 0)
	if err := r.FlushFrozen(); err != nil {
		t.Fatal(err)
	}
	evictAll(t, r)
	if err := r.UnevictAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.NumChunks(); i++ {
		if s := r.Chunk(i).State(); s != ChunkFrozen {
			t.Fatalf("chunk %d state %v after UnevictAll", i, s)
		}
	}
	for i, tid := range tids {
		if i%17 != 0 {
			continue
		}
		row, ok := r.Get(tid)
		if !ok || row[0].Int() != int64(i) {
			t.Fatalf("tuple %v = %v, %v", tid, row, ok)
		}
	}
}
