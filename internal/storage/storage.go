// Package storage implements the hybrid relation layout of Figure 1:
// relations are divided into fixed-size chunks; hot chunks stay
// uncompressed and writable, cold chunks are frozen into immutable
// compressed Data Blocks. Freezing is per-chunk and O(chunk), avoiding the
// O(relation) merge of write-optimized/read-optimized designs (§1).
//
// Frozen tuples support only delete (a flag); updates are rewritten as a
// delete plus an insert into the hot tail (§3). Tuple identifiers are
// stable across (unsorted) freezing, so primary-key indexes survive.
package storage

import (
	"errors"
	"fmt"
	"sync"

	"datablocks/internal/core"
	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// TupleID addresses one tuple: a chunk ordinal and a row within the chunk.
type TupleID struct {
	Chunk uint32
	Row   uint32
}

// HotChunk is an uncompressed, append-only columnar chunk.
type HotChunk struct {
	n    int
	cols []hotCol
}

type hotCol struct {
	kind   types.Kind
	ints   []int64
	floats []float64
	strs   []string
	nulls  []bool // lazily allocated on first NULL
}

// Rows returns the number of tuples in the chunk (including deleted ones).
func (h *HotChunk) Rows() int { return h.n }

// Ints exposes an integer column for vectorized scans.
func (h *HotChunk) Ints(col int) []int64 { return h.cols[col].ints[:h.n] }

// Floats exposes a double column.
func (h *HotChunk) Floats(col int) []float64 { return h.cols[col].floats[:h.n] }

// Strs exposes a string column.
func (h *HotChunk) Strs(col int) []string { return h.cols[col].strs[:h.n] }

// Nulls exposes the column's null flags, or nil when the column holds no
// NULLs.
func (h *HotChunk) Nulls(col int) []bool {
	if h.cols[col].nulls == nil {
		return nil
	}
	return h.cols[col].nulls[:h.n]
}

// IsNull reports whether cell (col, row) is NULL.
func (h *HotChunk) IsNull(col, row int) bool {
	c := &h.cols[col]
	return c.nulls != nil && c.nulls[row]
}

// Value returns cell (col, row) as a dynamic value.
func (h *HotChunk) Value(col, row int) types.Value {
	c := &h.cols[col]
	if c.nulls != nil && c.nulls[row] {
		return types.NullValue(c.kind)
	}
	switch c.kind {
	case types.Int64:
		return types.IntValue(c.ints[row])
	case types.Float64:
		return types.FloatValue(c.floats[row])
	default:
		return types.StringValue(c.strs[row])
	}
}

// Chunk is one fixed-size slice of a relation: hot or frozen.
type Chunk struct {
	hot        *HotChunk
	blk        *core.Block
	deleted    []uint64 // bit set = deleted; lazily allocated
	numDeleted int
}

// IsFrozen reports whether the chunk has been compressed into a Data Block.
func (c *Chunk) IsFrozen() bool { return c.blk != nil }

// Block returns the frozen Data Block, or nil for hot chunks.
func (c *Chunk) Block() *core.Block { return c.blk }

// Hot returns the uncompressed chunk, or nil for frozen chunks.
func (c *Chunk) Hot() *HotChunk { return c.hot }

// Rows returns the tuple count including deleted tuples.
func (c *Chunk) Rows() int {
	if c.blk != nil {
		return c.blk.Rows()
	}
	return c.hot.n
}

// LiveRows returns the tuple count excluding deleted tuples.
func (c *Chunk) LiveRows() int { return c.Rows() - c.numDeleted }

// Deleted returns the delete bitmap (nil when nothing was deleted).
func (c *Chunk) Deleted() []uint64 {
	if c.numDeleted == 0 {
		return nil
	}
	return c.deleted
}

// IsDeleted reports whether the row carries the delete flag.
func (c *Chunk) IsDeleted(row int) bool {
	return c.deleted != nil && simd.BitmapGet(c.deleted, uint32(row))
}

// Relation is a chunked table: zero or more frozen chunks followed by hot
// chunks, the last of which receives inserts.
type Relation struct {
	mu       sync.RWMutex
	schema   *types.Schema
	chunkCap int
	chunks   []*Chunk
	live     int
}

// NewRelation creates an empty relation. chunkCapacity caps rows per chunk;
// zero selects the Data Block default of 2^16.
func NewRelation(schema *types.Schema, chunkCapacity int) *Relation {
	if chunkCapacity <= 0 || chunkCapacity > core.MaxRows {
		chunkCapacity = core.MaxRows
	}
	return &Relation{schema: schema, chunkCap: chunkCapacity}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *types.Schema { return r.schema }

// ChunkCapacity returns the per-chunk row limit.
func (r *Relation) ChunkCapacity() int { return r.chunkCap }

// NumChunks returns the number of chunks.
func (r *Relation) NumChunks() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.chunks)
}

// Chunk returns chunk i. The chunk list only grows, so a retrieved chunk
// stays valid; hot chunks may keep receiving appends.
func (r *Relation) Chunk(i int) *Chunk {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.chunks[i]
}

// Chunks returns a snapshot of the chunk list for scans.
func (r *Relation) Chunks() []*Chunk {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Chunk(nil), r.chunks...)
}

// NumRows returns the live tuple count.
func (r *Relation) NumRows() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live
}

func (r *Relation) newHotChunk() *HotChunk {
	h := &HotChunk{cols: make([]hotCol, r.schema.NumColumns())}
	for i, col := range r.schema.Columns {
		h.cols[i].kind = col.Kind
		switch col.Kind {
		case types.Int64:
			h.cols[i].ints = make([]int64, 0, r.chunkCap)
		case types.Float64:
			h.cols[i].floats = make([]float64, 0, r.chunkCap)
		default:
			h.cols[i].strs = make([]string, 0, r.chunkCap)
		}
	}
	return h
}

// tail returns the hot chunk receiving inserts, creating it if necessary.
// Caller holds the write lock.
func (r *Relation) tail() (*Chunk, int) {
	if n := len(r.chunks); n > 0 {
		c := r.chunks[n-1]
		if !c.IsFrozen() && c.hot.n < r.chunkCap {
			return c, n - 1
		}
	}
	c := &Chunk{hot: r.newHotChunk()}
	r.chunks = append(r.chunks, c)
	return c, len(r.chunks) - 1
}

// Insert appends one tuple and returns its stable identifier.
func (r *Relation) Insert(row types.Row) (TupleID, error) {
	if len(row) != r.schema.NumColumns() {
		return TupleID{}, fmt.Errorf("storage: row has %d values, schema has %d", len(row), r.schema.NumColumns())
	}
	// Validate before touching any column so a rejected row leaves the
	// chunk unchanged.
	for i, v := range row {
		if v.IsNull() {
			if !r.schema.Columns[i].Nullable {
				return TupleID{}, fmt.Errorf("storage: NULL in non-nullable column %q", r.schema.Columns[i].Name)
			}
			continue
		}
		if v.Kind() != r.schema.Columns[i].Kind {
			return TupleID{}, fmt.Errorf("storage: column %q expects %v, got %v",
				r.schema.Columns[i].Name, r.schema.Columns[i].Kind, v.Kind())
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ci := r.tail()
	h := c.hot
	for i, v := range row {
		col := &h.cols[i]
		if v.IsNull() && col.nulls == nil {
			col.nulls = make([]bool, h.n, r.chunkCap)
		}
		if col.nulls != nil {
			col.nulls = append(col.nulls, v.IsNull())
		}
		switch col.kind {
		case types.Int64:
			if v.IsNull() {
				col.ints = append(col.ints, 0)
			} else {
				col.ints = append(col.ints, v.Int())
			}
		case types.Float64:
			if v.IsNull() {
				col.floats = append(col.floats, 0)
			} else {
				col.floats = append(col.floats, v.Float())
			}
		default:
			if v.IsNull() {
				col.strs = append(col.strs, "")
			} else {
				col.strs = append(col.strs, v.Str())
			}
		}
	}
	h.n++
	r.live++
	return TupleID{Chunk: uint32(ci), Row: uint32(h.n - 1)}, nil
}

// BulkAppend loads n pre-columnarized tuples, splitting them across chunks.
// It is the fast path for data generators and loaders.
func (r *Relation) BulkAppend(cols []core.ColumnData, n int) error {
	if len(cols) != r.schema.NumColumns() {
		return fmt.Errorf("storage: %d columns, schema has %d", len(cols), r.schema.NumColumns())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	off := 0
	for off < n {
		c, _ := r.tail()
		h := c.hot
		span := r.chunkCap - h.n
		if span > n-off {
			span = n - off
		}
		for i := range cols {
			col := &h.cols[i]
			src := &cols[i]
			switch col.kind {
			case types.Int64:
				col.ints = append(col.ints, src.Ints[off:off+span]...)
			case types.Float64:
				col.floats = append(col.floats, src.Floats[off:off+span]...)
			default:
				col.strs = append(col.strs, src.Strs[off:off+span]...)
			}
			if src.Nulls != nil {
				hasNull := false
				for _, b := range src.Nulls[off : off+span] {
					if b {
						hasNull = true
						break
					}
				}
				if hasNull || col.nulls != nil {
					if col.nulls == nil {
						col.nulls = make([]bool, h.n, r.chunkCap)
					}
					col.nulls = append(col.nulls, src.Nulls[off:off+span]...)
				}
			} else if col.nulls != nil {
				col.nulls = append(col.nulls, make([]bool, span)...)
			}
		}
		h.n += span
		r.live += span
		off += span
	}
	return nil
}

// Delete flags the tuple as deleted. Frozen tuples keep their slot (§3:
// frozen records are marked with a flag); hot tuples likewise, preserving
// tuple identifiers. It reports whether the tuple existed and was live.
func (r *Relation) Delete(tid TupleID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.chunkFor(tid)
	if !ok {
		return false
	}
	if c.deleted == nil {
		c.deleted = make([]uint64, simd.BitmapWords(r.chunkCap))
	}
	if simd.BitmapGet(c.deleted, tid.Row) {
		return false
	}
	simd.BitmapSet(c.deleted, tid.Row)
	c.numDeleted++
	r.live--
	return true
}

// Update rewrites the tuple as delete + insert into the hot tail (§1) and
// returns the tuple's new identifier.
func (r *Relation) Update(tid TupleID, row types.Row) (TupleID, error) {
	if !r.Delete(tid) {
		return TupleID{}, errors.New("storage: update of missing or deleted tuple")
	}
	return r.Insert(row)
}

func (r *Relation) chunkFor(tid TupleID) (*Chunk, bool) {
	if int(tid.Chunk) >= len(r.chunks) {
		return nil, false
	}
	c := r.chunks[tid.Chunk]
	if int(tid.Row) >= c.Rows() {
		return nil, false
	}
	return c, true
}

// Get materializes the tuple, or reports false if it is deleted or absent.
func (r *Relation) Get(tid TupleID) (types.Row, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.chunkFor(tid)
	if !ok || c.IsDeleted(int(tid.Row)) {
		return nil, false
	}
	row := make(types.Row, r.schema.NumColumns())
	for i := range row {
		if c.IsFrozen() {
			row[i] = c.blk.Value(i, int(tid.Row))
		} else {
			row[i] = c.hot.Value(i, int(tid.Row))
		}
	}
	return row, true
}

// GetCol returns a single attribute of a tuple — the OLTP point access the
// format is designed around (§3.4).
func (r *Relation) GetCol(tid TupleID, col int) (types.Value, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.chunkFor(tid)
	if !ok || c.IsDeleted(int(tid.Row)) {
		return types.Value{}, false
	}
	if c.IsFrozen() {
		return c.blk.Value(col, int(tid.Row)), true
	}
	return c.hot.Value(col, int(tid.Row)), true
}

// FreezeChunk compresses chunk i into a Data Block. With a non-negative
// SortBy, deleted tuples are compacted away and rows are reordered, which
// invalidates tuple identifiers — callers must rebuild indexes (the paper's
// freeze-with-sort likewise re-orders tuples, §3.2). Without sorting,
// identifiers remain stable and the delete bitmap is carried over.
func (r *Relation) FreezeChunk(i int, opts core.FreezeOptions) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.chunks) {
		return fmt.Errorf("storage: chunk %d out of range", i)
	}
	c := r.chunks[i]
	if c.IsFrozen() {
		return nil
	}
	h := c.hot
	if h.n == 0 {
		return errors.New("storage: cannot freeze empty chunk")
	}
	n := h.n
	var keep []uint32
	if opts.SortBy >= 0 && c.numDeleted > 0 {
		for row := 0; row < n; row++ {
			if !simd.BitmapGet(c.deleted, uint32(row)) {
				keep = append(keep, uint32(row))
			}
		}
		n = len(keep)
	}
	cols := make([]core.ColumnData, len(h.cols))
	for ci := range h.cols {
		col := &h.cols[ci]
		cd := core.ColumnData{Kind: col.kind}
		switch col.kind {
		case types.Int64:
			cd.Ints = gatherI64(col.ints[:h.n], keep)
		case types.Float64:
			cd.Floats = gatherF64(col.floats[:h.n], keep)
		default:
			cd.Strs = gatherStr(col.strs[:h.n], keep)
		}
		if col.nulls != nil {
			cd.Nulls = gatherBool(col.nulls[:h.n], keep)
		}
		cols[ci] = cd
	}
	blk, err := core.Freeze(cols, n, opts)
	if err != nil {
		return err
	}
	c.blk = blk
	c.hot = nil
	if keep != nil {
		c.deleted = nil
		c.numDeleted = 0
	}
	return nil
}

// FreezeAll freezes every chunk except, optionally, the hot tail.
func (r *Relation) FreezeAll(opts core.FreezeOptions, keepHotTail bool) error {
	last := r.NumChunks()
	if keepHotTail {
		last--
	}
	for i := 0; i < last; i++ {
		if r.Chunk(i).IsFrozen() {
			continue
		}
		if err := r.FreezeChunk(i, opts); err != nil {
			return err
		}
	}
	return nil
}

func gatherI64(src []int64, keep []uint32) []int64 {
	if keep == nil {
		return src
	}
	out := make([]int64, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

func gatherF64(src []float64, keep []uint32) []float64 {
	if keep == nil {
		return src
	}
	out := make([]float64, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

func gatherStr(src []string, keep []uint32) []string {
	if keep == nil {
		return src
	}
	out := make([]string, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

func gatherBool(src []bool, keep []uint32) []bool {
	if keep == nil {
		return src
	}
	out := make([]bool, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

// MemStats summarizes a relation's footprint.
type MemStats struct {
	HotBytes     int
	FrozenBytes  int
	HotChunks    int
	FrozenChunks int
	Rows         int
	DeletedRows  int
}

// TotalBytes returns the combined footprint.
func (m MemStats) TotalBytes() int { return m.HotBytes + m.FrozenBytes }

// MemoryStats reports the relation's current footprint, separating hot
// uncompressed storage from frozen Data Blocks (the quantity Table 1 and
// Figure 10 measure).
func (r *Relation) MemoryStats() MemStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var m MemStats
	for _, c := range r.chunks {
		m.DeletedRows += c.numDeleted
		m.Rows += c.Rows()
		if c.IsFrozen() {
			m.FrozenChunks++
			m.FrozenBytes += c.blk.CompressedSize()
			continue
		}
		m.HotChunks++
		h := c.hot
		for ci := range h.cols {
			col := &h.cols[ci]
			switch col.kind {
			case types.Int64, types.Float64:
				m.HotBytes += 8 * h.n
			default:
				for _, s := range col.strs[:h.n] {
					m.HotBytes += len(s) + 16
				}
			}
			if col.nulls != nil {
				m.HotBytes += h.n
			}
		}
	}
	return m
}
