// Package storage implements the hybrid relation layout of Figure 1:
// relations are divided into fixed-size chunks; hot chunks stay
// uncompressed and writable, cold chunks are frozen into immutable
// compressed Data Blocks. Freezing is per-chunk and O(chunk), avoiding the
// O(relation) merge of write-optimized/read-optimized designs (§1).
//
// Frozen tuples support only delete (a flag); updates are rewritten as a
// delete plus an insert into the hot tail (§3). Tuple identifiers are
// stable across (unsorted) freezing, so primary-key indexes survive.
//
// # Concurrency contract
//
// A Relation is safe for concurrent use. The operations that may overlap
// freely are:
//
//   - OLTP writes: Insert, BulkAppend, Delete, Update and the three-step
//     update protocol InsertPending/CommitUpdate/AbortPending, each O(1).
//     Appends serialize per write stripe (SetWriteStripes): InsertStripe
//     and InsertPendingStripe on distinct stripes run concurrently,
//     holding only their stripe's appender lock; the single-writer entry
//     points route to stripe 0. Deletes and commits still serialize on
//     the relation lock — they are cross-stripe (any stripe's row) and
//     epoch-minting.
//   - OLTP reads: Get, GetCol, GetAt (shared lock).
//   - OLAP scans: Snapshot returns ChunkViews pinned to an epoch cutoff;
//     scan drivers iterate a snapshot and never observe row versions
//     committed after the cutoff.
//   - Background freezing: FreezeChunk/FreezeAll with a negative SortBy
//     run core.Freeze compression outside the relation lock, so inserts,
//     lookups and scans proceed while a chunk is being compressed.
//   - Background eviction: EvictChunk/EvictUnderBudget spill frozen
//     blocks to the block store and drop their payloads; reads of
//     evicted chunks transparently reload and pin them (see "Eviction,
//     pinning and reload" below). Spill and reload I/O run outside the
//     relation lock.
//
// # Epoch-versioned reads
//
// The relation maintains a monotonically increasing write epoch. Every
// delete stamps the retired row with the epoch that killed it, and every
// committed update stamps the replacement row with the epoch it was born
// at; both stamps are installed under one write-lock acquisition, so they
// become visible atomically. A reader that captured epoch E therefore has
// an exact visibility rule: a row is visible at E iff it was born at or
// before E and not retired at or before E. GetAt evaluates that rule for
// point reads and reports *why* an invisible row is invisible (not yet
// born versus already retired), which is what lets an index with version
// records fall back to the previous version of a tuple that is mid-update
// — closing the update/lookup read anomaly: a key that exists at all
// times resolves to either its pre- or its post-update version, never to
// neither.
//
// The three-step update protocol orders the steps so that no read epoch
// ever observes a gap: InsertPending appends the new version invisibly
// (born at +inf), the caller publishes the new tuple identifier in its
// index, and CommitUpdate atomically (one epoch) makes the new version
// visible and retires the old one. Between the steps, readers resolve the
// old version; after commit, the epoch decides.
//
// Snapshots are zero-copy: a ChunkView shares the chunk's delete bitmap
// (word-level atomic access) and epoch stamps, and filters both by the
// cutoff epoch captured at snapshot time. A delete or update committed
// after the snapshot necessarily carries a later epoch, so the view keeps
// reading the pre-mutation state without copying the bitmap.
//
// Each chunk moves through a state machine that is one-way up to the
// frozen station and oscillates between the last two when a block store
// is attached (SetBlockStore):
//
//	ChunkHot ──(claim: owner stripe lock + brief write lock)──► ChunkFreezing
//	ChunkFreezing ──(compress outside lock, install)──► ChunkFrozen
//	ChunkFreezing ──(compression error)──► ChunkHot
//	ChunkFrozen ──(spill to store, drop payload)──► ChunkEvicted
//	ChunkEvicted ──(reload from store, reinstall payload)──► ChunkFrozen
//
// A freezing chunk no longer accepts appends (the insert tail skips it and
// rolls over to a fresh chunk), but its tuples remain readable from the hot
// payload until the compressed block is installed with an atomic payload
// swap; deletes during freezing land in the chunk's delete bitmap, which is
// shared by the hot and frozen forms (tuple identifiers are stable).
//
// # Eviction, pinning and reload
//
// An evicted chunk keeps everything mutable in RAM — the delete bitmap,
// epoch stamps and counters — and drops only the immutable compressed
// payload, replaced by a handle into the block store. Reads stay
// transparent: point reads (GetAt/GetCol) and scans (via ChunkView.Acquire)
// pin the block, reloading it from the store first when it is not
// resident. The rules:
//
//   - Reload I/O runs outside the relation lock (single-flighted per
//     chunk), so writers and other readers proceed while a block streams
//     in from disk; the reloaded payload is re-installed with an atomic
//     payload swap under the write lock (Evicted → Frozen).
//   - A reader pins (Chunk.pins) before loading the payload pointer and
//     unpins when done; the evictor skips pinned chunks, so an in-flight
//     scan cannot have its block evicted underneath it. Blocks are
//     immutable, so the residual race — an eviction nominated just before
//     a pin lands — at worst leaves the reader on a privately retained
//     copy while the budget accounting already dropped it; it can never
//     produce a torn read.
//   - Eviction (EvictChunk/EvictUnderBudget) only targets ChunkFrozen
//     chunks with a zero pin count; the first eviction of a chunk
//     serializes the block into the store, later ones reuse the file.
//   - Every scan and point-lookup touch bumps the chunk's access counter;
//     the block cache evicts coldest-first by that temperature whenever
//     the resident set exceeds the configured byte budget.
//   - A failed reload (I/O error, corrupt or truncated block file) is an
//     error, never silent data: scans propagate it, point reads report
//     Unavailable and record it on the relation (LoadError).
//
// # Recovery
//
// A relation can be rebuilt from a durable manifest (see
// blockstore.Manifest): each frozen chunk is restored with RestoreEvicted
// in manifest order, in the evicted state — the payload stays in the block
// store until the first read touches it. The preconditions are strict and
// unchecked beyond what the functions validate themselves:
//
//   - SetBlockStore must already have been called, and the relation must
//     not yet see concurrent use: restoration is part of construction.
//   - Chunks are restored before any insert, so restored ordinals are
//     dense and precede the new hot tail. Tuple identifiers from the
//     previous process lifetime are NOT preserved in general (hot chunks
//     were not recovered), which is why indexes must be rebuilt by
//     streaming keys from the restored chunks, not loaded from a cache.
//   - The chunk capacity must be at least the restored row counts — reopen
//     a relation with the chunk capacity it was created with (the durable
//     catalog records it).
//   - Epoch stamps are not persisted: restored deletes read as
//     retired-at-zero (invisible to everyone), and rows that were pending
//     an uncommitted update at manifest time were recorded as deleted by
//     ManifestChunks. Cross-restart epoch continuity is the owner's job:
//     the durable manifest records the epoch high-water mark and recovery
//     restores it with AdvanceEpoch before replaying its write-ahead log,
//     so replayed mutations mint epochs above everything the previous
//     lifetime acknowledged.
//
// ManifestChunks is the writer-side half: it snapshots the frozen set
// (handles, row counts, delete bitmaps) under the relation lock for a
// manifest write, after FlushFrozen has given every frozen block a store
// handle.
//
// Sorted freezing (SortBy >= 0) reorders tuples and therefore invalidates
// tuple identifiers; it runs stop-the-world under the relation write lock
// and must not overlap other writers or a background compactor — quiesce
// the relation first (see ROADMAP: sorted-freeze under concurrency).
//
// Lock-free access to a *Chunk (Relation.Chunk/Chunks) is safe for frozen
// chunks and for the state/row-count accessors (Rows, LiveRows, Deleted
// counts are atomic); reading the column data of a chunk that is still hot
// while writers run requires a ChunkView from Snapshot.
//
// # Machine-checked contracts
//
// The rules above are enforced by the in-tree dbvet analyzer suite
// (internal/analysis, run by `make lint`): lockcheck checks that *Locked
// helpers run with the relation lock held and that loadMu is acquired
// before the relation lock (the documented rank order); atomiccheck
// checks that the atomically-read delete bitmaps and counters are never
// touched plainly; pincheck checks that every ChunkView.Acquire and
// pinBlock is paired with its release on all paths. The few deliberate
// exceptions in this file carry //dbvet:ignore directives whose reasons
// state why the plain access cannot race (single-owner construction, or
// writer-excluded freeze). See ARCHITECTURE.md, "Enforced invariants".
package storage

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"datablocks/internal/blockstore"
	"datablocks/internal/core"
	"datablocks/internal/simd"
	"datablocks/internal/types"
)

// freezeBlock indirects core.Freeze so tests can stall compression and
// prove it runs outside the relation lock.
var freezeBlock = core.Freeze

// TupleID addresses one tuple: a chunk ordinal and a row within the chunk.
type TupleID struct {
	Chunk uint32
	Row   uint32
}

// HotChunk is an uncompressed, append-only columnar chunk. Rows below the
// published row count are immutable; the backing arrays are allocated at
// full chunk capacity up front, so growing the chunk never reallocates
// them.
type HotChunk struct {
	n    atomic.Int32
	cols []hotCol
}

type hotCol struct {
	kind   types.Kind
	ints   []int64
	floats []float64
	strs   []string
	nulls  []bool // eager for nullable columns; else installed by BulkAppend under the write lock
}

// Rows returns the number of tuples in the chunk (including deleted ones).
func (h *HotChunk) Rows() int { return int(h.n.Load()) }

// Ints exposes an integer column for vectorized scans.
func (h *HotChunk) Ints(col int) []int64 { return h.cols[col].ints[:h.Rows()] }

// Floats exposes a double column.
func (h *HotChunk) Floats(col int) []float64 { return h.cols[col].floats[:h.Rows()] }

// Strs exposes a string column.
func (h *HotChunk) Strs(col int) []string { return h.cols[col].strs[:h.Rows()] }

// Nulls exposes the column's null flags, or nil when the column holds no
// NULLs.
func (h *HotChunk) Nulls(col int) []bool {
	if h.cols[col].nulls == nil {
		return nil
	}
	return h.cols[col].nulls[:h.Rows()]
}

// IsNull reports whether cell (col, row) is NULL.
func (h *HotChunk) IsNull(col, row int) bool {
	c := &h.cols[col]
	return c.nulls != nil && c.nulls[row]
}

// Value returns cell (col, row) as a dynamic value.
func (h *HotChunk) Value(col, row int) types.Value {
	c := &h.cols[col]
	if c.nulls != nil && c.nulls[row] {
		return types.NullValue(c.kind)
	}
	switch c.kind {
	case types.Int64:
		return types.IntValue(c.ints[row])
	case types.Float64:
		return types.FloatValue(c.floats[row])
	default:
		return types.StringValue(c.strs[row])
	}
}

// ChunkState is one station of the hot→cold lifecycle.
type ChunkState uint32

const (
	// ChunkHot is uncompressed and, if it is the relation tail, writable.
	ChunkHot ChunkState = iota
	// ChunkFreezing is claimed by a freeze: still read from the hot
	// payload, closed to appends, compression in flight.
	ChunkFreezing
	// ChunkFrozen is an immutable compressed Data Block resident in RAM.
	ChunkFrozen
	// ChunkEvicted is a frozen chunk whose compressed payload has been
	// spilled to the block store and dropped from RAM; only a handle (and
	// the mutable delete/epoch state) remains. Reads transparently reload
	// and pin the block through the store, moving it back to ChunkFrozen.
	ChunkEvicted
)

// String names the state for diagnostics.
func (s ChunkState) String() string {
	switch s {
	case ChunkHot:
		return "hot"
	case ChunkFreezing:
		return "freezing"
	case ChunkEvicted:
		return "evicted"
	default:
		return "frozen"
	}
}

// chunkPayload is the storage behind a chunk: at most one of hot, blk is
// non-nil; both are nil while the chunk is evicted (its block lives in
// the block store). It is swapped atomically when a freeze installs its
// block, an eviction drops it, or a reload re-installs it, so a reader
// that loads the payload once observes a coherent chunk.
type chunkPayload struct {
	hot *HotChunk
	blk *core.Block
}

// pendingEpoch is the birth stamp of a row inserted by InsertPending: it
// sorts after every real epoch, so the row is invisible to all readers
// until CommitUpdate overwrites the stamp with the commit epoch.
const pendingEpoch = ^uint64(0)

// Chunk is one fixed-size slice of a relation: hot, freezing or frozen.
type Chunk struct {
	state atomic.Uint32
	pay   atomic.Pointer[chunkPayload]

	// The delete bitmap is shared by the hot and frozen payloads (tuple
	// identifiers survive unsorted freezing). It is mutated under the
	// relation write lock with word-level atomic sets and may be read
	// lock-free with atomic loads (bits are only ever set), so ChunkViews
	// share it without copying.
	deleted    []uint64 // bit set = deleted; lazily allocated
	numDeleted atomic.Int32
	// retiredCount counts live entries in the retired map — the
	// epoch-stamped tombstones only a sorted freeze garbage-collects.
	// Telemetry only (the GC backlog of EpochStatsSnapshot).
	retiredCount atomic.Int32
	// pending counts rows inserted by InsertPending that have neither
	// committed nor aborted yet.
	pending atomic.Int32
	// bornCount counts rows that ever received a birth stamp; zero lets
	// point reads skip the born map entirely.
	bornCount atomic.Int32
	// retired maps row -> write epoch at which the row was delete-flagged;
	// born maps row -> write epoch at which an update-created row became
	// visible (pendingEpoch until its commit). Both are replaced wholesale
	// by a sorted freeze, so in-flight views keep their own references.
	retired *sync.Map
	born    *sync.Map

	// loadMu serializes the chunk's traffic with the block store: the
	// spill of an eviction and the single-flight reload of a read both
	// hold it, so concurrent readers of an evicted chunk do one disk read,
	// not one each. Lock order: loadMu before the relation lock, never the
	// other way around.
	loadMu sync.Mutex
	// handle addresses the serialized block in the relation's store once
	// the chunk has been spilled at least once (zero = never spilled).
	// Writers hold loadMu; it is atomic so manifest snapshots can read it
	// under the relation lock alone.
	handle atomic.Uint64
	// pins counts in-flight readers of the frozen payload; eviction skips
	// pinned chunks (see the package doc's pin rules).
	pins atomic.Int32
	// access is the chunk's temperature: bumped on every scan snapshot and
	// point-lookup touch, consumed by the cache's coldest-first policy.
	access atomic.Uint64
	// frozenRows/frozenBytes mirror the installed block's row count and
	// compressed size so they stay answerable while the payload is
	// evicted.
	frozenRows  atomic.Int32
	frozenBytes atomic.Int64

	// stripe is the write stripe that owns this chunk's append path, set at
	// construction and immutable. -1 for chunks restored from a manifest
	// (frozen on arrival, never appended to again). A freeze claims a hot
	// chunk under its owner stripe's appender lock, so claim and append
	// cannot interleave.
	stripe int32
}

// Temperature returns the chunk's access count (blockstore.Owner).
func (c *Chunk) Temperature() uint64 { return c.access.Load() }

// Pinned reports whether a reader currently pins the chunk's payload
// (blockstore.Owner).
func (c *Chunk) Pinned() bool { return c.pins.Load() != 0 }

func newChunk(h *HotChunk, stripe int32) *Chunk {
	c := &Chunk{retired: &sync.Map{}, born: &sync.Map{}, stripe: stripe}
	c.pay.Store(&chunkPayload{hot: h})
	return c
}

// retiredAt returns the epoch at which row was delete-flagged. A set bit
// with no stamp (impossible through the public API) is treated as retired
// at epoch 0, i.e. invisible to everyone.
func (c *Chunk) retiredAt(row uint32) uint64 {
	if e, ok := c.retired.Load(row); ok {
		return e.(uint64)
	}
	return 0
}

// State returns the chunk's lifecycle state.
func (c *Chunk) State() ChunkState { return ChunkState(c.state.Load()) }

// IsFrozen reports whether the chunk has been compressed into a Data
// Block. It is derived from the state machine, not from payload presence:
// an evicted chunk is frozen even though its in-RAM block pointer is nil.
func (c *Chunk) IsFrozen() bool {
	s := c.State()
	return s == ChunkFrozen || s == ChunkEvicted
}

// Block returns the frozen Data Block while it is resident in RAM, or nil
// for hot and evicted chunks. Callers that must read an evicted chunk's
// block go through a pinned path instead (GetAt/GetCol, or a ChunkView
// with Acquire), which reloads it from the block store.
func (c *Chunk) Block() *core.Block { return c.pay.Load().blk }

// Hot returns the uncompressed chunk, or nil for frozen chunks.
func (c *Chunk) Hot() *HotChunk { return c.pay.Load().hot }

// Rows returns the tuple count including deleted tuples. For evicted
// chunks the count survives in frozenRows, so identifier resolution and
// statistics never need the payload.
func (c *Chunk) Rows() int {
	p := c.pay.Load()
	if p.blk != nil {
		return p.blk.Rows()
	}
	if p.hot != nil {
		return p.hot.Rows()
	}
	return int(c.frozenRows.Load())
}

// LiveRows returns the tuple count excluding deleted and pending tuples.
// Like Rows it is safe to call lock-free: both counters are atomic.
func (c *Chunk) LiveRows() int {
	return c.Rows() - int(c.numDeleted.Load()) - int(c.pending.Load())
}

// NumDeleted returns the number of delete-flagged tuples (atomic, safe
// lock-free). Per-row delete state is only exposed through ChunkView,
// whose epoch cutoff and atomic bitmap access make it safe without the
// relation lock.
func (c *Chunk) NumDeleted() int { return int(c.numDeleted.Load()) }

// ChunkView is a consistent snapshot of one chunk, taken under the
// relation lock by Relation.Snapshot. Scans capture a view once per chunk
// and never observe concurrent appends, hot→frozen payload swaps, or row
// versions committed after the snapshot.
//
// Views are zero-copy: the delete bitmap and epoch stamps are shared with
// the live chunk and filtered through the cutoff epoch captured at
// snapshot time. Deletes and update commits that land after the snapshot
// carry epochs above the cutoff, so the view keeps resolving the
// pre-mutation state without having copied anything.
type ChunkView struct {
	hot *HotChunk
	blk *core.Block
	// frozen records the chunk's compression status at snapshot time; for
	// an evicted chunk it is true while blk stays nil until Acquire
	// reloads the block.
	frozen bool
	// chunk and rel are set when the view may need the pin/reload path: a
	// block store is attached (a resident block can be evicted mid-scan)
	// or the chunk was already evicted at snapshot time.
	chunk   *Chunk
	rel     *Relation
	release func()
	// rows is the row-count watermark captured under the relation lock:
	// rows appended after the snapshot sit above it and are never
	// consulted, which is what lets bornCheck stay false when the chunk
	// had no pending rows at snapshot time (a later InsertPending or
	// plain Insert lands above the watermark; a later CommitUpdate
	// retires the old version at an epoch above the cutoff).
	rows       int
	del        []uint64 // shared with the chunk; atomic word access only
	retired    *sync.Map
	born       *sync.Map
	cutoff     uint64
	numDeleted int
	pending    int
	bornCheck  bool
}

// IsFrozen reports whether the chunk was frozen (possibly evicted) at
// snapshot time.
func (v *ChunkView) IsFrozen() bool { return v.frozen }

// Block returns the frozen Data Block, or nil for hot views — and for
// evicted views until Acquire has pinned the block back into RAM.
func (v *ChunkView) Block() *core.Block { return v.blk }

// Acquire pins the view's frozen block in RAM for the duration of a scan,
// reloading it from the block store first when the chunk is evicted (the
// I/O runs outside the relation lock). It is a no-op for hot views and
// for frozen views of a relation without a block store, whose blocks can
// never leave RAM. Each successful Acquire must be paired with Release;
// while pinned, the budget evictor will not touch the chunk.
func (v *ChunkView) Acquire() error {
	_, err := v.AcquireReload()
	return err
}

// AcquireReload is Acquire, additionally reporting whether this call had
// to reload the block from the store (the chunk was evicted and this
// pinner performed — rather than shared — the disk read). Query profiles
// use it to attribute evicted-block reloads to the scan that paid them.
func (v *ChunkView) AcquireReload() (reloaded bool, err error) {
	if !v.frozen || v.chunk == nil || v.release != nil {
		return false, nil
	}
	blk, unpin, loaded, err := v.rel.pinBlock(v.chunk)
	if err != nil {
		v.rel.noteLoadError(err)
		return false, err
	}
	v.blk = blk
	v.release = unpin
	return loaded, nil
}

// Release unpins a block pinned by Acquire. Safe to call on any view,
// any number of times.
func (v *ChunkView) Release() {
	if v.release != nil {
		v.release()
		v.release = nil
	}
}

// Hot returns the snapshotted uncompressed chunk, or nil for frozen views.
func (v *ChunkView) Hot() *HotChunk { return v.hot }

// Rows returns the row-count watermark captured at snapshot time,
// including deleted tuples. Rows appended to the live chunk after the
// snapshot sit above the watermark and are not part of the view.
func (v *ChunkView) Rows() int { return v.rows }

// LiveRows returns the tuple count visible at the view's epoch cutoff.
// Watermark, delete count and pending count were all captured under one
// lock acquisition, so the value is internally consistent.
func (v *ChunkView) LiveRows() int { return v.rows - v.numDeleted - v.pending }

// IsDeleted reports whether the row is invisible at the view's epoch
// cutoff: delete-flagged at or before the cutoff, or born after it (a
// pending or later-committed update version). The name predates the epoch
// machinery; scan drivers use it to skip rows.
func (v *ChunkView) IsDeleted(row int) bool { return !v.visible(uint32(row)) }

func (v *ChunkView) visible(row uint32) bool {
	if v.del != nil && simd.BitmapGetAtomic(v.del, row) {
		if e, ok := v.retired.Load(row); !ok || e.(uint64) <= v.cutoff {
			return false
		}
	}
	if v.bornCheck {
		if b, ok := v.born.Load(row); ok && b.(uint64) > v.cutoff {
			return false
		}
	}
	return true
}

// FilterVisible compacts a match vector in place, keeping only positions
// visible at the view's epoch cutoff. When the chunk had no deletes and
// no in-flight updates at snapshot time this is free.
func (v *ChunkView) FilterVisible(m []uint32) []uint32 {
	if v.numDeleted == 0 && !v.bornCheck {
		return m
	}
	w := 0
	for _, p := range m {
		if v.visible(p) {
			m[w] = p
			w++
		}
	}
	return m[:w]
}

// Value returns cell (col, row) of the snapshot as a dynamic value.
func (v *ChunkView) Value(col, row int) types.Value {
	if v.blk != nil {
		return v.blk.Value(col, row)
	}
	return v.hot.Value(col, row)
}

// relStripe is one independent append lane of a relation. Each stripe has
// its own hot tail chunk and its own appender lock, so writers hashed to
// different stripes append concurrently without touching the relation
// lock; only a chunk rollover (growing the chunk list) takes r.mu.
type relStripe struct {
	// mu serializes appends within the stripe and a freeze's claim of the
	// stripe's chunks. Lock order: mu before Relation.mu, never after.
	mu sync.Mutex
	// tail is the stripe's current hot chunk (nil before the first
	// append). Written with both mu and Relation.mu held (rollover); read
	// under either lock.
	tail    *Chunk
	tailOrd int
}

// Relation is a chunked table: zero or more frozen chunks followed by hot
// chunks; each write stripe's tail chunk receives its inserts.
type Relation struct {
	mu       sync.RWMutex
	schema   *types.Schema
	chunkCap int
	chunks   []*Chunk

	// stripes are the append lanes (at least one). The slice itself is
	// fixed before concurrent use (SetWriteStripes); single-writer callers
	// use stripe 0 through the legacy Insert/Update entry points.
	stripes []relStripe

	// live is the live tuple count, maintained atomically because stripe
	// appends run outside the relation lock.
	live atomic.Int64

	// epoch is the monotonically increasing write epoch. Deletes and
	// update commits bump it under the write lock and stamp the affected
	// rows; readers capture it (ReadEpoch, Snapshot) to pin a visibility
	// cutoff.
	epoch atomic.Uint64

	// Cold block store state (SetBlockStore). store persists serialized
	// frozen blocks; cache tracks which are resident in RAM against the
	// byte budget; kinds is the schema handed to deserialization;
	// overBudget nudges the owner's compactor when an install pushes the
	// resident set past the budget. All four are set once, before
	// concurrent use.
	store      *blockstore.Store
	cache      *blockstore.Cache
	kinds      []types.Kind
	overBudget func()

	evictions atomic.Int64
	reloads   atomic.Int64
	// collapses counts single-flight reload collapses: pinners that
	// waited on loadMu and found the block already reinstalled by the
	// reader that held it, sharing that reader's disk read.
	collapses atomic.Int64

	// met holds the freeze-pipeline telemetry (see metrics.go).
	met relMetrics

	loadErrMu sync.Mutex
	loadErr   error
}

// NewRelation creates an empty relation. chunkCapacity caps rows per chunk;
// zero selects the Data Block default of 2^16.
func NewRelation(schema *types.Schema, chunkCapacity int) *Relation {
	if chunkCapacity <= 0 || chunkCapacity > core.MaxRows {
		chunkCapacity = core.MaxRows
	}
	return &Relation{schema: schema, chunkCap: chunkCapacity, stripes: make([]relStripe, 1)}
}

// SetWriteStripes partitions the append path into n independent stripes
// (InsertStripe/InsertPendingStripe). It must be called before the
// relation sees any insert or concurrent use; the legacy single-writer
// entry points keep routing to stripe 0.
func (r *Relation) SetWriteStripes(n int) {
	if n < 1 {
		n = 1
	}
	r.stripes = make([]relStripe, n)
}

// NumWriteStripes returns the configured stripe count.
func (r *Relation) NumWriteStripes() int { return len(r.stripes) }

// Schema returns the relation's schema.
func (r *Relation) Schema() *types.Schema { return r.schema }

// ChunkCapacity returns the per-chunk row limit.
func (r *Relation) ChunkCapacity() int { return r.chunkCap }

// NumChunks returns the number of chunks.
func (r *Relation) NumChunks() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.chunks)
}

// Chunk returns chunk i. The chunk list only grows, so a retrieved chunk
// stays valid; hot chunks may keep receiving appends.
func (r *Relation) Chunk(i int) *Chunk {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.chunks[i]
}

// Chunks returns a snapshot of the chunk list. The *Chunk handles track
// live state; concurrent scans should prefer Snapshot.
func (r *Relation) Chunks() []*Chunk {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Chunk(nil), r.chunks...)
}

// ReadEpoch returns the current write epoch: the visibility cutoff a
// point reader should capture *before* resolving an index entry, so that
// the index publish/commit ordering guarantees it a visible version.
func (r *Relation) ReadEpoch() uint64 { return r.epoch.Load() }

// Snapshot captures a consistent view of every chunk for a scan, pinned
// to the current write epoch. View i corresponds to chunk ordinal i, so
// row positions remain valid TupleIDs. The views share the live delete
// bitmap and epoch stamps (zero-copy); the cutoff keeps later mutations
// invisible.
func (r *Relation) Snapshot() []ChunkView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cutoff := r.epoch.Load()
	views := make([]ChunkView, len(r.chunks))
	for i, c := range r.chunks {
		views[i] = r.viewLocked(c, cutoff)
	}
	return views
}

// viewLocked snapshots one chunk at the given epoch cutoff. Caller holds
// at least the read lock, which excludes deletes, update commits, freeze
// installs and bulk loads, so the captured headers, delete count and
// cutoff are mutually consistent. Stripe appends run outside the relation
// lock, but they publish through the row-count watermark: a hot chunk's
// backing arrays are allocated at full capacity up front (the headers
// never move), values are written before the watermark advances, and rows
// below the watermark are immutable — so every mutation concurrent with
// the snapshot either lands above the watermark (appends) or carries an
// epoch above the cutoff (deletes, update commits).
func (r *Relation) viewLocked(c *Chunk, cutoff uint64) ChunkView {
	c.access.Add(1) // scan touch: temperature for the eviction policy
	v := ChunkView{
		del:        c.deleted,
		retired:    c.retired,
		born:       c.born,
		cutoff:     cutoff,
		numDeleted: int(c.numDeleted.Load()),
		pending:    int(c.pending.Load()),
	}
	// Only rows that are pending right now can be born above the cutoff
	// later (their commit epoch will exceed it); committed births are all
	// at or below the current epoch. No pending rows means the view never
	// needs the born map — a pending row inserted after the snapshot
	// lands above the watermark and is excluded by the iteration bound.
	v.bornCheck = v.pending > 0
	p := c.pay.Load()
	if p.hot == nil {
		// Frozen (blk set) or evicted (blk nil until Acquire reloads it).
		v.frozen = true
		v.blk = p.blk
		v.rows = c.Rows()
		if r.store != nil {
			// With a store attached the block can be evicted mid-scan (or
			// already is): give the view the pin/reload hook.
			v.chunk, v.rel = c, r
		}
		return v
	}
	// The column copy pins the snapshot's slice headers (a bulk load may
	// install null flags later, under the write lock) and the watermark
	// bounds every accessor, so the view never reads past snapshot state.
	n := p.hot.n.Load()
	v.rows = int(n)
	snap := &HotChunk{cols: append([]hotCol(nil), p.hot.cols...)}
	snap.n.Store(n)
	v.hot = snap
	return v
}

// NumRows returns the live tuple count.
func (r *Relation) NumRows() int {
	return int(r.live.Load())
}

// newHotChunk allocates a hot chunk with full-capacity backing arrays:
// growth never reallocates, so the slice headers are immutable and a
// snapshot that copies them stays coherent with appends that hold only a
// stripe lock. Nullable columns get their null flags eagerly for the same
// reason (non-nullable columns can only gain them through BulkAppend,
// which holds the write lock).
func (r *Relation) newHotChunk() *HotChunk {
	h := &HotChunk{cols: make([]hotCol, r.schema.NumColumns())}
	for i, col := range r.schema.Columns {
		h.cols[i].kind = col.Kind
		switch col.Kind {
		case types.Int64:
			h.cols[i].ints = make([]int64, r.chunkCap)
		case types.Float64:
			h.cols[i].floats = make([]float64, r.chunkCap)
		default:
			h.cols[i].strs = make([]string, r.chunkCap)
		}
		if col.Nullable {
			h.cols[i].nulls = make([]bool, r.chunkCap)
		}
	}
	return h
}

// ensureTail returns the stripe's hot tail chunk, rolling over to a fresh
// chunk when there is none, the tail is claimed by a freeze, or it is
// full. Caller holds st.mu only; rollover grows the chunk list under a
// brief relation write lock. Callers already inside r.mu use
// ensureTailLocked instead.
func (r *Relation) ensureTail(st *relStripe, sIdx int) (*Chunk, int) {
	if c := st.tail; c != nil && c.State() == ChunkHot && c.pay.Load().hot.Rows() < r.chunkCap {
		return c, st.tailOrd
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ensureTailLocked(st, sIdx)
}

// ensureTailLocked is ensureTail for callers that hold both st.mu and the
// relation write lock.
func (r *Relation) ensureTailLocked(st *relStripe, sIdx int) (*Chunk, int) {
	if c := st.tail; c != nil && c.State() == ChunkHot && c.pay.Load().hot.Rows() < r.chunkCap {
		return c, st.tailOrd
	}
	c := newChunk(r.newHotChunk(), int32(sIdx))
	r.chunks = append(r.chunks, c)
	st.tail, st.tailOrd = c, len(r.chunks)-1
	return c, st.tailOrd
}

// validateRow checks a row against the schema without touching storage, so
// rejected rows leave the relation unchanged.
func (r *Relation) validateRow(row types.Row) error {
	if len(row) != r.schema.NumColumns() {
		return fmt.Errorf("storage: row has %d values, schema has %d", len(row), r.schema.NumColumns())
	}
	for i, v := range row {
		if v.IsNull() {
			if !r.schema.Columns[i].Nullable {
				return fmt.Errorf("storage: NULL in non-nullable column %q", r.schema.Columns[i].Name)
			}
			continue
		}
		if v.Kind() != r.schema.Columns[i].Kind {
			return fmt.Errorf("storage: column %q expects %v, got %v",
				r.schema.Columns[i].Name, r.schema.Columns[i].Kind, v.Kind())
		}
	}
	return nil
}

// Insert appends one tuple and returns its stable identifier. It is the
// single-writer entry point, routing to stripe 0; concurrent writers use
// InsertStripe with distinct stripes.
func (r *Relation) Insert(row types.Row) (TupleID, error) {
	return r.InsertStripe(0, row)
}

// InsertStripe appends one tuple through write stripe s, holding only that
// stripe's appender lock (plus a brief relation lock on chunk rollover).
// Callers on distinct stripes append concurrently.
func (r *Relation) InsertStripe(s int, row types.Row) (TupleID, error) {
	if err := r.validateRow(row); err != nil {
		return TupleID{}, err
	}
	st := &r.stripes[s]
	st.mu.Lock()
	c, ci := r.ensureTail(st, s)
	tid := r.appendRow(c, ci, row, false)
	st.mu.Unlock()
	r.live.Add(1)
	return tid, nil
}

// appendRow appends a pre-validated row to the resolved tail chunk c
// (ordinal ci, from ensureTail or ensureTailLocked). A pending row is
// stamped born-at-+inf *before* the row count is published, so no reader
// or snapshot ever sees it until CommitUpdate re-stamps it. Caller holds
// the owning stripe's mu and adjusts the live count.
func (r *Relation) appendRow(c *Chunk, ci int, row types.Row, pending bool) TupleID {
	h := c.pay.Load().hot
	n := h.Rows()
	if pending {
		c.born.Store(uint32(n), pendingEpoch)
		c.bornCount.Add(1)
		c.pending.Add(1)
	}
	for i, v := range row {
		col := &h.cols[i]
		if col.nulls != nil {
			col.nulls[n] = v.IsNull()
		}
		switch col.kind {
		case types.Int64:
			if v.IsNull() {
				col.ints[n] = 0
			} else {
				col.ints[n] = v.Int()
			}
		case types.Float64:
			if v.IsNull() {
				col.floats[n] = 0
			} else {
				col.floats[n] = v.Float()
			}
		default:
			if v.IsNull() {
				col.strs[n] = ""
			} else {
				col.strs[n] = v.Str()
			}
		}
	}
	// Publish the row only after its values are in place: the row count is
	// the watermark snapshots read, and its atomic store orders the value
	// writes before any reader that loads it.
	h.n.Store(int32(n + 1))
	return TupleID{Chunk: uint32(ci), Row: uint32(n)}
}

// BulkAppend loads n pre-columnarized tuples, splitting them across chunks.
// It is the fast path for data generators and loaders.
func (r *Relation) BulkAppend(cols []core.ColumnData, n int) error {
	_, err := r.BulkAppendTracked(cols, n)
	return err
}

// BulkAppendTracked is BulkAppend returning the ordinals of every chunk
// the load touched, in order — the bookkeeping a write-ahead-logged bulk
// load needs to tie its WAL records to chunk durability.
func (r *Relation) BulkAppendTracked(cols []core.ColumnData, n int) ([]uint32, error) {
	if len(cols) != r.schema.NumColumns() {
		return nil, fmt.Errorf("storage: %d columns, schema has %d", len(cols), r.schema.NumColumns())
	}
	// Bulk loads go through stripe 0 and additionally hold the relation
	// write lock for the whole load: they may install null flags on
	// existing chunks, which the snapshot header-copy otherwise relies on
	// never changing.
	st := &r.stripes[0]
	st.mu.Lock()
	defer st.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	var ords []uint32
	off := 0
	for off < n {
		c, ord := r.ensureTailLocked(st, 0)
		if len(ords) == 0 || ords[len(ords)-1] != uint32(ord) {
			ords = append(ords, uint32(ord))
		}
		h := c.pay.Load().hot
		hn := h.Rows()
		span := r.chunkCap - hn
		if span > n-off {
			span = n - off
		}
		for i := range cols {
			col := &h.cols[i]
			src := &cols[i]
			switch col.kind {
			case types.Int64:
				copy(col.ints[hn:hn+span], src.Ints[off:off+span])
			case types.Float64:
				copy(col.floats[hn:hn+span], src.Floats[off:off+span])
			default:
				copy(col.strs[hn:hn+span], src.Strs[off:off+span])
			}
			if src.Nulls != nil {
				if col.nulls == nil {
					hasNull := false
					for _, b := range src.Nulls[off : off+span] {
						if b {
							hasNull = true
							break
						}
					}
					if hasNull {
						// Lazily install full-capacity null flags; rows below
						// hn had none, and the zero value says so.
						col.nulls = make([]bool, r.chunkCap)
					}
				}
				if col.nulls != nil {
					copy(col.nulls[hn:hn+span], src.Nulls[off:off+span])
				}
			}
		}
		h.n.Store(int32(hn + span))
		r.live.Add(int64(span))
		off += span
	}
	return ords, nil
}

// Delete flags the tuple as deleted, stamping it with a fresh write
// epoch. Frozen tuples keep their slot (§3: frozen records are marked
// with a flag); hot tuples likewise, preserving tuple identifiers. It
// reports whether the tuple existed and was live. Readers that captured
// an earlier epoch keep seeing the tuple.
func (r *Relation) Delete(tid TupleID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deleteLocked(tid)
}

// deleteLocked flags a tuple under the write lock held by the caller,
// stamping it with a freshly minted epoch.
func (r *Relation) deleteLocked(tid TupleID) bool {
	c, ok := r.chunkFor(tid)
	if !ok || !r.retireLocked(c, tid.Row, r.epoch.Add(1)) {
		return false
	}
	r.live.Add(-1)
	return true
}

// retireLocked stamps row as retired at epoch e and sets its delete bit.
// The stamp is stored before the bit so a lock-free reader that observes
// the bit always finds the epoch. Caller holds the write lock.
func (r *Relation) retireLocked(c *Chunk, row uint32, e uint64) bool {
	if c.deleted == nil {
		// The slice-header swap is plain, not atomic: publication is safe
		// because lock-free readers go through visibleInChunk, which
		// nil-checks the header it loads once; they either see nil (no
		// deletes yet — correct, the bit below is not set either until
		// after the epoch stamp) or the fully-made slice.
		c.deleted = make([]uint64, simd.BitmapWords(r.chunkCap)) //dbvet:ignore header swap published before any bit is set; readers nil-check their own copy
	}
	if simd.BitmapGetAtomic(c.deleted, row) {
		return false
	}
	c.retired.Store(row, e)
	c.retiredCount.Add(1)
	simd.BitmapSetAtomic(c.deleted, row)
	c.numDeleted.Add(1)
	return true
}

// Update rewrites the tuple as delete + insert into the hot tail (§1) and
// returns the tuple's new identifier. The new row is validated before the
// old tuple is touched, and the delete + insert pair happens atomically
// under the relation lock, so a failed update leaves the tuple intact and
// no reader or snapshot ever sees both versions. (Callers that publish
// tuple identifiers through an index want the three-step
// InsertPending/CommitUpdate protocol instead, which keeps a version
// visible across the index repoint.)
func (r *Relation) Update(tid TupleID, row types.Row) (TupleID, error) {
	if err := r.validateRow(row); err != nil {
		return TupleID{}, err
	}
	// The new version is appended through stripe 0, so its appender lock
	// comes first (the global lock order), then the relation lock for the
	// retire + birth stamps.
	st := &r.stripes[0]
	st.mu.Lock()
	defer st.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.chunkFor(tid)
	if !ok {
		return TupleID{}, errors.New("storage: update of missing or deleted tuple")
	}
	// One epoch retires the old version and births the new one, so a
	// reader at any epoch sees exactly one of the two (the born stamp
	// matters only to GetAt with a pre-update epoch; snapshots are
	// already watermark-bounded).
	e := r.epoch.Add(1)
	if !r.retireLocked(c, tid.Row, e) {
		return TupleID{}, errors.New("storage: update of missing or deleted tuple")
	}
	tc, tci := r.ensureTailLocked(st, 0)
	newTid := r.appendRow(tc, tci, row, false)
	nc := r.chunks[newTid.Chunk]
	nc.born.Store(newTid.Row, e)
	nc.bornCount.Add(1)
	return newTid, nil
}

// InsertPending appends a new row version that is invisible to every
// reader and snapshot (born at +inf) until CommitUpdate stamps it. It is
// step one of the anomaly-free update protocol: insert the new version,
// publish its identifier in the index, then commit. The pending row does
// not count as live.
func (r *Relation) InsertPending(row types.Row) (TupleID, error) {
	return r.InsertPendingStripe(0, row)
}

// InsertPendingStripe is InsertPending through write stripe s, holding
// only that stripe's appender lock. It is step one of the striped update
// protocol; the commit still serializes on the relation lock.
func (r *Relation) InsertPendingStripe(s int, row types.Row) (TupleID, error) {
	if err := r.validateRow(row); err != nil {
		return TupleID{}, err
	}
	st := &r.stripes[s]
	st.mu.Lock()
	c, ci := r.ensureTail(st, s)
	tid := r.appendRow(c, ci, row, true)
	st.mu.Unlock()
	return tid, nil
}

// CommitUpdate atomically makes the pending row newTid visible and
// retires oldTid, both stamped with the same freshly minted write epoch;
// any reader epoch therefore sees exactly one of the two versions. It
// returns the commit epoch, and false if oldTid is already dead or either
// identifier is unknown (the caller should AbortPending the new version).
func (r *Relation) CommitUpdate(oldTid, newTid TupleID) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	nc, ok := r.chunkFor(newTid)
	if !ok {
		return 0, false
	}
	oc, ok := r.chunkFor(oldTid)
	if !ok || (oc.deleted != nil && simd.BitmapGetAtomic(oc.deleted, oldTid.Row)) {
		return 0, false
	}
	e := r.epoch.Add(1)
	nc.born.Store(newTid.Row, e)
	nc.pending.Add(-1)
	r.retireLocked(oc, oldTid.Row, e)
	// Live count is unchanged: the old version leaves, the new one enters.
	return e, true
}

// AbortPending discards a pending row inserted by InsertPending: the row
// keeps its slot but is retired at epoch 0, invisible to every reader
// past and future. It must only be called on a row whose commit never
// happened.
func (r *Relation) AbortPending(tid TupleID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.chunkFor(tid)
	if !ok {
		return
	}
	if r.retireLocked(c, tid.Row, 0) {
		c.pending.Add(-1)
	}
}

func (r *Relation) chunkFor(tid TupleID) (*Chunk, bool) {
	if int(tid.Chunk) >= len(r.chunks) {
		return nil, false
	}
	c := r.chunks[tid.Chunk]
	if int(tid.Row) >= c.Rows() {
		return nil, false
	}
	return c, true
}

// Visibility reports the outcome of an epoch-aware point read: either the
// tuple is visible, or *why* it is not — the distinction an index needs
// to decide between falling back to a previous version, retrying with a
// fresh epoch, or reporting a true miss.
type Visibility uint8

const (
	// Visible: the tuple was born at or before the read epoch and not
	// retired at or before it.
	Visible Visibility = iota
	// NotYetBorn: the tuple version was committed after the read epoch
	// (or is still pending). The reader should resolve the previous
	// version, or retry with a fresh epoch if it has none.
	NotYetBorn
	// Retired: the tuple was delete-flagged at or before the read epoch.
	Retired
	// Absent: the tuple identifier does not address a row.
	Absent
	// Unavailable: the tuple is visible but its evicted block could not
	// be reloaded from the block store (I/O error or corruption). The
	// failure is recorded on the relation — see LoadError — so it cannot
	// be mistaken for a clean miss.
	Unavailable
)

// String names the visibility for diagnostics.
func (v Visibility) String() string {
	switch v {
	case Visible:
		return "visible"
	case NotYetBorn:
		return "not-yet-born"
	case Retired:
		return "retired"
	case Unavailable:
		return "unavailable"
	default:
		return "absent"
	}
}

// Get materializes the tuple at the current write epoch, or reports false
// if it is deleted, pending or absent.
func (r *Relation) Get(tid TupleID) (types.Row, bool) {
	row, vis := r.GetAt(tid, r.epoch.Load())
	return row, vis == Visible
}

// GetAt materializes the tuple as seen by a reader at epoch e: exactly
// the version visible at that epoch — for a tuple mid-update, the pre- or
// the post-commit version, never neither. The returned Visibility
// explains an invisible result. For evicted chunks the block is pinned
// and reloaded outside the relation lock; a reload failure reports
// Unavailable (and LoadError), never a fabricated miss.
func (r *Relation) GetAt(tid TupleID, e uint64) (types.Row, Visibility) {
	r.mu.RLock()
	c, vis := r.visibilityLocked(tid, e)
	if vis != Visible {
		r.mu.RUnlock()
		return nil, vis
	}
	c.access.Add(1) // lookup touch
	row := make(types.Row, r.schema.NumColumns())
	p := c.pay.Load()
	if p.hot != nil || (p.blk != nil && r.store == nil) {
		// Hot, or frozen with no store attached (the payload cannot leave
		// RAM): materialize under the read lock as before.
		defer r.mu.RUnlock()
		for i := range row {
			if p.blk != nil {
				row[i] = p.blk.Value(i, int(tid.Row))
			} else {
				row[i] = p.hot.Value(i, int(tid.Row))
			}
		}
		return row, Visible
	}
	// Frozen with a store (evictable) or already evicted: drop the lock
	// and read through a pin. Visibility cannot regress — the stamps that
	// decided it are monotone in the epoch and frozen rows never move.
	r.mu.RUnlock()
	blk, unpin, _, err := r.pinBlock(c)
	if err != nil {
		r.noteLoadError(err)
		return nil, Unavailable
	}
	defer unpin()
	for i := range row {
		row[i] = blk.Value(i, int(tid.Row))
	}
	return row, Visible
}

// GetCol returns a single attribute of a tuple at the current write epoch
// — the OLTP point access the format is designed around (§3.4). Like
// GetAt it reads evicted chunks through a pinned reload outside the
// relation lock; a reload failure reports a miss and records LoadError.
func (r *Relation) GetCol(tid TupleID, col int) (types.Value, bool) {
	r.mu.RLock()
	c, vis := r.visibilityLocked(tid, r.epoch.Load())
	if vis != Visible {
		r.mu.RUnlock()
		return types.Value{}, false
	}
	c.access.Add(1) // lookup touch
	p := c.pay.Load()
	if p.hot != nil || (p.blk != nil && r.store == nil) {
		defer r.mu.RUnlock()
		if p.blk != nil {
			return p.blk.Value(col, int(tid.Row)), true
		}
		return p.hot.Value(col, int(tid.Row)), true
	}
	r.mu.RUnlock()
	blk, unpin, _, err := r.pinBlock(c)
	if err != nil {
		r.noteLoadError(err)
		return types.Value{}, false
	}
	defer unpin()
	return blk.Value(col, int(tid.Row)), true
}

// visibilityLocked resolves a tuple identifier and classifies its
// visibility at epoch e. Caller holds at least the read lock.
func (r *Relation) visibilityLocked(tid TupleID, e uint64) (*Chunk, Visibility) {
	c, ok := r.chunkFor(tid)
	if !ok {
		return nil, Absent
	}
	if c.bornCount.Load() != 0 {
		if b, ok := c.born.Load(tid.Row); ok && b.(uint64) > e {
			return c, NotYetBorn
		}
	}
	if c.deleted != nil && simd.BitmapGetAtomic(c.deleted, tid.Row) && c.retiredAt(tid.Row) <= e {
		return c, Retired
	}
	return c, Visible
}

// FreezeChunk compresses chunk i into a Data Block. With a non-negative
// SortBy, deleted tuples are compacted away and rows are reordered, which
// invalidates tuple identifiers — callers must rebuild indexes (the paper's
// freeze-with-sort likewise re-orders tuples, §3.2), and the whole pass
// runs under the relation write lock (stop-the-world).
//
// Without sorting — the OLTP hot→cold path — identifiers remain stable,
// the delete bitmap is carried over, and compression runs outside the
// relation lock: the chunk is claimed (hot→freezing) and its column data
// snapshotted under a brief write lock, core.Freeze runs unlocked, and the
// block is installed with an atomic payload swap. Concurrent inserts roll
// over to a fresh tail chunk; reads and scans keep using the hot payload
// until the swap. FreezeChunk returns nil when the chunk is already frozen
// or claimed by a concurrent freeze.
func (r *Relation) FreezeChunk(i int, opts core.FreezeOptions) error {
	if opts.SortBy >= 0 {
		return r.freezeChunkSorted(i, opts)
	}
	c, cols, n, err := r.beginFreeze(i)
	if err != nil || c == nil {
		return err
	}
	start := time.Now()
	blk, err := freezeBlock(cols, n, opts)
	if err == nil {
		r.noteFreeze(blk, time.Since(start), false)
	}
	r.mu.Lock()
	if err != nil {
		// Revert the claim: the chunk stays hot (and, no longer being the
		// tail, simply remains an unfrozen non-tail chunk).
		c.state.Store(uint32(ChunkHot))
		r.mu.Unlock()
		return err
	}
	r.installBlockLocked(c, blk)
	r.mu.Unlock()
	r.maybeWakeEvictor()
	return nil
}

// beginFreeze claims chunk i for an unsorted freeze: under the owner
// stripe's appender lock and a brief relation write lock it transitions
// hot→freezing and snapshots the hot column data. Claiming under the
// stripe lock is what makes the snapshot complete — a stripe append in
// flight would otherwise publish a row after the freeze captured the row
// count, and the row would vanish with the hot payload. The returned
// chunk is nil when the chunk is already frozen or freezing.
func (r *Relation) beginFreeze(i int) (*Chunk, []core.ColumnData, int, error) {
	r.mu.RLock()
	if i < 0 || i >= len(r.chunks) {
		r.mu.RUnlock()
		return nil, nil, 0, fmt.Errorf("storage: chunk %d out of range", i)
	}
	c := r.chunks[i]
	r.mu.RUnlock()
	// c.stripe is immutable; restored chunks (-1) are never hot, so the
	// state re-check below rejects them without a stripe lock.
	if s := c.stripe; s >= 0 && int(s) < len(r.stripes) {
		st := &r.stripes[s]
		st.mu.Lock()
		defer st.mu.Unlock()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.State() != ChunkHot {
		return nil, nil, 0, nil
	}
	h := c.pay.Load().hot
	n := h.Rows()
	if n == 0 {
		return nil, nil, 0, errors.New("storage: cannot freeze empty chunk")
	}
	c.state.Store(uint32(ChunkFreezing))
	// Rows below n are immutable and the freezing state bars further
	// appends, so the snapshotted slice headers may be read without the
	// lock while core.Freeze compresses them.
	return c, hotColumns(h, n), n, nil
}

// hotColumns snapshots the first n rows of every column as freeze input.
func hotColumns(h *HotChunk, n int) []core.ColumnData {
	cols := make([]core.ColumnData, len(h.cols))
	for ci := range h.cols {
		col := &h.cols[ci]
		cd := core.ColumnData{Kind: col.kind}
		switch col.kind {
		case types.Int64:
			cd.Ints = col.ints[:n]
		case types.Float64:
			cd.Floats = col.floats[:n]
		default:
			cd.Strs = col.strs[:n]
		}
		if col.nulls != nil {
			cd.Nulls = col.nulls[:n]
		}
		cols[ci] = cd
	}
	return cols
}

// freezeChunkSorted is the stop-the-world sorted freeze: deleted tuples are
// compacted away and rows reordered under the relation write lock.
func (r *Relation) freezeChunkSorted(i int, opts core.FreezeOptions) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.chunks) {
		return fmt.Errorf("storage: chunk %d out of range", i)
	}
	c := r.chunks[i]
	switch c.State() {
	case ChunkFrozen, ChunkEvicted:
		return nil
	case ChunkFreezing:
		return fmt.Errorf("storage: chunk %d is being frozen concurrently", i)
	}
	h := c.pay.Load().hot
	n := h.Rows()
	if n == 0 {
		return errors.New("storage: cannot freeze empty chunk")
	}
	if c.pending.Load() != 0 {
		return fmt.Errorf("storage: chunk %d has pending update versions; sorted freeze must not overlap writers", i)
	}
	total := n
	var keep []uint32
	if c.numDeleted.Load() > 0 {
		for row := 0; row < total; row++ {
			if !simd.BitmapGet(c.deleted, uint32(row)) { //dbvet:ignore sorted freeze runs with writers excluded (wmu + pending==0 checked above), no concurrent bit flips
				keep = append(keep, uint32(row))
			}
		}
		n = len(keep)
	}
	cols := make([]core.ColumnData, len(h.cols))
	for ci := range h.cols {
		col := &h.cols[ci]
		cd := core.ColumnData{Kind: col.kind}
		switch col.kind {
		case types.Int64:
			cd.Ints = gatherI64(col.ints[:total], keep)
		case types.Float64:
			cd.Floats = gatherF64(col.floats[:total], keep)
		default:
			cd.Strs = gatherStr(col.strs[:total], keep)
		}
		if col.nulls != nil {
			cd.Nulls = gatherBool(col.nulls[:total], keep)
		}
		cols[ci] = cd
	}
	start := time.Now()
	blk, err := freezeBlock(cols, n, opts)
	if err != nil {
		return err
	}
	r.noteFreeze(blk, time.Since(start), true)
	r.installBlockLocked(c, blk)
	if keep != nil {
		c.deleted = nil //dbvet:ignore relation write lock held and rows were just compacted away; no reader holds the old bitmap row indexes
		c.numDeleted.Store(0)
	}
	// Row indexes were reassigned: the old epoch stamps are meaningless.
	// Fresh maps are installed so in-flight views keep their own
	// references to the pre-freeze state.
	c.retired = &sync.Map{}
	c.born = &sync.Map{}
	c.bornCount.Store(0)
	c.retiredCount.Store(0)
	return nil
}

// FreezeAll freezes every chunk except, optionally, each stripe's hot
// tail. The chunk count and tail positions are decided once, in a single
// lock acquisition, so a concurrent insert that appends a chunk cannot
// cause a tail to be frozen or skipped inconsistently: chunks appended
// after the snapshot are simply left for the next pass. Chunks already
// frozen — or claimed by a concurrent unsorted freeze — are skipped.
func (r *Relation) FreezeAll(opts core.FreezeOptions, keepHotTail bool) error {
	r.mu.RLock()
	last := len(r.chunks)
	var skip map[int]bool
	if keepHotTail {
		skip = make(map[int]bool, len(r.stripes))
		for si := range r.stripes {
			st := &r.stripes[si]
			if st.tail != nil && st.tail.State() == ChunkHot {
				skip[st.tailOrd] = true
			}
		}
		if len(skip) == 0 && last > 0 {
			// No stripe has appended yet this lifetime (e.g. everything was
			// restored from a manifest): keep the positional tail, matching
			// the single-writer behavior.
			skip[last-1] = true
		}
	}
	// Sorted freezing reorders tuple identifiers chunk by chunk; validate
	// every target chunk up front so a doomed pass fails before anything
	// is reordered. The check is authoritative only under the caller's
	// write exclusion (Table.FreezeSorted holds its write mutex; sorted
	// freezing is documented stop-the-world) — a writer racing a direct
	// Relation caller could still slip a pending row in after the check,
	// which the per-chunk re-check in freezeChunkSorted then catches.
	if opts.SortBy >= 0 {
		for i := 0; i < last; i++ {
			if !skip[i] && r.chunks[i].pending.Load() != 0 {
				r.mu.RUnlock()
				return fmt.Errorf("storage: chunk %d has pending update versions; sorted freeze must not overlap writers", i)
			}
		}
	}
	r.mu.RUnlock()
	for i := 0; i < last; i++ {
		if skip[i] {
			continue
		}
		if err := r.FreezeChunk(i, opts); err != nil {
			return err
		}
	}
	return nil
}

// SealedHotChunks counts chunks that are closed to inserts (everything
// but the stripe tails) yet still uncompressed and unclaimed — the
// backlog a background compactor should freeze.
func (r *Relation) SealedHotChunks() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	tails := make(map[*Chunk]bool, len(r.stripes))
	for si := range r.stripes {
		if t := r.stripes[si].tail; t != nil {
			tails[t] = true
		}
	}
	n := 0
	for i, c := range r.chunks {
		if c.State() != ChunkHot || tails[c] {
			continue
		}
		if len(tails) == 0 && i+1 == len(r.chunks) {
			// No stripe tails this lifetime: the positional last chunk is
			// the would-be tail.
			continue
		}
		n++
	}
	return n
}

func gatherI64(src []int64, keep []uint32) []int64 {
	if keep == nil {
		return src
	}
	out := make([]int64, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

func gatherF64(src []float64, keep []uint32) []float64 {
	if keep == nil {
		return src
	}
	out := make([]float64, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

func gatherStr(src []string, keep []uint32) []string {
	if keep == nil {
		return src
	}
	out := make([]string, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

func gatherBool(src []bool, keep []uint32) []bool {
	if keep == nil {
		return src
	}
	out := make([]bool, len(keep))
	for i, p := range keep {
		out[i] = src[p]
	}
	return out
}

// SetBlockStore attaches a disk-backed block store: frozen blocks become
// evictable to it, tracked against budget bytes of RAM residency (<= 0:
// unbounded — manual EvictChunk only). wake, if non-nil, is invoked
// (without locks held) whenever installing a block pushes the resident
// set over budget, so a background compactor can run EvictUnderBudget.
// SetBlockStore must be called before the relation sees concurrent use;
// blocks frozen before the call are accounted as resident.
func (r *Relation) SetBlockStore(store *blockstore.Store, budget int64, wake func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = store
	r.cache = blockstore.NewCache(budget)
	r.overBudget = wake
	r.kinds = make([]types.Kind, r.schema.NumColumns())
	for i, col := range r.schema.Columns {
		r.kinds[i] = col.Kind
	}
	for _, c := range r.chunks {
		if blk := c.pay.Load().blk; blk != nil {
			size := int64(blk.CompressedSize())
			c.frozenRows.Store(int32(blk.Rows()))
			c.frozenBytes.Store(size)
			r.cache.Insert(c, size)
		}
	}
}

// installBlockLocked installs a compressed block as chunk c's payload —
// the single place a chunk becomes (or returns to) ChunkFrozen — and
// registers it with the residency cache. Caller holds the write lock.
func (r *Relation) installBlockLocked(c *Chunk, blk *core.Block) {
	size := int64(blk.CompressedSize())
	c.frozenRows.Store(int32(blk.Rows()))
	c.frozenBytes.Store(size)
	c.pay.Store(&chunkPayload{blk: blk})
	c.state.Store(uint32(ChunkFrozen))
	if r.cache != nil {
		r.cache.Insert(c, size)
	}
}

// maybeWakeEvictor nudges the owner's compactor when the resident frozen
// set exceeds the budget. Called without locks held.
func (r *Relation) maybeWakeEvictor() {
	if r.overBudget != nil && r.cache != nil && r.cache.OverBudget() {
		r.overBudget()
	}
}

// pinBlock pins chunk c's compressed payload in RAM and returns it with
// the matching unpin. If the chunk is evicted the block is reloaded from
// the store first — outside the relation lock, single-flighted per chunk
// so concurrent readers share one disk read — and re-installed with an
// atomic payload swap (Evicted → Frozen). The caller must not hold the
// relation lock. loaded reports whether this call performed the reload
// itself (telemetry: per-query reload attribution).
func (r *Relation) pinBlock(c *Chunk) (blk *core.Block, unpin func(), loaded bool, err error) {
	unpin = func() { c.pins.Add(-1) }
	c.pins.Add(1)
	if p := c.pay.Load(); p.blk != nil {
		return p.blk, unpin, false, nil
	}
	c.loadMu.Lock()
	defer c.loadMu.Unlock()
	if p := c.pay.Load(); p.blk != nil {
		// Another reader reloaded the block while we waited: a
		// single-flight collapse — this pinner shares that disk read.
		r.collapses.Add(1)
		return p.blk, unpin, false, nil
	}
	h := blockstore.Handle(c.handle.Load())
	if r.store == nil || h == 0 {
		c.pins.Add(-1)
		return nil, nil, false, errors.New("storage: evicted chunk has no block store handle")
	}
	blk, err = r.store.Load(h, r.kinds)
	if err != nil {
		c.pins.Add(-1)
		return nil, nil, false, err
	}
	r.mu.Lock()
	r.installBlockLocked(c, blk)
	r.mu.Unlock()
	r.reloads.Add(1)
	r.maybeWakeEvictor()
	return blk, unpin, true, nil
}

// EvictChunk spills chunk i's frozen block to the store (the first
// eviction serializes it; later ones reuse the stored file) and drops the
// in-RAM payload (Frozen → Evicted). It reports false without error when
// the chunk is not evictable right now: not frozen, already evicted, or
// pinned by an in-flight reader.
func (r *Relation) EvictChunk(i int) (bool, error) {
	r.mu.RLock()
	if i < 0 || i >= len(r.chunks) {
		r.mu.RUnlock()
		return false, fmt.Errorf("storage: chunk %d out of range", i)
	}
	c := r.chunks[i]
	r.mu.RUnlock()
	return r.evictChunk(c)
}

func (r *Relation) evictChunk(c *Chunk) (bool, error) {
	if r.store == nil {
		return false, errors.New("storage: no block store configured")
	}
	c.loadMu.Lock()
	defer c.loadMu.Unlock()
	if c.State() != ChunkFrozen || c.pins.Load() != 0 {
		return false, nil
	}
	blk := c.pay.Load().blk
	if blk == nil {
		return false, nil
	}
	if c.handle.Load() == 0 {
		// Spill outside the relation lock: the block is immutable.
		h, err := r.store.Put(blk)
		if err != nil {
			return false, err
		}
		c.handle.Store(uint64(h))
	}
	r.mu.Lock()
	if c.pins.Load() != 0 {
		// A reader pinned the block between the check and the lock; leave
		// it resident and let the next eviction pass retry.
		r.mu.Unlock()
		return false, nil
	}
	c.pay.Store(&chunkPayload{})
	c.state.Store(uint32(ChunkEvicted))
	r.mu.Unlock()
	if r.cache != nil {
		r.cache.Drop(c)
	}
	r.evictions.Add(1)
	return true, nil
}

// EvictUnderBudget evicts unpinned frozen chunks, coldest first by access
// temperature, until the resident frozen set fits the budget (or nothing
// evictable remains). It returns the number of chunks evicted. Safe to
// call concurrently with readers and writers; typically driven by the
// background compactor on the over-budget wake.
//
// The work per call is bounded: with readers concurrently reloading the
// blocks being shed, an unbounded drain-to-budget loop would spin as long
// as the reload churn lasts, so after a few rounds the call returns and
// relies on the next over-budget wake to continue.
func (r *Relation) EvictUnderBudget() (int, error) {
	if r.cache == nil {
		return 0, nil
	}
	n := 0
	for round := 0; round < 4; round++ {
		victims := r.cache.Victims()
		if len(victims) == 0 {
			return n, nil
		}
		progress := false
		for _, o := range victims {
			ok, err := r.evictChunk(o.(*Chunk))
			if err != nil {
				return n, err
			}
			if ok {
				n++
				progress = true
			}
		}
		if !progress || !r.cache.OverBudget() {
			// Everything nominated is pinned (retry on a later wake), or
			// the budget is met.
			return n, nil
		}
	}
	return n, nil
}

// FlushFrozen writes every frozen block that has never been spilled to
// the block store, without evicting anything — the Close-time flush that
// makes the store a complete cold copy of the relation's frozen set.
func (r *Relation) FlushFrozen() error {
	if r.store == nil {
		return nil
	}
	for _, c := range r.Chunks() {
		c.loadMu.Lock()
		if c.handle.Load() == 0 && c.State() == ChunkFrozen {
			if blk := c.pay.Load().blk; blk != nil {
				h, err := r.store.Put(blk)
				if err != nil {
					c.loadMu.Unlock()
					return err
				}
				c.handle.Store(uint64(h))
			}
		}
		c.loadMu.Unlock()
	}
	return nil
}

// RestoreEvicted appends a chunk recovered from a durable manifest, in the
// evicted state: no payload in RAM, only the store handle, the row count,
// the compressed size and the delete bitmap. The first read that touches
// the chunk reloads its block lazily. Preconditions (see the package doc's
// recovery section): a block store is attached, the relation sees no
// concurrent use yet, and chunks are restored in manifest order before any
// insert. Deleted rows are restored without epoch stamps, i.e. retired at
// epoch zero — invisible to every reader of the new process lifetime.
func (r *Relation) RestoreEvicted(h blockstore.Handle, rows int, bytes int64, deleted []uint64, numDeleted int) error {
	if r.store == nil {
		return errors.New("storage: RestoreEvicted without a block store")
	}
	if h == 0 {
		return errors.New("storage: RestoreEvicted with zero handle")
	}
	if rows < 1 || rows > r.chunkCap {
		return fmt.Errorf("storage: restored chunk has %d rows, chunk capacity is %d (was the table reopened with a different chunk size?)", rows, r.chunkCap)
	}
	if numDeleted < 0 || numDeleted > rows {
		return fmt.Errorf("storage: restored chunk has %d deleted of %d rows", numDeleted, rows)
	}
	c := &Chunk{retired: &sync.Map{}, born: &sync.Map{}, stripe: -1}
	c.pay.Store(&chunkPayload{})
	c.state.Store(uint32(ChunkEvicted))
	c.handle.Store(uint64(h))
	c.frozenRows.Store(int32(rows))
	c.frozenBytes.Store(bytes)
	if len(deleted) > 0 || numDeleted > 0 {
		c.deleted = make([]uint64, simd.BitmapWords(r.chunkCap)) //dbvet:ignore chunk is private until appended under r.mu below; no reader can race construction
		copy(c.deleted, deleted)                                 //dbvet:ignore same single-owner construction window as the line above
		c.numDeleted.Store(int32(numDeleted))
	}
	r.mu.Lock()
	r.chunks = append(r.chunks, c)
	r.mu.Unlock()
	r.live.Add(int64(rows - numDeleted))
	return nil
}

// ChunkDurable reports whether chunk i has been frozen AND flushed to the
// block store — the point past which a write-ahead log no longer needs to
// cover its rows. Out-of-range ordinals report false.
func (r *Relation) ChunkDurable(i int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if i < 0 || i >= len(r.chunks) {
		return false
	}
	c := r.chunks[i]
	return c.IsFrozen() && c.handle.Load() != 0
}

// AdvanceEpoch raises the write epoch to at least e. Recovery uses it to
// restore cross-restart epoch continuity: replayed mutations must mint
// epochs above everything the previous lifetime acknowledged.
func (r *Relation) AdvanceEpoch(e uint64) {
	for {
		cur := r.epoch.Load()
		if e <= cur || r.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// ManifestChunks snapshots the relation's frozen set for a manifest write:
// every frozen (or evicted) chunk that has a store handle, in relation
// order, with its delete bitmap trimmed to the row count. Rows pending an
// uncommitted update are recorded as deleted — their commit epoch would
// not survive the restart, so recovery must treat them as never visible.
// Chunks still hot or freezing, and frozen chunks not yet flushed to the
// store, are skipped: run FlushFrozen first so the manifest covers the
// whole frozen set.
func (r *Relation) ManifestChunks() []blockstore.ManifestChunk {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]blockstore.ManifestChunk, 0, len(r.chunks))
	for _, c := range r.chunks {
		if !c.IsFrozen() {
			continue
		}
		h := blockstore.Handle(c.handle.Load())
		if h == 0 {
			continue
		}
		rows := c.Rows()
		mc := blockstore.ManifestChunk{
			Handle: h,
			Rows:   rows,
			Bytes:  c.frozenBytes.Load(),
		}
		words := simd.BitmapWords(rows)
		nd := 0
		if c.deleted != nil && c.numDeleted.Load() > 0 {
			mc.Deleted = make([]uint64, words)
			for w := range mc.Deleted {
				mc.Deleted[w] = atomic.LoadUint64(&c.deleted[w])
			}
			for _, w := range mc.Deleted {
				nd += bits.OnesCount64(w)
			}
		}
		if c.pending.Load() > 0 {
			c.born.Range(func(k, v any) bool {
				if v.(uint64) != pendingEpoch {
					return true
				}
				row := k.(uint32)
				if int(row) >= rows {
					return true
				}
				if mc.Deleted == nil {
					mc.Deleted = make([]uint64, words)
				}
				if !simd.BitmapGet(mc.Deleted, row) {
					simd.BitmapSet(mc.Deleted, row)
					nd++
				}
				return true
			})
		}
		mc.NumDeleted = nd
		out = append(out, mc)
	}
	return out
}

// UnevictAll reloads every evicted chunk's block back into RAM. It is the
// inverse of draining to the store: used when the store is about to go
// away (a spill cache being garbage-collected at close) and the relation
// must keep serving reads from memory alone.
func (r *Relation) UnevictAll() error {
	for _, c := range r.Chunks() {
		if c.State() != ChunkEvicted {
			continue
		}
		_, unpin, _, err := r.pinBlock(c)
		if err != nil {
			return err
		}
		unpin()
	}
	return nil
}

// noteLoadError records the first block-store reload failure, so a point
// read that had to report a miss is distinguishable from data loss.
func (r *Relation) noteLoadError(err error) {
	r.loadErrMu.Lock()
	if r.loadErr == nil {
		r.loadErr = err
	}
	r.loadErrMu.Unlock()
}

// LoadError returns the first block-store reload failure, or nil.
func (r *Relation) LoadError() error {
	r.loadErrMu.Lock()
	defer r.loadErrMu.Unlock()
	return r.loadErr
}

// ColdStats summarizes the relation's cold-store traffic.
type ColdStats struct {
	// Evictions and Reloads count Frozen→Evicted and Evicted→Frozen
	// transitions. Collapses counts single-flight reload collapses:
	// pinners that waited out a concurrent reload and shared its disk
	// read instead of issuing their own.
	Evictions, Reloads, Collapses int64
	// ResidentBytes is the compressed frozen set currently in RAM;
	// BudgetBytes the configured ceiling (0: unbounded).
	ResidentBytes, BudgetBytes int64
	// StoredBlocks/DiskBytes describe the store's on-disk footprint.
	StoredBlocks int
	DiskBytes    int64
}

// ColdStatsSnapshot reports eviction/reload counts and residency. Zero
// values when no block store is attached.
func (r *Relation) ColdStatsSnapshot() ColdStats {
	s := ColdStats{
		Evictions: r.evictions.Load(),
		Reloads:   r.reloads.Load(),
		Collapses: r.collapses.Load(),
	}
	if r.cache != nil {
		cs := r.cache.Stats()
		s.ResidentBytes, s.BudgetBytes = cs.ResidentBytes, cs.BudgetBytes
	}
	if r.store != nil {
		ss := r.store.Stats()
		s.StoredBlocks, s.DiskBytes = ss.Blocks, ss.DiskBytes
	}
	return s
}

// MemStats summarizes a relation's footprint. FrozenBytes covers only
// blocks resident in RAM; EvictedBytes is the compressed size of blocks
// currently living in the block store instead.
type MemStats struct {
	HotBytes      int
	FrozenBytes   int
	EvictedBytes  int
	HotChunks     int
	FrozenChunks  int
	EvictedChunks int
	Rows          int
	DeletedRows   int
}

// TotalBytes returns the combined in-RAM footprint (evicted blocks are
// on disk and excluded).
func (m MemStats) TotalBytes() int { return m.HotBytes + m.FrozenBytes }

// MemoryStats reports the relation's current footprint, separating hot
// uncompressed storage from frozen Data Blocks (the quantity Table 1 and
// Figure 10 measure). Freezing chunks still count as hot: their block has
// not been installed yet.
func (r *Relation) MemoryStats() MemStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var m MemStats
	for _, c := range r.chunks {
		m.DeletedRows += int(c.numDeleted.Load())
		m.Rows += c.Rows()
		p := c.pay.Load()
		if p.blk != nil {
			m.FrozenChunks++
			m.FrozenBytes += p.blk.CompressedSize()
			continue
		}
		if p.hot == nil {
			m.EvictedChunks++
			m.EvictedBytes += int(c.frozenBytes.Load())
			continue
		}
		m.HotChunks++
		h := p.hot
		hn := h.Rows()
		for ci := range h.cols {
			col := &h.cols[ci]
			switch col.kind {
			case types.Int64, types.Float64:
				m.HotBytes += 8 * hn
			default:
				for _, s := range col.strs[:hn] {
					m.HotBytes += len(s) + 16
				}
			}
			if col.nulls != nil {
				m.HotBytes += hn
			}
		}
	}
	return m
}
