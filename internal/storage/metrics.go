package storage

import (
	"sync"
	"time"

	"datablocks/internal/compress"
	"datablocks/internal/core"
	"datablocks/internal/obs"
)

// relMetrics is the relation's freeze-pipeline telemetry: cumulative
// counters plus a latency histogram, all obs shared instruments. Freezes
// run outside hot scan kernels, so the contended-atomic instruments are
// fine here — no sharding needed.
type relMetrics struct {
	histOnce sync.Once
	// freezeNsHist buckets freeze durations from 64µs to ~2s.
	freezeNsHist *obs.Histogram

	freezes       obs.Counter
	sortedFreezes obs.Counter
	freezeNs      obs.Counter
	bytesIn       obs.Counter // uncompressed hot bytes entering freezes
	bytesOut      obs.Counter // compressed block bytes produced

	// Per-compression-scheme accounting, indexed by compress.Scheme.
	schemeAttrs    [schemeSlots]obs.Counter
	schemeBytesIn  [schemeSlots]obs.Counter
	schemeBytesOut [schemeSlots]obs.Counter
}

// schemeSlots bounds the per-scheme arrays; compress.Scheme is a small
// enum (currently 4 values). Out-of-range schemes fold into the last slot
// rather than panicking, so a future scheme cannot crash telemetry.
const schemeSlots = 8

func (m *relMetrics) hist() *obs.Histogram {
	m.histOnce.Do(func() {
		m.freezeNsHist = obs.NewHistogram(obs.ExpBounds(1<<16, 4, 8)...)
	})
	return m.freezeNsHist
}

// noteFreeze records one completed block compression. Runs outside the
// relation lock (the same place freezeBlock itself runs).
func (r *Relation) noteFreeze(blk *core.Block, dur time.Duration, sorted bool) {
	m := &r.met
	m.freezes.Inc()
	if sorted {
		m.sortedFreezes.Inc()
	}
	m.freezeNs.Add(uint64(dur))
	m.hist().Observe(uint64(dur))
	for i := 0; i < blk.NumAttrs(); i++ {
		in := uint64(blk.AttrUncompressedSize(i))
		out := uint64(blk.AttrCompressedSize(i))
		m.bytesIn.Add(in)
		m.bytesOut.Add(out)
		s := int(blk.Scheme(i))
		if s >= schemeSlots {
			s = schemeSlots - 1
		}
		m.schemeAttrs[s].Inc()
		m.schemeBytesIn[s].Add(in)
		m.schemeBytesOut[s].Add(out)
	}
}

// SchemeStats is the freeze pipeline's per-compression-scheme breakdown.
type SchemeStats struct {
	// Scheme is the compress.Scheme name (uncompressed, single, dict,
	// trunc).
	Scheme string
	// Attrs counts attribute vectors frozen under this scheme.
	Attrs uint64
	// BytesIn/BytesOut are the uncompressed input and compressed output
	// bytes of those vectors; BytesIn/BytesOut is the scheme's ratio.
	BytesIn, BytesOut uint64
}

// Ratio returns the scheme's compression ratio (input over output bytes);
// 0 when nothing was compressed.
func (s SchemeStats) Ratio() float64 {
	if s.BytesOut == 0 {
		return 0
	}
	return float64(s.BytesIn) / float64(s.BytesOut)
}

// FreezeStats is a snapshot of the relation's freeze-pipeline telemetry.
type FreezeStats struct {
	// Freezes counts completed block compressions; SortedFreezes the
	// subset that ran the stop-the-world sorted path.
	Freezes, SortedFreezes uint64
	// TotalNs is the cumulative wall time spent inside core.Freeze.
	TotalNs uint64
	// BytesIn/BytesOut are cumulative uncompressed input and compressed
	// output bytes across all frozen attributes.
	BytesIn, BytesOut uint64
	// Durations buckets individual freeze latencies (nanoseconds).
	Durations obs.HistSnapshot
	// Schemes breaks the traffic down per compression scheme; schemes
	// never used are omitted.
	Schemes []SchemeStats
}

// Ratio returns the overall compression ratio; 0 when nothing froze.
func (s FreezeStats) Ratio() float64 {
	if s.BytesOut == 0 {
		return 0
	}
	return float64(s.BytesIn) / float64(s.BytesOut)
}

// FreezeStatsSnapshot reports the relation's cumulative freeze-pipeline
// telemetry. Counters are read individually (each atomically); they only
// grow, so the snapshot is consistent enough for monitoring.
func (r *Relation) FreezeStatsSnapshot() FreezeStats {
	m := &r.met
	s := FreezeStats{
		Freezes:       m.freezes.Load(),
		SortedFreezes: m.sortedFreezes.Load(),
		TotalNs:       m.freezeNs.Load(),
		BytesIn:       m.bytesIn.Load(),
		BytesOut:      m.bytesOut.Load(),
		Durations:     m.hist().Snapshot(),
	}
	for i := 0; i < schemeSlots; i++ {
		attrs := m.schemeAttrs[i].Load()
		if attrs == 0 {
			continue
		}
		s.Schemes = append(s.Schemes, SchemeStats{
			Scheme:   compress.Scheme(i).String(),
			Attrs:    attrs,
			BytesIn:  m.schemeBytesIn[i].Load(),
			BytesOut: m.schemeBytesOut[i].Load(),
		})
	}
	return s
}

// EpochStats is a snapshot of the relation's MVCC bookkeeping: how far
// the write epoch has advanced and how much versioning state is waiting
// for the sorted-freeze garbage collection that resets it.
type EpochStats struct {
	// WriteEpoch is the current write epoch — every delete and update
	// commit bumps it, so it doubles as the count of versioning commits.
	WriteEpoch uint64
	// RetiredRows is the GC backlog: epoch-stamped retire tombstones
	// held for epoch readers, freed only by a sorted freeze.
	RetiredRows uint64
	// PendingRows counts update versions inserted but not yet committed.
	PendingRows uint64
	// BornRows counts rows carrying a birth stamp (committed or pending
	// update versions) — the born-map side of the same GC backlog.
	BornRows uint64
}

// EpochStatsSnapshot sums the per-chunk version bookkeeping under the
// read lock.
func (r *Relation) EpochStatsSnapshot() EpochStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := EpochStats{WriteEpoch: r.epoch.Load()}
	for _, c := range r.chunks {
		s.RetiredRows += uint64(c.retiredCount.Load())
		s.PendingRows += uint64(c.pending.Load())
		s.BornRows += uint64(c.bornCount.Load())
	}
	return s
}
