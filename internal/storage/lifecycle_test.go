package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"datablocks/internal/core"
	"datablocks/internal/types"
)

// TestUpdateValidatesBeforeDelete is the regression test for the
// destructive Update path: a row that fails validation must leave the old
// tuple untouched instead of deleting it.
func TestUpdateValidatesBeforeDelete(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	tid, err := r.Insert(mkRow(1, 1.5, "keep"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []types.Row{
		{types.StringValue("wrong kind"), types.FloatValue(0), types.StringValue("x")}, // kind mismatch
		{types.NullValue(types.Int64), types.FloatValue(0), types.StringValue("x")},    // NULL in non-nullable
		mkRow(2, 2.0, "short")[:2], // wrong arity
	}
	for i, row := range bad {
		if _, uerr := r.Update(tid, row); uerr == nil {
			t.Fatalf("bad row %d: update succeeded", i)
		}
		got, ok := r.Get(tid)
		if !ok {
			t.Fatalf("bad row %d: tuple deleted by failed update", i)
		}
		if got[0].Int() != 1 || got[1].Float() != 1.5 || got[2].Str() != "keep" {
			t.Fatalf("bad row %d: tuple mutated: %v", i, got)
		}
		if r.NumRows() != 1 {
			t.Fatalf("bad row %d: NumRows = %d", i, r.NumRows())
		}
	}
	// A valid update still works and is atomic: the old tid dies, the new
	// one lives.
	newTid, err := r.Update(tid, mkRow(1, 9.0, "moved"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(tid); ok {
		t.Fatal("old tuple visible after update")
	}
	if got, ok := r.Get(newTid); !ok || got[1].Float() != 9.0 {
		t.Fatalf("new tuple wrong: %v", got)
	}
	// Updating a dead tid fails without inserting anything.
	if _, err := r.Update(tid, mkRow(1, 0, "x")); err == nil {
		t.Fatal("update of deleted tuple succeeded")
	}
	if r.NumRows() != 1 {
		t.Fatalf("NumRows = %d after failed update", r.NumRows())
	}
}

// TestEpochVisibility pins the GetAt contract: a reader at epoch E sees
// exactly the rows born at or before E and not retired at or before E,
// through inserts, deletes and the pending-update protocol.
func TestEpochVisibility(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	tid, err := r.Insert(mkRow(1, 1.0, "v0"))
	if err != nil {
		t.Fatal(err)
	}
	e0 := r.ReadEpoch()

	// A pending version is invisible at every epoch; the old row stays.
	pend, err := r.InsertPending(mkRow(1, 2.0, "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, vis := r.GetAt(pend, r.ReadEpoch()); vis != NotYetBorn {
		t.Fatalf("pending visibility = %v", vis)
	}
	if r.NumRows() != 1 {
		t.Fatalf("NumRows with pending = %d", r.NumRows())
	}
	if got := r.Chunk(0).LiveRows(); got != 1 {
		t.Fatalf("LiveRows with pending = %d", got)
	}

	// Commit: one epoch flips both versions.
	e, ok := r.CommitUpdate(tid, pend)
	if !ok {
		t.Fatal("commit failed")
	}
	if row, vis := r.GetAt(tid, e0); vis != Visible || row[1].Float() != 1.0 {
		t.Fatalf("old version at old epoch: %v %v", row, vis)
	}
	if _, vis := r.GetAt(pend, e0); vis != NotYetBorn {
		t.Fatalf("new version at old epoch = %v, want not-yet-born", vis)
	}
	if _, vis := r.GetAt(tid, e); vis != Retired {
		t.Fatalf("old version at commit epoch = %v, want retired", vis)
	}
	if row, vis := r.GetAt(pend, e); vis != Visible || row[1].Float() != 2.0 {
		t.Fatalf("new version at commit epoch: %v %v", row, vis)
	}
	if r.NumRows() != 1 {
		t.Fatalf("NumRows after commit = %d", r.NumRows())
	}

	// Deletes stamp their epoch: earlier readers keep the row.
	eBefore := r.ReadEpoch()
	if !r.Delete(pend) {
		t.Fatal("delete failed")
	}
	if _, vis := r.GetAt(pend, eBefore); vis != Visible {
		t.Fatalf("deleted row at pre-delete epoch = %v", vis)
	}
	if _, vis := r.GetAt(pend, r.ReadEpoch()); vis != Retired {
		t.Fatalf("deleted row at current epoch = %v", vis)
	}
	if _, vis := r.GetAt(TupleID{Chunk: 99, Row: 0}, 0); vis != Absent {
		t.Fatalf("bogus tid = %v", vis)
	}

	// The atomic Relation.Update stamps retire and birth with one epoch:
	// a reader at any epoch sees exactly one of the two versions.
	base, _ := r.Insert(mkRow(2, 5.0, "a"))
	ePre := r.ReadEpoch()
	moved, err := r.Update(base, mkRow(2, 6.0, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, vis := r.GetAt(base, ePre); vis != Visible {
		t.Fatalf("old version at pre-update epoch = %v", vis)
	}
	if _, vis := r.GetAt(moved, ePre); vis != NotYetBorn {
		t.Fatalf("new version at pre-update epoch = %v, want not-yet-born", vis)
	}
	eNow := r.ReadEpoch()
	if _, vis := r.GetAt(base, eNow); vis != Retired {
		t.Fatalf("old version at post-update epoch = %v", vis)
	}
	if _, vis := r.GetAt(moved, eNow); vis != Visible {
		t.Fatalf("new version at post-update epoch = %v", vis)
	}
}

// TestAbortPendingInvisible: an aborted pending version never becomes
// visible and the old version survives, with counts intact.
func TestAbortPendingInvisible(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	tid, _ := r.Insert(mkRow(1, 1.0, "keep"))
	pend, err := r.InsertPending(mkRow(1, 9.0, "dead"))
	if err != nil {
		t.Fatal(err)
	}
	r.AbortPending(pend)
	if _, vis := r.GetAt(pend, r.ReadEpoch()); vis == Visible {
		t.Fatal("aborted pending row visible")
	}
	if row, ok := r.Get(tid); !ok || row[1].Float() != 1.0 {
		t.Fatalf("old version after abort: %v %v", row, ok)
	}
	if r.NumRows() != 1 {
		t.Fatalf("NumRows after abort = %d", r.NumRows())
	}
	if got := r.Chunk(0).LiveRows(); got != 1 {
		t.Fatalf("LiveRows after abort = %d", got)
	}
	total := 0
	for _, v := range r.Snapshot() {
		for row := 0; row < v.Rows(); row++ {
			if !v.IsDeleted(row) {
				total++
			}
		}
	}
	if total != 1 {
		t.Fatalf("snapshot sees %d rows after abort", total)
	}
}

// TestSnapshotCutoffExcludesLaterCommit: a snapshot taken mid-update (new
// version pending) resolves the old version even when iterated after the
// commit — the zero-copy view filters the shared bitmap and stamps by its
// epoch cutoff.
func TestSnapshotCutoffExcludesLaterCommit(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	tid, _ := r.Insert(mkRow(1, 1.0, "old"))
	pend, err := r.InsertPending(mkRow(1, 2.0, "new"))
	if err != nil {
		t.Fatal(err)
	}
	views := r.Snapshot() // old visible, new pending
	if _, ok := r.CommitUpdate(tid, pend); !ok {
		t.Fatal("commit failed")
	}
	v := &views[0]
	if v.Rows() != 2 {
		t.Fatalf("snapshot rows = %d", v.Rows())
	}
	if v.IsDeleted(int(tid.Row)) {
		t.Fatal("snapshot lost the pre-commit version")
	}
	if !v.IsDeleted(int(pend.Row)) {
		t.Fatal("snapshot sees the post-commit version")
	}
	if v.LiveRows() != 1 {
		t.Fatalf("snapshot LiveRows = %d", v.LiveRows())
	}
	// A fresh snapshot sees exactly the flipped state.
	fresh := r.Snapshot()
	if !fresh[0].IsDeleted(int(tid.Row)) || fresh[0].IsDeleted(int(pend.Row)) {
		t.Fatal("fresh snapshot did not flip to the new version")
	}
	if fresh[0].LiveRows() != 1 {
		t.Fatalf("fresh LiveRows = %d", fresh[0].LiveRows())
	}
}

// TestSnapshotWatermarkExcludesLaterUpdate: a snapshot taken while the
// chunk has no pending rows (bornCheck off) must stay consistent when an
// update protocol run starts *after* it. The pending insert lands above
// the captured row-count watermark, so the view never consults the born
// map for it, and the commit retires the old version at an epoch above
// the cutoff, so the view keeps the pre-update version — never zero and
// never two versions of the key. Plain inserts after the snapshot are
// likewise above the watermark.
func TestSnapshotWatermarkExcludesLaterUpdate(t *testing.T) {
	r := NewRelation(testSchema(), 0)
	tid, _ := r.Insert(mkRow(1, 1.0, "old"))
	views := r.Snapshot() // no pending rows: bornCheck is off

	pend, err := r.InsertPending(mkRow(1, 2.0, "new"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.CommitUpdate(tid, pend); !ok {
		t.Fatal("commit failed")
	}
	r.Insert(mkRow(2, 3.0, "later"))

	v := &views[0]
	if v.Rows() != 1 {
		t.Fatalf("snapshot rows = %d, want the watermark 1", v.Rows())
	}
	if v.IsDeleted(int(tid.Row)) {
		t.Fatal("snapshot lost the pre-update version (retired above the cutoff)")
	}
	if v.LiveRows() != 1 {
		t.Fatalf("snapshot LiveRows = %d", v.LiveRows())
	}
	// A fresh snapshot sees the post-update state: new version plus the
	// later insert, old version dead.
	fresh := r.Snapshot()
	if fresh[0].Rows() != 3 {
		t.Fatalf("fresh snapshot rows = %d", fresh[0].Rows())
	}
	if !fresh[0].IsDeleted(int(tid.Row)) || fresh[0].IsDeleted(int(pend.Row)) {
		t.Fatal("fresh snapshot did not flip to the new version")
	}
	if fresh[0].LiveRows() != 2 {
		t.Fatalf("fresh snapshot LiveRows = %d", fresh[0].LiveRows())
	}
}

// TestFreezeRunsOutsideRelationLock proves the freeze claim: while
// core.Freeze is stalled mid-compression, inserts, point reads and
// snapshots on the same relation must complete, and the chunk must report
// the freezing state.
func TestFreezeRunsOutsideRelationLock(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	orig := freezeBlock
	freezeBlock = func(cols []core.ColumnData, n int, opts core.FreezeOptions) (*core.Block, error) {
		close(started)
		<-release
		return orig(cols, n, opts)
	}
	defer func() { freezeBlock = orig }()

	r := NewRelation(testSchema(), 100)
	var tids []TupleID
	for i := 0; i < 100; i++ {
		tid, _ := r.Insert(mkRow(int64(i), float64(i), "x"))
		tids = append(tids, tid)
	}
	done := make(chan error, 1)
	go func() { done <- r.FreezeChunk(0, core.FreezeOptions{SortBy: -1}) }()
	<-started

	// Compression is in flight and the relation lock is free: every OLTP
	// and snapshot operation below would deadlock (and time the test out)
	// if FreezeChunk still held the write lock across core.Freeze.
	if got := r.Chunk(0).State(); got != ChunkFreezing {
		t.Fatalf("state during freeze = %v", got)
	}
	tid, err := r.Insert(mkRow(1000, 0, "during-freeze"))
	if err != nil {
		t.Fatal(err)
	}
	if tid.Chunk != 1 {
		t.Fatalf("insert during freeze landed in chunk %d, want a fresh tail", tid.Chunk)
	}
	if row, ok := r.Get(tids[5]); !ok || row[0].Int() != 5 {
		t.Fatal("hot payload unreadable during freeze")
	}
	if !r.Delete(tids[7]) {
		t.Fatal("delete during freeze failed")
	}
	views := r.Snapshot()
	if views[0].IsFrozen() {
		t.Fatal("snapshot sees a block before install")
	}
	if views[0].Rows() != 100 {
		t.Fatalf("snapshot rows = %d", views[0].Rows())
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := r.Chunk(0).State(); got != ChunkFrozen {
		t.Fatalf("state after freeze = %v", got)
	}
	// The delete that raced the freeze carried over into the frozen chunk.
	if _, ok := r.Get(tids[7]); ok {
		t.Fatal("tuple deleted during freeze visible after install")
	}
	for i, tid := range tids {
		if i == 7 {
			continue
		}
		row, ok := r.Get(tid)
		if !ok || row[0].Int() != int64(i) {
			t.Fatalf("tuple %d wrong after freeze", i)
		}
	}
}

// TestFreezeErrorRevertsClaim: a failing compression returns the chunk to
// the hot state with its data intact.
func TestFreezeErrorRevertsClaim(t *testing.T) {
	orig := freezeBlock
	freezeBlock = func(cols []core.ColumnData, n int, opts core.FreezeOptions) (*core.Block, error) {
		return nil, fmt.Errorf("synthetic freeze failure")
	}
	r := NewRelation(testSchema(), 10)
	tid, _ := r.Insert(mkRow(1, 1, "x"))
	if err := r.FreezeChunk(0, core.FreezeOptions{SortBy: -1}); err == nil {
		t.Fatal("freeze error swallowed")
	}
	freezeBlock = orig
	if got := r.Chunk(0).State(); got != ChunkHot {
		t.Fatalf("state after failed freeze = %v", got)
	}
	if row, ok := r.Get(tid); !ok || row[0].Int() != 1 {
		t.Fatal("tuple lost by failed freeze")
	}
	// The chunk can be frozen for real afterwards.
	if err := r.FreezeChunk(0, core.FreezeOptions{SortBy: -1}); err != nil {
		t.Fatal(err)
	}
	if !r.Chunk(0).IsFrozen() {
		t.Fatal("chunk not frozen on retry")
	}
}

// TestSnapshotStableDuringWrites: a ChunkView must not observe rows
// appended or tuples deleted after the snapshot was taken.
func TestSnapshotStableDuringWrites(t *testing.T) {
	r := NewRelation(testSchema(), 1000)
	var tids []TupleID
	for i := 0; i < 10; i++ {
		tid, _ := r.Insert(mkRow(int64(i), float64(i), "x"))
		tids = append(tids, tid)
	}
	views := r.Snapshot()
	for i := 10; i < 20; i++ {
		r.Insert(mkRow(int64(i), float64(i), "x"))
	}
	r.Delete(tids[3])
	if got := views[0].Rows(); got != 10 {
		t.Fatalf("snapshot rows = %d after appends, want 10", got)
	}
	if views[0].IsDeleted(3) {
		t.Fatal("snapshot observed a later delete")
	}
	if got := views[0].Hot().Ints(0); len(got) != 10 {
		t.Fatalf("snapshot column length = %d", len(got))
	}
	fresh := r.Snapshot()
	if fresh[0].Rows() != 20 || !fresh[0].IsDeleted(3) {
		t.Fatal("fresh snapshot missed the writes")
	}
}

// TestFreezeAllSnapshotsTail: FreezeAll decides the tail once; concurrent
// appends cannot make it freeze the chunk receiving inserts.
func TestFreezeAllConcurrentInserts(t *testing.T) {
	r := NewRelation(testSchema(), 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var inserted atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.Insert(mkRow(int64(i), float64(i), "x")); err != nil {
				t.Error(err)
				return
			}
			inserted.Add(1)
		}
	}()
	// Interleave freeze passes with the insert stream until the writer has
	// rolled over several chunks.
	for i := 0; i < 50 || inserted.Load() < 1000; i++ {
		if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, true); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// The tail that received the final insert must still be hot, every
	// frozen chunk complete, and all tuples accounted for.
	n := r.NumChunks()
	if r.Chunk(n - 1).IsFrozen() {
		t.Fatal("live tail was frozen")
	}
	if r.NumRows() != int(inserted.Load()) {
		t.Fatalf("rows = %d, inserted %d", r.NumRows(), inserted.Load())
	}
	total := 0
	for _, v := range r.Snapshot() {
		total += v.LiveRows()
	}
	if total != int(inserted.Load()) {
		t.Fatalf("snapshot rows = %d, inserted %d", total, inserted.Load())
	}
}

// TestStorageStress races writers, readers, snapshots and background
// freezes on one relation; run with -race it is the storage-layer
// concurrency proof.
func TestStorageStress(t *testing.T) {
	r := NewRelation(testSchema(), 128)
	const (
		writers    = 4
		perWriter  = 3000
		keySpacing = 1 << 20
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Background freezer: continuously freeze everything behind the tail.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, true); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Lock-free chunk accessors: the package doc promises Rows/LiveRows
	// and the deleted count are safe without the relation lock (the
	// counters are atomic). Run with -race this is the proof.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < r.NumChunks(); i++ {
				c := r.Chunk(i)
				if live, rows := c.LiveRows(), c.Rows(); live > rows {
					t.Errorf("chunk %d: LiveRows %d > Rows %d", i, live, rows)
					return
				}
				if c.NumDeleted() < 0 {
					t.Errorf("chunk %d: negative delete count", i)
					return
				}
			}
		}
	}()

	// Scanners: sweep snapshots and read every visible value.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range r.Snapshot() {
					n := v.Rows()
					live := 0
					for row := 0; row < n; row++ {
						if v.IsDeleted(row) {
							continue
						}
						live++
						if v.Value(0, row).IsNull() {
							t.Error("NULL id in scan")
							return
						}
					}
					if live != v.LiveRows() {
						// LiveRows may lag the bitmap copy by design only
						// when deletes race the snapshot; both come from
						// the same locked view, so they must agree.
						t.Errorf("view live=%d bitmap=%d", v.LiveRows(), live)
						return
					}
				}
			}
		}()
	}

	// Writers: insert / update / delete / read disjoint key stripes.
	var deleted atomic.Int64
	var writersWg sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWg.Add(1)
		go func(g int) {
			defer writersWg.Done()
			base := int64(g * keySpacing)
			tids := make([]TupleID, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				tid, err := r.Insert(mkRow(base+int64(i), float64(i), "s"))
				if err != nil {
					t.Error(err)
					return
				}
				tids = append(tids, tid)
				switch i % 7 {
				case 3:
					nt, err := r.Update(tids[i/2], mkRow(base+int64(perWriter+i), 1, "u"))
					if err == nil {
						tids[i/2] = nt
					}
				case 4:
					// Three-step epoch-versioned update of an own key.
					victim := tids[i/4]
					pend, err := r.InsertPending(mkRow(base+int64(2*perWriter+i), 2, "p"))
					if err != nil {
						t.Error(err)
						return
					}
					if _, ok := r.CommitUpdate(victim, pend); ok {
						tids[i/4] = pend
					} else {
						r.AbortPending(pend)
					}
				case 5:
					if r.Delete(tids[i/3]) {
						deleted.Add(1)
					}
				case 6:
					if _, ok := r.Get(tids[i]); !ok {
						t.Errorf("fresh tuple %v unreadable", tids[i])
						return
					}
				}
			}
		}(g)
	}

	// Writers finish on their own; then stop the freezer and scanners.
	writersWg.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := r.NumRows(); got != writers*perWriter-int(deleted.Load()) {
		t.Fatalf("NumRows = %d, want %d", got, writers*perWriter-int(deleted.Load()))
	}
	// Final integrity: freeze everything and re-verify counts.
	if err := r.FreezeAll(core.FreezeOptions{SortBy: -1}, false); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range r.Snapshot() {
		if !v.IsFrozen() {
			t.Fatal("unfrozen chunk after final FreezeAll")
		}
		total += v.LiveRows()
	}
	if total != r.NumRows() {
		t.Fatalf("frozen live rows %d != NumRows %d", total, r.NumRows())
	}
}

// TestSortedFreezeRejectsConcurrentClaim: a sorted freeze must not tear a
// chunk already claimed by the background path.
func TestSortedFreezeRejectsConcurrentClaim(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	orig := freezeBlock
	freezeBlock = func(cols []core.ColumnData, n int, opts core.FreezeOptions) (*core.Block, error) {
		select {
		case <-started:
		default:
			close(started)
		}
		<-release
		return orig(cols, n, opts)
	}
	defer func() { freezeBlock = orig }()
	r := NewRelation(testSchema(), 10)
	for i := 0; i < 10; i++ {
		r.Insert(mkRow(int64(i), 0, "x"))
	}
	done := make(chan error, 1)
	go func() { done <- r.FreezeChunk(0, core.FreezeOptions{SortBy: -1}) }()
	<-started
	if err := r.FreezeChunk(0, core.FreezeOptions{SortBy: 0}); err == nil {
		t.Fatal("sorted freeze of a freezing chunk succeeded")
	}
	// The unsorted path treats a busy chunk as someone else's work: nil.
	if err := r.FreezeChunk(0, core.FreezeOptions{SortBy: -1}); err != nil {
		t.Fatalf("second unsorted freeze: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
