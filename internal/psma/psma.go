// Package psma implements Positional Small Materialized Aggregates (§3.2,
// Appendix B): a concise lookup table, built when a chunk is frozen into a
// Data Block, that maps a value's distance from the block minimum to a range
// of positions where such values occur.
//
// For w-byte codes the table holds w×256 entries — one per possible value of
// the most significant non-zero byte of the delta at each byte offset — so
// the whole structure is 2 KB / 4 KB / 8 KB for 1/2/4-byte codes and fits in
// L1. Because the table only narrows a sequential scan range (it yields the
// same access path as a full scan), it never penalizes non-selective
// queries, unlike a traditional index.
package psma

import "math/bits"

// Range is a half-open scan range [Begin, End) over the rows of one block.
type Range struct{ Begin, End uint32 }

// Empty reports whether the range selects no rows.
func (r Range) Empty() bool { return r.Begin >= r.End }

// Len returns the number of rows covered.
func (r Range) Len() int {
	if r.Empty() {
		return 0
	}
	return int(r.End - r.Begin)
}

// Intersect returns the overlap of two ranges. With multiple SARGable
// predicates, the per-attribute PSMA ranges are intersected (§3.2).
func (r Range) Intersect(o Range) Range {
	if o.Begin > r.Begin {
		r.Begin = o.Begin
	}
	if o.End < r.End {
		r.End = o.End
	}
	if r.Empty() {
		return Range{}
	}
	return r
}

// union widens r to cover o (used for multi-slot probes of range
// predicates).
func (r Range) union(o Range) Range {
	if o.Empty() {
		return r
	}
	if r.Empty() {
		return o
	}
	if o.Begin < r.Begin {
		r.Begin = o.Begin
	}
	if o.End > r.End {
		r.End = o.End
	}
	return r
}

// Table is the PSMA lookup table for one attribute of one block.
type Table struct {
	width int // code width in bytes; the table has width*256 slots
	slots []Range
}

// Slot computes the lookup-table index of a delta (Appendix B): the most
// significant non-zero byte, offset by 256 per remaining byte.
func Slot(delta uint64) int {
	r := 0
	if delta != 0 {
		r = 7 - bits.LeadingZeros64(delta)>>3
	}
	m := delta >> (uint(r) << 3)
	return int(m) + r<<8
}

// Build constructs the table from a code accessor. minCode is the code of
// the block minimum (the deltas' reference). The build is a single O(n)
// pass: the first occurrence opens a slot's range, later occurrences extend
// its end.
func Build(n int, width int, code func(i int) uint64, minCode uint64) *Table {
	t := &Table{width: width, slots: make([]Range, width*256)}
	for i := 0; i < n; i++ {
		s := &t.slots[Slot(code(i)-minCode)]
		if s.Empty() {
			*s = Range{Begin: uint32(i), End: uint32(i) + 1}
		} else {
			s.End = uint32(i) + 1
		}
	}
	return t
}

// Width returns the indexed code width in bytes.
func (t *Table) Width() int { return t.width }

// NumSlots returns the number of lookup-table entries.
func (t *Table) NumSlots() int { return len(t.slots) }

// SizeBytes returns the memory footprint of the lookup table.
func (t *Table) SizeBytes() int { return len(t.slots) * 8 }

// SlotRange exposes one slot's range for serialization.
func (t *Table) SlotRange(i int) Range { return t.slots[i] }

// SetSlotRange restores one slot during deserialization.
func (t *Table) SetSlotRange(i int, r Range) { t.slots[i] = r }

// NewEmpty allocates a table with empty slots, for deserialization.
func NewEmpty(width int) *Table {
	return &Table{width: width, slots: make([]Range, width*256)}
}

// LookupPoint returns the scan range for an equality probe with the given
// delta (probe value minus block minimum): a single table access.
func (t *Table) LookupPoint(delta uint64) Range {
	s := Slot(delta)
	if s >= len(t.slots) {
		return Range{}
	}
	return t.slots[s]
}

// LookupRange returns the scan range for a between probe with deltas
// [dLo, dHi]: the union of the non-empty slots between the two probe slots
// (§3.2). Slot indexes grow monotonically with deltas, so the slots in
// between cover exactly the candidate values.
func (t *Table) LookupRange(dLo, dHi uint64) Range {
	sLo, sHi := Slot(dLo), Slot(dHi)
	if sLo >= len(t.slots) {
		return Range{}
	}
	if sHi >= len(t.slots) {
		sHi = len(t.slots) - 1
	}
	var r Range
	for s := sLo; s <= sHi; s++ {
		r = r.union(t.slots[s])
	}
	return r
}
