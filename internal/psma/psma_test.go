package psma

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlot(t *testing.T) {
	cases := []struct {
		delta uint64
		slot  int
	}{
		{0, 0}, {1, 1}, {5, 5}, {255, 255},
		{0x100, 1 + 256}, {0x3E4, 3 + 256}, // the paper's probe-998 example (min=2)
		{0xFFFF, 255 + 256},
		{0x10000, 1 + 512},
		{0xFF0000, 255 + 512},
		{0x01000000, 1 + 768},
		{1 << 56, 1 + 7*256},
	}
	for _, c := range cases {
		if got := Slot(c.delta); got != c.slot {
			t.Errorf("Slot(%#x) = %d, want %d", c.delta, got, c.slot)
		}
	}
}

func TestSlotMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return Slot(a) <= Slot(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperExample(t *testing.T) {
	// Figure 4: data (7,2,6,42,128,7,998,2,42,5), SMA min 2.
	data := []uint64{7, 2, 6, 42, 128, 7, 998, 2, 42, 5}
	tbl := Build(len(data), 2, func(i int) uint64 { return data[i] }, 2)
	// probe 7: delta 5 -> slot 5 -> range [0,6)
	if r := tbl.LookupPoint(7 - 2); r != (Range{0, 6}) {
		t.Fatalf("probe 7: got %v, want [0,6)", r)
	}
	// probe 998: delta 996 = 0x3E4 -> slot 3+256 -> range [6,7)
	if r := tbl.LookupPoint(998 - 2); r != (Range{6, 7}) {
		t.Fatalf("probe 998: got %v, want [6,7)", r)
	}
}

// TestSupersetInvariant: the fundamental PSMA guarantee — every occurrence
// of a probed value lies inside the returned range.
func TestSupersetInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(2000)
		width := []int{1, 2, 4, 8}[r.Intn(4)]
		max := uint64(1)<<(8*uint(width)) - 1
		data := make([]uint64, n)
		min := max
		for i := range data {
			data[i] = r.Uint64() & max
			if trial%2 == 0 {
				data[i] %= 300 // small domain: heavy slot sharing
			}
			if data[i] < min {
				min = data[i]
			}
		}
		tbl := Build(n, width, func(i int) uint64 { return data[i] }, min)
		for probe := 0; probe < 100; probe++ {
			v := data[r.Intn(n)] // probe existing values
			rng := tbl.LookupPoint(v - min)
			for i, x := range data {
				if x == v && (uint32(i) < rng.Begin || uint32(i) >= rng.End) {
					t.Fatalf("width=%d value %d at %d outside range %v", width, v, i, rng)
				}
			}
		}
		// Range probes must be supersets too.
		for probe := 0; probe < 20; probe++ {
			lo := data[r.Intn(n)]
			hi := data[r.Intn(n)]
			if lo > hi {
				lo, hi = hi, lo
			}
			rng := tbl.LookupRange(lo-min, hi-min)
			for i, x := range data {
				if x >= lo && x <= hi && (uint32(i) < rng.Begin || uint32(i) >= rng.End) {
					t.Fatalf("range [%d,%d]: value %d at %d outside %v", lo, hi, x, i, rng)
				}
			}
		}
	}
}

func TestMissingValueMayBeEmpty(t *testing.T) {
	// On sorted data with a clustered domain, a probe for an absent value
	// whose slot is unused must return an empty range.
	data := []uint64{10, 11, 12, 500, 501}
	tbl := Build(len(data), 2, func(i int) uint64 { return data[i] }, 10)
	if r := tbl.LookupPoint(100 - 10); !r.Empty() {
		t.Fatalf("absent value with unused slot: got %v, want empty", r)
	}
}

func TestNarrowingOnSortedData(t *testing.T) {
	// Sorted data is the PSMA sweet spot (§3.2, Figure 11): ranges should
	// be much narrower than the full block.
	n := 1 << 16
	data := make([]uint64, n)
	for i := range data {
		data[i] = uint64(i) // sorted, unique
	}
	tbl := Build(n, 2, func(i int) uint64 { return data[i] }, 0)
	r := tbl.LookupPoint(100) // delta 100, 1-byte delta: exclusive slot
	if r.Len() != 1 {
		t.Fatalf("expected exact hit on small delta, got %v", r)
	}
	// Large deltas share slots with up to 256 values: range stays small.
	r = tbl.LookupPoint(30000)
	if r.Len() > 256 {
		t.Fatalf("2-byte delta slot should cover <=256 rows, got %d", r.Len())
	}
}

func TestRangeOps(t *testing.T) {
	a := Range{10, 20}
	b := Range{15, 30}
	if got := a.Intersect(b); got != (Range{15, 20}) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Intersect(Range{25, 30}); !got.Empty() {
		t.Fatalf("disjoint intersect should be empty, got %v", got)
	}
	if got := (Range{}).union(a); got != a {
		t.Fatalf("union with empty = %v", got)
	}
	if got := a.union(b); got != (Range{10, 30}) {
		t.Fatalf("union = %v", got)
	}
	if (Range{5, 5}).Len() != 0 || (Range{5, 8}).Len() != 3 {
		t.Fatalf("Len broken")
	}
}

func TestSizeBytes(t *testing.T) {
	// Paper: 2 KB, 4 KB, 8 KB for 1-, 2-, 4-byte codes.
	for _, c := range []struct{ width, kb int }{{1, 2}, {2, 4}, {4, 8}} {
		tbl := Build(1, c.width, func(int) uint64 { return 0 }, 0)
		if got := tbl.SizeBytes(); got != c.kb*1024 {
			t.Errorf("width %d: size = %d, want %d KB", c.width, got, c.kb)
		}
	}
}
