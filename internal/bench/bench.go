// Package bench holds shared measurement and reporting helpers for the
// experiment harness: wall-clock timing, geometric means (the paper's
// summary statistic for TPC-H, Table 2), text tables, and CSV size
// estimation for Table 1.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"datablocks/internal/storage"
	"datablocks/internal/types"
)

// Measure runs f and returns its wall-clock duration.
func Measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// MeasureBest runs f `rounds` times and returns the median duration, the
// paper's methodology ("runtimes are the median of several measurements").
func MeasureBest(rounds int, f func()) time.Duration {
	if rounds < 1 {
		rounds = 1
	}
	times := make([]time.Duration, rounds)
	for i := range times {
		times[i] = Measure(f)
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2]
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(values)))
}

// Table renders aligned text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Write(&sb)
	return sb.String()
}

// CSVSize estimates the size of a relation rendered as CSV (the
// "uncompressed CSV" row of Table 1): textual field widths plus separators.
func CSVSize(rel *storage.Relation) int {
	size := 0
	ncols := rel.Schema().NumColumns()
	for _, ch := range rel.Chunks() {
		rows := ch.Rows()
		for row := 0; row < rows; row++ {
			size += ncols // separators + newline
			for col := 0; col < ncols; col++ {
				var v types.Value
				if ch.IsFrozen() {
					v = ch.Block().Value(col, row)
				} else {
					v = ch.Hot().Value(col, row)
				}
				if v.IsNull() {
					continue
				}
				switch v.Kind() {
				case types.Int64:
					size += numWidth(v.Int())
				case types.Float64:
					size += 8
				default:
					size += len(v.Str())
				}
			}
		}
	}
	return size
}

func numWidth(v int64) int {
	w := 1
	if v < 0 {
		w++
		v = -v
	}
	for v >= 10 {
		w++
		v /= 10
	}
	return w
}

// Bytes renders a byte count human-readably.
func Bytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
