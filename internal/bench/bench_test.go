package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"datablocks/internal/storage"
	"datablocks/internal/types"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("GeoMean(1,100) = %g", got)
	}
	if got := GeoMean([]float64{4, 4, 4}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean(4,4,4) = %g", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
}

func TestMeasureBest(t *testing.T) {
	d := MeasureBest(3, func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("median %v below sleep duration", d)
	}
	if d := MeasureBest(0, func() {}); d < 0 {
		t.Fatal("rounds=0 must still measure")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("a-much-longer-name", 42*time.Millisecond)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(out, "1.500") || !strings.Contains(out, "42ms") {
		t.Fatalf("bad rendering:\n%s", out)
	}
	// Columns align: separator row is as wide as the longest cell.
	if len(lines[1]) < len("a-much-longer-name") {
		t.Fatalf("separator too short:\n%s", out)
	}
}

func TestCSVSize(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.Int64},
		types.Column{Name: "s", Kind: types.String, Nullable: true},
	)
	rel := storage.NewRelation(schema, 0)
	rel.Insert(types.Row{types.IntValue(123), types.StringValue("abc")})
	rel.Insert(types.Row{types.IntValue(-4), types.NullValue(types.String)})
	// row1: "123"+"abc"+2 = 8; row2: "-4"+""+2 = 4
	if got := CSVSize(rel); got != 12 {
		t.Fatalf("CSVSize = %d, want 12", got)
	}
}

func TestBytes(t *testing.T) {
	cases := map[int]string{
		512:     "512 B",
		2048:    "2.00 KB",
		3 << 20: "3.00 MB",
		5 << 30: "5.00 GB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Fatalf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}
