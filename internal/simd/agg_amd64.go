//go:build amd64

package simd

import (
	"math"
	"unsafe"
)

// Assembler stubs (agg_amd64.s).

//go:noescape
func sumF64DenseAVX2asm(acc float64, data *float64, n int) float64

//go:noescape
func sumF64MaskedAVX2asm(acc float64, data *float64, nulls *byte, n int) (acc2 float64, cnt int64)

//go:noescape
func minMaxI64DenseAVX2asm(data *int64, n int) (mn, mx int64)

//go:noescape
func minMaxI64MaskedAVX2asm(data *int64, nulls *byte, n int) (mn, mx int64, any bool)

//go:noescape
func minMaxF64DenseAVX2asm(data *float64, n int) (mn, mx float64)

//go:noescape
func minMaxF64MaskedAVX2asm(data *float64, nulls *byte, n int) (mn, mx float64, any bool)

//go:noescape
func mix64BatchAVX2(src, out unsafe.Pointer, n4 int)

//go:noescape
func mix64CombineAVX2(hs, src unsafe.Pointer, n4 int)

// boolBase reinterprets a []bool as its byte base for the assembler null
// checks; gc stores bools as the bytes 0 and 1.
func boolBase(nulls []bool) *byte { return (*byte)(unsafe.Pointer(&nulls[0])) }

func sumFloat64DenseAVX2(acc float64, vals []float64) float64 {
	if len(vals) == 0 {
		return canonNaN(acc)
	}
	// canonNaN on both legs: see the portable sumFloat64Dense.
	return canonNaN(sumF64DenseAVX2asm(acc, &vals[0], len(vals)))
}

func sumFloat64MaskedAVX2(acc float64, vals []float64, nulls []bool) (float64, int64) {
	if len(vals) == 0 {
		return canonNaN(acc), 0
	}
	s, cnt := sumF64MaskedAVX2asm(acc, &vals[0], boolBase(nulls), len(vals))
	return canonNaN(s), cnt
}

// minMaxInt64DenseAVX2 requires len(vals) > 0 (the MinMaxInt64 contract).
func minMaxInt64DenseAVX2(vals []int64) (int64, int64) {
	return minMaxI64DenseAVX2asm(&vals[0], len(vals))
}

func minMaxInt64MaskedAVX2(vals []int64, nulls []bool) (int64, int64, bool) {
	if len(vals) == 0 {
		return 0, 0, false
	}
	return minMaxI64MaskedAVX2asm(&vals[0], boolBase(nulls), len(vals))
}

func minMaxFloat64DenseAVX2(vals []float64) (float64, float64) {
	return minMaxF64DenseAVX2asm(&vals[0], len(vals))
}

func minMaxFloat64MaskedAVX2(vals []float64, nulls []bool) (float64, float64, bool) {
	if len(vals) == 0 {
		return 0, 0, false
	}
	return minMaxF64MaskedAVX2asm(&vals[0], boolBase(nulls), len(vals))
}

func hashInt64AVX2(vals []int64, out []uint64) {
	i := len(vals) &^ 3
	if i > 0 {
		mix64BatchAVX2(unsafe.Pointer(&vals[0]), unsafe.Pointer(&out[0]), i)
	}
	for ; i < len(vals); i++ {
		out[i] = Mix64(uint64(vals[i]))
	}
}

func hashFloat64AVX2(vals []float64, out []uint64) {
	i := len(vals) &^ 3
	if i > 0 {
		mix64BatchAVX2(unsafe.Pointer(&vals[0]), unsafe.Pointer(&out[0]), i)
	}
	for ; i < len(vals); i++ {
		out[i] = Mix64(math.Float64bits(vals[i]))
	}
}

func hashCombineInt64AVX2(hs []uint64, vals []int64) {
	i := len(vals) &^ 3
	if i > 0 {
		mix64CombineAVX2(unsafe.Pointer(&hs[0]), unsafe.Pointer(&vals[0]), i)
	}
	for ; i < len(vals); i++ {
		hs[i] = Mix64(hs[i] ^ Mix64(uint64(vals[i])))
	}
}

func hashCombineFloat64AVX2(hs []uint64, vals []float64) {
	i := len(vals) &^ 3
	if i > 0 {
		mix64CombineAVX2(unsafe.Pointer(&hs[0]), unsafe.Pointer(&vals[0]), i)
	}
	for ; i < len(vals); i++ {
		hs[i] = Mix64(hs[i] ^ Mix64(math.Float64bits(vals[i])))
	}
}
