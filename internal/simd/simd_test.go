package simd

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

var allOps = []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpBetween}

// refFind is the trivially correct reference implementation.
func refFind(vals []uint64, op Op, c1, c2 uint64, base uint32) []uint32 {
	var out []uint32
	for i, v := range vals {
		if refEval(v, op, c1, c2) {
			out = append(out, base+uint32(i))
		}
	}
	return out
}

func refEval(v uint64, op Op, c1, c2 uint64) bool {
	switch op {
	case OpEq:
		return v == c1
	case OpNe:
		return v != c1
	case OpLt:
		return v < c1
	case OpLe:
		return v <= c1
	case OpGt:
		return v > c1
	case OpGe:
		return v >= c1
	default:
		return v >= c1 && v <= c2
	}
}

func encode(vals []uint64, width int) []byte {
	// Pad the buffer so eight-byte loads beyond the last element stay in
	// bounds, mirroring how block vectors are allocated.
	data := make([]byte, len(vals)*width+8)
	for i, v := range vals {
		WriteUint(data, i, width, v)
	}
	return data
}

func randVals(r *rand.Rand, n, width int) []uint64 {
	max := maxFor(width)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = r.Uint64() & max
	}
	return vals
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFindAllWidthsAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 2, 4, 8} {
		for _, op := range allOps {
			for trial := 0; trial < 30; trial++ {
				n := r.Intn(70) // exercises tails and empty inputs
				vals := randVals(r, n, width)
				// Mix small-domain data so predicates actually select.
				if trial%2 == 0 {
					for i := range vals {
						vals[i] %= 16
					}
				}
				c1 := r.Uint64() & maxFor(width) % 20
				c2 := c1 + uint64(r.Intn(10))
				want := refFind(vals, op, c1, c2, 100)
				got := Find(encode(vals, width), width, n, op, c1, c2, 100, nil)
				if !equalU32(got, want) {
					t.Fatalf("Find width=%d op=%v c1=%d c2=%d n=%d:\n got %v\nwant %v\nvals %v",
						width, op, c1, c2, n, got, want, vals)
				}
			}
		}
	}
}

func TestFindBoundaryConstants(t *testing.T) {
	// Degenerate constants: domain min, domain max, out-of-domain, empty
	// between — all must be handled by normalization.
	for _, width := range []int{1, 2, 4, 8} {
		max := maxFor(width)
		vals := []uint64{0, 1, max / 2, max - 1, max, 0, max, 3}
		data := encode(vals, width)
		cases := []struct {
			op     Op
			c1, c2 uint64
		}{
			{OpLt, 0, 0}, {OpLe, 0, 0}, {OpGe, 0, 0}, {OpGt, max, 0},
			{OpGe, max, 0}, {OpLe, max, 0}, {OpEq, max, 0}, {OpEq, 0, 0},
			{OpNe, 0, 0}, {OpNe, max, 0}, {OpBetween, 5, 2}, {OpBetween, 0, max},
			{OpBetween, max, max}, {OpLt, max, 0}, {OpGt, 0, 0},
		}
		for _, c := range cases {
			want := refFind(vals, c.op, c.c1, c.c2, 0)
			got := Find(data, width, len(vals), c.op, c.c1, c.c2, 0, nil)
			if !equalU32(got, want) {
				t.Errorf("width=%d op=%v c1=%d c2=%d: got %v want %v", width, c.op, c.c1, c.c2, got, want)
			}
		}
	}
}

func TestFindAppendsToExisting(t *testing.T) {
	vals := []uint64{1, 5, 1, 9}
	out := []uint32{42}
	out = Find(encode(vals, 1), 1, len(vals), OpEq, 1, 0, 0, out)
	want := []uint32{42, 0, 2}
	if !equalU32(out, want) {
		t.Fatalf("got %v want %v", out, want)
	}
}

func TestFindPropertyQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	for _, width := range []int{1, 2, 4} {
		width := width
		f := func(raw []uint16, c1raw, c2raw uint16, opRaw uint8) bool {
			op := allOps[int(opRaw)%len(allOps)]
			max := maxFor(width)
			vals := make([]uint64, len(raw))
			for i, v := range raw {
				vals[i] = uint64(v) & max
			}
			c1 := uint64(c1raw) & max
			c2 := uint64(c2raw) & max
			want := refFind(vals, op, c1, c2, 7)
			got := Find(encode(vals, width), width, len(vals), op, c1, c2, 7, nil)
			return equalU32(got, want)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestScalarVariantsMatchSWAR(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, width := range []int{1, 2, 4, 8} {
		for _, op := range allOps {
			n := 257
			vals := randVals(r, n, width)
			for i := range vals {
				vals[i] %= 64
			}
			data := encode(vals, width)
			c1, c2 := uint64(10), uint64(30)
			want := Find(data, width, n, op, c1, c2, 0, nil)
			if got := FindScalar(data, width, n, op, c1, c2, 0, nil); !equalU32(got, want) {
				t.Errorf("FindScalar width=%d op=%v mismatch", width, op)
			}
			if got := FindBranchy(data, width, n, op, c1, c2, 0, nil); !equalU32(got, want) {
				t.Errorf("FindBranchy width=%d op=%v mismatch", width, op)
			}
		}
	}
}

func TestReduceAllWidthsAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, width := range []int{1, 2, 4, 8} {
		for _, op := range allOps {
			for trial := 0; trial < 20; trial++ {
				n := 50 + r.Intn(50)
				vals := randVals(r, n, width)
				for i := range vals {
					vals[i] %= 32
				}
				data := encode(vals, width)
				// Start from a random subset of positions.
				var m []uint32
				for i := 0; i < n; i++ {
					if r.Intn(2) == 0 {
						m = append(m, uint32(i))
					}
				}
				c1 := uint64(r.Intn(16))
				c2 := c1 + uint64(r.Intn(8))
				var want []uint32
				for _, p := range m {
					if refEval(vals[p], op, c1, c2) {
						want = append(want, p)
					}
				}
				mm := append([]uint32(nil), m...)
				got := Reduce(data, width, op, c1, c2, mm)
				if !equalU32(got, want) {
					t.Fatalf("Reduce width=%d op=%v: got %v want %v", width, op, got, want)
				}
				mm = append([]uint32(nil), m...)
				got = ReduceScalar(data, width, op, c1, c2, mm)
				if !equalU32(got, want) {
					t.Fatalf("ReduceScalar width=%d op=%v: got %v want %v", width, op, got, want)
				}
			}
		}
	}
}

func TestFindReduceInt64(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	col := make([]int64, 300)
	for i := range col {
		col[i] = int64(r.Intn(41)) - 20 // includes negatives
	}
	for _, op := range allOps {
		c1, c2 := int64(-5), int64(7)
		var want []uint32
		for i, v := range col {
			if refEvalI(v, op, c1, c2) {
				want = append(want, uint32(i))
			}
		}
		got := FindInt64(col, op, c1, c2, 0, nil)
		if !equalU32(got, want) {
			t.Fatalf("FindInt64 op=%v: got %d want %d matches", op, len(got), len(want))
		}
		if got2 := FindScalarInt64(col, op, c1, c2, 0, nil); !equalU32(got2, want) {
			t.Fatalf("FindScalarInt64 op=%v mismatch", op)
		}
		all := make([]uint32, len(col))
		for i := range all {
			all[i] = uint32(i)
		}
		if got3 := ReduceInt64(col, op, c1, c2, all); !equalU32(got3, want) {
			t.Fatalf("ReduceInt64 op=%v mismatch", op)
		}
	}
}

func refEvalI(v int64, op Op, c1, c2 int64) bool {
	switch op {
	case OpEq:
		return v == c1
	case OpNe:
		return v != c1
	case OpLt:
		return v < c1
	case OpLe:
		return v <= c1
	case OpGt:
		return v > c1
	case OpGe:
		return v >= c1
	default:
		return v >= c1 && v <= c2
	}
}

func TestFindInt64Extremes(t *testing.T) {
	col := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	got := FindInt64(col, OpLe, math.MaxInt64, 0, 0, nil)
	if len(got) != len(col) {
		t.Fatalf("Le max: got %d want %d", len(got), len(col))
	}
	got = FindInt64(col, OpGe, math.MinInt64, 0, 0, nil)
	if len(got) != len(col) {
		t.Fatalf("Ge min: got %d want %d", len(got), len(col))
	}
	got = FindInt64(col, OpLt, math.MinInt64, 0, 0, nil)
	if len(got) != 0 {
		t.Fatalf("Lt min: got %d want 0", len(got))
	}
	got = FindInt64(col, OpBetween, -1, 1, 0, nil)
	if !equalU32(got, []uint32{1, 2, 3}) {
		t.Fatalf("between: got %v", got)
	}
}

func TestFindFloat64(t *testing.T) {
	col := []float64{0.5, 1.5, 2.5, 3.5, math.NaN()}
	got := FindFloat64(col, OpBetween, 1.0, 3.0, 0, nil)
	if !equalU32(got, []uint32{1, 2}) {
		t.Fatalf("got %v", got)
	}
	// NaN never matches range predicates.
	got = FindFloat64(col, OpGe, 0, 0, 0, nil)
	if len(got) != 4 {
		t.Fatalf("NaN matched: %v", got)
	}
	w := 0
	m := []uint32{0, 1, 2, 3, 4}
	m = ReduceFloat64(col, OpGt, 1.0, 0, m)
	_ = w
	if !equalU32(m, []uint32{1, 2, 3}) {
		t.Fatalf("reduce got %v", m)
	}
}

func TestBitmapKernels(t *testing.T) {
	n := 200
	bm := make([]uint64, BitmapWords(n))
	r := rand.New(rand.NewSource(5))
	var setPos, clrPos []uint32
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			BitmapSet(bm, uint32(i))
			setPos = append(setPos, uint32(i))
		} else {
			clrPos = append(clrPos, uint32(i))
		}
	}
	if got := FindBitmap(bm, n, true, 0, nil); !equalU32(got, setPos) {
		t.Fatalf("FindBitmap set: got %d want %d", len(got), len(setPos))
	}
	if got := FindBitmap(bm, n, false, 0, nil); !equalU32(got, clrPos) {
		t.Fatalf("FindBitmap clear: got %d want %d", len(got), len(clrPos))
	}
	all := make([]uint32, n)
	for i := range all {
		all[i] = uint32(i)
	}
	if got := ReduceBitmap(bm, true, append([]uint32(nil), all...)); !equalU32(got, setPos) {
		t.Fatalf("ReduceBitmap set mismatch")
	}
	if got := ReduceBitmap(bm, false, append([]uint32(nil), all...)); !equalU32(got, clrPos) {
		t.Fatalf("ReduceBitmap clear mismatch")
	}
	if got := PositionsFromBitmap(bm, n, 0, nil); !equalU32(got, setPos) {
		t.Fatalf("PositionsFromBitmap mismatch")
	}
	if got := PositionsFromBitmapBranchy(bm, n, 0, nil); !equalU32(got, setPos) {
		t.Fatalf("PositionsFromBitmapBranchy mismatch")
	}
}

// TestBitmapAtomic: the atomic variants agree with the plain ones, and
// concurrent setters on overlapping words lose no bits (run with -race
// this also proves the accessors are data-race free).
func TestBitmapAtomic(t *testing.T) {
	const n = 512
	bm := make([]uint64, BitmapWords(n))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				if i%3 == 0 {
					BitmapSetAtomic(bm, uint32(i))
				}
			}
		}(g)
	}
	// Concurrent readers while bits land.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if BitmapGetAtomic(bm, uint32(i)) && i%3 != 0 {
					t.Errorf("bit %d set spuriously", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		want := i%3 == 0
		if got := BitmapGetAtomic(bm, uint32(i)); got != want {
			t.Fatalf("atomic bit %d = %v, want %v", i, got, want)
		}
		if got := BitmapGet(bm, uint32(i)); got != want {
			t.Fatalf("plain bit %d = %v, want %v", i, got, want)
		}
	}
	// Idempotent re-set.
	BitmapSetAtomic(bm, 0)
	BitmapSetAtomic(bm, 0)
	if !BitmapGetAtomic(bm, 0) {
		t.Fatal("re-set cleared the bit")
	}
}

func TestReadWriteUint(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8} {
		data := make([]byte, 16*width)
		for i := 0; i < 16; i++ {
			v := uint64(i*37) & maxFor(width)
			WriteUint(data, i, width, v)
			if got := ReadUint(data, i, width); got != v {
				t.Fatalf("width %d idx %d: got %d want %d", width, i, got, v)
			}
		}
	}
}

func TestPosTable(t *testing.T) {
	for m := 0; m < 256; m++ {
		e := posTable[m]
		want := 0
		last := -1
		for b := 0; b < 8; b++ {
			if m>>uint(b)&1 == 1 {
				if int(e.pos[want]) != b {
					t.Fatalf("mask %08b: pos[%d]=%d want %d", m, want, e.pos[want], b)
				}
				if b <= last {
					t.Fatalf("positions not ascending for mask %08b", m)
				}
				last = b
				want++
			}
		}
		if int(e.n) != want {
			t.Fatalf("mask %08b: n=%d want %d", m, e.n, want)
		}
	}
}

func TestEnsureCap(t *testing.T) {
	out := make([]uint32, 3, 4)
	out[0], out[1], out[2] = 1, 2, 3
	grown := EnsureCap(out, 100)
	if cap(grown)-len(grown) < 100 {
		t.Fatalf("capacity not ensured: %d", cap(grown))
	}
	if !equalU32(grown, []uint32{1, 2, 3}) {
		t.Fatalf("contents lost: %v", grown)
	}
	same := EnsureCap(grown, 1)
	if &same[0] != &grown[0] {
		t.Fatalf("EnsureCap reallocated despite sufficient capacity")
	}
}

// TestBetweenSelectivitySweep drives the W1 kernel across the full
// selectivity range to catch any mask assembly bias.
func TestBetweenSelectivitySweep(t *testing.T) {
	n := 1024
	vals := make([]uint64, n)
	r := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = uint64(r.Intn(100))
	}
	data := encode(vals, 1)
	for hi := uint64(0); hi <= 100; hi += 5 {
		want := refFind(vals, OpBetween, 0, hi, 0)
		got := Find(data, 1, n, OpBetween, 0, hi, 0, nil)
		if !equalU32(got, want) {
			t.Fatalf("hi=%d: got %d want %d matches", hi, len(got), len(want))
		}
	}
}

func TestLoad64Unaligned(t *testing.T) {
	data := make([]byte, 24)
	for i := range data {
		data[i] = byte(i)
	}
	for off := 0; off < 8; off++ {
		want := binary.LittleEndian.Uint64(data[off : off+8])
		if got := load64(data, off); got != want {
			t.Fatalf("offset %d: got %x want %x", off, got, want)
		}
	}
}
