//go:build amd64

package simd

import "unsafe"

// Assembler stubs (find_amd64.s). Each processes whole vector groups
// only — the element count passed in must be the caller's n rounded down
// to the group size — writes matches at out[w:], and returns the new
// write cursor. out must have 8 lanes of slack beyond every intermediate
// cursor (Find's EnsureCap(n+8) contract).

//go:noescape
func findBetweenU8AVX2(data *byte, n int, lo, hi uint64, base uint32, out *uint32, w int) int

//go:noescape
func findNeU8AVX2(data *byte, n int, c uint64, base uint32, out *uint32, w int) int

//go:noescape
func findBetweenU16AVX2(data *byte, n int, lo, hi uint64, base uint32, out *uint32, w int) int

//go:noescape
func findNeU16AVX2(data *byte, n int, c uint64, base uint32, out *uint32, w int) int

//go:noescape
func findBetweenU32AVX2(data *byte, n int, lo, hi uint64, base uint32, out *uint32, w int) int

//go:noescape
func findNeU32AVX2(data *byte, n int, c uint64, base uint32, out *uint32, w int) int

//go:noescape
func findBetween64AVX2(data unsafe.Pointer, n int, lo, hi, flip uint64, base uint32, out *uint32, w int) int

//go:noescape
func findNe64AVX2(data unsafe.Pointer, n int, c uint64, base uint32, out *uint32, w int) int

//go:noescape
func findBitmapWordsAVX2(bm *uint64, nwords int, inv uint64, base uint32, out *uint32, w int) int

// signBit64 turns the signed VPCMPGTQ of the 64-bit kernel into an
// unsigned compare.
const signBit64 = uint64(1) << 63

// outBase returns the backing-array base of out for the unconditional
// 8-wide stores; cap(out) > 0 is guaranteed by EnsureCap.
func outBase(out []uint32) *uint32 { return &out[:cap(out)][0] }

func findBetweenW1AVX2(data []byte, n int, lo, hi uint8, base uint32, out []uint32) []uint32 {
	if i := n &^ 31; i > 0 {
		w := findBetweenU8AVX2(&data[0], i, uint64(lo), uint64(hi), base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i:], n-i, base+uint32(i)
	}
	return findBetweenW1(data, n, lo, hi, base, out)
}

func findNeW1AVX2(data []byte, n int, c uint8, base uint32, out []uint32) []uint32 {
	if i := n &^ 31; i > 0 {
		w := findNeU8AVX2(&data[0], i, uint64(c), base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i:], n-i, base+uint32(i)
	}
	return findNeW1(data, n, c, base, out)
}

func findBetweenW2AVX2(data []byte, n int, lo, hi uint16, base uint32, out []uint32) []uint32 {
	if i := n &^ 15; i > 0 {
		w := findBetweenU16AVX2(&data[0], i, uint64(lo), uint64(hi), base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i*2:], n-i, base+uint32(i)
	}
	return findBetweenW2(data, n, lo, hi, base, out)
}

func findNeW2AVX2(data []byte, n int, c uint16, base uint32, out []uint32) []uint32 {
	if i := n &^ 15; i > 0 {
		w := findNeU16AVX2(&data[0], i, uint64(c), base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i*2:], n-i, base+uint32(i)
	}
	return findNeW2(data, n, c, base, out)
}

func findBetweenW4AVX2(data []byte, n int, lo, hi uint32, base uint32, out []uint32) []uint32 {
	if i := n &^ 7; i > 0 {
		w := findBetweenU32AVX2(&data[0], i, uint64(lo), uint64(hi), base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i*4:], n-i, base+uint32(i)
	}
	return findBetweenW4(data, n, lo, hi, base, out)
}

func findNeW4AVX2(data []byte, n int, c uint32, base uint32, out []uint32) []uint32 {
	if i := n &^ 7; i > 0 {
		w := findNeU32AVX2(&data[0], i, uint64(c), base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i*4:], n-i, base+uint32(i)
	}
	return findNeW4(data, n, c, base, out)
}

func findBetweenW8AVX2(data []byte, n int, lo, hi uint64, base uint32, out []uint32) []uint32 {
	if i := n &^ 7; i > 0 {
		w := findBetween64AVX2(unsafe.Pointer(&data[0]), i, lo, hi, signBit64, base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i*8:], n-i, base+uint32(i)
	}
	return findBetweenW8(data, n, lo, hi, base, out)
}

func findNeW8AVX2(data []byte, n int, c uint64, base uint32, out []uint32) []uint32 {
	if i := n &^ 7; i > 0 {
		w := findNe64AVX2(unsafe.Pointer(&data[0]), i, c, base, outBase(out), len(out))
		out = out[:w:cap(out)]
		data, n, base = data[i*8:], n-i, base+uint32(i)
	}
	return findNeW8(data, n, c, base, out)
}

func findBetweenI64AVX2(col []int64, lo, hi int64, base uint32, out []uint32) []uint32 {
	if i := len(col) &^ 7; i > 0 {
		w := findBetween64AVX2(unsafe.Pointer(&col[0]), i, uint64(lo), uint64(hi), 0, base, outBase(out), len(out))
		out = out[:w:cap(out)]
		col, base = col[i:], base+uint32(i)
	}
	return findBetweenI64(col, lo, hi, base, out)
}

func findNeI64AVX2(col []int64, c int64, base uint32, out []uint32) []uint32 {
	if i := len(col) &^ 7; i > 0 {
		w := findNe64AVX2(unsafe.Pointer(&col[0]), i, uint64(c), base, outBase(out), len(out))
		out = out[:w:cap(out)]
		col, base = col[i:], base+uint32(i)
	}
	return findNeI64(col, c, base, out)
}

func findBitmapAVX2(bm []uint64, n int, wantSet bool, base uint32, out []uint32) []uint32 {
	inv := uint64(0)
	if !wantSet {
		inv = ^uint64(0)
	}
	if i := n &^ 63; i > 0 {
		w := findBitmapWordsAVX2(&bm[0], i>>6, inv, base, outBase(out), len(out))
		out = out[:w:cap(out)]
		bm, n, base = bm[i>>6:], n-i, base+uint32(i)
	}
	return findBitmapPortable(bm, n, wantSet, base, out)
}
