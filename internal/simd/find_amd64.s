// AVX2 "find initial matches" kernels (paper §4.2, Figure 7a): vector
// compare → movemask → positions-table emit. Each kernel processes whole
// vector groups only; the Go wrappers (find_amd64.go) run the portable
// SWAR code on the tail, so asm and portable outputs are bit-identical.
//
// Shared register plan:
//   SI  data base           DI  out base        R8  write cursor (elems)
//   DX  element count       R9  ·posTable base  R10 element index
//   AX  movemask scratch    R11/R12 emit scratch
//   Y0  lo splat            Y1  hi splat
//   Y3  position splat (base+i, advanced 8 per emit)
//   Y4  const 8 splat       Y5..Y9 temps

#include "textflag.h"

// EMIT8 writes the positions of the low 8 mask bits of AX at out[w],
// unconditionally storing 8 lanes (the caller guarantees 8 slots of
// slack) and advancing the cursor by the popcount via the table's count
// field; then shifts the mask and bumps the position splat.
#define EMIT8 \
	MOVL    AX, R11                  \
	ANDL    $0xFF, R11               \
	LEAQ    (R11)(R11*8), R12        \
	SHLQ    $2, R12                  \
	VMOVDQU (R9)(R12*1), Y5          \
	VPADDD  Y3, Y5, Y5               \
	VMOVDQU Y5, (DI)(R8*4)           \
	MOVL    32(R9)(R12*1), R11       \
	ADDQ    R11, R8                  \
	VPADDD  Y4, Y3, Y3               \
	SHRQ    $8, AX

// FIND_SETUP loads the shared operands: out/w/posTable/position splats.
// Expects base+off(FP) layout with base at the given offset. The scratch
// register is X15: X registers alias the low lanes of the same-numbered
// Y register, and Y15 is unused by every kernel, so the setup cannot
// corrupt an operand splat prepared before it runs.
#define FIND_SETUP(baseoff, outoff, woff) \
	MOVL    baseoff(FP), CX   \
	MOVL    CX, X15           \
	VPBROADCASTD X15, Y3      \
	MOVL    $8, CX            \
	MOVL    CX, X15           \
	VPBROADCASTD X15, Y4      \
	MOVQ    outoff(FP), DI    \
	MOVQ    woff(FP), R8      \
	LEAQ    ·posTable(SB), R9 \
	XORQ    R10, R10

// func findBetweenU8AVX2(data *byte, n int, lo, hi uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 32.
TEXT ·findBetweenU8AVX2(SB), NOSPLIT, $0-64
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ lo+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTB X0, Y0
	MOVQ hi+24(FP), AX
	MOVQ AX, X1
	VPBROADCASTB X1, Y1
	FIND_SETUP(base+32, out+40, w+48)
w1b:
	VMOVDQU (SI)(R10*1), Y6
	VPMAXUB Y0, Y6, Y7       // max(x, lo)
	VPCMPEQB Y6, Y7, Y7      // == x  ⇔  x >= lo
	VPMINUB Y1, Y6, Y5       // min(x, hi)
	VPCMPEQB Y6, Y5, Y5      // == x  ⇔  x <= hi
	VPAND Y7, Y5, Y5
	VPMOVMSKB Y5, AX
	EMIT8
	EMIT8
	EMIT8
	EMIT8
	ADDQ $32, R10
	CMPQ R10, DX
	JLT  w1b
	VZEROUPPER
	MOVQ R8, ret+56(FP)
	RET

// func findNeU8AVX2(data *byte, n int, c uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 32.
TEXT ·findNeU8AVX2(SB), NOSPLIT, $0-56
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ c+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTB X0, Y0
	FIND_SETUP(base+24, out+32, w+40)
w1n:
	VMOVDQU (SI)(R10*1), Y6
	VPCMPEQB Y0, Y6, Y5
	VPMOVMSKB Y5, AX
	NOTL AX                  // != c
	EMIT8
	EMIT8
	EMIT8
	EMIT8
	ADDQ $32, R10
	CMPQ R10, DX
	JLT  w1n
	VZEROUPPER
	MOVQ R8, ret+48(FP)
	RET

// PACK16 turns the 16 word-compare results in Y5 into a 16-bit mask in
// AX. VPACKSSWB against itself duplicates each half within its 128-bit
// lane, so the movemask carries lanes 0-7 at bits 0-7 and lanes 8-15 at
// bits 16-23.
#define PACK16 \
	VPACKSSWB Y5, Y5, Y5 \
	VPMOVMSKB Y5, AX     \
	MOVL      AX, R11    \
	SHRL      $8, R11    \
	ANDL      $0xFF00, R11 \
	ANDL      $0xFF, AX  \
	ORL       R11, AX

// func findBetweenU16AVX2(data *byte, n int, lo, hi uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 16.
TEXT ·findBetweenU16AVX2(SB), NOSPLIT, $0-64
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ lo+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTW X0, Y0
	MOVQ hi+24(FP), AX
	MOVQ AX, X1
	VPBROADCASTW X1, Y1
	FIND_SETUP(base+32, out+40, w+48)
w2b:
	VMOVDQU (SI)(R10*2), Y6
	VPMAXUW Y0, Y6, Y7
	VPCMPEQW Y6, Y7, Y7
	VPMINUW Y1, Y6, Y5
	VPCMPEQW Y6, Y5, Y5
	VPAND Y7, Y5, Y5
	PACK16
	EMIT8
	EMIT8
	ADDQ $16, R10
	CMPQ R10, DX
	JLT  w2b
	VZEROUPPER
	MOVQ R8, ret+56(FP)
	RET

// func findNeU16AVX2(data *byte, n int, c uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 16.
TEXT ·findNeU16AVX2(SB), NOSPLIT, $0-56
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ c+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTW X0, Y0
	FIND_SETUP(base+24, out+32, w+40)
w2n:
	VMOVDQU (SI)(R10*2), Y6
	VPCMPEQW Y0, Y6, Y5
	PACK16
	XORL $0xFFFF, AX
	EMIT8
	EMIT8
	ADDQ $16, R10
	CMPQ R10, DX
	JLT  w2n
	VZEROUPPER
	MOVQ R8, ret+48(FP)
	RET

// func findBetweenU32AVX2(data *byte, n int, lo, hi uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 8.
TEXT ·findBetweenU32AVX2(SB), NOSPLIT, $0-64
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ lo+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTD X0, Y0
	MOVQ hi+24(FP), AX
	MOVQ AX, X1
	VPBROADCASTD X1, Y1
	FIND_SETUP(base+32, out+40, w+48)
w4b:
	VMOVDQU (SI)(R10*4), Y6
	VPMAXUD Y0, Y6, Y7
	VPCMPEQD Y6, Y7, Y7
	VPMINUD Y1, Y6, Y5
	VPCMPEQD Y6, Y5, Y5
	VPAND Y7, Y5, Y5
	VMOVMSKPS Y5, AX
	EMIT8
	ADDQ $8, R10
	CMPQ R10, DX
	JLT  w4b
	VZEROUPPER
	MOVQ R8, ret+56(FP)
	RET

// func findNeU32AVX2(data *byte, n int, c uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 8.
TEXT ·findNeU32AVX2(SB), NOSPLIT, $0-56
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ c+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTD X0, Y0
	FIND_SETUP(base+24, out+32, w+40)
w4n:
	VMOVDQU (SI)(R10*4), Y6
	VPCMPEQD Y0, Y6, Y5
	VMOVMSKPS Y5, AX
	XORL $0xFF, AX
	EMIT8
	ADDQ $8, R10
	CMPQ R10, DX
	JLT  w4n
	VZEROUPPER
	MOVQ R8, ret+48(FP)
	RET

// func findBetween64AVX2(data unsafe.Pointer, n int, lo, hi, flip uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 8. flip is XORed into every element and
// into lo/hi before a SIGNED 64-bit compare: 1<<63 turns it into the
// unsigned compare of the W8 byte kernel, 0 keeps int64 semantics, so
// one kernel serves both.
TEXT ·findBetween64AVX2(SB), NOSPLIT, $0-72
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ flip+32(FP), BX
	MOVQ BX, X2
	VPBROADCASTQ X2, Y2
	MOVQ lo+16(FP), AX
	XORQ BX, AX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0
	MOVQ hi+24(FP), AX
	XORQ BX, AX
	MOVQ AX, X1
	VPBROADCASTQ X1, Y1
	FIND_SETUP(base+40, out+48, w+56)
w8b:
	VMOVDQU (SI)(R10*8), Y6
	VMOVDQU 32(SI)(R10*8), Y7
	VPXOR Y2, Y6, Y6
	VPXOR Y2, Y7, Y7
	VPCMPGTQ Y6, Y0, Y5      // lo' > x
	VPCMPGTQ Y1, Y6, Y8      // x > hi'
	VPOR  Y5, Y8, Y5
	VMOVMSKPD Y5, AX
	VPCMPGTQ Y7, Y0, Y8
	VPCMPGTQ Y1, Y7, Y9
	VPOR  Y8, Y9, Y8
	VMOVMSKPD Y8, R11
	SHLL $4, R11
	ORL  R11, AX
	XORL $0xFF, AX           // good = ^bad
	EMIT8
	ADDQ $8, R10
	CMPQ R10, DX
	JLT  w8b
	VZEROUPPER
	MOVQ R8, ret+64(FP)
	RET

// func findNe64AVX2(data unsafe.Pointer, n int, c uint64, base uint32, out *uint32, w int) int
// n is a positive multiple of 8. Equality is sign-agnostic, so this
// serves both the W8 byte kernel and int64 columns.
TEXT ·findNe64AVX2(SB), NOSPLIT, $0-56
	MOVQ data+0(FP), SI
	MOVQ n+8(FP), DX
	MOVQ c+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0
	FIND_SETUP(base+24, out+32, w+40)
w8n:
	VMOVDQU (SI)(R10*8), Y6
	VMOVDQU 32(SI)(R10*8), Y7
	VPCMPEQQ Y0, Y6, Y5
	VMOVMSKPD Y5, AX
	VPCMPEQQ Y0, Y7, Y8
	VMOVMSKPD Y8, R11
	SHLL $4, R11
	ORL  R11, AX
	XORL $0xFF, AX
	EMIT8
	ADDQ $8, R10
	CMPQ R10, DX
	JLT  w8n
	VZEROUPPER
	MOVQ R8, ret+48(FP)
	RET

// func findBitmapWordsAVX2(bm *uint64, nwords int, inv uint64, base uint32, out *uint32, w int) int
// Emits positions of set bits of bm[0:nwords] after XOR with inv
// (all-ones selects clear bits), 8 emits per 64-bit word.
TEXT ·findBitmapWordsAVX2(SB), NOSPLIT, $0-56
	MOVQ bm+0(FP), SI
	MOVQ nwords+8(FP), DX
	MOVQ inv+16(FP), BX
	FIND_SETUP(base+24, out+32, w+40)
bmloop:
	MOVQ (SI)(R10*8), AX
	XORQ BX, AX
	EMIT8
	EMIT8
	EMIT8
	EMIT8
	EMIT8
	EMIT8
	EMIT8
	EMIT8
	ADDQ $1, R10
	CMPQ R10, DX
	JLT  bmloop
	VZEROUPPER
	MOVQ R8, ret+48(FP)
	RET
